// Tests of the JSON report serialization.
#include "analysis/json.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "gpusim/launcher.hpp"
#include "verify/analyzer.hpp"

using namespace cfmerge;
using namespace cfmerge::analysis;

namespace {
// A tiny structural JSON checker: balanced braces/brackets outside strings,
// and key presence.  (No external JSON dependency in the project.)
bool balanced(const std::string& s) {
  int depth = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') {
      in_string = !in_string;
      continue;
    }
    if (in_string) continue;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    if (depth < 0 || brackets < 0) return false;
  }
  return depth == 0 && brackets == 0 && !in_string;
}
}  // namespace

TEST(JsonEscape, SpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(Json, SortReportSerializes) {
  std::mt19937_64 rng(1);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  sort::MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.variant = sort::Variant::CFMerge;
  std::vector<int> data(16 * 5 * 4);
  for (auto& x : data) x = static_cast<int>(rng());
  const auto report = sort::merge_sort(launcher, data, cfg);

  std::ostringstream os;
  write_json(os, report, cfg, launcher.device().name, "uniform-random");
  const std::string j = os.str();
  EXPECT_TRUE(balanced(j)) << j;
  for (const char* key :
       {"\"kind\":\"sort\"", "\"variant\":\"cf-merge\"", "\"merge_conflicts\":0",
        "\"phases\"", "\"kernels\"", "\"throughput_elem_per_us\"", "\"passes\":2"}) {
    EXPECT_NE(j.find(key), std::string::npos) << key << " missing in " << j;
  }
}

TEST(Json, MultiwaySortReportSerializes) {
  std::mt19937_64 rng(7);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  sort::MultiwayConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.k = 4;
  cfg.variant = sort::MultiwayVariant::CFCascade;
  std::vector<int> data(16 * 5 * 8);
  for (auto& x : data) x = static_cast<int>(rng());
  const auto report = sort::merge_sort_multiway(launcher, data, cfg);

  std::ostringstream os;
  write_json(os, report, cfg, launcher.device().name, "uniform-random");
  const std::string j = os.str();
  EXPECT_TRUE(balanced(j)) << j;
  for (const char* key :
       {"\"kind\":\"multiway_sort\"", "\"variant\":\"cf-cascade\"", "\"k\":4",
        "\"passes\":", "\"phases\"", "\"kernels\"", "\"throughput_elem_per_us\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << key << " missing in " << j;
  }
}

TEST(Json, VerifyReportCarriesMultiwaySummary) {
  verify::VerifyOptions opts;
  opts.widths = {8};
  opts.ks = {2, 4};
  opts.broken = true;
  opts.worstcase = false;
  opts.bitonic = false;
  const auto report = verify::verify_all(opts);
  std::ostringstream os;
  write_json(os, report);
  const std::string j = os.str();
  EXPECT_TRUE(balanced(j)) << j;
  // w = 8 sweeps e = 2..8, so each arity carries seven cascade proofs and
  // one refuted direct claim with a concrete witness.
  for (const char* key :
       {"\"multiway\":[", "\"k\":2", "\"k\":4", "\"proved\":7", "\"witnesses\":1",
        "\"schedule\":\"multiway_cascade\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << key << " missing in " << j;
  }
}

TEST(Json, MergeReportSerializes) {
  std::mt19937_64 rng(2);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  sort::MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  std::vector<int> a(100), b(60);
  for (auto& x : a) x = static_cast<int>(rng() % 1000);
  for (auto& x : b) x = static_cast<int>(rng() % 1000);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<int> out;
  const auto report = sort::merge_arrays(launcher, a, b, out, cfg);
  std::ostringstream os;
  write_json(os, report, cfg, launcher.device().name);
  EXPECT_TRUE(balanced(os.str()));
  EXPECT_NE(os.str().find("\"kind\":\"merge\""), std::string::npos);
  EXPECT_NE(os.str().find("\"na\":100"), std::string::npos);
}

TEST(Json, BitonicReportSerializes) {
  std::mt19937_64 rng(3);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  sort::BitonicConfig cfg;
  cfg.u = 16;
  cfg.padded = true;
  std::vector<int> data(256);
  for (auto& x : data) x = static_cast<int>(rng());
  const auto report = sort::bitonic_sort(launcher, data, cfg);
  std::ostringstream os;
  write_json(os, report, cfg, launcher.device().name, "uniform-random");
  EXPECT_TRUE(balanced(os.str()));
  EXPECT_NE(os.str().find("\"padded\":true"), std::string::npos);
}
