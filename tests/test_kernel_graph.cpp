// Tests of the Stream/KernelGraph executor: graph construction rules,
// wavefront levels, the timing-overlap model, the determinism contract
// (bit-identical history/trace/counters vs. launch-by-launch execution for
// every worker count and both execution modes), and exception safety.
#include "gpusim/kernel_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>

#include "gpusim/launcher.hpp"
#include "sort/merge_sort.hpp"

using namespace cfmerge;
using namespace cfmerge::gpusim;

namespace {

/// A small kernel body that touches shared memory so reports are non-trivial.
KernelBody counting_body(std::vector<int>& data, int per_block) {
  return [&data, per_block](BlockContext& ctx) {
    ctx.phase("count");
    std::vector<std::int64_t> addr(static_cast<std::size_t>(ctx.lanes()));
    for (int i = 0; i < per_block; ++i) {
      for (int lane = 0; lane < ctx.lanes(); ++lane)
        addr[static_cast<std::size_t>(lane)] = lane;
      ctx.charge_shared(0, addr);
      ctx.charge_compute(0, 4);
    }
    data[static_cast<std::size_t>(ctx.block_id())] += 1;
  };
}

void expect_report_eq(const KernelReport& a, const KernelReport& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.shape, b.shape);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.mean_block_chain, b.mean_block_chain);
  EXPECT_EQ(a.max_block_chain, b.max_block_chain);
  EXPECT_EQ(a.timing.cycles, b.timing.cycles);
  EXPECT_EQ(a.timing.microseconds, b.timing.microseconds);
}

}  // namespace

TEST(KernelGraph, RejectsEmptyGridNullBodyAndForwardDeps) {
  KernelGraph g;
  EXPECT_THROW(g.add("empty", LaunchShape{0, 8, 0, 8}, [](BlockContext&) {}),
               std::invalid_argument);
  EXPECT_THROW(g.add("null", LaunchShape{1, 8, 0, 8}, KernelBody{}),
               std::invalid_argument);
  const NodeId a = g.add("a", LaunchShape{1, 8, 0, 8}, [](BlockContext&) {});
  EXPECT_THROW(g.add("bad-dep", LaunchShape{1, 8, 0, 8}, [](BlockContext&) {}, {a + 1}),
               std::invalid_argument);
  EXPECT_THROW(g.add("neg-dep", LaunchShape{1, 8, 0, 8}, [](BlockContext&) {}, {-1}),
               std::invalid_argument);
}

TEST(KernelGraph, StreamChainsAndLevels) {
  KernelGraph g;
  Stream s1 = g.stream();
  Stream s2 = g.stream();
  EXPECT_EQ(s1.last(), kNoNode);
  const auto body = [](BlockContext&) {};
  const NodeId a = s1.enqueue("a", LaunchShape{1, 8, 0, 8}, body);
  const NodeId b = s1.enqueue("b", LaunchShape{1, 8, 0, 8}, body);
  const NodeId c = s2.enqueue("c", LaunchShape{1, 8, 0, 8}, body);
  // d joins both streams (cross-stream edge).
  Stream s3 = g.stream();
  const NodeId d = s3.enqueue("d", LaunchShape{1, 8, 0, 8}, body, {b, c});
  EXPECT_EQ(s1.last(), b);
  EXPECT_EQ(g.nodes()[static_cast<std::size_t>(b)].deps, std::vector<NodeId>{a});
  EXPECT_TRUE(g.nodes()[static_cast<std::size_t>(c)].deps.empty());
  const std::vector<int> levels = g.levels();
  EXPECT_EQ(levels[static_cast<std::size_t>(a)], 0);
  EXPECT_EQ(levels[static_cast<std::size_t>(b)], 1);
  EXPECT_EQ(levels[static_cast<std::size_t>(c)], 0);
  EXPECT_EQ(levels[static_cast<std::size_t>(d)], 2);
}

TEST(KernelGraph, EmptyGraphRunsToEmptyReport) {
  Launcher launcher(DeviceSpec::tiny(8));
  KernelGraph g;
  const GraphReport r = launcher.run(g);
  EXPECT_TRUE(r.kernels.empty());
  EXPECT_EQ(r.levels, 0);
  EXPECT_EQ(r.serial_microseconds, 0.0);
  EXPECT_TRUE(launcher.history().empty());
}

TEST(KernelGraph, DependentKernelsObserveWriterResults) {
  // writer fills a buffer, reader (dependent) checks every slot — under
  // Overlap mode with several workers this only holds if the edge is
  // honoured.
  for (const int threads : {1, 4}) {
    Launcher launcher(DeviceSpec::tiny(8));
    launcher.set_threads(threads);
    std::vector<int> cells(64, 0);
    std::atomic<bool> reader_saw_all{true};
    KernelGraph g;
    const NodeId w = g.add("writer", LaunchShape{64, 8, 0, 8}, [&](BlockContext& ctx) {
      cells[static_cast<std::size_t>(ctx.block_id())] = ctx.block_id() + 1;
    });
    g.add(
        "reader", LaunchShape{64, 8, 0, 8},
        [&](BlockContext& ctx) {
          if (cells[static_cast<std::size_t>(ctx.block_id())] != ctx.block_id() + 1)
            reader_saw_all = false;
        },
        {w});
    launcher.run(g, GraphExec::Overlap);
    EXPECT_TRUE(reader_saw_all.load()) << "threads=" << threads;
  }
}

TEST(KernelGraph, HistoryMatchesLaunchByLaunchBitIdentically) {
  // The same three kernels through (a) launch calls, (b) Serial graph,
  // (c) Overlap graph at several worker counts: identical reports.
  auto build_and_run = [](Launcher& launcher, bool use_graph, GraphExec mode) {
    std::vector<int> d1(24, 0), d2(12, 0), d3(24, 0);
    const LaunchShape s1{24, 8, 64, 8}, s2{12, 8, 0, 8}, s3{24, 8, 128, 8};
    if (use_graph) {
      KernelGraph g;
      Stream st = g.stream();
      st.enqueue("k1", s1, counting_body(d1, 3));
      st.enqueue("k2", s2, counting_body(d2, 7));
      st.enqueue("k3", s3, counting_body(d3, 1));
      launcher.run(g, mode);
    } else {
      launcher.launch("k1", s1, counting_body(d1, 3));
      launcher.launch("k2", s2, counting_body(d2, 7));
      launcher.launch("k3", s3, counting_body(d3, 1));
    }
  };

  Launcher ref(DeviceSpec::tiny(8));
  ref.set_threads(1);
  build_and_run(ref, /*use_graph=*/false, GraphExec::Serial);

  for (const GraphExec mode : {GraphExec::Serial, GraphExec::Overlap}) {
    for (const int threads : {1, 2, 4}) {
      Launcher launcher(DeviceSpec::tiny(8));
      launcher.set_threads(threads);
      build_and_run(launcher, /*use_graph=*/true, mode);
      SCOPED_TRACE((mode == GraphExec::Serial ? "serial" : "overlap") +
                   std::string(" threads=") + std::to_string(threads));
      ASSERT_EQ(launcher.history().size(), ref.history().size());
      for (std::size_t i = 0; i < ref.history().size(); ++i)
        expect_report_eq(launcher.history()[i], ref.history()[i]);
    }
  }
}

TEST(KernelGraph, TraceStreamIdenticalToLaunchByLaunch) {
  auto run = [](Launcher& launcher, TraceSink& sink, bool use_graph) {
    launcher.set_trace(&sink);
    std::vector<int> d1(8, 0), d2(8, 0);
    const LaunchShape s{8, 8, 0, 8};
    if (use_graph) {
      KernelGraph g;
      const NodeId a = g.add("a", s, counting_body(d1, 2));
      g.add("b", s, counting_body(d2, 2), {a});
      launcher.run(g, GraphExec::Overlap);
    } else {
      launcher.launch("a", s, counting_body(d1, 2));
      launcher.launch("b", s, counting_body(d2, 2));
    }
  };
  Launcher seq(DeviceSpec::tiny(8));
  TraceSink ref;
  run(seq, ref, /*use_graph=*/false);

  Launcher par(DeviceSpec::tiny(8));
  par.set_threads(4);
  TraceSink sink;
  run(par, sink, /*use_graph=*/true);

  ASSERT_EQ(sink.size(), ref.size());
  for (std::size_t i = 0; i < ref.events().size(); ++i) {
    const TraceEvent& a = sink.events()[i];
    const TraceEvent& b = ref.events()[i];
    EXPECT_EQ(a.block, b.block);
    EXPECT_EQ(a.warp, b.warp);
    EXPECT_EQ(a.cost, b.cost);
    ASSERT_EQ(sink.addresses(a).size(), ref.addresses(b).size());
  }
}

TEST(KernelGraph, MakespanChainEqualsSerialIndependentOverlap) {
  Launcher launcher(DeviceSpec::tiny(8));
  std::vector<int> d1(16, 0), d2(16, 0), d3(16, 0);
  const LaunchShape s{16, 8, 0, 8};

  // Chain: makespan == serial sum.
  {
    KernelGraph g;
    Stream st = g.stream();
    st.enqueue("a", s, counting_body(d1, 2));
    st.enqueue("b", s, counting_body(d2, 2));
    const GraphReport r = launcher.run(g);
    EXPECT_DOUBLE_EQ(r.makespan_microseconds, r.serial_microseconds);
    EXPECT_EQ(r.levels, 2);
    EXPECT_DOUBLE_EQ(r.overlap_speedup(), 1.0);
  }
  // Independent nodes: makespan == max kernel, strictly below the sum.
  {
    KernelGraph g;
    g.add("a", s, counting_body(d1, 2));
    g.add("b", s, counting_body(d2, 9));
    g.add("c", s, counting_body(d3, 2));
    const GraphReport r = launcher.run(g);
    EXPECT_EQ(r.levels, 1);
    double max_us = 0.0, sum_us = 0.0;
    for (const auto& k : r.kernels) {
      max_us = std::max(max_us, k.timing.microseconds);
      sum_us += k.timing.microseconds;
    }
    EXPECT_DOUBLE_EQ(r.makespan_microseconds, max_us);
    EXPECT_DOUBLE_EQ(r.serial_microseconds, sum_us);
    EXPECT_LT(r.makespan_microseconds, r.serial_microseconds);
    EXPECT_GT(r.overlap_speedup(), 1.0);
  }
  // Diamond: a -> {b, c} -> d; finish(d) = us(a) + max(us(b), us(c)) + us(d).
  {
    KernelGraph g;
    const NodeId a = g.add("a", s, counting_body(d1, 1));
    const NodeId b = g.add("b", s, counting_body(d2, 5), {a});
    const NodeId c = g.add("c", s, counting_body(d3, 2), {a});
    const NodeId d = g.add("d", s, counting_body(d1, 1), {b, c});
    const GraphReport r = launcher.run(g);
    EXPECT_EQ(r.levels, 3);
    const auto us = [&](NodeId i) {
      return r.kernels[static_cast<std::size_t>(i)].timing.microseconds;
    };
    EXPECT_DOUBLE_EQ(r.finish_microseconds[static_cast<std::size_t>(d)],
                     us(a) + std::max(us(b), us(c)) + us(d));
    EXPECT_DOUBLE_EQ(r.makespan_microseconds,
                     r.finish_microseconds[static_cast<std::size_t>(d)]);
  }
}

TEST(KernelGraph, RunIsConstAndReplayable) {
  // Launcher::run never mutates the graph: running the same graph twice
  // re-invokes the bodies (side effects accumulate) and produces
  // bit-identical per-run reports — the contract SortEngine plans rely on.
  Launcher launcher(DeviceSpec::tiny(8));
  std::vector<int> d1(16, 0), d2(16, 0);
  KernelGraph g;
  Stream st = g.stream();
  st.enqueue("a", LaunchShape{16, 8, 64, 8}, counting_body(d1, 3));
  st.enqueue("b", LaunchShape{16, 8, 64, 8}, counting_body(d2, 2));

  launcher.clear_history();
  launcher.run(g);
  const std::vector<KernelReport> first = launcher.history();
  launcher.clear_history();
  launcher.run(g);
  ASSERT_EQ(launcher.history().size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    expect_report_eq(launcher.history()[i], first[i]);
  for (const int c : d1) EXPECT_EQ(c, 2);  // bodies really ran twice
  for (const int c : d2) EXPECT_EQ(c, 2);
}

TEST(KernelGraph, AppendComposesTemplates) {
  const LaunchShape s{8, 8, 0, 8};
  std::vector<int> d1(8, 0), d2(8, 0), d3(8, 0);

  KernelGraph tpl;
  Stream st = tpl.stream();
  const NodeId ta = st.enqueue("ta", s, counting_body(d1, 1));
  st.enqueue("tb", s, counting_body(d2, 1), {ta});

  KernelGraph g;
  g.add("head", s, counting_body(d3, 1));
  const NodeId base = g.append(tpl);
  EXPECT_EQ(base, 1);
  ASSERT_EQ(g.size(), 3);
  // The appended copy keeps its internal edge, shifted past "head", and
  // stays independent of it (no implicit cross edges).
  EXPECT_TRUE(g.nodes()[1].deps.empty());
  EXPECT_EQ(g.nodes()[2].deps, std::vector<NodeId>{base});
  EXPECT_EQ(g.nodes()[1].name, "ta");

  // Appending an empty template is a no-op that returns kNoNode.
  KernelGraph empty;
  EXPECT_EQ(g.append(empty), kNoNode);
  EXPECT_EQ(g.size(), 3);

  // Self-append is rejected (would iterate a vector being grown).
  EXPECT_THROW(g.append(g), std::invalid_argument);

  // Bodies are shared with the template, not cloned: running the composed
  // graph bumps the template's captured buffers.
  Launcher launcher(DeviceSpec::tiny(8));
  launcher.run(g);
  for (const int c : d1) EXPECT_EQ(c, 1);
  for (const int c : d2) EXPECT_EQ(c, 1);

  // clear() empties the graph for rebuilding.
  g.clear();
  EXPECT_EQ(g.size(), 0);
  EXPECT_EQ(g.append(tpl), 0);
  EXPECT_EQ(g.size(), 2);
}

TEST(KernelGraph, ThrowingNodeLeavesLauncherUntouched) {
  for (const int threads : {1, 4}) {
    Launcher launcher(DeviceSpec::tiny(8));
    launcher.set_threads(threads);
    TraceSink sink;
    launcher.set_trace(&sink);
    std::vector<int> d1(8, 0);
    KernelGraph g;
    const NodeId a = g.add("ok", LaunchShape{8, 8, 0, 8}, counting_body(d1, 1));
    g.add(
        "faulty", LaunchShape{8, 8, 0, 8},
        [](BlockContext& ctx) {
          if (ctx.block_id() == 3) throw std::runtime_error("injected fault");
        },
        {a});
    EXPECT_THROW(launcher.run(g), std::runtime_error);
    EXPECT_TRUE(launcher.history().empty()) << "threads=" << threads;
    EXPECT_EQ(sink.size(), 0u) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// The acceptance check of the migration: every sort shape produces the same
// history through merge_sort's graph pipeline as the pre-refactor
// launch-by-launch cadence, reproduced here as the oracle.
// ---------------------------------------------------------------------------

namespace {

struct GraphSortCase {
  int w, e, u;
  std::int64_t n;
  sort::Variant variant;
};

/// The pre-refactor merge_sort: one Launcher::launch per kernel, identical
/// bodies and shapes.  Kept verbatim as the bit-identity oracle.
template <typename T>
void launch_by_launch_sort(Launcher& launcher, std::vector<T>& data,
                           const sort::MergeConfig& cfg) {
  using namespace cfmerge::sort;
  const std::int64_t n = static_cast<std::int64_t>(data.size());
  const std::int64_t tile = cfg.tile();
  const std::int64_t n_padded = (n + tile - 1) / tile * tile;
  std::vector<T> buf = data;
  buf.resize(static_cast<std::size_t>(n_padded), padding_sentinel<T>::value());
  std::vector<T> tmp(static_cast<std::size_t>(n_padded));

  launcher.clear_history();
  const int regs = cfg.variant == Variant::CFMerge ? cost::cfmerge_regs_per_thread(cfg.e)
                                                   : cost::baseline_regs_per_thread(cfg.e);
  const int num_tiles = static_cast<int>(n_padded / tile);
  {
    LaunchShape shape{num_tiles, cfg.u, static_cast<std::size_t>(tile) * sizeof(T), regs};
    const bool cf_rounds = cfg.variant == Variant::CFMerge && cfg.cf_blocksort;
    if (cf_rounds) shape.shared_bytes_per_block *= 2;
    launcher.launch("block_sort", shape, [&](BlockContext& ctx) {
      block_sort_body<T>(ctx, std::span<T>(buf), cfg.e, cf_rounds);
    });
  }
  std::vector<std::int64_t> boundaries(static_cast<std::size_t>(num_tiles) + 1, 0);
  std::vector<T>* src = &buf;
  std::vector<T>* dst = &tmp;
  for (std::int64_t run = tile; run < n_padded; run *= 2) {
    const PassGeometry geom{n_padded, run};
    const auto nb = static_cast<std::int64_t>(boundaries.size());
    const int pblocks = static_cast<int>((nb + cfg.u - 1) / cfg.u);
    launcher.launch("merge_partition", LaunchShape{pblocks, cfg.u, 0, 24},
                    [&](BlockContext& ctx) {
                      merge_partition_body<T>(ctx, std::span<const T>(*src), geom, tile,
                                              std::span<std::int64_t>(boundaries));
                    });
    launcher.launch("merge_pass",
                    LaunchShape{num_tiles, cfg.u,
                                static_cast<std::size_t>(tile) * sizeof(T), regs},
                    [&](BlockContext& ctx) {
                      merge_tile_body<T>(ctx, std::span<const T>(*src), std::span<T>(*dst),
                                         geom, cfg,
                                         std::span<const std::int64_t>(boundaries));
                    });
    std::swap(src, dst);
  }
  std::copy(src->begin(), src->begin() + n, data.begin());
}

}  // namespace

class GraphSortBitIdentity : public ::testing::TestWithParam<GraphSortCase> {};

TEST_P(GraphSortBitIdentity, GraphHistoryMatchesPreRefactorPath) {
  const GraphSortCase c = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(c.n) * 31 + c.e);
  std::vector<int> input(static_cast<std::size_t>(c.n));
  for (auto& x : input) x = static_cast<int>(rng() % 1000000) - 500000;

  sort::MergeConfig cfg;
  cfg.e = c.e;
  cfg.u = c.u;
  cfg.variant = c.variant;

  Launcher ref(DeviceSpec::tiny(c.w));
  std::vector<int> ref_data = input;
  launch_by_launch_sort(ref, ref_data, cfg);

  Launcher launcher(DeviceSpec::tiny(c.w));
  std::vector<int> data = input;
  const sort::SortReport r = sort::merge_sort(launcher, data, cfg);

  EXPECT_EQ(data, ref_data);
  ASSERT_EQ(launcher.history().size(), ref.history().size());
  for (std::size_t k = 0; k < ref.history().size(); ++k)
    expect_report_eq(launcher.history()[k], ref.history()[k]);
  // The sort is one chain, so the new makespan field degenerates to the sum.
  EXPECT_DOUBLE_EQ(r.makespan_microseconds, r.microseconds);
  EXPECT_EQ(r.graph_levels, 1 + 2 * r.passes);
}

namespace {
std::vector<GraphSortCase> graph_sort_cases() {
  std::vector<GraphSortCase> cases;
  for (const sort::Variant v : {sort::Variant::Baseline, sort::Variant::CFMerge}) {
    cases.push_back({8, 5, 16, 16 * 5 * 8, v});
    cases.push_back({8, 6, 16, 16 * 6 * 4, v});
    cases.push_back({8, 5, 16, 16 * 5, v});
    cases.push_back({8, 5, 16, 16 * 5 * 3 + 7, v});
    cases.push_back({8, 7, 16, 1000, v});
    cases.push_back({8, 5, 16, 3, v});
    cases.push_back({32, 15, 64, 64 * 15 * 4, v});
    cases.push_back({32, 17, 64, 64 * 17 * 2 + 11, v});
  }
  return cases;
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(Shapes, GraphSortBitIdentity,
                         ::testing::ValuesIn(graph_sort_cases()),
                         [](const ::testing::TestParamInfo<GraphSortCase>& info) {
                           const auto& c = info.param;
                           return std::string(c.variant == sort::Variant::Baseline
                                                  ? "base"
                                                  : "cf") +
                                  "_w" + std::to_string(c.w) + "_E" + std::to_string(c.e) +
                                  "_u" + std::to_string(c.u) + "_n" + std::to_string(c.n);
                         });
