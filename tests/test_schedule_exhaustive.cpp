// Exhaustive and adversarial property tests of the gather schedule:
//  * every possible split vector for small shapes (not just random samples),
//  * fault injection: corrupted permutations must be caught by the
//    validator (guards against silently-weakened invariants),
//  * algebraic identities of the permutations.
#include <gtest/gtest.h>

#include <vector>

#include "gather/permutation.hpp"
#include "gather/schedule.hpp"
#include "gather/validator.hpp"
#include "gpusim/shared_memory.hpp"
#include "numtheory/numtheory.hpp"

using namespace cfmerge;
using namespace cfmerge::gather;

namespace {

/// Enumerates every split vector (a_size[i] in [0, E]) for u threads via an
/// odometer; calls fn for each.  (E+1)^u combinations — keep u*log(E) small.
template <typename Fn>
void for_all_splits(int u, int e, Fn&& fn) {
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(u), 0);
  while (true) {
    fn(sizes);
    int i = 0;
    while (i < u && sizes[static_cast<std::size_t>(i)] == e) {
      sizes[static_cast<std::size_t>(i)] = 0;
      ++i;
    }
    if (i == u) break;
    ++sizes[static_cast<std::size_t>(i)];
  }
}

}  // namespace

TEST(ScheduleExhaustive, EverySplitConflictFreeCoprime) {
  // w = 4, E = 3 (coprime), one warp: 4^4 = 256 split vectors.
  int count = 0;
  for_all_splits(4, 3, [&](const std::vector<std::int64_t>& sizes) {
    const auto res = validate_sizes(4, 3, 4, sizes);
    ASSERT_TRUE(res.ok) << res.error;
    ++count;
  });
  EXPECT_EQ(count, 256);
}

TEST(ScheduleExhaustive, EverySplitConflictFreeNonCoprime) {
  // w = 4, E = 2 (d = 2): 3^4 = 81 split vectors.
  for_all_splits(4, 2, [&](const std::vector<std::int64_t>& sizes) {
    const auto res = validate_sizes(4, 2, 4, sizes);
    ASSERT_TRUE(res.ok) << res.error;
  });
  // w = 6, E = 4 (d = 2): 5^6 = 15625 split vectors.
  for_all_splits(6, 4, [&](const std::vector<std::int64_t>& sizes) {
    const auto res = validate_sizes(6, 4, 6, sizes);
    ASSERT_TRUE(res.ok) << res.error;
  });
}

TEST(ScheduleExhaustive, EverySplitConflictFreeTwoWarps) {
  // w = 3, E = 2, u = 6 (two warps, d = 1): 3^6 = 729 split vectors.
  for_all_splits(6, 2, [&](const std::vector<std::int64_t>& sizes) {
    const auto res = validate_sizes(3, 2, 6, sizes);
    ASSERT_TRUE(res.ok) << res.error;
  });
  // w = 4, E = 4, u = 8 (d = 4): 5^8 = 390625 is too many; E = 4 with a
  // fixed alternating skeleton plus an exhaustive 4-thread suffix instead.
  std::vector<std::int64_t> base{4, 0, 4, 0};
  for_all_splits(4, 4, [&](const std::vector<std::int64_t>& suffix) {
    std::vector<std::int64_t> sizes = base;
    sizes.insert(sizes.end(), suffix.begin(), suffix.end());
    const auto res = validate_sizes(4, 4, 8, sizes);
    ASSERT_TRUE(res.ok) << res.error;
  });
}

TEST(FaultInjection, BackwardShiftIsAlsoConflictFree) {
  // A neat corollary discovered by this test: shifting partitions *backward*
  // (by -(l mod d)) also yields a complete residue system — any shift
  // sequence with pairwise-distinct values modulo d works, not just the
  // paper's +l.  The validator must agree.
  const int w = 9, e = 6, u = 9;  // d = 3
  const std::int64_t total = static_cast<std::int64_t>(u) * e;
  const CircularShift rho(w, e, total);
  const std::int64_t p = rho.partition_size();
  for_all_splits(3, 6, [&](const std::vector<std::int64_t>& head) {
    std::vector<std::int64_t> sizes = head;
    sizes.resize(static_cast<std::size_t>(u), 3);
    std::vector<std::int64_t> off(sizes.size());
    std::int64_t run = 0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      off[i] = run;
      run += sizes[i];
    }
    GatherShape shape{w, e, u, run, total - run};
    RoundSchedule sched(shape, off, sizes);
    std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));
    for (int j = 0; j < e; ++j) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t raw = sched.read(lane, j).raw;
        const std::int64_t l = raw / p;
        const std::int64_t x = numtheory::mod(raw % p - l % 3, p);  // backward
        addrs[static_cast<std::size_t>(lane)] = l * p + x;
      }
      ASSERT_EQ(gpusim::shared_access_cost(addrs, w).conflicts, 0);
    }
  });
}

TEST(FaultInjection, CollidingShiftClassesAreCaught) {
  // A genuinely broken rho: partition 1 left unshifted (shift classes
  // {0, 0, 2} collide modulo d) must produce conflicts for some split.
  const int w = 9, e = 6, u = 9;  // d = 3
  const std::int64_t total = static_cast<std::int64_t>(u) * e;
  const CircularShift rho(w, e, total);
  const std::int64_t p = rho.partition_size();
  bool any_conflict = false;
  for_all_splits(3, 6, [&](const std::vector<std::int64_t>& head) {
    std::vector<std::int64_t> sizes = head;
    sizes.resize(static_cast<std::size_t>(u), 3);
    std::vector<std::int64_t> off(sizes.size());
    std::int64_t run = 0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      off[i] = run;
      run += sizes[i];
    }
    GatherShape shape{w, e, u, run, total - run};
    RoundSchedule sched(shape, off, sizes);
    std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));
    for (int j = 0; j < e && !any_conflict; ++j) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t raw = sched.read(lane, j).raw;
        const std::int64_t l = raw / p;
        addrs[static_cast<std::size_t>(lane)] =
            l == 1 ? raw : rho(raw);  // partition 1 unshifted: broken
      }
      if (gpusim::shared_access_cost(addrs, w).conflicts > 0) any_conflict = true;
    }
  });
  EXPECT_TRUE(any_conflict)
      << "colliding shift classes should conflict somewhere; if not, the "
         "validator has no teeth";
}

TEST(FaultInjection, DroppingPiIsCaught) {
  // Reading B forward (no reversal) makes some thread read two elements in
  // one round — detected as a double-read (coverage violation) or conflict.
  const int w = 8, e = 5, u = 8;
  std::vector<std::int64_t> sizes{2, 3, 5, 0, 1, 4, 2, 3};
  std::vector<std::int64_t> off(sizes.size());
  std::int64_t la = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    off[i] = la;
    la += sizes[i];
  }
  const std::int64_t total = static_cast<std::int64_t>(u) * e;
  GatherShape shape{w, e, u, la, total - la};
  RoundSchedule sched(shape, off, sizes);
  // Count reads per (thread, round) under the UNreversed B placement:
  // element y of B_i sits at raw la + b_i + y and is read in its round
  // (la + b_i + y) mod E — collect per-thread-round multiplicities.
  std::vector<int> reads(static_cast<std::size_t>(u * e), 0);
  for (int i = 0; i < u; ++i) {
    for (std::int64_t x = 0; x < sched.a_size(i); ++x)
      ++reads[static_cast<std::size_t>(
          i * e + numtheory::mod(sched.a_offset(i) + x, e))];
    for (std::int64_t y = 0; y < sched.b_size(i); ++y)
      ++reads[static_cast<std::size_t>(
          i * e + numtheory::mod(la + sched.b_offset(i) + y, e))];
  }
  int max_reads = 0;
  for (const int r : reads) max_reads = std::max(max_reads, r);
  EXPECT_GE(max_reads, 2) << "without pi some thread needs 2 reads in a round "
                             "(Figure 7's stall)";
}

TEST(PermutationAlgebra, RhoIsShiftHomomorphism) {
  // rho restricted to one partition is addition by (l mod d) modulo P.
  const CircularShift rho(12, 9, 3 * 36);  // d = 3, P = 36
  for (std::int64_t l = 0; l < 3; ++l) {
    for (std::int64_t x = 0; x < 36; ++x) {
      const std::int64_t m = l * 36 + x;
      EXPECT_EQ(rho(m), l * 36 + numtheory::mod(x + l % 3, 36));
    }
  }
}

TEST(PermutationAlgebra, PiIsAnInvolutionOnB) {
  const BReversal pi(10, 7);
  for (std::int64_t y = 0; y < 7; ++y) {
    const std::int64_t m = pi.raw_of_b(y);
    EXPECT_EQ(pi.b_of_raw(m), y);
    EXPECT_EQ(pi.raw_of_b(pi.b_of_raw(m)), m);
  }
}

TEST(ScheduleExhaustive, ValidatorRejectsDoubleCoverageByConstruction) {
  // Sanity check that validate_schedule actually detects a coverage bug:
  // feed it a schedule whose splits disagree with the shape (constructed by
  // by-passing RoundSchedule's own validation through a legal but
  // different shape is impossible — so instead assert the validation error
  // path of RoundSchedule itself).
  GatherShape shape{4, 3, 4, 6, 6};
  std::vector<std::int64_t> off{0, 2, 4, 5};
  std::vector<std::int64_t> sz{2, 2, 1, 2};  // sums to 7 != la = 6
  EXPECT_THROW(RoundSchedule(shape, off, sz), std::invalid_argument);
}
