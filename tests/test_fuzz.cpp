// Randomized stress test: sorts under randomly drawn devices,
// configurations and distributions, verifying output correctness and the
// CF-Merge zero-conflict invariant each time.  Default 30 iterations;
// set CFMERGE_FUZZ_ITERS for longer soaks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>

#include "gpusim/launcher.hpp"
#include "sort/batched_merge.hpp"
#include "sort/merge_arrays.hpp"
#include "sort/merge_sort.hpp"

using namespace cfmerge;

namespace {

int fuzz_iters() {
  if (const char* s = std::getenv("CFMERGE_FUZZ_ITERS")) return std::atoi(s);
  return 30;
}

struct FuzzConfig {
  int w;
  int sms;
  sort::MergeConfig cfg;
  std::int64_t n;
};

FuzzConfig draw(std::mt19937_64& rng) {
  for (;;) {
    FuzzConfig f;
    const int ws[] = {4, 8, 16, 32};
    f.w = ws[rng() % 4];
    f.sms = 1 + static_cast<int>(rng() % 4);
    f.cfg.e = 2 + static_cast<int>(rng() % (f.w + 3));  // includes E > w
    int u = f.w;
    const int doublings = static_cast<int>(rng() % 4);
    for (int i = 0; i < doublings; ++i) u *= 2;
    f.cfg.u = u;
    f.cfg.variant = (rng() % 2 == 0) ? sort::Variant::Baseline : sort::Variant::CFMerge;
    f.cfg.cf_blocksort = rng() % 4 == 0;
    f.cfg.cf_output_scatter = rng() % 2 == 0;
    f.n = 1 + static_cast<std::int64_t>(rng() % (f.cfg.tile() * 6));
    // Reject configurations whose tile (plus the cf_blocksort staging
    // buffer) cannot fit on the tiny device.
    const gpusim::DeviceSpec dev = gpusim::DeviceSpec::tiny(f.w, f.sms);
    const bool staging = f.cfg.variant == sort::Variant::CFMerge && f.cfg.cf_blocksort;
    const std::size_t shared_need = static_cast<std::size_t>(f.cfg.tile()) * sizeof(int) *
                                    (staging ? 2 : 1);
    if (f.cfg.u > dev.max_threads_per_sm) continue;
    if (shared_need > dev.shared_bytes_per_sm) continue;
    return f;
  }
}

}  // namespace

TEST(Fuzz, RandomConfigurationsSortCorrectly) {
  std::mt19937_64 rng(0xF0220);
  const int iters = fuzz_iters();
  for (int it = 0; it < iters; ++it) {
    const FuzzConfig f = draw(rng);
    SCOPED_TRACE("iter " + std::to_string(it) + ": w=" + std::to_string(f.w) +
                 " E=" + std::to_string(f.cfg.e) + " u=" + std::to_string(f.cfg.u) +
                 " n=" + std::to_string(f.n) +
                 (f.cfg.variant == sort::Variant::CFMerge ? " cf" : " base") +
                 (f.cfg.cf_blocksort ? " cfbsort" : ""));
    gpusim::DeviceSpec dev = gpusim::DeviceSpec::tiny(f.w, f.sms);
    if (rng() % 3 == 0) dev.l2_bytes = 64 * 1024;  // occasionally exercise the L2
    gpusim::Launcher launcher(dev);

    std::vector<int> data(static_cast<std::size_t>(f.n));
    // Mixed value regimes: full range, tiny range (duplicates), sorted-ish.
    const int mode = static_cast<int>(rng() % 3);
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (mode == 0)
        data[i] = static_cast<int>(rng());
      else if (mode == 1)
        data[i] = static_cast<int>(rng() % 5);
      else
        data[i] = static_cast<int>(i) - static_cast<int>(rng() % 3);
    }
    std::vector<int> expect = data;
    std::sort(expect.begin(), expect.end());

    const auto report = sort::merge_sort(launcher, data, f.cfg);
    ASSERT_EQ(data, expect);
    if (f.cfg.variant == sort::Variant::CFMerge) {
      ASSERT_EQ(report.merge_conflicts(), 0u);
    }
    ASSERT_GT(report.microseconds, 0.0);
  }
}

TEST(Fuzz, RandomMergePairs) {
  std::mt19937_64 rng(0xF0221);
  const int iters = fuzz_iters();
  for (int it = 0; it < iters; ++it) {
    const FuzzConfig f = draw(rng);
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(f.w, f.sms));
    std::vector<int> a(static_cast<std::size_t>(rng() % (f.cfg.tile() * 2 + 1)));
    std::vector<int> b(static_cast<std::size_t>(rng() % (f.cfg.tile() * 2 + 1)));
    for (auto& x : a) x = static_cast<int>(rng() % 100000);
    for (auto& x : b) x = static_cast<int>(rng() % 100000);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<int> out, expect;
    std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(expect));
    const auto report = sort::merge_arrays(launcher, a, b, out, f.cfg);
    SCOPED_TRACE("iter " + std::to_string(it));
    ASSERT_EQ(out, expect);
    if (f.cfg.variant == sort::Variant::CFMerge) {
      ASSERT_EQ(report.merge_conflicts(), 0u);
    }
  }
}

TEST(Fuzz, RandomBatches) {
  std::mt19937_64 rng(0xF0222);
  const int iters = std::max(1, fuzz_iters() / 3);
  for (int it = 0; it < iters; ++it) {
    const FuzzConfig f = draw(rng);
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(f.w, f.sms));
    const int pairs = 1 + static_cast<int>(rng() % 6);
    std::vector<std::vector<int>> as(static_cast<std::size_t>(pairs));
    std::vector<std::vector<int>> bs(static_cast<std::size_t>(pairs));
    for (int p = 0; p < pairs; ++p) {
      as[static_cast<std::size_t>(p)].resize(rng() % (static_cast<std::uint64_t>(f.cfg.tile()) + 1));
      bs[static_cast<std::size_t>(p)].resize(rng() % (static_cast<std::uint64_t>(f.cfg.tile()) + 1));
      for (auto& x : as[static_cast<std::size_t>(p)]) x = static_cast<int>(rng() % 9999);
      for (auto& x : bs[static_cast<std::size_t>(p)]) x = static_cast<int>(rng() % 9999);
      std::sort(as[static_cast<std::size_t>(p)].begin(), as[static_cast<std::size_t>(p)].end());
      std::sort(bs[static_cast<std::size_t>(p)].begin(), bs[static_cast<std::size_t>(p)].end());
    }
    std::vector<std::vector<int>> outs;
    sort::batched_merge(launcher, as, bs, outs, f.cfg);
    SCOPED_TRACE("iter " + std::to_string(it));
    for (int p = 0; p < pairs; ++p) {
      std::vector<int> expect;
      std::merge(as[static_cast<std::size_t>(p)].begin(), as[static_cast<std::size_t>(p)].end(),
                 bs[static_cast<std::size_t>(p)].begin(), bs[static_cast<std::size_t>(p)].end(),
                 std::back_inserter(expect));
      ASSERT_EQ(outs[static_cast<std::size_t>(p)], expect) << "pair " << p;
    }
  }
}
