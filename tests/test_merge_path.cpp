// Tests of merge path (co-rank) search and partitioning.
#include "mergepath/merge_path.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace mp = cfmerge::mergepath;

namespace {
std::vector<int> sorted_random(std::mt19937_64& rng, std::size_t n, int lo = 0, int hi = 1000) {
  std::uniform_int_distribution<int> d(lo, hi);
  std::vector<int> v(n);
  for (auto& x : v) x = d(rng);
  std::sort(v.begin(), v.end());
  return v;
}

// Reference: stable merge positions — co-rank of diag is the number of
// A-elements among the first diag outputs of the stable merge.
std::vector<std::int64_t> reference_coranks(const std::vector<int>& a,
                                            const std::vector<int>& b) {
  std::vector<std::int64_t> co(a.size() + b.size() + 1);
  std::size_t i = 0, j = 0;
  co[0] = 0;
  for (std::size_t k = 0; k < a.size() + b.size(); ++k) {
    const bool take_a = i < a.size() && (j >= b.size() || a[i] <= b[j]);
    if (take_a)
      ++i;
    else
      ++j;
    co[k + 1] = static_cast<std::int64_t>(i);
  }
  return co;
}
}  // namespace

TEST(MergePath, MatchesStableMergeOnRandomInputs) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = sorted_random(rng, rng() % 64);
    const auto b = sorted_random(rng, rng() % 64);
    const auto ref = reference_coranks(a, b);
    for (std::int64_t diag = 0; diag <= static_cast<std::int64_t>(a.size() + b.size());
         ++diag) {
      EXPECT_EQ(mp::merge_path<int>(diag, a, b), ref[static_cast<std::size_t>(diag)])
          << "diag=" << diag;
    }
  }
}

TEST(MergePath, TiesPreferA) {
  // Stability: on equal keys, A's elements come first.
  const std::vector<int> a{5, 5, 5};
  const std::vector<int> b{5, 5};
  EXPECT_EQ(mp::merge_path<int>(1, a, b), 1);
  EXPECT_EQ(mp::merge_path<int>(3, a, b), 3);
  EXPECT_EQ(mp::merge_path<int>(4, a, b), 3);
}

TEST(MergePath, EmptySides) {
  const std::vector<int> a{1, 2, 3};
  const std::vector<int> empty;
  EXPECT_EQ(mp::merge_path<int>(2, a, empty), 2);
  EXPECT_EQ(mp::merge_path<int>(2, empty, a), 0);
  EXPECT_EQ(mp::merge_path<int>(0, a, a), 0);
}

TEST(MergePath, ExtremesConsumeEverything) {
  std::mt19937_64 rng(8);
  const auto a = sorted_random(rng, 40);
  const auto b = sorted_random(rng, 25);
  EXPECT_EQ(mp::merge_path<int>(65, a, b), 40);
  EXPECT_EQ(mp::merge_path<int>(0, a, b), 0);
}

TEST(CoRankBounds, ClampToValidRectangle) {
  const auto bounds = mp::corank_bounds(10, 4, 20);
  EXPECT_EQ(bounds.lo, 0);
  EXPECT_EQ(bounds.hi, 4);
  const auto bounds2 = mp::corank_bounds(22, 4, 20);
  EXPECT_EQ(bounds2.lo, 2);
  EXPECT_EQ(bounds2.hi, 4);
}

TEST(Partition, ChunksCoverOutputExactly) {
  std::mt19937_64 rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = sorted_random(rng, 64 + rng() % 64);
    const auto b = sorted_random(rng, 64 + rng() % 64);
    const std::int64_t chunk = 1 + static_cast<std::int64_t>(rng() % 32);
    const auto co = mp::partition<int>(a, b, chunk);
    EXPECT_EQ(co.front(), 0);
    EXPECT_EQ(co.back(), static_cast<std::int64_t>(a.size()));
    // Merging each chunk independently reproduces the full merge.
    std::vector<int> merged;
    for (std::size_t p = 0; p + 1 < co.size(); ++p) {
      const std::int64_t d0 = std::min<std::int64_t>(
          static_cast<std::int64_t>(p) * chunk, static_cast<std::int64_t>(a.size() + b.size()));
      const std::int64_t d1 = std::min<std::int64_t>(
          d0 + chunk, static_cast<std::int64_t>(a.size() + b.size()));
      std::vector<int> part;
      std::merge(a.begin() + co[p], a.begin() + co[p + 1],
                 b.begin() + (d0 - co[p]), b.begin() + (d1 - co[p + 1]),
                 std::back_inserter(part));
      merged.insert(merged.end(), part.begin(), part.end());
    }
    std::vector<int> expect;
    std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(expect));
    EXPECT_EQ(merged, expect);
  }
}

TEST(WarpCorankSearch, LockstepMatchesHostSearch) {
  std::mt19937_64 rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = sorted_random(rng, 50);
    const auto b = sorted_random(rng, 70);
    const int w = 8;
    std::vector<mp::LaneSearch> lanes(w);
    std::vector<std::int64_t> diags(w);
    for (int l = 0; l < w; ++l) {
      diags[static_cast<std::size_t>(l)] = static_cast<std::int64_t>(rng() % 121);
      lanes[static_cast<std::size_t>(l)].init(diags[static_cast<std::size_t>(l)],
                                              static_cast<std::int64_t>(a.size()),
                                              static_cast<std::int64_t>(b.size()));
    }
    int probe_rounds = 0;
    auto probe = [&](std::span<const std::int64_t> a_addr, std::span<int> a_val,
                     std::span<const std::int64_t> b_addr, std::span<int> b_val) {
      ++probe_rounds;
      for (int l = 0; l < w; ++l) {
        const auto li = static_cast<std::size_t>(l);
        if (a_addr[li] != -1) a_val[li] = a[static_cast<std::size_t>(a_addr[li])];
        if (b_addr[li] != -1) b_val[li] = b[static_cast<std::size_t>(b_addr[li])];
      }
    };
    mp::warp_corank_search<int>(std::span<mp::LaneSearch>(lanes), probe, std::less<int>{});
    for (int l = 0; l < w; ++l) {
      EXPECT_EQ(lanes[static_cast<std::size_t>(l)].lo,
                mp::merge_path<int>(diags[static_cast<std::size_t>(l)], a, b));
    }
    // Lockstep rounds are bounded by the longest lane's binary search.
    EXPECT_LE(probe_rounds, 8);
  }
}

TEST(WarpCorankSearch, InactiveLanesStayUntouched) {
  const std::vector<int> a{1, 3, 5};
  const std::vector<int> b{2, 4, 6};
  std::vector<mp::LaneSearch> lanes(4);  // only lane 0 active
  lanes[0].init(3, 3, 3);
  auto probe = [&](std::span<const std::int64_t> a_addr, std::span<int> a_val,
                   std::span<const std::int64_t> b_addr, std::span<int> b_val) {
    for (int l = 1; l < 4; ++l) {
      EXPECT_EQ(a_addr[static_cast<std::size_t>(l)], -1);
      EXPECT_EQ(b_addr[static_cast<std::size_t>(l)], -1);
    }
    if (a_addr[0] != -1) a_val[0] = a[static_cast<std::size_t>(a_addr[0])];
    if (b_addr[0] != -1) b_val[0] = b[static_cast<std::size_t>(b_addr[0])];
  };
  mp::warp_corank_search<int>(std::span<mp::LaneSearch>(lanes), probe, std::less<int>{});
  EXPECT_EQ(lanes[0].lo, mp::merge_path<int>(3, a, b));
}
