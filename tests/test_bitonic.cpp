// Tests of the bitonic sort baseline.
#include "sort/bitonic.hpp"
#include "sort/merge_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace cfmerge;
using namespace cfmerge::sort;

namespace {
std::vector<int> rand_vec(std::mt19937_64& rng, std::int64_t n, int hi = 1000000) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<int>(rng() % static_cast<std::uint64_t>(hi));
  return v;
}
}  // namespace

class BitonicPadded : public ::testing::TestWithParam<bool> {};

TEST_P(BitonicPadded, SortsPowerOfTwoSizes) {
  std::mt19937_64 rng(1);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  BitonicConfig cfg;
  cfg.u = 16;
  cfg.elems_per_thread = 2;
  cfg.padded = GetParam();
  for (const std::int64_t n : {32LL, 64LL, 256LL, 1024LL}) {
    std::vector<int> data = rand_vec(rng, n);
    std::vector<int> expect = data;
    std::sort(expect.begin(), expect.end());
    const auto report = bitonic_sort(launcher, data, cfg);
    EXPECT_EQ(data, expect) << "n=" << n;
    EXPECT_EQ(report.n, n);
  }
}

TEST_P(BitonicPadded, SortsRaggedSizes) {
  std::mt19937_64 rng(2);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  BitonicConfig cfg;
  cfg.u = 16;
  cfg.elems_per_thread = 2;
  cfg.padded = GetParam();
  for (const std::int64_t n : {1LL, 3LL, 33LL, 100LL, 777LL}) {
    std::vector<int> data = rand_vec(rng, n);
    std::vector<int> expect = data;
    std::sort(expect.begin(), expect.end());
    const auto report = bitonic_sort(launcher, data, cfg);
    EXPECT_EQ(data, expect) << "n=" << n;
    EXPECT_GE(report.n_padded, n);
  }
}

TEST_P(BitonicPadded, SortsAdversarialAndDuplicateInputs) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  BitonicConfig cfg;
  cfg.u = 16;
  cfg.elems_per_thread = 2;
  cfg.padded = GetParam();
  std::vector<std::vector<int>> inputs;
  std::vector<int> rev(512);
  for (int i = 0; i < 512; ++i) rev[static_cast<std::size_t>(i)] = 512 - i;
  inputs.push_back(rev);
  inputs.push_back(std::vector<int>(512, 7));
  std::vector<int> saw(512);
  for (int i = 0; i < 512; ++i) saw[static_cast<std::size_t>(i)] = i % 13;
  inputs.push_back(saw);
  for (auto data : inputs) {
    auto expect = data;
    std::sort(expect.begin(), expect.end());
    bitonic_sort(launcher, data, cfg);
    EXPECT_EQ(data, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, BitonicPadded, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "padded" : "plain";
                         });

TEST(Bitonic, EmptyInput) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  BitonicConfig cfg;
  cfg.u = 16;
  std::vector<int> data;
  const auto report = bitonic_sort(launcher, data, cfg);
  EXPECT_EQ(report.n, 0);
}

TEST(Bitonic, RejectsBadConfig) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  std::vector<int> data(64);
  BitonicConfig cfg;
  cfg.u = 12;  // not multiple of w
  EXPECT_THROW(bitonic_sort(launcher, data, cfg), std::invalid_argument);
  cfg.u = 16;
  cfg.elems_per_thread = 3;  // not a power of two
  EXPECT_THROW(bitonic_sort(launcher, data, cfg), std::invalid_argument);
}

TEST(Bitonic, StructuralConflictsInSmallStrides) {
  // Substages with stride j < w conflict 2-way regardless of data — a
  // structural pattern, unlike the mergesort's data-dependent conflicts.
  std::mt19937_64 rng(3);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  BitonicConfig cfg;
  cfg.u = 16;
  cfg.elems_per_thread = 2;
  std::vector<int> data = rand_vec(rng, 1024);
  const auto report = bitonic_sort(launcher, data, cfg);
  std::uint64_t exch_conf = 0, exch_acc = 0;
  for (const auto& [name, c] : report.phases.phases())
    if (name == "bitonic.exchange") {
      exch_conf = c.bank_conflicts;
      exch_acc = c.shared_accesses;
    }
  EXPECT_GT(exch_conf, 0u);
  EXPECT_GT(exch_acc, 0u);
  // Determinism: same conflicts on a different random input (structural).
  std::vector<int> data2 = rand_vec(rng, 1024);
  const auto report2 = bitonic_sort(launcher, data2, cfg);
  std::uint64_t exch_conf2 = 0;
  for (const auto& [name, c] : report2.phases.phases())
    if (name == "bitonic.exchange") exch_conf2 = c.bank_conflicts;
  EXPECT_EQ(exch_conf, exch_conf2);
}

TEST(Bitonic, MoreWorkThanMergesort) {
  // O(n log^2 n) network vs O(n log n) merges: bitonic must issue more
  // shared traffic at equal n (the paper's premise for using mergesort).
  std::mt19937_64 rng(4);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  const std::int64_t n = 16LL * 4 * 64;  // power of two for both
  std::vector<int> d1 = rand_vec(rng, n);
  BitonicConfig bcfg;
  bcfg.u = 16;
  bcfg.elems_per_thread = 2;
  const auto bit = bitonic_sort(launcher, d1, bcfg);
  std::vector<int> d2 = rand_vec(rng, n);
  sort::MergeConfig mcfg;
  mcfg.e = 4;
  mcfg.u = 16;
  mcfg.variant = Variant::CFMerge;
  const auto mrg = merge_sort(launcher, d2, mcfg);
  EXPECT_GT(bit.totals.shared_accesses + bit.totals.gmem_requests,
            mrg.totals.shared_accesses + mrg.totals.gmem_requests);
}
