// Tests of the CF-primitives layer: registry/catalog sanity, the generic
// verifier over every registered primitive (proofs for the CF ones,
// concrete replayed witnesses for the broken ablations), and the executed
// cf_permute / cf_transpose kernels — randomized round-trip oracle
// (forward then inverse is the identity), zero bank conflicts in every
// permute/transpose phase for w in {4, 8, 16, 32, 64}, and bit-identical
// reports across worker counts and both GraphExec modes.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "cfprims/check.hpp"
#include "cfprims/permute.hpp"
#include "cfprims/primitive.hpp"
#include "gather/permutation.hpp"
#include "gpusim/launcher.hpp"
#include "numtheory/numtheory.hpp"
#include "sort/engine.hpp"
#include "verify/primitive.hpp"

using namespace cfmerge;

namespace {

std::vector<std::int32_t> random_vec(std::int64_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::int32_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<std::int32_t>(rng());
  return v;
}

/// Runs one permute/transpose kernel over `in`, returning the output and
/// the kernel report.
struct RunResult {
  std::vector<std::int32_t> out;
  gpusim::KernelReport report;
};

RunResult run_op(gpusim::Launcher& launcher, const std::vector<std::int32_t>& in,
                 const cfprims::PermuteConfig& cfg,
                 gpusim::GraphExec mode = gpusim::GraphExec::Overlap) {
  cfprims::validate_permute_config(launcher.device(), cfg);
  const auto n = static_cast<std::int64_t>(in.size());
  EXPECT_EQ(n % cfg.tile(), 0);
  std::vector<std::int32_t> buf = in;
  std::vector<std::int32_t> out(in.size());
  gpusim::KernelGraph graph;
  gpusim::Stream stream = graph.stream();
  cfprims::enqueue_permute_pipeline(stream, buf, out, n, cfg);
  const gpusim::GraphReport g = launcher.run(graph, mode);
  EXPECT_EQ(g.kernels.size(), 1u);
  return RunResult{std::move(out), g.kernels.front()};
}

/// Total conflicts across the op's own phases (load/store included — the
/// whole kernel must be conflict-free).
std::uint64_t kernel_conflicts(const gpusim::KernelReport& r) {
  return r.total().bank_conflicts;
}

}  // namespace

TEST(CfprimsRegistry, CatalogNamesAndLookup) {
  const auto& all = cfprims::registry();
  ASSERT_GE(all.size(), 11u);
  const char* expected[] = {"cf_gather",         "cf_rank_scatter",
                            "cf_permute",        "cf_permute_inverse",
                            "cf_transpose",      "cf_transpose_inverse",
                            "cf_stride",         "cf_stage",
                            "cf_gather_no_pi",   "cf_gather_no_rho",
                            "cf_permute_no_rho"};
  for (const char* name : expected) {
    const cfprims::CFPrimitive* p = cfprims::find_primitive(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(p->name(), name);
    EXPECT_FALSE(p->description().empty());
  }
  EXPECT_EQ(cfprims::find_primitive("not_a_primitive"), nullptr);
}

TEST(CfprimsRegistry, FootprintsAndSupport) {
  const cfprims::PrimShape s{8, 4, 64, 0};
  EXPECT_EQ(cfprims::find_primitive("cf_gather")->shared_footprint(s), s.tile());
  EXPECT_EQ(cfprims::find_primitive("cf_permute")->shared_footprint(s), 2 * s.tile());
  EXPECT_EQ(cfprims::find_primitive("cf_transpose")->shared_footprint(s), 2 * s.tile());
  // Broken rho ablations only exist where rho matters: gcd(w, E) > 1.
  EXPECT_TRUE(cfprims::find_primitive("cf_permute_no_rho")->supports(8, 4));
  EXPECT_FALSE(cfprims::find_primitive("cf_permute_no_rho")->supports(8, 3));
  EXPECT_FALSE(cfprims::find_primitive("cf_permute")->supports(8, 1));
  EXPECT_FALSE(cfprims::find_primitive("cf_permute")->supports(8, 9));
  // The raw stride-E CRS is only CF when E is coprime with w; the staging
  // runs are CF for every supported shape and need w extra base slots.
  EXPECT_TRUE(cfprims::find_primitive("cf_stride")->supports(8, 3));
  EXPECT_FALSE(cfprims::find_primitive("cf_stride")->supports(8, 4));
  EXPECT_TRUE(cfprims::find_primitive("cf_stage")->supports(8, 4));
  EXPECT_EQ(cfprims::find_primitive("cf_stage")->shared_footprint(s), s.tile() + 8);
}

TEST(CfprimsVerify, GenericPathProvesEveryCFPrimitive) {
  for (int w : {4, 8, 16, 32}) {
    for (int e : {2, 3, 4, w / 2 + 1, w}) {
      if (e <= 1 || e > w) continue;
      for (const cfprims::CFPrimitive* prim : cfprims::registry()) {
        if (!prim->supports(w, e) || !prim->expected_conflict_free(w, e)) continue;
        const verify::ProofObject po = verify::verify_primitive(*prim, w, e);
        EXPECT_EQ(po.verdict, verify::Verdict::kProved)
            << prim->name() << " w=" << w << " E=" << e;
        EXPECT_EQ(po.family, prim->name());
      }
    }
  }
}

TEST(CfprimsVerify, BrokenVariantsRefutedWithReplayableWitness) {
  for (int w : {4, 8, 16, 32}) {
    for (int e : {2, 4, w}) {
      if (e <= 1 || e > w) continue;
      for (const cfprims::CFPrimitive* prim : cfprims::registry()) {
        if (!prim->supports(w, e) || prim->expected_conflict_free(w, e)) continue;
        const verify::ProofObject po = verify::verify_primitive(*prim, w, e);
        EXPECT_EQ(po.verdict, verify::Verdict::kCounterexample)
            << prim->name() << " w=" << w << " E=" << e;
        const verify::Counterexample& cx = po.counterexample;
        // The witness must name two same-warp lanes hitting one bank at
        // distinct addresses.
        EXPECT_EQ(cx.lane1 / w, cx.lane2 / w);
        EXPECT_NE(cx.addr1, cx.addr2);
        EXPECT_EQ(numtheory::mod(cx.addr1, w), cx.bank);
        EXPECT_EQ(numtheory::mod(cx.addr2, w), cx.bank);
      }
    }
  }
}

TEST(CfprimsVerify, UnsupportedShapeThrows) {
  const cfprims::CFPrimitive* p = cfprims::find_primitive("cf_permute");
  ASSERT_NE(p, nullptr);
  EXPECT_THROW((void)verify::verify_primitive(*p, 8, 1), std::invalid_argument);
  EXPECT_THROW((void)verify::verify_primitive(*p, 8, 9), std::invalid_argument);
}

TEST(CfprimsScan, CountsAndLocatesConflicts) {
  // Stride-2 addressing on w=4: lanes {0,2} and {1,3} pair up per window.
  const cfprims::ConflictScan scan = cfprims::scan_conflicts(
      4, 1, 8, [](std::int64_t i, std::int64_t) { return 2 * i; });
  EXPECT_GT(scan.total_conflicts, 0);
  EXPECT_TRUE(scan.found);
  EXPECT_NE(scan.addr1, scan.addr2);
  EXPECT_EQ(numtheory::mod(scan.addr1, 4), scan.bank);
  EXPECT_EQ(numtheory::mod(scan.addr2, 4), scan.bank);
  const cfprims::ConflictScan clean = cfprims::scan_conflicts(
      4, 1, 8, [](std::int64_t i, std::int64_t) { return i; });
  EXPECT_EQ(clean.total_conflicts, 0);
  EXPECT_FALSE(clean.found);
}

TEST(CfprimsPermute, ForwardAppliesRhoAndRoundTripsConflictFree) {
  for (int w : {4, 8, 16, 32, 64}) {
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(w, 2));
    for (int e : {2, 3, w / 2, w}) {
      if (e <= 1 || e > w) continue;
      cfprims::PermuteConfig cfg;
      cfg.op = cfprims::PermuteOp::kPermute;
      cfg.e = e;
      cfg.u = 2 * w;
      const std::int64_t tile = cfg.tile();
      // Two shared tiles per block; skip shapes the tiny device can't host.
      if (2 * tile * static_cast<std::int64_t>(sizeof(std::int32_t)) >
          launcher.device().shared_bytes_per_sm)
        continue;
      const auto in = random_vec(3 * tile, 7 * static_cast<std::uint64_t>(w) + e);

      const RunResult fwd = run_op(launcher, in, cfg);
      EXPECT_EQ(kernel_conflicts(fwd.report), 0u)
          << "forward w=" << w << " E=" << e;
      // out[rho(x)] = in[x] within each tile.
      const gather::CircularShift rho(w, e, tile);
      for (std::int64_t b = 0; b < 3; ++b)
        for (std::int64_t x = 0; x < tile; ++x)
          ASSERT_EQ(fwd.out[static_cast<std::size_t>(b * tile + rho(x))],
                    in[static_cast<std::size_t>(b * tile + x)])
              << "w=" << w << " E=" << e << " x=" << x;

      cfg.inverse = true;
      const RunResult inv = run_op(launcher, fwd.out, cfg);
      EXPECT_EQ(kernel_conflicts(inv.report), 0u)
          << "inverse w=" << w << " E=" << e;
      EXPECT_EQ(inv.out, in) << "round trip w=" << w << " E=" << e;
    }
  }
}

TEST(CfprimsTranspose, TransposesAndRoundTripsConflictFree) {
  for (int w : {4, 8, 16, 32, 64}) {
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(w, 2));
    for (int e : {2, 3, w / 2, w}) {
      if (e <= 1 || e > w) continue;
      cfprims::PermuteConfig cfg;
      cfg.op = cfprims::PermuteOp::kTranspose;
      cfg.e = e;
      cfg.u = 2 * w;
      const std::int64_t tile = cfg.tile();
      if (2 * tile * static_cast<std::int64_t>(sizeof(std::int32_t)) >
          launcher.device().shared_bytes_per_sm)
        continue;
      const auto in = random_vec(2 * tile, 11 * static_cast<std::uint64_t>(w) + e);

      const RunResult fwd = run_op(launcher, in, cfg);
      EXPECT_EQ(kernel_conflicts(fwd.report), 0u)
          << "forward w=" << w << " E=" << e;
      // out[j*u + i] = in[i*E + j] within each tile.
      for (std::int64_t b = 0; b < 2; ++b)
        for (std::int64_t i = 0; i < cfg.u; ++i)
          for (std::int64_t j = 0; j < e; ++j)
            ASSERT_EQ(fwd.out[static_cast<std::size_t>(b * tile + j * cfg.u + i)],
                      in[static_cast<std::size_t>(b * tile + i * e + j)])
                << "w=" << w << " E=" << e;

      cfprims::PermuteConfig icfg = cfg;
      icfg.inverse = true;
      const RunResult inv = run_op(launcher, fwd.out, icfg);
      EXPECT_EQ(kernel_conflicts(inv.report), 0u)
          << "inverse w=" << w << " E=" << e;
      EXPECT_EQ(inv.out, in) << "round trip w=" << w << " E=" << e;
    }
  }
}

TEST(CfprimsEngine, PermutePlansAreCachedAndRoundTrip) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8, 2));
  sort::SortEngine engine(launcher);
  cfprims::PermuteConfig fwd;
  fwd.e = 4;
  fwd.u = 16;
  cfprims::PermuteConfig inv = fwd;
  inv.inverse = true;

  const auto original = random_vec(5 * fwd.tile() + 7, 123);  // ragged tail
  for (int call = 0; call < 2; ++call) {
    auto data = original;
    const cfprims::PermuteReport f = engine.permute(data, fwd);
    EXPECT_EQ(f.n, static_cast<std::int64_t>(original.size()));
    EXPECT_EQ(f.n_padded, 6 * fwd.tile());
    EXPECT_EQ(static_cast<std::int64_t>(data.size()), f.n_padded);
    EXPECT_EQ(f.totals.bank_conflicts, 0u);
    EXPECT_GT(f.microseconds, 0.0);
    const cfprims::PermuteReport i = engine.permute(data, inv);
    EXPECT_EQ(i.totals.bank_conflicts, 0u);
    data.resize(original.size());
    EXPECT_EQ(data, original);
  }
  // Forward and inverse each built one plan on the first call and hit on
  // the second.
  const sort::EngineStats es = engine.stats();
  EXPECT_EQ(es.plan_misses, 2u);
  EXPECT_EQ(es.plan_hits, 2u);
}

TEST(CfprimsEngine, TransposeKeyedSeparatelyFromPermute) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8, 2));
  sort::SortEngine engine(launcher);
  cfprims::PermuteConfig p;
  p.e = 4;
  p.u = 16;
  auto data = random_vec(p.tile(), 5);
  engine.permute(data, p);
  p.op = cfprims::PermuteOp::kTranspose;
  auto data2 = random_vec(p.tile(), 6);
  const cfprims::PermuteReport t = engine.permute(data2, p);
  EXPECT_STREQ(t.op_name(), "cf_transpose");
  EXPECT_EQ(t.kernels.front().name, "cf_transpose");
  EXPECT_EQ(engine.stats().plan_misses, 2u);  // distinct kinds, distinct plans
}

TEST(CfprimsPermute, ReportsBitIdenticalAcrossThreadsAndModes) {
  for (const cfprims::PermuteOp op :
       {cfprims::PermuteOp::kPermute, cfprims::PermuteOp::kTranspose}) {
    cfprims::PermuteConfig cfg;
    cfg.op = op;
    cfg.e = 6;
    cfg.u = 16;
    const auto in = random_vec(4 * cfg.tile(), 99);

    gpusim::Launcher ref_launcher(gpusim::DeviceSpec::tiny(8, 2));
    const RunResult ref = run_op(ref_launcher, in, cfg);
    for (int threads : {1, 2, 4}) {
      for (const auto mode : {gpusim::GraphExec::Serial, gpusim::GraphExec::Overlap}) {
        gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8, 2));
        launcher.set_threads(threads);
        const RunResult got = run_op(launcher, in, cfg, mode);
        EXPECT_EQ(got.out, ref.out);
        EXPECT_EQ(got.report.counters.phases(), ref.report.counters.phases());
        EXPECT_EQ(got.report.timing.microseconds, ref.report.timing.microseconds);
      }
    }
  }
}
