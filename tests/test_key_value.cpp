// Tests of key-value sorting (sort_by_key) and the padding sentinel trait.
#include "sort/key_value.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "gpusim/launcher.hpp"
#include "sort/merge_sort.hpp"

using namespace cfmerge;
using namespace cfmerge::sort;

TEST(KeyValueStruct, ComparesByKeyOnly) {
  const KeyValue<int, int> a{1, 99};
  const KeyValue<int, int> b{2, 0};
  const KeyValue<int, int> c{1, 0};
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a < c);
  EXPECT_TRUE(a == c);  // key equality
}

TEST(PaddingSentinel, MaxForScalarsAndPairs) {
  EXPECT_EQ(padding_sentinel<int>::value(), std::numeric_limits<int>::max());
  EXPECT_EQ(padding_sentinel<float>::value(), std::numeric_limits<float>::max());
  const auto kv = padding_sentinel<KeyValue<int, double>>::value();
  EXPECT_EQ(kv.key, std::numeric_limits<int>::max());
}

namespace {

struct ByKeyCase {
  Variant variant;
  std::int64_t n;
};

void check_sort_by_key(Variant variant, std::int64_t n, int key_range,
                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int> keys(static_cast<std::size_t>(n));
  std::vector<std::int64_t> values(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<int>(rng() % static_cast<std::uint64_t>(key_range));
    values[i] = static_cast<std::int64_t>(i) * 1000 + keys[i];  // encodes its key
  }
  // Expected key multiset per key.
  std::map<int, std::multiset<std::int64_t>> expect;
  for (std::size_t i = 0; i < keys.size(); ++i)
    expect[keys[i]].insert(values[i]);

  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.variant = variant;
  const auto report = merge_sort_by_key(launcher, keys, values, cfg);
  EXPECT_EQ(report.n, n);

  ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  // Every value still travels with its key, and multisets per key match.
  std::map<int, std::multiset<std::int64_t>> got;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(static_cast<int>(values[i] % 1000), keys[i]) << "value decoupled from key";
    got[keys[i]].insert(values[i]);
  }
  EXPECT_EQ(got, expect);
}

}  // namespace

TEST(SortByKey, BaselineVariant) {
  check_sort_by_key(Variant::Baseline, 16 * 5 * 8, 1000, 1);
  check_sort_by_key(Variant::Baseline, 777, 50, 2);  // ragged + duplicates
}

TEST(SortByKey, CFMergeVariant) {
  check_sort_by_key(Variant::CFMerge, 16 * 5 * 8, 1000, 3);
  check_sort_by_key(Variant::CFMerge, 777, 50, 4);
}

TEST(SortByKey, BaselineIsStable) {
  // The baseline path is a stable mergesort: equal keys keep input order.
  std::mt19937_64 rng(5);
  const std::int64_t n = 16 * 5 * 4;
  std::vector<int> keys(static_cast<std::size_t>(n));
  std::vector<std::int64_t> values(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<int>(rng() % 7);  // heavy duplicates
    values[i] = static_cast<std::int64_t>(i);
  }
  std::vector<std::pair<int, std::int64_t>> expect(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) expect[i] = {keys[i], values[i]};
  std::stable_sort(expect.begin(), expect.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.variant = Variant::Baseline;
  merge_sort_by_key(launcher, keys, values, cfg);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], expect[i].first);
    EXPECT_EQ(values[i], expect[i].second) << "stability violated at " << i;
  }
}

TEST(SortByKey, CFMergeCorrectForDistinctKeys) {
  // With distinct keys the CF variant is trivially "stable" too.
  std::mt19937_64 rng(6);
  const std::int64_t n = 16 * 5 * 4;
  std::vector<int> keys(static_cast<std::size_t>(n));
  std::vector<std::int64_t> values(static_cast<std::size_t>(n));
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), rng);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = perm[i];
    values[i] = -static_cast<std::int64_t>(perm[i]);
  }
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.variant = Variant::CFMerge;
  merge_sort_by_key(launcher, keys, values, cfg);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], static_cast<int>(i));
    EXPECT_EQ(values[i], -static_cast<std::int64_t>(i));
  }
}

TEST(SortByKey, MismatchedSizesRejected) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  std::vector<int> keys(10);
  std::vector<int> values(9);
  EXPECT_THROW(merge_sort_by_key(launcher, keys, values, cfg), std::invalid_argument);
}

TEST(SortByKey, CFMergeStillConflictFreeWithPairs) {
  // 8-byte elements change the coalescing but not the bank schedule.
  std::mt19937_64 rng(7);
  std::vector<int> keys(16 * 6 * 8);
  std::vector<int> values(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<int>(rng());
    values[i] = static_cast<int>(i);
  }
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 6;  // non-coprime
  cfg.u = 16;
  cfg.variant = Variant::CFMerge;
  const auto report = merge_sort_by_key(launcher, keys, values, cfg);
  EXPECT_EQ(report.merge_conflicts(), 0u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}
