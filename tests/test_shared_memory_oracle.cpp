// Randomized equivalence tests for the bank conflict model.
//
// The hot-path implementations in shared_memory.hpp (bucketed counters with
// a conflict-free screening pass, per-bank chain scan for the general case)
// replaced a straightforward sort-based formulation.  These tests keep a
// local copy of the sort-based oracle and check the shipped implementations
// against it on randomized warps covering every width the simulator
// supports, idle lanes, duplicated (broadcast) addresses and the degenerate
// all-same-address warp — for both values of the scattered_hint, which must
// never change the result.
#include "gpusim/shared_memory.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

using cfmerge::gpusim::kInactiveLane;
using cfmerge::gpusim::kMaxLanes;
using cfmerge::gpusim::shared_access_cost;
using cfmerge::gpusim::shared_access_degrees;
using cfmerge::gpusim::SharedAccessCost;

namespace {

/// Sort-based oracle: sort the active (bank, address) pairs, drop duplicate
/// addresses (broadcast) and count the run length per bank.
SharedAccessCost oracle_cost(std::span<const std::int64_t> addrs, int banks) {
  SharedAccessCost c;
  std::vector<std::pair<std::int64_t, std::int64_t>> pairs;  // (bank, addr)
  for (const std::int64_t a : addrs) {
    if (a == kInactiveLane) continue;
    ++c.active_lanes;
    pairs.emplace_back(a % banks, a);
  }
  if (c.active_lanes == 0) return c;
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  int max_degree = 0;
  for (std::size_t i = 0; i < pairs.size();) {
    std::size_t j = i;
    while (j < pairs.size() && pairs[j].first == pairs[i].first) ++j;
    max_degree = std::max(max_degree, static_cast<int>(j - i));
    i = j;
  }
  c.cycles = max_degree;
  c.conflicts = max_degree - 1;
  return c;
}

/// Sort-based oracle for the per-bank degree histogram.
std::vector<int> oracle_degrees(std::span<const std::int64_t> addrs, int banks) {
  std::vector<std::int64_t> distinct;
  for (const std::int64_t a : addrs)
    if (a != kInactiveLane) distinct.push_back(a);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  std::vector<int> deg(static_cast<std::size_t>(banks), 0);
  for (const std::int64_t a : distinct) ++deg[static_cast<std::size_t>(a % banks)];
  return deg;
}

void expect_matches_oracle(std::span<const std::int64_t> addrs, int banks) {
  const SharedAccessCost want = oracle_cost(addrs, banks);
  for (const bool hint : {false, true}) {
    const SharedAccessCost got = shared_access_cost(addrs, banks, hint);
    ASSERT_EQ(got.cycles, want.cycles) << "banks=" << banks << " hint=" << hint;
    ASSERT_EQ(got.conflicts, want.conflicts) << "banks=" << banks << " hint=" << hint;
    ASSERT_EQ(got.active_lanes, want.active_lanes)
        << "banks=" << banks << " hint=" << hint;
  }
  std::vector<int> scratch(static_cast<std::size_t>(banks));
  const auto got_deg = shared_access_degrees(addrs, banks, scratch);
  const auto want_deg = oracle_degrees(addrs, banks);
  ASSERT_EQ(std::vector<int>(got_deg.begin(), got_deg.end()), want_deg)
      << "banks=" << banks;
}

constexpr int kWidths[] = {4, 8, 16, 32, 64};

}  // namespace

TEST(SharedAccessOracle, RandomizedUniformAddresses) {
  std::mt19937_64 rng(20260805);
  for (const int w : kWidths) {
    for (int trial = 0; trial < 400; ++trial) {
      std::uniform_int_distribution<std::int64_t> addr(0, 4 * w - 1);
      std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));
      for (auto& a : addrs) a = addr(rng);
      expect_matches_oracle(addrs, w);
    }
  }
}

TEST(SharedAccessOracle, RandomizedWithInactiveLanes) {
  std::mt19937_64 rng(99);
  for (const int w : kWidths) {
    for (int trial = 0; trial < 400; ++trial) {
      std::uniform_int_distribution<std::int64_t> addr(0, 8 * w - 1);
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      const double p_idle = coin(rng);  // from almost-full to almost-empty warps
      std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));
      for (auto& a : addrs) a = coin(rng) < p_idle ? kInactiveLane : addr(rng);
      expect_matches_oracle(addrs, w);
    }
  }
}

TEST(SharedAccessOracle, RandomizedHeavyDuplicates) {
  // Draw from a tiny address pool so broadcasts and conflicts are dense.
  std::mt19937_64 rng(7);
  for (const int w : kWidths) {
    for (int trial = 0; trial < 400; ++trial) {
      std::uniform_int_distribution<std::int64_t> addr(0, 2);
      std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));
      for (auto& a : addrs) a = addr(rng) == 0 ? kInactiveLane : addr(rng) * w + 5;
      expect_matches_oracle(addrs, w);
    }
  }
}

TEST(SharedAccessOracle, AllLanesSameAddress) {
  for (const int w : kWidths) {
    const std::vector<std::int64_t> addrs(static_cast<std::size_t>(w), 1234567);
    expect_matches_oracle(addrs, w);
  }
}

TEST(SharedAccessOracle, AllLanesInactive) {
  for (const int w : kWidths) {
    const std::vector<std::int64_t> addrs(static_cast<std::size_t>(w), kInactiveLane);
    expect_matches_oracle(addrs, w);
  }
}

TEST(SharedAccessOracle, WorstCaseStrides) {
  // Stride-w (full serialization), stride-1 (conflict free) and every stride
  // in between, with and without a masked tail.
  for (const int w : kWidths) {
    for (std::int64_t stride = 1; stride <= w; ++stride) {
      std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));
      for (int l = 0; l < w; ++l) addrs[static_cast<std::size_t>(l)] = l * stride;
      expect_matches_oracle(addrs, w);
      for (int l = w / 2; l < w; ++l) addrs[static_cast<std::size_t>(l)] = kInactiveLane;
      expect_matches_oracle(addrs, w);
    }
  }
}

TEST(SharedAccessOracle, PartialWarpsAndOddBankCounts) {
  // Fewer address slots than banks, plus a non-power-of-two bank count
  // (exercises the modulo path instead of the mask).
  std::mt19937_64 rng(4242);
  for (const int banks : {4, 24, 32, 48, 64}) {
    for (int n = 0; n <= banks; n += 3) {
      std::uniform_int_distribution<std::int64_t> addr(0, 5 * banks);
      std::vector<std::int64_t> addrs(static_cast<std::size_t>(n));
      for (auto& a : addrs) a = addr(rng);
      expect_matches_oracle(addrs, banks);
    }
  }
}
