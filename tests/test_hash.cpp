// Tests of the shared FNV-1a helpers (numtheory/hash.hpp): the published
// reference vectors, the little-endian folding contract that makes digests
// byte-order independent, and agreement between the typed overloads and the
// raw byte fold they are defined in terms of.
#include "numtheory/hash.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstddef>
#include <vector>

using namespace cfmerge::numtheory;

TEST(Fnv1a, MatchesPublishedReferenceVectors) {
  // Vectors from the FNV reference implementation (Fowler/Noll/Vo).
  EXPECT_EQ(fnv1a_str(kFnvOffset, ""), kFnvOffset);
  EXPECT_EQ(fnv1a_str(kFnvOffset, "a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a_str(kFnvOffset, "foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a, HelpersAreConstexpr) {
  static_assert(fnv1a_str(kFnvOffset, "a") == 0xaf63dc4c8601ec8cull);
  static_assert(fnv1a(kFnvOffset, std::uint64_t{42}) !=
                fnv1a(kFnvOffset, std::uint64_t{43}));
  SUCCEED();
}

TEST(Fnv1a, U64FoldsLeastSignificantByteFirst) {
  const std::uint64_t v = 0x0123456789abcdefull;
  std::uint64_t expect = kFnvOffset;
  for (int i = 0; i < 8; ++i)
    expect = fnv1a_byte(expect, static_cast<std::uint8_t>(v >> (8 * i)));
  EXPECT_EQ(fnv1a(kFnvOffset, v), expect);
}

TEST(Fnv1a, SignedAndDoubleOverloadsFoldBitPatterns) {
  EXPECT_EQ(fnv1a(kFnvOffset, std::int64_t{-1}),
            fnv1a(kFnvOffset, std::uint64_t{0xffffffffffffffffull}));
  EXPECT_EQ(fnv1a(kFnvOffset, 1.5),
            fnv1a(kFnvOffset, std::bit_cast<std::uint64_t>(1.5)));
  // -0.0 and 0.0 are distinct bit patterns, hence distinct digests.
  EXPECT_NE(fnv1a(kFnvOffset, 0.0), fnv1a(kFnvOffset, -0.0));
}

TEST(Fnv1a, BytesAndStringAgreeOnSameContent) {
  const std::string_view s = "plan-cache";
  std::vector<std::byte> bytes;
  for (const char c : s) bytes.push_back(static_cast<std::byte>(c));
  EXPECT_EQ(fnv1a_bytes(kFnvOffset, bytes), fnv1a_str(kFnvOffset, s));
}

TEST(Fnv1a, ChainingIsOrderSensitive) {
  const auto ab = fnv1a_str(fnv1a_str(kFnvOffset, "a"), "b");
  const auto ba = fnv1a_str(fnv1a_str(kFnvOffset, "b"), "a");
  EXPECT_NE(ab, ba);
  EXPECT_EQ(ab, fnv1a_str(kFnvOffset, "ab"));
}
