// Tests of the Pass 3 static memory-safety analyzer (verify/safety): every
// registered primitive and composite schedule proves bounds /
// init-before-read / race-freedom across the acceptance grid, the two
// safety-broken ablations are refuted with typed lane/epoch witnesses, and
// the safety certificates thread into verify::certify for the executors'
// certified-skip audit path.
#include "verify/safety.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cfprims/primitive.hpp"
#include "verify/certificate.hpp"
#include "verify/proof.hpp"

using namespace cfmerge;
using namespace cfmerge::verify;

namespace {

/// First failed step name, or "" when the proof went through.
std::string failed_step(const ProofObject& po) {
  for (const ProofStep& s : po.steps)
    if (s.status == StepStatus::kFailed) return s.name;
  return {};
}

}  // namespace

TEST(Safety, EveryRegisteredPrimitiveProvesAcrossTheGrid) {
  // The acceptance grid: w in {4..64}, E <= w (ISSUE), restricted to each
  // primitive's own supports() envelope.
  for (const cfprims::CFPrimitive* prim : cfprims::registry()) {
    for (const int w : {4, 8, 16, 32, 64}) {
      for (const int e : {2, 3, 4, 7, 8, 15, 16, 32, 64}) {
        if (e > w || !prim->supports(w, e)) continue;
        const ProofObject po = verify_primitive_safety(*prim, w, e);
        EXPECT_TRUE(po.proved())
            << prim->name() << " w=" << w << " E=" << e << " failed at step '"
            << failed_step(po) << "': " << po.counterexample.str();
      }
    }
  }
}

TEST(Safety, BoundsAreSymbolicInTheBlockSize) {
  // The flagship property: for the uniform streams the bounds step closes
  // over ALL u = w*M via interval algebra, not an enumeration.  The proof
  // records that scope in its step details.
  const ProofObject po = verify_primitive_safety("cf_permute", 32, 8);
  ASSERT_TRUE(po.proved());
  bool symbolic = false;
  for (const ProofStep& s : po.steps)
    if (s.name.rfind("bounds:", 0) == 0 &&
        s.detail.find("for all u = w*M") != std::string::npos)
      symbolic = true;
  EXPECT_TRUE(symbolic)
      << "no bounds step certified the whole u = w*M family symbolically";
}

TEST(Safety, OffByWEScatterRefutedOutOfBounds) {
  const ProofObject po = verify_primitive_safety("cf_rank_scatter_off_by_we", 8, 4);
  ASSERT_EQ(po.verdict, Verdict::kCounterexample);
  const Counterexample& cx = po.counterexample;
  EXPECT_EQ(cx.kind, "out-of-bounds");
  EXPECT_EQ(cx.w, 8);
  EXPECT_EQ(cx.e, 4);
  // addr2 carries the tile extent; the witness address must sit past it.
  EXPECT_GE(cx.addr1, cx.addr2);
  EXPECT_EQ(cx.addr2, static_cast<std::int64_t>(cx.u) * cx.e);
}

TEST(Safety, ReadBeforeScatterRefutedUninitialized) {
  const ProofObject po =
      verify_primitive_safety("cf_permute_read_before_scatter", 8, 4);
  ASSERT_EQ(po.verdict, Verdict::kCounterexample);
  const Counterexample& cx = po.counterexample;
  EXPECT_EQ(cx.kind, "uninitialized-read");
  // The read happens in the epoch BEFORE the scatter has filled the tile.
  EXPECT_EQ(cx.epoch, 0);
  EXPECT_GE(cx.addr1, 0);
  EXPECT_LT(cx.addr1, static_cast<std::int64_t>(cx.u) * cx.e);
}

TEST(Safety, AblationsRefuteAcrossTheGrid) {
  for (const cfprims::CFPrimitive* prim : cfprims::safety_ablations()) {
    for (const int w : {4, 8, 16, 32}) {
      for (const int e : {2, 4, 8}) {
        if (e > w || !prim->supports(w, e)) continue;
        const ProofObject po = verify_primitive_safety(*prim, w, e);
        EXPECT_EQ(po.verdict, Verdict::kCounterexample)
            << prim->name() << " w=" << w << " E=" << e
            << " must be refuted with a concrete witness";
        EXPECT_FALSE(po.counterexample.kind.empty());
      }
    }
  }
}

TEST(Safety, CompositeSchedulesProve) {
  for (const int w : {8, 16, 32}) {
    for (const int e : {3, 4, 8}) {
      const ProofObject merge = verify_merge_safety(w, e);
      EXPECT_TRUE(merge.proved()) << "merge w=" << w << " E=" << e << " step '"
                                  << failed_step(merge) << "'";
      const ProofObject bs = verify_blocksort_safety(w, e);
      EXPECT_TRUE(bs.proved()) << "blocksort w=" << w << " E=" << e << " step '"
                               << failed_step(bs) << "'";
      for (const int k : {2, 4, 8}) {
        const ProofObject mw = verify_multiway_safety(w, e, k);
        EXPECT_TRUE(mw.proved()) << "multiway w=" << w << " E=" << e
                                 << " k=" << k << " step '" << failed_step(mw)
                                 << "'";
      }
    }
  }
}

TEST(Safety, CompositeProofsCiteComponentCertificates) {
  // A composite derivation is structured: it must cite the primitive
  // families it is built from, so a future primitive refutation breaks the
  // composite proof too.
  const ProofObject po = verify_merge_safety(16, 4);
  ASSERT_TRUE(po.proved());
  std::set<std::string> cited;
  for (const ProofStep& s : po.steps) {
    const std::size_t mark = s.name.find("-component:");
    if (mark != std::string::npos)
      cited.insert(s.name.substr(mark + std::string("-component:").size()));
  }
  EXPECT_TRUE(cited.count("cf_stage")) << "merge proof does not cite cf_stage";
  EXPECT_TRUE(cited.count("cf_gather")) << "merge proof does not cite cf_gather";
}

TEST(Safety, UnknownPrimitiveThrows) {
  EXPECT_THROW((void)verify_primitive_safety("no_such_primitive", 8, 4),
               std::invalid_argument);
}

TEST(Safety, CertificatesMintForProvedFamiliesOnly) {
  // Proved primitive -> a safety certificate, memoized across calls.
  const SafetyCertificate* a = certify_safety("cf_permute", 16, 4);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->primitive, "cf_permute");
  EXPECT_EQ(a->w, 16);
  EXPECT_EQ(a->e, 4);
  EXPECT_EQ(certify_safety("cf_permute", 16, 4), a) << "memo must return the "
                                                       "same certificate";
  // Refuted ablations and unknown names never mint.
  EXPECT_EQ(certify_safety("cf_rank_scatter_off_by_we", 16, 4), nullptr);
  EXPECT_EQ(certify_safety("no_such_primitive", 16, 4), nullptr);
}
