// Tests of the Section 4 worst-case construction: the lemmas, the tuple
// sequences, the interleavings, and the measured impact on the baseline.
#include "worstcase/builder.hpp"
#include "worstcase/predict.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <set>

#include "gpusim/launcher.hpp"
#include "mergepath/merge_path.hpp"
#include "numtheory/numtheory.hpp"
#include "sort/merge_sort.hpp"

using namespace cfmerge;
using namespace cfmerge::worstcase;

namespace {
std::vector<Params> valid_params() {
  std::vector<Params> out;
  for (const int w : {4, 6, 8, 9, 12, 16, 32}) {
    for (int e = 2; e <= w; ++e) out.push_back({w, e});
  }
  return out;
}
}  // namespace

TEST(Params, Validation) {
  EXPECT_THROW(Params({8, 1}).validate(), std::invalid_argument);
  EXPECT_THROW(Params({8, 9}).validate(), std::invalid_argument);
  EXPECT_NO_THROW(Params({8, 8}).validate());
  EXPECT_NO_THROW(Params({32, 15}).validate());
}

TEST(Params, EuclidDecomposition) {
  const Params p{32, 15};
  EXPECT_EQ(p.q(), 2);
  EXPECT_EQ(p.r(), 2);
  EXPECT_EQ(p.d(), 1);
  const Params p2{12, 9};
  EXPECT_EQ(p2.q(), 1);
  EXPECT_EQ(p2.r(), 3);
  EXPECT_EQ(p2.d(), 3);
}

TEST(SSequence, Lemma5AllDistinct) {
  for (const Params& p : valid_params()) {
    const auto s = s_sequence(p);
    std::set<std::int64_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), s.size()) << "w=" << p.w << " E=" << p.e;
    for (const auto v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, p.e / p.d());
    }
  }
}

TEST(SSequence, Lemma6Symmetry) {
  for (const Params& p : valid_params()) {
    const auto s = s_sequence(p);
    const std::int64_t ed = p.e / p.d();
    for (std::int64_t i = 1; i < ed; ++i) {
      const std::int64_t si = s[static_cast<std::size_t>(i - 1)];
      const std::int64_t s_mirror = s[static_cast<std::size_t>(ed - i - 1)];
      EXPECT_EQ(numtheory::mod(ed - si, ed), s_mirror) << "w=" << p.w << " E=" << p.e;
    }
  }
}

TEST(SequenceS, Lemma7SumsAreROrER) {
  // x_i + y_{i+1} is r (when x_i < r) or E + r.
  for (const Params& p : valid_params()) {
    const auto s = s_sequence(p);
    const std::int64_t d = p.d(), ed = p.e / d, r = p.r();
    for (std::int64_t i = 1; i <= ed - 2; ++i) {
      const std::int64_t x_i = (ed - s[static_cast<std::size_t>(i - 1)]) * d;
      const std::int64_t y_next = s[static_cast<std::size_t>(i)] * d;
      const std::int64_t sum = x_i + y_next;
      EXPECT_TRUE(sum == r || sum == p.e + r)
          << "w=" << p.w << " E=" << p.e << " i=" << i << " sum=" << sum;
      EXPECT_EQ(sum == r, x_i < r);
    }
  }
}

TEST(TSequence, SizeIsWOverD) {
  for (const Params& p : valid_params()) {
    EXPECT_EQ(static_cast<std::int64_t>(t_sequence(p).size()), p.w / p.d())
        << "w=" << p.w << " E=" << p.e;
  }
}

TEST(TSequence, TuplesSumToE) {
  for (const Params& p : valid_params()) {
    for (const Tuple& t : t_sequence(p)) {
      EXPECT_GE(t.a, 0);
      EXPECT_GE(t.b, 0);
      EXPECT_EQ(t.a + t.b, p.e);
    }
  }
}

TEST(TSequence, SubproblemElementTotals) {
  // A subproblem covers ceil(E/2d)w ... the tuple sums give (w/d) threads *
  // E elements = wE/d in total; A gets ceil((E/d)/2)*w ... verify totals.
  for (const Params& p : valid_params()) {
    const auto t = t_sequence(p);
    const std::int64_t d = p.d(), ed = p.e / d;
    const std::int64_t a_sum = a_total(t);
    EXPECT_EQ(a_sum, (ed + 1) / 2 * p.w / d * d) << "w=" << p.w << " E=" << p.e;
  }
}

TEST(WarpTuples, WarpHasWThreadsAndBalancedPairs) {
  for (const Params& p : valid_params()) {
    const auto normal = warp_tuples(p, false);
    const auto flipped = warp_tuples(p, true);
    EXPECT_EQ(static_cast<int>(normal.size()), p.w);
    EXPECT_EQ(static_cast<int>(flipped.size()), p.w);
    const std::int64_t wE = static_cast<std::int64_t>(p.w) * p.e;
    // A warp pair splits its 2wE outputs evenly between A and B.
    EXPECT_EQ(a_total(normal) + a_total(flipped), wE);
    for (std::size_t i = 0; i < normal.size(); ++i) {
      EXPECT_EQ(normal[i].a, flipped[i].b);
      EXPECT_EQ(normal[i].b, flipped[i].a);
    }
  }
}

TEST(PaperExample, W12E5TupleSequence) {
  // Hand-derived T for w=12, E=5 (q=2, r=2, d=1); see Section 4's recipe.
  const Params p{12, 5};
  const std::vector<Tuple> expect{{2, 3}, {5, 0}, {5, 0}, {1, 4}, {0, 5}, {1, 4},
                                  {5, 0}, {5, 0}, {2, 3}, {0, 5}, {5, 0}, {5, 0}};
  EXPECT_EQ(t_sequence(p), expect);
}

TEST(Predict, Theorem8Values) {
  // E <= w/2: E^2 conflicts per warp.
  EXPECT_EQ(predicted_warp_conflicts(Params{32, 15}), 15 * 15);
  EXPECT_EQ(predicted_warp_conflicts(Params{32, 16}), 16 * 16);
  EXPECT_EQ(predicted_warp_conflicts(Params{12, 5}), 25);
  // w/2 < E <= w: the quadratic expression; spot-check E = w (r = 0, d = E):
  // (E^2 + 0 + E*E - 0 - 0)/2 = E^2.
  EXPECT_EQ(predicted_warp_conflicts(Params{8, 8}), 64);
  // w=12, E=9: d=3, r=3 -> (81 + 54 + 27 - 9 - 9)/2 = 72.
  EXPECT_EQ(predicted_warp_conflicts(Params{12, 9}), 72);
}

TEST(Predict, SubproblemTimesDMatchesWarpForCase1) {
  for (const Params& p : valid_params()) {
    if (2 * p.e > p.w) continue;
    EXPECT_EQ(predicted_subproblem_conflicts(p) * p.d(), predicted_warp_conflicts(p));
  }
}

TEST(Interleave, PatternHasExactlyATotalTrues) {
  for (const Params& p : valid_params()) {
    const auto tuples = warp_tuples(p, false);
    const auto pat = tuples_to_pattern(tuples);
    EXPECT_EQ(static_cast<std::int64_t>(pat.size()), static_cast<std::int64_t>(p.w) * p.e);
    EXPECT_EQ(std::count(pat.begin(), pat.end(), true), a_total(tuples));
  }
}

TEST(Interleave, MergePathReproducesTuplesFromPattern) {
  // The whole point: choosing values by the pattern makes merge path assign
  // exactly the adversarial per-thread splits.
  for (const Params& p : std::vector<Params>{{12, 5}, {12, 9}, {8, 6}, {32, 15}, {9, 6}}) {
    const std::int64_t len = 2LL * p.w * p.e;
    const MergeInput in = worst_case_merge_input(p, len);
    std::vector<Tuple> expect = warp_tuples(p, false);
    const auto flip = warp_tuples(p, true);
    expect.insert(expect.end(), flip.begin(), flip.end());
    std::int64_t prev = 0;
    for (std::size_t i = 0; i < expect.size(); ++i) {
      const std::int64_t diag = static_cast<std::int64_t>(i + 1) * p.e;
      const std::int64_t corank = mergepath::merge_path<std::int32_t>(
          diag, std::span<const std::int32_t>(in.a), std::span<const std::int32_t>(in.b));
      EXPECT_EQ(corank - prev, expect[i].a) << "w=" << p.w << " E=" << p.e << " thread " << i;
      prev = corank;
    }
  }
}

TEST(Builder, MergeInputIsSortedPermutation) {
  const Params p{12, 9};
  const MergeInput in = worst_case_merge_input(p, 2 * 12 * 9 * 4);
  EXPECT_TRUE(std::is_sorted(in.a.begin(), in.a.end()));
  EXPECT_TRUE(std::is_sorted(in.b.begin(), in.b.end()));
  std::vector<std::int32_t> all = in.a;
  all.insert(all.end(), in.b.begin(), in.b.end());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i)
    ASSERT_EQ(all[i], static_cast<std::int32_t>(i));
}

TEST(Builder, SortInputIsAPermutation) {
  const Params p{8, 5};
  const int u = 16;
  const std::int64_t n = 16LL * 5 * 8;
  const auto input = worst_case_sort_input(p, u, n);
  std::vector<std::int32_t> copy = input;
  std::sort(copy.begin(), copy.end());
  for (std::size_t i = 0; i < copy.size(); ++i)
    ASSERT_EQ(copy[i], static_cast<std::int32_t>(i));
}

TEST(Builder, ValidatesShape) {
  const Params p{8, 5};
  EXPECT_THROW(worst_case_sort_input(p, 12, 12 * 5), std::invalid_argument);  // u % w
  EXPECT_THROW(worst_case_sort_input(p, 16, 16 * 5 * 3), std::invalid_argument);  // tiles=3
  EXPECT_THROW(worst_case_sort_input(p, 8, 8 * 5 * 4), std::invalid_argument);  // u*E not 2wE mult
  EXPECT_NO_THROW(worst_case_sort_input(p, 16, 16 * 5 * 4));
}

TEST(Measured, WorstCaseMassivelyOutConflictsRandomBaseline) {
  // The headline phenomenon: on the adversarial input the baseline's merge
  // conflicts grow by an order of magnitude vs. random input, while
  // CF-Merge stays at zero on both.
  const int w = 8, u = 16;
  const Params p{w, 5};
  const std::int64_t n = 16LL * 5 * 16;
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(w));

  sort::MergeConfig cfg;
  cfg.e = p.e;
  cfg.u = u;

  auto run = [&](sort::Variant v, bool worst) {
    cfg.variant = v;
    std::vector<int> data;
    if (worst) {
      const auto in32 = worst_case_sort_input(p, u, n);
      data.assign(in32.begin(), in32.end());
    } else {
      std::mt19937_64 rng(99);
      data.resize(static_cast<std::size_t>(n));
      for (auto& x : data) x = static_cast<int>(rng() % 1000000);
    }
    const auto report = sort::merge_sort(launcher, data, cfg);
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
    return report;
  };

  const auto base_rand = run(sort::Variant::Baseline, false);
  const auto base_worst = run(sort::Variant::Baseline, true);
  const auto cf_rand = run(sort::Variant::CFMerge, false);
  const auto cf_worst = run(sort::Variant::CFMerge, true);

  EXPECT_GT(base_worst.merge_conflicts(), 2 * base_rand.merge_conflicts());
  EXPECT_EQ(cf_rand.merge_conflicts(), 0u);
  EXPECT_EQ(cf_worst.merge_conflicts(), 0u);
  // CF-Merge's cost profile is input-independent: identical access counts.
  EXPECT_EQ(cf_worst.merge_shared_accesses(), cf_rand.merge_shared_accesses());
}

TEST(Measured, Theorem8PredictedVsMeasuredSingleWarpMerge) {
  // One warp merging its worst-case window with the baseline sequential
  // merge: measured conflicts should be at least the Theorem 8 prediction
  // (the theorem counts only the last E banks).
  for (const Params& p : std::vector<Params>{{8, 5}, {8, 6}, {12, 5}, {12, 9}, {16, 12},
                                             {32, 15}, {32, 17}, {32, 16}}) {
    const std::int64_t wE = static_cast<std::int64_t>(p.w) * p.e;
    const MergeInput in = worst_case_merge_input(p, 2 * wE);
    // Take only the first warp's window (the "normal" warp).
    const auto tuples = warp_tuples(p, false);
    const std::int64_t la = a_total(tuples);
    const std::int64_t lb = wE - la;

    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(p.w));
    std::uint64_t conflicts = 0;
    launcher.launch("warp_merge", gpusim::LaunchShape{1, p.w, 0, 32},
                    [&](gpusim::BlockContext& ctx) {
                      gpusim::SharedTile<int> tile(ctx, static_cast<std::size_t>(wE));
                      for (std::int64_t x = 0; x < la; ++x)
                        tile.raw()[static_cast<std::size_t>(x)] =
                            in.a[static_cast<std::size_t>(x)];
                      for (std::int64_t y = 0; y < lb; ++y)
                        tile.raw()[static_cast<std::size_t>(la + y)] =
                            in.b[static_cast<std::size_t>(y)];
                      std::vector<sort::MergeLaneDesc> descs(
                          static_cast<std::size_t>(p.w));
                      std::int64_t ao = 0, bo = 0;
                      for (int i = 0; i < p.w; ++i) {
                        const Tuple& t = tuples[static_cast<std::size_t>(i)];
                        descs[static_cast<std::size_t>(i)] = {ao, t.a, bo, t.b};
                        ao += t.a;
                        bo += t.b;
                      }
                      std::vector<int> regs(static_cast<std::size_t>(wE));
                      ctx.phase("merge");
                      sort::warp_serial_merge(
                          ctx, tile, std::span<const sort::MergeLaneDesc>(descs), p.e,
                          [](std::int64_t x) { return x; },
                          [la](std::int64_t y) { return la + y; }, std::span<int>(regs));
                      conflicts = ctx.counters().total().bank_conflicts;
                    });
    // The theorem counts conflicts analytically (per-bank collisions in the
    // last E banks); the simulator counts hardware replays (max bank degree
    // minus one per access).  The replay count lands slightly below the
    // analytical count but must stay within a small constant of it.
    // Small warps deviate more (the preload steps weigh relatively more),
    // so the floor is 60% there and 85% at the paper's w = 32.
    const std::int64_t predicted = predicted_warp_conflicts(p);
    const std::int64_t floor_pct = p.w >= 32 ? 85 : 60;
    EXPECT_GE(static_cast<std::int64_t>(conflicts) * 100, floor_pct * predicted)
        << "w=" << p.w << " E=" << p.e;
    // Sanity: within the trivial bound times a small constant (preloads).
    EXPECT_LE(static_cast<std::int64_t>(conflicts),
              (p.e + 2) * static_cast<std::int64_t>(p.w)) << "w=" << p.w << " E=" << p.e;
  }
}
