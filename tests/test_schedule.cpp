// Property tests of the Algorithm 1 round schedule: for every shape the
// gather must (a) read each element exactly once, (b) read one element per
// thread per round, and (c) be bank conflict free — the paper's Lemmas 1-4
// and Corollary 3, verified exhaustively over parameter grids that include
// both coprime and non-coprime (w, E) and multi-warp blocks with arbitrary
// merge-path splits.
#include "gather/schedule.hpp"

#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "gather/validator.hpp"
#include "numtheory/numtheory.hpp"

using namespace cfmerge::gather;
namespace nt = cfmerge::numtheory;

namespace {
std::vector<std::int64_t> random_sizes(std::mt19937_64& rng, int u, int e) {
  std::vector<std::int64_t> sizes(static_cast<std::size_t>(u));
  for (auto& s : sizes) s = static_cast<std::int64_t>(rng() % (e + 1));
  return sizes;
}
}  // namespace

TEST(RoundSchedule, PaperExampleCoprime) {
  // Figure 2: w = 12, E = 5, d = 1.
  std::mt19937_64 rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const auto res = validate_sizes(12, 5, 12, random_sizes(rng, 12, 5));
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.total_conflicts, 0);
  }
}

TEST(RoundSchedule, PaperExampleNonCoprime) {
  // Figure 3: w = 9, E = 6, d = 3.
  std::mt19937_64 rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const auto res = validate_sizes(9, 6, 9, random_sizes(rng, 9, 6));
    EXPECT_TRUE(res.ok) << res.error;
  }
}

TEST(RoundSchedule, PaperExampleThreadBlock) {
  // Figure 8: u = 18, w = 6, E = 4, d = 2.
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const auto res = validate_sizes(6, 4, 18, random_sizes(rng, 18, 4));
    EXPECT_TRUE(res.ok) << res.error;
  }
}

TEST(RoundSchedule, ThrustSoftwareParameters) {
  // (E=15, u=512) and (E=17, u=256) with w=32 — the paper's measured sets.
  std::mt19937_64 rng(4);
  for (const auto& [e, u] : std::vector<std::pair<int, int>>{{15, 512}, {17, 256}}) {
    for (int trial = 0; trial < 5; ++trial) {
      const auto res = validate_sizes(32, e, u, random_sizes(rng, u, e));
      EXPECT_TRUE(res.ok) << res.error;
    }
  }
}

TEST(RoundSchedule, ExtremeSplits) {
  // All elements from A, all from B, and strict alternation.
  for (const auto& [w, e, u] : std::vector<std::tuple<int, int, int>>{
           {8, 5, 16}, {8, 6, 16}, {12, 9, 24}, {32, 15, 64}, {32, 16, 64}}) {
    std::vector<std::int64_t> all_a(static_cast<std::size_t>(u), e);
    EXPECT_TRUE(validate_sizes(w, e, u, all_a).ok);
    std::vector<std::int64_t> all_b(static_cast<std::size_t>(u), 0);
    EXPECT_TRUE(validate_sizes(w, e, u, all_b).ok);
    std::vector<std::int64_t> alt(static_cast<std::size_t>(u));
    for (int i = 0; i < u; ++i) alt[static_cast<std::size_t>(i)] = (i % 2 == 0) ? e : 0;
    EXPECT_TRUE(validate_sizes(w, e, u, alt).ok);
  }
}

// Exhaustive grid property test: every (w, E <= w, warps) combination with
// randomized splits must be conflict free.
struct GridParam {
  int w;
  int e;
  int warps;
};

class ScheduleGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(ScheduleGrid, ConflictFreeAndExactCoverage) {
  const auto [w, e, warps] = GetParam();
  const int u = w * warps;
  std::mt19937_64 rng(static_cast<std::uint64_t>(w * 1000003 + e * 1009 + warps));
  for (int trial = 0; trial < 30; ++trial) {
    const auto res = validate_sizes(w, e, u, random_sizes(rng, u, e));
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(res.max_conflicts, 0);
  }
}

namespace {
std::vector<GridParam> grid_params() {
  std::vector<GridParam> params;
  for (const int w : {2, 3, 4, 6, 8, 9, 12, 16, 32}) {
    for (int e = 1; e <= w; ++e) {
      for (const int warps : {1, 2, 4}) params.push_back({w, e, warps});
    }
  }
  return params;
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(AllShapes, ScheduleGrid, ::testing::ValuesIn(grid_params()),
                         [](const ::testing::TestParamInfo<GridParam>& info) {
                           return "w" + std::to_string(info.param.w) + "_E" +
                                  std::to_string(info.param.e) + "_warps" +
                                  std::to_string(info.param.warps);
                         });

// E larger than w (the sort allows it even though the worst-case
// construction does not): the schedule must still be conflict free.
TEST(RoundSchedule, ElementsPerThreadLargerThanWarp) {
  std::mt19937_64 rng(5);
  for (const auto& [w, e] : std::vector<std::pair<int, int>>{{8, 12}, {8, 17}, {16, 24}}) {
    for (int trial = 0; trial < 20; ++trial) {
      const auto res = validate_sizes(w, e, 2 * w, random_sizes(rng, 2 * w, e));
      EXPECT_TRUE(res.ok) << "w=" << w << " E=" << e << ": " << res.error;
    }
  }
}

TEST(RoundSchedule, RegisterSlotsMatchReads) {
  // The register arrangement contract: thread i's x-th element of A_i lands
  // in slot (a_i + x) mod E and B_i's y-th in (a_i - 1 - y) mod E.
  std::mt19937_64 rng(6);
  const int w = 8, e = 6, u = 16;
  const auto sizes = random_sizes(rng, u, e);
  std::vector<std::int64_t> off(sizes.size());
  std::int64_t run = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    off[i] = run;
    run += sizes[i];
  }
  GatherShape shape{w, e, u, run, static_cast<std::int64_t>(u) * e - run};
  RoundSchedule sched(shape, off, sizes);
  for (int i = 0; i < u; ++i) {
    for (int j = 0; j < e; ++j) {
      const GatherRead r = sched.read(i, j);
      if (r.from_a) {
        const std::int64_t x = r.offset - sched.a_offset(i);
        EXPECT_EQ(sched.register_slot_of_a(i, x), j);
      } else {
        const std::int64_t y = r.offset - sched.b_offset(i);
        EXPECT_EQ(sched.register_slot_of_b(i, y), j);
      }
    }
  }
}

TEST(RoundSchedule, ReadsStayInThreadSubsequences) {
  std::mt19937_64 rng(7);
  const int w = 12, e = 9, u = 24;
  const auto sizes = random_sizes(rng, u, e);
  std::vector<std::int64_t> off(sizes.size());
  std::int64_t run = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    off[i] = run;
    run += sizes[i];
  }
  GatherShape shape{w, e, u, run, static_cast<std::int64_t>(u) * e - run};
  RoundSchedule sched(shape, off, sizes);
  for (int i = 0; i < u; ++i) {
    for (int j = 0; j < e; ++j) {
      const GatherRead r = sched.read(i, j);
      if (r.from_a) {
        EXPECT_GE(r.offset, sched.a_offset(i));
        EXPECT_LT(r.offset, sched.a_offset(i) + sched.a_size(i));
      } else {
        EXPECT_GE(r.offset, sched.b_offset(i));
        EXPECT_LT(r.offset, sched.b_offset(i) + sched.b_size(i));
      }
      EXPECT_GE(r.phys, 0);
      EXPECT_LT(r.phys, shape.total());
    }
  }
}

TEST(RoundSchedule, RoundOfRawIsModE) {
  // Section 3.2's invariant: element at raw index m is read in round m mod E.
  std::mt19937_64 rng(8);
  const int w = 9, e = 6, u = 18;
  const auto sizes = random_sizes(rng, u, e);
  std::vector<std::int64_t> off(sizes.size());
  std::int64_t run = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    off[i] = run;
    run += sizes[i];
  }
  GatherShape shape{w, e, u, run, static_cast<std::int64_t>(u) * e - run};
  RoundSchedule sched(shape, off, sizes);
  for (int i = 0; i < u; ++i)
    for (int j = 0; j < e; ++j)
      EXPECT_EQ(nt::mod(sched.read(i, j).raw, e), j);
}

TEST(RoundSchedule, RejectsIllFormedShapes) {
  GatherShape bad{8, 5, 12, 20, 40};  // u not multiple of w
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  GatherShape bad2{8, 5, 16, 20, 40};  // la+lb != u*E
  EXPECT_THROW(bad2.validate(), std::invalid_argument);
  // Splits that do not prefix-sum.
  GatherShape shape{8, 5, 8, 20, 20};
  std::vector<std::int64_t> off(8, 0);
  std::vector<std::int64_t> sz(8, 5);
  EXPECT_THROW(RoundSchedule(shape, off, sz), std::invalid_argument);
}
