// Tests of the opt-in L2 cache model.
#include "gpusim/l2_cache.hpp"

#include <gtest/gtest.h>

#include <random>

#include "gpusim/launcher.hpp"
#include "gpusim/memory_views.hpp"
#include "sort/merge_sort.hpp"

using namespace cfmerge;
using namespace cfmerge::gpusim;

TEST(L2Cache, ColdMissThenHit) {
  L2Cache l2(64 * 1024, 128, 16);
  EXPECT_FALSE(l2.access(0));
  EXPECT_TRUE(l2.access(0));
  EXPECT_TRUE(l2.access(64));  // same 128B line
  EXPECT_FALSE(l2.access(128));
  EXPECT_EQ(l2.hits(), 2u);
  EXPECT_EQ(l2.misses(), 2u);
}

TEST(L2Cache, LruEvictionWithinSet) {
  // Direct construction of set collisions: sets are a power of two, so
  // addresses line*sets*128 apart share a set.
  L2Cache l2(2 * 128 * 4, 128, 2);  // 2 ways, sets = bit_floor(8/2) = 4
  const std::int64_t stride = static_cast<std::int64_t>(l2.sets()) * 128;
  EXPECT_FALSE(l2.access(0));
  EXPECT_FALSE(l2.access(stride));
  EXPECT_TRUE(l2.access(0));          // both resident
  EXPECT_FALSE(l2.access(2 * stride));  // evicts LRU (= stride)
  EXPECT_TRUE(l2.access(0));
  EXPECT_FALSE(l2.access(stride));    // was evicted
}

TEST(L2Cache, WorkingSetSmallerThanCapacityAllHits) {
  L2Cache l2(1 << 20, 128, 16);
  for (int round = 0; round < 3; ++round)
    for (std::int64_t a = 0; a < 512 * 128; a += 128) l2.access(a);
  EXPECT_EQ(l2.misses(), 512u);
  EXPECT_EQ(l2.hits(), 2u * 512u);
}

TEST(L2Cache, RejectsBadShapes) {
  EXPECT_THROW(L2Cache(0, 128, 16), std::invalid_argument);
  EXPECT_THROW(L2Cache(1024, 0, 16), std::invalid_argument);
  EXPECT_THROW(L2Cache(128, 128, 16), std::invalid_argument);  // < one set
}

TEST(L2Integration, DisabledByDefault) {
  Launcher launcher(DeviceSpec::tiny(8));
  EXPECT_EQ(launcher.l2(), nullptr);
  std::vector<int> host(64, 1);
  launcher.launch("k", LaunchShape{1, 8, 0, 8}, [&](BlockContext& ctx) {
    GlobalView<int> v(ctx, std::span<int>(host), 0);
    std::vector<std::int64_t> idx{0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<int> out(8);
    v.gather(0, idx, out);
    v.gather(0, idx, out);  // would hit an L2 if there were one
  });
  const auto c = launcher.total_counters();
  EXPECT_EQ(c.l2_hits, 0u);
  EXPECT_EQ(c.l2_misses, 0u);
  EXPECT_EQ(c.gmem_bytes, 2u * 8 * sizeof(int));  // element bytes, both times
}

TEST(L2Integration, RepeatAccessesHitAndCutDramBytes) {
  DeviceSpec dev = DeviceSpec::tiny(8);
  dev.l2_bytes = 64 * 1024;
  Launcher launcher(dev);
  ASSERT_NE(launcher.l2(), nullptr);
  std::vector<int> host(64, 1);
  launcher.launch("k", LaunchShape{1, 8, 0, 8}, [&](BlockContext& ctx) {
    GlobalView<int> v(ctx, std::span<int>(host), 0);
    std::vector<std::int64_t> idx{0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<int> out(8);
    v.gather(0, idx, out);  // cold miss: one 128B line
    v.gather(0, idx, out);  // hit
  });
  const auto c = launcher.total_counters();
  EXPECT_EQ(c.l2_misses, 1u);
  EXPECT_EQ(c.l2_hits, 1u);
  EXPECT_EQ(c.gmem_bytes, 128u);  // DRAM traffic = one line
}

TEST(L2Integration, SortStillCorrectAndSearchProbesHit) {
  // The merge-path partition probes revisit hot lines; with L2 on, a good
  // fraction hit and DRAM bytes drop versus the element-bytes baseline.
  std::mt19937_64 rng(1);
  DeviceSpec dev = DeviceSpec::tiny(8);
  dev.l2_bytes = 256 * 1024;
  Launcher launcher(dev);
  sort::MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.variant = sort::Variant::CFMerge;
  std::vector<int> data(16 * 5 * 8);
  for (auto& x : data) x = static_cast<int>(rng());
  std::vector<int> expect = data;
  std::sort(expect.begin(), expect.end());
  const auto report = sort::merge_sort(launcher, data, cfg);
  EXPECT_EQ(data, expect);
  EXPECT_GT(report.totals.l2_hits, 0u);
  EXPECT_GT(report.totals.l2_misses, 0u);
}
