// Tests of the content-addressed plan identity (sort/plan_key.hpp): type
// digests are distinct across the element types the engine plans for and
// never depend on type names; DeviceSpec::digest() hashes exactly the
// planning-relevant fields; config_digest folds every semantic knob; and a
// PlanKey sweep across all plan kinds serializes to unique store keys.
#include "sort/plan_key.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "cache/serial.hpp"
#include "gpusim/device_spec.hpp"
#include "sort/key_value.hpp"

using namespace cfmerge;
using namespace cfmerge::sort;

TEST(TypeDigest, DistinctAcrossPlannedTypes) {
  const std::vector<std::uint64_t> digests = {
      type_digest<std::int32_t>().bits,
      type_digest<std::uint32_t>().bits,
      type_digest<std::int64_t>().bits,
      type_digest<std::uint64_t>().bits,
      type_digest<float>().bits,
      type_digest<double>().bits,
      type_digest<KeyValue<std::int32_t, std::int32_t>>().bits,
      type_digest<KeyValue<std::int32_t, std::int64_t>>().bits,
      type_digest<KeyValue<std::int64_t, std::int32_t>>().bits,
      type_digest<KeyValue<float, std::int32_t>>().bits,
  };
  const std::set<std::uint64_t> unique(digests.begin(), digests.end());
  EXPECT_EQ(unique.size(), digests.size());
}

TEST(TypeDigest, PairDigestComposesComponentDigests) {
  // Swapping key and value types must change the digest even though the
  // pair's size and alignment stay the same.
  EXPECT_NE((type_digest<KeyValue<std::int32_t, std::int64_t>>()),
            (type_digest<KeyValue<std::int64_t, std::int32_t>>()));
  // A pair of two ints is not the same identity as a bare 8-byte scalar.
  EXPECT_NE((type_digest<KeyValue<std::int32_t, std::int32_t>>()),
            type_digest<std::int64_t>());
}

TEST(TypeDigest, StableAcrossEvaluations) {
  constexpr TypeDigest a = type_digest<std::int32_t>();
  const TypeDigest b = type_digest<std::int32_t>();
  EXPECT_EQ(a, b);
}

TEST(DeviceDigest, IgnoresNameAndHostSideFields) {
  const gpusim::DeviceSpec base = gpusim::DeviceSpec::rtx2080ti();
  gpusim::DeviceSpec renamed = base;
  renamed.name = "some-other-label";
  EXPECT_EQ(base.digest(), renamed.digest());

  gpusim::DeviceSpec host_tuned = base;
  host_tuned.sim_threads = 8;
  host_tuned.bulk_charge = false;  // counters/timing bit-identical either way
  EXPECT_EQ(base.digest(), host_tuned.digest());
}

TEST(DeviceDigest, ChangesWithEveryPlanningField) {
  const gpusim::DeviceSpec base = gpusim::DeviceSpec::rtx2080ti();
  std::set<std::uint64_t> digests = {base.digest()};
  auto expect_new = [&](gpusim::DeviceSpec d, const char* what) {
    SCOPED_TRACE(what);
    EXPECT_TRUE(digests.insert(d.digest()).second);
  };
  {
    auto d = base;
    d.warp_size = 16;
    expect_new(d, "warp_size");
  }
  {
    auto d = base;
    d.num_sms = 4;
    expect_new(d, "num_sms");
  }
  {
    auto d = base;
    d.max_threads_per_sm = 512;
    expect_new(d, "max_threads_per_sm");
  }
  {
    auto d = base;
    d.shared_bytes_per_sm = 32 * 1024;
    expect_new(d, "shared_bytes_per_sm");
  }
  {
    auto d = base;
    d.shared_latency = 30;
    expect_new(d, "shared_latency");
  }
  {
    auto d = base;
    d.l2_bytes = 4 << 20;
    expect_new(d, "l2_bytes");
  }
  {
    auto d = base;
    d.clock_ghz = 1.0;
    expect_new(d, "clock_ghz");
  }
  {
    auto d = base;
    d.launch_overhead_cycles = 0.0;
    expect_new(d, "launch_overhead_cycles");
  }
  EXPECT_NE(gpusim::DeviceSpec::tiny(8).digest(), gpusim::DeviceSpec::tiny(16).digest());
}

namespace {

/// Collects `key` into `seen`, asserting both the struct and its canonical
/// serialization are new (the serialized form is the persistent store key,
/// so a struct-level collision AND a byte-level collision are each bugs).
void expect_unique(std::set<std::vector<std::byte>>& seen, const PlanKey& key) {
  EXPECT_TRUE(seen.insert(key.serialized()).second);
}

}  // namespace

TEST(PlanKey, UniqueAcrossKindsAndEveryConfigKnob) {
  std::set<std::vector<std::byte>> seen;
  const TypeDigest ti32 = type_digest<std::int32_t>();

  // Pairwise sort: every MergeConfig knob must reach the key.
  MergeConfig m;
  m.e = 5;
  m.u = 16;
  expect_unique(seen, {PlanKey::Kind::Sort, ti32, 320, 0, config_digest(m)});
  {
    auto c = m;
    c.e = 7;
    expect_unique(seen, {PlanKey::Kind::Sort, ti32, 320, 0, config_digest(c)});
  }
  {
    auto c = m;
    c.u = 32;
    expect_unique(seen, {PlanKey::Kind::Sort, ti32, 320, 0, config_digest(c)});
  }
  {
    auto c = m;
    c.variant = Variant::Baseline;
    expect_unique(seen, {PlanKey::Kind::Sort, ti32, 320, 0, config_digest(c)});
  }
  {
    auto c = m;
    c.disable_rho = true;
    expect_unique(seen, {PlanKey::Kind::Sort, ti32, 320, 0, config_digest(c)});
  }
  {
    auto c = m;
    c.cf_output_scatter = false;  // defaults to true
    expect_unique(seen, {PlanKey::Kind::Sort, ti32, 320, 0, config_digest(c)});
  }
  {
    auto c = m;
    c.cf_blocksort = true;
    expect_unique(seen, {PlanKey::Kind::Sort, ti32, 320, 0, config_digest(c)});
  }
  // Other dimensions: padded length, element type, kind.
  expect_unique(seen, {PlanKey::Kind::Sort, ti32, 640, 0, config_digest(m)});
  expect_unique(seen, {PlanKey::Kind::Sort, type_digest<std::int64_t>(), 320, 0,
                       config_digest(m)});
  expect_unique(seen, {PlanKey::Kind::Batched, ti32, 320, 0, config_digest(m)});
  expect_unique(seen, {PlanKey::Kind::Batched, ti32, 320, 0x1234, config_digest(m)});

  // Multiway: its own tag, plus k and variant knobs.
  MultiwayConfig mw;
  mw.e = 5;
  mw.u = 16;
  mw.k = 4;
  expect_unique(seen, {PlanKey::Kind::Multiway, ti32, 320, 0, config_digest(mw)});
  {
    auto c = mw;
    c.k = 8;
    expect_unique(seen, {PlanKey::Kind::Multiway, ti32, 320, 0, config_digest(c)});
  }
  {
    auto c = mw;
    c.variant = MultiwayVariant::LoserTree;
    expect_unique(seen, {PlanKey::Kind::Multiway, ti32, 320, 0, config_digest(c)});
  }
  {
    auto c = mw;
    c.cf_blocksort = true;
    expect_unique(seen, {PlanKey::Kind::Multiway, ti32, 320, 0, config_digest(c)});
  }

  // Permute / transpose: direction is a key bit (the former ad hoc fold).
  cfprims::PermuteConfig p;
  p.e = 5;
  p.u = 16;
  expect_unique(seen, {PlanKey::Kind::Permute, ti32, 320, 0, config_digest(p)});
  {
    auto c = p;
    c.inverse = true;
    expect_unique(seen, {PlanKey::Kind::Permute, ti32, 320, 0, config_digest(c)});
  }
  {
    auto c = p;
    c.op = cfprims::PermuteOp::kTranspose;
    expect_unique(seen, {PlanKey::Kind::Transpose, ti32, 320, 0, config_digest(c)});
  }
}

TEST(PlanKey, ConfigDigestTagsKeepConfigTypesDisjoint) {
  // Same (e, u) and all-default flags across the three config types must
  // not alias: each digest starts from a distinct tag.
  MergeConfig m;
  m.e = 5;
  m.u = 16;
  MultiwayConfig mw;
  mw.e = 5;
  mw.u = 16;
  cfprims::PermuteConfig p;
  p.e = 5;
  p.u = 16;
  const std::set<std::uint64_t> digests = {config_digest(m), config_digest(mw),
                                           config_digest(p)};
  EXPECT_EQ(digests.size(), 3u);
}

TEST(PlanKey, SerializeDeserializeRoundTrips) {
  MergeConfig m;
  m.e = 15;
  m.u = 512;
  const PlanKey key{PlanKey::Kind::Batched, type_digest<float>(), 7680, 0xdeadbeef,
                    config_digest(m)};
  const std::vector<std::byte> bytes = key.serialized();

  cache::ByteReader r(bytes);
  PlanKey back;
  ASSERT_TRUE(back.deserialize(r));
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(back, key);
}

TEST(PlanKey, DeserializeRejectsSchemaVersionMismatch) {
  const PlanKey key{PlanKey::Kind::Sort, type_digest<std::int32_t>(), 320, 0, 1};
  cache::ByteWriter w;
  w.u32(kPlanKeySchemaVersion + 1);  // future schema
  w.u8(0);
  w.u64(key.type.bits);
  w.i64(key.n_padded);
  w.u64(key.shape_digest);
  w.u64(key.config_digest);
  const std::vector<std::byte> bytes = w.take();

  cache::ByteReader r(bytes);
  PlanKey back;
  EXPECT_FALSE(back.deserialize(r));

  // A truncated buffer is also rejected (reader latches not-ok).
  const std::vector<std::byte> full = key.serialized();
  cache::ByteReader short_r(std::span<const std::byte>(full.data(), 10));
  EXPECT_FALSE(back.deserialize(short_r));
}
