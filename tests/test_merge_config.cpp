// Tests of validate_merge_config: one test per rejection message (verbatim)
// and a check that every sort entry point routes through the shared
// validator rather than carrying its own copy of the rules.
#include "sort/merge_pass.hpp"

#include <gtest/gtest.h>

#include "sort/batched_merge.hpp"
#include "sort/merge_arrays.hpp"
#include "sort/merge_sort.hpp"
#include "sort/segmented_sort.hpp"

using namespace cfmerge;
using namespace cfmerge::sort;

namespace {

/// Runs `fn` and returns the invalid_argument message it throws (fails the
/// test if it does not throw).
template <typename Fn>
std::string rejection_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::invalid_argument";
  return {};
}

MergeConfig valid_cfg() {
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  return cfg;
}

}  // namespace

TEST(MergeConfigValidation, AcceptsValidConfig) {
  const gpusim::DeviceSpec dev = gpusim::DeviceSpec::tiny(8);
  EXPECT_NO_THROW(validate_merge_config(dev, valid_cfg()));
}

TEST(MergeConfigValidation, RejectsNonPositiveE) {
  const gpusim::DeviceSpec dev = gpusim::DeviceSpec::tiny(8);
  MergeConfig cfg = valid_cfg();
  cfg.e = 0;
  EXPECT_EQ(rejection_message([&] { validate_merge_config(dev, cfg); }),
            "MergeConfig: E must be positive");
  cfg.e = -3;
  EXPECT_EQ(rejection_message([&] { validate_merge_config(dev, cfg); }),
            "MergeConfig: E must be positive");
}

TEST(MergeConfigValidation, RejectsNonPositiveU) {
  const gpusim::DeviceSpec dev = gpusim::DeviceSpec::tiny(8);
  MergeConfig cfg = valid_cfg();
  cfg.u = 0;
  EXPECT_EQ(rejection_message([&] { validate_merge_config(dev, cfg); }),
            "MergeConfig: u must be positive");
  cfg.u = -16;
  EXPECT_EQ(rejection_message([&] { validate_merge_config(dev, cfg); }),
            "MergeConfig: u must be positive");
}

TEST(MergeConfigValidation, RejectsUNotMultipleOfWarpSize) {
  const gpusim::DeviceSpec dev = gpusim::DeviceSpec::tiny(8);
  MergeConfig cfg = valid_cfg();
  cfg.u = 12;
  EXPECT_EQ(rejection_message([&] { validate_merge_config(dev, cfg); }),
            "MergeConfig: u must be a multiple of the warp size");
}

TEST(MergeConfigValidation, EIsCheckedBeforeU) {
  // The validator names the FIRST violated constraint.
  const gpusim::DeviceSpec dev = gpusim::DeviceSpec::tiny(8);
  MergeConfig cfg = valid_cfg();
  cfg.e = 0;
  cfg.u = 0;
  EXPECT_EQ(rejection_message([&] { validate_merge_config(dev, cfg); }),
            "MergeConfig: E must be positive");
}

TEST(MergeConfigValidation, EveryEntryPointRejectsWithTheSharedMessage) {
  MergeConfig cfg = valid_cfg();
  cfg.u = 12;  // warp size of tiny(8) is 8
  const std::string expected = "MergeConfig: u must be a multiple of the warp size";

  {
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
    std::vector<int> data{3, 1, 2};
    EXPECT_EQ(rejection_message([&] { merge_sort(launcher, data, cfg); }), expected);
  }
  {
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
    std::vector<int> out;
    EXPECT_EQ(rejection_message([&] {
                merge_arrays(launcher, std::vector<int>{1, 2}, std::vector<int>{3}, out, cfg);
              }),
              expected);
  }
  {
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
    std::vector<std::vector<int>> outs;
    EXPECT_EQ(rejection_message([&] {
                batched_merge<int>(launcher, {{1, 2}}, {{3}}, outs, cfg);
              }),
              expected);
  }
  {
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
    std::vector<std::vector<int>> segments{{3, 1, 2}};
    EXPECT_EQ(rejection_message([&] { segmented_sort(launcher, segments, cfg); }), expected);
  }
}
