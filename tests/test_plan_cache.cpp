// Tests of the persistent plan-cache store (cache/store.hpp): round-trip
// persistence, the robustness contract (truncated / corrupted /
// version-mismatched files are ignored, counted, and rebuilt), LRU
// eviction under the size cap, the two-process merge-on-save protocol,
// and clearing.
#include "cache/store.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <vector>

using namespace cfmerge::cache;
namespace fs = std::filesystem;

namespace {

/// A fresh, empty directory under the test temp root.
fs::path temp_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("cfmerge_" + name);
  fs::remove_all(dir);
  return dir;
}

std::vector<std::byte> blob(std::string_view s) {
  std::vector<std::byte> out;
  out.reserve(s.size());
  for (const char c : s) out.push_back(static_cast<std::byte>(c));
  return out;
}

void flip_byte(const fs::path& file, std::size_t offset_from_start) {
  std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset_from_start));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(offset_from_start));
  f.write(&c, 1);
}

}  // namespace

TEST(PlanCacheStore, PersistsAcrossInstances) {
  const fs::path dir = temp_dir("roundtrip");
  {
    PlanCacheStore store(dir);
    EXPECT_FALSE(store.lookup(blob("key-a")).has_value());
    store.insert(blob("key-a"), blob("value-a"));
    store.insert(blob("key-b"), blob("value-b"));
    ASSERT_TRUE(store.save());
    const StoreStats s = store.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.writes, 2u);
    EXPECT_EQ(s.entries, 2u);
    EXPECT_EQ(s.corrupt, 0u);
  }
  PlanCacheStore reopened(dir);
  const auto a = reopened.lookup(blob("key-a"));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, blob("value-a"));
  const auto b = reopened.lookup(blob("key-b"));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, blob("value-b"));
  EXPECT_EQ(reopened.stats().hits, 2u);
}

TEST(PlanCacheStore, OverwriteReplacesValue) {
  const fs::path dir = temp_dir("overwrite");
  PlanCacheStore store(dir);
  store.insert(blob("k"), blob("old"));
  store.insert(blob("k"), blob("new"));
  const auto v = store.lookup(blob("k"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, blob("new"));
  EXPECT_EQ(store.stats().entries, 1u);
}

TEST(PlanCacheStore, DestructorPersistsDirtyEntries) {
  const fs::path dir = temp_dir("dtor");
  {
    PlanCacheStore store(dir);
    store.insert(blob("k"), blob("v"));
    // No explicit save(): the destructor commits best-effort.
  }
  PlanCacheStore reopened(dir);
  EXPECT_TRUE(reopened.lookup(blob("k")).has_value());
}

TEST(PlanCacheStore, TruncatedFileIgnoredAndRebuilt) {
  const fs::path dir = temp_dir("truncated");
  {
    PlanCacheStore store(dir);
    store.insert(blob("k"), blob("a value long enough to truncate"));
    ASSERT_TRUE(store.save());
  }
  const fs::path file = dir / PlanCacheStore::kFileName;
  fs::resize_file(file, fs::file_size(file) / 2);

  PlanCacheStore store(dir);
  EXPECT_EQ(store.stats().corrupt, 1u);
  EXPECT_EQ(store.stats().entries, 0u);
  EXPECT_FALSE(store.lookup(blob("k")).has_value());

  // The next save replaces the broken file with a healthy one.
  store.insert(blob("k2"), blob("v2"));
  ASSERT_TRUE(store.save());
  PlanCacheStore reopened(dir);
  EXPECT_EQ(reopened.stats().corrupt, 0u);
  EXPECT_TRUE(reopened.lookup(blob("k2")).has_value());
}

TEST(PlanCacheStore, BadMagicVersionAndChecksumAreIgnored) {
  const fs::path dir = temp_dir("corrupt");
  const fs::path file = dir / PlanCacheStore::kFileName;
  const auto write_good = [&] {
    PlanCacheStore store(dir);
    store.clear_entries();
    store.insert(blob("k"), blob("v"));
    ASSERT_TRUE(store.save());
  };

  write_good();
  flip_byte(file, 0);  // magic
  {
    PlanCacheStore store(dir);
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_EQ(store.stats().entries, 0u);
  }

  write_good();
  flip_byte(file, 4);  // format version
  {
    PlanCacheStore store(dir);
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_EQ(store.stats().entries, 0u);
  }

  write_good();
  flip_byte(file, fs::file_size(file) - 1);  // inside the entries region
  {
    PlanCacheStore store(dir);
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_EQ(store.stats().entries, 0u);
  }
}

TEST(PlanCacheStore, EvictsLeastRecentlyUsedOverCap) {
  const fs::path dir = temp_dir("lru");
  // Header is 28 bytes; each 8-byte-key / 8-byte-value entry serializes to
  // 32 bytes.  A 124-byte cap holds exactly three entries.
  PlanCacheStore store(dir, /*max_bytes=*/124);
  store.insert(blob("key-aaaa"), blob("val-aaaa"));
  store.insert(blob("key-bbbb"), blob("val-bbbb"));
  store.insert(blob("key-cccc"), blob("val-cccc"));
  EXPECT_EQ(store.stats().evictions, 0u);
  EXPECT_EQ(store.stats().entries, 3u);

  // Touch A so B becomes the oldest, then overflow the cap.
  EXPECT_TRUE(store.lookup(blob("key-aaaa")).has_value());
  store.insert(blob("key-dddd"), blob("val-dddd"));
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_EQ(store.stats().entries, 3u);
  EXPECT_TRUE(store.lookup(blob("key-aaaa")).has_value());
  EXPECT_FALSE(store.lookup(blob("key-bbbb")).has_value());
  EXPECT_TRUE(store.lookup(blob("key-cccc")).has_value());
  EXPECT_TRUE(store.lookup(blob("key-dddd")).has_value());
}

TEST(PlanCacheStore, ConcurrentSavesMergeBothProcessesWrites) {
  const fs::path dir = temp_dir("merge");
  // Two store instances on the same path model two processes: each inserts
  // its own entry, both save, and neither write is lost.
  PlanCacheStore first(dir);
  PlanCacheStore second(dir);
  first.insert(blob("from-first"), blob("1"));
  second.insert(blob("from-second"), blob("2"));
  ASSERT_TRUE(first.save());
  ASSERT_TRUE(second.save());  // merges first's entry from disk

  PlanCacheStore reopened(dir);
  EXPECT_TRUE(reopened.lookup(blob("from-first")).has_value());
  EXPECT_TRUE(reopened.lookup(blob("from-second")).has_value());

  // On a key conflict the saving process's own value wins.
  PlanCacheStore third(dir);
  PlanCacheStore fourth(dir);
  third.insert(blob("shared"), blob("third"));
  fourth.insert(blob("shared"), blob("fourth"));
  ASSERT_TRUE(third.save());
  ASSERT_TRUE(fourth.save());
  PlanCacheStore last(dir);
  const auto v = last.lookup(blob("shared"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, blob("fourth"));
}

TEST(PlanCacheStore, ClearDeletesTheStoreFile) {
  const fs::path dir = temp_dir("clear");
  {
    PlanCacheStore store(dir);
    store.insert(blob("k"), blob("v"));
    ASSERT_TRUE(store.save());
  }
  EXPECT_TRUE(fs::exists(dir / PlanCacheStore::kFileName));
  EXPECT_TRUE(PlanCacheStore::clear(dir));
  EXPECT_FALSE(fs::exists(dir / PlanCacheStore::kFileName));
  // Clearing a dir with no store file succeeds too.
  EXPECT_TRUE(PlanCacheStore::clear(dir));

  PlanCacheStore reopened(dir);
  EXPECT_EQ(reopened.stats().entries, 0u);
  EXPECT_EQ(reopened.stats().corrupt, 0u);
}

TEST(PlanCacheStore, ClearEntriesCommitsAnEmptyStore) {
  const fs::path dir = temp_dir("clear_entries");
  {
    PlanCacheStore store(dir);
    store.insert(blob("k"), blob("v"));
    ASSERT_TRUE(store.save());
    store.clear_entries();
    ASSERT_TRUE(store.save());
  }
  PlanCacheStore reopened(dir);
  EXPECT_EQ(reopened.stats().entries, 0u);
}
