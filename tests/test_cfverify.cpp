// Tests of the Pass 1 symbolic verifier: the full proof sweep, bit-exact
// agreement between the static analyses and the dynamic cost model, and the
// counterexample machinery of the deliberately broken schedules.
#include "verify/analyzer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

#include "analysis/json.hpp"
#include "gather/schedule.hpp"
#include "gpusim/launcher.hpp"
#include "gpusim/shared_memory.hpp"
#include "numtheory/numtheory.hpp"
#include "sort/bitonic.hpp"
#include "sort/serial_merge.hpp"
#include "worstcase/builder.hpp"
#include "worstcase/predict.hpp"

using namespace cfmerge;
using namespace cfmerge::verify;

namespace {

constexpr int kWidths[] = {4, 8, 16, 32, 64};

/// Structured split-size vectors (|A_i| per thread) used to cross-check the
/// static verdict against the dynamic cost model.
std::vector<std::vector<std::int64_t>> dynamic_splits(int u, int e) {
  const auto un = static_cast<std::size_t>(u);
  std::vector<std::vector<std::int64_t>> out;
  out.emplace_back(un, static_cast<std::int64_t>(e));  // all-A
  out.emplace_back(un, std::int64_t{0});               // all-B
  std::vector<std::int64_t> alt(un);
  for (int i = 0; i < u; ++i) alt[static_cast<std::size_t>(i)] = i % 2 == 0 ? e : 0;
  out.push_back(std::move(alt));
  std::vector<std::int64_t> ramp(un);
  for (int i = 0; i < u; ++i) ramp[static_cast<std::size_t>(i)] = i % (e + 1);
  out.push_back(std::move(ramp));
  return out;
}

gather::RoundSchedule make_schedule(int w, int e, int u,
                                    const std::vector<std::int64_t>& sizes) {
  std::vector<std::int64_t> off(sizes.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    off[i] = acc;
    acc += sizes[i];
  }
  const gather::GatherShape shape{w, e, u, acc,
                                  static_cast<std::int64_t>(u) * e - acc};
  return {shape, std::move(off), sizes};
}

/// Dynamic conflict count of one warp merge on the Theorem 8 construction —
/// the same harness the bench uses, counters straight from the simulator.
std::uint64_t measure_warp_conflicts(const worstcase::Params& p) {
  const std::int64_t we = static_cast<std::int64_t>(p.w) * p.e;
  const worstcase::MergeInput in = worstcase::worst_case_merge_input(p, 2 * we);
  const auto tuples = worstcase::warp_tuples(p, false);
  const std::int64_t la = worstcase::a_total(tuples);
  const std::int64_t lb = we - la;

  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(p.w));
  std::uint64_t conflicts = 0;
  launcher.launch("warp_merge", gpusim::LaunchShape{1, p.w, 0, 32},
                  [&](gpusim::BlockContext& ctx) {
                    gpusim::SharedTile<int> tile(ctx, static_cast<std::size_t>(we));
                    for (std::int64_t x = 0; x < la; ++x)
                      tile.raw()[static_cast<std::size_t>(x)] =
                          in.a[static_cast<std::size_t>(x)];
                    for (std::int64_t y = 0; y < lb; ++y)
                      tile.raw()[static_cast<std::size_t>(la + y)] =
                          in.b[static_cast<std::size_t>(y)];
                    std::vector<sort::MergeLaneDesc> descs(static_cast<std::size_t>(p.w));
                    std::int64_t ao = 0, bo = 0;
                    for (int i = 0; i < p.w; ++i) {
                      const worstcase::Tuple& t = tuples[static_cast<std::size_t>(i)];
                      descs[static_cast<std::size_t>(i)] = {ao, t.a, bo, t.b};
                      ao += t.a;
                      bo += t.b;
                    }
                    std::vector<int> regs(static_cast<std::size_t>(we));
                    sort::warp_serial_merge(ctx, tile,
                                            std::span<const sort::MergeLaneDesc>(descs),
                                            p.e, [](std::int64_t x) { return x; },
                                            [la](std::int64_t y) { return la + y; },
                                            std::span<int>(regs));
                    conflicts = ctx.counters().total().bank_conflicts;
                  });
  return conflicts;
}

}  // namespace

TEST(CfVerify, SweepAllFamiliesProved) {
  for (const int w : kWidths) {
    for (int e = 2; e <= w; ++e) {
      const ProofObject po = verify_cf_gather(w, e);
      ASSERT_EQ(po.verdict, Verdict::kProved) << "w=" << w << " E=" << e;
      ASSERT_FALSE(po.steps.empty());
      for (const ProofStep& st : po.steps)
        EXPECT_EQ(st.status, StepStatus::kPassed)
            << "w=" << w << " E=" << e << " step " << st.name << ": " << st.detail;
    }
  }
}

TEST(CfVerify, ProvedFamiliesHaveZeroDynamicConflicts) {
  // The static verdict must agree bit-exactly with the dynamic cost model:
  // a proved family shows conflicts == 0 on every sampled schedule instance.
  for (const int w : kWidths) {
    for (int e = 2; e <= w; ++e) {
      ASSERT_TRUE(verify_cf_gather(w, e).proved());
      const int u = 2 * w;
      for (const auto& sizes : dynamic_splits(u, e)) {
        const gather::RoundSchedule sched = make_schedule(w, e, u, sizes);
        std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));
        for (int j = 0; j < e; ++j) {
          for (int warp = 0; warp < u / w; ++warp) {
            for (int lane = 0; lane < w; ++lane)
              addrs[static_cast<std::size_t>(lane)] =
                  sched.read(warp * w + lane, j).phys;
            const auto cost = gpusim::shared_access_cost(addrs, w);
            ASSERT_EQ(cost.conflicts, 0)
                << "w=" << w << " E=" << e << " warp=" << warp << " round=" << j;
          }
        }
      }
    }
  }
}

TEST(CfVerify, Theorem8StaticWalkMatchesSimulatorBitExactly) {
  for (const int w : kWidths) {
    for (int e = 2; e <= w; ++e) {
      const worstcase::Params p{w, e};
      const WorstCaseAnalysis an = analyze_worstcase_warp(p);
      const std::uint64_t measured = measure_warp_conflicts(p);
      EXPECT_EQ(static_cast<std::uint64_t>(an.exact_conflicts), measured)
          << "w=" << w << " E=" << e;
      EXPECT_EQ(an.closed_form, worstcase::predicted_warp_conflicts(p));
      EXPECT_LE(an.min_bound, an.exact_conflicts) << "w=" << w << " E=" << e;
      EXPECT_GE(an.max_bound, an.exact_conflicts) << "w=" << w << " E=" << e;
      EXPECT_EQ(an.accesses, e + 2);  // two preloads + E step fetches
    }
  }
}

TEST(CfVerify, NoPiRefutationsCarryConcreteWitnesses) {
  for (const int w : kWidths) {
    for (int e = 2; e <= w; ++e) {
      const ProofObject po = verify_cf_gather(w, e, ScheduleVariant::kNoBReversal);
      ASSERT_EQ(po.verdict, Verdict::kCounterexample) << "w=" << w << " E=" << e;
      const Counterexample& ce = po.counterexample;
      // Replay the witness through the dynamic cost model: the two lanes
      // read distinct shared positions in one bank, so the access pays at
      // least one replay cycle.
      ASSERT_NE(ce.addr1, ce.addr2);
      ASSERT_EQ(numtheory::mod(ce.addr1, w), static_cast<std::int64_t>(ce.bank));
      ASSERT_EQ(numtheory::mod(ce.addr2, w), static_cast<std::int64_t>(ce.bank));
      const std::vector<std::int64_t> pair{ce.addr1, ce.addr2};
      EXPECT_GE(gpusim::shared_access_cost(pair, w).conflicts, 1)
          << "w=" << w << " E=" << e;
    }
  }
}

TEST(CfVerify, NoRhoRefutationsReplayAgainstTheRealSchedule) {
  for (const int w : kWidths) {
    for (int e = 2; e <= w; ++e) {
      if (numtheory::gcd(w, e) <= 1) continue;
      const ProofObject po = verify_cf_gather(w, e, ScheduleVariant::kNoRhoShift);
      ASSERT_EQ(po.verdict, Verdict::kCounterexample) << "w=" << w << " E=" << e;
      const Counterexample& ce = po.counterexample;

      // The witness is an actual schedule instance: rebuild it and check the
      // two lanes really read the claimed raw positions in that round.
      const gather::RoundSchedule sched = make_schedule(w, e, ce.u, ce.a_sizes);
      EXPECT_EQ(sched.read(ce.lane1, ce.round).raw, ce.addr1);
      EXPECT_EQ(sched.read(ce.lane2, ce.round).raw, ce.addr2);
      ASSERT_NE(ce.addr1, ce.addr2);
      EXPECT_EQ(numtheory::mod(ce.addr1, w), numtheory::mod(ce.addr2, w));

      // Without rho the raw positions collide in a bank; with rho the same
      // warp round is conflict free — exactly the paper's Section 3.2 story.
      std::vector<std::int64_t> raw(static_cast<std::size_t>(w));
      std::vector<std::int64_t> phys(static_cast<std::size_t>(w));
      const int warp = ce.lane1 / w;
      for (int lane = 0; lane < w; ++lane) {
        const gather::GatherRead r = sched.read(warp * w + lane, ce.round);
        raw[static_cast<std::size_t>(lane)] = r.raw;
        phys[static_cast<std::size_t>(lane)] = r.phys;
      }
      EXPECT_GE(gpusim::shared_access_cost(raw, w).conflicts, 1)
          << "w=" << w << " E=" << e;
      EXPECT_EQ(gpusim::shared_access_cost(phys, w).conflicts, 0)
          << "w=" << w << " E=" << e;
    }
  }
}

TEST(CfVerify, BitonicProfileMatchesSimulatorBitExactly) {
  // One shared-memory bitonic sort of exactly one tile: every bank conflict
  // the simulator charges comes from the exchange substages, so the static
  // profile (degree - 1 per access) must reproduce the counter bit-exactly.
  for (const bool padded : {false, true}) {
    const int w = 8;
    sort::BitonicConfig cfg;
    cfg.u = 16;
    cfg.elems_per_thread = 4;
    cfg.padded = padded;
    const std::int64_t tile = cfg.tile();  // 64

    const ProofObject po =
        verify_bitonic_exchange(tile, w, padded);
    EXPECT_EQ(po.verdict, Verdict::kProved) << "padded=" << padded;

    auto degree = [&](std::int64_t j) {
      if (j >= w) return 1;
      if (padded && j == 1) return 1;
      return 2;
    };
    const std::int64_t rows = tile / 2 / w;  // rows per substage per sweep
    std::int64_t predicted = 0;
    for (std::int64_t k = 2; k <= tile; k *= 2)
      for (std::int64_t j = k / 2; j >= 1; j /= 2)
        predicted += 4 * rows * (degree(j) - 1);  // 2 gathers + 2 scatters

    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(w));
    std::vector<int> data(static_cast<std::size_t>(tile));
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = static_cast<int>((i * 37) % 101);
    const sort::BitonicReport report = sort::bitonic_sort(launcher, data, cfg);
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
    EXPECT_EQ(static_cast<std::int64_t>(report.totals.bank_conflicts), predicted)
        << "padded=" << padded;
  }
}

TEST(CfVerify, BitonicUnpaddedWitnessReplays) {
  for (const int w : {4, 8, 16, 32}) {
    const ProofObject po = refute_bitonic_unpadded(4 * w, w);
    ASSERT_EQ(po.verdict, Verdict::kCounterexample) << "w=" << w;
    const Counterexample& ce = po.counterexample;
    ASSERT_NE(ce.addr1, ce.addr2);
    EXPECT_EQ(numtheory::mod(ce.addr1, w), static_cast<std::int64_t>(ce.bank));
    EXPECT_EQ(numtheory::mod(ce.addr2, w), static_cast<std::int64_t>(ce.bank));
    const std::vector<std::int64_t> pair{ce.addr1, ce.addr2};
    EXPECT_GE(gpusim::shared_access_cost(pair, w).conflicts, 1);
  }
}

TEST(CfVerify, MultiwayCascadeSweepProved) {
  // Representative E values keep the full w x k sweep affordable; the
  // VerifyAll test below covers every E for the small widths.
  for (const int w : kWidths) {
    for (const int k : {2, 4, 8}) {
      for (const int e : {2, 3, w / 2, w}) {
        if (e < 2 || e > w) continue;
        const ProofObject po = verify_multiway_cascade(w, e, k);
        ASSERT_EQ(po.verdict, Verdict::kProved)
            << "w=" << w << " E=" << e << " k=" << k;
        EXPECT_EQ(po.k, k);
        ASSERT_FALSE(po.steps.empty());
        for (const ProofStep& st : po.steps)
          EXPECT_EQ(st.status, StepStatus::kPassed)
              << "w=" << w << " E=" << e << " k=" << k << " step " << st.name
              << ": " << st.detail;
      }
    }
  }
}

TEST(CfVerify, MultiwayDirectRefutationWitnessReplays) {
  for (const int w : kWidths) {
    const int e = std::max(2, w / 2);
    for (const int k : {2, 3, 4, 8}) {
      const ProofObject po = refute_multiway_direct(w, e, k);
      ASSERT_EQ(po.verdict, Verdict::kCounterexample)
          << "w=" << w << " E=" << e << " k=" << k;
      const Counterexample& ce = po.counterexample;
      // Lane 0 and lane ceil(w/E) read sequence-0 heads at offsets 0 and w.
      EXPECT_EQ(ce.lane1, 0);
      EXPECT_EQ(ce.lane2, (w + e - 1) / e);
      ASSERT_NE(ce.addr1, ce.addr2);
      EXPECT_EQ(numtheory::mod(ce.addr1, w), static_cast<std::int64_t>(ce.bank));
      EXPECT_EQ(numtheory::mod(ce.addr2, w), static_cast<std::int64_t>(ce.bank));
      const std::vector<std::int64_t> pair{ce.addr1, ce.addr2};
      EXPECT_GE(gpusim::shared_access_cost(pair, w).conflicts, 1)
          << "w=" << w << " k=" << k;
    }
  }
}

TEST(CfVerify, VerifyAllReportIsOkAndSerializes) {
  VerifyOptions opts;
  opts.widths = {4, 8};
  const VerifyReport report = verify_all(opts);
  EXPECT_TRUE(report.all_proved());
  EXPECT_TRUE(report.all_refuted());
  EXPECT_TRUE(report.ok());
  // Every (w, E) family proves the seven CF primitives (cf_gather,
  // cf_rank_scatter, cf_permute{,_inverse}, cf_transpose{,_inverse},
  // cf_stage) plus cf_stride when gcd(w, E) = 1 and a multiway cascade per
  // arity, and refutes cf_gather_no_pi always and cf_gather_no_rho +
  // cf_permute_no_rho when gcd(w, E) > 1; every width additionally carries
  // the bitonic profiles and the per-k direct claims.
  constexpr std::size_t kCfPrimitives = 7;
  constexpr std::size_t kBrokenCoprime = 1;   // cf_gather_no_pi
  constexpr std::size_t kBrokenSharedD = 2;   // *_no_rho variants
  std::size_t want_refutations = 0;
  std::size_t want_proofs = 0;
  for (const int w : opts.widths) {
    ++want_refutations;  // bitonic cf claim
    want_refutations += opts.ks.size();  // direct k-ary claims
    want_proofs += 2;  // bitonic padded + unpadded profile
    for (int e = 2; e <= w; ++e) {
      want_proofs += kCfPrimitives + opts.ks.size();
      if (numtheory::gcd(w, e) == 1) ++want_proofs;  // cf_stride
      want_refutations += kBrokenCoprime;
      if (numtheory::gcd(w, e) > 1) want_refutations += kBrokenSharedD;
    }
  }
  EXPECT_EQ(report.proofs.size(), want_proofs);
  EXPECT_EQ(report.refutations.size(), want_refutations);

  std::ostringstream os;
  analysis::write_json(os, report);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"kind\":\"verify\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"counterexample\""), std::string::npos);
}

TEST(CfVerify, InvalidParametersThrow) {
  EXPECT_THROW((void)verify_cf_gather(8, 1), std::invalid_argument);
  EXPECT_THROW((void)verify_cf_gather(8, 9), std::invalid_argument);
  EXPECT_THROW((void)verify_cf_gather(0, 2), std::invalid_argument);
  EXPECT_THROW((void)verify_bitonic_exchange(24, 8, true), std::invalid_argument);
  EXPECT_THROW((void)verify_bitonic_exchange(8, 8, true), std::invalid_argument);
  EXPECT_THROW((void)verify_multiway_cascade(8, 4, 3), std::invalid_argument);
  EXPECT_THROW((void)verify_multiway_cascade(8, 4, 1), std::invalid_argument);
  EXPECT_THROW((void)verify_multiway_cascade(8, 1, 4), std::invalid_argument);
  EXPECT_THROW((void)refute_multiway_direct(8, 1, 4), std::invalid_argument);
  EXPECT_THROW((void)refute_multiway_direct(8, 4, 1), std::invalid_argument);
}
