// Tests of the occupancy calculator and the roofline timing model,
// including the paper's two software parameter sets.
#include <gtest/gtest.h>

#include "gpusim/occupancy.hpp"
#include "gpusim/timing.hpp"
#include "sort/cost_model.hpp"

using namespace cfmerge::gpusim;

TEST(Occupancy, PaperParameterSetE15U512HasFullOccupancy) {
  // Berney & Sitchinava: E=15, u=512 yields 100% theoretical occupancy on
  // the RTX 2080 Ti (tile of 512*15*4B = 30 KiB shared, 2 blocks/SM).
  const DeviceSpec dev = DeviceSpec::rtx2080ti();
  const std::size_t tile_bytes = 512ull * 15 * 4;
  const auto occ =
      compute_occupancy(dev, 512, tile_bytes, cfmerge::sort::cost::baseline_regs_per_thread(15));
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.warps_per_sm, 32);
  EXPECT_DOUBLE_EQ(occ.occupancy, 1.0);
}

TEST(Occupancy, PaperParameterSetE17U256IsLower) {
  // E=17, u=256: tile 256*17*4B = 17 KiB; shared memory allows 3 blocks/SM
  // = 768 threads -> 75% occupancy (< 100%), matching the paper's account
  // of why this Thrust default is slower.
  const DeviceSpec dev = DeviceSpec::rtx2080ti();
  const std::size_t tile_bytes = 256ull * 17 * 4;
  const auto occ =
      compute_occupancy(dev, 256, tile_bytes, cfmerge::sort::cost::baseline_regs_per_thread(17));
  EXPECT_LT(occ.occupancy, 1.0);
  EXPECT_EQ(occ.blocks_per_sm, 3);
  EXPECT_EQ(occ.limiter, "shared");
}

TEST(Occupancy, ThreadLimited) {
  const DeviceSpec dev = DeviceSpec::rtx2080ti();
  const auto occ = compute_occupancy(dev, 1024, 0, 16);
  EXPECT_EQ(occ.blocks_per_sm, 1);
  EXPECT_EQ(occ.limiter, "threads");
  EXPECT_DOUBLE_EQ(occ.occupancy, 1.0);
}

TEST(Occupancy, RegisterLimited) {
  const DeviceSpec dev = DeviceSpec::rtx2080ti();
  // 128 regs/thread * 256 threads = 32768 regs/block -> 2 blocks/SM.
  const auto occ = compute_occupancy(dev, 256, 0, 128);
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.limiter, "registers");
}

TEST(Occupancy, BlockDoesNotFit) {
  const DeviceSpec dev = DeviceSpec::rtx2080ti();
  const auto occ = compute_occupancy(dev, 256, dev.shared_bytes_per_sm + 1, 16);
  EXPECT_EQ(occ.blocks_per_sm, 0);
  EXPECT_EQ(occ.limiter, "none");
}

TEST(Occupancy, RejectsBadThreadCounts) {
  const DeviceSpec dev = DeviceSpec::rtx2080ti();
  EXPECT_THROW((void)compute_occupancy(dev, 100, 0, 16), std::invalid_argument);
  EXPECT_THROW((void)compute_occupancy(dev, 0, 0, 16), std::invalid_argument);
}

namespace {
Counters make_counters(std::uint64_t instrs, std::uint64_t shared_cycles,
                       std::uint64_t bytes) {
  Counters c;
  c.warp_instructions = instrs;
  c.shared_accesses = shared_cycles;
  c.shared_cycles = shared_cycles;
  c.gmem_bytes = bytes;
  return c;
}
}  // namespace

TEST(Timing, ComputeBoundKernel) {
  const DeviceSpec dev = DeviceSpec::rtx2080ti();
  const LaunchShape shape{1000, 256, 0, 16};
  const auto t = simulate_timing(dev, shape, make_counters(100000000, 10, 10), 1.0);
  EXPECT_STREQ(t.limiter, "compute");
  // The work bound is additive (plus the fixed launch overhead); the
  // compute term dominates here.
  EXPECT_NEAR(t.cycles, 100000000.0 / (dev.issue_width * dev.num_sms),
              dev.launch_overhead_cycles + 1.0);
  EXPECT_DOUBLE_EQ(t.work_bound, t.compute_bound + t.shared_bound + t.bw_bound);
}

TEST(Timing, SharedBoundKernel) {
  const DeviceSpec dev = DeviceSpec::rtx2080ti();
  const LaunchShape shape{1000, 256, 0, 16};
  const auto t = simulate_timing(dev, shape, make_counters(10, 200000000, 10), 1.0);
  EXPECT_STREQ(t.limiter, "shared");
}

TEST(Timing, BandwidthBoundKernel) {
  const DeviceSpec dev = DeviceSpec::rtx2080ti();
  const LaunchShape shape{1000, 256, 0, 16};
  const auto t = simulate_timing(dev, shape, make_counters(10, 10, 4000000000ull), 1.0);
  EXPECT_STREQ(t.limiter, "bw");
}

TEST(Timing, LatencyBoundSmallGrid) {
  const DeviceSpec dev = DeviceSpec::rtx2080ti();
  const LaunchShape shape{1, 256, 0, 16};
  const auto t = simulate_timing(dev, shape, make_counters(10, 10, 10), 5000.0);
  EXPECT_STREQ(t.limiter, "latency");
  EXPECT_EQ(t.waves, 1);
  EXPECT_DOUBLE_EQ(t.cycles, 5000.0 + dev.launch_overhead_cycles);
  EXPECT_GT(t.latency_bound, t.work_bound);
}

TEST(Timing, WavesQuantizeLatency) {
  const DeviceSpec dev = DeviceSpec::rtx2080ti();
  // blocks_per_sm for 256 threads / no shared / 16 regs = 4 (max_blocks? ...):
  const auto occ = compute_occupancy(dev, 256, 0, 16);
  const int resident = dev.num_sms * occ.blocks_per_sm;
  const LaunchShape shape{resident + 1, 256, 0, 16};
  const auto t = simulate_timing(dev, shape, make_counters(1, 1, 1), 1000.0);
  EXPECT_EQ(t.waves, 2);
  EXPECT_DOUBLE_EQ(t.latency_bound, 2000.0);
}

TEST(Timing, MicrosecondsUseClock) {
  DeviceSpec dev = DeviceSpec::rtx2080ti();
  dev.launch_overhead_cycles = 0;
  const LaunchShape shape{1, 256, 0, 16};
  const auto t = simulate_timing(dev, shape, make_counters(1, 1, 1), 1545.0);
  EXPECT_NEAR(t.microseconds, 1.0, 1e-9);  // 1545 cycles at 1.545 GHz = 1 us
}

TEST(Timing, LaunchOverheadDominatesTinyGrids) {
  // The fixed per-launch cost is what suppresses throughput at small n
  // (the rising left edge of the paper's figures).
  DeviceSpec dev = DeviceSpec::rtx2080ti();
  const LaunchShape shape{1, 256, 0, 16};
  const auto t = simulate_timing(dev, shape, make_counters(1, 1, 1), 1.0);
  EXPECT_GE(t.cycles, dev.launch_overhead_cycles);
  dev.launch_overhead_cycles = 0;
  const auto t0 = simulate_timing(dev, shape, make_counters(1, 1, 1), 1.0);
  EXPECT_LT(t0.cycles, 100.0);
}

TEST(Timing, BankConflictsInflateSharedBound) {
  const DeviceSpec dev = DeviceSpec::rtx2080ti();
  const LaunchShape shape{1000, 256, 0, 16};
  Counters base = make_counters(0, 1000000, 0);
  Counters conflicted = base;
  conflicted.shared_cycles *= 8;
  conflicted.bank_conflicts = conflicted.shared_cycles - conflicted.shared_accesses;
  const auto t0 = simulate_timing(dev, shape, base, 1.0);
  const auto t1 = simulate_timing(dev, shape, conflicted, 1.0);
  EXPECT_GT(t1.shared_bound, t0.shared_bound * 7.9);
  EXPECT_GT(t1.cycles, t0.cycles * 6.0);
  EXPECT_STREQ(t1.limiter, "shared");
}

TEST(DeviceSpecTest, ValidateCatchesNonsense) {
  DeviceSpec d = DeviceSpec::rtx2080ti();
  d.warp_size = 0;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = DeviceSpec::rtx2080ti();
  d.max_threads_per_sm = 100;  // not a multiple of 32
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d = DeviceSpec::rtx2080ti();
  d.dram_bytes_per_cycle = 0;
  EXPECT_THROW(d.validate(), std::invalid_argument);
  EXPECT_NO_THROW(DeviceSpec::rtx2080ti().validate());
  EXPECT_NO_THROW(DeviceSpec::tiny(6).validate());
}
