// Tests of the counter algebra and miscellaneous small utilities that the
// bigger suites exercise only indirectly.
#include "gpusim/stats.hpp"

#include <gtest/gtest.h>

#include "sort/odd_even.hpp"

using namespace cfmerge::gpusim;

namespace {
Counters make(std::uint64_t instrs, std::uint64_t acc, std::uint64_t cyc,
              std::uint64_t conf) {
  Counters c;
  c.warp_instructions = instrs;
  c.shared_accesses = acc;
  c.shared_cycles = cyc;
  c.bank_conflicts = conf;
  return c;
}
}  // namespace

TEST(Counters, AdditionIsFieldwise) {
  Counters a = make(1, 2, 3, 4);
  a.gmem_requests = 5;
  a.gmem_transactions = 6;
  a.gmem_bytes = 7;
  a.l2_hits = 8;
  a.l2_misses = 9;
  a.barriers = 10;
  const Counters b = a;
  const Counters s = a + b;
  EXPECT_EQ(s.warp_instructions, 2u);
  EXPECT_EQ(s.shared_accesses, 4u);
  EXPECT_EQ(s.shared_cycles, 6u);
  EXPECT_EQ(s.bank_conflicts, 8u);
  EXPECT_EQ(s.gmem_requests, 10u);
  EXPECT_EQ(s.gmem_transactions, 12u);
  EXPECT_EQ(s.gmem_bytes, 14u);
  EXPECT_EQ(s.l2_hits, 16u);
  EXPECT_EQ(s.l2_misses, 18u);
  EXPECT_EQ(s.barriers, 20u);
}

TEST(Counters, EqualityAndDefault) {
  EXPECT_EQ(Counters{}, Counters{});
  Counters a;
  a.bank_conflicts = 1;
  EXPECT_NE(a, Counters{});
}

TEST(Counters, ConflictsPerAccess) {
  EXPECT_DOUBLE_EQ(Counters{}.conflicts_per_access(), 0.0);
  const Counters c = make(0, 4, 12, 8);
  EXPECT_DOUBLE_EQ(c.conflicts_per_access(), 2.0);
}

TEST(PhaseCountersTest, PreservesFirstUseOrder) {
  PhaseCounters p;
  p.phase("load").shared_accesses = 1;
  p.phase("merge").shared_accesses = 2;
  p.phase("load").bank_conflicts = 3;  // same phase again: no new entry
  ASSERT_EQ(p.phases().size(), 2u);
  EXPECT_EQ(p.phases()[0].first, "load");
  EXPECT_EQ(p.phases()[0].second.shared_accesses, 1u);
  EXPECT_EQ(p.phases()[0].second.bank_conflicts, 3u);
  EXPECT_EQ(p.phases()[1].first, "merge");
}

TEST(PhaseCountersTest, TotalSumsAllPhases) {
  PhaseCounters p;
  p.phase("a").warp_instructions = 10;
  p.phase("b").warp_instructions = 32;
  EXPECT_EQ(p.total().warp_instructions, 42u);
}

TEST(PhaseCountersTest, MergeCombinesByName) {
  PhaseCounters p, q;
  p.phase("x").shared_accesses = 1;
  q.phase("x").shared_accesses = 2;
  q.phase("y").shared_accesses = 3;
  p.merge(q);
  ASSERT_EQ(p.phases().size(), 2u);
  EXPECT_EQ(p.phases()[0].second.shared_accesses, 3u);
  EXPECT_EQ(p.phases()[1].second.shared_accesses, 3u);
}

TEST(OddEvenAux, SequentialCesMatchesNetworkSize) {
  for (int n = 0; n <= 20; ++n)
    EXPECT_EQ(cfmerge::sort::odd_even_sequential_ces(n),
              cfmerge::sort::odd_even_network_size(n));
}
