// Dual-path accounting oracle for the proof-guided bulk charging fast path.
//
// Every sort is simulated twice — once with DeviceSpec::bulk_charge enabled
// (the default: certified warp accesses are charged in closed form) and once
// with it disabled (every access walks the per-lane reference path) — and
// every observable must be bit-identical: the sorted output, every phase's
// Counters (operator== compares all fields), the simulated kernel timings,
// and the per-kernel dependency chains.  The sweep crosses warp widths
// 4..64, coprime and non-coprime E, the pairwise and k-way pipelines, both
// merge variants, ablations, and host worker counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "sort/engine.hpp"

using namespace cfmerge;
using namespace cfmerge::sort;
using gpusim::DeviceSpec;
using gpusim::Launcher;

namespace {

std::vector<int> rand_vec(std::uint64_t seed, std::int64_t n) {
  std::mt19937_64 rng(seed);
  std::vector<int> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<int>(rng() % 2000003) - 1000001;
  return v;
}

/// Everything the simulator reports about one sort, bit-exact.
struct Observed {
  std::vector<int> data;
  gpusim::PhaseCounters phases;
  gpusim::Counters totals;
  double microseconds = 0.0;
  std::vector<double> mean_chains;
  std::vector<double> max_chains;
  std::uint64_t bulk_charges = 0;
  std::uint64_t lane_charges = 0;
};

struct BulkCase {
  int w = 8;
  int e = 5;
  int u = 16;
  int k = 0;  ///< 0 = pairwise pipeline, >= 2 = multiway
  std::int64_t n = 0;
  Variant variant = Variant::CFMerge;                       // pairwise only
  MultiwayVariant mvariant = MultiwayVariant::CFCascade;    // multiway only
  bool cf_blocksort = false;
  bool disable_rho = false;
  std::string tag;
};

Observed run_sort(const BulkCase& c, bool bulk, int threads, std::vector<int> data) {
  DeviceSpec dev = DeviceSpec::tiny(c.w);
  dev.bulk_charge = bulk;
  Launcher launcher(dev);
  launcher.set_threads(threads);
  SortEngine engine(launcher);

  SortReport report;
  if (c.k == 0) {
    MergeConfig cfg;
    cfg.e = c.e;
    cfg.u = c.u;
    cfg.variant = c.variant;
    cfg.cf_blocksort = c.cf_blocksort;
    cfg.disable_rho = c.disable_rho;
    report = engine.sort(data, cfg);
  } else {
    MultiwayConfig cfg;
    cfg.e = c.e;
    cfg.u = c.u;
    cfg.k = c.k;
    cfg.variant = c.mvariant;
    cfg.cf_blocksort = c.cf_blocksort;
    report = engine.sort_multiway(data, cfg);
  }

  Observed obs;
  obs.data = std::move(data);
  obs.phases = report.phases;
  obs.totals = report.totals;
  obs.microseconds = report.microseconds;
  for (const gpusim::KernelReport& k : report.kernels) {
    obs.mean_chains.push_back(k.mean_block_chain);
    obs.max_chains.push_back(k.max_block_chain);
  }
  obs.bulk_charges = launcher.bulk_charges();
  obs.lane_charges = launcher.lane_charges();
  return obs;
}

/// Asserts that everything except the bulk/lane split is bit-identical.
void expect_identical(const Observed& a, const Observed& b, const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(a.totals, b.totals);
  EXPECT_EQ(a.phases, b.phases);
  EXPECT_EQ(a.microseconds, b.microseconds);  // exact: same doubles
  EXPECT_EQ(a.mean_chains, b.mean_chains);
  EXPECT_EQ(a.max_chains, b.max_chains);
}

std::vector<BulkCase> bulk_cases() {
  std::vector<BulkCase> cases;
  auto add = [&](BulkCase c, std::string tag) {
    c.tag = std::move(tag);
    cases.push_back(c);
  };
  // Pairwise CF across widths, coprime and non-coprime E, ragged n.
  add({4, 3, 8, 0, 8 * 3 * 8 + 5}, "w4_E3_coprime");
  add({8, 5, 16, 0, 16 * 5 * 8 + 7}, "w8_E5_coprime");
  add({8, 6, 16, 0, 16 * 6 * 8 + 3}, "w8_E6_noncoprime");
  add({16, 15, 32, 0, 32 * 15 * 4 + 11}, "w16_E15_coprime");
  add({32, 12, 32, 0, 32 * 12 * 4 + 1}, "w32_E12_noncoprime");
  add({64, 9, 64, 0, 64 * 9 * 4 + 17}, "w64_E9_coprime");
  // The uncertified fallthrough paths must also agree: baseline serial
  // merge, the disable_rho ablation, and the CF block-sort extension.
  {
    BulkCase c{8, 5, 16, 0, 16 * 5 * 8 + 7};
    c.variant = Variant::Baseline;
    add(c, "w8_E5_baseline");
  }
  {
    BulkCase c{8, 6, 16, 0, 16 * 6 * 8 + 3};
    c.disable_rho = true;
    add(c, "w8_E6_disable_rho");
  }
  {
    BulkCase c{8, 5, 16, 0, 16 * 5 * 8 + 7};
    c.cf_blocksort = true;
    add(c, "w8_E5_cf_blocksort");
  }
  // Multiway: cascade at k in {2, 4, 8} plus the LoserTree fallthrough.
  for (const int k : {2, 4, 8}) {
    BulkCase c{8, 5, 16, k, 16 * 5 * 64 + 9};
    add(c, "w8_E5_cascade_k" + std::to_string(k));
  }
  {
    BulkCase c{8, 6, 16, 4, 16 * 6 * 16 + 5};
    add(c, "w8_E6_cascade_k4_noncoprime");
  }
  {
    BulkCase c{8, 5, 16, 4, 16 * 5 * 16 + 5};
    c.mvariant = MultiwayVariant::LoserTree;
    add(c, "w8_E5_losertree_k4");
  }
  return cases;
}

}  // namespace

class BulkChargeCases : public ::testing::TestWithParam<BulkCase> {};

TEST_P(BulkChargeCases, CountersBitIdenticalAcrossAccountingPaths) {
  const BulkCase c = GetParam();
  const std::vector<int> input =
      rand_vec(static_cast<std::uint64_t>(c.n) * 31 + c.e, c.n);
  std::vector<int> expect = input;
  std::sort(expect.begin(), expect.end());

  const Observed lane = run_sort(c, /*bulk=*/false, /*threads=*/1, input);
  const Observed bulk = run_sort(c, /*bulk=*/true, /*threads=*/1, input);
  EXPECT_EQ(lane.data, expect);
  expect_identical(lane, bulk, "bulk vs lane, sequential");

  // The bulk path must actually fire when enabled, and never when disabled.
  EXPECT_EQ(lane.bulk_charges, 0u);
  EXPECT_GT(lane.lane_charges, 0u);
  EXPECT_GT(bulk.bulk_charges, 0u) << "no certified site took the bulk path";
  // Bulk charging strictly reduces per-lane walks: every warp access is
  // charged exactly once, by exactly one of the two paths.
  EXPECT_LT(bulk.lane_charges, lane.lane_charges);
}

TEST_P(BulkChargeCases, HostWorkerCountDoesNotPerturbEitherPath) {
  const BulkCase c = GetParam();
  const std::vector<int> input =
      rand_vec(static_cast<std::uint64_t>(c.n) * 57 + c.e, c.n);

  const Observed ref = run_sort(c, /*bulk=*/true, /*threads=*/1, input);
  for (const int threads : {2, 4}) {
    for (const bool bulk : {false, true}) {
      const Observed got = run_sort(c, bulk, threads, input);
      expect_identical(ref, got,
                       "threads=" + std::to_string(threads) +
                           " bulk=" + std::to_string(bulk));
      // The bulk/lane split itself is also deterministic per mode.
      if (bulk) {
        EXPECT_EQ(got.bulk_charges, ref.bulk_charges);
        EXPECT_EQ(got.lane_charges, ref.lane_charges);
      } else {
        EXPECT_EQ(got.bulk_charges, 0u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BulkChargeCases, ::testing::ValuesIn(bulk_cases()),
                         [](const ::testing::TestParamInfo<BulkCase>& info) {
                           return info.param.tag;
                         });

// The trace and shadow/audit instrumentation must force the lane path (the
// bulk path skips per-access events), and tracing must observe the same
// access stream with bulk charging globally enabled as with it disabled.
TEST(BulkCharge, TracingForcesLanePathAndSeesIdenticalEvents) {
  const BulkCase c{8, 5, 16, 0, 16 * 5 * 8 + 7};
  const std::vector<int> input = rand_vec(99, c.n);

  auto traced = [&](bool bulk) {
    DeviceSpec dev = DeviceSpec::tiny(c.w);
    dev.bulk_charge = bulk;
    Launcher launcher(dev);
    gpusim::TraceSink sink;
    launcher.set_trace(&sink);
    SortEngine engine(launcher);
    std::vector<int> data = input;
    MergeConfig cfg;
    cfg.e = c.e;
    cfg.u = c.u;
    engine.sort(data, cfg);
    EXPECT_EQ(launcher.bulk_charges(), 0u)
        << "bulk path must not fire while a trace sink is attached";
    return sink.size();
  };
  EXPECT_EQ(traced(true), traced(false));
}
