// Tests of BlockContext charging, phases, chains and the typed memory views.
#include "gpusim/block_context.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpusim/memory_views.hpp"

using namespace cfmerge::gpusim;

namespace {
DeviceSpec tiny8() { return DeviceSpec::tiny(8); }

std::vector<std::int64_t> iota_addrs(int n, std::int64_t start = 0, std::int64_t stride = 1) {
  std::vector<std::int64_t> a(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) a[static_cast<std::size_t>(i)] = start + i * stride;
  return a;
}
}  // namespace

TEST(BlockContext, ValidatesConstruction) {
  const DeviceSpec dev = tiny8();
  EXPECT_THROW(BlockContext(dev, 0, 1, 12), std::invalid_argument);  // not multiple of 8
  EXPECT_THROW(BlockContext(dev, 0, 1, 0), std::invalid_argument);
  EXPECT_THROW(BlockContext(dev, 2, 2, 8), std::invalid_argument);  // id out of range
  BlockContext ok(dev, 1, 2, 16);
  EXPECT_EQ(ok.warps(), 2);
  EXPECT_EQ(ok.lanes(), 8);
}

TEST(BlockContext, ChargesSharedCounters) {
  const DeviceSpec dev = tiny8();
  BlockContext ctx(dev, 0, 1, 8);
  const auto conflict_free = iota_addrs(8);
  const auto conflicting = iota_addrs(8, 0, 8);  // all bank 0
  ctx.charge_shared(0, conflict_free);
  ctx.charge_shared(0, conflicting);
  const Counters c = ctx.counters().total();
  EXPECT_EQ(c.shared_accesses, 2u);
  // Port occupancy: 1 cycle per access plus shared_replay_cycles per
  // conflict (7 conflicts on the second access).
  EXPECT_EQ(c.shared_cycles,
            2u + 7u * static_cast<std::uint64_t>(dev.shared_replay_cycles));
  EXPECT_EQ(c.bank_conflicts, 7u);
}

TEST(BlockContext, DependentSharedAccessExtendsChain) {
  const DeviceSpec dev = tiny8();
  BlockContext ctx(dev, 0, 1, 8);
  ctx.charge_shared(0, iota_addrs(8), /*dependent=*/true);
  EXPECT_DOUBLE_EQ(ctx.block_chain(), static_cast<double>(dev.shared_latency));
  ctx.charge_shared(0, iota_addrs(8, 0, 8), /*dependent=*/true);
  EXPECT_DOUBLE_EQ(ctx.block_chain(),
                   static_cast<double>(2 * dev.shared_latency + 7 * dev.shared_replay_cycles));
}

TEST(BlockContext, NonDependentAccessCostsThroughputOnly) {
  const DeviceSpec dev = tiny8();
  BlockContext ctx(dev, 0, 1, 8);
  ctx.charge_shared(0, iota_addrs(8), /*dependent=*/false);
  EXPECT_DOUBLE_EQ(ctx.block_chain(), 1.0);
}

TEST(BlockContext, PhasesSeparateCounters) {
  const DeviceSpec dev = tiny8();
  BlockContext ctx(dev, 0, 1, 8);
  ctx.phase("alpha");
  ctx.charge_shared(0, iota_addrs(8));
  ctx.phase("beta");
  ctx.charge_shared(0, iota_addrs(8));
  ctx.charge_shared(0, iota_addrs(8));
  const auto& phases = ctx.counters().phases();
  // "main" is created implicitly at construction.
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[1].first, "alpha");
  EXPECT_EQ(phases[1].second.shared_accesses, 1u);
  EXPECT_EQ(phases[2].first, "beta");
  EXPECT_EQ(phases[2].second.shared_accesses, 2u);
  EXPECT_EQ(ctx.counters().total().shared_accesses, 3u);
}

TEST(BlockContext, BarrierSynchronizesWarpChains) {
  const DeviceSpec dev = tiny8();
  BlockContext ctx(dev, 0, 1, 16);  // 2 warps
  ctx.charge_compute(0, 100);
  ctx.charge_compute(1, 10);
  EXPECT_DOUBLE_EQ(ctx.warp_chains()[0], 100.0);
  EXPECT_DOUBLE_EQ(ctx.warp_chains()[1], 10.0);
  ctx.barrier();
  EXPECT_DOUBLE_EQ(ctx.warp_chains()[0], 100.0);
  EXPECT_DOUBLE_EQ(ctx.warp_chains()[1], 100.0);
  EXPECT_EQ(ctx.counters().total().barriers, 1u);
}

TEST(BlockContext, GmemChargesLatencyWhenDependent) {
  const DeviceSpec dev = tiny8();
  BlockContext ctx(dev, 0, 1, 8);
  std::vector<std::int64_t> bytes{0, 4, 8, 12, 16, 20, 24, 28};
  ctx.charge_gmem(0, bytes, 4, /*dependent=*/true);
  EXPECT_DOUBLE_EQ(ctx.block_chain(), static_cast<double>(dev.global_latency));
  const Counters c = ctx.counters().total();
  EXPECT_EQ(c.gmem_requests, 1u);
  EXPECT_EQ(c.gmem_transactions, 1u);
  EXPECT_EQ(c.gmem_bytes, 32u);
}

TEST(SharedTileView, GatherScatterRoundTrip) {
  const DeviceSpec dev = tiny8();
  BlockContext ctx(dev, 0, 1, 8);
  SharedTile<int> tile(ctx, 64);
  EXPECT_EQ(ctx.shared_bytes(), 64 * sizeof(int));
  std::iota(tile.raw().begin(), tile.raw().end(), 100);

  const auto addrs = iota_addrs(8, 8, 1);
  std::vector<int> out(8);
  tile.gather(0, addrs, out);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 108 + i);

  std::vector<int> in{1, 2, 3, 4, 5, 6, 7, 8};
  tile.scatter(0, addrs, in);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(tile.raw()[static_cast<std::size_t>(8 + i)], 1 + i);
  EXPECT_EQ(ctx.counters().total().shared_accesses, 2u);
}

TEST(SharedTileView, InactiveLanesUntouched) {
  const DeviceSpec dev = tiny8();
  BlockContext ctx(dev, 0, 1, 8);
  SharedTile<int> tile(ctx, 8);
  std::vector<std::int64_t> addrs(8, kInactiveLane);
  addrs[2] = 5;
  std::vector<int> out(8, -1);
  tile.raw()[5] = 42;
  tile.gather(0, addrs, out);
  EXPECT_EQ(out[2], 42);
  EXPECT_EQ(out[0], -1);
}

TEST(GlobalViewTest, GatherScatterAndBaseOffset) {
  const DeviceSpec dev = tiny8();
  BlockContext ctx(dev, 0, 1, 8);
  std::vector<int> host(64);
  std::iota(host.begin(), host.end(), 0);
  GlobalView<int> view(ctx, std::span<int>(host).subspan(32), /*base_elem=*/32);
  std::vector<int> out(8);
  view.gather(0, iota_addrs(8), out);
  EXPECT_EQ(out[0], 32);
  EXPECT_EQ(out[7], 39);
  // Coalesced: 8 lanes x 4B starting at byte 128 -> one 128B transaction.
  EXPECT_EQ(ctx.counters().total().gmem_transactions, 1u);

  std::vector<int> in(8, -5);
  view.scatter(0, iota_addrs(8), in);
  EXPECT_EQ(host[32], -5);
  EXPECT_EQ(host[39], -5);
  EXPECT_EQ(host[40], 40);
}

TEST(GlobalViewTest, ConstViewReads) {
  const DeviceSpec dev = tiny8();
  BlockContext ctx(dev, 0, 1, 8);
  const std::vector<int> host{10, 11, 12, 13, 14, 15, 16, 17};
  GlobalView<const int> view(ctx, std::span<const int>(host), 0);
  std::vector<int> out(8);
  view.gather(0, iota_addrs(8), out);
  EXPECT_EQ(out[3], 13);
}
