// Tests of the pi (B-reversal) and rho (circular shift) permutations.
#include "gather/permutation.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "numtheory/numtheory.hpp"

using cfmerge::gather::BReversal;
using cfmerge::gather::CircularShift;

TEST(BReversalTest, MapsAIdentity) {
  const BReversal pi(10, 6);
  for (std::int64_t x = 0; x < 10; ++x) {
    EXPECT_EQ(pi.raw_of_a(x), x);
    EXPECT_TRUE(pi.is_a(x));
    EXPECT_EQ(pi.a_of_raw(x), x);
  }
}

TEST(BReversalTest, ReversesB) {
  const BReversal pi(10, 6);
  EXPECT_EQ(pi.raw_of_b(0), 15);  // first B element goes last
  EXPECT_EQ(pi.raw_of_b(5), 10);  // last B element right after A
  for (std::int64_t y = 0; y < 6; ++y) {
    const std::int64_t m = pi.raw_of_b(y);
    EXPECT_FALSE(pi.is_a(m));
    EXPECT_EQ(pi.b_of_raw(m), y);
  }
}

TEST(BReversalTest, EmptyLists) {
  const BReversal no_b(8, 0);
  EXPECT_TRUE(no_b.is_a(7));
  const BReversal no_a(0, 8);
  EXPECT_EQ(no_a.raw_of_b(0), 7);
  EXPECT_EQ(no_a.raw_of_b(7), 0);
}

TEST(CircularShiftTest, IdentityWhenCoprime) {
  const CircularShift rho(32, 15, 32 * 15);
  EXPECT_TRUE(rho.identity());
  for (std::int64_t m = 0; m < 32 * 15; m += 37) EXPECT_EQ(rho(m), m);
}

TEST(CircularShiftTest, IsAPermutationAndInverseWorks) {
  for (const auto& [w, e] : std::vector<std::pair<int, int>>{
           {12, 9}, {9, 6}, {32, 16}, {32, 24}, {6, 4}, {8, 8}}) {
    const std::int64_t d = cfmerge::numtheory::gcd(w, e);
    ASSERT_GT(d, 1);
    const std::int64_t total = 3 * static_cast<std::int64_t>(w) * e / d;
    const CircularShift rho(w, e, total);
    EXPECT_FALSE(rho.identity());
    std::set<std::int64_t> image;
    for (std::int64_t m = 0; m < total; ++m) {
      const std::int64_t p = rho(m);
      EXPECT_GE(p, 0);
      EXPECT_LT(p, total);
      EXPECT_EQ(rho.inverse(p), m);
      image.insert(p);
    }
    EXPECT_EQ(static_cast<std::int64_t>(image.size()), total);
  }
}

TEST(CircularShiftTest, ShiftsStayWithinPartition) {
  const CircularShift rho(9, 6, 9 * 6);  // d = 3, P = 18
  EXPECT_EQ(rho.partition_size(), 18);
  for (std::int64_t m = 0; m < 54; ++m) EXPECT_EQ(rho(m) / 18, m / 18);
}

TEST(CircularShiftTest, PartitionZeroUnshifted) {
  const CircularShift rho(9, 6, 9 * 6);
  for (std::int64_t m = 0; m < 18; ++m) EXPECT_EQ(rho(m), m);
  // Partition 1 shifted by 1, partition 2 by 2.
  EXPECT_EQ(rho(18), 19);
  EXPECT_EQ(rho(35), 18);  // wraps within partition 1
  EXPECT_EQ(rho(36), 38);
}

TEST(CircularShiftTest, AlignmentProperty) {
  // The property Section 3.2 needs: after the shift, the element with raw
  // index m is read in round m mod E, i.e. rho realigns each partition's
  // schedule.  Equivalently: rho(m) is read in round (offset-in-partition
  // minus shift) ... check the bank identity rho(m) ≡ m + (l mod d) (mod w).
  for (const auto& [w, e] : std::vector<std::pair<int, int>>{{12, 9}, {9, 6}, {32, 24}}) {
    const std::int64_t d = cfmerge::numtheory::gcd(w, e);
    const std::int64_t p = static_cast<std::int64_t>(w) * e / d;
    const CircularShift rho(w, e, 2 * d * p);
    for (std::int64_t m = 0; m < 2 * d * p; ++m) {
      const std::int64_t l = m / p;
      EXPECT_EQ(cfmerge::numtheory::mod(rho(m), w),
                cfmerge::numtheory::mod(m + l % d, w))
          << "w=" << w << " e=" << e << " m=" << m;
    }
  }
}

TEST(CircularShiftTest, RejectsBadShapes) {
  EXPECT_THROW(CircularShift(0, 5, 10), std::invalid_argument);
  EXPECT_THROW(CircularShift(8, 0, 8), std::invalid_argument);
  EXPECT_THROW(CircularShift(8, 6, 25), std::invalid_argument);  // not multiple of P=24
  EXPECT_NO_THROW(CircularShift(8, 6, 48));
}
