// Tests of the DMM model: module maps, step/schedule costs, and the
// equivalence with the GPU bank-conflict model under the direct map.
#include "dmm/dmm.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "gather/schedule.hpp"
#include "gpusim/shared_memory.hpp"

using namespace cfmerge;
using namespace cfmerge::dmm;

TEST(DirectMapTest, MatchesModW) {
  const DirectMap map(12);
  EXPECT_EQ(map.module(0), 0);
  EXPECT_EQ(map.module(13), 1);
  EXPECT_EQ(map.module(23), 11);
  EXPECT_EQ(map.overhead_ops(), 0);
}

TEST(OffsetMapTest, SkewShiftsRows) {
  const OffsetMap map(8, 1);
  // Row r is shifted by r: address r*8 lands on module r mod 8.
  for (int r = 0; r < 16; ++r) EXPECT_EQ(map.module(r * 8), r % 8);
  // Skew 0 degenerates to the direct map.
  const OffsetMap plain(8, 0);
  const DirectMap direct(8);
  for (std::int64_t a = 0; a < 256; ++a) EXPECT_EQ(plain.module(a), direct.module(a));
}

TEST(OffsetMapTest, FixesColumnAccess) {
  // Column access (stride w) fully serializes under direct mapping but is
  // conflict free under skew 1 — the classic padding trick.
  const int w = 8;
  std::vector<std::int64_t> column(static_cast<std::size_t>(w));
  for (int p = 0; p < w; ++p) column[static_cast<std::size_t>(p)] = p * w;
  EXPECT_EQ(step_cost(DirectMap(w), column).congestion, w);
  EXPECT_EQ(step_cost(OffsetMap(w, 1), column).congestion, 1);
}

TEST(UniversalHashMapTest, InRangeAndSeedDependent) {
  const UniversalHashMap h1(16, 1), h2(16, 2);
  bool differs = false;
  for (std::int64_t a = 0; a < 1000; ++a) {
    EXPECT_GE(h1.module(a), 0);
    EXPECT_LT(h1.module(a), 16);
    if (h1.module(a) != h2.module(a)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(UniversalHashMapTest, SpreadsAdversarialStride) {
  // Stride-w access: direct map congests w-fold; a random hash spreads it
  // to a small maximum w.h.p. (we allow up to w/2 to keep the test robust).
  const int w = 32;
  std::vector<std::int64_t> column(static_cast<std::size_t>(w));
  for (int p = 0; p < w; ++p) column[static_cast<std::size_t>(p)] = p * w;
  EXPECT_EQ(step_cost(DirectMap(w), column).congestion, w);
  int worst = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed)
    worst = std::max(worst, step_cost(UniversalHashMap(w, seed), column).congestion);
  EXPECT_LT(worst, w / 2);
}

TEST(StepCostTest, CombiningAndIdleProcessors) {
  const DirectMap map(8);
  std::vector<std::int64_t> step(8, 5);  // all processors same address
  EXPECT_EQ(step_cost(map, step).congestion, 1);
  std::fill(step.begin(), step.end(), -1);
  const auto idle = step_cost(map, step);
  EXPECT_EQ(idle.congestion, 0);
  EXPECT_EQ(idle.active, 0);
}

TEST(StepCostTest, AgreesWithGpuBankModelUnderDirectMap) {
  // The DMM with module = addr mod w and the GPU bank-conflict model must
  // assign identical serialization to every access.
  std::mt19937_64 rng(3);
  const int w = 32;
  const DirectMap map(w);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));
    for (auto& a : addrs)
      a = (rng() % 4 == 0) ? gpusim::kInactiveLane : static_cast<std::int64_t>(rng() % 512);
    const auto gpu = gpusim::shared_access_cost(addrs, w);
    const auto dmm_cost = step_cost(map, addrs);
    EXPECT_EQ(std::max(gpu.cycles, 0), dmm_cost.congestion);
    EXPECT_EQ(gpu.active_lanes, dmm_cost.active);
  }
}

TEST(ScheduleCostTest, AggregatesAndSlowdown) {
  const DirectMap map(4);
  std::vector<std::vector<std::int64_t>> schedule{
      {0, 1, 2, 3},    // conflict free
      {0, 4, 8, 12},   // 4-fold
      {-1, -1, -1, -1},  // idle step: skipped
  };
  const auto cost = schedule_cost(map, schedule);
  EXPECT_EQ(cost.ideal_steps, 2);
  EXPECT_EQ(cost.total_delay, 1 + 4);
  EXPECT_EQ(cost.max_congestion, 4);
  EXPECT_DOUBLE_EQ(cost.slowdown(), 2.5);
}

TEST(ScheduleCostTest, GatherScheduleIsPramOptimalOnDirectMap) {
  // The CF gather, viewed as a DMM algorithm: slowdown exactly 1 (PRAM
  // equivalence), for coprime and non-coprime shapes.
  std::mt19937_64 rng(4);
  for (const auto& [w, e] : std::vector<std::pair<int, int>>{{12, 5}, {9, 6}, {32, 16}}) {
    std::vector<std::int64_t> off(static_cast<std::size_t>(w)),
        sz(static_cast<std::size_t>(w));
    std::int64_t la = 0;
    for (int i = 0; i < w; ++i) {
      off[static_cast<std::size_t>(i)] = la;
      sz[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(rng() % (e + 1));
      la += sz[static_cast<std::size_t>(i)];
    }
    gather::GatherShape shape{w, e, w, la, static_cast<std::int64_t>(w) * e - la};
    gather::RoundSchedule sched(shape, off, sz);
    std::vector<std::vector<std::int64_t>> phys(static_cast<std::size_t>(e));
    for (int j = 0; j < e; ++j) {
      phys[static_cast<std::size_t>(j)].resize(static_cast<std::size_t>(w));
      for (int i = 0; i < w; ++i)
        phys[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
            sched.read(i, j).phys;
    }
    const auto cost = schedule_cost(DirectMap(w), phys);
    EXPECT_EQ(cost.ideal_steps, e);
    EXPECT_EQ(cost.total_delay, e);  // congestion 1 per step == PRAM time
    EXPECT_DOUBLE_EQ(cost.slowdown(), 1.0);
  }
}

TEST(ModuleMapTest, OverheadOrdering) {
  // The practicality argument of Section 2: fancier mappings cost more
  // per-access arithmetic.
  EXPECT_LT(DirectMap(8).overhead_ops(), OffsetMap(8, 1).overhead_ops());
  EXPECT_LT(OffsetMap(8, 1).overhead_ops(), UniversalHashMap(8, 0).overhead_ops());
}
