// Tests of the odd-even transposition sorting network.
#include "sort/odd_even.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

using cfmerge::sort::odd_even_network_size;
using cfmerge::sort::odd_even_transposition_sort;

TEST(OddEven, SortsRandomInputs) {
  std::mt19937_64 rng(1);
  for (int n = 0; n <= 64; ++n) {
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<int> v(static_cast<std::size_t>(n));
      for (auto& x : v) x = static_cast<int>(rng() % 100);
      std::vector<int> expect = v;
      std::sort(expect.begin(), expect.end());
      odd_even_transposition_sort(std::span<int>(v));
      EXPECT_EQ(v, expect) << "n=" << n;
    }
  }
}

TEST(OddEven, SortsRotatedBitonicArrangement) {
  // The exact shape CF-Merge feeds it: sorted A ascending and sorted B
  // descending, rotated by an arbitrary k (the register arrangement after
  // the gather).
  std::mt19937_64 rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const int e = 1 + static_cast<int>(rng() % 20);
    const int asz = static_cast<int>(rng() % (e + 1));
    std::vector<int> a(static_cast<std::size_t>(asz));
    std::vector<int> b(static_cast<std::size_t>(e - asz));
    for (auto& x : a) x = static_cast<int>(rng() % 50);
    for (auto& x : b) x = static_cast<int>(rng() % 50);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end(), std::greater<int>{});
    std::vector<int> items(static_cast<std::size_t>(e));
    const int k = static_cast<int>(rng() % e);
    for (int x = 0; x < asz; ++x)
      items[static_cast<std::size_t>((k + x) % e)] = a[static_cast<std::size_t>(x)];
    for (int y = 0; y < e - asz; ++y)
      items[static_cast<std::size_t>(((k - 1 - y) % e + e) % e)] =
          b[static_cast<std::size_t>(y)];
    std::vector<int> expect = items;
    std::sort(expect.begin(), expect.end());
    odd_even_transposition_sort(std::span<int>(items));
    EXPECT_EQ(items, expect);
  }
}

TEST(OddEven, CustomComparator) {
  std::vector<int> v{3, 1, 4, 1, 5, 9, 2, 6};
  odd_even_transposition_sort(std::span<int>(v), std::greater<int>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<int>{}));
}

TEST(OddEven, NetworkSizeFormulaMatchesExecution) {
  for (int n = 0; n <= 40; ++n) {
    std::vector<int> v(static_cast<std::size_t>(n), 0);
    const std::int64_t ces = odd_even_transposition_sort(std::span<int>(v));
    EXPECT_EQ(ces, odd_even_network_size(n)) << "n=" << n;
  }
}

TEST(OddEven, NetworkSizeKnownValues) {
  EXPECT_EQ(odd_even_network_size(0), 0);
  EXPECT_EQ(odd_even_network_size(1), 0);
  EXPECT_EQ(odd_even_network_size(2), 1);   // one phase pair... 2 phases: 1 + 0
  EXPECT_EQ(odd_even_network_size(4), 6);
  // E = 15: 8 even phases * 7 pairs + 7 odd phases * 7 pairs = 105.
  EXPECT_EQ(odd_even_network_size(15), 105);
  EXPECT_EQ(odd_even_network_size(17), 136);
}

TEST(OddEven, DataObliviousSameOperationCount) {
  // The network's cost must not depend on the data (it is what keeps the
  // register merge conflict free and branch-uniform on a GPU).
  std::mt19937_64 rng(3);
  const int n = 15;
  std::vector<std::int64_t> counts;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = static_cast<int>(rng() % 1000);
    counts.push_back(odd_even_transposition_sort(std::span<int>(v)));
  }
  for (const auto c : counts) EXPECT_EQ(c, counts.front());
}

TEST(OddEven, StableForEqualKeysNotRequiredButSorted) {
  std::vector<int> v(16, 7);
  odd_even_transposition_sort(std::span<int>(v));
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(OddEven, NetworkSortResultMatchesNetworkExactly) {
  // network_sort_result promises the element-for-element output of the
  // network without executing it; both are stable, so they must agree even
  // under a comparator that only looks at part of the key.  Pairs (key,
  // tag) compared by key alone expose any stability divergence.
  std::mt19937_64 rng(4);
  using KV = std::pair<int, int>;
  const auto by_key = [](const KV& a, const KV& b) { return a.first < b.first; };
  for (int n = 0; n <= 40; ++n) {
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<KV> net(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i)
        net[static_cast<std::size_t>(i)] = {static_cast<int>(rng() % 8), i};
      std::vector<KV> fast = net;
      odd_even_transposition_sort(std::span<KV>(net), by_key);
      cfmerge::sort::network_sort_result(std::span<KV>(fast), by_key);
      EXPECT_EQ(net, fast) << "n=" << n;
    }
  }
}
