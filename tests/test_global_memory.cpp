// Tests of the global memory coalescing model.
#include "gpusim/global_memory.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gpusim/shared_memory.hpp"  // kInactiveLane

using cfmerge::gpusim::global_access_cost;
using cfmerge::gpusim::kInactiveLane;

namespace {
std::vector<std::int64_t> byte_addrs(int lanes, std::int64_t elem_bytes, std::int64_t stride,
                                     std::int64_t base = 0) {
  std::vector<std::int64_t> a(static_cast<std::size_t>(lanes));
  for (int l = 0; l < lanes; ++l)
    a[static_cast<std::size_t>(l)] = base + l * stride * elem_bytes;
  return a;
}
}  // namespace

TEST(GlobalAccess, FullyCoalesced32x4B) {
  const auto a = byte_addrs(32, 4, 1);
  const auto c = global_access_cost(a, 4, 128);
  EXPECT_EQ(c.transactions, 1);
  EXPECT_EQ(c.bytes, 128);
  EXPECT_EQ(c.active_lanes, 32);
}

TEST(GlobalAccess, MisalignedSpillsIntoSecondSegment) {
  const auto a = byte_addrs(32, 4, 1, /*base=*/4);
  const auto c = global_access_cost(a, 4, 128);
  EXPECT_EQ(c.transactions, 2);
}

TEST(GlobalAccess, StridedWorstCase) {
  // Stride 32 elements of 4 bytes: every lane its own 128B segment.
  const auto a = byte_addrs(32, 4, 32);
  const auto c = global_access_cost(a, 4, 128);
  EXPECT_EQ(c.transactions, 32);
}

TEST(GlobalAccess, Stride2HalvesEfficiency) {
  const auto a = byte_addrs(32, 4, 2);
  const auto c = global_access_cost(a, 4, 128);
  EXPECT_EQ(c.transactions, 2);
  EXPECT_EQ(c.bytes, 128);  // only the requested elements count as bytes
}

TEST(GlobalAccess, SameSegmentDeduplicated) {
  std::vector<std::int64_t> a(32, 64);  // all lanes same address
  const auto c = global_access_cost(a, 4, 128);
  EXPECT_EQ(c.transactions, 1);
}

TEST(GlobalAccess, ElementStraddlingSegmentBoundary) {
  std::vector<std::int64_t> a{126};  // 4-byte element crossing 128B boundary
  const auto c = global_access_cost(a, 4, 128);
  EXPECT_EQ(c.transactions, 2);
}

TEST(GlobalAccess, InactiveLanes) {
  std::vector<std::int64_t> a(32, kInactiveLane);
  const auto c = global_access_cost(a, 4, 128);
  EXPECT_EQ(c.transactions, 0);
  EXPECT_EQ(c.bytes, 0);
  a[5] = 1000;
  const auto c2 = global_access_cost(a, 4, 128);
  EXPECT_EQ(c2.transactions, 1);
  EXPECT_EQ(c2.bytes, 4);
}

TEST(GlobalAccess, EightByteElements) {
  const auto a = byte_addrs(32, 8, 1);
  const auto c = global_access_cost(a, 8, 128);
  EXPECT_EQ(c.transactions, 2);  // 256 bytes of contiguous data
  EXPECT_EQ(c.bytes, 256);
}

TEST(GlobalAccess, RejectsBadArguments) {
  std::vector<std::int64_t> a(4, 0);
  EXPECT_THROW((void)global_access_cost(a, 0, 128), std::invalid_argument);
  EXPECT_THROW((void)global_access_cost(a, 4, 0), std::invalid_argument);
}
