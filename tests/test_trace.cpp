// Tests of the access tracer and the DMM trace replay.
#include "gpusim/trace.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "analysis/trace_replay.hpp"
#include "gpusim/launcher.hpp"
#include "gpusim/memory_views.hpp"
#include "sort/merge_sort.hpp"

using namespace cfmerge;
using namespace cfmerge::gpusim;

TEST(TraceSink, RecordsEventsAndAddresses) {
  TraceSink sink;
  std::vector<std::int64_t> addrs{0, 1, 2, 3};
  sink.record(7, 2, AccessKind::SharedRead, "load", addrs, 0);
  sink.record(7, 2, AccessKind::SharedWrite, "store", addrs, 3);
  ASSERT_EQ(sink.size(), 2u);
  const TraceEvent& e0 = sink.events()[0];
  EXPECT_EQ(e0.block, 7);
  EXPECT_EQ(e0.warp, 2);
  EXPECT_EQ(e0.kind, AccessKind::SharedRead);
  EXPECT_EQ(sink.phase_names()[static_cast<std::size_t>(e0.phase_id)], "load");
  const auto a = sink.addresses(e0);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[3], 3);
  EXPECT_EQ(sink.shared_conflicts(), 3);
  EXPECT_EQ(sink.shared_conflicts("store"), 3);
  EXPECT_EQ(sink.shared_conflicts("load"), 0);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(TraceSink, CsvExport) {
  TraceSink sink;
  std::vector<std::int64_t> addrs{5, -1};
  sink.record(0, 0, AccessKind::GlobalRead, "main", addrs, 1);
  std::ostringstream os;
  sink.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("global_read"), std::string::npos);
  EXPECT_NE(csv.find("5 -1"), std::string::npos);
}

TEST(Tracing, LauncherAttachesSinkToEveryBlock) {
  Launcher launcher(DeviceSpec::tiny(8));
  TraceSink sink;
  launcher.set_trace(&sink);
  launcher.launch("k", LaunchShape{3, 8, 0, 8}, [](BlockContext& ctx) {
    SharedTile<int> tile(ctx, 8);
    std::vector<std::int64_t> addrs{0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<int> vals(8, 1);
    ctx.phase("p1");
    tile.scatter(0, addrs, vals);
    tile.gather(0, addrs, vals);
  });
  EXPECT_EQ(sink.size(), 6u);  // 2 accesses x 3 blocks
  int reads = 0, writes = 0;
  for (const auto& e : sink.events()) {
    if (e.kind == AccessKind::SharedRead) ++reads;
    if (e.kind == AccessKind::SharedWrite) ++writes;
  }
  EXPECT_EQ(reads, 3);
  EXPECT_EQ(writes, 3);
  launcher.set_trace(nullptr);
  launcher.launch("k2", LaunchShape{1, 8, 0, 8}, [](BlockContext&) {});
  EXPECT_EQ(sink.size(), 6u);  // detached: no new events
}

TEST(Tracing, TraceConflictsMatchCounters) {
  // The trace's conflict totals must agree with the live counters for a
  // real kernel run.
  std::mt19937_64 rng(1);
  Launcher launcher(DeviceSpec::tiny(8));
  TraceSink sink;
  launcher.set_trace(&sink);
  sort::MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.variant = sort::Variant::Baseline;
  std::vector<int> data(16 * 5 * 4);
  for (auto& x : data) x = static_cast<int>(rng() % 1000);
  const auto report = sort::merge_sort(launcher, data, cfg);
  EXPECT_EQ(static_cast<std::uint64_t>(sink.shared_conflicts()),
            report.totals.bank_conflicts);
  EXPECT_EQ(static_cast<std::uint64_t>(sink.shared_conflicts("merge.merge")),
            report.merge_conflicts());
}

TEST(TraceReplay, DirectMapReproducesRecordedConflicts) {
  std::mt19937_64 rng(2);
  Launcher launcher(DeviceSpec::tiny(8));
  TraceSink sink;
  launcher.set_trace(&sink);
  sort::MergeConfig cfg;
  cfg.e = 6;
  cfg.u = 16;
  cfg.variant = sort::Variant::Baseline;
  std::vector<int> data(16 * 6 * 4);
  for (auto& x : data) x = static_cast<int>(rng() % 1000);
  sort::merge_sort(launcher, data, cfg);

  const auto direct = analysis::replay_shared(sink, dmm::DirectMap(8));
  EXPECT_EQ(direct.total_conflicts, sink.shared_conflicts());
}

TEST(TraceReplay, AlternativeMappingsChangeThePicture) {
  // Replaying the baseline's conflicted merge phase under skewed / hashed
  // bank mappings: the conflict profile changes (usually improves for the
  // adversarial patterns, worsens for patterns tuned to the direct map).
  std::mt19937_64 rng(3);
  Launcher launcher(DeviceSpec::tiny(8, 1));
  TraceSink sink;
  launcher.set_trace(&sink);
  sort::MergeConfig cfg;
  cfg.e = 8;  // gcd(8,8)=8: stride-8 patterns serialize fully on direct map
  cfg.u = 16;
  cfg.variant = sort::Variant::Baseline;
  std::vector<int> data(16 * 8 * 2);
  for (auto& x : data) x = static_cast<int>(rng() % 1000);
  sort::merge_sort(launcher, data, cfg);

  const auto results = analysis::replay_standard_mappings(sink, 8, "bsort.thread_sort");
  ASSERT_EQ(results.size(), 3u);
  const auto& direct = results[0];
  const auto& skew = results[1];
  EXPECT_GT(direct.total_conflicts, 0);     // stride-8 serializes on mod-8 banks
  EXPECT_LT(skew.total_conflicts, direct.total_conflicts);  // skewing fixes strides
  EXPECT_EQ(direct.mapping_overhead_ops, 0);
  EXPECT_GT(skew.mapping_overhead_ops, 0);
}

TEST(TraceReplay, PhaseFilterWorks) {
  TraceSink sink;
  std::vector<std::int64_t> strided{0, 8, 16, 24, 32, 40, 48, 56};
  sink.record(0, 0, AccessKind::SharedRead, "hot", strided, 7);
  std::vector<std::int64_t> fine{0, 1, 2, 3, 4, 5, 6, 7};
  sink.record(0, 0, AccessKind::SharedRead, "cool", fine, 0);
  const auto hot = analysis::replay_shared(sink, dmm::DirectMap(8), "hot");
  EXPECT_EQ(hot.shared_accesses, 1);
  EXPECT_EQ(hot.total_conflicts, 7);
  const auto all = analysis::replay_shared(sink, dmm::DirectMap(8));
  EXPECT_EQ(all.shared_accesses, 2);
  EXPECT_EQ(all.total_conflicts, 7);
}
