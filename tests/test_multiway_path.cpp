// Tests of the k-dimensional merge-path partitioner against a stable-merge
// oracle, plus its k = 2 agreement with the pairwise merge_path.
#include "mergepath/multiway_path.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <tuple>
#include <vector>

#include "mergepath/merge_path.hpp"

using namespace cfmerge;

namespace {

/// Oracle: sort (value, seq, index) tuples — exactly the stable order the
/// partitioner is specified against — and count per-sequence prefix members.
std::vector<std::int64_t> oracle_coranks(const std::vector<std::vector<int>>& seqs,
                                         std::int64_t diag) {
  std::vector<std::tuple<int, int, std::int64_t>> all;
  for (std::size_t s = 0; s < seqs.size(); ++s)
    for (std::size_t i = 0; i < seqs[s].size(); ++i)
      all.emplace_back(seqs[s][i], static_cast<int>(s), static_cast<std::int64_t>(i));
  std::sort(all.begin(), all.end());
  std::vector<std::int64_t> co(seqs.size(), 0);
  for (std::int64_t p = 0; p < diag; ++p)
    ++co[static_cast<std::size_t>(std::get<1>(all[static_cast<std::size_t>(p)]))];
  return co;
}

std::vector<std::vector<int>> random_seqs(std::mt19937_64& rng, int k,
                                          std::int64_t max_len, int value_range) {
  std::vector<std::vector<int>> seqs(static_cast<std::size_t>(k));
  for (auto& s : seqs) {
    const auto len = static_cast<std::int64_t>(rng() % static_cast<std::uint64_t>(max_len + 1));
    s.resize(static_cast<std::size_t>(len));
    for (auto& x : s) x = static_cast<int>(rng() % static_cast<std::uint64_t>(value_range));
    std::sort(s.begin(), s.end());
  }
  return seqs;
}

std::vector<std::span<const int>> as_spans(const std::vector<std::vector<int>>& seqs) {
  std::vector<std::span<const int>> spans;
  spans.reserve(seqs.size());
  for (const auto& s : seqs) spans.emplace_back(s);
  return spans;
}

}  // namespace

TEST(MultiwayPath, CoranksMatchStableMergeOracle) {
  std::mt19937_64 rng(0xc0ffee);
  for (const int k : {2, 3, 4, 8}) {
    for (int trial = 0; trial < 20; ++trial) {
      // Small value range forces heavy duplication across sequences; ragged
      // lengths include empty sequences.
      const auto seqs = random_seqs(rng, k, 24, 8);
      const auto spans = as_spans(seqs);
      std::int64_t total = 0;
      for (const auto& s : seqs) total += static_cast<std::int64_t>(s.size());
      for (std::int64_t diag = 0; diag <= total; ++diag) {
        const auto co = mergepath::multiway_path<int>(
            diag, std::span<const std::span<const int>>(spans));
        const auto want = oracle_coranks(seqs, diag);
        ASSERT_EQ(co, want) << "k=" << k << " trial=" << trial << " diag=" << diag;
        std::int64_t sum = 0;
        for (const auto r : co) sum += r;
        ASSERT_EQ(sum, diag);
      }
    }
  }
}

TEST(MultiwayPath, KTwoMatchesPairwiseMergePath) {
  std::mt19937_64 rng(0xbee);
  for (int trial = 0; trial < 30; ++trial) {
    const auto seqs = random_seqs(rng, 2, 40, 10);
    const auto spans = as_spans(seqs);
    const std::int64_t total =
        static_cast<std::int64_t>(seqs[0].size() + seqs[1].size());
    for (std::int64_t diag = 0; diag <= total; ++diag) {
      const auto co = mergepath::multiway_path<int>(
          diag, std::span<const std::span<const int>>(spans));
      const std::int64_t a = mergepath::merge_path(
          diag, std::span<const int>(seqs[0]), std::span<const int>(seqs[1]));
      EXPECT_EQ(co[0], a) << "diag=" << diag;
      EXPECT_EQ(co[1], diag - a);
    }
  }
}

TEST(MultiwayPath, RanksAreStrictlyIncreasingPositions) {
  std::mt19937_64 rng(0xfeed);
  const auto seqs = random_seqs(rng, 4, 16, 5);
  const auto spans = as_spans(seqs);
  std::vector<std::int64_t> sizes(seqs.size());
  for (std::size_t s = 0; s < seqs.size(); ++s)
    sizes[s] = static_cast<std::int64_t>(seqs[s].size());
  const auto get = [&](int s, std::int64_t i) {
    return spans[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)];
  };
  for (int s = 0; s < 4; ++s) {
    std::int64_t prev = -1;
    for (std::int64_t m = 0; m < sizes[static_cast<std::size_t>(s)]; ++m) {
      const std::int64_t pos = mergepath::multiway_rank<int>(
          std::span<const std::int64_t>(sizes), s, m, get, std::less<int>{});
      EXPECT_GT(pos, prev) << "s=" << s << " m=" << m;
      prev = pos;
    }
  }
}

TEST(MultiwayPath, PartitionTableIsMonotoneWithExactBorders) {
  std::mt19937_64 rng(0xabcd);
  for (const int k : {2, 4, 8}) {
    const auto seqs = random_seqs(rng, k, 50, 20);
    const auto spans = as_spans(seqs);
    std::int64_t total = 0;
    for (const auto& s : seqs) total += static_cast<std::int64_t>(s.size());
    const std::int64_t chunk = 16;
    const auto table = mergepath::multiway_partition<int>(
        std::span<const std::span<const int>>(spans), chunk);
    const std::int64_t parts = (total + chunk - 1) / chunk;
    ASSERT_EQ(table.size(), static_cast<std::size_t>((parts + 1) * k));
    for (int s = 0; s < k; ++s) {
      EXPECT_EQ(table[static_cast<std::size_t>(s)], 0);
      EXPECT_EQ(table[static_cast<std::size_t>(parts * k + s)],
                static_cast<std::int64_t>(seqs[static_cast<std::size_t>(s)].size()));
      for (std::int64_t p = 0; p < parts; ++p)
        EXPECT_LE(table[static_cast<std::size_t>(p * k + s)],
                  table[static_cast<std::size_t>((p + 1) * k + s)]);
    }
    // Each row's co-ranks sum to its diagonal.
    for (std::int64_t p = 0; p <= parts; ++p) {
      std::int64_t sum = 0;
      for (int s = 0; s < k; ++s) sum += table[static_cast<std::size_t>(p * k + s)];
      EXPECT_EQ(sum, std::min(p * chunk, total));
    }
  }
}
