// Tests of sort::segmented_sort: edge-case segment shapes, bit-identity of
// every segment against a standalone merge_sort (outputs AND per-kernel
// reports, across worker counts and both graph execution modes), and the
// overlap timing model on a many-segment workload.
#include "sort/segmented_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <tuple>

#include "sort/merge_sort.hpp"

using namespace cfmerge;
using namespace cfmerge::sort;

namespace {

std::vector<int> random_ints(std::mt19937_64& rng, std::size_t n) {
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng() % 2000000) - 1000000;
  return v;
}

MergeConfig small_cfg(Variant v = Variant::CFMerge) {
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.variant = v;
  return cfg;
}

void expect_report_eq(const gpusim::KernelReport& a, const gpusim::KernelReport& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.shape, b.shape);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.mean_block_chain, b.mean_block_chain);
  EXPECT_EQ(a.max_block_chain, b.max_block_chain);
  EXPECT_EQ(a.timing.cycles, b.timing.cycles);
  EXPECT_EQ(a.timing.microseconds, b.timing.microseconds);
}

}  // namespace

TEST(SegmentedSort, EmptySegmentList) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  std::vector<std::vector<int>> segments;
  const auto report = segmented_sort(launcher, segments, small_cfg());
  EXPECT_EQ(report.segments, 0);
  EXPECT_EQ(report.elements, 0);
  EXPECT_TRUE(report.kernels.empty());
  EXPECT_TRUE(report.per_segment.empty());
  EXPECT_EQ(report.serial_microseconds, 0.0);
  EXPECT_EQ(report.makespan_microseconds, 0.0);
  EXPECT_TRUE(launcher.history().empty());
}

TEST(SegmentedSort, ZeroLengthAndSingleElementSegments) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  std::vector<std::vector<int>> segments{{}, {42}, {}, {7, 3}, {}};
  const auto report = segmented_sort(launcher, segments, small_cfg());
  EXPECT_EQ(report.segments, 5);
  EXPECT_EQ(report.elements, 3);
  EXPECT_TRUE(segments[0].empty());
  EXPECT_EQ(segments[1], std::vector<int>{42});
  EXPECT_TRUE(segments[2].empty());
  EXPECT_EQ(segments[3], (std::vector<int>{3, 7}));
  EXPECT_TRUE(segments[4].empty());
  ASSERT_EQ(report.per_segment.size(), 5u);
  // Empty segments contribute no kernels; both tiny segments fit in one
  // tile, so each is a lone block_sort.
  EXPECT_EQ(report.per_segment[0].kernel_count, 0);
  EXPECT_EQ(report.per_segment[1].kernel_count, 1);
  EXPECT_EQ(report.per_segment[2].kernel_count, 0);
  EXPECT_EQ(report.per_segment[3].kernel_count, 1);
  EXPECT_EQ(report.per_segment[4].kernel_count, 0);
  EXPECT_EQ(report.kernels.size(), 2u);
  EXPECT_EQ(report.graph_levels, 1);
}

TEST(SegmentedSort, OneGiantManyTiny) {
  std::mt19937_64 rng(11);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  const MergeConfig cfg = small_cfg();
  std::vector<std::vector<int>> segments;
  segments.push_back(random_ints(rng, 4000));  // spans several merge passes
  for (int i = 0; i < 12; ++i)
    segments.push_back(random_ints(rng, 1 + static_cast<std::size_t>(rng() % 8)));

  std::vector<std::vector<int>> expected = segments;
  const auto report = segmented_sort(launcher, segments, cfg);

  for (std::size_t s = 0; s < segments.size(); ++s) {
    std::sort(expected[s].begin(), expected[s].end());
    EXPECT_EQ(segments[s], expected[s]) << "segment " << s;
  }
  // The giant segment dominates: its chain is the graph's critical path,
  // so the makespan equals the giant's own serial chain and every tiny
  // segment rides along for free.
  EXPECT_EQ(report.graph_levels, 1 + 2 * report.per_segment[0].passes);
  EXPECT_GT(report.per_segment[0].passes, 2);
  double giant_chain = 0.0;
  for (int k = 0; k < report.per_segment[0].kernel_count; ++k)
    giant_chain +=
        report.kernels[static_cast<std::size_t>(report.per_segment[0].first_kernel + k)]
            .timing.microseconds;
  EXPECT_DOUBLE_EQ(report.makespan_microseconds, giant_chain);
  EXPECT_LT(report.makespan_microseconds, report.serial_microseconds);
}

TEST(SegmentedSort, MakespanStrictlyBelowSerialOnEightSegments) {
  // The ISSUE acceptance workload: >= 8 independent segments, graph overlap
  // must report a strictly smaller simulated makespan than serial.
  std::mt19937_64 rng(12);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  std::vector<std::vector<int>> segments;
  for (int s = 0; s < 8; ++s)
    segments.push_back(random_ints(rng, 200 + static_cast<std::size_t>(rng() % 600)));
  const auto report = segmented_sort(launcher, segments, small_cfg());
  EXPECT_GT(report.makespan_microseconds, 0.0);
  EXPECT_LT(report.makespan_microseconds, report.serial_microseconds);
  EXPECT_GT(report.overlap_speedup(), 1.0);
  // Serial sum is what the launcher's history adds up to.
  EXPECT_DOUBLE_EQ(report.serial_microseconds, launcher.total_microseconds());
}

using SegmentedParam = std::tuple<int, gpusim::GraphExec, Variant>;

std::string segmented_param_name(const ::testing::TestParamInfo<SegmentedParam>& info) {
  const int threads = std::get<0>(info.param);
  const gpusim::GraphExec mode = std::get<1>(info.param);
  const Variant variant = std::get<2>(info.param);
  return std::string(variant == Variant::Baseline ? "base" : "cf") + "_" +
         (mode == gpusim::GraphExec::Serial ? "serial" : "overlap") + "_t" +
         std::to_string(threads);
}

class SegmentedSortBitIdentity : public ::testing::TestWithParam<SegmentedParam> {};

TEST_P(SegmentedSortBitIdentity, EverySegmentMatchesStandaloneMergeSort) {
  const auto [threads, mode, variant] = GetParam();
  const MergeConfig cfg = small_cfg(variant);
  std::mt19937_64 rng(13);

  std::vector<std::vector<int>> segments;
  segments.push_back(random_ints(rng, 900));
  segments.push_back({});
  segments.push_back(random_ints(rng, 1));
  segments.push_back(random_ints(rng, 2500));
  segments.push_back(random_ints(rng, 83));
  segments.push_back(random_ints(rng, 1200));
  const std::vector<std::vector<int>> input = segments;

  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  launcher.set_threads(threads);
  const auto report = segmented_sort(launcher, segments, cfg, mode);

  for (std::size_t s = 0; s < input.size(); ++s) {
    SCOPED_TRACE("segment " + std::to_string(s));
    // Standalone sort of the same data on a fresh launcher: the oracle.
    gpusim::Launcher solo(gpusim::DeviceSpec::tiny(8));
    std::vector<int> data = input[s];
    const SortReport ref = merge_sort(solo, data, cfg);

    EXPECT_EQ(segments[s], data);
    const auto& info = report.per_segment[s];
    EXPECT_EQ(info.n, static_cast<std::int64_t>(input[s].size()));
    EXPECT_EQ(info.passes, ref.passes);
    ASSERT_EQ(info.kernel_count, static_cast<int>(solo.history().size()));
    for (int k = 0; k < info.kernel_count; ++k)
      expect_report_eq(report.kernels[static_cast<std::size_t>(info.first_kernel + k)],
                       solo.history()[static_cast<std::size_t>(k)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsModesVariants, SegmentedSortBitIdentity,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(gpusim::GraphExec::Serial,
                                         gpusim::GraphExec::Overlap),
                       ::testing::Values(Variant::Baseline, Variant::CFMerge)),
    segmented_param_name);

TEST(SegmentedSort, ReportsIdenticalAcrossModesAndThreads) {
  // The full report (not just outputs) is bit-identical for any execution
  // policy; only host wall-clock may differ.
  std::mt19937_64 rng(14);
  std::vector<std::vector<int>> base;
  for (int s = 0; s < 5; ++s)
    base.push_back(random_ints(rng, 150 + static_cast<std::size_t>(rng() % 400)));

  auto run = [&](int threads, gpusim::GraphExec mode) {
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
    launcher.set_threads(threads);
    std::vector<std::vector<int>> segments = base;
    return segmented_sort(launcher, segments, small_cfg(), mode);
  };
  const auto ref = run(1, gpusim::GraphExec::Serial);
  for (const int threads : {1, 2, 4}) {
    for (const auto mode : {gpusim::GraphExec::Serial, gpusim::GraphExec::Overlap}) {
      const auto got = run(threads, mode);
      SCOPED_TRACE("threads=" + std::to_string(threads));
      EXPECT_EQ(got.totals, ref.totals);
      EXPECT_EQ(got.phases, ref.phases);
      EXPECT_DOUBLE_EQ(got.serial_microseconds, ref.serial_microseconds);
      EXPECT_DOUBLE_EQ(got.makespan_microseconds, ref.makespan_microseconds);
      ASSERT_EQ(got.kernels.size(), ref.kernels.size());
      for (std::size_t k = 0; k < ref.kernels.size(); ++k)
        expect_report_eq(got.kernels[k], ref.kernels[k]);
    }
  }
}

TEST(SegmentedSort, RejectsInvalidConfig) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  std::vector<std::vector<int>> segments{{3, 1, 2}};
  MergeConfig cfg = small_cfg();
  cfg.u = 12;  // not a multiple of the warp size (8)
  EXPECT_THROW(segmented_sort(launcher, segments, cfg), std::invalid_argument);
}
