// Tests of the baseline warp-synchronous sequential merge — correctness and
// its bank-conflict behaviour (the phenomenon the paper eliminates).
#include "sort/serial_merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "gpusim/launcher.hpp"
#include "mergepath/merge_path.hpp"

using namespace cfmerge;
using namespace cfmerge::sort;

namespace {

// Builds per-thread descriptors from merge path over the block's lists and
// runs the serial merge in a one-block launch.  Layout: A at [0, la),
// B at [la, la+lb).
struct Harness {
  int w, e, u;
  std::vector<int> a, b;
  std::vector<int> regs;
  gpusim::Counters counters;

  Harness(int w_, int e_, int u_, std::vector<int> a_, std::vector<int> b_)
      : w(w_), e(e_), u(u_), a(std::move(a_)), b(std::move(b_)) {
    const std::int64_t la = static_cast<std::int64_t>(a.size());
    const std::int64_t lb = static_cast<std::int64_t>(b.size());
    EXPECT_EQ(la + lb, static_cast<std::int64_t>(u) * e);
    std::vector<MergeLaneDesc> descs(static_cast<std::size_t>(u));
    std::int64_t prev = 0;
    for (int i = 0; i < u; ++i) {
      const std::int64_t next = mergepath::merge_path<int>(
          static_cast<std::int64_t>(i + 1) * e, std::span<const int>(a),
          std::span<const int>(b));
      descs[static_cast<std::size_t>(i)] = {prev, next - prev,
                                            static_cast<std::int64_t>(i) * e - prev,
                                            e - (next - prev)};
      prev = next;
    }
    regs.assign(static_cast<std::size_t>(u) * static_cast<std::size_t>(e), -1);
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(w));
    launcher.launch("serial_merge", gpusim::LaunchShape{1, u, 0, 32},
                    [&](gpusim::BlockContext& ctx) {
                      gpusim::SharedTile<int> tile(ctx,
                                                   static_cast<std::size_t>(u) * e);
                      std::copy(a.begin(), a.end(), tile.raw().begin());
                      std::copy(b.begin(), b.end(),
                                tile.raw().begin() + static_cast<std::ptrdiff_t>(la));
                      warp_serial_merge(ctx, tile, std::span<const MergeLaneDesc>(descs), e,
                                        [](std::int64_t x) { return x; },
                                        [&](std::int64_t y) { return la + y; },
                                        std::span<int>(regs));
                    });
    counters = launcher.total_counters();
  }
};

std::vector<int> sorted_random(std::mt19937_64& rng, std::size_t n) {
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng() % 10000);
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

TEST(SerialMerge, ProducesTheMergedSequence) {
  std::mt19937_64 rng(1);
  for (const auto& [w, e, warps] :
       std::vector<std::tuple<int, int, int>>{{8, 5, 1}, {8, 4, 2}, {16, 7, 2}, {32, 15, 1}}) {
    const int u = w * warps;
    const std::int64_t total = static_cast<std::int64_t>(u) * e;
    const std::int64_t la = static_cast<std::int64_t>(rng() % (total + 1));
    Harness h(w, e, u, sorted_random(rng, static_cast<std::size_t>(la)),
              sorted_random(rng, static_cast<std::size_t>(total - la)));
    std::vector<int> expect;
    std::merge(h.a.begin(), h.a.end(), h.b.begin(), h.b.end(), std::back_inserter(expect));
    EXPECT_EQ(h.regs, expect) << "w=" << w << " e=" << e;
  }
}

TEST(SerialMerge, HandlesAllFromOneList) {
  const int w = 8, e = 4, u = 8;
  std::vector<int> a(32);
  std::iota(a.begin(), a.end(), 0);
  Harness h(w, e, u, a, {});
  EXPECT_EQ(h.regs, a);
  Harness h2(w, e, u, {}, a);
  EXPECT_EQ(h2.regs, a);
}

TEST(SerialMerge, DuplicateValuesMergeStably) {
  const int w = 4, e = 4, u = 4;
  const std::vector<int> a{5, 5, 5, 5, 5, 5, 5, 5};
  const std::vector<int> b{5, 5, 5, 5, 5, 5, 5, 5};
  Harness h(w, e, u, a, b);
  EXPECT_TRUE(std::is_sorted(h.regs.begin(), h.regs.end()));
  EXPECT_EQ(h.regs.size(), 16u);
}

TEST(SerialMerge, ReadsEachElementExactlyOnce) {
  // Total shared reads = elements (each element fetched once: preloads plus
  // per-step fetches).
  std::mt19937_64 rng(2);
  const int w = 8, e = 6, u = 16;
  const std::int64_t total = static_cast<std::int64_t>(u) * e;
  const std::int64_t la = total / 2;
  Harness h(w, e, u, sorted_random(rng, static_cast<std::size_t>(la)),
            sorted_random(rng, static_cast<std::size_t>(total - la)));
  // Accesses: per warp, 2 preloads plus up to E step-fetch accesses (a step
  // in which every lane consumed its final element issues no access).
  EXPECT_GE(h.counters.shared_accesses, static_cast<std::uint64_t>((u / w) * e));
  EXPECT_LE(h.counters.shared_accesses, static_cast<std::uint64_t>((u / w) * (2 + e)));
}

TEST(SerialMerge, InterleavedInputCausesNoExtraConflictsWhenStridesCoprime) {
  // A perfectly alternating merge: every thread consumes alternately; the
  // stride-E layout with gcd(w, E) = 1 keeps per-step addresses spread.
  const int w = 8, e = 5, u = 8;
  std::vector<int> a(20), b(20);
  for (int i = 0; i < 20; ++i) {
    a[static_cast<std::size_t>(i)] = 2 * i;      // evens
    b[static_cast<std::size_t>(i)] = 2 * i + 1;  // odds
  }
  Harness h(w, e, u, a, b);
  std::vector<int> expect(40);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(h.regs, expect);
}

TEST(SerialMerge, AlignedScansConflict) {
  // Hand-built adversarial case: every thread takes all E from A, and the
  // threads' A-subsequences start w apart => same bank every step => full
  // serialization (the mechanism of the paper's Section 4).
  const int w = 8, e = 8, u = 8;  // thread i's A_i = [8i, 8i+8): bank = 8i mod 8 = 0
  std::vector<int> a(64);
  std::iota(a.begin(), a.end(), 0);
  Harness h(w, e, u, a, {});
  // Preload A: addresses {0, 8, .., 56} all bank 0 -> 7 conflicts; each of
  // the E-1 remaining fetch steps repeats that (last step has no fetch).
  EXPECT_GE(h.counters.bank_conflicts, static_cast<std::uint64_t>((e - 1) * (w - 1)));
  EXPECT_EQ(h.regs.size(), 64u);
  EXPECT_TRUE(std::is_sorted(h.regs.begin(), h.regs.end()));
}
