// Tests of the workload generators.
#include "workloads/generators.hpp"

#include "gpusim/launcher.hpp"
#include "sort/merge_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace cfmerge;
using namespace cfmerge::workloads;

TEST(Workloads, SizesAndDeterminism) {
  for (const Distribution d :
       {Distribution::UniformRandom, Distribution::Sorted, Distribution::Reverse,
        Distribution::NearlySorted, Distribution::FewDistinct, Distribution::Sawtooth}) {
    WorkloadSpec spec;
    spec.dist = d;
    spec.n = 1000;
    spec.seed = 7;
    const auto v1 = generate(spec);
    const auto v2 = generate(spec);
    EXPECT_EQ(v1.size(), 1000u) << distribution_name(d);
    EXPECT_EQ(v1, v2) << distribution_name(d) << " must be deterministic per seed";
  }
}

TEST(Workloads, SeedChangesRandomOutput) {
  WorkloadSpec spec;
  spec.dist = Distribution::UniformRandom;
  spec.n = 1000;
  spec.seed = 1;
  const auto v1 = generate(spec);
  spec.seed = 2;
  const auto v2 = generate(spec);
  EXPECT_NE(v1, v2);
}

TEST(Workloads, SortedIsSortedReverseIsReverse) {
  WorkloadSpec spec;
  spec.n = 500;
  spec.dist = Distribution::Sorted;
  const auto s = generate(spec);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  spec.dist = Distribution::Reverse;
  const auto r = generate(spec);
  EXPECT_TRUE(std::is_sorted(r.rbegin(), r.rend()));
}

TEST(Workloads, NearlySortedIsAlmostSorted) {
  WorkloadSpec spec;
  spec.dist = Distribution::NearlySorted;
  spec.n = 10000;
  const auto v = generate(spec);
  std::int64_t inversions_adjacent = 0;
  for (std::size_t i = 0; i + 1 < v.size(); ++i)
    if (v[i] > v[i + 1]) ++inversions_adjacent;
  EXPECT_GT(inversions_adjacent, 0);
  EXPECT_LT(inversions_adjacent, 400);  // ~1% swaps
}

TEST(Workloads, FewDistinctHasFewValues) {
  WorkloadSpec spec;
  spec.dist = Distribution::FewDistinct;
  spec.n = 5000;
  const auto v = generate(spec);
  const std::set<std::int32_t> uniq(v.begin(), v.end());
  EXPECT_LE(uniq.size(), 16u);
}

TEST(Workloads, WorstCaseDelegatesToBuilder) {
  WorkloadSpec spec;
  spec.dist = Distribution::WorstCase;
  spec.w = 8;
  spec.e = 5;
  spec.u = 16;
  spec.n = 16 * 5 * 4;
  const auto v = generate(spec);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  for (std::size_t i = 0; i < copy.size(); ++i)
    ASSERT_EQ(copy[i], static_cast<std::int32_t>(i));
}

TEST(Workloads, NamesAreDistinct) {
  std::set<std::string> names;
  for (const auto d : all_distributions()) names.insert(distribution_name(d));
  EXPECT_EQ(names.size(), all_distributions().size());
}

TEST(Workloads, RejectsNegativeN) {
  WorkloadSpec spec;
  spec.n = -1;
  EXPECT_THROW((void)generate(spec), std::invalid_argument);
}

TEST(Workloads, EmptyInput) {
  WorkloadSpec spec;
  spec.n = 0;
  EXPECT_TRUE(generate(spec).empty());
}

TEST(Workloads, EveryDistributionSortsEndToEnd) {
  // Each generator feeds the full pipeline (both variants) without tripping
  // any invariant.
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  sort::MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  for (const auto d : all_distributions()) {
    WorkloadSpec spec;
    spec.dist = d;
    spec.w = 8;
    spec.e = 5;
    spec.u = 16;
    spec.n = 16 * 5 * 4;  // valid shape for the worst-case builder too
    auto data = generate(spec);
    for (const auto v : {sort::Variant::Baseline, sort::Variant::CFMerge}) {
      cfg.variant = v;
      auto copy = data;
      auto expect = data;
      std::sort(expect.begin(), expect.end());
      const auto report = sort::merge_sort(launcher, copy, cfg);
      EXPECT_EQ(copy, expect) << distribution_name(d);
      if (v == sort::Variant::CFMerge) {
        EXPECT_EQ(report.merge_conflicts(), 0u) << distribution_name(d);
      }
    }
  }
}
