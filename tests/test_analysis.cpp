// Tests of the analysis utilities: tables, plots, profiles, sweeps.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/experiment.hpp"
#include "analysis/plot.hpp"
#include "analysis/profile.hpp"
#include "analysis/table.hpp"

using namespace cfmerge;
using namespace cfmerge::analysis;

TEST(TableTest, AlignsAndPrints) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"longer-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, CsvOutput) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::integer(123456), "123456");
}

TEST(PlotTest, RendersSeries) {
  AsciiPlot plot("throughput", "n", "elem/us", 40, 10);
  plot.set_log_x(true);
  plot.add_series({"thrust", 'T', {1024, 2048, 4096}, {10, 20, 30}});
  plot.add_series({"cf", 'C', {1024, 2048, 4096}, {12, 22, 33}});
  std::ostringstream os;
  plot.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find('T'), std::string::npos);
  EXPECT_NE(s.find('C'), std::string::npos);
  EXPECT_NE(s.find("thrust"), std::string::npos);
}

TEST(PlotTest, EmptyPlotDoesNotCrash) {
  AsciiPlot plot("empty", "x", "y");
  std::ostringstream os;
  plot.print(os);
  EXPECT_NE(os.str().find("no data"), std::string::npos);
}

TEST(SweepConfigTest, ParsesArgs) {
  const char* argv[] = {"prog", "--imin=5", "--imax=9", "--reps=2", "--seed=123",
                        "--unknown=1"};
  const auto cfg = SweepConfig::from_args(6, const_cast<char**>(argv));
  EXPECT_EQ(cfg.imin, 5);
  EXPECT_EQ(cfg.imax, 9);
  EXPECT_EQ(cfg.reps, 2);
  EXPECT_EQ(cfg.seed, 123u);
}

TEST(SweepConfigTest, SizesArePow2TimesE) {
  SweepConfig cfg;
  cfg.imin = 4;
  cfg.imax = 6;
  const auto sizes = cfg.sizes(15);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 16 * 15);
  EXPECT_EQ(sizes[2], 64 * 15);
}

TEST(SweepConfigTest, RejectsBadBounds) {
  const char* argv[] = {"prog", "--imin=9", "--imax=5"};
  EXPECT_THROW((void)SweepConfig::from_args(3, const_cast<char**>(argv)),
               std::invalid_argument);
}

TEST(RunSortPoint, ProducesConsistentMetrics) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  workloads::WorkloadSpec spec;
  spec.dist = workloads::Distribution::UniformRandom;
  spec.n = 16 * 5 * 8;
  sort::MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.variant = sort::Variant::CFMerge;
  const SortPoint point = run_sort_point(launcher, spec, cfg, 2);
  EXPECT_EQ(point.n, spec.n);
  EXPECT_GT(point.microseconds, 0.0);
  EXPECT_NEAR(point.throughput, point.n / point.microseconds, 1e-9);
  EXPECT_EQ(point.merge_conflicts, 0u);
  EXPECT_EQ(point.passes, 3);
}

TEST(RunSortPoint, WorstCaseCollapsesReps) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  workloads::WorkloadSpec spec;
  spec.dist = workloads::Distribution::WorstCase;
  spec.w = 8;
  spec.e = 5;
  spec.u = 16;
  spec.n = 16 * 5 * 4;
  sort::MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.variant = sort::Variant::Baseline;
  const SortPoint p1 = run_sort_point(launcher, spec, cfg, 1);
  const SortPoint p5 = run_sort_point(launcher, spec, cfg, 5);
  EXPECT_DOUBLE_EQ(p1.microseconds, p5.microseconds);
}

TEST(Profile, PhaseProfilePrints) {
  gpusim::PhaseCounters phases;
  auto& c = phases.phase("merge.merge");
  c.shared_accesses = 100;
  c.bank_conflicts = 50;
  c.shared_cycles = 150;
  std::ostringstream os;
  print_phase_profile(os, phases, 1000);
  EXPECT_NE(os.str().find("merge.merge"), std::string::npos);
  EXPECT_NE(os.str().find("0.500"), std::string::npos);
}

TEST(Profile, SummaryMentionsConflicts) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  sort::MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  std::vector<int> data(16 * 5 * 2);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<int>((i * 2654435761u) % 1000);
  const auto report = sort::merge_sort(launcher, data, cfg);
  const std::string s = summarize(report, "test");
  EXPECT_NE(s.find("test:"), std::string::npos);
  EXPECT_NE(s.find("throughput"), std::string::npos);
}
