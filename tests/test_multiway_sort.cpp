// End-to-end tests of the k-way multiway mergesort: std::sort oracle over
// both merge variants, pass-count arithmetic, key-value payloads, and
// bit-identical replay across host worker counts and graph-execution modes.
#include "sort/multiway_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <vector>

#include "sort/engine.hpp"
#include "sort/merge_sort.hpp"

using namespace cfmerge;
using namespace cfmerge::sort;
using gpusim::DeviceSpec;
using gpusim::GraphExec;
using gpusim::Launcher;

namespace {

std::vector<int> rand_vec(std::mt19937_64& rng, std::int64_t n, int range = 1000000) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (auto& x : v)
    x = static_cast<int>(rng() % static_cast<std::uint64_t>(range)) - range / 2;
  return v;
}

int expected_passes(std::int64_t n, std::int64_t tile, int k) {
  const std::int64_t n_padded = (n + tile - 1) / tile * tile;
  int passes = 0;
  for (std::int64_t run = tile; run < n_padded; run *= k) ++passes;
  return passes;
}

}  // namespace

struct MultiwayCase {
  int w, e, u, k;
  std::int64_t n;
  MultiwayVariant variant;
};

class MultiwaySortCases : public ::testing::TestWithParam<MultiwayCase> {};

TEST_P(MultiwaySortCases, SortsCorrectly) {
  const MultiwayCase c = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(c.n) * 131 + c.e * 7 + c.k);
  std::vector<int> data = rand_vec(rng, c.n);
  std::vector<int> expect = data;
  std::sort(expect.begin(), expect.end());

  Launcher launcher(DeviceSpec::tiny(c.w));
  MultiwayConfig cfg;
  cfg.e = c.e;
  cfg.u = c.u;
  cfg.k = c.k;
  cfg.variant = c.variant;
  const SortReport report = merge_sort_multiway(launcher, data, cfg);
  ASSERT_EQ(data, expect);
  EXPECT_EQ(report.n, c.n);
  EXPECT_EQ(report.passes, expected_passes(c.n, cfg.tile(), c.k));
  EXPECT_GT(report.microseconds, 0.0);
}

namespace {
std::vector<MultiwayCase> multiway_cases() {
  std::vector<MultiwayCase> cases;
  for (const MultiwayVariant v :
       {MultiwayVariant::CFCascade, MultiwayVariant::LoserTree}) {
    for (const int k : {2, 4, 8}) {
      // Multiple of one tile; enough tiles for >= 2 global passes at k = 8.
      cases.push_back({8, 5, 16, k, 16 * 5 * 64, v});
      // Ragged n (padding path), non-coprime E.
      cases.push_back({8, 6, 16, k, 16 * 6 * 9 + 13, v});
      // Single tile: no merge pass at all.
      cases.push_back({8, 5, 16, k, 16 * 5, v});
      // Tiny n (one partial tile).
      cases.push_back({8, 5, 16, k, 7, v});
    }
    // w = 32 with a paper-like E, scaled down.
    cases.push_back({32, 15, 64, 4, 64 * 15 * 16, v});
  }
  // Non-power-of-two arity is LoserTree-only.
  cases.push_back({8, 5, 16, 3, 16 * 5 * 27 + 5, MultiwayVariant::LoserTree});
  return cases;
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultiwaySortCases, ::testing::ValuesIn(multiway_cases()),
    [](const ::testing::TestParamInfo<MultiwayCase>& info) {
      const auto& c = info.param;
      return std::string(c.variant == MultiwayVariant::CFCascade ? "cascade" : "loser") +
             "_w" + std::to_string(c.w) + "_E" + std::to_string(c.e) + "_k" +
             std::to_string(c.k) + "_n" + std::to_string(c.n);
    });

TEST(MultiwaySort, HeavyDuplicatesSortCorrectly) {
  std::mt19937_64 rng(77);
  for (const MultiwayVariant v :
       {MultiwayVariant::CFCascade, MultiwayVariant::LoserTree}) {
    std::vector<int> data = rand_vec(rng, 16 * 5 * 32 + 9, /*range=*/7);
    std::vector<int> expect = data;
    std::sort(expect.begin(), expect.end());
    Launcher launcher(DeviceSpec::tiny(8));
    MultiwayConfig cfg;
    cfg.e = 5;
    cfg.u = 16;
    cfg.k = 4;
    cfg.variant = v;
    merge_sort_multiway(launcher, data, cfg);
    EXPECT_EQ(data, expect);
  }
}

TEST(MultiwaySort, CascadeMergePhaseIsConflictFreeLoserTreeIsNot) {
  std::mt19937_64 rng(99);
  std::vector<int> input = rand_vec(rng, 16 * 5 * 64);

  auto run = [&](MultiwayVariant v) {
    std::vector<int> data = input;
    Launcher launcher(DeviceSpec::tiny(8));
    MultiwayConfig cfg;
    cfg.e = 5;
    cfg.u = 16;
    cfg.k = 4;
    cfg.variant = v;
    return merge_sort_multiway(launcher, data, cfg);
  };
  const SortReport cascade = run(MultiwayVariant::CFCascade);
  const SortReport loser = run(MultiwayVariant::LoserTree);

  // The cascade's loads, gather rounds and rank scatters are the proven CF
  // schedule: zero conflicts outside the (data-dependent, both-variant)
  // merge.search co-rank probes.  The loser tree's data-dependent head
  // replacement gathers conflict — that is the point of the baseline.
  auto phase_conflicts = [](const SortReport& r, const char* name) {
    std::uint64_t sum = 0;
    for (const auto& [phase, counters] : r.phases.phases())
      if (phase == name) sum += counters.bank_conflicts;
    return sum;
  };
  EXPECT_EQ(phase_conflicts(cascade, "merge.load"), 0u);
  EXPECT_EQ(phase_conflicts(cascade, "merge.merge"), 0u);
  EXPECT_EQ(phase_conflicts(cascade, "merge.store"), 0u);
  EXPECT_GT(phase_conflicts(loser, "merge.merge"), 0u);
}

TEST(MultiwaySort, MatchesPairwiseSortOutputBitIdentically) {
  std::mt19937_64 rng(123);
  std::vector<int> input = rand_vec(rng, 16 * 5 * 32 + 3);

  std::vector<int> pairwise = input;
  {
    Launcher launcher(DeviceSpec::tiny(8));
    MergeConfig cfg;
    cfg.e = 5;
    cfg.u = 16;
    cfg.variant = Variant::CFMerge;
    merge_sort(launcher, pairwise, cfg);
  }
  for (const int k : {2, 4, 8}) {
    std::vector<int> data = input;
    Launcher launcher(DeviceSpec::tiny(8));
    MultiwayConfig cfg;
    cfg.e = 5;
    cfg.u = 16;
    cfg.k = k;
    merge_sort_multiway(launcher, data, cfg);
    EXPECT_EQ(data, pairwise) << "k=" << k;
  }
}

TEST(MultiwaySort, KeyValuePayloadsFollowTheirKeys) {
  std::mt19937_64 rng(31);
  const std::int64_t n = 16 * 5 * 24 + 11;
  // Distinct keys give a unique sorted order for the payload check (and stay
  // clear of the numeric-limits padding sentinel).
  std::vector<int> keys(static_cast<std::size_t>(n));
  std::iota(keys.begin(), keys.end(), -1000);
  std::shuffle(keys.begin(), keys.end(), rng);
  std::vector<long long> values(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    values[i] = static_cast<long long>(keys[i]) * 3 + 1;

  for (const MultiwayVariant v :
       {MultiwayVariant::CFCascade, MultiwayVariant::LoserTree}) {
    auto k2 = keys;
    auto v2 = values;
    Launcher launcher(DeviceSpec::tiny(8));
    MultiwayConfig cfg;
    cfg.e = 5;
    cfg.u = 16;
    cfg.k = 4;
    cfg.variant = v;
    merge_sort_multiway_by_key(launcher, k2, v2, cfg);
    EXPECT_TRUE(std::is_sorted(k2.begin(), k2.end()));
    for (std::size_t i = 0; i < k2.size(); ++i)
      ASSERT_EQ(v2[i], static_cast<long long>(k2[i]) * 3 + 1) << "i=" << i;
  }
}

TEST(MultiwaySort, BitIdenticalAcrossThreadCountsAndExecModes) {
  std::mt19937_64 rng(55);
  const std::vector<int> input = rand_vec(rng, 16 * 5 * 16 + 7);

  Launcher ref_launcher(DeviceSpec::tiny(8));
  ref_launcher.set_threads(1);
  SortEngine ref_engine(ref_launcher);
  MultiwayConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.k = 4;
  auto ref_data = input;
  const SortReport ref = ref_engine.sort_multiway(ref_data, cfg);
  EXPECT_TRUE(std::is_sorted(ref_data.begin(), ref_data.end()));

  for (const GraphExec mode : {GraphExec::Serial, GraphExec::Overlap}) {
    for (const int threads : {1, 2, 4}) {
      SCOPED_TRACE((mode == GraphExec::Serial ? "serial" : "overlap") +
                   std::string(" threads=") + std::to_string(threads));
      Launcher launcher(DeviceSpec::tiny(8));
      launcher.set_threads(threads);
      SortEngine engine(launcher);
      auto cold = input;
      const SortReport cold_rep = engine.sort_multiway(cold, cfg, mode);
      auto warm = input;
      const SortReport warm_rep = engine.sort_multiway(warm, cfg, mode);  // replay
      EXPECT_EQ(engine.stats().plan_hits, 1u);
      EXPECT_EQ(cold, ref_data);
      EXPECT_EQ(warm, ref_data);
      for (const SortReport* rep : {&cold_rep, &warm_rep}) {
        EXPECT_EQ(rep->passes, ref.passes);
        EXPECT_EQ(rep->totals.bank_conflicts, ref.totals.bank_conflicts);
        EXPECT_EQ(rep->totals.shared_accesses, ref.totals.shared_accesses);
        EXPECT_EQ(rep->totals.warp_instructions, ref.totals.warp_instructions);
        EXPECT_DOUBLE_EQ(rep->microseconds, ref.microseconds);
      }
    }
  }
}

TEST(MultiwaySort, PlanCacheKeysDistinguishArityAndVariant) {
  std::mt19937_64 rng(88);
  const std::vector<int> input = rand_vec(rng, 16 * 5 * 8);
  Launcher launcher(DeviceSpec::tiny(8));
  SortEngine engine(launcher);
  MultiwayConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  for (const int k : {2, 4}) {
    for (const MultiwayVariant v :
         {MultiwayVariant::CFCascade, MultiwayVariant::LoserTree}) {
      cfg.k = k;
      cfg.variant = v;
      auto data = input;
      engine.sort_multiway(data, cfg);
      EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
    }
  }
  // Four distinct (k, variant) digests: all cold builds, no false hits.
  EXPECT_EQ(engine.stats().plan_hits, 0u);
  EXPECT_EQ(engine.stats().plan_misses, 4u);
}

TEST(MultiwaySort, EmptySingletonAndInvalidConfigs) {
  Launcher launcher(DeviceSpec::tiny(8));
  MultiwayConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.k = 4;
  std::vector<int> empty;
  EXPECT_EQ(merge_sort_multiway(launcher, empty, cfg).n, 0);
  std::vector<int> one{42};
  merge_sort_multiway(launcher, one, cfg);
  EXPECT_EQ(one, std::vector<int>{42});

  std::vector<int> data{3, 1, 2};
  MultiwayConfig bad = cfg;
  bad.k = 3;  // CFCascade needs a power of two
  EXPECT_THROW((void)merge_sort_multiway(launcher, data, bad), std::invalid_argument);
  bad = cfg;
  bad.k = 1;
  EXPECT_THROW((void)merge_sort_multiway(launcher, data, bad), std::invalid_argument);
  bad = cfg;
  bad.k = 32;  // > kMaxMultiwayK
  EXPECT_THROW((void)merge_sort_multiway(launcher, data, bad), std::invalid_argument);
  bad = cfg;
  bad.u = 12;  // not a warp multiple
  EXPECT_THROW((void)merge_sort_multiway(launcher, data, bad), std::invalid_argument);
}
