// Tests of the block sort kernel (the blocksort stage shared by both
// variants).
#include "sort/block_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

using namespace cfmerge;
using namespace cfmerge::sort;

namespace {
std::vector<int> run_block_sort(int w, int e, int u, std::vector<int> data,
                                gpusim::Counters* out_counters = nullptr) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(w));
  const std::int64_t tile = static_cast<std::int64_t>(u) * e;
  EXPECT_EQ(static_cast<std::int64_t>(data.size()) % tile, 0);
  const int blocks = static_cast<int>(static_cast<std::int64_t>(data.size()) / tile);
  launcher.launch("block_sort", gpusim::LaunchShape{blocks, u, 0, 32},
                  [&](gpusim::BlockContext& ctx) {
                    block_sort_body<int>(ctx, std::span<int>(data), e);
                  });
  if (out_counters) *out_counters = launcher.total_counters();
  return data;
}
}  // namespace

TEST(BlockSort, SortsSingleTile) {
  std::mt19937_64 rng(1);
  for (const auto& [w, e, u] :
       std::vector<std::tuple<int, int, int>>{{4, 3, 8}, {8, 5, 16}, {8, 6, 32}, {16, 7, 32}}) {
    std::vector<int> data(static_cast<std::size_t>(u) * static_cast<std::size_t>(e));
    for (auto& x : data) x = static_cast<int>(rng() % 1000);
    const std::vector<int> sorted_ref = [&] {
      auto v = data;
      std::sort(v.begin(), v.end());
      return v;
    }();
    const auto out = run_block_sort(w, e, u, data);
    EXPECT_EQ(out, sorted_ref) << "w=" << w << " e=" << e << " u=" << u;
  }
}

TEST(BlockSort, SortsEachTileIndependently) {
  std::mt19937_64 rng(2);
  const int w = 8, e = 5, u = 16, blocks = 4;
  const std::int64_t tile = static_cast<std::int64_t>(u) * e;
  std::vector<int> data(static_cast<std::size_t>(tile) * blocks);
  for (auto& x : data) x = static_cast<int>(rng() % 1000);
  const std::vector<int> orig = data;
  const auto out = run_block_sort(w, e, u, data);
  for (int b = 0; b < blocks; ++b) {
    std::vector<int> expect(orig.begin() + static_cast<std::ptrdiff_t>(b * tile),
                            orig.begin() + static_cast<std::ptrdiff_t>((b + 1) * tile));
    std::sort(expect.begin(), expect.end());
    const std::vector<int> got(out.begin() + static_cast<std::ptrdiff_t>(b * tile),
                               out.begin() + static_cast<std::ptrdiff_t>((b + 1) * tile));
    EXPECT_EQ(got, expect) << "tile " << b;
  }
}

TEST(BlockSort, AlreadySortedAndReverse) {
  const int w = 8, e = 4, u = 16;
  std::vector<int> data(static_cast<std::size_t>(u) * e);
  std::iota(data.begin(), data.end(), 0);
  const auto sorted_out = run_block_sort(w, e, u, data);
  EXPECT_TRUE(std::is_sorted(sorted_out.begin(), sorted_out.end()));
  std::reverse(data.begin(), data.end());
  const auto out = run_block_sort(w, e, u, data);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(BlockSort, DuplicateHeavyInput) {
  std::mt19937_64 rng(3);
  const int w = 8, e = 6, u = 16;
  std::vector<int> data(static_cast<std::size_t>(u) * e);
  for (auto& x : data) x = static_cast<int>(rng() % 4);
  const auto out = run_block_sort(w, e, u, data);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(BlockSort, RequiresPowerOfTwoThreads) {
  std::vector<int> data(12 * 4);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(4));
  EXPECT_THROW(
      launcher.launch("block_sort", gpusim::LaunchShape{1, 12, 0, 32},
                      [&](gpusim::BlockContext& ctx) {
                        block_sort_body<int>(ctx, std::span<int>(data), 4);
                      }),
      std::invalid_argument);
}

TEST(BlockSort, StrideECoprimalityGovernsThreadSortConflicts) {
  // With gcd(w, E) = 1 the stride-E register load/store is conflict free;
  // with gcd > 1 it conflicts — the classic heuristic the paper discusses.
  std::mt19937_64 rng(4);
  auto conflicts_in = [&](int e) {
    const int w = 8, u = 16;
    std::vector<int> data(static_cast<std::size_t>(u) * static_cast<std::size_t>(e));
    for (auto& x : data) x = static_cast<int>(rng() % 1000);
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(w));
    launcher.launch("block_sort", gpusim::LaunchShape{1, u, 0, 32},
                    [&](gpusim::BlockContext& ctx) {
                      block_sort_body<int>(ctx, std::span<int>(data), e);
                    });
    std::uint64_t thread_sort_conflicts = 0;
    const gpusim::PhaseCounters phases = launcher.phase_counters();
    for (const auto& [name, c] : phases.phases())
      if (name == "bsort.thread_sort") thread_sort_conflicts = c.bank_conflicts;
    return thread_sort_conflicts;
  };
  EXPECT_EQ(conflicts_in(5), 0u);  // gcd(8,5)=1
  EXPECT_GT(conflicts_in(6), 0u);  // gcd(8,6)=2
  EXPECT_GT(conflicts_in(8), 0u);  // gcd(8,8)=8
}

TEST(BlockSort, CountsAllPhases) {
  const int w = 8, e = 5, u = 16;
  std::vector<int> data(static_cast<std::size_t>(u) * e, 1);
  gpusim::Counters c;
  run_block_sort(w, e, u, data, &c);
  EXPECT_GT(c.shared_accesses, 0u);
  EXPECT_GT(c.gmem_transactions, 0u);
  EXPECT_GT(c.warp_instructions, 0u);
  EXPECT_GT(c.barriers, 0u);
}
