// Golden-counter pins for the sort pipelines that execute through the
// cfprims layer.  These six rows were captured from the pre-refactor
// open-coded kernels (commit 9241575, DeviceSpec::tiny(8,2), uniform
// workload, seed 42); re-pointing merge_pass / multiway_pass / block_sort /
// dual_gather onto cfprims::exec_* must keep every counter bit-identical.
//
// Timing (microseconds) is deliberately NOT pinned — it derives from the
// counters, and pinning integers keeps the test immune to float printing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gpusim/launcher.hpp"
#include "sort/engine.hpp"
#include "workloads/generators.hpp"

using namespace cfmerge;

namespace {

/// One pinned pipeline run: the counter totals of the full report plus the
/// merge-phase conflict count (zero for every CF configuration).
struct Golden {
  std::uint64_t warp_instructions;
  std::uint64_t shared_accesses;
  std::uint64_t shared_cycles;
  std::uint64_t bank_conflicts;
  std::uint64_t gmem_requests;
  std::uint64_t gmem_transactions;
  std::uint64_t gmem_bytes;
  std::uint64_t barriers;
  std::uint64_t merge_conflicts;
};

std::vector<std::int32_t> uniform_input(std::int64_t n) {
  workloads::WorkloadSpec spec;
  spec.dist = workloads::Distribution::UniformRandom;
  spec.n = n;
  spec.seed = 42;
  spec.w = 8;
  spec.e = 4;
  spec.u = 64;
  return workloads::generate(spec);
}

void expect_golden(const sort::SortReport& report, const Golden& want) {
  EXPECT_EQ(report.totals.warp_instructions, want.warp_instructions);
  EXPECT_EQ(report.totals.shared_accesses, want.shared_accesses);
  EXPECT_EQ(report.totals.shared_cycles, want.shared_cycles);
  EXPECT_EQ(report.totals.bank_conflicts, want.bank_conflicts);
  EXPECT_EQ(report.totals.gmem_requests, want.gmem_requests);
  EXPECT_EQ(report.totals.gmem_transactions, want.gmem_transactions);
  EXPECT_EQ(report.totals.gmem_bytes, want.gmem_bytes);
  EXPECT_EQ(report.totals.barriers, want.barriers);
  EXPECT_EQ(report.merge_conflicts(), want.merge_conflicts);
}

sort::SortReport run_pairwise(sort::Variant variant, bool cf_blocksort,
                              std::int64_t n) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8, 2));
  sort::SortEngine engine(launcher);
  sort::MergeConfig cfg;
  cfg.e = 4;
  cfg.u = 64;
  cfg.variant = variant;
  cfg.cf_blocksort = cf_blocksort;
  auto data = uniform_input(n);
  const sort::SortReport report = engine.sort(data, cfg);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  return report;
}

sort::SortReport run_multiway(int k, bool cf_blocksort, std::int64_t n) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8, 2));
  sort::SortEngine engine(launcher);
  sort::MultiwayConfig cfg;
  cfg.e = 4;
  cfg.u = 64;
  cfg.k = k;
  cfg.variant = sort::MultiwayVariant::CFCascade;
  cfg.cf_blocksort = cf_blocksort;
  auto data = uniform_input(n);
  const sort::SortReport report = engine.sort_multiway(data, cfg);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  return report;
}

}  // namespace

TEST(CfprimsGolden, PairwiseCfMerge) {
  expect_golden(run_pairwise(sort::Variant::CFMerge, false, 8192),
                {259068, 97381, 422169, 81197, 12982, 15886, 405528, 928, 0});
}

TEST(CfprimsGolden, PairwiseCfMergeCfBlocksort) {
  expect_golden(run_pairwise(sort::Variant::CFMerge, true, 8192),
                {289788, 104554, 409866, 76328, 12982, 15886, 405528, 1056, 0});
}

TEST(CfprimsGolden, PairwiseBaseline) {
  expect_golden(run_pairwise(sort::Variant::Baseline, false, 8192),
                {230908, 98655, 500379, 100431, 12982, 15886, 405528, 928, 6159});
}

TEST(CfprimsGolden, MultiwayK4) {
  expect_golden(run_multiway(4, false, 8192),
                {336754, 98268, 416596, 79582, 17788, 51790, 522260, 736, 0});
}

TEST(CfprimsGolden, MultiwayK4CfBlocksort) {
  expect_golden(run_multiway(4, true, 8192),
                {367474, 105441, 404293, 74713, 17788, 51790, 522260, 864, 0});
}

TEST(CfprimsGolden, MultiwayK8) {
  expect_golden(run_multiway(8, false, 16384),
                {1002480, 217502, 881826, 166081, 97093, 296798, 2915296, 1408, 0});
}
