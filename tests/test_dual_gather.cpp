// Tests of the simulated dual subsequence gather/scatter device routines:
// they must move the right data, and the counters must show zero bank
// conflicts for every shape.
#include "gather/dual_gather.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "gpusim/launcher.hpp"

using namespace cfmerge;
using namespace cfmerge::gather;

namespace {

struct Fixtureish {
  int w, e, u;
  std::vector<std::int64_t> a_off, a_size;
  GatherShape shape;
  std::vector<int> a_vals, b_vals;

  Fixtureish(int w_, int e_, int u_, std::uint64_t seed) : w(w_), e(e_), u(u_) {
    std::mt19937_64 rng(seed);
    std::int64_t la = 0;
    a_off.resize(static_cast<std::size_t>(u));
    a_size.resize(static_cast<std::size_t>(u));
    for (int i = 0; i < u; ++i) {
      a_off[static_cast<std::size_t>(i)] = la;
      a_size[static_cast<std::size_t>(i)] = static_cast<std::int64_t>(rng() % (e + 1));
      la += a_size[static_cast<std::size_t>(i)];
    }
    shape = GatherShape{w, e, u, la, static_cast<std::int64_t>(u) * e - la};
    a_vals.resize(static_cast<std::size_t>(la));
    b_vals.resize(static_cast<std::size_t>(shape.lb));
    std::iota(a_vals.begin(), a_vals.end(), 0);
    std::iota(b_vals.begin(), b_vals.end(), 10000);
  }

  /// Fills a SharedTile with the CF layout rho(A ∪ pi(B)).
  void fill(gpusim::SharedTile<int>& tile, const RoundSchedule& sched) const {
    for (std::int64_t x = 0; x < shape.la; ++x)
      tile.raw()[static_cast<std::size_t>(cf_position_of_a(sched.pi(), sched.rho(), x))] =
          a_vals[static_cast<std::size_t>(x)];
    for (std::int64_t y = 0; y < shape.lb; ++y)
      tile.raw()[static_cast<std::size_t>(cf_position_of_b(sched.pi(), sched.rho(), y))] =
          b_vals[static_cast<std::size_t>(y)];
  }
};

}  // namespace

TEST(DualGather, GathersCorrectDataNoConflicts) {
  for (const auto& [w, e, warps] : std::vector<std::tuple<int, int, int>>{
           {8, 5, 1}, {8, 6, 2}, {9, 6, 1}, {12, 9, 2}, {32, 15, 2}, {32, 16, 1}, {6, 4, 3}}) {
    const int u = w * warps;
    Fixtureish fx(w, e, u, static_cast<std::uint64_t>(w * 131 + e));
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(w));
    std::vector<int> regs(static_cast<std::size_t>(u) * static_cast<std::size_t>(e), -1);
    launcher.launch("gather", gpusim::LaunchShape{1, u, 0, 32},
                    [&](gpusim::BlockContext& ctx) {
                      gpusim::SharedTile<int> tile(ctx, static_cast<std::size_t>(u) * e);
                      RoundSchedule sched(fx.shape, fx.a_off, fx.a_size);
                      fx.fill(tile, sched);
                      dual_subsequence_gather(ctx, tile, sched, std::span<int>(regs));
                    });
    // Zero bank conflicts — the paper's core claim.
    EXPECT_EQ(launcher.total_counters().bank_conflicts, 0u)
        << "w=" << w << " e=" << e << " u=" << u;
    // Every thread's registers hold exactly A_i ∪ B_i.
    RoundSchedule sched(fx.shape, fx.a_off, fx.a_size);
    for (int i = 0; i < u; ++i) {
      std::vector<int> got(regs.begin() + static_cast<std::ptrdiff_t>(i) * e,
                           regs.begin() + static_cast<std::ptrdiff_t>(i + 1) * e);
      std::vector<int> expect;
      for (std::int64_t x = 0; x < sched.a_size(i); ++x)
        expect.push_back(fx.a_vals[static_cast<std::size_t>(sched.a_offset(i) + x)]);
      for (std::int64_t y = 0; y < sched.b_size(i); ++y)
        expect.push_back(fx.b_vals[static_cast<std::size_t>(sched.b_offset(i) + y)]);
      std::sort(got.begin(), got.end());
      std::sort(expect.begin(), expect.end());
      EXPECT_EQ(got, expect) << "thread " << i;
    }
  }
}

TEST(DualGather, RegisterArrangementByRound) {
  // items[j] holds the round-j element: A_i ascending from slot a_i mod E,
  // B_i descending from slot (a_i - 1) mod E.
  const int w = 8, e = 5, u = 8;
  Fixtureish fx(w, e, u, 99);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(w));
  std::vector<int> regs(static_cast<std::size_t>(u) * e, -1);
  launcher.launch("gather", gpusim::LaunchShape{1, u, 0, 32},
                  [&](gpusim::BlockContext& ctx) {
                    gpusim::SharedTile<int> tile(ctx, static_cast<std::size_t>(u) * e);
                    RoundSchedule sched(fx.shape, fx.a_off, fx.a_size);
                    fx.fill(tile, sched);
                    dual_subsequence_gather(ctx, tile, sched, std::span<int>(regs));
                  });
  RoundSchedule sched(fx.shape, fx.a_off, fx.a_size);
  for (int i = 0; i < u; ++i) {
    for (std::int64_t x = 0; x < sched.a_size(i); ++x) {
      const int slot = sched.register_slot_of_a(i, x);
      EXPECT_EQ(regs[static_cast<std::size_t>(i) * e + static_cast<std::size_t>(slot)],
                fx.a_vals[static_cast<std::size_t>(sched.a_offset(i) + x)]);
    }
    for (std::int64_t y = 0; y < sched.b_size(i); ++y) {
      const int slot = sched.register_slot_of_b(i, y);
      EXPECT_EQ(regs[static_cast<std::size_t>(i) * e + static_cast<std::size_t>(slot)],
                fx.b_vals[static_cast<std::size_t>(sched.b_offset(i) + y)]);
    }
  }
}

TEST(DualScatter, InverseOfGatherAndConflictFree) {
  for (const auto& [w, e, warps] :
       std::vector<std::tuple<int, int, int>>{{8, 6, 1}, {9, 6, 2}, {32, 15, 1}, {12, 8, 2}}) {
    const int u = w * warps;
    Fixtureish fx(w, e, u, static_cast<std::uint64_t>(w * 7 + e));
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(w));
    std::vector<int> regs(static_cast<std::size_t>(u) * e, -1);
    std::vector<int> shared_after(static_cast<std::size_t>(u) * e, -1);
    launcher.launch("roundtrip", gpusim::LaunchShape{1, u, 0, 32},
                    [&](gpusim::BlockContext& ctx) {
                      gpusim::SharedTile<int> tile(ctx, static_cast<std::size_t>(u) * e);
                      RoundSchedule sched(fx.shape, fx.a_off, fx.a_size);
                      fx.fill(tile, sched);
                      dual_subsequence_gather(ctx, tile, sched, std::span<int>(regs));
                      // Wipe, then scatter back: must reproduce the layout.
                      std::fill(tile.raw().begin(), tile.raw().end(), -7);
                      dual_subsequence_scatter(ctx, tile, sched, std::span<const int>(regs));
                      std::copy(tile.raw().begin(), tile.raw().end(), shared_after.begin());
                    });
    EXPECT_EQ(launcher.total_counters().bank_conflicts, 0u);
    // Rebuild the expected layout.
    RoundSchedule sched(fx.shape, fx.a_off, fx.a_size);
    std::vector<int> expect(static_cast<std::size_t>(u) * e, -7);
    for (std::int64_t x = 0; x < fx.shape.la; ++x)
      expect[static_cast<std::size_t>(cf_position_of_a(sched.pi(), sched.rho(), x))] =
          fx.a_vals[static_cast<std::size_t>(x)];
    for (std::int64_t y = 0; y < fx.shape.lb; ++y)
      expect[static_cast<std::size_t>(cf_position_of_b(sched.pi(), sched.rho(), y))] =
          fx.b_vals[static_cast<std::size_t>(y)];
    EXPECT_EQ(shared_after, expect) << "w=" << w << " e=" << e;
  }
}

TEST(DualGather, SharedAccessCountIsExactlyEPerWarp) {
  // E rounds, one warp-wide access each: shared_accesses == E * warps.
  const int w = 8, e = 7, u = 24;
  Fixtureish fx(w, e, u, 5);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(w));
  std::vector<int> regs(static_cast<std::size_t>(u) * e);
  launcher.launch("gather", gpusim::LaunchShape{1, u, 0, 32},
                  [&](gpusim::BlockContext& ctx) {
                    gpusim::SharedTile<int> tile(ctx, static_cast<std::size_t>(u) * e);
                    RoundSchedule sched(fx.shape, fx.a_off, fx.a_size);
                    fx.fill(tile, sched);
                    dual_subsequence_gather(ctx, tile, sched, std::span<int>(regs));
                  });
  EXPECT_EQ(launcher.total_counters().shared_accesses,
            static_cast<std::uint64_t>(e) * (u / w));
}
