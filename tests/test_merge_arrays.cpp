// Tests of the standalone pairwise merge API.
#include "sort/merge_arrays.hpp"
#include "worstcase/builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace cfmerge;
using namespace cfmerge::sort;

namespace {
std::vector<int> sorted_random(std::mt19937_64& rng, std::size_t n, int hi = 100000) {
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng() % static_cast<std::uint64_t>(hi));
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<int> reference_merge(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> out;
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}
}  // namespace

class MergeArraysBothVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(MergeArraysBothVariants, MergesArbitrarySizes) {
  std::mt19937_64 rng(1);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.variant = GetParam();
  for (const auto& [na, nb] : std::vector<std::pair<std::size_t, std::size_t>>{
           {80, 80}, {80, 0}, {0, 80}, {1, 1}, {37, 203}, {500, 11}, {160, 160}}) {
    const auto a = sorted_random(rng, na);
    const auto b = sorted_random(rng, nb);
    std::vector<int> out;
    const auto report = merge_arrays(launcher, a, b, out, cfg);
    EXPECT_EQ(out, reference_merge(a, b)) << "na=" << na << " nb=" << nb;
    EXPECT_EQ(report.na, static_cast<std::int64_t>(na));
    EXPECT_EQ(report.nb, static_cast<std::int64_t>(nb));
  }
}

TEST_P(MergeArraysBothVariants, EmptyInputs) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.variant = GetParam();
  std::vector<int> out{1, 2, 3};
  const auto report = merge_arrays(launcher, {}, {}, out, cfg);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(report.microseconds, 0.0);
}

TEST_P(MergeArraysBothVariants, HeavyDuplicates) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 6;  // non-coprime with 8
  cfg.u = 16;
  cfg.variant = GetParam();
  std::mt19937_64 rng(2);
  const auto a = sorted_random(rng, 100, 3);
  const auto b = sorted_random(rng, 150, 3);
  std::vector<int> out;
  merge_arrays(launcher, a, b, out, cfg);
  EXPECT_EQ(out, reference_merge(a, b));
}

INSTANTIATE_TEST_SUITE_P(Variants, MergeArraysBothVariants,
                         ::testing::Values(Variant::Baseline, Variant::CFMerge),
                         [](const ::testing::TestParamInfo<Variant>& info) {
                           return info.param == Variant::Baseline ? "Baseline" : "CFMerge";
                         });

TEST(MergeArrays, CFMergeConflictFreeOnWorstCaseSingleMerge) {
  // The Theorem 8 construction applied to one standalone merge.
  const worstcase::Params p{32, 15};
  const std::int64_t len = 2LL * 32 * 15 * 16;
  const worstcase::MergeInput in = worstcase::worst_case_merge_input(p, len);
  std::vector<int> a(in.a.begin(), in.a.end());
  std::vector<int> b(in.b.begin(), in.b.end());

  gpusim::Launcher launcher(gpusim::DeviceSpec::rtx2080ti());
  MergeConfig cfg;
  cfg.e = 15;
  cfg.u = 64;

  cfg.variant = Variant::Baseline;
  std::vector<int> out_base;
  const auto base = merge_arrays(launcher, a, b, out_base, cfg);
  cfg.variant = Variant::CFMerge;
  std::vector<int> out_cf;
  const auto cf = merge_arrays(launcher, a, b, out_cf, cfg);

  EXPECT_EQ(out_base, out_cf);
  EXPECT_TRUE(std::is_sorted(out_cf.begin(), out_cf.end()));
  EXPECT_EQ(cf.merge_conflicts(), 0u);
  EXPECT_GT(base.merge_conflicts(), 0u);
}

TEST(MergeArrays, ThroughputAndCountersPopulated) {
  std::mt19937_64 rng(3);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  const auto a = sorted_random(rng, 400);
  const auto b = sorted_random(rng, 400);
  std::vector<int> out;
  const auto report = merge_arrays(launcher, a, b, out, cfg);
  EXPECT_GT(report.throughput(), 0.0);
  EXPECT_GT(report.totals.shared_accesses, 0u);
  EXPECT_EQ(report.kernels.size(), 2u);  // partition + merge
}

TEST(MergeArrays, RejectsBadConfig) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 0;
  std::vector<int> out;
  EXPECT_THROW(merge_arrays<int>(launcher, {1}, {2}, out, cfg), std::invalid_argument);
}

TEST(MergeArrays, VeryUnbalancedLists) {
  std::mt19937_64 rng(4);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  const auto a = sorted_random(rng, 1000);
  const auto b = sorted_random(rng, 3);
  std::vector<int> out;
  merge_arrays(launcher, a, b, out, cfg);
  EXPECT_EQ(out, reference_merge(a, b));
}
