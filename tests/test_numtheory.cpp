// Unit and property tests for the number theory primitives (Appendix A).
#include "numtheory/numtheory.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace nt = cfmerge::numtheory;

TEST(Mod, MatchesMathematicalDefinition) {
  EXPECT_EQ(nt::mod(7, 3), 1);
  EXPECT_EQ(nt::mod(-1, 5), 4);
  EXPECT_EQ(nt::mod(-10, 5), 0);
  EXPECT_EQ(nt::mod(0, 7), 0);
  EXPECT_EQ(nt::mod(-13, 7), 1);
}

TEST(Mod, AlwaysInRange) {
  std::mt19937_64 rng(1);
  for (int t = 0; t < 1000; ++t) {
    const auto a = static_cast<std::int64_t>(rng() % 2000001) - 1000000;
    const auto m = static_cast<std::int64_t>(rng() % 97) + 1;
    const std::int64_t r = nt::mod(a, m);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, m);
    EXPECT_EQ(nt::mod(r - a, m), 0);
  }
}

TEST(Gcd, BasicValues) {
  EXPECT_EQ(nt::gcd(12, 18), 6);
  EXPECT_EQ(nt::gcd(32, 15), 1);
  EXPECT_EQ(nt::gcd(32, 17), 1);
  EXPECT_EQ(nt::gcd(32, 16), 16);
  EXPECT_EQ(nt::gcd(9, 6), 3);
  EXPECT_EQ(nt::gcd(0, 5), 5);
  EXPECT_EQ(nt::gcd(5, 0), 5);
  EXPECT_EQ(nt::gcd(0, 0), 0);
  EXPECT_EQ(nt::gcd(-12, 18), 6);
}

TEST(Gcd, MatchesStdGcd) {
  std::mt19937_64 rng(2);
  for (int t = 0; t < 1000; ++t) {
    const auto a = static_cast<std::int64_t>(rng() % 100000);
    const auto b = static_cast<std::int64_t>(rng() % 100000);
    EXPECT_EQ(nt::gcd(a, b), std::gcd(a, b));
  }
}

TEST(Lcm, Basic) {
  EXPECT_EQ(nt::lcm(4, 6), 12);
  EXPECT_EQ(nt::lcm(0, 6), 0);
  EXPECT_EQ(nt::lcm(32, 15), 480);
}

TEST(Coprime, ThrustParameterChoices) {
  // The heuristic Thrust relies on: E in {15, 17} is coprime with w = 32.
  EXPECT_TRUE(nt::coprime(32, 15));
  EXPECT_TRUE(nt::coprime(32, 17));
  EXPECT_FALSE(nt::coprime(32, 16));
  EXPECT_FALSE(nt::coprime(12, 6));
  EXPECT_TRUE(nt::coprime(12, 5));
}

TEST(ExtendedGcd, BezoutIdentityHolds) {
  std::mt19937_64 rng(3);
  for (int t = 0; t < 1000; ++t) {
    const auto a = static_cast<std::int64_t>(rng() % 10000) - 5000;
    const auto b = static_cast<std::int64_t>(rng() % 10000) - 5000;
    const nt::ExtendedGcd e = nt::extended_gcd(a, b);
    EXPECT_EQ(e.g, nt::gcd(a, b));
    EXPECT_EQ(a * e.x + b * e.y, e.g);
  }
}

TEST(ModInverse, Corollary16UniqueInverse) {
  // For gcd(n, m) = 1 the inverse exists and is unique in [0, m).
  for (std::int64_t m = 2; m <= 64; ++m) {
    for (std::int64_t a = 1; a < m; ++a) {
      if (nt::gcd(a, m) != 1) continue;
      const std::int64_t inv = nt::mod_inverse(a, m);
      EXPECT_EQ(nt::mod(a * inv, m), 1) << "a=" << a << " m=" << m;
      EXPECT_GE(inv, 0);
      EXPECT_LT(inv, m);
    }
  }
}

TEST(ModInverse, ThrowsWhenNotCoprime) {
  EXPECT_THROW((void)nt::mod_inverse(6, 12), std::invalid_argument);
  EXPECT_THROW((void)nt::mod_inverse(0, 5), std::invalid_argument);
  EXPECT_THROW((void)nt::mod_inverse(3, 0), std::invalid_argument);
}

TEST(EuclidDiv, Lemma9UniqueDecomposition) {
  std::mt19937_64 rng(4);
  for (int t = 0; t < 1000; ++t) {
    const auto a = static_cast<std::int64_t>(rng() % 200001) - 100000;
    const auto b = static_cast<std::int64_t>(rng() % 97) + 1;
    const nt::Division d = nt::euclid_div(a, b);
    EXPECT_EQ(d.q * b + d.r, a);
    EXPECT_GE(d.r, 0);
    EXPECT_LT(d.r, b);
  }
}

TEST(CompleteResidueSystem, Zm) {
  // Corollary 14: Z_m = {0..m-1} is a complete residue system.
  for (std::int64_t m = 1; m <= 40; ++m) {
    std::vector<std::int64_t> zm(static_cast<std::size_t>(m));
    std::iota(zm.begin(), zm.end(), 0);
    EXPECT_TRUE(nt::is_complete_residue_system(zm, m));
  }
}

TEST(CompleteResidueSystem, RejectsDuplicatesAndWrongSize) {
  EXPECT_FALSE(nt::is_complete_residue_system(std::vector<std::int64_t>{0, 1, 1}, 3));
  EXPECT_FALSE(nt::is_complete_residue_system(std::vector<std::int64_t>{0, 1}, 3));
  EXPECT_FALSE(nt::is_complete_residue_system(std::vector<std::int64_t>{0, 3}, 3));
  EXPECT_TRUE(nt::is_complete_residue_system(std::vector<std::int64_t>{3, 7, 11}, 3));
}

// Lemma 1: R_j = {j + kE : 0 <= k < w} is a CRS modulo w iff gcd(w, E) = 1.
TEST(Lemma1, ArithmeticProgressionIsCrsIffCoprime) {
  for (int w = 2; w <= 48; ++w) {
    for (int e = 1; e <= w; ++e) {
      for (std::int64_t j : {0, 1, 5, -3}) {
        const auto r = nt::arithmetic_residues(j, e, w);
        EXPECT_EQ(nt::is_complete_residue_system(r, w), nt::gcd(w, e) == 1)
            << "w=" << w << " E=" << e << " j=" << j;
      }
    }
  }
}

// Section 3.2: when d = gcd(w,E) > 1, every (w/d)-th element of R_j is
// congruent, so the residue profile has d residues hit w/d times each... more
// precisely w/d distinct residues, each with multiplicity d.
TEST(Section32, NonCoprimeResidueProfile) {
  const int w = 12, e = 9;  // d = 3
  const auto r = nt::arithmetic_residues(0, e, w);
  const auto profile = nt::residue_profile(r, w);
  int hit = 0;
  for (const auto c : profile) {
    if (c == 0) continue;
    EXPECT_EQ(c, 3);  // d
    ++hit;
  }
  EXPECT_EQ(hit, 4);  // w/d
}

// Corollary 3: R'_j — the union of d consecutive-index partitions
// R_{j+l mod E}^{(l)} — is a complete residue system modulo w.
TEST(Corollary3, ShiftedPartitionUnionIsCrs) {
  for (const auto& [w, e] : std::vector<std::pair<int, int>>{
           {9, 6}, {12, 9}, {12, 8}, {32, 16}, {32, 24}, {8, 6}, {16, 12}}) {
    const std::int64_t d = nt::gcd(w, e);
    ASSERT_GT(d, 1);
    const std::int64_t wd = w / d;
    for (std::int64_t j = 0; j < e; ++j) {
      std::vector<std::int64_t> r_prime;
      for (std::int64_t l = 0; l < d; ++l) {
        const std::int64_t jl = nt::mod(j + l, e);
        // R_{jl}^{(l)} = { jl + (l*w/d + k) * E : 0 <= k < w/d }
        for (std::int64_t k = 0; k < wd; ++k)
          r_prime.push_back(jl + (l * wd + k) * e);
      }
      EXPECT_TRUE(nt::is_complete_residue_system(r_prime, w))
          << "w=" << w << " E=" << e << " j=" << j;
    }
  }
}

// Lemma 2(2): within one partition R_j^{(l)}, all elements are pairwise
// non-congruent modulo w.
TEST(Lemma2, PartitionElementsDistinctModW) {
  for (const auto& [w, e] : std::vector<std::pair<int, int>>{{9, 6}, {12, 9}, {32, 24}}) {
    const std::int64_t d = nt::gcd(w, e);
    const std::int64_t wd = w / d;
    for (std::int64_t l = 0; l < d; ++l) {
      for (std::int64_t j = 0; j < e; ++j) {
        std::vector<std::int64_t> part;
        for (std::int64_t k = 0; k < wd; ++k) part.push_back(j + (l * wd + k) * e);
        const auto profile = nt::residue_profile(part, w);
        for (const auto c : profile) EXPECT_LE(c, 1);
      }
    }
  }
}

TEST(Corollary18, DividingByGcdYieldsCoprime) {
  std::mt19937_64 rng(5);
  for (int t = 0; t < 2000; ++t) {
    const auto a = static_cast<std::int64_t>(rng() % 5000) + 1;
    const auto b = static_cast<std::int64_t>(rng() % 5000) + 1;
    const std::int64_t d = nt::gcd(a, b);
    EXPECT_EQ(nt::gcd(a / d, b / d), 1);
  }
}

TEST(Corollary17, GcdShiftByQuotient) {
  // gcd(a, b) == gcd(b, a mod b) — the identity behind Lemma 17's use.
  std::mt19937_64 rng(6);
  for (int t = 0; t < 2000; ++t) {
    const auto a = static_cast<std::int64_t>(rng() % 5000) + 1;
    const auto b = static_cast<std::int64_t>(rng() % a) + 1;
    EXPECT_EQ(nt::gcd(a, b), nt::gcd(b, nt::mod(a, b)));
  }
}
