// Tests that the closed-form PRAM model matches the simulator exactly for
// CF-Merge's deterministic phases — the paper's "bank conflict free =>
// PRAM analysis" claim made executable.
#include "analysis/pram_model.hpp"

#include <gtest/gtest.h>

#include <random>

#include "gpusim/launcher.hpp"
#include "sort/merge_arrays.hpp"

using namespace cfmerge;
using namespace cfmerge::analysis;

namespace {

struct PhaseTotals {
  std::uint64_t load_shared = 0, load_gmem = 0;
  std::uint64_t merge_shared = 0;
  std::uint64_t store_shared = 0, store_gmem = 0;
  std::uint64_t search_shared = 0;
};

PhaseTotals phase_totals(const gpusim::PhaseCounters& phases) {
  PhaseTotals t;
  for (const auto& [name, c] : phases.phases()) {
    if (name == "merge.load") {
      t.load_shared = c.shared_accesses;
      t.load_gmem = c.gmem_requests;
    } else if (name == "merge.merge") {
      t.merge_shared = c.shared_accesses;
    } else if (name == "merge.store") {
      t.store_shared = c.shared_accesses;
      t.store_gmem = c.gmem_requests;
    } else if (name == "merge.search") {
      t.search_shared = c.shared_accesses;
    }
  }
  return t;
}

}  // namespace

TEST(PramModel, Validation) {
  EXPECT_THROW((void)pram_merge_kernel(8, 5, 12, 20, 40), std::invalid_argument);
  EXPECT_THROW((void)pram_merge_kernel(8, 5, 16, 10, 10), std::invalid_argument);
  EXPECT_NO_THROW((void)pram_merge_kernel(8, 5, 16, 40, 40));
}

TEST(PramModel, GatherStepsIsE) {
  EXPECT_EQ(pram_gather_steps(15), 15);
  EXPECT_EQ(pram_gather_steps(1), 1);
}

TEST(PramModel, ClosedFormCounts) {
  const auto k = pram_merge_kernel(32, 15, 512, 512LL * 15 / 2 + 3, 512LL * 15 / 2 - 3);
  // load: ceil(la/32) + ceil(lb/32).
  EXPECT_EQ(k.load_shared_accesses, (3843 + 31) / 32 + (3837 + 31) / 32);
  EXPECT_EQ(k.load_gmem_requests, k.load_shared_accesses + 1);
  EXPECT_EQ(k.gather_accesses, 15 * 16);
  EXPECT_EQ(k.output_scatter_accesses, 15 * 16);
  EXPECT_EQ(k.store_shared_accesses, 512 * 15 / 32);
  EXPECT_GT(k.search_iterations_bound, 0);
}

TEST(PramModel, SimulatorMatchesClosedFormExactly) {
  // Run one CF merge kernel through the simulator for several random splits
  // and shapes; every deterministic phase counter must equal the model.
  std::mt19937_64 rng(5);
  for (const auto& [w, e, u] :
       std::vector<std::tuple<int, int, int>>{{8, 5, 16}, {8, 6, 16}, {32, 15, 64},
                                              {32, 16, 64}, {16, 7, 32}}) {
    const std::int64_t tile = static_cast<std::int64_t>(u) * e;
    for (int trial = 0; trial < 3; ++trial) {
      const std::int64_t la = static_cast<std::int64_t>(rng() % (tile + 1));
      // One-tile merge via merge_arrays: lists padded to one run each; use
      // exact full lists so la is as chosen.
      std::vector<int> a(static_cast<std::size_t>(la));
      std::vector<int> b(static_cast<std::size_t>(tile - la));
      for (auto& x : a) x = static_cast<int>(rng() % 10000);
      for (auto& x : b) x = static_cast<int>(rng() % 10000);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());

      gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(w));
      sort::MergeConfig cfg;
      cfg.e = e;
      cfg.u = u;
      cfg.variant = sort::Variant::CFMerge;
      std::vector<int> out;
      const auto report = sort::merge_arrays(launcher, a, b, out, cfg);
      EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));

      // merge_arrays pads each list to a full run of `tile` elements, so the
      // merge kernel processes 2 blocks of the padded pair; sum the model
      // over the actual block splits recorded... simpler: the totals over
      // the whole kernel must equal the sum over blocks, and each block's
      // la_b + lb_b = tile.  load/store/gather totals depend only on the
      // per-block (la_b, lb_b) which we don't observe directly — but their
      // *sums* are la_total and lb_total per pass, and every phase formula
      // is linear except the ceil.  Check the split-independent parts:
      const auto t = phase_totals(report.phases);
      const std::int64_t blocks = 2 * ((tile + tile - 1) / tile);  // 2 runs padded
      const std::int64_t warps = u / w;
      EXPECT_EQ(t.merge_shared, static_cast<std::uint64_t>(e * warps * blocks))
          << "gather accesses, w=" << w << " e=" << e;
      EXPECT_EQ(t.store_shared,
                static_cast<std::uint64_t>((tile / w + e * warps) * blocks))
          << "output scatter + store, w=" << w << " e=" << e;
      // Load: sum of ceil(la_b/w) + ceil(lb_b/w) over blocks is between
      // tile*blocks/w (all aligned) and tile*blocks/w + blocks (one extra
      // ragged chunk per list per block).
      EXPECT_GE(t.load_shared, static_cast<std::uint64_t>(tile / w * blocks));
      EXPECT_LE(t.load_shared, static_cast<std::uint64_t>(tile / w * blocks + 2 * blocks));
      EXPECT_EQ(t.load_gmem, t.load_shared + static_cast<std::uint64_t>(blocks));
      // Search: within the lockstep upper bound.
      const auto k = pram_merge_kernel(w, e, u, tile / 2, tile - tile / 2);
      EXPECT_LE(t.search_shared,
                static_cast<std::uint64_t>(2 * k.search_iterations_bound * blocks));
    }
  }
}

TEST(PramModel, PassAggregateFormula) {
  const int w = 32, e = 15, u = 512;
  const std::int64_t per_block =
      (static_cast<std::int64_t>(u) * e) / w * 2 + 2LL * e * (u / w);
  EXPECT_EQ(pram_pass_shared_accesses(w, e, u, 7), per_block * 7);
}
