// Tests of the bank conflict model, including the paper's Figure 1 cases.
#include "gpusim/shared_memory.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "numtheory/numtheory.hpp"

using cfmerge::gpusim::kInactiveLane;
using cfmerge::gpusim::shared_access_cost;
using cfmerge::gpusim::shared_access_degrees;

namespace {
std::vector<std::int64_t> strided(int w, std::int64_t stride, std::int64_t base = 0) {
  std::vector<std::int64_t> a(static_cast<std::size_t>(w));
  for (int l = 0; l < w; ++l) a[static_cast<std::size_t>(l)] = base + l * stride;
  return a;
}
}  // namespace

TEST(SharedAccess, ContiguousIsConflictFree) {
  const auto addrs = strided(32, 1);
  const auto c = shared_access_cost(addrs, 32);
  EXPECT_EQ(c.cycles, 1);
  EXPECT_EQ(c.conflicts, 0);
  EXPECT_EQ(c.active_lanes, 32);
}

TEST(SharedAccess, SameBankFullySerializes) {
  const auto addrs = strided(32, 32);  // all in bank 0, distinct addresses
  const auto c = shared_access_cost(addrs, 32);
  EXPECT_EQ(c.cycles, 32);
  EXPECT_EQ(c.conflicts, 31);
}

TEST(SharedAccess, BroadcastIsFree) {
  // Footnote 4: multiple lanes reading the *same* address do not conflict.
  std::vector<std::int64_t> addrs(32, 7);
  const auto c = shared_access_cost(addrs, 32);
  EXPECT_EQ(c.cycles, 1);
  EXPECT_EQ(c.conflicts, 0);
}

TEST(SharedAccess, MixedBroadcastAndDistinct) {
  // 16 lanes read address 0, 16 lanes read addresses 32, 64, ... (bank 0):
  // distinct addresses in bank 0 = 1 (broadcast) + 16.
  std::vector<std::int64_t> addrs;
  for (int l = 0; l < 16; ++l) addrs.push_back(0);
  for (int l = 0; l < 16; ++l) addrs.push_back(32 * (l + 1));
  const auto c = shared_access_cost(addrs, 32);
  EXPECT_EQ(c.cycles, 17);
  EXPECT_EQ(c.conflicts, 16);
}

TEST(SharedAccess, InactiveLanesIgnored) {
  std::vector<std::int64_t> addrs(32, kInactiveLane);
  addrs[3] = 5;
  const auto c = shared_access_cost(addrs, 32);
  EXPECT_EQ(c.cycles, 1);
  EXPECT_EQ(c.conflicts, 0);
  EXPECT_EQ(c.active_lanes, 1);
}

TEST(SharedAccess, AllInactive) {
  std::vector<std::int64_t> addrs(32, kInactiveLane);
  const auto c = shared_access_cost(addrs, 32);
  EXPECT_EQ(c.cycles, 0);
  EXPECT_EQ(c.conflicts, 0);
  EXPECT_EQ(c.active_lanes, 0);
}

// Figure 1 of the paper: w = 12, stride 5 (coprime) is conflict free; stride
// 6 (gcd 6) serializes 6-fold (12/gcd = 2 banks, 6 addresses each).
TEST(Figure1, StrideCoprimeVsNonCoprime) {
  const auto free = shared_access_cost(strided(12, 5), 12);
  EXPECT_EQ(free.conflicts, 0);
  const auto bad = shared_access_cost(strided(12, 6), 12);
  EXPECT_EQ(bad.cycles, 6);
  EXPECT_EQ(bad.conflicts, 5);
}

// Property: for stride s, the serialization degree equals gcd(w, s) when s>0
// (each touched bank receives gcd(w,s) distinct addresses).
TEST(SharedAccess, StrideDegreeEqualsGcd) {
  for (int w : {4, 6, 8, 12, 16, 32}) {
    for (std::int64_t s = 1; s <= w; ++s) {
      const auto c = shared_access_cost(strided(w, s), w);
      EXPECT_EQ(c.cycles, cfmerge::numtheory::gcd(w, s)) << "w=" << w << " s=" << s;
    }
  }
}

TEST(SharedAccess, BaseOffsetDoesNotChangeDegree) {
  for (std::int64_t base : {0, 1, 7, 31, 100}) {
    const auto c = shared_access_cost(strided(32, 15, base), 32);
    EXPECT_EQ(c.conflicts, 0) << "base=" << base;
  }
}

TEST(SharedAccessDegrees, PerBankBreakdown) {
  std::vector<int> scratch(12);
  const auto deg = shared_access_degrees(strided(12, 6), 12, scratch);
  ASSERT_EQ(deg.size(), 12u);
  EXPECT_EQ(deg[0], 6);
  EXPECT_EQ(deg[6], 6);
  for (int b : {1, 2, 3, 4, 5, 7, 8, 9, 10, 11}) EXPECT_EQ(deg[static_cast<std::size_t>(b)], 0);
}

TEST(SharedAccess, RejectsBadArguments) {
  std::vector<std::int64_t> addrs(4, 0);
  EXPECT_THROW((void)shared_access_cost(addrs, 0), std::invalid_argument);
  EXPECT_THROW((void)shared_access_cost(addrs, 100), std::invalid_argument);
  std::vector<int> small(3);
  EXPECT_THROW((void)shared_access_degrees(addrs, 12, small), std::invalid_argument);
}
