// End-to-end tests of the full mergesort driver for both variants.
#include "sort/merge_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

using namespace cfmerge;
using namespace cfmerge::sort;

namespace {
std::vector<int> rand_vec(std::mt19937_64& rng, std::int64_t n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<int>(rng() % 1000000) - 500000;
  return v;
}
}  // namespace

struct SortCase {
  int w, e, u;
  std::int64_t n;
  Variant variant;
};

class MergeSortCases : public ::testing::TestWithParam<SortCase> {};

TEST_P(MergeSortCases, SortsCorrectly) {
  const SortCase c = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(c.n) * 31 + c.e);
  std::vector<int> data = rand_vec(rng, c.n);
  std::vector<int> expect = data;
  std::sort(expect.begin(), expect.end());

  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(c.w));
  MergeConfig cfg;
  cfg.e = c.e;
  cfg.u = c.u;
  cfg.variant = c.variant;
  const SortReport report = merge_sort(launcher, data, cfg);
  EXPECT_EQ(data, expect);
  EXPECT_EQ(report.n, c.n);
  EXPECT_GT(report.microseconds, 0.0);
}

namespace {
std::vector<SortCase> sort_cases() {
  std::vector<SortCase> cases;
  for (const Variant v : {Variant::Baseline, Variant::CFMerge}) {
    // Exact tile multiple, power-of-two tiles.
    cases.push_back({8, 5, 16, 16 * 5 * 8, v});
    // Non-coprime E.
    cases.push_back({8, 6, 16, 16 * 6 * 4, v});
    // Single tile (no merge pass at all).
    cases.push_back({8, 5, 16, 16 * 5, v});
    // Ragged n (padding path) and non-power-of-two tile counts.
    cases.push_back({8, 5, 16, 16 * 5 * 3 + 7, v});
    cases.push_back({8, 7, 16, 1000, v});
    // Tiny n (smaller than one tile).
    cases.push_back({8, 5, 16, 3, v});
    // w = 32 with the paper's E values (scaled-down u).
    cases.push_back({32, 15, 64, 64 * 15 * 4, v});
    cases.push_back({32, 17, 64, 64 * 17 * 2 + 11, v});
  }
  return cases;
}
}  // namespace

INSTANTIATE_TEST_SUITE_P(Shapes, MergeSortCases, ::testing::ValuesIn(sort_cases()),
                         [](const ::testing::TestParamInfo<SortCase>& info) {
                           const auto& c = info.param;
                           return std::string(c.variant == Variant::Baseline ? "base" : "cf") +
                                  "_w" + std::to_string(c.w) + "_E" + std::to_string(c.e) +
                                  "_u" + std::to_string(c.u) + "_n" + std::to_string(c.n);
                         });

TEST(MergeSort, EmptyAndSingleton) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  std::vector<int> empty;
  const auto r0 = merge_sort(launcher, empty, cfg);
  EXPECT_EQ(r0.n, 0);
  std::vector<int> one{42};
  merge_sort(launcher, one, cfg);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(MergeSort, AllDistributionsSortCorrectly) {
  std::mt19937_64 rng(11);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  const std::int64_t n = 16 * 5 * 8;
  std::vector<std::vector<int>> inputs;
  std::vector<int> sorted(static_cast<std::size_t>(n));
  std::iota(sorted.begin(), sorted.end(), 0);
  inputs.push_back(sorted);
  auto rev = sorted;
  std::reverse(rev.begin(), rev.end());
  inputs.push_back(rev);
  inputs.push_back(std::vector<int>(static_cast<std::size_t>(n), 7));
  inputs.push_back(rand_vec(rng, n));
  for (const Variant v : {Variant::Baseline, Variant::CFMerge}) {
    cfg.variant = v;
    for (auto input : inputs) {
      auto expect = input;
      std::sort(expect.begin(), expect.end());
      merge_sort(launcher, input, cfg);
      EXPECT_EQ(input, expect);
    }
  }
}

TEST(MergeSort, CFMergeHasZeroMergeConflictsEndToEnd) {
  std::mt19937_64 rng(12);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  for (const int e : {5, 6, 8}) {  // coprime and non-coprime with w=8
    MergeConfig cfg;
    cfg.e = e;
    cfg.u = 16;
    cfg.variant = Variant::CFMerge;
    std::vector<int> data = rand_vec(rng, 16LL * e * 8);
    const SortReport report = merge_sort(launcher, data, cfg);
    std::uint64_t cf_gather_conflicts = 0;
    for (const auto& [name, c] : report.phases.phases())
      if (name == "merge.merge") cf_gather_conflicts += c.bank_conflicts;
    EXPECT_EQ(cf_gather_conflicts, 0u) << "E=" << e;
  }
}

TEST(MergeSort, BaselineMergeConflictsNonzeroOnRandom) {
  std::mt19937_64 rng(13);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.variant = Variant::Baseline;
  std::vector<int> data = rand_vec(rng, 16LL * 5 * 16);
  const SortReport report = merge_sort(launcher, data, cfg);
  EXPECT_GT(report.merge_conflicts(), 0u);
}

TEST(MergeSort, ReportAccountsAllKernels) {
  std::mt19937_64 rng(14);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  std::vector<int> data = rand_vec(rng, 16LL * 5 * 8);  // 8 tiles -> 3 passes
  const SortReport report = merge_sort(launcher, data, cfg);
  EXPECT_EQ(report.passes, 3);
  // 1 block_sort + passes * (partition + merge).
  EXPECT_EQ(report.kernels.size(), 1u + 3u * 2u);
  double total_us = 0.0;
  for (const auto& k : report.kernels) total_us += k.timing.microseconds;
  EXPECT_DOUBLE_EQ(total_us, report.microseconds);
  EXPECT_GT(report.throughput(), 0.0);
}

TEST(MergeSort, DeterministicAcrossRuns) {
  std::mt19937_64 rng(15);
  const std::vector<int> data = rand_vec(rng, 16LL * 5 * 4);
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  auto d1 = data;
  const auto r1 = merge_sort(launcher, d1, cfg);
  auto d2 = data;
  const auto r2 = merge_sort(launcher, d2, cfg);
  EXPECT_EQ(d1, d2);
  EXPECT_DOUBLE_EQ(r1.microseconds, r2.microseconds);
  EXPECT_EQ(r1.totals.bank_conflicts, r2.totals.bank_conflicts);
}

TEST(MergeSort, RejectsInvalidConfig) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  std::vector<int> data(100);
  MergeConfig cfg;
  cfg.e = 0;
  EXPECT_THROW(merge_sort(launcher, data, cfg), std::invalid_argument);
  cfg.e = 5;
  cfg.u = 12;  // not a multiple of w=8
  EXPECT_THROW(merge_sort(launcher, data, cfg), std::invalid_argument);
}

TEST(MergeSort, CfBlocksortExtensionSortsAndCutsConflicts) {
  // Extension: the dual gather applied inside the block-sort rounds whose
  // pairs span full warps.  Must still sort, and must reduce the (shared)
  // block-sort merge conflicts.
  std::mt19937_64 rng(21);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  for (const int e : {5, 6}) {
    MergeConfig cfg;
    cfg.e = e;
    cfg.u = 64;  // pairs reach >= w = 8 threads from round 2 on
    cfg.variant = Variant::CFMerge;
    std::vector<int> data = rand_vec(rng, 64LL * e * 4);
    std::vector<int> expect = data;
    std::sort(expect.begin(), expect.end());

    cfg.cf_blocksort = false;
    auto plain_in = data;
    const auto plain = merge_sort(launcher, plain_in, cfg);
    cfg.cf_blocksort = true;
    auto cf_in = data;
    const auto cf = merge_sort(launcher, cf_in, cfg);

    EXPECT_EQ(plain_in, expect);
    EXPECT_EQ(cf_in, expect);
    std::uint64_t plain_bsort = 0, cf_bsort = 0;
    for (const auto& [name, c] : plain.phases.phases())
      if (name == "bsort.merge") plain_bsort = c.bank_conflicts;
    for (const auto& [name, c] : cf.phases.phases())
      if (name == "bsort.merge") cf_bsort = c.bank_conflicts;
    EXPECT_LT(cf_bsort, plain_bsort) << "E=" << e;
  }
}

TEST(MergeSort, CfBlocksortHalvesOccupancyViaStaging) {
  std::mt19937_64 rng(22);
  gpusim::Launcher launcher(gpusim::DeviceSpec::rtx2080ti());
  MergeConfig cfg;
  cfg.e = 15;
  cfg.u = 512;
  cfg.variant = Variant::CFMerge;
  cfg.cf_blocksort = true;
  std::vector<int> data = rand_vec(rng, 512LL * 15 * 2);
  const auto report = merge_sort(launcher, data, cfg);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  for (const auto& k : report.kernels)
    if (k.name == "block_sort") {
      EXPECT_EQ(k.timing.occupancy.blocks_per_sm, 1);  // 2 blocks without staging
      EXPECT_EQ(k.shape.shared_bytes_per_block, 2ull * 512 * 15 * sizeof(int));
    }
}

TEST(MergeSort, SortsOtherKeyTypes) {
  std::mt19937_64 rng(16);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  std::vector<float> f(16 * 5 * 4);
  for (auto& x : f) x = static_cast<float>(rng() % 10000) / 7.0f;
  auto fe = f;
  std::sort(fe.begin(), fe.end());
  merge_sort(launcher, f, cfg);
  EXPECT_EQ(f, fe);

  std::vector<std::int64_t> l(16 * 5 * 4);
  for (auto& x : l) x = static_cast<std::int64_t>(rng()) % 1000000;
  auto le = l;
  std::sort(le.begin(), le.end());
  merge_sort(launcher, l, cfg);
  EXPECT_EQ(l, le);

  std::vector<std::uint32_t> usd(16 * 5 * 4);
  for (auto& x : usd) x = static_cast<std::uint32_t>(rng());
  auto ue = usd;
  std::sort(ue.begin(), ue.end());
  merge_sort(launcher, usd, cfg);
  EXPECT_EQ(usd, ue);
}

// ---------------------------------------------------------------------------
// Parallel block executor: every sort shape/variant must produce a report
// bit-identical to the sequential executor (counters, per-phase breakdown,
// simulated time) and the same sorted output.
// ---------------------------------------------------------------------------

class MergeSortParallelCases : public ::testing::TestWithParam<SortCase> {};

TEST_P(MergeSortParallelCases, ParallelReportBitIdenticalToSequential) {
  const SortCase c = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(c.n) * 31 + c.e);
  const std::vector<int> input = rand_vec(rng, c.n);
  MergeConfig cfg;
  cfg.e = c.e;
  cfg.u = c.u;
  cfg.variant = c.variant;

  gpusim::Launcher seq(gpusim::DeviceSpec::tiny(c.w));
  seq.set_threads(1);
  std::vector<int> seq_data = input;
  const SortReport ref = merge_sort(seq, seq_data, cfg);

  for (const int threads : {2, 4}) {
    gpusim::Launcher par(gpusim::DeviceSpec::tiny(c.w));
    par.set_threads(threads);
    std::vector<int> par_data = input;
    const SortReport r = merge_sort(par, par_data, cfg);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(par_data, seq_data);
    EXPECT_EQ(r.totals, ref.totals);
    EXPECT_EQ(r.phases, ref.phases);
    EXPECT_EQ(r.passes, ref.passes);
    EXPECT_EQ(r.microseconds, ref.microseconds);  // exact
    ASSERT_EQ(r.kernels.size(), ref.kernels.size());
    for (std::size_t k = 0; k < r.kernels.size(); ++k) {
      EXPECT_EQ(r.kernels[k].counters, ref.kernels[k].counters);
      EXPECT_EQ(r.kernels[k].mean_block_chain, ref.kernels[k].mean_block_chain);
      EXPECT_EQ(r.kernels[k].timing.cycles, ref.kernels[k].timing.cycles);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MergeSortParallelCases,
                         ::testing::ValuesIn(sort_cases()),
                         [](const ::testing::TestParamInfo<SortCase>& info) {
                           const auto& c = info.param;
                           return std::string(c.variant == Variant::Baseline ? "base" : "cf") +
                                  "_w" + std::to_string(c.w) + "_E" + std::to_string(c.e) +
                                  "_u" + std::to_string(c.u) + "_n" + std::to_string(c.n);
                         });
