// Tests of the batched pairwise merge API.
#include "sort/batched_merge.hpp"
#include "sort/merge_arrays.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace cfmerge;
using namespace cfmerge::sort;

namespace {
std::vector<int> sorted_random(std::mt19937_64& rng, std::size_t n, int hi = 100000) {
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng() % static_cast<std::uint64_t>(hi));
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<int> reference_merge(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> out;
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}
}  // namespace

class BatchedBothVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(BatchedBothVariants, ManyUnevenPairs) {
  std::mt19937_64 rng(1);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.variant = GetParam();

  std::vector<std::vector<int>> as, bs;
  for (const auto& [na, nb] : std::vector<std::pair<std::size_t, std::size_t>>{
           {80, 80}, {0, 50}, {200, 3}, {1, 1}, {333, 77}, {0, 0}, {160, 159}}) {
    as.push_back(sorted_random(rng, na));
    bs.push_back(sorted_random(rng, nb));
  }
  std::vector<std::vector<int>> outs;
  const auto report = batched_merge(launcher, as, bs, outs, cfg);
  ASSERT_EQ(outs.size(), as.size());
  for (std::size_t p = 0; p < as.size(); ++p)
    EXPECT_EQ(outs[p], reference_merge(as[p], bs[p])) << "pair " << p;
  EXPECT_EQ(report.pairs, static_cast<int>(as.size()));
  std::int64_t total = 0;
  for (std::size_t p = 0; p < as.size(); ++p)
    total += static_cast<std::int64_t>(as[p].size() + bs[p].size());
  EXPECT_EQ(report.elements, total);
}

TEST_P(BatchedBothVariants, SinglePairMatchesMergeArrays) {
  std::mt19937_64 rng(2);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 6;  // non-coprime with w = 8
  cfg.u = 16;
  cfg.variant = GetParam();
  const auto a = sorted_random(rng, 150);
  const auto b = sorted_random(rng, 90);
  std::vector<std::vector<int>> outs;
  batched_merge(launcher, {a}, {b}, outs, cfg);
  std::vector<int> ref_out;
  merge_arrays(launcher, a, b, ref_out, cfg);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0], ref_out);
}

INSTANTIATE_TEST_SUITE_P(Variants, BatchedBothVariants,
                         ::testing::Values(Variant::Baseline, Variant::CFMerge),
                         [](const ::testing::TestParamInfo<Variant>& info) {
                           return info.param == Variant::Baseline ? "Baseline" : "CFMerge";
                         });

TEST(BatchedMerge, EmptyBatch) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  std::vector<std::vector<int>> outs;
  const auto report = batched_merge<int>(launcher, {}, {}, outs, cfg);
  EXPECT_EQ(report.pairs, 0);
  EXPECT_TRUE(outs.empty());
}

TEST(BatchedMerge, MismatchedBatchRejected) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  std::vector<std::vector<int>> outs;
  EXPECT_THROW(batched_merge<int>(launcher, {{1}}, {}, outs, cfg), std::invalid_argument);
}

TEST(BatchedMerge, CFMergeConflictFreeAcrossWholeBatch) {
  std::mt19937_64 rng(3);
  gpusim::Launcher launcher(gpusim::DeviceSpec::rtx2080ti());
  MergeConfig cfg;
  cfg.e = 16;  // non-coprime with w = 32: the hard case
  cfg.u = 64;
  cfg.variant = Variant::CFMerge;
  std::vector<std::vector<int>> as, bs;
  for (int p = 0; p < 5; ++p) {
    as.push_back(sorted_random(rng, 1000 + static_cast<std::size_t>(rng() % 2000)));
    bs.push_back(sorted_random(rng, 500 + static_cast<std::size_t>(rng() % 2500)));
  }
  std::vector<std::vector<int>> outs;
  const auto report = batched_merge(launcher, as, bs, outs, cfg);
  EXPECT_EQ(report.merge_conflicts(), 0u);
  for (std::size_t p = 0; p < as.size(); ++p)
    EXPECT_EQ(outs[p], reference_merge(as[p], bs[p]));
}

TEST(BatchedMerge, LaunchesTwoKernelsPerPair) {
  std::mt19937_64 rng(4);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  std::vector<std::vector<int>> as{sorted_random(rng, 100), sorted_random(rng, 300)};
  std::vector<std::vector<int>> bs{sorted_random(rng, 120), sorted_random(rng, 10)};
  std::vector<std::vector<int>> outs;
  const auto report = batched_merge(launcher, as, bs, outs, cfg);
  // Each pair contributes an independent partition -> merge node pair.
  ASSERT_EQ(launcher.history().size(), 4u);
  EXPECT_EQ(launcher.history()[0].name, "batched_partition");
  EXPECT_EQ(launcher.history()[1].name, "batched_merge");
  EXPECT_EQ(launcher.history()[2].name, "batched_partition");
  EXPECT_EQ(launcher.history()[3].name, "batched_merge");
  ASSERT_EQ(report.kernels.size(), 4u);
  EXPECT_EQ(report.graph_levels, 2);  // partitions wave, then merges wave
  // Independent pairs overlap: the makespan is the slowest pair's chain,
  // strictly below the serial sum of both pairs.
  EXPECT_LT(report.makespan_microseconds, report.microseconds);
  EXPECT_GT(report.makespan_microseconds, 0.0);
  double serial = 0.0;
  for (const auto& k : report.kernels) serial += k.timing.microseconds;
  EXPECT_DOUBLE_EQ(serial, report.microseconds);
}
