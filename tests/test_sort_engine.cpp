// Tests of the SortEngine plan/execute split: plan-cache hit/miss/eviction
// accounting, cache semantics (instances, not flyweights), scratch-arena
// reuse, and the core acceptance property — engine-routed sorts produce
// reports bit-identical to a cold run for every worker count and both
// GraphExec modes, on the first call and on cached-plan replay.
#include "sort/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <random>
#include <vector>

#include "cache/store.hpp"
#include "gpusim/launcher.hpp"

using namespace cfmerge;
using namespace cfmerge::gpusim;

namespace {

std::vector<int> random_vec(std::int64_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<int>(rng() % 1000000) - 500000;
  return v;
}

sort::MergeConfig tiny_cfg(sort::Variant v = sort::Variant::CFMerge) {
  sort::MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.variant = v;
  return cfg;
}

void expect_kernels_eq(const std::vector<KernelReport>& a,
                       const std::vector<KernelReport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].name, b[k].name);
    EXPECT_EQ(a[k].counters, b[k].counters);
    EXPECT_EQ(a[k].timing.microseconds, b[k].timing.microseconds);
  }
}

void expect_reports_eq(const sort::SortReport& a, const sort::SortReport& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.n_padded, b.n_padded);
  EXPECT_EQ(a.passes, b.passes);
  EXPECT_EQ(a.graph_levels, b.graph_levels);
  EXPECT_EQ(a.totals, b.totals);
  EXPECT_EQ(a.phases, b.phases);
  EXPECT_DOUBLE_EQ(a.microseconds, b.microseconds);
  EXPECT_DOUBLE_EQ(a.makespan_microseconds, b.makespan_microseconds);
  expect_kernels_eq(a.kernels, b.kernels);
}

void expect_reports_eq(const sort::SegmentedSortReport& a,
                       const sort::SegmentedSortReport& b) {
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(a.elements, b.elements);
  EXPECT_EQ(a.graph_levels, b.graph_levels);
  EXPECT_EQ(a.totals, b.totals);
  EXPECT_EQ(a.phases, b.phases);
  EXPECT_DOUBLE_EQ(a.serial_microseconds, b.serial_microseconds);
  EXPECT_DOUBLE_EQ(a.makespan_microseconds, b.makespan_microseconds);
  expect_kernels_eq(a.kernels, b.kernels);
}

void expect_reports_eq(const sort::BatchedMergeReport& a,
                       const sort::BatchedMergeReport& b) {
  EXPECT_EQ(a.pairs, b.pairs);
  EXPECT_EQ(a.elements, b.elements);
  EXPECT_EQ(a.graph_levels, b.graph_levels);
  EXPECT_EQ(a.totals, b.totals);
  EXPECT_EQ(a.phases, b.phases);
  EXPECT_DOUBLE_EQ(a.microseconds, b.microseconds);
  EXPECT_DOUBLE_EQ(a.makespan_microseconds, b.makespan_microseconds);
  expect_kernels_eq(a.kernels, b.kernels);
}

}  // namespace

TEST(SortEngine, PlanCacheCountsHitsMissesAndBytes) {
  Launcher launcher(DeviceSpec::tiny(8));
  sort::SortEngine engine(launcher);
  const auto cfg = tiny_cfg();
  const auto input = random_vec(16 * 5 * 4, 1);

  for (int call = 0; call < 3; ++call) {
    auto data = input;
    engine.sort(data, cfg);
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  }
  const sort::EngineStats es = engine.stats();
  EXPECT_EQ(es.plan_misses, 1u);
  EXPECT_EQ(es.plan_hits, 2u);
  EXPECT_EQ(es.plan_evictions, 0u);
  EXPECT_EQ(es.plans_cached, 1u);
  EXPECT_GT(es.plan_bytes, 0u);
  EXPECT_DOUBLE_EQ(es.hit_rate(), 2.0 / 3.0);
}

TEST(SortEngine, DistinctConfigAndLengthEachBuildAPlan) {
  Launcher launcher(DeviceSpec::tiny(8));
  sort::SortEngine engine(launcher);
  auto a = random_vec(16 * 5 * 4, 2);
  auto b = random_vec(16 * 5 * 2, 3);  // different padded length
  engine.sort(a, tiny_cfg(sort::Variant::CFMerge));
  engine.sort(b, tiny_cfg(sort::Variant::CFMerge));
  a = random_vec(16 * 5 * 4, 4);
  engine.sort(a, tiny_cfg(sort::Variant::Baseline));  // different variant
  const sort::EngineStats es = engine.stats();
  EXPECT_EQ(es.plan_misses, 3u);
  EXPECT_EQ(es.plan_hits, 0u);
  EXPECT_EQ(es.plans_cached, 3u);
}

TEST(SortEngine, EvictsLeastRecentlyReleasedOverCapacity) {
  Launcher launcher(DeviceSpec::tiny(8));
  sort::SortEngine engine(launcher, /*plan_capacity=*/1);
  auto a = random_vec(16 * 5 * 4, 5);
  auto b = random_vec(16 * 5 * 2, 6);

  engine.sort(a, tiny_cfg());  // cache: [A]
  engine.sort(b, tiny_cfg());  // A evicted, cache: [B]
  {
    const sort::EngineStats es = engine.stats();
    EXPECT_EQ(es.plan_evictions, 1u);
    EXPECT_EQ(es.plans_cached, 1u);
  }
  auto a2 = random_vec(16 * 5 * 4, 7);
  engine.sort(a2, tiny_cfg());  // miss again: A's instance is gone
  const sort::EngineStats es = engine.stats();
  EXPECT_EQ(es.plan_misses, 3u);
  EXPECT_EQ(es.plan_hits, 0u);
  EXPECT_EQ(es.plan_evictions, 2u);

  // Shrinking the capacity evicts immediately.
  engine.set_plan_capacity(0);
  EXPECT_EQ(engine.stats().plans_cached, 0u);
}

TEST(SortEngine, ClearPlansAndDisabledCacheForceRebuilds) {
  Launcher launcher(DeviceSpec::tiny(8));
  sort::SortEngine engine(launcher);
  const auto cfg = tiny_cfg();
  auto data = random_vec(16 * 5 * 3, 8);

  engine.sort(data, cfg);
  engine.clear_plans();
  EXPECT_EQ(engine.stats().plans_cached, 0u);
  data = random_vec(16 * 5 * 3, 9);
  engine.sort(data, cfg);
  EXPECT_EQ(engine.stats().plan_misses, 2u);

  engine.set_plan_cache_enabled(false);
  EXPECT_FALSE(engine.plan_cache_enabled());
  EXPECT_EQ(engine.stats().plans_cached, 0u);
  for (int call = 0; call < 2; ++call) {
    data = random_vec(16 * 5 * 3, 10 + static_cast<std::uint64_t>(call));
    engine.sort(data, cfg);
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  }
  const sort::EngineStats es = engine.stats();
  EXPECT_EQ(es.plan_misses, 4u);
  EXPECT_EQ(es.plan_hits, 0u);
}

TEST(SortEngine, ReplayBitIdenticalToColdForEveryModeAndWorkerCount) {
  const auto cfg = tiny_cfg();
  const auto input = random_vec(16 * 5 * 3 + 7, 11);

  // Reference: cold single-threaded run through a fresh engine.
  Launcher ref_launcher(DeviceSpec::tiny(8));
  ref_launcher.set_threads(1);
  sort::SortEngine ref_engine(ref_launcher);
  auto ref_data = input;
  const sort::SortReport ref = ref_engine.sort(ref_data, cfg);
  EXPECT_TRUE(std::is_sorted(ref_data.begin(), ref_data.end()));

  for (const GraphExec mode : {GraphExec::Serial, GraphExec::Overlap}) {
    for (const int threads : {1, 2, 4}) {
      SCOPED_TRACE((mode == GraphExec::Serial ? "serial" : "overlap") +
                   std::string(" threads=") + std::to_string(threads));
      Launcher launcher(DeviceSpec::tiny(8));
      launcher.set_threads(threads);
      sort::SortEngine engine(launcher);
      auto cold = input;
      const sort::SortReport cold_rep = engine.sort(cold, cfg, mode);
      auto warm = input;
      const sort::SortReport warm_rep = engine.sort(warm, cfg, mode);  // replay
      EXPECT_EQ(engine.stats().plan_hits, 1u);
      EXPECT_EQ(cold, ref_data);
      EXPECT_EQ(warm, ref_data);
      expect_reports_eq(cold_rep, ref);
      expect_reports_eq(warm_rep, ref);
    }
  }
}

TEST(SortEngine, SegmentedReplayBitIdenticalAcrossModesAndThreads) {
  const auto cfg = tiny_cfg();
  std::vector<std::vector<int>> proto = {random_vec(16 * 5 * 2, 12),
                                         random_vec(37, 13),
                                         {},
                                         random_vec(16 * 5 * 2, 14),
                                         random_vec(16 * 5, 15)};

  Launcher ref_launcher(DeviceSpec::tiny(8));
  ref_launcher.set_threads(1);
  sort::SortEngine ref_engine(ref_launcher);
  auto ref_batch = proto;
  const sort::SegmentedSortReport ref = ref_engine.segmented_sort(ref_batch, cfg);

  for (const GraphExec mode : {GraphExec::Serial, GraphExec::Overlap}) {
    for (const int threads : {1, 2, 4}) {
      SCOPED_TRACE((mode == GraphExec::Serial ? "serial" : "overlap") +
                   std::string(" threads=") + std::to_string(threads));
      Launcher launcher(DeviceSpec::tiny(8));
      launcher.set_threads(threads);
      sort::SortEngine engine(launcher);
      auto cold = proto;
      const auto cold_rep = engine.segmented_sort(cold, cfg, mode);
      auto warm = proto;
      const auto warm_rep = engine.segmented_sort(warm, cfg, mode);
      EXPECT_EQ(cold, ref_batch);
      EXPECT_EQ(warm, ref_batch);
      expect_reports_eq(cold_rep, ref);
      expect_reports_eq(warm_rep, ref);
    }
  }
}

TEST(SortEngine, SegmentedSameShapeSegmentsGetDistinctInstances) {
  // Two equal-length segments in one batch cannot share a plan instance
  // (both graphs execute in one Launcher::run), so the first batch builds
  // two plans; the next batch then hits twice.
  Launcher launcher(DeviceSpec::tiny(8));
  sort::SortEngine engine(launcher);
  const auto cfg = tiny_cfg();
  std::vector<std::vector<int>> proto = {random_vec(16 * 5 * 2, 16),
                                         random_vec(16 * 5 * 2, 17)};

  auto batch = proto;
  engine.segmented_sort(batch, cfg);
  {
    const sort::EngineStats es = engine.stats();
    EXPECT_EQ(es.plan_misses, 2u);
    EXPECT_EQ(es.plan_hits, 0u);
    EXPECT_EQ(es.plans_cached, 2u);
  }
  batch = proto;
  engine.segmented_sort(batch, cfg);
  for (const auto& seg : batch) EXPECT_TRUE(std::is_sorted(seg.begin(), seg.end()));
  const sort::EngineStats es = engine.stats();
  EXPECT_EQ(es.plan_misses, 2u);
  EXPECT_EQ(es.plan_hits, 2u);
}

TEST(SortEngine, SortByKeyPoolsPairBufferAndChecksSizes) {
  Launcher launcher(DeviceSpec::tiny(8));
  sort::SortEngine engine(launcher);
  const auto cfg = tiny_cfg();

  std::vector<int> keys = random_vec(16 * 5 * 2, 18);
  std::vector<int> values(keys.size());
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = static_cast<int>(i);
  std::vector<int> short_values(keys.size() - 1);
  EXPECT_THROW(engine.sort_by_key(keys, short_values, cfg), std::invalid_argument);

  auto sorted_keys = keys;
  std::sort(sorted_keys.begin(), sorted_keys.end());
  for (int call = 0; call < 2; ++call) {
    auto k = keys;
    auto v = values;
    engine.sort_by_key(k, v, cfg);
    EXPECT_EQ(k, sorted_keys);
    for (std::size_t i = 0; i < k.size(); ++i)
      EXPECT_EQ(keys[static_cast<std::size_t>(v[i])], k[i]);
  }
  const sort::EngineStats es = engine.stats();
  EXPECT_EQ(es.arena_allocs, 1u);   // first call allocates the pair buffer
  EXPECT_EQ(es.arena_reuses, 1u);   // second call reuses it
  EXPECT_GT(es.arena_bytes, 0u);
}

TEST(SortEngine, BatchedReplayBitIdenticalAndShapeKeyed) {
  const auto cfg = tiny_cfg();
  std::vector<std::vector<int>> as, bs;
  for (int p = 0; p < 3; ++p) {
    auto a = random_vec(60 + p * 10, 20 + static_cast<std::uint64_t>(p));
    auto b = random_vec(40, 30 + static_cast<std::uint64_t>(p));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    as.push_back(std::move(a));
    bs.push_back(std::move(b));
  }

  Launcher ref_launcher(DeviceSpec::tiny(8));
  ref_launcher.set_threads(1);
  sort::SortEngine ref_engine(ref_launcher);
  std::vector<std::vector<int>> ref_outs;
  const auto ref = ref_engine.batched_merge(as, bs, ref_outs, cfg);
  for (std::size_t p = 0; p < as.size(); ++p) {
    std::vector<int> expect;
    std::merge(as[p].begin(), as[p].end(), bs[p].begin(), bs[p].end(),
               std::back_inserter(expect));
    EXPECT_EQ(ref_outs[p], expect);
  }

  for (const GraphExec mode : {GraphExec::Serial, GraphExec::Overlap}) {
    for (const int threads : {1, 2, 4}) {
      SCOPED_TRACE((mode == GraphExec::Serial ? "serial" : "overlap") +
                   std::string(" threads=") + std::to_string(threads));
      Launcher launcher(DeviceSpec::tiny(8));
      launcher.set_threads(threads);
      sort::SortEngine engine(launcher);
      std::vector<std::vector<int>> outs;
      const auto cold_rep = engine.batched_merge(as, bs, outs, cfg, mode);
      EXPECT_EQ(outs, ref_outs);
      const auto warm_rep = engine.batched_merge(as, bs, outs, cfg, mode);
      EXPECT_EQ(outs, ref_outs);
      EXPECT_EQ(engine.stats().plan_hits, 1u);
      expect_reports_eq(cold_rep, ref);
      expect_reports_eq(warm_rep, ref);
    }
  }

  // A different batch shape is a different key: no false hit.
  Launcher launcher(DeviceSpec::tiny(8));
  sort::SortEngine engine(launcher);
  std::vector<std::vector<int>> outs;
  engine.batched_merge(as, bs, outs, cfg);
  auto bs2 = bs;
  bs2.back().push_back(1000001);  // |B| of the last pair changes
  engine.batched_merge(as, bs2, outs, cfg);
  const sort::EngineStats es = engine.stats();
  EXPECT_EQ(es.plan_misses, 2u);
  EXPECT_EQ(es.plan_hits, 0u);
}

TEST(SortEngine, EmptyAndMismatchedInputsShortCircuit) {
  Launcher launcher(DeviceSpec::tiny(8));
  sort::SortEngine engine(launcher);
  const auto cfg = tiny_cfg();

  std::vector<int> empty;
  const sort::SortReport r = engine.sort(empty, cfg);
  EXPECT_EQ(r.n, 0);
  EXPECT_TRUE(r.kernels.empty());

  std::vector<std::vector<int>> as(2), bs(3), outs;
  EXPECT_THROW(engine.batched_merge(as, bs, outs, cfg), std::invalid_argument);

  std::vector<std::vector<int>> none, none_outs;
  const auto br = engine.batched_merge(none, none, none_outs, cfg);
  EXPECT_EQ(br.pairs, 0);
  EXPECT_TRUE(none_outs.empty());

  // None of the above touched the plan cache.
  const sort::EngineStats es = engine.stats();
  EXPECT_EQ(es.plan_misses, 0u);
  EXPECT_EQ(es.plan_hits, 0u);
}

TEST(SortEngine, PersistentStoreWarmStartsAColdProcess) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "cfmerge_engine_store";
  std::filesystem::remove_all(dir);
  const auto cfg = tiny_cfg();
  const auto input = random_vec(16 * 5 * 3, 50);

  // First "process": a fresh engine + store; every plan is a disk miss and
  // gets written back.
  sort::SortReport first_rep;
  auto first_data = input;
  {
    Launcher launcher(DeviceSpec::tiny(8));
    sort::SortEngine engine(launcher);
    cache::PlanCacheStore store(dir);
    engine.set_store(&store);
    first_rep = engine.sort(first_data, cfg);
    const sort::EngineStats es = engine.stats();
    EXPECT_EQ(es.disk_hits, 0u);
    EXPECT_EQ(es.disk_misses, 1u);
    EXPECT_EQ(es.disk_writes, 1u);
    ASSERT_TRUE(store.save());
  }
  EXPECT_TRUE(std::is_sorted(first_data.begin(), first_data.end()));

  // Second "process": new engine, new store instance, same directory — the
  // plan key is found on disk and the report is bit-identical.
  {
    Launcher launcher(DeviceSpec::tiny(8));
    sort::SortEngine engine(launcher);
    cache::PlanCacheStore store(dir);
    engine.set_store(&store);
    auto data = input;
    const sort::SortReport second_rep = engine.sort(data, cfg);
    const sort::EngineStats es = engine.stats();
    EXPECT_GT(es.disk_hits, 0u);
    EXPECT_EQ(es.disk_misses, 0u);
    EXPECT_EQ(es.disk_writes, 0u);
    EXPECT_GT(es.disk_entries, 0u);
    EXPECT_EQ(data, first_data);
    expect_reports_eq(second_rep, first_rep);
  }

  // A different device spec is a different digest: nothing false-hits.
  {
    Launcher launcher(DeviceSpec::tiny(16));
    sort::SortEngine engine(launcher);
    cache::PlanCacheStore store(dir);
    engine.set_store(&store);
    auto data = input;
    engine.sort(data, cfg);
    const sort::EngineStats es = engine.stats();
    EXPECT_EQ(es.disk_hits, 0u);
    EXPECT_GT(es.disk_misses, 0u);
  }
}

TEST(SortEngine, StatsWithoutStoreReportZeroDiskTraffic) {
  Launcher launcher(DeviceSpec::tiny(8));
  sort::SortEngine engine(launcher);
  auto data = random_vec(16 * 5 * 2, 51);
  engine.sort(data, tiny_cfg());
  const sort::EngineStats es = engine.stats();
  EXPECT_EQ(es.disk_hits, 0u);
  EXPECT_EQ(es.disk_misses, 0u);
  EXPECT_EQ(es.disk_writes, 0u);
  EXPECT_EQ(es.disk_entries, 0u);
  EXPECT_EQ(es.disk_bytes, 0u);
}

TEST(SortEngine, FreeFunctionsMatchEngineRoutedCalls) {
  const auto cfg = tiny_cfg();
  const auto input = random_vec(16 * 5 * 3, 40);

  Launcher l1(DeviceSpec::tiny(8));
  auto d1 = input;
  const sort::SortReport free_rep = sort::merge_sort(l1, d1, cfg);

  Launcher l2(DeviceSpec::tiny(8));
  sort::SortEngine engine(l2);
  auto d2 = input;
  const sort::SortReport engine_rep = engine.sort(d2, cfg);

  EXPECT_EQ(d1, d2);
  expect_reports_eq(free_rep, engine_rep);
}
