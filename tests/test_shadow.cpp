// Tests of the Pass 2 shared-memory shadow checker: clean runs on the real
// kernels, and each violation class triggered by a crafted kernel or (for
// the classes the simulated kernels cannot reach without corrupting memory)
// by driving the auditor interface directly.
#include "verify/shadow.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gpusim/launcher.hpp"
#include "gpusim/memory_views.hpp"
#include "sort/merge_sort.hpp"

using namespace cfmerge;
using namespace cfmerge::verify;

namespace {

/// Counts violations of one kind in a summary.
std::size_t count_kind(const ShadowSummary& s, const std::string& kind) {
  return static_cast<std::size_t>(
      std::count_if(s.violations.begin(), s.violations.end(),
                    [&](const ShadowViolation& v) { return v.kind == kind; }));
}

}  // namespace

TEST(Shadow, CleanOnRealMergeSort) {
  ShadowChecker checker;
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  launcher.set_audit(&checker);
  sort::MergeConfig cfg;
  cfg.e = 3;
  cfg.u = 16;
  std::vector<int> data(static_cast<std::size_t>(4 * cfg.tile()));
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<int>((i * 131) % 257);
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  sort::merge_sort(launcher, data, cfg);
  EXPECT_EQ(data, expect);

  const ShadowSummary s = checker.summary();
  EXPECT_TRUE(s.enabled);
  EXPECT_GT(s.shared_accesses, 0u);
  EXPECT_GT(s.checked_words, 0u);
  EXPECT_TRUE(s.clean()) << (s.violations.empty() ? "" : s.violations.front().detail);
}

TEST(Shadow, UninitializedReadFlagged) {
  ShadowChecker checker;
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(4));
  launcher.set_audit(&checker);
  launcher.launch("uninit_read", gpusim::LaunchShape{1, 4, 0, 8},
                  [&](gpusim::BlockContext& ctx) {
                    gpusim::SharedTile<int> tile(ctx, 16);
                    std::vector<std::int64_t> addrs{0, 1, 2, 3};
                    std::vector<int> vals{10, 11, 12, 13};
                    tile.scatter(0, addrs, vals);
                    // Words 4..7 were never written by anyone.
                    std::vector<std::int64_t> bad{4, 5, 6, 7};
                    tile.gather(0, bad, vals);
                  });
  const ShadowSummary s = checker.summary();
  EXPECT_EQ(count_kind(s, "uninitialized-read"), 4u);
  EXPECT_FALSE(s.clean());
}

TEST(Shadow, RawEscapeMarksTileInitialized) {
  ShadowChecker checker;
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(4));
  launcher.set_audit(&checker);
  launcher.launch("raw_then_read", gpusim::LaunchShape{1, 4, 0, 8},
                  [&](gpusim::BlockContext& ctx) {
                    gpusim::SharedTile<int> tile(ctx, 16);
                    for (auto& x : tile.raw()) x = 1;
                    std::vector<std::int64_t> addrs{4, 5, 6, 7};
                    std::vector<int> vals(4);
                    tile.gather(0, addrs, vals);
                  });
  EXPECT_TRUE(checker.summary().clean());
}

TEST(Shadow, IntraScatterDuplicateIsARace) {
  ShadowChecker checker;
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(4));
  launcher.set_audit(&checker);
  launcher.launch("dup_scatter", gpusim::LaunchShape{1, 4, 0, 8},
                  [&](gpusim::BlockContext& ctx) {
                    gpusim::SharedTile<int> tile(ctx, 8);
                    std::vector<std::int64_t> addrs{2, 2, 5, 6};  // lanes 0,1 collide
                    std::vector<int> vals{1, 2, 3, 4};
                    tile.scatter(0, addrs, vals);
                  });
  const ShadowSummary s = checker.summary();
  EXPECT_EQ(count_kind(s, "write-write-race"), 1u);
}

TEST(Shadow, CrossWarpSameEpochWriteIsARaceBarrierClearsIt) {
  for (const bool with_barrier : {false, true}) {
    ShadowChecker checker;
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(4));
    launcher.set_audit(&checker);
    launcher.launch("cross_warp", gpusim::LaunchShape{1, 8, 0, 8},
                    [&](gpusim::BlockContext& ctx) {
                      gpusim::SharedTile<int> tile(ctx, 8);
                      std::vector<std::int64_t> addrs{0, 1, 2, 3};
                      std::vector<int> vals{1, 2, 3, 4};
                      tile.scatter(0, addrs, vals);
                      if (with_barrier) ctx.barrier();
                      tile.scatter(1, addrs, vals);  // warp 1, same words
                    });
    const ShadowSummary s = checker.summary();
    if (with_barrier)
      EXPECT_TRUE(s.clean());
    else
      EXPECT_EQ(count_kind(s, "write-write-race"), 4u);
  }
}

TEST(Shadow, OutOfBoundsAndConflictMismatchAtAuditorLevel) {
  // The SharedTile data movement asserts in-bounds, so these two classes are
  // exercised through the auditor interface the hooks feed.
  ShadowChecker checker;
  checker.on_shared_alloc(0, 0, 8);

  // (charged_conflicts matches the naive recount — banks of 1, 9, -3 alias —
  // so only the bounds violations are flagged here.)
  const std::vector<std::int64_t> oob{1, 9, -3, 2};
  checker.on_shared_access(0, 0, 0, "unit", oob, /*is_write=*/true, 4,
                           /*charged_conflicts=*/2);
  EXPECT_EQ(count_kind(checker.summary(), "out-of-bounds"), 2u);

  // Addresses 1 and 5 share bank 1 of 4: the true replay cost is 1 conflict;
  // charging anything else must be flagged.
  const std::vector<std::int64_t> conflicted{1, 5, 2, 3};
  checker.on_shared_access(0, 0, 0, "unit", conflicted, /*is_write=*/false, 4,
                           /*charged_conflicts=*/0);
  EXPECT_EQ(count_kind(checker.summary(), "conflict-mismatch"), 1u);
  checker.on_shared_access(0, 0, 1, "unit", conflicted, /*is_write=*/false, 4,
                           /*charged_conflicts=*/1);
  EXPECT_EQ(count_kind(checker.summary(), "conflict-mismatch"), 1u);  // unchanged
}

TEST(Shadow, ViolationCapCountsDrops) {
  ShadowChecker checker(/*max_violations=*/2);
  checker.on_shared_alloc(0, 0, 4);
  const std::vector<std::int64_t> bad{10, 11, 12};
  checker.on_shared_access(0, 0, 0, "unit", bad, /*is_write=*/true, 4, 0);
  const ShadowSummary s = checker.summary();
  EXPECT_EQ(s.violations.size(), 2u);
  EXPECT_EQ(s.dropped_violations, 1u);
  EXPECT_FALSE(s.clean());
}

TEST(Shadow, ResetKeepsEnabledDropsState) {
  ShadowChecker checker;
  checker.on_shared_alloc(0, 0, 4);
  const std::vector<std::int64_t> bad{10};
  checker.on_shared_access(0, 0, 0, "unit", bad, /*is_write=*/true, 4, 0);
  EXPECT_FALSE(checker.summary().clean());
  checker.reset();
  const ShadowSummary s = checker.summary();
  EXPECT_TRUE(s.enabled);
  EXPECT_TRUE(s.clean());
  EXPECT_EQ(s.shared_accesses, 0u);
}
