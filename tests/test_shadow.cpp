// Tests of the Pass 2 shared-memory shadow checker: clean runs on the real
// kernels, and each violation class triggered by a crafted kernel or (for
// the classes the simulated kernels cannot reach without corrupting memory)
// by driving the auditor interface directly.
#include "verify/shadow.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cfprims/primitive.hpp"
#include "gpusim/launcher.hpp"
#include "gpusim/memory_views.hpp"
#include "sort/merge_sort.hpp"
#include "verify/safety.hpp"

using namespace cfmerge;
using namespace cfmerge::verify;

namespace {

/// Counts violations of one kind in a summary.
std::size_t count_kind(const ShadowSummary& s, const std::string& kind) {
  return static_cast<std::size_t>(
      std::count_if(s.violations.begin(), s.violations.end(),
                    [&](const ShadowViolation& v) { return v.kind == kind; }));
}

}  // namespace

TEST(Shadow, CleanOnRealMergeSort) {
  ShadowChecker checker;
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  launcher.set_audit(&checker);
  sort::MergeConfig cfg;
  cfg.e = 3;
  cfg.u = 16;
  std::vector<int> data(static_cast<std::size_t>(4 * cfg.tile()));
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<int>((i * 131) % 257);
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  sort::merge_sort(launcher, data, cfg);
  EXPECT_EQ(data, expect);

  const ShadowSummary s = checker.summary();
  EXPECT_TRUE(s.enabled);
  EXPECT_GT(s.shared_accesses, 0u);
  EXPECT_GT(s.checked_words, 0u);
  EXPECT_TRUE(s.clean()) << (s.violations.empty() ? "" : s.violations.front().detail);
}

TEST(Shadow, UninitializedReadFlagged) {
  ShadowChecker checker;
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(4));
  launcher.set_audit(&checker);
  launcher.launch("uninit_read", gpusim::LaunchShape{1, 4, 0, 8},
                  [&](gpusim::BlockContext& ctx) {
                    gpusim::SharedTile<int> tile(ctx, 16);
                    std::vector<std::int64_t> addrs{0, 1, 2, 3};
                    std::vector<int> vals{10, 11, 12, 13};
                    tile.scatter(0, addrs, vals);
                    // Words 4..7 were never written by anyone.
                    std::vector<std::int64_t> bad{4, 5, 6, 7};
                    tile.gather(0, bad, vals);
                  });
  const ShadowSummary s = checker.summary();
  EXPECT_EQ(count_kind(s, "uninitialized-read"), 4u);
  EXPECT_FALSE(s.clean());
}

TEST(Shadow, RawEscapeMarksTileInitialized) {
  ShadowChecker checker;
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(4));
  launcher.set_audit(&checker);
  launcher.launch("raw_then_read", gpusim::LaunchShape{1, 4, 0, 8},
                  [&](gpusim::BlockContext& ctx) {
                    gpusim::SharedTile<int> tile(ctx, 16);
                    for (auto& x : tile.raw()) x = 1;
                    std::vector<std::int64_t> addrs{4, 5, 6, 7};
                    std::vector<int> vals(4);
                    tile.gather(0, addrs, vals);
                  });
  EXPECT_TRUE(checker.summary().clean());
}

TEST(Shadow, IntraScatterDuplicateIsARace) {
  ShadowChecker checker;
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(4));
  launcher.set_audit(&checker);
  launcher.launch("dup_scatter", gpusim::LaunchShape{1, 4, 0, 8},
                  [&](gpusim::BlockContext& ctx) {
                    gpusim::SharedTile<int> tile(ctx, 8);
                    std::vector<std::int64_t> addrs{2, 2, 5, 6};  // lanes 0,1 collide
                    std::vector<int> vals{1, 2, 3, 4};
                    tile.scatter(0, addrs, vals);
                  });
  const ShadowSummary s = checker.summary();
  EXPECT_EQ(count_kind(s, "write-write-race"), 1u);
}

TEST(Shadow, CrossWarpSameEpochWriteIsARaceBarrierClearsIt) {
  for (const bool with_barrier : {false, true}) {
    ShadowChecker checker;
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(4));
    launcher.set_audit(&checker);
    launcher.launch("cross_warp", gpusim::LaunchShape{1, 8, 0, 8},
                    [&](gpusim::BlockContext& ctx) {
                      gpusim::SharedTile<int> tile(ctx, 8);
                      std::vector<std::int64_t> addrs{0, 1, 2, 3};
                      std::vector<int> vals{1, 2, 3, 4};
                      tile.scatter(0, addrs, vals);
                      if (with_barrier) ctx.barrier();
                      tile.scatter(1, addrs, vals);  // warp 1, same words
                    });
    const ShadowSummary s = checker.summary();
    if (with_barrier)
      EXPECT_TRUE(s.clean());
    else
      EXPECT_EQ(count_kind(s, "write-write-race"), 4u);
  }
}

TEST(Shadow, OutOfBoundsAndConflictMismatchAtAuditorLevel) {
  // The SharedTile data movement asserts in-bounds, so these two classes are
  // exercised through the auditor interface the hooks feed.
  ShadowChecker checker;
  checker.on_shared_alloc(0, 0, 8);

  // (charged_conflicts matches the naive recount — banks of 1, 9, -3 alias —
  // so only the bounds violations are flagged here.)
  const std::vector<std::int64_t> oob{1, 9, -3, 2};
  checker.on_shared_access(0, 0, 0, "unit", oob, /*is_write=*/true, 4,
                           /*charged_conflicts=*/2);
  EXPECT_EQ(count_kind(checker.summary(), "out-of-bounds"), 2u);

  // Addresses 1 and 5 share bank 1 of 4: the true replay cost is 1 conflict;
  // charging anything else must be flagged.
  const std::vector<std::int64_t> conflicted{1, 5, 2, 3};
  checker.on_shared_access(0, 0, 0, "unit", conflicted, /*is_write=*/false, 4,
                           /*charged_conflicts=*/0);
  EXPECT_EQ(count_kind(checker.summary(), "conflict-mismatch"), 1u);
  checker.on_shared_access(0, 0, 1, "unit", conflicted, /*is_write=*/false, 4,
                           /*charged_conflicts=*/1);
  EXPECT_EQ(count_kind(checker.summary(), "conflict-mismatch"), 1u);  // unchanged
}

TEST(Shadow, ViolationCapCountsDrops) {
  ShadowChecker checker(/*max_violations=*/2);
  checker.on_shared_alloc(0, 0, 4);
  const std::vector<std::int64_t> bad{10, 11, 12};
  checker.on_shared_access(0, 0, 0, "unit", bad, /*is_write=*/true, 4, 0);
  const ShadowSummary s = checker.summary();
  EXPECT_EQ(s.violations.size(), 2u);
  EXPECT_EQ(s.dropped_violations, 1u);
  EXPECT_FALSE(s.clean());
}

TEST(Shadow, ResetKeepsEnabledDropsState) {
  ShadowChecker checker;
  checker.on_shared_alloc(0, 0, 4);
  const std::vector<std::int64_t> bad{10};
  checker.on_shared_access(0, 0, 0, "unit", bad, /*is_write=*/true, 4, 0);
  EXPECT_FALSE(checker.summary().clean());
  checker.reset();
  const ShadowSummary s = checker.summary();
  EXPECT_TRUE(s.enabled);
  EXPECT_TRUE(s.clean());
  EXPECT_EQ(s.shared_accesses, 0u);
}

TEST(Shadow, NegativeGlobalViewIndexFlagged) {
  // The GlobalView data movement asserts in-bounds, so the negative-index
  // class is exercised through the auditor interface the hook feeds.  (-1
  // is reserved for kInactiveLane, so the smallest representable negative
  // index is -2.)
  ShadowChecker checker;
  const std::vector<std::int64_t> idxs{-2, 0, 1, gpusim::kInactiveLane};
  checker.on_global_access(0, 0, "unit", idxs, /*view_size=*/8, /*is_write=*/false);
  const ShadowSummary s = checker.summary();
  EXPECT_EQ(count_kind(s, "out-of-bounds"), 1u);
  EXPECT_EQ(s.violations.front().addr, -2);
}

TEST(Shadow, ReadOfWordInitializedOnlyViaRawEscape) {
  // A word whose only initialization is the raw() escape hatch: reads are
  // clean, and a later charged write must not race against the escape
  // marker (writer -2 is not a real warp).
  ShadowChecker checker;
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(4));
  launcher.set_audit(&checker);
  launcher.launch("raw_escape_word", gpusim::LaunchShape{1, 8, 0, 8},
                  [&](gpusim::BlockContext& ctx) {
                    gpusim::SharedTile<int> tile(ctx, 8);
                    tile.raw()[3] = 42;  // escape-hatch init, no charged write
                    std::vector<std::int64_t> addrs{3};
                    std::vector<int> vals(1);
                    tile.gather(0, addrs, vals);   // read: initialized via raw
                    tile.scatter(1, addrs, vals);  // write: no race with -2
                  });
  EXPECT_TRUE(checker.summary().clean());
}

TEST(Shadow, CrossWarpSameEpochWriteInactiveLaneIsNoRace) {
  // Warp 1's scatter would collide with warp 0 on word 2 — but only through
  // a lane that is inactive, and inactive lanes write nothing.
  for (const bool active : {false, true}) {
    ShadowChecker checker;
    gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(4));
    launcher.set_audit(&checker);
    launcher.launch("inactive_collision", gpusim::LaunchShape{1, 8, 0, 8},
                    [&](gpusim::BlockContext& ctx) {
                      gpusim::SharedTile<int> tile(ctx, 8);
                      std::vector<std::int64_t> a0{0, 1, 2, 3};
                      std::vector<int> vals{1, 2, 3, 4};
                      tile.scatter(0, a0, vals);
                      std::vector<std::int64_t> a1{
                          active ? 2 : gpusim::kInactiveLane, 4, 5, 6};
                      tile.scatter(1, a1, vals);  // same epoch, other warp
                    });
    const ShadowSummary s = checker.summary();
    if (active)
      EXPECT_EQ(count_kind(s, "write-write-race"), 1u);
    else
      EXPECT_TRUE(s.clean()) << s.violations.front().detail;
  }
}

TEST(Shadow, CertifiedSkipMarksRangeWrittenAndCounts) {
  ShadowChecker checker;
  checker.on_shared_alloc(0, 0, 16);

  // A certified bulk write covering [0, 8): trusted wholesale.
  checker.on_certified_skip(0, 0, 0, 8, /*accesses=*/4, /*lanes=*/4,
                            /*is_write=*/true);
  EXPECT_EQ(checker.summary().skipped_accesses, 4u);

  // Reads inside the certified range are initialized...
  const std::vector<std::int64_t> in{0, 1, 2, 3};
  checker.on_shared_access(0, 0, 0, "unit", in, /*is_write=*/false, 4, 0);
  EXPECT_EQ(count_kind(checker.summary(), "uninitialized-read"), 0u);
  // ...and a later per-lane write does not race the certificate marker.
  const std::vector<std::int64_t> one{2};
  checker.on_shared_access(0, 0, 5, "unit", one, /*is_write=*/true, 4, 0);
  EXPECT_EQ(count_kind(checker.summary(), "write-write-race"), 0u);
  // Words beyond the certified range stay uninitialized.
  const std::vector<std::int64_t> out{12, 13};
  checker.on_shared_access(0, 0, 0, "unit", out, /*is_write=*/false, 4, 0);
  EXPECT_EQ(count_kind(checker.summary(), "uninitialized-read"), 2u);

  // A certified read skip only counts; it marks nothing.
  checker.on_certified_skip(0, 0, 0, 16, /*accesses=*/7, /*lanes=*/4,
                            /*is_write=*/false);
  EXPECT_EQ(checker.summary().skipped_accesses, 11u);
}

TEST(Shadow, StaticSafetyWitnessesReplayDynamically) {
  // The two safety-broken ablations: the Pass 3 static analyzer refutes each
  // with a concrete lane/epoch witness, and replaying the ablation's actual
  // address streams (PrimitiveLowering::concrete — the same arithmetic the
  // executors would run) through the dynamic shadow checker rediscovers the
  // same violation kind at the same word.
  struct Case {
    const char* name;
    const char* kind;
  };
  for (const Case c : {Case{"cf_rank_scatter_off_by_we", "out-of-bounds"},
                       Case{"cf_permute_read_before_scatter", "uninitialized-read"}}) {
    SCOPED_TRACE(c.name);
    const ProofObject po = verify_primitive_safety(c.name, 8, 4);
    ASSERT_EQ(po.verdict, Verdict::kCounterexample);
    ASSERT_EQ(po.counterexample.kind, c.kind);
    const Counterexample& cx = po.counterexample;

    const cfprims::CFPrimitive* prim = cfprims::find_primitive(c.name);
    ASSERT_NE(prim, nullptr);
    const cfprims::PrimitiveLowering lo =
        prim->lower(cfprims::PrimShape{cx.w, cx.e, cx.u, 0});

    // A deliberately high violation cap: the replay passes charged_conflicts
    // = 0, so conflict-mismatch noise must not crowd out the safety witness.
    ShadowChecker checker(/*max_violations=*/1u << 20);
    if (lo.tiles.empty()) {
      checker.on_shared_alloc(0, 0, static_cast<std::size_t>(lo.shape.tile()));
      checker.on_shared_raw(0, 0);
    } else {
      for (std::size_t t = 0; t < lo.tiles.size(); ++t) {
        checker.on_shared_alloc(0, static_cast<std::uint64_t>(t),
                                static_cast<std::size_t>(lo.tiles[t].words));
        if (lo.tiles[t].extern_init)
          checker.on_shared_raw(0, static_cast<std::uint64_t>(t));
      }
    }

    // Replay epoch by epoch, warp-wide chunk by chunk, with a barrier
    // between epochs — exactly the structure the static pass reasoned over.
    std::vector<int> epochs;
    for (const cfprims::AccessStream& st : lo.streams) epochs.push_back(st.epoch);
    std::sort(epochs.begin(), epochs.end());
    epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());
    for (std::size_t t = 0; t < epochs.size(); ++t) {
      if (t > 0) checker.on_barrier(0);
      // Streams in the same epoch have no barrier between them, so the
      // static pass quantifies over ALL intra-epoch interleavings.  The
      // adversarial schedule its witness names runs the un-barriered read
      // before the write it races with — replay reads first to realize it.
      for (const bool writes : {false, true})
      for (const cfprims::AccessStream& st : lo.streams) {
        if (st.epoch != epochs[t] || st.is_write != writes) continue;
        const int rounds = st.rounds_are_instances ? 1 : st.rounds;
        for (int j = 0; j < rounds; ++j) {
          for (std::int64_t base = 0; base < st.domain; base += cx.w) {
            std::vector<std::int64_t> addrs;
            for (std::int64_t i = base; i < std::min<std::int64_t>(base + cx.w, st.domain); ++i)
              addrs.push_back(st.concrete(i, j));
            // charged_conflicts is irrelevant here: the replay looks only at
            // the safety classes, not the conflict cross-check.
            checker.on_shared_access(0, static_cast<std::uint64_t>(st.tile),
                                     static_cast<int>(base / cx.w), st.name, addrs,
                                     st.is_write, cx.w, 0);
          }
        }
      }
    }

    const ShadowSummary sum = checker.summary();
    const std::size_t hits = count_kind(sum, c.kind);
    EXPECT_GT(hits, 0u) << "dynamic replay missed the statically-proved violation";
    // The statically-named witness word is among the dynamically flagged ones.
    bool witness_word_seen = false;
    for (const ShadowViolation& v : sum.violations)
      if (v.kind == c.kind && v.addr == cx.addr1) witness_word_seen = true;
    EXPECT_TRUE(witness_word_seen)
        << "static witness word " << cx.addr1 << " not flagged dynamically";
  }
}
