// Tests of the (E, u) parameter autotuner.
#include "analysis/autotune.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "cache/store.hpp"
#include "numtheory/numtheory.hpp"

using namespace cfmerge;
using namespace cfmerge::analysis;

TEST(Autotune, FindsThePapersParameterSetOnTuring) {
  // On the 2080 Ti model, (E=15, u=512) must rank at the top: coprime and
  // 100% occupancy — exactly the paper's finding versus Thrust's default.
  const auto candidates = enumerate_candidates(gpusim::DeviceSpec::rtx2080ti(), TuneOptions{});
  ASSERT_FALSE(candidates.empty());
  bool found_15_512_before_17_256 = false;
  std::size_t i15 = candidates.size(), i17 = candidates.size();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].e == 15 && candidates[i].u == 512) i15 = std::min(i15, i);
    if (candidates[i].e == 17 && candidates[i].u == 256) i17 = std::min(i17, i);
  }
  ASSERT_LT(i15, candidates.size()) << "E=15,u=512 missing";
  found_15_512_before_17_256 = i17 == candidates.size() || i15 < i17;
  EXPECT_TRUE(found_15_512_before_17_256);
  EXPECT_DOUBLE_EQ(candidates[i15].occupancy, 1.0);
  EXPECT_TRUE(candidates[i15].coprime);
}

TEST(Autotune, CandidatesRespectDeviceLimits) {
  const gpusim::DeviceSpec dev = gpusim::DeviceSpec::tiny(8);
  TuneOptions opts;
  opts.e_min = 2;
  opts.e_max = 10;
  opts.u_values = {8, 12, 16, 4096};
  const auto candidates = enumerate_candidates(dev, opts);
  for (const auto& c : candidates) {
    EXPECT_EQ(c.u % dev.warp_size, 0);
    EXPECT_LE(c.u, dev.max_threads_per_sm);
    EXPECT_NE(c.u, 12);  // not a power of two
    EXPECT_GT(c.occupancy, 0.0);
    EXPECT_EQ(c.coprime, numtheory::coprime(dev.warp_size, c.e));
  }
}

TEST(Autotune, StaticScorePenalizesNonCoprime) {
  const auto candidates = enumerate_candidates(gpusim::DeviceSpec::rtx2080ti(), TuneOptions{});
  for (const auto& c : candidates) {
    const double expect = c.occupancy * (c.coprime ? 1.0 : 0.85);
    EXPECT_DOUBLE_EQ(c.static_score, expect);
  }
}

TEST(Autotune, SlackFilterDropsLowOccupancy) {
  TuneOptions strict;
  strict.occupancy_slack = 1.0;  // only the best occupancy survives
  const auto top = enumerate_candidates(gpusim::DeviceSpec::rtx2080ti(), strict);
  ASSERT_FALSE(top.empty());
  const double best = top.front().occupancy;
  for (const auto& c : top) EXPECT_DOUBLE_EQ(c.occupancy, best);
}

TEST(Autotune, MeasureRanksByThroughput) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8, 2));
  TuneOptions opts;
  opts.e_min = 4;
  opts.e_max = 6;
  opts.u_values = {16, 32};
  auto candidates = enumerate_candidates(launcher.device(), opts);
  ASSERT_GE(candidates.size(), 2u);
  measure_candidates(launcher, candidates, opts, /*top_k=*/3, /*tiles=*/4, /*seed=*/1);
  const int limit = std::min<int>(3, static_cast<int>(candidates.size()));
  for (int i = 0; i + 1 < limit; ++i) {
    EXPECT_GE(candidates[static_cast<std::size_t>(i)].measured_throughput,
              candidates[static_cast<std::size_t>(i + 1)].measured_throughput);
    EXPECT_GT(candidates[static_cast<std::size_t>(i)].measured_throughput, 0.0);
  }
}

TEST(Autotune, StoreMemoizesMeasurementAcrossInstances) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "cfmerge_autotune_store";
  std::filesystem::remove_all(dir);

  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8, 2));
  TuneOptions opts;
  opts.e_min = 4;
  opts.e_max = 6;
  opts.u_values = {16, 32};

  // First "process": measures for real and persists the ranking.
  auto measured = enumerate_candidates(launcher.device(), opts);
  ASSERT_GE(measured.size(), 2u);
  {
    cache::PlanCacheStore store(dir);
    measure_candidates(launcher, measured, opts, /*top_k=*/3, /*tiles=*/4,
                       /*seed=*/1, &store);
    EXPECT_EQ(store.stats().hits, 0u);
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_EQ(store.stats().writes, 1u);
    ASSERT_TRUE(store.save());
  }

  // Second "process": a fresh store instance replays the identical ranking
  // without running a single calibration sort (pure disk hit).
  auto replayed = enumerate_candidates(launcher.device(), opts);
  {
    cache::PlanCacheStore store(dir);
    measure_candidates(launcher, replayed, opts, /*top_k=*/3, /*tiles=*/4,
                       /*seed=*/1, &store);
    EXPECT_EQ(store.stats().hits, 1u);
    EXPECT_EQ(store.stats().misses, 0u);
    EXPECT_EQ(store.stats().writes, 0u);
  }
  ASSERT_EQ(replayed.size(), measured.size());
  for (std::size_t i = 0; i < measured.size(); ++i) {
    EXPECT_EQ(replayed[i].e, measured[i].e);
    EXPECT_EQ(replayed[i].u, measured[i].u);
    EXPECT_DOUBLE_EQ(replayed[i].measured_throughput, measured[i].measured_throughput);
  }

  // A different request shape (another seed) misses and re-measures.
  auto other = enumerate_candidates(launcher.device(), opts);
  {
    cache::PlanCacheStore store(dir);
    measure_candidates(launcher, other, opts, /*top_k=*/3, /*tiles=*/4,
                       /*seed=*/2, &store);
    EXPECT_EQ(store.stats().hits, 0u);
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_EQ(store.stats().writes, 1u);
  }
}

TEST(Autotune, RejectsBadRange) {
  TuneOptions opts;
  opts.e_min = 10;
  opts.e_max = 5;
  EXPECT_THROW((void)enumerate_candidates(gpusim::DeviceSpec::tiny(8), opts),
               std::invalid_argument);
}
