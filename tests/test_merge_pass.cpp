// Tests of the global merge pass: partition kernel + merge kernel, for both
// variants, including the central conflict claims.
#include "sort/merge_pass.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

using namespace cfmerge;
using namespace cfmerge::sort;

namespace {

struct PassResult {
  std::vector<int> out;
  gpusim::PhaseCounters phases;
  std::uint64_t merge_conflicts = 0;
  std::uint64_t merge_accesses = 0;
};

// Runs one full pass (partition + merge) over `data` whose runs of length
// `run` are each sorted.
PassResult run_pass(int w, const MergeConfig& cfg, std::vector<int> data, std::int64_t run) {
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(w));
  const std::int64_t n = static_cast<std::int64_t>(data.size());
  const std::int64_t tile = cfg.tile();
  EXPECT_EQ(n % tile, 0);
  const PassGeometry geom{n, run};
  const int num_tiles = static_cast<int>(n / tile);
  std::vector<std::int64_t> boundaries(static_cast<std::size_t>(num_tiles) + 1, 0);
  std::vector<int> out(data.size());

  launcher.launch("partition", gpusim::LaunchShape{1, cfg.u, 0, 24},
                  [&](gpusim::BlockContext& ctx) {
                    merge_partition_body<int>(ctx, std::span<const int>(data), geom, tile,
                                              std::span<std::int64_t>(boundaries));
                  });
  launcher.launch("merge", gpusim::LaunchShape{num_tiles, cfg.u, 0, 32},
                  [&](gpusim::BlockContext& ctx) {
                    merge_tile_body<int>(ctx, std::span<const int>(data),
                                         std::span<int>(out), geom, cfg,
                                         std::span<const std::int64_t>(boundaries));
                  });
  PassResult r;
  r.out = std::move(out);
  r.phases = launcher.phase_counters();
  for (const auto& [name, c] : r.phases.phases()) {
    if (name == "merge.merge") {
      r.merge_conflicts = c.bank_conflicts;
      r.merge_accesses = c.shared_accesses;
    }
  }
  return r;
}

std::vector<int> make_runs(std::mt19937_64& rng, std::int64_t n, std::int64_t run) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<int>(rng() % 100000);
  for (std::int64_t base = 0; base < n; base += run)
    std::sort(v.begin() + static_cast<std::ptrdiff_t>(base),
              v.begin() + static_cast<std::ptrdiff_t>(std::min(base + run, n)));
  return v;
}

std::vector<int> merged_reference(const std::vector<int>& data, std::int64_t run) {
  std::vector<int> expect(data.size());
  const auto n = static_cast<std::int64_t>(data.size());
  for (std::int64_t base = 0; base < n; base += 2 * run) {
    const std::int64_t mid = std::min(base + run, n);
    const std::int64_t end = std::min(base + 2 * run, n);
    std::merge(data.begin() + base, data.begin() + mid, data.begin() + mid,
               data.begin() + end, expect.begin() + base);
  }
  return expect;
}

}  // namespace

class MergePassBothVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(MergePassBothVariants, MergesRunsCorrectly) {
  std::mt19937_64 rng(1);
  for (const auto& [w, e, u, tiles] : std::vector<std::tuple<int, int, int, int>>{
           {8, 5, 16, 2}, {8, 6, 16, 4}, {16, 7, 32, 2}, {8, 8, 16, 4}}) {
    MergeConfig cfg;
    cfg.e = e;
    cfg.u = u;
    cfg.variant = GetParam();
    const std::int64_t tile = cfg.tile();
    const std::int64_t n = tile * tiles;
    const std::vector<int> data = make_runs(rng, n, tile);
    const auto result = run_pass(w, cfg, data, tile);
    EXPECT_EQ(result.out, merged_reference(data, tile))
        << "w=" << w << " e=" << e << " u=" << u << " variant=" << static_cast<int>(GetParam());
  }
}

TEST_P(MergePassBothVariants, HandlesLoneRunAtEnd) {
  // 3 tiles: one pair + a lone run (empty B).
  std::mt19937_64 rng(2);
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.variant = GetParam();
  const std::int64_t tile = cfg.tile();
  const std::vector<int> data = make_runs(rng, 3 * tile, tile);
  const auto result = run_pass(8, cfg, data, tile);
  EXPECT_EQ(result.out, merged_reference(data, tile));
}

TEST_P(MergePassBothVariants, SecondLevelRuns) {
  // Merging runs longer than one tile (run = 2 tiles).
  std::mt19937_64 rng(3);
  MergeConfig cfg;
  cfg.e = 6;
  cfg.u = 16;
  cfg.variant = GetParam();
  const std::int64_t tile = cfg.tile();
  const std::vector<int> data = make_runs(rng, 8 * tile, 2 * tile);
  const auto result = run_pass(8, cfg, data, 2 * tile);
  EXPECT_EQ(result.out, merged_reference(data, 2 * tile));
}

TEST_P(MergePassBothVariants, DuplicateKeys) {
  std::mt19937_64 rng(4);
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  cfg.variant = GetParam();
  const std::int64_t tile = cfg.tile();
  std::vector<int> data(static_cast<std::size_t>(2 * tile));
  for (auto& x : data) x = static_cast<int>(rng() % 3);
  for (std::int64_t base = 0; base < 2 * tile; base += tile)
    std::sort(data.begin() + base, data.begin() + base + tile);
  const auto result = run_pass(8, cfg, data, tile);
  EXPECT_TRUE(std::is_sorted(result.out.begin(), result.out.end()));
}

INSTANTIATE_TEST_SUITE_P(Variants, MergePassBothVariants,
                         ::testing::Values(Variant::Baseline, Variant::CFMerge),
                         [](const ::testing::TestParamInfo<Variant>& info) {
                           return info.param == Variant::Baseline ? "Baseline" : "CFMerge";
                         });

TEST(MergePassConflicts, CFMergeHasZeroMergeConflicts) {
  // The paper's nvprof validation: no bank conflicts during merging, for
  // coprime and non-coprime E alike.
  std::mt19937_64 rng(5);
  for (const auto& [w, e, u] :
       std::vector<std::tuple<int, int, int>>{{8, 5, 16}, {8, 6, 16}, {8, 8, 16},
                                              {16, 12, 32}, {32, 15, 64}, {32, 16, 64}}) {
    MergeConfig cfg;
    cfg.e = e;
    cfg.u = u;
    cfg.variant = Variant::CFMerge;
    const std::int64_t tile = cfg.tile();
    const std::vector<int> data = make_runs(rng, 4 * tile, tile);
    const auto result = run_pass(w, cfg, data, tile);
    EXPECT_EQ(result.merge_conflicts, 0u) << "w=" << w << " e=" << e;
    EXPECT_GT(result.merge_accesses, 0u);
  }
}

TEST(MergePassConflicts, DisablingRhoBringsConflictsBack) {
  // Ablation of Section 3.2: with gcd(w, E) > 1 and rho disabled, the
  // gather conflicts again; with rho it is conflict free.
  std::mt19937_64 rng(6);
  MergeConfig cfg;
  cfg.e = 6;  // gcd(8, 6) = 2
  cfg.u = 16;
  cfg.variant = Variant::CFMerge;
  const std::int64_t tile = cfg.tile();
  const std::vector<int> data = make_runs(rng, 4 * tile, tile);

  cfg.disable_rho = true;
  const auto broken = run_pass(8, cfg, data, tile);
  EXPECT_GT(broken.merge_conflicts, 0u);
  EXPECT_EQ(broken.out, merged_reference(data, tile));  // still correct

  cfg.disable_rho = false;
  const auto fixed = run_pass(8, cfg, data, tile);
  EXPECT_EQ(fixed.merge_conflicts, 0u);
}

TEST(MergePassConflicts, BaselineConflictsAreSmallOnRandomInputs) {
  // Karsin et al.: random inputs cause a small constant number of conflicts
  // per access in the baseline (2-3 on real sizes).
  std::mt19937_64 rng(7);
  MergeConfig cfg;
  cfg.e = 15;
  cfg.u = 64;
  cfg.variant = Variant::Baseline;
  const std::int64_t tile = cfg.tile();
  const std::vector<int> data = make_runs(rng, 4 * tile, tile);
  const auto result = run_pass(32, cfg, data, tile);
  ASSERT_GT(result.merge_accesses, 0u);
  const double per_access = static_cast<double>(result.merge_conflicts) /
                            static_cast<double>(result.merge_accesses);
  EXPECT_GT(per_access, 0.1);  // conflicts do occur...
  EXPECT_LT(per_access, 8.0);  // ...but far from the w-fold worst case
}

TEST(MergePass, PartitionBoundariesMatchHostMergePath) {
  std::mt19937_64 rng(8);
  MergeConfig cfg;
  cfg.e = 5;
  cfg.u = 16;
  const std::int64_t tile = cfg.tile();
  const std::int64_t n = 8 * tile;
  const std::vector<int> data = make_runs(rng, n, 2 * tile);
  const PassGeometry geom{n, 2 * tile};
  std::vector<std::int64_t> boundaries(static_cast<std::size_t>(n / tile) + 1, -1);
  gpusim::Launcher launcher(gpusim::DeviceSpec::tiny(8));
  launcher.launch("partition", gpusim::LaunchShape{1, cfg.u, 0, 24},
                  [&](gpusim::BlockContext& ctx) {
                    merge_partition_body<int>(ctx, std::span<const int>(data), geom, tile,
                                              std::span<std::int64_t>(boundaries));
                  });
  for (std::int64_t t = 0; t * tile <= n; ++t) {
    const std::int64_t pos = t * tile;
    const std::int64_t base = pos >= n ? n : geom.pair_base(pos);
    const std::int64_t la = geom.a_len(base);
    const std::int64_t lb = geom.b_len(base);
    const std::span<const int> a(data.data() + base, static_cast<std::size_t>(la));
    const std::span<const int> b(data.data() + base + la, static_cast<std::size_t>(lb));
    EXPECT_EQ(boundaries[static_cast<std::size_t>(t)],
              mergepath::merge_path<int>(std::min(pos - base, la + lb), a, b))
        << "boundary " << t;
  }
}

TEST(MergePass, CfOutputScatterKeepsStoreConflictFreeForNonCoprimeE) {
  // With gcd(w,E) > 1 the baseline's stride-E output scatter conflicts;
  // CF-Merge's rho-permuted output write (inverse dual scatter) does not.
  std::mt19937_64 rng(9);
  const int w = 8;
  MergeConfig cfg;
  cfg.e = 6;
  cfg.u = 16;
  const std::int64_t tile = cfg.tile();
  const std::vector<int> data = make_runs(rng, 2 * tile, tile);

  cfg.variant = Variant::Baseline;
  const auto base = run_pass(w, cfg, data, tile);
  cfg.variant = Variant::CFMerge;
  cfg.cf_output_scatter = true;
  const auto cf = run_pass(w, cfg, data, tile);

  auto store_conflicts = [](const PassResult& r) {
    for (const auto& [name, c] : r.phases.phases())
      if (name == "merge.store") return c.bank_conflicts;
    return std::uint64_t{0};
  };
  EXPECT_GT(store_conflicts(base), 0u);
  EXPECT_EQ(store_conflicts(cf), 0u);
  EXPECT_EQ(cf.out, base.out);
}
