// Integration tests: the full pipeline on the paper's device spec and
// parameter sets, checking the cross-module claims end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "cfmerge.hpp"

using namespace cfmerge;

namespace {
std::vector<int> rand_vec(std::int64_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<int>(rng());
  return v;
}
}  // namespace

TEST(Integration, PaperParametersOnRtx2080Ti) {
  // Full-size blocks (E=15, u=512) on the paper's device model; modest n.
  gpusim::Launcher launcher(gpusim::DeviceSpec::rtx2080ti());
  sort::MergeConfig cfg;
  cfg.e = 15;
  cfg.u = 512;
  const std::int64_t n = 512LL * 15 * 4;  // 4 tiles
  for (const sort::Variant v : {sort::Variant::Baseline, sort::Variant::CFMerge}) {
    cfg.variant = v;
    std::vector<int> data = rand_vec(n, 3);
    std::vector<int> expect = data;
    std::sort(expect.begin(), expect.end());
    const auto report = sort::merge_sort(launcher, data, cfg);
    EXPECT_EQ(data, expect);
    EXPECT_EQ(report.passes, 2);
    if (v == sort::Variant::CFMerge) {
      EXPECT_EQ(report.merge_conflicts(), 0u);
    }
  }
}

TEST(Integration, OccupancyStoryE15VsE17) {
  // The paper's explanation of why (E=15,u=512) beats (E=17,u=256): both
  // sort correctly, and the timing model sees the occupancy difference.
  gpusim::Launcher launcher(gpusim::DeviceSpec::rtx2080ti());
  auto occupancy_of = [&](int e, int u) {
    sort::MergeConfig cfg;
    cfg.e = e;
    cfg.u = u;
    cfg.variant = sort::Variant::CFMerge;
    std::vector<int> data = rand_vec(static_cast<std::int64_t>(u) * e * 2, 4);
    const auto report = sort::merge_sort(launcher, data, cfg);
    double occ = 1.0;
    for (const auto& k : report.kernels)
      if (k.name == "merge_pass") occ = k.timing.occupancy.occupancy;
    return occ;
  };
  EXPECT_DOUBLE_EQ(occupancy_of(15, 512), 1.0);
  EXPECT_LT(occupancy_of(17, 256), 1.0);
}

TEST(Integration, WorstCaseSlowsBaselineNotCF) {
  // The paper's Figure 6 story.  A scaled Turing (4 SMs, same warp/bank
  // architecture) lets 64 simulated tiles reach the throughput-bound regime
  // that paper-scale n reaches on the full 68-SM device.
  const worstcase::Params p{32, 15};
  const int u = 512;
  const std::int64_t n = 512LL * 15 * 64;
  gpusim::Launcher launcher(gpusim::DeviceSpec::scaled_turing(4));
  sort::MergeConfig cfg;
  cfg.e = 15;
  cfg.u = u;

  auto run = [&](sort::Variant v, bool worst) {
    cfg.variant = v;
    std::vector<int> data;
    if (worst) {
      const auto w32 = worstcase::worst_case_sort_input(p, u, n);
      data.assign(w32.begin(), w32.end());
    } else {
      data = rand_vec(n, 5);
    }
    const auto report = sort::merge_sort(launcher, data, cfg);
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
    return report;
  };

  const auto base_rand = run(sort::Variant::Baseline, false);
  const auto base_worst = run(sort::Variant::Baseline, true);
  const auto cf_worst = run(sort::Variant::CFMerge, true);
  const auto cf_rand = run(sort::Variant::CFMerge, false);

  // Baseline suffers on the adversarial input.
  EXPECT_GT(base_worst.merge_conflicts(), 4 * base_rand.merge_conflicts());
  EXPECT_GT(base_worst.microseconds, 1.15 * base_rand.microseconds);
  // CF-Merge is input-insensitive and conflict free.
  EXPECT_EQ(cf_worst.merge_conflicts(), 0u);
  EXPECT_NEAR(cf_worst.microseconds, cf_rand.microseconds, 0.05 * cf_rand.microseconds);
  // On the worst case CF-Merge clearly beats the baseline...
  EXPECT_LT(1.2 * cf_worst.microseconds, base_worst.microseconds);
  // ...while staying comparable to the baseline on random inputs (the
  // paper: "virtually the same" — allow a modest band either way).
  EXPECT_NEAR(cf_rand.microseconds, base_rand.microseconds,
              0.25 * base_rand.microseconds);
}

TEST(Integration, RandomInputConflictRateMatchesKarsinRange) {
  // Karsin et al. measured 2-3 conflicts per step on random inputs for the
  // real (w=32, E=15/17) parameters.  Our simulator should land in a
  // comparable small-constant range (loose bounds: > 0.5, < 6).
  gpusim::Launcher launcher(gpusim::DeviceSpec::rtx2080ti());
  sort::MergeConfig cfg;
  cfg.e = 15;
  cfg.u = 512;
  cfg.variant = sort::Variant::Baseline;
  std::vector<int> data = rand_vec(512LL * 15 * 8, 6);
  const auto report = sort::merge_sort(launcher, data, cfg);
  const double per_access = analysis::merge_conflicts_per_access(report);
  EXPECT_GT(per_access, 0.5);
  EXPECT_LT(per_access, 6.0);
}

TEST(Integration, GatherValidatorAgreesWithKernelCounters) {
  // The combinatorial validator and the simulated kernel must agree that
  // the CF schedule is conflict free for the paper's parameters.
  for (const auto& [e, u] : std::vector<std::pair<int, int>>{{15, 512}, {17, 256}}) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(e));
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(u));
    for (auto& s : sizes) s = static_cast<std::int64_t>(rng() % (e + 1));
    const auto res = gather::validate_sizes(32, e, u, sizes);
    EXPECT_TRUE(res.ok) << res.error;
  }
}

TEST(Integration, ThroughputRampsWithN) {
  // Small grids underutilize the simulated device; throughput should be
  // non-decreasing (within tolerance) as n grows — the left side of the
  // paper's Figure 5 curves.
  gpusim::Launcher launcher(gpusim::DeviceSpec::rtx2080ti());
  sort::MergeConfig cfg;
  cfg.e = 15;
  cfg.u = 512;
  cfg.variant = sort::Variant::CFMerge;
  double prev = 0.0;
  for (const std::int64_t tiles : {1, 4, 16}) {
    std::vector<int> data = rand_vec(512LL * 15 * tiles, 7);
    const auto report = sort::merge_sort(launcher, data, cfg);
    EXPECT_GT(report.throughput(), prev * 0.7);  // allow pass-count steps
    prev = report.throughput();
  }
}
