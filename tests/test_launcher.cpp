// Tests of the kernel launcher: grid execution, aggregation, history.
#include "gpusim/launcher.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpusim/memory_views.hpp"

using namespace cfmerge::gpusim;

TEST(Launcher, RunsEveryBlockOnce) {
  Launcher launcher(DeviceSpec::tiny(8));
  std::vector<int> visits(10, 0);
  const LaunchShape shape{10, 8, 0, 8};
  launcher.launch("visit", shape, [&](BlockContext& ctx) {
    ++visits[static_cast<std::size_t>(ctx.block_id())];
    EXPECT_EQ(ctx.num_blocks(), 10);
  });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(Launcher, AggregatesCountersAcrossBlocks) {
  Launcher launcher(DeviceSpec::tiny(8));
  const LaunchShape shape{4, 8, 0, 8};
  const auto report = launcher.launch("work", shape, [&](BlockContext& ctx) {
    ctx.charge_compute(0, 10);
    std::vector<std::int64_t> addrs{0, 1, 2, 3, 4, 5, 6, 7};
    ctx.charge_shared(0, addrs);
  });
  EXPECT_EQ(report.total().warp_instructions, 40u);
  EXPECT_EQ(report.total().shared_accesses, 4u);
  EXPECT_EQ(report.name, "work");
}

TEST(Launcher, MeanAndMaxBlockChain) {
  Launcher launcher(DeviceSpec::tiny(8));
  const LaunchShape shape{2, 8, 0, 8};
  const auto report = launcher.launch("chains", shape, [&](BlockContext& ctx) {
    ctx.charge_compute(0, ctx.block_id() == 0 ? 100 : 300);
  });
  EXPECT_DOUBLE_EQ(report.mean_block_chain, 200.0);
  EXPECT_DOUBLE_EQ(report.max_block_chain, 300.0);
}

TEST(Launcher, SharedBytesDiscoveredFromKernel) {
  Launcher launcher(DeviceSpec::tiny(8));
  const LaunchShape shape{1, 8, 0, 8};
  const auto report = launcher.launch("alloc", shape, [&](BlockContext& ctx) {
    SharedTile<int> tile(ctx, 256);
    (void)tile;
  });
  EXPECT_EQ(report.shape.shared_bytes_per_block, 256 * sizeof(int));
  EXPECT_GT(report.timing.occupancy.blocks_per_sm, 0);
}

TEST(Launcher, HistoryAccumulatesAndClears) {
  Launcher launcher(DeviceSpec::tiny(8));
  const LaunchShape shape{1, 8, 0, 8};
  launcher.launch("a", shape, [](BlockContext& ctx) { ctx.charge_compute(0, 5); });
  launcher.launch("b", shape, [](BlockContext& ctx) { ctx.charge_compute(0, 7); });
  EXPECT_EQ(launcher.history().size(), 2u);
  EXPECT_EQ(launcher.total_counters().warp_instructions, 12u);
  EXPECT_GT(launcher.total_microseconds(), 0.0);
  launcher.clear_history();
  EXPECT_TRUE(launcher.history().empty());
}

TEST(Launcher, PhaseCountersMergedAcrossKernels) {
  Launcher launcher(DeviceSpec::tiny(8));
  const LaunchShape shape{2, 8, 0, 8};
  launcher.launch("k1", shape, [](BlockContext& ctx) {
    ctx.phase("load");
    ctx.charge_compute(0, 1);
  });
  launcher.launch("k2", shape, [](BlockContext& ctx) {
    ctx.phase("load");
    ctx.charge_compute(0, 2);
    ctx.phase("merge");
    ctx.charge_compute(0, 3);
  });
  const PhaseCounters merged = launcher.phase_counters();
  std::uint64_t load = 0, merge = 0;
  for (const auto& [name, c] : merged.phases()) {
    if (name == "load") load = c.warp_instructions;
    if (name == "merge") merge = c.warp_instructions;
  }
  EXPECT_EQ(load, 6u);   // 1*2 blocks + 2*2 blocks
  EXPECT_EQ(merge, 6u);  // 3*2 blocks
}

TEST(Launcher, EmptyGridRejected) {
  Launcher launcher(DeviceSpec::tiny(8));
  EXPECT_THROW(launcher.launch("x", LaunchShape{0, 8, 0, 8}, [](BlockContext&) {}),
               std::invalid_argument);
}

TEST(Launcher, DataActuallyMovesThroughViews) {
  // A miniature end-to-end kernel: each block reverses its own 16-element
  // tile, staging through shared memory.
  Launcher launcher(DeviceSpec::tiny(8));
  std::vector<int> data(64);
  std::iota(data.begin(), data.end(), 0);
  const LaunchShape shape{4, 8, 0, 8};
  launcher.launch("tile_reverse", shape, [&](BlockContext& ctx) {
    GlobalView<int> view(ctx, std::span<int>(data), 0);
    const std::int64_t base = ctx.block_id() * 16;
    SharedTile<int> stage(ctx, 16);
    std::vector<std::int64_t> src(8), dst(8);
    std::vector<int> vals(8);
    for (int half = 0; half < 2; ++half) {
      for (int l = 0; l < 8; ++l) {
        const std::int64_t t = half * 8 + l;
        src[static_cast<std::size_t>(l)] = base + t;
        dst[static_cast<std::size_t>(l)] = 15 - t;
      }
      view.gather(0, src, vals);
      stage.scatter(0, dst, vals);
    }
    ctx.barrier();
    for (int half = 0; half < 2; ++half) {
      for (int l = 0; l < 8; ++l) {
        const std::int64_t t = half * 8 + l;
        src[static_cast<std::size_t>(l)] = t;
        dst[static_cast<std::size_t>(l)] = base + t;
      }
      stage.gather(0, src, vals);
      view.scatter(0, dst, vals);
    }
  });
  for (int b = 0; b < 4; ++b)
    for (int i = 0; i < 16; ++i)
      EXPECT_EQ(data[static_cast<std::size_t>(b * 16 + i)], b * 16 + 15 - i);
}
