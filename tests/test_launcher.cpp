// Tests of the kernel launcher: grid execution, aggregation, history, and
// the parallel block executor's determinism contract (bit-identical reports
// for every worker-thread count).
#include "gpusim/launcher.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "gpusim/memory_views.hpp"

using namespace cfmerge::gpusim;

TEST(Launcher, RunsEveryBlockOnce) {
  Launcher launcher(DeviceSpec::tiny(8));
  std::vector<int> visits(10, 0);
  const LaunchShape shape{10, 8, 0, 8};
  launcher.launch("visit", shape, [&](BlockContext& ctx) {
    ++visits[static_cast<std::size_t>(ctx.block_id())];
    EXPECT_EQ(ctx.num_blocks(), 10);
  });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(Launcher, AggregatesCountersAcrossBlocks) {
  Launcher launcher(DeviceSpec::tiny(8));
  const LaunchShape shape{4, 8, 0, 8};
  const auto report = launcher.launch("work", shape, [&](BlockContext& ctx) {
    ctx.charge_compute(0, 10);
    std::vector<std::int64_t> addrs{0, 1, 2, 3, 4, 5, 6, 7};
    ctx.charge_shared(0, addrs);
  });
  EXPECT_EQ(report.total().warp_instructions, 40u);
  EXPECT_EQ(report.total().shared_accesses, 4u);
  EXPECT_EQ(report.name, "work");
}

TEST(Launcher, MeanAndMaxBlockChain) {
  Launcher launcher(DeviceSpec::tiny(8));
  const LaunchShape shape{2, 8, 0, 8};
  const auto report = launcher.launch("chains", shape, [&](BlockContext& ctx) {
    ctx.charge_compute(0, ctx.block_id() == 0 ? 100 : 300);
  });
  EXPECT_DOUBLE_EQ(report.mean_block_chain, 200.0);
  EXPECT_DOUBLE_EQ(report.max_block_chain, 300.0);
}

TEST(Launcher, SharedBytesDiscoveredFromKernel) {
  Launcher launcher(DeviceSpec::tiny(8));
  const LaunchShape shape{1, 8, 0, 8};
  const auto report = launcher.launch("alloc", shape, [&](BlockContext& ctx) {
    SharedTile<int> tile(ctx, 256);
    (void)tile;
  });
  EXPECT_EQ(report.shape.shared_bytes_per_block, 256 * sizeof(int));
  EXPECT_GT(report.timing.occupancy.blocks_per_sm, 0);
}

TEST(Launcher, HistoryAccumulatesAndClears) {
  Launcher launcher(DeviceSpec::tiny(8));
  const LaunchShape shape{1, 8, 0, 8};
  launcher.launch("a", shape, [](BlockContext& ctx) { ctx.charge_compute(0, 5); });
  launcher.launch("b", shape, [](BlockContext& ctx) { ctx.charge_compute(0, 7); });
  EXPECT_EQ(launcher.history().size(), 2u);
  EXPECT_EQ(launcher.total_counters().warp_instructions, 12u);
  EXPECT_GT(launcher.total_microseconds(), 0.0);
  launcher.clear_history();
  EXPECT_TRUE(launcher.history().empty());
}

TEST(Launcher, PhaseCountersMergedAcrossKernels) {
  Launcher launcher(DeviceSpec::tiny(8));
  const LaunchShape shape{2, 8, 0, 8};
  launcher.launch("k1", shape, [](BlockContext& ctx) {
    ctx.phase("load");
    ctx.charge_compute(0, 1);
  });
  launcher.launch("k2", shape, [](BlockContext& ctx) {
    ctx.phase("load");
    ctx.charge_compute(0, 2);
    ctx.phase("merge");
    ctx.charge_compute(0, 3);
  });
  const PhaseCounters merged = launcher.phase_counters();
  std::uint64_t load = 0, merge = 0;
  for (const auto& [name, c] : merged.phases()) {
    if (name == "load") load = c.warp_instructions;
    if (name == "merge") merge = c.warp_instructions;
  }
  EXPECT_EQ(load, 6u);   // 1*2 blocks + 2*2 blocks
  EXPECT_EQ(merge, 6u);  // 3*2 blocks
}

TEST(Launcher, EmptyGridRejected) {
  Launcher launcher(DeviceSpec::tiny(8));
  EXPECT_THROW(launcher.launch("x", LaunchShape{0, 8, 0, 8}, [](BlockContext&) {}),
               std::invalid_argument);
}

TEST(Launcher, DataActuallyMovesThroughViews) {
  // A miniature end-to-end kernel: each block reverses its own 16-element
  // tile, staging through shared memory.
  Launcher launcher(DeviceSpec::tiny(8));
  std::vector<int> data(64);
  std::iota(data.begin(), data.end(), 0);
  const LaunchShape shape{4, 8, 0, 8};
  launcher.launch("tile_reverse", shape, [&](BlockContext& ctx) {
    GlobalView<int> view(ctx, std::span<int>(data), 0);
    const std::int64_t base = ctx.block_id() * 16;
    SharedTile<int> stage(ctx, 16);
    std::vector<std::int64_t> src(8), dst(8);
    std::vector<int> vals(8);
    for (int half = 0; half < 2; ++half) {
      for (int l = 0; l < 8; ++l) {
        const std::int64_t t = half * 8 + l;
        src[static_cast<std::size_t>(l)] = base + t;
        dst[static_cast<std::size_t>(l)] = 15 - t;
      }
      view.gather(0, src, vals);
      stage.scatter(0, dst, vals);
    }
    ctx.barrier();
    for (int half = 0; half < 2; ++half) {
      for (int l = 0; l < 8; ++l) {
        const std::int64_t t = half * 8 + l;
        src[static_cast<std::size_t>(l)] = t;
        dst[static_cast<std::size_t>(l)] = base + t;
      }
      stage.gather(0, src, vals);
      view.scatter(0, dst, vals);
    }
  });
  for (int b = 0; b < 4; ++b)
    for (int i = 0; i < 16; ++i)
      EXPECT_EQ(data[static_cast<std::size_t>(b * 16 + i)], b * 16 + 15 - i);
}

// ---------------------------------------------------------------------------
// Parallel block executor: bit-identical reports for every thread count.
// ---------------------------------------------------------------------------

namespace {

// A kernel with shared traffic (conflicting and conflict-free), global
// traffic (coalesced and strided), barriers, multiple phases and
// block-dependent costs — every counter and both chain statistics get
// non-trivial values.
void mixed_traffic_body(BlockContext& ctx) {
  const int w = ctx.lanes();
  std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));
  ctx.phase("load");
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    for (int l = 0; l < w; ++l)  // coalesced tile load
      addrs[static_cast<std::size_t>(l)] =
          (ctx.block_id() * ctx.threads() + warp * w + l) * 4;
    ctx.charge_gmem(warp, addrs, 4);
    for (int l = 0; l < w; ++l)  // conflict-free shared store
      addrs[static_cast<std::size_t>(l)] = warp * w + l;
    ctx.charge_shared(warp, addrs, true, true);
  }
  ctx.barrier();
  ctx.phase("search");
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    ctx.charge_compute(warp, 5 + static_cast<std::uint64_t>(ctx.block_id() % 3));
    for (int l = 0; l < w; ++l)  // strided: (block_id+2)-way conflicts vary
      addrs[static_cast<std::size_t>(l)] = l * (ctx.block_id() % w + 2);
    ctx.charge_shared(warp, addrs);
  }
  ctx.barrier();
  ctx.phase("merge");
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    for (int l = 0; l < w; ++l)  // same-bank: worst-case conflicts
      addrs[static_cast<std::size_t>(l)] = l * w;
    ctx.charge_shared(warp, addrs);
    for (int l = 0; l < w; ++l)  // strided global writes
      addrs[static_cast<std::size_t>(l)] = (ctx.block_id() + l * 64) * 4;
    ctx.charge_gmem(warp, addrs, 4, true, true);
    ctx.charge_compute(warp, 11);
  }
}

void expect_bit_identical(const KernelReport& a, const KernelReport& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.shape, b.shape);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.mean_block_chain, b.mean_block_chain);  // exact, not approximate
  EXPECT_EQ(a.max_block_chain, b.max_block_chain);
  EXPECT_EQ(a.timing.cycles, b.timing.cycles);
  EXPECT_EQ(a.timing.microseconds, b.timing.microseconds);
  EXPECT_EQ(a.timing.work_bound, b.timing.work_bound);
  EXPECT_EQ(a.timing.latency_bound, b.timing.latency_bound);
  EXPECT_STREQ(a.timing.limiter, b.timing.limiter);
}

}  // namespace

TEST(LauncherParallel, ReportBitIdenticalAcrossThreadCounts) {
  const LaunchShape shape{13, 16, 0, 16};
  Launcher seq(DeviceSpec::tiny(8));
  seq.set_threads(1);
  const KernelReport ref = seq.launch("mixed", shape, mixed_traffic_body);
  ASSERT_GT(ref.total().bank_conflicts, 0u);
  ASSERT_GT(ref.total().gmem_transactions, 0u);
  ASSERT_GT(ref.total().barriers, 0u);

  for (const int threads : {2, 4, 7}) {
    Launcher par(DeviceSpec::tiny(8));
    par.set_threads(threads);
    EXPECT_EQ(par.threads(), threads);
    const KernelReport r = par.launch("mixed", shape, mixed_traffic_body);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_bit_identical(ref, r);
  }
}

TEST(LauncherParallel, ThreadCountFromDeviceSpec) {
  DeviceSpec dev = DeviceSpec::tiny(8);
  dev.sim_threads = 3;
  Launcher launcher(dev);
  EXPECT_EQ(launcher.threads(), 3);
  launcher.set_threads(0);  // env unset in tests -> sequential default
  EXPECT_GE(launcher.threads(), 1);
  EXPECT_THROW(launcher.set_threads(-1), std::invalid_argument);
}

TEST(LauncherParallel, TraceSinkIdenticalUnderParallelism) {
  const LaunchShape shape{9, 16, 0, 16};
  auto run = [&](int threads, TraceSink& sink) {
    Launcher launcher(DeviceSpec::tiny(8));
    launcher.set_threads(threads);
    launcher.set_trace(&sink);
    launcher.launch("traced", shape, mixed_traffic_body);
  };
  TraceSink ref, par;
  run(1, ref);
  run(4, par);
  ASSERT_GT(ref.size(), 0u);
  ASSERT_EQ(ref.size(), par.size());
  EXPECT_EQ(ref.phase_names(), par.phase_names());
  EXPECT_EQ(ref.shared_conflicts(), par.shared_conflicts());
  // The full event streams (order, fields, per-lane addresses) must match;
  // the CSV serialization covers every field at once.
  std::ostringstream ref_csv, par_csv;
  ref.write_csv(ref_csv);
  par.write_csv(par_csv);
  EXPECT_EQ(ref_csv.str(), par_csv.str());
}

TEST(LauncherParallel, L2ForcesSequentialFallbackDeterministically) {
  DeviceSpec dev = DeviceSpec::tiny(8);
  dev.l2_bytes = 4096;  // enables the order-sensitive shared cache
  auto body = [](BlockContext& ctx) {
    std::vector<std::int64_t> addrs(static_cast<std::size_t>(ctx.lanes()));
    for (int rep = 0; rep < 3; ++rep)  // re-touch the same lines across blocks
      for (int warp = 0; warp < ctx.warps(); ++warp) {
        for (int l = 0; l < ctx.lanes(); ++l)
          addrs[static_cast<std::size_t>(l)] = (warp * ctx.lanes() + l) * 4;
        ctx.charge_gmem(warp, addrs, 4);
      }
  };
  const LaunchShape shape{6, 16, 0, 16};
  Launcher seq(dev);
  seq.set_threads(1);
  const KernelReport ref = seq.launch("l2", shape, body);
  ASSERT_GT(ref.total().l2_hits, 0u);

  Launcher par(dev);
  par.set_threads(4);  // must fall back to sequential while L2 is enabled
  const KernelReport r = par.launch("l2", shape, body);
  expect_bit_identical(ref, r);
  EXPECT_EQ(par.l2()->hits(), seq.l2()->hits());
  EXPECT_EQ(par.l2()->misses(), seq.l2()->misses());
}

TEST(LauncherParallel, ThrowingKernelLeavesLauncherIntact) {
  Launcher launcher(DeviceSpec::tiny(8));
  launcher.set_threads(4);
  TraceSink sink;
  launcher.set_trace(&sink);
  const LaunchShape shape{32, 8, 0, 8};
  auto faulty = [](BlockContext& ctx) {
    std::vector<std::int64_t> addrs{0, 1, 2, 3, 4, 5, 6, 7};
    ctx.charge_shared(0, addrs);
    if (ctx.block_id() % 5 == 2) throw std::runtime_error("injected fault");
  };
  EXPECT_THROW(launcher.launch("faulty", shape, faulty), std::runtime_error);
  // No partial report, no partial trace, no leaked threads (TSan-checked).
  EXPECT_TRUE(launcher.history().empty());
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(launcher.total_counters().shared_accesses, 0u);

  // The launcher stays usable after the failure.
  const auto report = launcher.launch("ok", shape, [](BlockContext& ctx) {
    ctx.charge_compute(0, 2);
  });
  EXPECT_EQ(report.total().warp_instructions, 64u);
  EXPECT_EQ(launcher.history().size(), 1u);
  EXPECT_EQ(sink.size(), 0u);
}

TEST(LauncherParallel, StressManyBlocksEveryBlockExactlyOnce) {
  constexpr int kBlocks = 768;
  Launcher launcher(DeviceSpec::tiny(8));
  launcher.set_threads(7);
  std::vector<std::atomic<int>> visits(kBlocks);
  const LaunchShape shape{kBlocks, 8, 0, 8};
  const KernelReport report = launcher.launch("stress", shape, [&](BlockContext& ctx) {
    visits[static_cast<std::size_t>(ctx.block_id())].fetch_add(1,
                                                              std::memory_order_relaxed);
    std::vector<std::int64_t> addrs(8);
    for (int l = 0; l < 8; ++l) addrs[static_cast<std::size_t>(l)] = l * 8;  // same bank
    ctx.charge_shared(0, addrs);
    ctx.barrier();
    ctx.charge_compute(0, static_cast<std::uint64_t>(ctx.block_id()) % 17);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  EXPECT_EQ(report.total().shared_accesses, static_cast<std::uint64_t>(kBlocks));
  EXPECT_EQ(report.total().barriers, static_cast<std::uint64_t>(kBlocks));

  Launcher seq(DeviceSpec::tiny(8));
  seq.set_threads(1);
  const KernelReport ref = seq.launch("stress", shape, [&](BlockContext& ctx) {
    visits[static_cast<std::size_t>(ctx.block_id())].fetch_add(1,
                                                              std::memory_order_relaxed);
    std::vector<std::int64_t> addrs(8);
    for (int l = 0; l < 8; ++l) addrs[static_cast<std::size_t>(l)] = l * 8;
    ctx.charge_shared(0, addrs);
    ctx.barrier();
    ctx.charge_compute(0, static_cast<std::uint64_t>(ctx.block_id()) % 17);
  });
  expect_bit_identical(ref, report);
}

TEST(LauncherParallel, DataParallelKernelStillMovesData) {
  // The tile-reverse kernel from above, now with a worker pool: blocks write
  // disjoint tiles, so the data outcome must be unchanged.
  Launcher launcher(DeviceSpec::tiny(8));
  launcher.set_threads(4);
  std::vector<int> data(256);
  std::iota(data.begin(), data.end(), 0);
  const LaunchShape shape{16, 8, 0, 8};
  launcher.launch("tile_reverse_par", shape, [&](BlockContext& ctx) {
    GlobalView<int> view(ctx, std::span<int>(data), 0);
    const std::int64_t base = ctx.block_id() * 16;
    SharedTile<int> stage(ctx, 16);
    std::vector<std::int64_t> src(8), dst(8);
    std::vector<int> vals(8);
    for (int half = 0; half < 2; ++half) {
      for (int l = 0; l < 8; ++l) {
        const std::int64_t t = half * 8 + l;
        src[static_cast<std::size_t>(l)] = base + t;
        dst[static_cast<std::size_t>(l)] = 15 - t;
      }
      view.gather(0, src, vals);
      stage.scatter(0, dst, vals);
    }
    ctx.barrier();
    for (int half = 0; half < 2; ++half) {
      for (int l = 0; l < 8; ++l) {
        const std::int64_t t = half * 8 + l;
        src[static_cast<std::size_t>(l)] = t;
        dst[static_cast<std::size_t>(l)] = base + t;
      }
      stage.gather(0, src, vals);
      view.scatter(0, dst, vals);
    }
  });
  for (int b = 0; b < 16; ++b)
    for (int i = 0; i < 16; ++i)
      EXPECT_EQ(data[static_cast<std::size_t>(b * 16 + i)], b * 16 + 15 - i);
}
