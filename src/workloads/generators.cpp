#include "workloads/generators.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>

#include "worstcase/builder.hpp"

namespace cfmerge::workloads {

const char* distribution_name(Distribution d) {
  switch (d) {
    case Distribution::UniformRandom: return "uniform-random";
    case Distribution::Sorted: return "sorted";
    case Distribution::Reverse: return "reverse";
    case Distribution::NearlySorted: return "nearly-sorted";
    case Distribution::FewDistinct: return "few-distinct";
    case Distribution::Sawtooth: return "sawtooth";
    case Distribution::WorstCase: return "worst-case";
  }
  return "unknown";
}

std::vector<Distribution> all_distributions() {
  return {Distribution::UniformRandom, Distribution::Sorted,     Distribution::Reverse,
          Distribution::NearlySorted,  Distribution::FewDistinct, Distribution::Sawtooth,
          Distribution::WorstCase};
}

std::vector<std::int32_t> generate(const WorkloadSpec& spec) {
  if (spec.n < 0) throw std::invalid_argument("generate: negative n");
  const auto n = static_cast<std::size_t>(spec.n);
  std::mt19937_64 rng(spec.seed);
  std::vector<std::int32_t> v(n);
  switch (spec.dist) {
    case Distribution::UniformRandom: {
      std::uniform_int_distribution<std::int32_t> d(std::numeric_limits<std::int32_t>::min(),
                                                    std::numeric_limits<std::int32_t>::max());
      for (auto& x : v) x = d(rng);
      break;
    }
    case Distribution::Sorted:
      std::iota(v.begin(), v.end(), 0);
      break;
    case Distribution::Reverse:
      for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::int32_t>(n - i);
      break;
    case Distribution::NearlySorted: {
      std::iota(v.begin(), v.end(), 0);
      if (n >= 2) {
        const std::size_t swaps = std::max<std::size_t>(1, n / 100);
        std::uniform_int_distribution<std::size_t> d(0, n - 2);
        for (std::size_t s = 0; s < swaps; ++s) {
          const std::size_t i = d(rng);
          std::swap(v[i], v[i + 1]);
        }
      }
      break;
    }
    case Distribution::FewDistinct: {
      std::uniform_int_distribution<std::int32_t> d(0, 15);
      for (auto& x : v) x = d(rng);
      break;
    }
    case Distribution::Sawtooth:
      for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::int32_t>(i % 1024);
      break;
    case Distribution::WorstCase: {
      worstcase::Params p{spec.w, spec.e};
      v = worstcase::worst_case_sort_input(p, spec.u, spec.n, spec.seed);
      break;
    }
  }
  return v;
}

}  // namespace cfmerge::workloads
