// Input distributions for the experiments.
//
// The paper evaluates uniform random inputs and the constructed worst-case
// inputs; the extra distributions here (sorted, reverse, nearly-sorted,
// few-distinct, sawtooth) are standard sorting-benchmark workloads used by
// the extended sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cfmerge::workloads {

enum class Distribution {
  UniformRandom,
  Sorted,
  Reverse,
  NearlySorted,   ///< sorted with ~1% random transpositions
  FewDistinct,    ///< values drawn from 16 distinct keys
  Sawtooth,       ///< ascending runs of 1024
  WorstCase,      ///< Section 4 adversarial permutation (needs w, E, u)
};

[[nodiscard]] const char* distribution_name(Distribution d);
[[nodiscard]] std::vector<Distribution> all_distributions();

struct WorkloadSpec {
  Distribution dist = Distribution::UniformRandom;
  std::int64_t n = 0;
  std::uint64_t seed = 42;
  // Parameters for Distribution::WorstCase:
  int w = 32;
  int e = 15;
  int u = 512;
};

/// Generates the input.  For WorstCase, n must satisfy the shape
/// requirements of worstcase::worst_case_sort_input.
[[nodiscard]] std::vector<std::int32_t> generate(const WorkloadSpec& spec);

}  // namespace cfmerge::workloads
