// Standalone conflict-free permutation / transposition kernels — the
// cf_permute and cf_transpose primitives of the Afshani–Sitchinava framing
// ("Sorting and Permuting without Bank Conflicts on GPUs"), executed on the
// simulated GPU with zero shared-memory bank conflicts for every w and
// every 1 < E <= w.
//
// Both ops move one tile of u*E elements per block and route every element
// through registers in rank order — thread i holds elements iE..iE+E-1 of
// the *logical* order between its gather and scatter phases, exactly like
// the CF merge — so per-thread work can later be fused in:
//
//   cf_permute  σ = rho (forward) or rho^-1 (inverse):
//     load      shmem[t]        = in[t]             contiguous
//     stage     staged[σ(t)]    = shmem[t]          CF copy through σ
//     gather    regs[i][j]      = staged[σ(iE+j)]   stride-E CRS (Cor. 3)
//     scatter   shmem[σ(iE+j)]  = regs[i][j]        stride-E CRS
//     store     out[t]          = shmem[t]          contiguous
//   net effect: out[σ(x)] = in[x]; forward then inverse is the identity.
//
//   cf_transpose  (u x E row-major -> E x u; inverse transposes back):
//     forward: stage through rho, CRS-gather regs[i][j] = in[iE+j], then a
//       contiguous scatter to shmem[j*u + i];
//     inverse: contiguous gather regs[i][j] = in[j*u + i], CRS-scatter
//       through rho into the staging tile, un-stage through rho.
//
// The rho trick is the same Corollary 3 argument as the merge gather: the
// stride-E addresses {iE + j : i in warp} form a CRS mod wE, and rho (or
// rho^-1 — see the cf_permute_inverse proof) maps them to distinct banks,
// while any w *contiguous* slots stay conflict-free through rho because
// banks repeat with period wE.  cfverify proves both claims per (w, E)
// via the generic primitive path (verify/primitive.cpp).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "cfprims/exec.hpp"
#include "gather/permutation.hpp"
#include "gpusim/launcher.hpp"
#include "sort/kernels.hpp"
#include "verify/certificate.hpp"

namespace cfmerge::cfprims {

enum class PermuteOp { kPermute, kTranspose };

/// Configuration of a standalone permute/transpose run.  Defaults mirror
/// the paper's sort parameters (E = 15, u = 512).
struct PermuteConfig {
  PermuteOp op = PermuteOp::kPermute;
  int e = 15;
  int u = 512;
  bool inverse = false;
  [[nodiscard]] std::int64_t tile() const {
    return static_cast<std::int64_t>(u) * e;
  }
};

/// Outcome of one engine-routed permute/transpose execution: the cost
/// picture of the single cf_permute / cf_transpose kernel.
struct PermuteReport {
  PermuteOp op = PermuteOp::kPermute;
  bool inverse = false;
  int e = 0;
  int u = 0;
  std::int64_t n = 0;        ///< caller's element count
  std::int64_t n_padded = 0; ///< rounded up to a tile multiple
  double microseconds = 0.0;
  double makespan_microseconds = 0.0;
  int graph_levels = 0;
  gpusim::Counters totals;
  gpusim::PhaseCounters phases;
  std::vector<gpusim::KernelReport> kernels;

  [[nodiscard]] double throughput() const {
    return microseconds > 0.0 ? static_cast<double>(n) / microseconds : 0.0;
  }
  [[nodiscard]] const char* op_name() const {
    return op == PermuteOp::kTranspose ? "cf_transpose" : "cf_permute";
  }
};

inline void validate_permute_config(const gpusim::DeviceSpec& dev,
                                    const PermuteConfig& cfg) {
  if (cfg.e <= 1 || cfg.e > dev.warp_size)
    throw std::invalid_argument("permute: need 1 < E <= w");
  if (cfg.u <= 0 || cfg.u % dev.warp_size != 0)
    throw std::invalid_argument("permute: u must be a positive multiple of w");
}

/// Device body: permutes/transposes tile `ctx.block_id()` of `in` into the
/// same slots of `out` (both are full padded arrays).
template <typename T>
void permute_tile_body(gpusim::BlockContext& ctx, std::span<const T> in,
                       std::span<T> out, const PermuteConfig& cfg) {
  const int w = ctx.lanes();
  const int u = ctx.threads();
  const int e = cfg.e;
  const std::int64_t tile = cfg.tile();
  assert(u == cfg.u);
  const std::int64_t base = static_cast<std::int64_t>(ctx.block_id()) * tile;
  const bool transpose = cfg.op == PermuteOp::kTranspose;
  const char* tag = transpose ? "transpose" : "permute";
  auto phase = [&](const char* sub) {
    ctx.phase(std::string(tag) + "." + sub);
  };

  gpusim::GlobalView<const T> gin(ctx,
                                  in.subspan(static_cast<std::size_t>(base),
                                             static_cast<std::size_t>(tile)),
                                  base);
  gpusim::GlobalView<T> gout(ctx,
                             out.subspan(static_cast<std::size_t>(base),
                                         static_cast<std::size_t>(tile)),
                             base);
  gpusim::SharedTile<T> shmem(ctx, static_cast<std::size_t>(tile));
  gpusim::SharedTile<T> staged(ctx, static_cast<std::size_t>(tile));
  std::vector<T> regs(static_cast<std::size_t>(tile));

  const gather::CircularShift rho(w, e, tile);
  // cf_permute applies sigma = rho forward, rho^-1 inverse; cf_transpose
  // always stages through forward rho (its inverse direction un-stages).
  auto sigma = [&](std::int64_t x) {
    return !transpose && cfg.inverse ? rho.inverse(x) : rho(x);
  };
  auto reg_of = [&](std::int64_t i, std::int64_t j) {
    return static_cast<std::size_t>(i * e + j);
  };
  const int vwarps = u / w;
  auto warp_of = [](int vw) { return vw; };

  // Proof tokens for the bulk accounting path (memoized process-wide): the
  // op's own primitive proof covers the sigma stage copy and CRS rounds;
  // cf_stage covers the contiguous load/store staging.
  const char* prim_name = transpose
                              ? (cfg.inverse ? "cf_transpose_inverse" : "cf_transpose")
                              : (cfg.inverse ? "cf_permute_inverse" : "cf_permute");
  const verify::CfCertificate* op_cert = verify::certify(prim_name, w, e);
  const verify::CfCertificate* stage_cert = verify::certify("cf_stage", w, e);

  phase("load");
  sort::load_tile_affine(ctx, gin, shmem, tile, 0, sort::AffineMap{0, 1}, stage_cert);
  ctx.barrier();

  if (!transpose || !cfg.inverse) {
    // Stage the tile into the sigma layout: contiguous reads, writes
    // conflict-free because banks of sigma are wE-periodic.
    phase("stage");
    exec_shared_copy(ctx, shmem, staged, tile, op_cert,
                     [](std::int64_t t) { return t; },
                     [&](std::int64_t t) { return sigma(t); });
    ctx.barrier();
    // CRS gather: regs[i][j] = staged[sigma(iE+j)] = in[iE+j].
    phase("gather");
    exec_crs_gather(
        ctx, staged, w, e, vwarps, kGatherCharge, op_cert, warp_of,
        [&](int vw, int lane, int j) {
          return sigma((static_cast<std::int64_t>(vw) * w + lane) * e + j);
        },
        [&](int vw, int lane, int j, const T& v) {
          regs[reg_of(static_cast<std::int64_t>(vw) * w + lane, j)] = v;
        });
    phase("scatter");
    if (!transpose) {
      // CRS scatter back through sigma: shmem[sigma(iE+j)] = regs[i][j].
      exec_crs_scatter(
          ctx, shmem, w, e, vwarps, kCopyCharge, op_cert, warp_of,
          [&](int vw, int lane, int j) {
            return sigma((static_cast<std::int64_t>(vw) * w + lane) * e + j);
          },
          [&](int vw, int lane, int j) {
            return regs[reg_of(static_cast<std::int64_t>(vw) * w + lane, j)];
          });
    } else {
      // Transposed layout: shmem[j*u + i] = regs[i][j] — lanes write w
      // consecutive slots per round, conflict-free by construction.
      exec_crs_scatter(
          ctx, shmem, w, e, vwarps, kCopyCharge, op_cert, warp_of,
          [&](int vw, int lane, int j) {
            return static_cast<std::int64_t>(j) * u + vw * w + lane;
          },
          [&](int vw, int lane, int j) {
            return regs[reg_of(static_cast<std::int64_t>(vw) * w + lane, j)];
          });
    }
    ctx.barrier();
  } else {
    // Inverse transpose: contiguous gather from the transposed layout...
    phase("gather");
    exec_crs_gather(
        ctx, shmem, w, e, vwarps, kGatherCharge, op_cert, warp_of,
        [&](int vw, int lane, int j) {
          return static_cast<std::int64_t>(j) * u + vw * w + lane;
        },
        [&](int vw, int lane, int j, const T& v) {
          regs[reg_of(static_cast<std::int64_t>(vw) * w + lane, j)] = v;
        });
    // ...CRS scatter into the rho layout, then un-stage contiguously.
    phase("scatter");
    exec_crs_scatter(
        ctx, staged, w, e, vwarps, kCopyCharge, op_cert, warp_of,
        [&](int vw, int lane, int j) {
          return rho((static_cast<std::int64_t>(vw) * w + lane) * e + j);
        },
        [&](int vw, int lane, int j) {
          return regs[reg_of(static_cast<std::int64_t>(vw) * w + lane, j)];
        });
    ctx.barrier();
    phase("unstage");
    exec_shared_copy(ctx, staged, shmem, tile, op_cert,
                     [&](std::int64_t t) { return rho(t); },
                     [](std::int64_t t) { return t; });
    ctx.barrier();
  }

  phase("store");
  sort::store_tile_affine(ctx, shmem, gout, tile, sort::AffineMap{0, 1}, 0, stage_cert);
}

/// Enqueues the one-kernel permute pipeline for a padded buffer onto
/// `stream` (SortEngine caches the resulting graph per shape).
template <typename T>
void enqueue_permute_pipeline(gpusim::Stream& stream, std::vector<T>& buf,
                              std::vector<T>& out, std::int64_t n_padded,
                              const PermuteConfig& cfg) {
  const std::int64_t tile = cfg.tile();
  const int blocks = static_cast<int>(n_padded / tile);
  gpusim::LaunchShape shape{blocks, cfg.u,
                            2 * static_cast<std::size_t>(tile) * sizeof(T),
                            sort::cost::cfmerge_regs_per_thread(cfg.e)};
  const char* name = cfg.op == PermuteOp::kTranspose ? "cf_transpose" : "cf_permute";
  stream.enqueue(name, shape, [&buf, &out, cfg](gpusim::BlockContext& ctx) {
    permute_tile_body<T>(ctx, std::span<const T>(buf), std::span<T>(out), cfg);
  });
}

}  // namespace cfmerge::cfprims
