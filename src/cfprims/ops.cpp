// The registered CF primitives: each names one shared-memory access
// pattern, knows its footprint, and lowers its access streams to the verify
// affine IR so the generic prover (verify/primitive.cpp) can certify or
// refute it.  The conflict-free ones are listed first, then the
// deliberately broken ablation variants that cfverify must refute with a
// concrete lane-pair witness.
#include "cfprims/primitive.hpp"

#include "gather/permutation.hpp"
#include "numtheory/numtheory.hpp"

namespace cfmerge::cfprims {

namespace {

using verify::AffineExpr;

AffineExpr thread_expr() { return AffineExpr::sym(verify::kSymThread, "i"); }
AffineExpr round_expr() { return AffineExpr::sym(verify::kSymRound, "j"); }

/// The stride-E rank index iE + j shared by every CRS stream.
AffineExpr rank_expr(int e) {
  return thread_expr().times(e) + round_expr();
}

/// Stamps the barrier-epoch / tile coordinates the safety pass consumes.
AccessStream at(AccessStream st, int epoch, int tile) {
  st.epoch = epoch;
  st.tile = tile;
  return st;
}

/// A contiguous slot-indexed read/write: phys = i over [0, domain).
AccessStream linear_stream(std::string name, bool is_write, std::int64_t domain) {
  AccessStream st;
  st.name = std::move(name);
  st.is_write = is_write;
  st.rounds = 1;
  st.domain = domain;
  st.phys = thread_expr();
  st.concrete = [](std::int64_t i, std::int64_t) { return i; };
  return st;
}

/// sigma applied to the contiguous slot index (the staging copy's write or
/// un-staging read): conflict-free because bank(sigma) has period wE.
AccessStream staged_stream(std::string name, bool is_write, const PrimShape& s,
                           bool inverse) {
  AccessStream st;
  st.name = std::move(name);
  st.is_write = is_write;
  st.rounds = 1;
  st.domain = s.tile();
  st.bank_period = static_cast<std::int64_t>(s.w) * s.e;
  st.phys = inverse ? verify::lower_rho_inverse(thread_expr(), s.w, s.e)
                    : verify::lower_rho(thread_expr(), s.w, s.e);
  const gather::CircularShift rho(s.w, s.e, s.tile());
  st.concrete = [rho, inverse](std::int64_t i, std::int64_t) {
    return inverse ? rho.inverse(i) : rho(i);
  };
  return st;
}

/// The CRS stream: thread i touches sigma(iE + j) in round j (sigma = rho,
/// rho^-1, or the identity for the broken variant).
AccessStream crs_stream(std::string name, bool is_write, const PrimShape& s,
                        bool inverse, bool with_rho) {
  AccessStream st;
  st.name = std::move(name);
  st.is_write = is_write;
  st.rounds = s.e;
  st.domain = s.u;
  st.residue_modulus = s.e;
  st.raw = rank_expr(s.e);
  st.phys = !with_rho ? st.raw
            : inverse ? verify::lower_rho_inverse(st.raw, s.w, s.e)
                      : verify::lower_rho(st.raw, s.w, s.e);
  const gather::CircularShift rho(s.w, s.e, s.tile());
  const std::int64_t e = s.e;
  st.concrete = [rho, inverse, with_rho, e](std::int64_t i, std::int64_t j) {
    const std::int64_t raw = i * e + j;
    if (!with_rho) return raw;
    return inverse ? rho.inverse(raw) : rho(raw);
  };
  return st;
}

/// The transposed-layout stream: thread i touches j*u + i in round j —
/// lanes cover w consecutive slots, conflict-free for any u.
AccessStream transposed_stream(std::string name, bool is_write, const PrimShape& s) {
  AccessStream st;
  st.name = std::move(name);
  st.is_write = is_write;
  st.rounds = s.e;
  st.domain = s.u;
  st.phys = round_expr().times(s.u) + thread_expr();
  const std::int64_t u = s.u;
  st.concrete = [u](std::int64_t i, std::int64_t j) { return j * u + i; };
  return st;
}

/// cf_gather and its broken ablation variants: the access pattern depends
/// on the merge-path splits, so verification delegates to the full
/// RoundSchedule machinery (verify_cf_gather).
class CfGatherPrim final : public CFPrimitive {
 public:
  explicit CfGatherPrim(verify::ScheduleVariant variant) : variant_(variant) {}

  [[nodiscard]] std::string_view name() const override {
    return verify::variant_name(variant_);
  }
  [[nodiscard]] std::string_view description() const override {
    switch (variant_) {
      case verify::ScheduleVariant::kFull:
        return "Algorithm 1 dual subsequence gather: rho(pi(A U B)) layout, "
               "stride-E CRS reads (the CF merge's core)";
      case verify::ScheduleVariant::kNoBReversal:
        return "broken ablation: [A|B] layout without the B reversal pi";
      case verify::ScheduleVariant::kNoRhoShift:
        return "broken ablation: pi without the circular shift rho (fails "
               "when gcd(w,E) > 1)";
    }
    return "?";
  }
  [[nodiscard]] bool supports(int w, int e) const override {
    if (!CFPrimitive::supports(w, e)) return false;
    // Without rho the schedule is still CF for coprime (w, E); only d > 1
    // families are refutable.
    return variant_ != verify::ScheduleVariant::kNoRhoShift ||
           numtheory::gcd(w, e) > 1;
  }
  [[nodiscard]] bool expected_conflict_free(int w, int e) const override {
    (void)w;
    (void)e;
    return variant_ == verify::ScheduleVariant::kFull;
  }
  [[nodiscard]] std::int64_t shared_footprint(const PrimShape& s) const override {
    return s.tile();
  }
  [[nodiscard]] PrimitiveLowering lower(const PrimShape& s) const override {
    PrimitiveLowering lo;
    lo.shape = s;
    // The merge tile is staged from global by load_tile before the gather
    // rounds read it — extern-initialized for the safety dataflow.
    lo.tiles = {{s.tile(), /*extern_init=*/true}};
    lo.facts = {{verify::kSymU, s.w}};
    lo.delegate_cf_gather = true;
    lo.gather_variant = variant_;
    return lo;
  }

 private:
  verify::ScheduleVariant variant_;
};

/// The multiway cascade's stride-E output scatter (CascadePlan::scatter_pos
/// final level / out_pos): merged rank iE + j written through rho — the
/// same Corollary 3 CRS argument as the gather, as a write.
class CfRankScatterPrim final : public CFPrimitive {
 public:
  [[nodiscard]] std::string_view name() const override { return "cf_rank_scatter"; }
  [[nodiscard]] std::string_view description() const override {
    return "stride-E rank scatter through rho (the multiway cascade's "
           "inter-level output scatter, Corollary 3 as a write)";
  }
  [[nodiscard]] std::int64_t shared_footprint(const PrimShape& s) const override {
    return s.tile();
  }
  [[nodiscard]] PrimitiveLowering lower(const PrimShape& s) const override {
    PrimitiveLowering lo;
    lo.shape = s;
    // Pure output scatter: the tile is written, never read, by this stream.
    lo.tiles = {{s.tile(), /*extern_init=*/false}};
    lo.facts = {{verify::kSymU, s.w}};
    lo.streams.push_back(
        at(crs_stream("scatter", /*is_write=*/true, s, /*inverse=*/false,
                      /*with_rho=*/true),
           /*epoch=*/0, /*tile=*/0));
    return lo;
  }
};

/// Standalone CF permutation through sigma = rho (forward) or rho^-1
/// (inverse) — see cfprims/permute.hpp for the executed kernel.
class CfPermutePrim final : public CFPrimitive {
 public:
  CfPermutePrim(bool inverse, bool with_rho) : inverse_(inverse), with_rho_(with_rho) {}

  [[nodiscard]] std::string_view name() const override {
    if (!with_rho_) return "cf_permute_no_rho";
    return inverse_ ? "cf_permute_inverse" : "cf_permute";
  }
  [[nodiscard]] std::string_view description() const override {
    if (!with_rho_)
      return "broken ablation: permute staged without rho (raw stride-E "
             "accesses collide when gcd(w,E) > 1)";
    return inverse_ ? "standalone CF permutation, sigma = rho^-1 (undoes "
                      "cf_permute; Afshani-Sitchinava permute primitive)"
                    : "standalone CF permutation, sigma = rho: stage, CRS "
                      "register gather, CRS scatter (Afshani-Sitchinava)";
  }
  [[nodiscard]] bool supports(int w, int e) const override {
    if (!CFPrimitive::supports(w, e)) return false;
    return with_rho_ || numtheory::gcd(w, e) > 1;
  }
  [[nodiscard]] bool expected_conflict_free(int w, int e) const override {
    (void)w;
    (void)e;
    return with_rho_;
  }
  [[nodiscard]] std::int64_t shared_footprint(const PrimShape& s) const override {
    return 2 * s.tile();  // working tile + staging tile
  }
  [[nodiscard]] PrimitiveLowering lower(const PrimShape& s) const override {
    PrimitiveLowering lo;
    lo.shape = s;
    // Tile 0: working tile, filled from global before the streams run.
    // Tile 1: staging tile, written by "stage" under a barrier before the
    // CRS gather reads it.
    lo.tiles = {{s.tile(), /*extern_init=*/true}, {s.tile(), /*extern_init=*/false}};
    lo.facts = {{verify::kSymU, s.w}};
    lo.streams.push_back(
        at(linear_stream("load", /*is_write=*/false, s.tile()), /*epoch=*/0, /*tile=*/0));
    if (with_rho_) {
      lo.streams.push_back(
          at(staged_stream("stage", /*is_write=*/true, s, inverse_), /*epoch=*/0,
             /*tile=*/1));
      lo.streams.push_back(
          at(crs_stream("gather", /*is_write=*/false, s, inverse_, with_rho_),
             /*epoch=*/1, /*tile=*/1));
    } else {
      // No staging without rho: the CRS gather reads the working tile.
      lo.streams.push_back(
          at(crs_stream("gather", /*is_write=*/false, s, inverse_, with_rho_),
             /*epoch=*/0, /*tile=*/0));
    }
    lo.streams.push_back(
        at(crs_stream("scatter", /*is_write=*/true, s, inverse_, with_rho_),
           /*epoch=*/1, /*tile=*/0));
    return lo;
  }

 private:
  bool inverse_;
  bool with_rho_;
};

/// Standalone CF transposition of the u x E tile (row-major -> E x u):
/// rho-staged CRS on the stride-E side, contiguous on the transposed side.
class CfTransposePrim final : public CFPrimitive {
 public:
  explicit CfTransposePrim(bool inverse) : inverse_(inverse) {}

  [[nodiscard]] std::string_view name() const override {
    return inverse_ ? "cf_transpose_inverse" : "cf_transpose";
  }
  [[nodiscard]] std::string_view description() const override {
    return inverse_ ? "CF transposition E x u -> u x E (undoes cf_transpose "
                      "via the forward-rho staging tile)"
                    : "CF transposition u x E -> E x u: rho-staged CRS "
                      "gather, contiguous transposed scatter";
  }
  [[nodiscard]] std::int64_t shared_footprint(const PrimShape& s) const override {
    return 2 * s.tile();
  }
  [[nodiscard]] PrimitiveLowering lower(const PrimShape& s) const override {
    PrimitiveLowering lo;
    lo.shape = s;
    // Tile 0: working tile (extern-filled); tile 1: rho staging tile.
    lo.tiles = {{s.tile(), /*extern_init=*/true}, {s.tile(), /*extern_init=*/false}};
    lo.facts = {{verify::kSymU, s.w}};
    lo.streams.push_back(
        at(linear_stream("load", /*is_write=*/false, s.tile()), /*epoch=*/0, /*tile=*/0));
    if (!inverse_) {
      lo.streams.push_back(
          at(staged_stream("stage", /*is_write=*/true, s, /*inverse=*/false),
             /*epoch=*/0, /*tile=*/1));
      lo.streams.push_back(
          at(crs_stream("gather", /*is_write=*/false, s, /*inverse=*/false,
                        /*with_rho=*/true),
             /*epoch=*/1, /*tile=*/1));
      lo.streams.push_back(
          at(transposed_stream("scatter", /*is_write=*/true, s), /*epoch=*/1,
             /*tile=*/0));
    } else {
      lo.streams.push_back(
          at(transposed_stream("gather", /*is_write=*/false, s), /*epoch=*/0,
             /*tile=*/0));
      lo.streams.push_back(
          at(crs_stream("scatter", /*is_write=*/true, s, /*inverse=*/false,
                        /*with_rho=*/true),
             /*epoch=*/0, /*tile=*/1));
      lo.streams.push_back(
          at(staged_stream("unstage", /*is_write=*/false, s, /*inverse=*/false),
             /*epoch=*/1, /*tile=*/1));
    }
    return lo;
  }

 private:
  bool inverse_;
};

/// The raw stride-E CRS without rho: thread i touches iE + j in round j.
/// Conflict-free exactly when gcd(w, E) = 1 (iE mod w then walks all
/// residues over a warp); the primitive only registers for that family, so
/// a certificate exists iff the pattern is provably CF.  This is the block
/// sort's thread-local gather/scatter and the baseline merge's output
/// scatter.
class CfStridePrim final : public CFPrimitive {
 public:
  [[nodiscard]] std::string_view name() const override { return "cf_stride"; }
  [[nodiscard]] std::string_view description() const override {
    return "raw stride-E CRS (no rho): iE + j over a warp, conflict-free "
           "for gcd(w,E) = 1 (block-sort thread phases, baseline scatter)";
  }
  [[nodiscard]] bool supports(int w, int e) const override {
    return CFPrimitive::supports(w, e) && numtheory::gcd(w, e) == 1;
  }
  [[nodiscard]] std::int64_t shared_footprint(const PrimShape& s) const override {
    return s.tile();
  }
  [[nodiscard]] PrimitiveLowering lower(const PrimShape& s) const override {
    PrimitiveLowering lo;
    lo.shape = s;
    // One extern-filled tile: thread i reads, sorts, and rewrites its own
    // stride-E slots across a barrier.
    lo.tiles = {{s.tile(), /*extern_init=*/true}};
    lo.facts = {{verify::kSymU, s.w}};
    lo.streams.push_back(
        at(crs_stream("gather", /*is_write=*/false, s, /*inverse=*/false,
                      /*with_rho=*/false),
           /*epoch=*/0, /*tile=*/0));
    lo.streams.push_back(
        at(crs_stream("scatter", /*is_write=*/true, s, /*inverse=*/false,
                      /*with_rho=*/false),
           /*epoch=*/1, /*tile=*/0));
    return lo;
  }
};

/// The unit-stride staging family: every warp-wide access of a tile
/// stage/unstage copy touches w *consecutive* slots, ascending (loads,
/// identity staging) or descending (the reversed B run), from an arbitrary
/// base offset.  Consecutive addresses hit w distinct banks for any base,
/// which the round index j = 0..w-1 makes exhaustive: round j checks every
/// w-aligned window shifted by j, i.e. every base class mod w.
class CfStagePrim final : public CFPrimitive {
 public:
  [[nodiscard]] std::string_view name() const override { return "cf_stage"; }
  [[nodiscard]] std::string_view description() const override {
    return "unit-stride staging runs at any base offset, ascending or "
           "descending (tile load/store copies), conflict-free per warp";
  }
  [[nodiscard]] std::int64_t shared_footprint(const PrimShape& s) const override {
    return s.tile() + s.w;  // round offsets shift windows past the tile end
  }
  [[nodiscard]] PrimitiveLowering lower(const PrimShape& s) const override {
    PrimitiveLowering lo;
    lo.shape = s;
    lo.tiles = {{s.tile() + s.w, /*extern_init=*/false}};
    lo.facts = {{verify::kSymU, s.w}};
    const std::int64_t tile = s.tile();
    AccessStream up;
    up.name = "ascending";
    up.is_write = true;
    up.rounds = s.w;
    up.domain = tile;
    // The round index enumerates alternative base-offset classes (one copy
    // call uses one), not coexisting rounds: race checks stay intra-round,
    // and the two directions are alternative instances too (distinct epochs).
    up.rounds_are_instances = true;
    up.phys = thread_expr() + round_expr();
    up.concrete = [](std::int64_t i, std::int64_t j) { return i + j; };
    lo.streams.push_back(at(std::move(up), /*epoch=*/0, /*tile=*/0));
    AccessStream down;
    down.name = "descending";
    down.is_write = true;
    down.rounds = s.w;
    down.domain = tile;
    down.rounds_are_instances = true;
    down.phys = AffineExpr::constant(tile - 1) + round_expr() - thread_expr();
    down.concrete = [tile](std::int64_t i, std::int64_t j) {
      return tile - 1 + j - i;
    };
    lo.streams.push_back(at(std::move(down), /*epoch=*/1, /*tile=*/0));
    return lo;
  }
};

/// Safety ablation #1: the rank scatter with its base off by one warp
/// window (+wE).  Bank-wise indistinguishable from cf_rank_scatter (the
/// shift is 0 mod w), but the top warp window of every tile lands past
/// tile_words — a bounds violation the static pass must refute with a
/// concrete out-of-range lane.
class CfRankScatterOffByWePrim final : public CFPrimitive {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "cf_rank_scatter_off_by_we";
  }
  [[nodiscard]] std::string_view description() const override {
    return "safety ablation: rank scatter with the base off by +wE — "
           "bank-clean but out of bounds for the last warp window";
  }
  [[nodiscard]] bool expected_safe(int w, int e) const override {
    (void)w;
    (void)e;
    return false;
  }
  [[nodiscard]] std::int64_t shared_footprint(const PrimShape& s) const override {
    return s.tile();
  }
  [[nodiscard]] PrimitiveLowering lower(const PrimShape& s) const override {
    PrimitiveLowering lo;
    lo.shape = s;
    lo.tiles = {{s.tile(), /*extern_init=*/false}};
    lo.facts = {{verify::kSymU, s.w}};
    const std::int64_t we = static_cast<std::int64_t>(s.w) * s.e;
    AccessStream st =
        crs_stream("scatter", /*is_write=*/true, s, /*inverse=*/false,
                   /*with_rho=*/true);
    st.phys = st.phys + AffineExpr::constant(we);
    const auto base = st.concrete;
    st.concrete = [base, we](std::int64_t i, std::int64_t j) {
      return base(i, j) + we;
    };
    lo.streams.push_back(at(std::move(st), /*epoch=*/0, /*tile=*/0));
    return lo;
  }
};

/// Safety ablation #2: cf_permute with the barrier between the staging
/// write and the CRS gather elided — the gather reads the staging tile in
/// the same epoch the stage writes it, so no prior epoch covers the read
/// set.  The static pass must refute init-before-read with a concrete
/// uninitialized-word witness the ShadowChecker reproduces.
class CfPermuteReadBeforeScatterPrim final : public CFPrimitive {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "cf_permute_read_before_scatter";
  }
  [[nodiscard]] std::string_view description() const override {
    return "safety ablation: permute gather reads the staging tile in the "
           "stage write's own epoch (missing barrier) — uninitialized reads";
  }
  [[nodiscard]] bool expected_safe(int w, int e) const override {
    (void)w;
    (void)e;
    return false;
  }
  [[nodiscard]] std::int64_t shared_footprint(const PrimShape& s) const override {
    return 2 * s.tile();
  }
  [[nodiscard]] PrimitiveLowering lower(const PrimShape& s) const override {
    PrimitiveLowering lo;
    lo.shape = s;
    lo.tiles = {{s.tile(), /*extern_init=*/true}, {s.tile(), /*extern_init=*/false}};
    lo.facts = {{verify::kSymU, s.w}};
    lo.streams.push_back(
        at(linear_stream("load", /*is_write=*/false, s.tile()), /*epoch=*/0, /*tile=*/0));
    lo.streams.push_back(
        at(staged_stream("stage", /*is_write=*/true, s, /*inverse=*/false),
           /*epoch=*/0, /*tile=*/1));
    // The broken bit: epoch 0 instead of 1 — same epoch as the stage write.
    lo.streams.push_back(
        at(crs_stream("gather", /*is_write=*/false, s, /*inverse=*/false,
                      /*with_rho=*/true),
           /*epoch=*/0, /*tile=*/1));
    lo.streams.push_back(
        at(crs_stream("scatter", /*is_write=*/true, s, /*inverse=*/false,
                      /*with_rho=*/true),
           /*epoch=*/1, /*tile=*/0));
    return lo;
  }
};

}  // namespace

const std::vector<const CFPrimitive*>& registry() {
  static const CfGatherPrim gather_full(verify::ScheduleVariant::kFull);
  static const CfGatherPrim gather_no_pi(verify::ScheduleVariant::kNoBReversal);
  static const CfGatherPrim gather_no_rho(verify::ScheduleVariant::kNoRhoShift);
  static const CfRankScatterPrim rank_scatter;
  static const CfPermutePrim permute(/*inverse=*/false, /*with_rho=*/true);
  static const CfPermutePrim permute_inverse(/*inverse=*/true, /*with_rho=*/true);
  static const CfPermutePrim permute_no_rho(/*inverse=*/false, /*with_rho=*/false);
  static const CfTransposePrim transpose(/*inverse=*/false);
  static const CfTransposePrim transpose_inverse(/*inverse=*/true);
  static const CfStridePrim stride;
  static const CfStagePrim stage;
  static const std::vector<const CFPrimitive*> all = {
      &gather_full,      &rank_scatter,      &permute,
      &permute_inverse,  &transpose,         &transpose_inverse,
      &stride,           &stage,
      &gather_no_pi,     &gather_no_rho,     &permute_no_rho,
  };
  return all;
}

const std::vector<const CFPrimitive*>& safety_ablations() {
  static const CfRankScatterOffByWePrim off_by_we;
  static const CfPermuteReadBeforeScatterPrim read_before_scatter;
  static const std::vector<const CFPrimitive*> all = {&off_by_we,
                                                      &read_before_scatter};
  return all;
}

const CFPrimitive* find_primitive(std::string_view name) {
  for (const CFPrimitive* p : registry())
    if (p->name() == name) return p;
  for (const CFPrimitive* p : safety_ablations())
    if (p->name() == name) return p;
  return nullptr;
}

}  // namespace cfmerge::cfprims
