// Shared conflict scanner: the one exhaustive bank-conflict walk used by
// both the generic primitive verifier (verify/primitive.cpp) and the
// schedule validator (gather/validator.cpp), so there is a single recount
// implementation and it is the simulator's own cost model
// (gpusim::shared_access_cost, broadcast rule included).
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/shared_memory.hpp"
#include "numtheory/numtheory.hpp"

namespace cfmerge::cfprims {

/// Outcome of scanning every warp window of every round of one access
/// stream.  When a conflict exists, the first one is captured as a concrete
/// lane pair (two active lanes in the same bank with distinct addresses —
/// such a pair always exists because broadcasts are conflict-free).
struct ConflictScan {
  std::int64_t windows = 0;          ///< warp-wide accesses scanned
  std::int64_t total_conflicts = 0;  ///< replay cycles summed over all accesses
  int max_conflicts = 0;             ///< worst replays of a single access
  bool found = false;                ///< a first conflict is captured below
  int round = 0;
  std::int64_t window_base = 0;      ///< first thread of the conflicting window
  int cycles = 0;                    ///< shared-unit cycles of that access
  int lane1 = 0;                     ///< window-relative conflicting lanes
  int lane2 = 0;
  std::int64_t addr1 = 0;
  std::int64_t addr2 = 0;
  int bank = 0;
};

/// Walks rounds j in [0, rounds) x w-aligned windows over [0, domain) and
/// prices each window with the simulator's shared_access_cost.
/// `addr_of(i, j)` gives thread i's address in round j.
template <typename AddrOf>
[[nodiscard]] ConflictScan scan_conflicts(int w, int rounds, std::int64_t domain,
                                          AddrOf&& addr_of) {
  ConflictScan scan;
  std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));
  for (int j = 0; j < rounds; ++j) {
    for (std::int64_t base = 0; base < domain; base += w) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t i = base + lane;
        addrs[static_cast<std::size_t>(lane)] =
            i < domain ? addr_of(i, static_cast<std::int64_t>(j)) : gpusim::kInactiveLane;
      }
      const gpusim::SharedAccessCost cost = gpusim::shared_access_cost(addrs, w);
      ++scan.windows;
      scan.total_conflicts += cost.conflicts;
      if (cost.conflicts > scan.max_conflicts) scan.max_conflicts = cost.conflicts;
      if (cost.conflicts > 0 && !scan.found) {
        scan.found = true;
        scan.round = j;
        scan.window_base = base;
        scan.cycles = cost.cycles;
        // Recover a concrete witness pair: two active lanes in one bank
        // with distinct addresses.
        for (int l1 = 0; l1 < w && scan.addr1 == scan.addr2; ++l1) {
          if (addrs[static_cast<std::size_t>(l1)] == gpusim::kInactiveLane) continue;
          for (int l2 = l1 + 1; l2 < w; ++l2) {
            const std::int64_t a1 = addrs[static_cast<std::size_t>(l1)];
            const std::int64_t a2 = addrs[static_cast<std::size_t>(l2)];
            if (a2 == gpusim::kInactiveLane || a1 == a2) continue;
            if (numtheory::mod(a1, w) != numtheory::mod(a2, w)) continue;
            scan.lane1 = l1;
            scan.lane2 = l2;
            scan.addr1 = a1;
            scan.addr2 = a2;
            scan.bank = static_cast<int>(numtheory::mod(a1, w));
            break;
          }
        }
      }
    }
  }
  return scan;
}

}  // namespace cfmerge::cfprims
