// The CF-primitives layer: a uniform abstraction over every conflict-free
// shared-memory access pattern in the codebase.
//
// Afshani–Sitchinava ("Sorting and Permuting without Bank Conflicts on
// GPUs") frames conflict-free *permutation* as the first-class primitive of
// which CF merging is one instance; Sitchinava–Weichert builds a whole
// sorting framework from such reusable CF building blocks.  A CFPrimitive
// names one such pattern — its shape parameters (w, E, u, k), its
// shared-memory footprint, and a lower() hook that produces the verify
// layer's affine IR — so that
//
//   * the sort kernels execute it through the shared executors
//     (cfprims/exec.hpp) instead of open-coded loops,
//   * cfverify proves or refutes *every registered primitive* through one
//     generic path (verify/primitive.cpp) instead of per-family special
//     cases, and
//   * a new access pattern is added by registering one object, not by
//     re-implementing scheduling, accounting and verification glue.
//
// See docs/cfprims.md for the catalog and the contract in prose.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "verify/affine.hpp"
#include "verify/lower.hpp"

namespace cfmerge::cfprims {

/// Shape parameters of one primitive instance, following the paper's
/// Table 1 naming: warp width w, elements per thread E, block threads u,
/// and (for the multiway cascade) merge arity k (0 when not applicable).
struct PrimShape {
  int w = 0;
  int e = 0;
  int u = 0;
  int k = 0;
  /// Elements handled by one block: the tile.
  [[nodiscard]] std::int64_t tile() const {
    return static_cast<std::int64_t>(u) * e;
  }
};

/// One warp-synchronous access stream of a lowered primitive: `rounds`
/// rounds in which every thread i < `domain` touches physical shared slot
/// `phys(i, j)`.  Streams with `residue_modulus > 0` additionally carry the
/// pre-permutation `raw` index and promise the paper's residue invariant
/// raw ≡ j (mod residue_modulus).  `concrete` is the primitive's actual
/// address computation (the one the executors run); the generic verifier
/// checks the affine IR against it exhaustively before trusting the IR.
struct AccessStream {
  std::string name;
  bool is_write = false;
  int rounds = 1;
  std::int64_t domain = 0;          ///< i ranges over [0, domain)
  std::int64_t residue_modulus = 0; ///< 0: no residue invariant claimed
  /// bank(phys(i)) repeats with this period in i (0 = the default w): the
  /// periodicity step checks it, extending the exhaustive window check to
  /// every block size.  Streams over sigma-permuted slots use wE.
  std::int64_t bank_period = 0;
  /// Barrier-epoch structure for the static safety pass (verify/safety):
  /// streams in the same epoch run between the same pair of barriers, so
  /// intra-epoch writes must be pairwise disjoint and reads may only depend
  /// on writes from strictly earlier epochs.
  int epoch = 0;
  /// Which shared tile of PrimitiveLowering::tiles the stream touches.
  int tile = 0;
  /// True when the round index enumerates *alternative instances* of the
  /// stream (e.g. cf_stage checks every base offset class mod w) rather
  /// than successive rounds of one execution: the race check must then
  /// compare lanes within one round only, since two rounds never coexist.
  bool rounds_are_instances = false;
  verify::AffineExpr raw;           ///< valid iff residue_modulus > 0
  verify::AffineExpr phys;
  std::function<std::int64_t(std::int64_t, std::int64_t)> concrete;
};

/// One shared tile of a lowered primitive, as seen by the safety pass.
struct TileSpec {
  std::int64_t words = 0;   ///< tile extent; every address must land in [0, words)
  /// True when the tile is filled from global memory before the lowered
  /// streams run (the working tile of permute/transpose/stride): its words
  /// count as initialized at epoch -1 for the init-before-read dataflow.
  bool extern_init = false;
};

/// Result of lowering a primitive at one concrete shape.
struct PrimitiveLowering {
  PrimShape shape;
  std::vector<AccessStream> streams;
  /// Shared tiles referenced by AccessStream::tile; when empty the safety
  /// pass assumes one extern-initialized tile of `shape.tile()` words.
  std::vector<TileSpec> tiles;
  verify::SymbolFacts facts;
  /// True for the gather-family primitives whose access pattern depends on
  /// the merge-path splits: verification must run through the full
  /// RoundSchedule machinery (verify_cf_gather) rather than the per-stream
  /// checks, with `gather_variant` selecting the (possibly broken) variant.
  bool delegate_cf_gather = false;
  verify::ScheduleVariant gather_variant = verify::ScheduleVariant::kFull;
};

/// A named conflict-free (or deliberately broken) access pattern.
class CFPrimitive {
 public:
  CFPrimitive() = default;
  CFPrimitive(const CFPrimitive&) = delete;
  CFPrimitive& operator=(const CFPrimitive&) = delete;
  virtual ~CFPrimitive() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  /// One-line catalog entry (docs/cfprims.md, cfverify text output).
  [[nodiscard]] virtual std::string_view description() const = 0;
  /// Whether the (w, E) family is in the primitive's domain.  The default
  /// is the paper's parameter range: 1 < E <= w.
  [[nodiscard]] virtual bool supports(int w, int e) const {
    return w > 0 && e > 1 && e <= w;
  }
  /// False for the registered broken variants: cfverify must refute these
  /// with a concrete lane-pair witness instead of proving them.
  [[nodiscard]] virtual bool expected_conflict_free(int w, int e) const {
    (void)w;
    (void)e;
    return true;
  }
  /// False for the safety ablations (safety_ablations()): the static safety
  /// pass must refute these with a concrete lane/epoch witness instead of
  /// proving bounds / init-before-read / race-freedom.
  [[nodiscard]] virtual bool expected_safe(int w, int e) const {
    (void)w;
    (void)e;
    return true;
  }
  /// Shared-memory footprint in elements for a block of shape `s`.
  [[nodiscard]] virtual std::int64_t shared_footprint(const PrimShape& s) const = 0;
  /// Lowers the primitive's access streams at shape `s` to the verify IR.
  [[nodiscard]] virtual PrimitiveLowering lower(const PrimShape& s) const = 0;
};

/// All registered primitives in a stable order (conflict-free ones first,
/// then the deliberately broken ablation variants).
[[nodiscard]] const std::vector<const CFPrimitive*>& registry();

/// Deliberately safety-broken ablation variants (off-by-wE scatter base,
/// read-before-scatter): kept OUT of registry() — they are bank-CRS clean
/// but memory-unsafe, and exist only so the static safety pass
/// (verify/safety) can demonstrate refutation with concrete lane/epoch
/// witnesses that the dynamic ShadowChecker replays.
[[nodiscard]] const std::vector<const CFPrimitive*>& safety_ablations();

/// Registry lookup by name; nullptr when unknown.  Searches registry()
/// first, then safety_ablations().
[[nodiscard]] const CFPrimitive* find_primitive(std::string_view name);

}  // namespace cfmerge::cfprims
