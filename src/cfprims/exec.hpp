// Shared executors for the CF primitives: the warp-loop skeletons every
// CRS-style gather/scatter and staged shared-to-shared copy in the sort
// kernels instantiate.
//
// The accounting contract is frozen: a primitive execution charges exactly
//
//   per (virtual) warp:  charge.setup warp instructions (0 = skip), then
//   per round:           charge.round warp instructions followed by ONE
//                        warp-wide shared access (gather or scatter),
//
// which is bit-identical to the loops these helpers replaced in
// sort/merge_pass.hpp, sort/multiway_pass.hpp, sort/block_sort.hpp and
// gather/dual_gather.hpp (pinned by tests/test_cfprims_golden.cpp).  Any
// change here shifts every counter in every report.
//
// This header deliberately depends only on gpusim + the cost constants so
// that both the gather layer and the sort kernels can include it without
// cycles.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <span>

#include "gpusim/block_context.hpp"
#include "gpusim/memory_views.hpp"
#include "sort/cost_model.hpp"

namespace cfmerge::cfprims {

/// Warp-instruction charges of one primitive execution (see header comment).
struct CrsCharge {
  std::uint64_t setup = 0;  ///< once per virtual warp; 0 = no setup charge
  std::uint64_t round = 0;  ///< before each warp-wide shared access
};

/// The dual-gather / cascade-merge cadence: per-thread setup (computing k,
/// offsets, bounds) then the mod-E bookkeeping of each Algorithm 1 round.
inline constexpr CrsCharge kGatherCharge{sort::cost::kThreadSetupInstrs,
                                         sort::cost::kGatherRoundInstrs};
/// The plain copy cadence (stride-E register write-back, output scatter):
/// address arithmetic only, no per-thread setup.
inline constexpr CrsCharge kCopyCharge{0, sort::cost::kCopyChunkInstrs};

/// Executes one CRS-style gather: `vwarps` virtual warps each perform
/// `rounds` warp-wide reads of `shmem`.  `warp_of(vw)` maps the virtual
/// warp to the physical warp that issues (and is charged for) its
/// accesses; `addr_of(vw, lane, j)` gives the shared slot; `sink(vw, lane,
/// j, value)` receives each element read.
template <typename T, typename WarpOf, typename AddrOf, typename Sink>
void exec_crs_gather(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem, int w,
                     int rounds, int vwarps, const CrsCharge& charge, WarpOf&& warp_of,
                     AddrOf&& addr_of, Sink&& sink) {
  assert(w <= gpusim::kMaxLanes);
  std::array<std::int64_t, gpusim::kMaxLanes> addr;
  std::array<T, gpusim::kMaxLanes> vals{};
  const std::span<const std::int64_t> aspan(addr.data(), static_cast<std::size_t>(w));
  const std::span<T> vspan(vals.data(), static_cast<std::size_t>(w));
  for (int vw = 0; vw < vwarps; ++vw) {
    const int pw = warp_of(vw);
    if (charge.setup != 0) ctx.charge_compute(pw, charge.setup);
    for (int j = 0; j < rounds; ++j) {
      for (int lane = 0; lane < w; ++lane)
        addr[static_cast<std::size_t>(lane)] = addr_of(vw, lane, j);
      ctx.charge_compute(pw, charge.round);
      shmem.gather(pw, aspan, vspan);
      for (int lane = 0; lane < w; ++lane)
        sink(vw, lane, j, vals[static_cast<std::size_t>(lane)]);
    }
  }
}

/// Mirror image of exec_crs_gather for warp-wide writes: `source(vw, lane,
/// j)` supplies the element each lane stores to `addr_of(vw, lane, j)`.
template <typename T, typename WarpOf, typename AddrOf, typename Source>
void exec_crs_scatter(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem, int w,
                      int rounds, int vwarps, const CrsCharge& charge, WarpOf&& warp_of,
                      AddrOf&& addr_of, Source&& source) {
  assert(w <= gpusim::kMaxLanes);
  std::array<std::int64_t, gpusim::kMaxLanes> addr;
  std::array<T, gpusim::kMaxLanes> vals{};
  const std::span<const std::int64_t> aspan(addr.data(), static_cast<std::size_t>(w));
  const std::span<const T> vspan(vals.data(), static_cast<std::size_t>(w));
  for (int vw = 0; vw < vwarps; ++vw) {
    const int pw = warp_of(vw);
    if (charge.setup != 0) ctx.charge_compute(pw, charge.setup);
    for (int j = 0; j < rounds; ++j) {
      for (int lane = 0; lane < w; ++lane) {
        addr[static_cast<std::size_t>(lane)] = addr_of(vw, lane, j);
        vals[static_cast<std::size_t>(lane)] = source(vw, lane, j);
      }
      ctx.charge_compute(pw, charge.round);
      shmem.scatter(pw, aspan, vspan);
    }
  }
}

/// Staged shared-to-shared copy (the block-sort cf_permute idiom): all
/// warps cooperatively move `count` elements from `src` to `dst`, warp k
/// handling lanes [k*w, k*w + w) of each block-wide chunk of u elements.
/// Each chunk charges kCopyChunkInstrs and issues one independent gather +
/// one independent scatter (the addresses are compile-time functions of the
/// slot, not of loaded data).
template <typename T, typename SrcOf, typename DstOf>
void exec_shared_copy(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& src,
                      gpusim::SharedTile<T>& dst, std::int64_t count, SrcOf&& src_of,
                      DstOf&& dst_of) {
  const int w = ctx.lanes();
  const int u = ctx.threads();
  assert(w <= gpusim::kMaxLanes);
  std::array<std::int64_t, gpusim::kMaxLanes> saddr;
  std::array<std::int64_t, gpusim::kMaxLanes> daddr;
  std::array<T, gpusim::kMaxLanes> vals{};
  const std::span<T> vspan(vals.data(), static_cast<std::size_t>(w));
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    for (std::int64_t base = static_cast<std::int64_t>(warp) * w; base < count;
         base += u) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t t = base + lane;
        const bool active = t < count;
        saddr[static_cast<std::size_t>(lane)] =
            active ? src_of(t) : gpusim::kInactiveLane;
        daddr[static_cast<std::size_t>(lane)] =
            active ? dst_of(t) : gpusim::kInactiveLane;
      }
      ctx.charge_compute(warp, sort::cost::kCopyChunkInstrs);
      src.gather(warp, std::span<const std::int64_t>(saddr.data(), vspan.size()), vspan,
                 /*dependent=*/false);
      dst.scatter(warp, std::span<const std::int64_t>(daddr.data(), vspan.size()), vspan,
                  /*dependent=*/false);
    }
  }
}

}  // namespace cfmerge::cfprims
