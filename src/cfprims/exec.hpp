// Shared executors for the CF primitives: the warp-loop skeletons every
// CRS-style gather/scatter and staged shared-to-shared copy in the sort
// kernels instantiate.
//
// The accounting contract is frozen: a primitive execution charges exactly
//
//   per (virtual) warp:  charge.setup warp instructions (0 = skip), then
//   per round:           charge.round warp instructions followed by ONE
//                        warp-wide shared access (gather or scatter),
//
// which is bit-identical to the loops these helpers replaced in
// sort/merge_pass.hpp, sort/multiway_pass.hpp, sort/block_sort.hpp and
// gather/dual_gather.hpp (pinned by tests/test_cfprims_golden.cpp).  Any
// change here shifts every counter in every report.
//
// This header deliberately depends only on gpusim + the cost constants so
// that both the gather layer and the sort kernels can include it without
// cycles.
//
// Bulk fast path: each executor takes an optional CfCertificate
// (verify/certificate.hpp).  When the pattern is certified and no observer
// needs per-lane addresses (BlockContext::bulk_shared()), the executor
// charges the whole progression in closed form via charge_shared_crs and
// moves the data in one fused loop — the exact counters and chains of the
// lane path, without materializing address buffers or re-screening what the
// verifier already proved.  A null certificate always takes the lane path.
//
// Certified-skip audit mode: with an auditor attached, the lane path
// normally runs so every access is shadow-checked.  When the context is in
// audit-skip mode (BlockContext::set_audit_skip) AND the certificate also
// carries a Pass 3 safety token (cert->safety), the bulk path runs anyway —
// the static bounds/init/race proof stands in for the per-lane replay — and
// the executor reports the elided progression through
// SharedTile::notify_certified_skip.  Counters and chains are bit-identical
// to the fully-audited run (charge_shared_crs is exact); only the audit
// granularity changes.  Data-dependent accesses (merge-path probes, serial
// merge) never carry certificates and always stay on the audited lane path.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <span>
#include <utility>

#include "gpusim/block_context.hpp"
#include "gpusim/memory_views.hpp"
#include "sort/cost_model.hpp"
#include "verify/certificate.hpp"

namespace cfmerge::cfprims {

/// Warp-instruction charges of one primitive execution (see header comment).
struct CrsCharge {
  std::uint64_t setup = 0;  ///< once per virtual warp; 0 = no setup charge
  std::uint64_t round = 0;  ///< before each warp-wide shared access
};

/// The dual-gather / cascade-merge cadence: per-thread setup (computing k,
/// offsets, bounds) then the mod-E bookkeeping of each Algorithm 1 round.
inline constexpr CrsCharge kGatherCharge{sort::cost::kThreadSetupInstrs,
                                         sort::cost::kGatherRoundInstrs};
/// The plain copy cadence (stride-E register write-back, output scatter):
/// address arithmetic only, no per-thread setup.
inline constexpr CrsCharge kCopyCharge{0, sort::cost::kCopyChunkInstrs};

/// Whether this execution may take the closed-form bulk path: certified,
/// and either no observer needs per-lane addresses or certified-skip audit
/// mode applies (the certificate must then carry the Pass 3 safety token).
inline bool bulk_path(const gpusim::BlockContext& ctx,
                      const verify::CfCertificate* cert) {
  return cert != nullptr && ctx.bulk_shared_skip(cert->safety != nullptr);
}

/// Executes one CRS-style gather: `vwarps` virtual warps each perform
/// `rounds` warp-wide reads of `shmem`.  `warp_of(vw)` maps the virtual
/// warp to the physical warp that issues (and is charged for) its
/// accesses; `addr_of(vw, lane, j)` gives the shared slot; `sink(vw, lane,
/// j, value)` receives each element read.  All w lanes must be active.
/// `cert` enables the closed-form bulk path (see header comment).
template <typename T, typename WarpOf, typename AddrOf, typename Sink>
void exec_crs_gather(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem, int w,
                     int rounds, int vwarps, const CrsCharge& charge,
                     const verify::CfCertificate* cert, WarpOf&& warp_of,
                     AddrOf&& addr_of, Sink&& sink) {
  assert(w <= gpusim::kMaxLanes);
  if (bulk_path(ctx, cert) && rounds > 0) {
    const std::span<const T> data = std::as_const(shmem).raw();
    for (int vw = 0; vw < vwarps; ++vw) {
      const int pw = warp_of(vw);
      ctx.charge_compute(pw,
                         charge.setup + static_cast<std::uint64_t>(rounds) * charge.round);
      for (int j = 0; j < rounds; ++j) {
        for (int lane = 0; lane < w; ++lane) {
          const std::int64_t a = addr_of(vw, lane, j);
          assert(a >= 0 && static_cast<std::size_t>(a) < data.size());
          sink(vw, lane, j, data[static_cast<std::size_t>(a)]);
        }
      }
      ctx.charge_shared_crs(pw, gpusim::CrsAccessDesc{.rounds = rounds,
                                                      .dependent_rounds = rounds,
                                                      .active_lanes = w,
                                                      .is_write = false});
    }
    if (ctx.audit_skipping())
      shmem.notify_certified_skip(0, static_cast<std::int64_t>(data.size()),
                                  static_cast<std::uint64_t>(vwarps) *
                                      static_cast<std::uint64_t>(rounds),
                                  w, /*is_write=*/false);
    return;
  }
  std::array<std::int64_t, gpusim::kMaxLanes> addr;
  std::array<T, gpusim::kMaxLanes> vals{};
  const std::span<const std::int64_t> aspan(addr.data(), static_cast<std::size_t>(w));
  const std::span<T> vspan(vals.data(), static_cast<std::size_t>(w));
  for (int vw = 0; vw < vwarps; ++vw) {
    const int pw = warp_of(vw);
    if (charge.setup != 0) ctx.charge_compute(pw, charge.setup);
    for (int j = 0; j < rounds; ++j) {
      for (int lane = 0; lane < w; ++lane)
        addr[static_cast<std::size_t>(lane)] = addr_of(vw, lane, j);
      ctx.charge_compute(pw, charge.round);
      shmem.gather(pw, aspan, vspan);
      for (int lane = 0; lane < w; ++lane)
        sink(vw, lane, j, vals[static_cast<std::size_t>(lane)]);
    }
  }
}

/// Uncertified form: always takes the lane path.
template <typename T, typename WarpOf, typename AddrOf, typename Sink>
void exec_crs_gather(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem, int w,
                     int rounds, int vwarps, const CrsCharge& charge, WarpOf&& warp_of,
                     AddrOf&& addr_of, Sink&& sink) {
  exec_crs_gather(ctx, shmem, w, rounds, vwarps, charge,
                  static_cast<const verify::CfCertificate*>(nullptr),
                  std::forward<WarpOf>(warp_of), std::forward<AddrOf>(addr_of),
                  std::forward<Sink>(sink));
}

/// Mirror image of exec_crs_gather for warp-wide writes: `source(vw, lane,
/// j)` supplies the element each lane stores to `addr_of(vw, lane, j)`.
template <typename T, typename WarpOf, typename AddrOf, typename Source>
void exec_crs_scatter(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem, int w,
                      int rounds, int vwarps, const CrsCharge& charge,
                      const verify::CfCertificate* cert, WarpOf&& warp_of,
                      AddrOf&& addr_of, Source&& source) {
  assert(w <= gpusim::kMaxLanes);
  if (bulk_path(ctx, cert) && rounds > 0) {
    const std::span<T> data = shmem.certified_raw();
    const bool note = ctx.audit_skipping();
    std::int64_t lo = static_cast<std::int64_t>(data.size());
    std::int64_t hi = -1;
    for (int vw = 0; vw < vwarps; ++vw) {
      const int pw = warp_of(vw);
      ctx.charge_compute(pw,
                         charge.setup + static_cast<std::uint64_t>(rounds) * charge.round);
      for (int j = 0; j < rounds; ++j) {
        for (int lane = 0; lane < w; ++lane) {
          const std::int64_t a = addr_of(vw, lane, j);
          assert(a >= 0 && static_cast<std::size_t>(a) < data.size());
          data[static_cast<std::size_t>(a)] = source(vw, lane, j);
          if (note) {
            lo = std::min(lo, a);
            hi = std::max(hi, a);
          }
        }
      }
      ctx.charge_shared_crs(pw, gpusim::CrsAccessDesc{.rounds = rounds,
                                                      .dependent_rounds = rounds,
                                                      .active_lanes = w,
                                                      .is_write = true});
    }
    if (note && hi >= lo)
      shmem.notify_certified_skip(lo, hi + 1,
                                  static_cast<std::uint64_t>(vwarps) *
                                      static_cast<std::uint64_t>(rounds),
                                  w, /*is_write=*/true);
    return;
  }
  std::array<std::int64_t, gpusim::kMaxLanes> addr;
  std::array<T, gpusim::kMaxLanes> vals{};
  const std::span<const std::int64_t> aspan(addr.data(), static_cast<std::size_t>(w));
  const std::span<const T> vspan(vals.data(), static_cast<std::size_t>(w));
  for (int vw = 0; vw < vwarps; ++vw) {
    const int pw = warp_of(vw);
    if (charge.setup != 0) ctx.charge_compute(pw, charge.setup);
    for (int j = 0; j < rounds; ++j) {
      for (int lane = 0; lane < w; ++lane) {
        addr[static_cast<std::size_t>(lane)] = addr_of(vw, lane, j);
        vals[static_cast<std::size_t>(lane)] = source(vw, lane, j);
      }
      ctx.charge_compute(pw, charge.round);
      shmem.scatter(pw, aspan, vspan);
    }
  }
}

/// exec_crs_gather specialised for the stride-E register staging pattern:
/// addr(vw, lane, j) = (vw*w + lane)*rounds + j, sink = regs[same index].
/// One virtual warp's addresses cover exactly the contiguous range
/// [vw*w*rounds, (vw+1)*w*rounds), so the certified bulk path moves the
/// whole warp block with one std::copy; charges are identical to the
/// generic executor on the same pattern.
template <typename T>
void exec_stride_gather(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem, int w,
                        int rounds, int vwarps, const CrsCharge& charge,
                        const verify::CfCertificate* cert, std::span<T> regs) {
  if (bulk_path(ctx, cert) && rounds > 0) {
    const std::span<const T> data = std::as_const(shmem).raw();
    const auto per_warp = static_cast<std::size_t>(w) * static_cast<std::size_t>(rounds);
    for (int vw = 0; vw < vwarps; ++vw) {
      ctx.charge_compute(vw,
                         charge.setup + static_cast<std::uint64_t>(rounds) * charge.round);
      const std::size_t first = static_cast<std::size_t>(vw) * per_warp;
      assert(first + per_warp <= data.size() && first + per_warp <= regs.size());
      std::copy(data.begin() + static_cast<std::ptrdiff_t>(first),
                data.begin() + static_cast<std::ptrdiff_t>(first + per_warp),
                regs.begin() + static_cast<std::ptrdiff_t>(first));
      ctx.charge_shared_crs(vw, gpusim::CrsAccessDesc{.rounds = rounds,
                                                      .dependent_rounds = rounds,
                                                      .active_lanes = w,
                                                      .is_write = false});
    }
    if (ctx.audit_skipping())
      shmem.notify_certified_skip(
          0, static_cast<std::int64_t>(static_cast<std::size_t>(vwarps) * per_warp),
          static_cast<std::uint64_t>(vwarps) * static_cast<std::uint64_t>(rounds), w,
          /*is_write=*/false);
    return;
  }
  exec_crs_gather(
      ctx, shmem, w, rounds, vwarps, charge, cert, [](int vw) { return vw; },
      [w, rounds](int vw, int lane, int j) {
        return static_cast<std::int64_t>(vw * w + lane) * rounds + j;
      },
      [regs, rounds, w](int vw, int lane, int j, const T& v) {
        regs[static_cast<std::size_t>(vw * w + lane) * static_cast<std::size_t>(rounds) +
             static_cast<std::size_t>(j)] = v;
      });
}

/// Mirror image of exec_stride_gather: regs -> shared, same index map.
template <typename T>
void exec_stride_scatter(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem, int w,
                         int rounds, int vwarps, const CrsCharge& charge,
                         const verify::CfCertificate* cert, std::span<const T> regs) {
  if (bulk_path(ctx, cert) && rounds > 0) {
    const std::span<T> data = shmem.certified_raw();
    const auto per_warp = static_cast<std::size_t>(w) * static_cast<std::size_t>(rounds);
    for (int vw = 0; vw < vwarps; ++vw) {
      ctx.charge_compute(vw,
                         charge.setup + static_cast<std::uint64_t>(rounds) * charge.round);
      const std::size_t first = static_cast<std::size_t>(vw) * per_warp;
      assert(first + per_warp <= data.size() && first + per_warp <= regs.size());
      std::copy(regs.begin() + static_cast<std::ptrdiff_t>(first),
                regs.begin() + static_cast<std::ptrdiff_t>(first + per_warp),
                data.begin() + static_cast<std::ptrdiff_t>(first));
      ctx.charge_shared_crs(vw, gpusim::CrsAccessDesc{.rounds = rounds,
                                                      .dependent_rounds = rounds,
                                                      .active_lanes = w,
                                                      .is_write = true});
    }
    if (ctx.audit_skipping())
      shmem.notify_certified_skip(
          0, static_cast<std::int64_t>(static_cast<std::size_t>(vwarps) * per_warp),
          static_cast<std::uint64_t>(vwarps) * static_cast<std::uint64_t>(rounds), w,
          /*is_write=*/true);
    return;
  }
  exec_crs_scatter(
      ctx, shmem, w, rounds, vwarps, charge, cert, [](int vw) { return vw; },
      [w, rounds](int vw, int lane, int j) {
        return static_cast<std::int64_t>(vw * w + lane) * rounds + j;
      },
      [regs, rounds, w](int vw, int lane, int j) {
        return regs[static_cast<std::size_t>(vw * w + lane) *
                        static_cast<std::size_t>(rounds) +
                    static_cast<std::size_t>(j)];
      });
}

/// Uncertified form: always takes the lane path.
template <typename T, typename WarpOf, typename AddrOf, typename Source>
void exec_crs_scatter(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem, int w,
                      int rounds, int vwarps, const CrsCharge& charge, WarpOf&& warp_of,
                      AddrOf&& addr_of, Source&& source) {
  exec_crs_scatter(ctx, shmem, w, rounds, vwarps, charge,
                   static_cast<const verify::CfCertificate*>(nullptr),
                   std::forward<WarpOf>(warp_of), std::forward<AddrOf>(addr_of),
                   std::forward<Source>(source));
}

/// Staged shared-to-shared copy (the block-sort cf_permute idiom): all
/// warps cooperatively move `count` elements from `src` to `dst`, warp k
/// handling lanes [k*w, k*w + w) of each block-wide chunk of u elements.
/// Each chunk charges kCopyChunkInstrs and issues one independent gather +
/// one independent scatter (the addresses are compile-time functions of the
/// slot, not of loaded data).  `src` and `dst` must be distinct tiles.
/// A certificate must cover *both* sides of every chunk (w-aligned warp
/// windows through src_of and dst_of each hit distinct banks).
template <typename T, typename SrcOf, typename DstOf>
void exec_shared_copy(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& src,
                      gpusim::SharedTile<T>& dst, std::int64_t count,
                      const verify::CfCertificate* cert, SrcOf&& src_of,
                      DstOf&& dst_of) {
  const int w = ctx.lanes();
  const int u = ctx.threads();
  assert(w <= gpusim::kMaxLanes);
  if (bulk_path(ctx, cert) && count > 0) {
    const std::span<const T> s = std::as_const(src).raw();
    const std::span<T> d = dst.certified_raw();
    std::uint64_t total_chunks = 0;
    for (int warp = 0; warp < ctx.warps(); ++warp) {
      const std::int64_t first = static_cast<std::int64_t>(warp) * w;
      if (first >= count) continue;
      const auto chunks = static_cast<int>((count - first + u - 1) / u);
      total_chunks += static_cast<std::uint64_t>(chunks);
      ctx.charge_compute(warp, static_cast<std::uint64_t>(chunks) *
                                   sort::cost::kCopyChunkInstrs);
      ctx.charge_shared_crs(warp, gpusim::CrsAccessDesc{.rounds = chunks,
                                                        .active_lanes = w,
                                                        .is_write = false});
      ctx.charge_shared_crs(warp, gpusim::CrsAccessDesc{.rounds = chunks,
                                                        .active_lanes = w,
                                                        .is_write = true});
    }
    const bool note = ctx.audit_skipping();
    std::int64_t dlo = static_cast<std::int64_t>(d.size());
    std::int64_t dhi = -1;
    for (std::int64_t t = 0; t < count; ++t) {
      const std::int64_t sa = src_of(t);
      const std::int64_t da = dst_of(t);
      assert(sa >= 0 && static_cast<std::size_t>(sa) < s.size());
      assert(da >= 0 && static_cast<std::size_t>(da) < d.size());
      d[static_cast<std::size_t>(da)] = s[static_cast<std::size_t>(sa)];
      if (note) {
        dlo = std::min(dlo, da);
        dhi = std::max(dhi, da);
      }
    }
    if (note) {
      src.notify_certified_skip(0, static_cast<std::int64_t>(s.size()), total_chunks,
                                w, /*is_write=*/false);
      if (dhi >= dlo)
        dst.notify_certified_skip(dlo, dhi + 1, total_chunks, w, /*is_write=*/true);
    }
    return;
  }
  std::array<std::int64_t, gpusim::kMaxLanes> saddr;
  std::array<std::int64_t, gpusim::kMaxLanes> daddr;
  std::array<T, gpusim::kMaxLanes> vals{};
  const std::span<T> vspan(vals.data(), static_cast<std::size_t>(w));
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    for (std::int64_t base = static_cast<std::int64_t>(warp) * w; base < count;
         base += u) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t t = base + lane;
        const bool active = t < count;
        saddr[static_cast<std::size_t>(lane)] =
            active ? src_of(t) : gpusim::kInactiveLane;
        daddr[static_cast<std::size_t>(lane)] =
            active ? dst_of(t) : gpusim::kInactiveLane;
      }
      ctx.charge_compute(warp, sort::cost::kCopyChunkInstrs);
      src.gather(warp, std::span<const std::int64_t>(saddr.data(), vspan.size()), vspan,
                 /*dependent=*/false);
      dst.scatter(warp, std::span<const std::int64_t>(daddr.data(), vspan.size()), vspan,
                  /*dependent=*/false);
    }
  }
}

/// Uncertified form: always takes the lane path.
template <typename T, typename SrcOf, typename DstOf>
void exec_shared_copy(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& src,
                      gpusim::SharedTile<T>& dst, std::int64_t count, SrcOf&& src_of,
                      DstOf&& dst_of) {
  exec_shared_copy(ctx, src, dst, count,
                   static_cast<const verify::CfCertificate*>(nullptr),
                   std::forward<SrcOf>(src_of), std::forward<DstOf>(dst_of));
}

}  // namespace cfmerge::cfprims
