// Full pairwise mergesort pipeline on the simulated GPU.
//
//   block sort  ->  ceil(log2(n / tile)) merge passes (partition + merge)
//
// Inputs of arbitrary length are padded to a tile multiple with +infinity
// sentinels (Thrust clamps ragged tiles instead; padding exercises the same
// code paths with full tiles, and the reported element counts/throughputs
// always refer to the unpadded n).
//
// The pipeline is *enqueued* onto a gpusim::Stream (one KernelGraph node
// per kernel, chained in stream order) and executed with Launcher::run, so
// the same enqueue helper serves both the standalone sort and
// sort::segmented_sort, where many of these chains overlap in one graph.
// For a single sort the chain is linear, every wavefront holds one kernel,
// and the history/trace/counters are bit-identical to the old
// launch-per-kernel cadence.
//
// All kernels enqueued here write block-disjoint data (each block owns its
// tile / partition slots), so the pipeline is safe under the Launcher's
// parallel block executor and its reports are bit-identical for every
// worker-thread count (Launcher::set_threads; asserted by
// test_merge_sort's MergeSortParallelCases).
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/launcher.hpp"
#include "sort/key_value.hpp"
#include "sort/merge_pass.hpp"

namespace cfmerge::sort {

/// Outcome of a simulated sort: the sorted data plus the full cost picture.
struct SortReport {
  std::int64_t n = 0;             ///< unpadded element count
  std::int64_t n_padded = 0;
  int passes = 0;                 ///< number of global merge passes
  double microseconds = 0.0;      ///< total simulated kernel time (serial sum)
  /// Graph-overlap simulated time (Launcher::run makespan).  The sort is one
  /// dependency chain, so this equals `microseconds` here; segmented_sort
  /// reports a smaller makespan when independent chains overlap.
  double makespan_microseconds = 0.0;
  int graph_levels = 0;           ///< dependency-chain length of the kernel graph
  gpusim::Counters totals;        ///< counters summed over all kernels
  gpusim::PhaseCounters phases;   ///< per-phase breakdown
  std::vector<gpusim::KernelReport> kernels;

  /// Elements sorted per simulated microsecond (the paper's figure metric).
  [[nodiscard]] double throughput() const {
    return microseconds > 0 ? static_cast<double>(n) / microseconds : 0.0;
  }
  /// Bank conflicts in the pairwise-merge kernels' merge phase only (what
  /// nvprof measured for the paper: "no bank conflicts during merging").
  /// The block-sort stage is identical in both variants and excluded.
  [[nodiscard]] std::uint64_t merge_conflicts() const;
  [[nodiscard]] std::uint64_t merge_shared_accesses() const;
  /// Bank conflicts in the (variant-independent) block-sort merge rounds.
  [[nodiscard]] std::uint64_t blocksort_conflicts() const;
};

namespace detail {

/// Enqueues the full sort pipeline for one padded buffer onto `stream`:
/// block sort followed by the per-pass partition + merge chain.  `buf` must
/// already hold the (sentinel-padded) input of `n_padded` elements; `tmp`
/// and `boundaries` are resized here and must stay alive (and un-moved)
/// until the graph executed.  Returns the buffer that holds the sorted
/// result after execution and reports the pass count via `passes`.
template <typename T>
std::vector<T>* enqueue_sort_pipeline(gpusim::Stream& stream, std::vector<T>& buf,
                                      std::vector<T>& tmp,
                                      std::vector<std::int64_t>& boundaries,
                                      std::int64_t n_padded, const MergeConfig& cfg,
                                      int& passes) {
  const std::int64_t tile = cfg.tile();
  const int num_tiles = static_cast<int>(n_padded / tile);
  const int regs = cfg.variant == Variant::CFMerge ? cost::cfmerge_regs_per_thread(cfg.e)
                                                   : cost::baseline_regs_per_thread(cfg.e);
  tmp.resize(static_cast<std::size_t>(n_padded));
  boundaries.assign(static_cast<std::size_t>(num_tiles) + 1, 0);

  // --- stage 1: block sort ------------------------------------------------
  {
    gpusim::LaunchShape shape{num_tiles, cfg.u,
                              static_cast<std::size_t>(tile) * sizeof(T), regs};
    const bool cf_rounds = cfg.variant == Variant::CFMerge && cfg.cf_blocksort;
    if (cf_rounds) shape.shared_bytes_per_block *= 2;  // staging buffer
    stream.enqueue("block_sort", shape,
                   [&buf, e = cfg.e, cf_rounds, certs = cfg.certs](gpusim::BlockContext& ctx) {
                     block_sort_body<T>(ctx, std::span<T>(buf), e, cf_rounds,
                                        std::less<T>{}, certs);
                   });
  }

  // --- stage 2: merge passes ----------------------------------------------
  // All passes are enqueued up front; each body captures the pass's source
  // and destination buffer pointers by value (they ping-pong per pass) and
  // the shared `boundaries` scratch by reference — the in-stream dependency
  // chain orders every reader after its writer.
  std::vector<T>* src = &buf;
  std::vector<T>* dst = &tmp;
  passes = 0;
  for (std::int64_t run = tile; run < n_padded; run *= 2) {
    ++passes;
    const PassGeometry geom{n_padded, run};

    const auto nb = static_cast<std::int64_t>(boundaries.size());
    const int pblocks = static_cast<int>((nb + cfg.u - 1) / cfg.u);
    gpusim::LaunchShape pshape{pblocks, cfg.u, 0, 24};
    stream.enqueue("merge_partition", pshape,
                   [src, &boundaries, geom, tile](gpusim::BlockContext& ctx) {
                     merge_partition_body<T>(ctx, std::span<const T>(*src), geom, tile,
                                             std::span<std::int64_t>(boundaries));
                   });

    gpusim::LaunchShape mshape{num_tiles, cfg.u,
                               static_cast<std::size_t>(tile) * sizeof(T), regs};
    stream.enqueue("merge_pass", mshape,
                   [src, dst, &boundaries, geom, cfg](gpusim::BlockContext& ctx) {
                     merge_tile_body<T>(ctx, std::span<const T>(*src), std::span<T>(*dst),
                                        geom, cfg,
                                        std::span<const std::int64_t>(boundaries));
                   });
    std::swap(src, dst);
  }
  return src;
}

}  // namespace detail

}  // namespace cfmerge::sort

// The entry points (merge_sort, merge_sort_by_key) are thin wrappers over
// sort::SortEngine and live there; pulled in here so that including this
// header keeps providing them.
#include "sort/engine.hpp"
