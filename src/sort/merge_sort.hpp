// Full pairwise mergesort pipeline on the simulated GPU.
//
//   block sort  ->  ceil(log2(n / tile)) merge passes (partition + merge)
//
// Inputs of arbitrary length are padded to a tile multiple with +infinity
// sentinels (Thrust clamps ragged tiles instead; padding exercises the same
// code paths with full tiles, and the reported element counts/throughputs
// always refer to the unpadded n).
//
// All kernels launched here write block-disjoint data (each block owns its
// tile / partition slots), so the pipeline is safe under the Launcher's
// parallel block executor and its reports are bit-identical for every
// worker-thread count (Launcher::set_threads; asserted by
// test_merge_sort's MergeSortParallelCases).
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/launcher.hpp"
#include "sort/key_value.hpp"
#include "sort/merge_pass.hpp"

namespace cfmerge::sort {

/// Outcome of a simulated sort: the sorted data plus the full cost picture.
struct SortReport {
  std::int64_t n = 0;             ///< unpadded element count
  std::int64_t n_padded = 0;
  int passes = 0;                 ///< number of global merge passes
  double microseconds = 0.0;      ///< total simulated kernel time
  gpusim::Counters totals;        ///< counters summed over all kernels
  gpusim::PhaseCounters phases;   ///< per-phase breakdown
  std::vector<gpusim::KernelReport> kernels;

  /// Elements sorted per simulated microsecond (the paper's figure metric).
  [[nodiscard]] double throughput() const {
    return microseconds > 0 ? static_cast<double>(n) / microseconds : 0.0;
  }
  /// Bank conflicts in the pairwise-merge kernels' merge phase only (what
  /// nvprof measured for the paper: "no bank conflicts during merging").
  /// The block-sort stage is identical in both variants and excluded.
  [[nodiscard]] std::uint64_t merge_conflicts() const;
  [[nodiscard]] std::uint64_t merge_shared_accesses() const;
  /// Bank conflicts in the (variant-independent) block-sort merge rounds.
  [[nodiscard]] std::uint64_t blocksort_conflicts() const;
};

/// Sorts `data` in place with the configured variant.  `launcher.history()`
/// is cleared and then holds one report per launched kernel.
template <typename T>
SortReport merge_sort(gpusim::Launcher& launcher, std::vector<T>& data,
                      const MergeConfig& cfg) {
  const gpusim::DeviceSpec& dev = launcher.device();
  if (cfg.e <= 0) throw std::invalid_argument("merge_sort: E must be positive");
  if (cfg.u <= 0 || cfg.u % dev.warp_size != 0)
    throw std::invalid_argument("merge_sort: u must be a positive multiple of warp_size");

  SortReport report;
  report.n = static_cast<std::int64_t>(data.size());
  if (report.n == 0) return report;

  const std::int64_t tile = cfg.tile();
  const std::int64_t n_padded = (report.n + tile - 1) / tile * tile;
  report.n_padded = n_padded;
  std::vector<T> buf = data;
  buf.resize(static_cast<std::size_t>(n_padded), padding_sentinel<T>::value());
  std::vector<T> tmp(static_cast<std::size_t>(n_padded));

  launcher.clear_history();
  const int regs = cfg.variant == Variant::CFMerge ? cost::cfmerge_regs_per_thread(cfg.e)
                                                   : cost::baseline_regs_per_thread(cfg.e);
  const int num_tiles = static_cast<int>(n_padded / tile);

  // --- stage 1: block sort ------------------------------------------------
  {
    gpusim::LaunchShape shape{num_tiles, cfg.u,
                              static_cast<std::size_t>(tile) * sizeof(T), regs};
    const bool cf_rounds = cfg.variant == Variant::CFMerge && cfg.cf_blocksort;
    if (cf_rounds) shape.shared_bytes_per_block *= 2;  // staging buffer
    launcher.launch("block_sort", shape, [&](gpusim::BlockContext& ctx) {
      block_sort_body<T>(ctx, std::span<T>(buf), cfg.e, cf_rounds);
    });
  }

  // --- stage 2: merge passes ----------------------------------------------
  std::vector<std::int64_t> boundaries(static_cast<std::size_t>(num_tiles) + 1, 0);
  std::vector<T>* src = &buf;
  std::vector<T>* dst = &tmp;
  for (std::int64_t run = tile; run < n_padded; run *= 2) {
    ++report.passes;
    const PassGeometry geom{n_padded, run};

    const auto nb = static_cast<std::int64_t>(boundaries.size());
    const int pblocks = static_cast<int>((nb + cfg.u - 1) / cfg.u);
    gpusim::LaunchShape pshape{pblocks, cfg.u, 0, 24};
    launcher.launch("merge_partition", pshape, [&](gpusim::BlockContext& ctx) {
      merge_partition_body<T>(ctx, std::span<const T>(*src), geom, tile,
                              std::span<std::int64_t>(boundaries));
    });

    gpusim::LaunchShape mshape{num_tiles, cfg.u,
                               static_cast<std::size_t>(tile) * sizeof(T), regs};
    launcher.launch("merge_pass", mshape, [&](gpusim::BlockContext& ctx) {
      merge_tile_body<T>(ctx, std::span<const T>(*src), std::span<T>(*dst), geom, cfg,
                         std::span<const std::int64_t>(boundaries));
    });
    std::swap(src, dst);
  }

  std::copy(src->begin(), src->begin() + report.n, data.begin());
  report.kernels = launcher.history();
  report.microseconds = launcher.total_microseconds();
  report.totals = launcher.total_counters();
  report.phases = launcher.phase_counters();
  return report;
}

/// Sorts `keys` and applies the same permutation to `values` (Thrust's
/// sort_by_key).  Sizes must match.  See key_value.hpp for the stability
/// guarantees per variant.
template <typename K, typename V>
SortReport merge_sort_by_key(gpusim::Launcher& launcher, std::vector<K>& keys,
                             std::vector<V>& values, const MergeConfig& cfg) {
  if (keys.size() != values.size())
    throw std::invalid_argument("merge_sort_by_key: keys/values size mismatch");
  std::vector<KeyValue<K, V>> pairs(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) pairs[i] = {keys[i], values[i]};
  const SortReport report = merge_sort(launcher, pairs, cfg);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = pairs[i].key;
    values[i] = pairs[i].value;
  }
  return report;
}

}  // namespace cfmerge::sort
