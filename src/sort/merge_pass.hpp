// One global merge pass of the pairwise mergesort.
//
// Runs of length `run` are merged pairwise.  Stage 1 (partition kernel)
// computes, for every tile boundary of the pass output, the co-rank of the
// boundary inside its pair via binary search in global memory — Thrust's
// hierarchical 2-stage identification of subsequences.  Stage 2 (merge
// kernel) processes one output tile of u*E elements per block:
//
//   load A-chunk and B-chunk into shared      (baseline: linear;
//                                              CF-Merge: rho(A ∪ pi(B)))
//   per-thread merge-path search in shared    (both variants)
//   per-thread merge of A_i and B_i           (baseline: sequential merge
//                                              from shared — bank conflicts;
//                                              CF-Merge: dual subsequence
//                                              gather + odd-even network in
//                                              registers — conflict free)
//   write the merged tile back                (stride-E register->shared,
//                                              then coalesced store)
//
// A lone run at the end of a pass (odd run count) is handled by the same
// kernel with an empty B list.
#pragma once

#include <algorithm>
#include <array>
#include <functional>
#include <stdexcept>
#include <vector>

#include "cfprims/exec.hpp"
#include "gather/dual_gather.hpp"
#include "gpusim/launcher.hpp"
#include "gpusim/memory_views.hpp"
#include "sort/block_sort.hpp"
#include "sort/certs.hpp"
#include "sort/kernels.hpp"

namespace cfmerge::sort {

enum class Variant {
  Baseline,  ///< unmodified Thrust-style merge (sequential shared merge)
  CFMerge,   ///< bank conflict free load-balanced dual subsequence gather
};

/// Tuning and ablation knobs of a sort/merge configuration.
struct MergeConfig {
  int e = 15;  ///< elements per thread (paper's E)
  int u = 512; ///< threads per block
  Variant variant = Variant::CFMerge;
  /// Ablation: keep pi but disable the circular shift rho (only meaningful
  /// when gcd(w, E) > 1 — the paper's Section 3.2 shows conflicts return).
  bool disable_rho = false;
  /// Write the merged output through rho when gcd(w, E) > 1, so the
  /// stride-E register->shared scatter stays conflict free (the inverse
  /// dual subsequence scatter of footnote 5).  Baseline never does this.
  bool cf_output_scatter = true;
  /// Extension (off by default, matching the paper): use the dual gather in
  /// the block-sort rounds whose run pairs span full warps.  Costs a second
  /// shared-memory staging buffer (occupancy); see block_sort.hpp.
  bool cf_blocksort = false;
  /// Conflict-freedom certificates for this (w, E), resolved by the engine
  /// (or any pipeline entry point) via resolve_tile_certs.  Null members —
  /// including the all-null default — force the lane-accurate path.
  TileCerts certs{};

  [[nodiscard]] std::int64_t tile() const { return static_cast<std::int64_t>(u) * e; }
};

/// Validates the MergeConfig invariants shared by every sort entry point
/// (merge_sort, merge_arrays, batched_merge, segmented_sort), so the
/// rejection messages stay uniform.  Throws std::invalid_argument naming
/// the first violated constraint.
inline void validate_merge_config(const gpusim::DeviceSpec& dev, const MergeConfig& cfg) {
  if (cfg.e <= 0) throw std::invalid_argument("MergeConfig: E must be positive");
  if (cfg.u <= 0) throw std::invalid_argument("MergeConfig: u must be positive");
  if (cfg.u % dev.warp_size != 0)
    throw std::invalid_argument("MergeConfig: u must be a multiple of the warp size");
}

/// Geometry of one pass: which pair a global output position belongs to.
struct PassGeometry {
  std::int64_t n = 0;    ///< total elements (multiple of tile)
  std::int64_t run = 0;  ///< input run length (multiple of tile)

  /// Start of the pair containing output position `pos`.
  [[nodiscard]] std::int64_t pair_base(std::int64_t pos) const {
    return pos / (2 * run) * (2 * run);
  }
  /// Sizes of the A and B runs of the pair at `base` (B may be short or
  /// empty at the end of the array).
  [[nodiscard]] std::int64_t a_len(std::int64_t base) const {
    return std::min(run, n - base);
  }
  [[nodiscard]] std::int64_t b_len(std::int64_t base) const {
    return std::clamp<std::int64_t>(n - base - run, 0, run);
  }
};

/// Stage 1: partition kernel.  Computes co-ranks for every tile boundary.
/// `boundaries[t]` receives the co-rank (number of A-elements) of output
/// diagonal t*tile within its pair.  One simulated thread per boundary.
template <typename T, typename Cmp = std::less<T>>
void merge_partition_body(gpusim::BlockContext& ctx, std::span<const T> input,
                          const PassGeometry& geom, std::int64_t tile,
                          std::span<std::int64_t> boundaries, Cmp cmp = Cmp{}) {
  const int u = ctx.threads();
  const int w = ctx.lanes();
  const auto nb = static_cast<std::int64_t>(boundaries.size());
  gpusim::GlobalView<const T> global(ctx, input, 0);

  ctx.phase("partition.search");
  assert(w <= gpusim::kMaxLanes);
  std::array<mergepath::LaneSearch, gpusim::kMaxLanes> lanes;
  std::array<std::int64_t, gpusim::kMaxLanes> abase;
  std::array<std::int64_t, gpusim::kMaxLanes> bbase;
  std::array<std::int64_t, gpusim::kMaxLanes> pa;
  std::array<std::int64_t, gpusim::kMaxLanes> pb;
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    bool any = false;
    for (int lane = 0; lane < w; ++lane) {
      const auto l = static_cast<std::size_t>(lane);
      lanes[l] = mergepath::LaneSearch{};
      abase[l] = 0;
      bbase[l] = 0;
      const std::int64_t t =
          static_cast<std::int64_t>(ctx.block_id()) * u + warp * w + lane;
      if (t >= nb) continue;
      const std::int64_t pos = t * tile;
      const std::int64_t base = pos >= geom.n ? geom.n : geom.pair_base(pos);
      const std::int64_t diag = pos - base;
      const std::int64_t la = geom.a_len(base);
      const std::int64_t lb = geom.b_len(base);
      lanes[l].init(std::min(diag, la + lb), la, lb);
      abase[l] = base;
      bbase[l] = base + la;
      any = true;
    }
    if (!any) continue;
    auto probe = [&](std::span<const std::int64_t> a_addr, std::span<T> a_val,
                     std::span<const std::int64_t> b_addr, std::span<T> b_val) {
      for (int lane = 0; lane < w; ++lane) {
        const auto l = static_cast<std::size_t>(lane);
        pa[l] = a_addr[l] == gpusim::kInactiveLane ? gpusim::kInactiveLane
                                                   : abase[l] + a_addr[l];
        pb[l] = b_addr[l] == gpusim::kInactiveLane ? gpusim::kInactiveLane
                                                   : bbase[l] + b_addr[l];
      }
      ctx.charge_compute(warp, cost::kSearchIterInstrs);
      global.gather(warp, std::span<const std::int64_t>(pa.data(), a_val.size()), a_val,
                    /*dependent=*/true);
      global.gather(warp, std::span<const std::int64_t>(pb.data(), b_val.size()), b_val,
                    /*dependent=*/false);
    };
    mergepath::warp_corank_search<T>(
        std::span<mergepath::LaneSearch>(lanes.data(), static_cast<std::size_t>(w)),
        probe, cmp);
    for (int lane = 0; lane < w; ++lane) {
      const std::int64_t t =
          static_cast<std::int64_t>(ctx.block_id()) * u + warp * w + lane;
      if (t >= nb) continue;
      boundaries[static_cast<std::size_t>(t)] = lanes[static_cast<std::size_t>(lane)].lo;
    }
  }
}

/// The shared core of every merge-kernel variant: given a block's A/B
/// source windows (global element offsets a_src/b_src of sizes la/lb) and
/// its output window view, stages the lists into shared memory (CF layout
/// when configured), searches the per-thread splits, merges (sequential or
/// gather + network) and stores the merged tile.  Reused by the sort's
/// merge pass, merge_arrays and batched_merge.
template <typename T, typename GIn, typename Cmp>
void merge_window_core(gpusim::BlockContext& ctx, GIn& gin, gpusim::GlobalView<T>& gout,
                       std::int64_t a_src, std::int64_t b_src, std::int64_t la,
                       std::int64_t lb, const MergeConfig& cfg, Cmp cmp) {
  const int u = ctx.threads();
  const int w = ctx.lanes();
  const int e = cfg.e;
  const std::int64_t tile = cfg.tile();

  const TileLayout layout =
      cfg.variant == Variant::CFMerge
          ? (cfg.disable_rho ? TileLayout::cf_no_rho(la, lb) : TileLayout::cf(la, lb, w, e))
          : TileLayout::linear(la, lb);

  gpusim::SharedTile<T> shmem(ctx, static_cast<std::size_t>(tile));

  // Load the two chunks; CF-Merge applies the layout permutation here
  // ("each thread block reorders elements during the initial transfer from
  // global memory into shared memory" — Section 5).  When the layout's
  // shift is the identity (linear, coprime CF, or the no-rho ablation) both
  // position maps are unit-step affine runs, covered by the cf_stage proof.
  if (!layout.is_cf() || layout.rho().identity()) {
    load_tile_affine(ctx, gin, shmem, la, a_src,
                     affine_map_of([&](std::int64_t t) { return layout.pos_a(t); }, la),
                     cfg.certs.stage);
    load_tile_affine(ctx, gin, shmem, lb, b_src,
                     affine_map_of([&](std::int64_t t) { return layout.pos_b(t); }, lb),
                     cfg.certs.stage);
  } else {
    load_tile(ctx, gin, shmem, la,
              [&](std::int64_t t) { return a_src + t; },
              [&](std::int64_t t) { return layout.pos_a(t); });
    load_tile(ctx, gin, shmem, lb,
              [&](std::int64_t t) { return b_src + t; },
              [&](std::int64_t t) { return layout.pos_b(t); });
  }
  ctx.barrier();

  // Per-thread merge-path search in shared memory.
  ctx.phase("merge.search");
  std::vector<ThreadSplit> splits(static_cast<std::size_t>(u));
  {
    const auto pos_a = [&](int, std::int64_t x) { return layout.pos_a(x); };
    const auto pos_b = [&](int, std::int64_t y) { return layout.pos_b(y); };
    std::array<LanePair, gpusim::kMaxLanes> pairs;
    std::array<LanePair, gpusim::kMaxLanes> end_pairs;
    std::array<std::int64_t, gpusim::kMaxLanes> start;
    std::array<std::int64_t, gpusim::kMaxLanes> end;
    for (int warp = 0; warp < ctx.warps(); ++warp) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t d = static_cast<std::int64_t>(warp * w + lane) * e;
        pairs[static_cast<std::size_t>(lane)] = {la, lb, d};
        end_pairs[static_cast<std::size_t>(lane)] = {la, lb, d + e};
      }
      warp_shared_corank(ctx, warp, shmem,
                         std::span<const LanePair>(pairs.data(), static_cast<std::size_t>(w)),
                         pos_a, pos_b, cmp,
                         std::span<std::int64_t>(start.data(), static_cast<std::size_t>(w)));
      warp_shared_corank(
          ctx, warp, shmem,
          std::span<const LanePair>(end_pairs.data(), static_cast<std::size_t>(w)), pos_a,
          pos_b, cmp, std::span<std::int64_t>(end.data(), static_cast<std::size_t>(w)));
      for (int lane = 0; lane < w; ++lane) {
        const int i = warp * w + lane;
        auto& s = splits[static_cast<std::size_t>(i)];
        s.a_off = start[static_cast<std::size_t>(lane)];
        s.a_size = end[static_cast<std::size_t>(lane)] - s.a_off;
        s.b_off = static_cast<std::int64_t>(i) * e - s.a_off;
        s.b_size = e - s.a_size;
      }
    }
  }

  // Per-thread merge.
  ctx.phase("merge.merge");
  std::vector<T> regs(static_cast<std::size_t>(tile));
  if (cfg.variant == Variant::CFMerge) {
    std::vector<std::int64_t> a_off(static_cast<std::size_t>(u));
    std::vector<std::int64_t> a_size(static_cast<std::size_t>(u));
    for (int i = 0; i < u; ++i) {
      a_off[static_cast<std::size_t>(i)] = splits[static_cast<std::size_t>(i)].a_off;
      a_size[static_cast<std::size_t>(i)] = splits[static_cast<std::size_t>(i)].a_size;
    }
    gather::GatherShape shape{w, e, u, la, lb};
    if (cfg.disable_rho) {
      // Ablation path: emulate the schedule with rho = identity by reading
      // through the layout's raw indices directly.  When gcd(w, E) = 1 the
      // real rho is the identity too, so raw = phys and the cf_gather proof
      // still covers the access; otherwise (the broken ablation) conflicts
      // are real and the lane path must count them.
      gather::RoundSchedule sched(shape, a_off, a_size);
      cfprims::exec_crs_gather(
          ctx, shmem, w, e, ctx.warps(), cfprims::kGatherCharge,
          cfg.certs.stride != nullptr ? cfg.certs.gather : nullptr,
          [](int vw) { return vw; },
          [&](int vw, int lane, int j) {
            return sched.read(vw * w + lane, j).raw;  // no rho applied
          },
          [&](int vw, int lane, int j, const T& v) {
            regs[static_cast<std::size_t>(vw * w + lane) * static_cast<std::size_t>(e) +
                 static_cast<std::size_t>(j)] = v;
          });
    } else {
      gather::RoundSchedule sched(shape, std::move(a_off), std::move(a_size));
      gather::dual_subsequence_gather(ctx, shmem, sched, std::span<T>(regs),
                                      cfg.certs.gather);
    }
    // Data-oblivious register merge.
    for (int warp = 0; warp < ctx.warps(); ++warp) {
      for (int lane = 0; lane < w; ++lane) {
        std::span<T> r(regs.data() + static_cast<std::size_t>(warp * w + lane) *
                                         static_cast<std::size_t>(e),
                       static_cast<std::size_t>(e));
        network_sort_result(r, cmp);
      }
      ctx.charge_compute(warp, static_cast<std::uint64_t>(odd_even_network_size(e)) *
                                   cost::kCompareExchangeInstrs);
    }
  } else {
    std::vector<MergeLaneDesc> descs(static_cast<std::size_t>(u));
    for (int i = 0; i < u; ++i) {
      const auto& s = splits[static_cast<std::size_t>(i)];
      descs[static_cast<std::size_t>(i)] = {s.a_off, s.a_size, s.b_off, s.b_size};
    }
    warp_serial_merge(ctx, shmem, std::span<const MergeLaneDesc>(descs), e,
                      [&](std::int64_t x) { return layout.pos_a(x); },
                      [&](std::int64_t y) { return layout.pos_b(y); }, std::span<T>(regs),
                      cmp);
  }
  ctx.barrier();

  // Write registers to shared (stride E), then store coalesced.
  ctx.phase("merge.store");
  const bool out_rho = cfg.variant == Variant::CFMerge && cfg.cf_output_scatter &&
                       !cfg.disable_rho;
  const gather::CircularShift out_shift(w, e, tile);
  auto out_pos = [&](std::int64_t t) { return out_rho ? out_shift(t) : t; };
  // The cf_rank_scatter primitive: stride-E register write-back through rho
  // (or raw for the baseline), copy cadence — no per-thread setup.  The raw
  // stride-E pattern is only certified when gcd(w, E) = 1 (cf_stride).
  if (!out_rho || out_shift.identity()) {
    // out_pos is the identity here, so the write-back is the pure stride-E
    // pattern and the certified path reduces to per-warp block copies.
    cfprims::exec_stride_scatter(ctx, shmem, w, e, ctx.warps(), cfprims::kCopyCharge,
                                 out_rho ? cfg.certs.rank_scatter : cfg.certs.stride,
                                 std::span<const T>(regs));
  } else {
    cfprims::exec_crs_scatter(
        ctx, shmem, w, e, ctx.warps(), cfprims::kCopyCharge, cfg.certs.rank_scatter,
        [](int vw) { return vw; },
        [&](int vw, int lane, int j) {
          return out_pos(static_cast<std::int64_t>(vw * w + lane) * e + j);
        },
        [&](int vw, int lane, int j) {
          return regs[static_cast<std::size_t>(vw * w + lane) * static_cast<std::size_t>(e) +
                      static_cast<std::size_t>(j)];
        });
  }
  ctx.barrier();
  if (!out_rho || out_shift.identity()) {
    store_tile_affine(ctx, shmem, gout, tile, AffineMap{0, 1}, 0, cfg.certs.stage);
  } else {
    store_tile(ctx, shmem, gout, tile, [&](std::int64_t t) { return out_pos(t); },
               [](std::int64_t t) { return t; });
  }
}

/// Stage 2: merge kernel body for one output tile.
template <typename T, typename Cmp = std::less<T>>
void merge_tile_body(gpusim::BlockContext& ctx, std::span<const T> input,
                     std::span<T> output, const PassGeometry& geom, const MergeConfig& cfg,
                     std::span<const std::int64_t> boundaries, Cmp cmp = Cmp{}) {
  const int w = ctx.lanes();
  const std::int64_t tile = cfg.tile();
  const std::int64_t out0 = static_cast<std::int64_t>(ctx.block_id()) * tile;
  const std::int64_t base = geom.pair_base(out0);
  const std::int64_t ra = geom.a_len(base);
  const std::int64_t rb = geom.b_len(base);

  // Block subsequence bounds from the partition kernel (a cheap global
  // read; one element per block boundary).
  ctx.phase("merge.load");
  {
    std::array<std::int64_t, gpusim::kMaxLanes> addr;
    addr.fill(gpusim::kInactiveLane);
    addr[0] = static_cast<std::int64_t>(ctx.block_id());
    addr[static_cast<std::size_t>(1 % w)] = static_cast<std::int64_t>(ctx.block_id()) + 1;
    std::array<std::int64_t, gpusim::kMaxLanes> vals;
    gpusim::GlobalView<const std::int64_t> bview(ctx, boundaries, 0);
    bview.gather(0,
                 std::span<const std::int64_t>(addr.data(), static_cast<std::size_t>(w)),
                 std::span<std::int64_t>(vals.data(), static_cast<std::size_t>(w)));
  }
  const std::int64_t diag0 = out0 - base;
  const std::int64_t diag1 = diag0 + tile;
  const std::int64_t a0 = boundaries[static_cast<std::size_t>(ctx.block_id())];
  // The co-rank of a boundary that coincides with the *end* of this pair was
  // computed relative to the next pair (as diagonal 0); the end co-rank of
  // this pair is simply ra.
  const std::int64_t a1 = diag1 >= ra + rb
                              ? ra
                              : boundaries[static_cast<std::size_t>(ctx.block_id()) + 1];
  const std::int64_t b0 = diag0 - a0;
  const std::int64_t b1 = diag1 - a1;
  const std::int64_t la = a1 - a0;
  const std::int64_t lb = b1 - b0;

  gpusim::GlobalView<const T> gin(ctx, input, 0);
  gpusim::GlobalView<T> gout(ctx, output.subspan(static_cast<std::size_t>(out0),
                                                 static_cast<std::size_t>(tile)),
                             out0);
  merge_window_core<T>(ctx, gin, gout, base + a0, base + ra + b0, la, lb, cfg, cmp);
}


}  // namespace cfmerge::sort
