#include "sort/merge_sort.hpp"

#include "sort/batched_merge.hpp"
#include "sort/merge_arrays.hpp"
#include "sort/segmented_sort.hpp"

namespace cfmerge::sort {

namespace {
// Only the pairwise-merge kernel's merge phase: this is what the paper's
// gather replaces and what its nvprof check ("no bank conflicts during
// merging") measured.  The block-sort stage is identical in both variants
// and tracked separately.  Phase sums are computed on the launcher's
// reduced (block-order) counters, so they are independent of the worker
// pool size.
bool is_merge_phase(const std::string& name) { return name == "merge.merge"; }
}  // namespace

std::uint64_t SortReport::merge_conflicts() const {
  std::uint64_t c = 0;
  for (const auto& [name, counters] : phases.phases())
    if (is_merge_phase(name)) c += counters.bank_conflicts;
  return c;
}

std::uint64_t SortReport::merge_shared_accesses() const {
  std::uint64_t c = 0;
  for (const auto& [name, counters] : phases.phases())
    if (is_merge_phase(name)) c += counters.shared_accesses;
  return c;
}

std::uint64_t MergeReport::merge_conflicts() const {
  std::uint64_t c = 0;
  for (const auto& [name, counters] : phases.phases())
    if (is_merge_phase(name)) c += counters.bank_conflicts;
  return c;
}

std::uint64_t BatchedMergeReport::merge_conflicts() const {
  std::uint64_t c = 0;
  for (const auto& [name, counters] : phases.phases())
    if (is_merge_phase(name)) c += counters.bank_conflicts;
  return c;
}

std::uint64_t SegmentedSortReport::merge_conflicts() const {
  std::uint64_t c = 0;
  for (const auto& [name, counters] : phases.phases())
    if (is_merge_phase(name)) c += counters.bank_conflicts;
  return c;
}

std::uint64_t SortReport::blocksort_conflicts() const {
  std::uint64_t c = 0;
  for (const auto& [name, counters] : phases.phases())
    if (name == "bsort.merge" || name == "bsort.search" || name == "bsort.thread_sort")
      c += counters.bank_conflicts;
  return c;
}

}  // namespace cfmerge::sort
