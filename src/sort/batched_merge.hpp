// Batched pairwise merge: merge many independent pairs of sorted arrays
// submitted as ONE kernel graph (cuDF/moderngpu-style vectorized API).
//
// Each pair is padded to full runs in a concatenated staging buffer and
// contributes two graph nodes — its partition kernel and its merge kernel,
// with one dependency edge between them.  Different pairs share no edges:
// their kernels are independent graph nodes that the executor overlaps
// (Launcher::run wavefronts), so the report carries both the serial kernel
// sum and the graph makespan.  The merge blocks look up their pair
// descriptor and run the same merge-window core as the sort's merge pass —
// so CF-Merge's zero-conflict guarantee carries over verbatim.  This is the
// natural library form of the paper's conclusion: the gather makes *any*
// parallel pair-of-arrays scan conflict free, including many scans at once.
//
// This header holds the report and descriptor types; the entry point is a
// thin wrapper over sort::SortEngine (engine.hpp, included at the bottom).
// The engine keys batched plans by the full (|A|, |B|) shape list, so a
// repeated batch shape reuses its staging layout, tile descriptors, and
// kernel nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/launcher.hpp"

namespace cfmerge::sort {

struct BatchedMergeReport {
  int pairs = 0;
  std::int64_t elements = 0;  ///< total merged elements across pairs
  double microseconds = 0.0;  ///< serial sum of all kernels
  /// Graph makespan: pairs are independent subgraphs, so this is the
  /// longest single pair's partition + merge chain.
  double makespan_microseconds = 0.0;
  int graph_levels = 0;  ///< 2 for a non-empty batch
  gpusim::Counters totals;
  gpusim::PhaseCounters phases;
  std::vector<gpusim::KernelReport> kernels;  ///< enqueue order, 2 per pair

  [[nodiscard]] double throughput() const {
    return microseconds > 0 ? static_cast<double>(elements) / microseconds : 0.0;
  }
  [[nodiscard]] double overlap_speedup() const {
    return makespan_microseconds > 0 ? microseconds / makespan_microseconds : 1.0;
  }
  [[nodiscard]] std::uint64_t merge_conflicts() const;
};

namespace detail {
/// Per-output-tile descriptor, precomputed on the host (in a real
/// implementation this is a tiny device array built by a setup kernel).
struct BatchTile {
  std::int32_t pair = 0;
  std::int64_t a_base = 0;  ///< staging offset of the pair's (padded) A run
  std::int64_t b_base = 0;
  std::int64_t ra = 0;      ///< real |A| of the pair
  std::int64_t rb = 0;
  std::int64_t diag0 = 0;   ///< output diagonal of this tile within the pair
  std::int64_t out_base = 0;  ///< offset of this tile in the packed output
};
}  // namespace detail

}  // namespace cfmerge::sort

// The entry point (batched_merge) is a thin wrapper over sort::SortEngine
// and lives there; pulled in here so that including this header keeps
// providing it.
#include "sort/engine.hpp"
