// Batched pairwise merge: merge many independent pairs of sorted arrays
// submitted as ONE kernel graph (cuDF/moderngpu-style vectorized API).
//
// Each pair is padded to full runs in a concatenated staging buffer and
// contributes two graph nodes — its partition kernel and its merge kernel,
// with one dependency edge between them.  Different pairs share no edges:
// their kernels are independent graph nodes that the executor overlaps
// (Launcher::run wavefronts), so the report carries both the serial kernel
// sum and the graph makespan.  The merge blocks look up their pair
// descriptor and run the same merge-window core as the sort's merge pass —
// so CF-Merge's zero-conflict guarantee carries over verbatim.  This is the
// natural library form of the paper's conclusion: the gather makes *any*
// parallel pair-of-arrays scan conflict free, including many scans at once.
#pragma once

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gpusim/launcher.hpp"
#include "sort/key_value.hpp"
#include "sort/merge_pass.hpp"

namespace cfmerge::sort {

struct BatchedMergeReport {
  int pairs = 0;
  std::int64_t elements = 0;  ///< total merged elements across pairs
  double microseconds = 0.0;  ///< serial sum of all kernels
  /// Graph makespan: pairs are independent subgraphs, so this is the
  /// longest single pair's partition + merge chain.
  double makespan_microseconds = 0.0;
  int graph_levels = 0;  ///< 2 for a non-empty batch
  gpusim::Counters totals;
  gpusim::PhaseCounters phases;
  std::vector<gpusim::KernelReport> kernels;  ///< enqueue order, 2 per pair

  [[nodiscard]] double throughput() const {
    return microseconds > 0 ? static_cast<double>(elements) / microseconds : 0.0;
  }
  [[nodiscard]] double overlap_speedup() const {
    return makespan_microseconds > 0 ? microseconds / makespan_microseconds : 1.0;
  }
  [[nodiscard]] std::uint64_t merge_conflicts() const;
};

namespace detail {
/// Per-output-tile descriptor, precomputed on the host (in a real
/// implementation this is a tiny device array built by a setup kernel).
struct BatchTile {
  std::int32_t pair = 0;
  std::int64_t a_base = 0;  ///< staging offset of the pair's (padded) A run
  std::int64_t b_base = 0;
  std::int64_t ra = 0;      ///< real |A| of the pair
  std::int64_t rb = 0;
  std::int64_t diag0 = 0;   ///< output diagonal of this tile within the pair
  std::int64_t out_base = 0;  ///< offset of this tile in the packed output
};
}  // namespace detail

/// Merges as[i] with bs[i] into outs[i] for every i, in one partition
/// launch + one merge launch.  Lists may have arbitrary (including zero and
/// mutually different) lengths.
template <typename T>
BatchedMergeReport batched_merge(gpusim::Launcher& launcher,
                                 const std::vector<std::vector<T>>& as,
                                 const std::vector<std::vector<T>>& bs,
                                 std::vector<std::vector<T>>& outs,
                                 const MergeConfig& cfg) {
  if (as.size() != bs.size())
    throw std::invalid_argument("batched_merge: pair count mismatch");
  validate_merge_config(launcher.device(), cfg);

  BatchedMergeReport report;
  report.pairs = static_cast<int>(as.size());
  outs.assign(as.size(), {});
  if (as.empty()) return report;

  const std::int64_t tile = cfg.tile();
  const T sentinel = padding_sentinel<T>::value();

  // Stage every pair as [A pad | B pad] with both runs padded to the same
  // multiple of the tile, and precompute per-tile descriptors.
  std::vector<T> staging;
  std::vector<detail::BatchTile> tiles;
  std::vector<int> pair_tile0(as.size());  ///< first descriptor of each pair
  std::vector<std::int64_t> out_sizes(as.size());
  std::int64_t packed_out = 0;
  for (std::size_t p = 0; p < as.size(); ++p) {
    pair_tile0[p] = static_cast<int>(tiles.size());
    const auto na = static_cast<std::int64_t>(as[p].size());
    const auto nb = static_cast<std::int64_t>(bs[p].size());
    out_sizes[p] = na + nb;
    report.elements += na + nb;
    const std::int64_t run =
        std::max<std::int64_t>({(na + tile - 1) / tile * tile,
                                (nb + tile - 1) / tile * tile, tile});
    const std::int64_t a_base = static_cast<std::int64_t>(staging.size());
    staging.insert(staging.end(), as[p].begin(), as[p].end());
    staging.resize(static_cast<std::size_t>(a_base + run), sentinel);
    const std::int64_t b_base = static_cast<std::int64_t>(staging.size());
    staging.insert(staging.end(), bs[p].begin(), bs[p].end());
    staging.resize(static_cast<std::size_t>(b_base + run), sentinel);
    for (std::int64_t d = 0; d < 2 * run; d += tile) {
      tiles.push_back({static_cast<std::int32_t>(p), a_base, b_base, run, run, d,
                       packed_out + d});
    }
    packed_out += 2 * run;
  }
  std::vector<T> packed(static_cast<std::size_t>(packed_out));
  std::vector<std::int64_t> boundaries(tiles.size(), 0);

  // Two graph nodes per pair — partition -> merge, no cross-pair edges —
  // submitted as one graph.  Every wavefront therefore runs one kernel per
  // pair, and the makespan is the slowest single pair.
  gpusim::KernelGraph graph;
  const int regs = cfg.variant == Variant::CFMerge ? cost::cfmerge_regs_per_thread(cfg.e)
                                                   : cost::baseline_regs_per_thread(cfg.e);
  for (std::size_t p = 0; p < as.size(); ++p) {
    const int t0 = pair_tile0[p];
    const int tcount = (p + 1 < as.size() ? pair_tile0[p + 1]
                                          : static_cast<int>(tiles.size())) -
                       t0;

    // Stage 1: per-tile co-rank of this pair's tiles (each simulated thread
    // resolves one tile's start diagonal; the descriptor read is charged).
    const int pblocks = (tcount + cfg.u - 1) / cfg.u;
    const gpusim::NodeId partition = graph.add(
        "batched_partition", gpusim::LaunchShape{pblocks, cfg.u, 0, 24},
        [&, t0, tcount](gpusim::BlockContext& ctx) {
          ctx.phase("partition.search");
          const int w = ctx.lanes();
          for (int warp = 0; warp < ctx.warps(); ++warp) {
            std::vector<mergepath::LaneSearch> lanes(static_cast<std::size_t>(w));
            std::vector<const detail::BatchTile*> desc(static_cast<std::size_t>(w),
                                                       nullptr);
            bool any = false;
            std::vector<std::int64_t> daddr(static_cast<std::size_t>(w),
                                            gpusim::kInactiveLane);
            for (int lane = 0; lane < w; ++lane) {
              const std::int64_t local =
                  static_cast<std::int64_t>(ctx.block_id()) * cfg.u + warp * w + lane;
              if (local >= tcount) continue;
              const std::int64_t t = t0 + local;
              const auto& bt = tiles[static_cast<std::size_t>(t)];
              desc[static_cast<std::size_t>(lane)] = &bt;
              daddr[static_cast<std::size_t>(lane)] =
                  t * static_cast<std::int64_t>(sizeof(detail::BatchTile));
              lanes[static_cast<std::size_t>(lane)].init(bt.diag0, bt.ra, bt.rb);
              any = true;
            }
            if (!any) continue;
            ctx.charge_gmem(warp, daddr, 8, /*dependent=*/true);  // descriptor fetch
            std::vector<std::int64_t> pa(static_cast<std::size_t>(w));
            std::vector<std::int64_t> pb(static_cast<std::size_t>(w));
            gpusim::GlobalView<const T> g(ctx, std::span<const T>(staging), 0);
            auto probe = [&](std::span<const std::int64_t> a_addr, std::span<T> a_val,
                             std::span<const std::int64_t> b_addr, std::span<T> b_val) {
              for (int lane = 0; lane < w; ++lane) {
                const auto l = static_cast<std::size_t>(lane);
                pa[l] = a_addr[l] == gpusim::kInactiveLane || desc[l] == nullptr
                            ? gpusim::kInactiveLane
                            : desc[l]->a_base + a_addr[l];
                pb[l] = b_addr[l] == gpusim::kInactiveLane || desc[l] == nullptr
                            ? gpusim::kInactiveLane
                            : desc[l]->b_base + b_addr[l];
              }
              ctx.charge_compute(warp, cost::kSearchIterInstrs);
              std::vector<T> av(static_cast<std::size_t>(w)),
                  bv(static_cast<std::size_t>(w));
              g.gather(warp, pa, std::span<T>(av), /*dependent=*/true);
              g.gather(warp, pb, std::span<T>(bv), /*dependent=*/false);
              std::copy(av.begin(), av.end(), a_val.begin());
              std::copy(bv.begin(), bv.end(), b_val.begin());
            };
            mergepath::warp_corank_search<T>(std::span<mergepath::LaneSearch>(lanes),
                                             probe, std::less<T>{});
            for (int lane = 0; lane < w; ++lane) {
              const std::int64_t local =
                  static_cast<std::int64_t>(ctx.block_id()) * cfg.u + warp * w + lane;
              if (local >= tcount) continue;
              boundaries[static_cast<std::size_t>(t0 + local)] =
                  lanes[static_cast<std::size_t>(lane)].lo;
            }
          }
        });

    // Stage 2: one merge block per output tile of this pair.
    graph.add(
        "batched_merge",
        gpusim::LaunchShape{tcount, cfg.u, static_cast<std::size_t>(tile) * sizeof(T),
                            regs},
        [&, t0, tcount](gpusim::BlockContext& ctx) {
          const std::int64_t local = ctx.block_id();
          const auto t = static_cast<std::size_t>(t0 + local);
          const detail::BatchTile& bt = tiles[t];
          ctx.phase("merge.load");
          {
            // Descriptor + both boundary co-ranks: one small global read.
            std::vector<std::int64_t> addr(static_cast<std::size_t>(ctx.lanes()),
                                           gpusim::kInactiveLane);
            addr[0] = static_cast<std::int64_t>(t);
            gpusim::GlobalView<const std::int64_t> bv(
                ctx, std::span<const std::int64_t>(boundaries), 0);
            std::vector<std::int64_t> tmp(static_cast<std::size_t>(ctx.lanes()));
            bv.gather(0, addr, std::span<std::int64_t>(tmp));
          }
          const std::int64_t a0 = boundaries[t];
          const bool last_tile_of_pair = local + 1 == tcount;
          const std::int64_t diag1 = bt.diag0 + tile;
          const std::int64_t a1 = last_tile_of_pair && diag1 >= bt.ra + bt.rb
                                      ? bt.ra
                                      : boundaries[t + 1];
          const std::int64_t b0 = bt.diag0 - a0;
          const std::int64_t la = a1 - a0;
          const std::int64_t lb = tile - la;

          gpusim::GlobalView<const T> gin(ctx, std::span<const T>(staging), 0);
          gpusim::GlobalView<T> gout(
              ctx,
              std::span<T>(packed).subspan(static_cast<std::size_t>(bt.out_base),
                                           static_cast<std::size_t>(tile)),
              bt.out_base);
          merge_window_core<T>(ctx, gin, gout, bt.a_base + a0, bt.b_base + b0, la, lb,
                               cfg, std::less<T>{});
        },
        {partition});
  }

  launcher.clear_history();
  const gpusim::GraphReport g = launcher.run(graph);

  // Unpack (drop the sentinel tails).
  {
    std::int64_t off = 0;
    for (std::size_t p = 0; p < as.size(); ++p) {
      outs[p].assign(packed.begin() + static_cast<std::ptrdiff_t>(off),
                     packed.begin() + static_cast<std::ptrdiff_t>(off + out_sizes[p]));
      // Advance past the pair's 2*run padded output.
      const auto na = static_cast<std::int64_t>(as[p].size());
      const auto nb = static_cast<std::int64_t>(bs[p].size());
      const std::int64_t prun =
          std::max<std::int64_t>({(na + tile - 1) / tile * tile,
                                  (nb + tile - 1) / tile * tile, tile});
      off += 2 * prun;
    }
  }

  report.microseconds = g.serial_microseconds;
  report.makespan_microseconds = g.makespan_microseconds;
  report.graph_levels = g.levels;
  report.kernels = g.kernels;
  report.totals = launcher.total_counters();
  report.phases = launcher.phase_counters();
  return report;
}

}  // namespace cfmerge::sort
