// Key-value sorting support (Thrust's sort_by_key counterpart).
//
// Pairs are sorted by key through the same kernels as plain keys; the
// padding sentinel generalizes through the padding_sentinel trait.
//
// Stability: the baseline variant is a stable mergesort (merge path breaks
// ties A-before-B and the per-thread sequential merge is stable).  CF-Merge
// sorts each thread's gathered E items with a transposition network over a
// *rotated* arrangement, so ties between a thread's A_i and B_i elements can
// flip — CF-Merge is stable only for distinct keys.  The paper sorts plain
// (indistinguishable) integers where the difference is unobservable.
#pragma once

#include <limits>
#include <type_traits>

namespace cfmerge::sort {

/// A key-value pair ordered (and compared) by key only.
template <typename K, typename V>
struct KeyValue {
  using key_type = K;
  using value_type = V;

  K key;
  V value;

  friend bool operator<(const KeyValue& a, const KeyValue& b) { return a.key < b.key; }
  friend bool operator==(const KeyValue& a, const KeyValue& b) {
    return a.key == b.key;  // comparator semantics: equality of keys
  }
};

/// The +infinity element used to pad ragged inputs to full tiles.
template <typename T>
struct padding_sentinel {
  static T value() { return std::numeric_limits<T>::max(); }
};

template <typename K, typename V>
struct padding_sentinel<KeyValue<K, V>> {
  static KeyValue<K, V> value() { return {std::numeric_limits<K>::max(), V{}}; }
};

}  // namespace cfmerge::sort
