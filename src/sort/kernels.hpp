// Building blocks shared by the simulated sort kernels.
//
//  * TileLayout          — where a block's A/B lists live in shared memory
//                          (linear for the baseline, rho(A ∪ pi(B)) for
//                          CF-Merge).
//  * load_tile/store_tile — staged, coalesced global <-> shared copies.
//  * block_corank_splits — lockstep warp merge-path search in shared memory,
//                          producing every thread's (a_i, |A_i|).
//  * regs_to_shared      — write the block register file back to shared
//                          (stride-E pattern, optionally through rho).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "gather/permutation.hpp"
#include "gpusim/memory_views.hpp"
#include "mergepath/merge_path.hpp"
#include "sort/cost_model.hpp"

namespace cfmerge::sort {

/// Shared-memory placement of a block's A and B lists.
class TileLayout {
 public:
  /// Linear layout: A at [0, la), B at [la, la+lb).
  static TileLayout linear(std::int64_t la, std::int64_t lb) {
    return TileLayout(false, la, lb, 1, 1);
  }
  /// CF layout: shmem = rho(A ∪ pi(B)) with parameters (w, E).
  static TileLayout cf(std::int64_t la, std::int64_t lb, int w, int e) {
    return TileLayout(true, la, lb, w, e);
  }
  /// CF layout with the circular shift disabled (ablation: pi only).
  static TileLayout cf_no_rho(std::int64_t la, std::int64_t lb) {
    return TileLayout(true, la, lb, 1, 1);
  }

  [[nodiscard]] bool is_cf() const { return cf_; }
  [[nodiscard]] std::int64_t la() const { return pi_.la(); }
  [[nodiscard]] std::int64_t lb() const { return pi_.lb(); }
  [[nodiscard]] const gather::BReversal& pi() const { return pi_; }
  [[nodiscard]] const gather::CircularShift& rho() const { return rho_; }

  /// Physical shared position of the A element at offset x.
  [[nodiscard]] std::int64_t pos_a(std::int64_t x) const {
    return cf_ ? rho_(pi_.raw_of_a(x)) : x;
  }
  /// Physical shared position of the B element at offset y.
  [[nodiscard]] std::int64_t pos_b(std::int64_t y) const {
    return cf_ ? rho_(pi_.raw_of_b(y)) : pi_.la() + y;
  }

 private:
  TileLayout(bool cf, std::int64_t la, std::int64_t lb, int w, int e)
      : cf_(cf), pi_(la, lb), rho_(w, e, la + lb) {}

  bool cf_;
  gather::BReversal pi_;
  gather::CircularShift rho_;
};

/// Copies `count` elements, with `src(t)` giving the global element index and
/// `dst(t)` the shared position of logical element t.  All warps participate;
/// warp k handles lanes [k*w, k*w + w) of each block-wide chunk of u
/// elements.  Global reads are coalesced when `src` is affine; only each
/// warp's first request pays the DRAM latency (streaming).
template <typename T, typename GV, typename Src, typename Dst>
void load_tile(gpusim::BlockContext& ctx, GV& global, gpusim::SharedTile<T>& shmem,
               std::int64_t count, Src&& src, Dst&& dst) {
  const int w = ctx.lanes();
  const int u = ctx.threads();
  assert(w <= gpusim::kMaxLanes);
  std::array<std::int64_t, gpusim::kMaxLanes> gaddr;
  std::array<std::int64_t, gpusim::kMaxLanes> saddr;
  std::array<T, gpusim::kMaxLanes> vals{};
  const std::span<T> vspan(vals.data(), static_cast<std::size_t>(w));
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    bool first = true;
    for (std::int64_t base = static_cast<std::int64_t>(warp) * w; base < count;
         base += u) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t t = base + lane;
        const bool active = t < count;
        gaddr[static_cast<std::size_t>(lane)] = active ? src(t) : gpusim::kInactiveLane;
        saddr[static_cast<std::size_t>(lane)] = active ? dst(t) : gpusim::kInactiveLane;
      }
      ctx.charge_compute(warp, cost::kCopyChunkInstrs);
      global.gather(warp, std::span<const std::int64_t>(gaddr.data(), vspan.size()),
                    vspan, /*dependent=*/first);
      shmem.scatter(warp, std::span<const std::int64_t>(saddr.data(), vspan.size()),
                    vspan, /*dependent=*/false);
      first = false;
    }
  }
}

/// Mirror image of load_tile: shared -> global.
template <typename T, typename GV, typename Src, typename Dst>
void store_tile(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem, GV& global,
                std::int64_t count, Src&& src, Dst&& dst) {
  const int w = ctx.lanes();
  const int u = ctx.threads();
  assert(w <= gpusim::kMaxLanes);
  std::array<std::int64_t, gpusim::kMaxLanes> gaddr;
  std::array<std::int64_t, gpusim::kMaxLanes> saddr;
  std::array<T, gpusim::kMaxLanes> vals{};
  const std::span<T> vspan(vals.data(), static_cast<std::size_t>(w));
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    bool first = true;
    for (std::int64_t base = static_cast<std::int64_t>(warp) * w; base < count;
         base += u) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t t = base + lane;
        const bool active = t < count;
        saddr[static_cast<std::size_t>(lane)] = active ? src(t) : gpusim::kInactiveLane;
        gaddr[static_cast<std::size_t>(lane)] = active ? dst(t) : gpusim::kInactiveLane;
      }
      ctx.charge_compute(warp, cost::kCopyChunkInstrs);
      shmem.gather(warp, std::span<const std::int64_t>(saddr.data(), vspan.size()),
                   vspan, /*dependent=*/first);
      global.scatter(warp, std::span<const std::int64_t>(gaddr.data(), vspan.size()),
                     vspan, /*dependent=*/false);
      first = false;
    }
  }
}

/// One thread's merge assignment within a block-local pair of lists.
struct ThreadSplit {
  std::int64_t a_off = 0;   ///< a_i: offset of A_i within the pair's A list
  std::int64_t a_size = 0;  ///< |A_i|
  std::int64_t b_off = 0;   ///< b_i
  std::int64_t b_size = 0;  ///< |B_i|
};

/// Per-lane list geometry for the lockstep search: each lane may work on its
/// own pair of lists (block sort rounds have several pairs per warp).
/// A plain aggregate — the shared-position translators are passed to
/// warp_shared_corank as inlineable callables, not stored per lane.
struct LanePair {
  std::int64_t na = 0;    ///< size of the lane's A list
  std::int64_t nb = 0;    ///< size of the lane's B list
  std::int64_t diag = 0;  ///< output diagonal to resolve (< 0 = masked lane)
};

/// Lockstep merge-path search for one warp: resolves lane l's co-rank for
/// pairs[l].diag into out_co[l].  `pos_a(lane, x)` / `pos_b(lane, y)`
/// translate list offsets to physical shared positions.  Issues two charged
/// shared accesses per iteration (probe of A and of B); idle lanes are
/// masked.  Allocation-free: all per-lane state lives on the stack.
template <typename T, typename PosA, typename PosB, typename Cmp>
void warp_shared_corank(gpusim::BlockContext& ctx, int warp,
                        gpusim::SharedTile<T>& shmem, std::span<const LanePair> pairs,
                        PosA&& pos_a, PosB&& pos_b, Cmp cmp,
                        std::span<std::int64_t> out_co) {
  const std::size_t w = pairs.size();
  assert(w <= static_cast<std::size_t>(gpusim::kMaxLanes));
  assert(out_co.size() >= w);
  std::array<mergepath::LaneSearch, gpusim::kMaxLanes> lanes{};
  for (std::size_t l = 0; l < w; ++l) {
    if (pairs[l].diag < 0) continue;  // masked lane
    lanes[l].init(pairs[l].diag, pairs[l].na, pairs[l].nb);
  }
  std::array<std::int64_t, gpusim::kMaxLanes> pa;
  std::array<std::int64_t, gpusim::kMaxLanes> pb;
  auto probe = [&](std::span<const std::int64_t> a_addr, std::span<T> a_val,
                   std::span<const std::int64_t> b_addr, std::span<T> b_val) {
    for (std::size_t l = 0; l < w; ++l) {
      pa[l] = a_addr[l] == gpusim::kInactiveLane
                  ? gpusim::kInactiveLane
                  : pos_a(static_cast<int>(l), a_addr[l]);
      pb[l] = b_addr[l] == gpusim::kInactiveLane
                  ? gpusim::kInactiveLane
                  : pos_b(static_cast<int>(l), b_addr[l]);
    }
    ctx.charge_compute(warp, cost::kSearchIterInstrs);
    // Probe addresses are data dependent — tell the bank-conflict model to
    // skip its conflict-free screening pass.
    shmem.gather(warp, std::span<const std::int64_t>(pa.data(), w), a_val,
                 /*dependent=*/true, /*scattered=*/true);
    shmem.gather(warp, std::span<const std::int64_t>(pb.data(), w), b_val,
                 /*dependent=*/true, /*scattered=*/true);
  };
  mergepath::warp_corank_search<T>(std::span<mergepath::LaneSearch>(lanes.data(), w),
                                   probe, cmp);
  for (std::size_t l = 0; l < w; ++l) out_co[l] = lanes[l].lo;
}

}  // namespace cfmerge::sort
