// Building blocks shared by the simulated sort kernels.
//
//  * TileLayout          — where a block's A/B lists live in shared memory
//                          (linear for the baseline, rho(A ∪ pi(B)) for
//                          CF-Merge).
//  * load_tile/store_tile — staged, coalesced global <-> shared copies.
//  * block_corank_splits — lockstep warp merge-path search in shared memory,
//                          producing every thread's (a_i, |A_i|).
//  * regs_to_shared      — write the block register file back to shared
//                          (stride-E pattern, optionally through rho).
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "gather/permutation.hpp"
#include "gpusim/memory_views.hpp"
#include "mergepath/merge_path.hpp"
#include "sort/cost_model.hpp"

namespace cfmerge::verify {
struct CfCertificate;
}

namespace cfmerge::sort {

/// Shared-memory placement of a block's A and B lists.
class TileLayout {
 public:
  /// Linear layout: A at [0, la), B at [la, la+lb).
  static TileLayout linear(std::int64_t la, std::int64_t lb) {
    return TileLayout(false, la, lb, 1, 1);
  }
  /// CF layout: shmem = rho(A ∪ pi(B)) with parameters (w, E).
  static TileLayout cf(std::int64_t la, std::int64_t lb, int w, int e) {
    return TileLayout(true, la, lb, w, e);
  }
  /// CF layout with the circular shift disabled (ablation: pi only).
  static TileLayout cf_no_rho(std::int64_t la, std::int64_t lb) {
    return TileLayout(true, la, lb, 1, 1);
  }

  [[nodiscard]] bool is_cf() const { return cf_; }
  [[nodiscard]] std::int64_t la() const { return pi_.la(); }
  [[nodiscard]] std::int64_t lb() const { return pi_.lb(); }
  [[nodiscard]] const gather::BReversal& pi() const { return pi_; }
  [[nodiscard]] const gather::CircularShift& rho() const { return rho_; }

  /// Physical shared position of the A element at offset x.
  [[nodiscard]] std::int64_t pos_a(std::int64_t x) const {
    return cf_ ? rho_(pi_.raw_of_a(x)) : x;
  }
  /// Physical shared position of the B element at offset y.
  [[nodiscard]] std::int64_t pos_b(std::int64_t y) const {
    return cf_ ? rho_(pi_.raw_of_b(y)) : pi_.la() + y;
  }

 private:
  TileLayout(bool cf, std::int64_t la, std::int64_t lb, int w, int e)
      : cf_(cf), pi_(la, lb), rho_(w, e, la + lb) {}

  bool cf_;
  gather::BReversal pi_;
  gather::CircularShift rho_;
};

/// Copies `count` elements, with `src(t)` giving the global element index and
/// `dst(t)` the shared position of logical element t.  All warps participate;
/// warp k handles lanes [k*w, k*w + w) of each block-wide chunk of u
/// elements.  Global reads are coalesced when `src` is affine; only each
/// warp's first request pays the DRAM latency (streaming).
template <typename T, typename GV, typename Src, typename Dst>
void load_tile(gpusim::BlockContext& ctx, GV& global, gpusim::SharedTile<T>& shmem,
               std::int64_t count, Src&& src, Dst&& dst) {
  const int w = ctx.lanes();
  const int u = ctx.threads();
  assert(w <= gpusim::kMaxLanes);
  std::array<std::int64_t, gpusim::kMaxLanes> gaddr;
  std::array<std::int64_t, gpusim::kMaxLanes> saddr;
  std::array<T, gpusim::kMaxLanes> vals{};
  const std::span<T> vspan(vals.data(), static_cast<std::size_t>(w));
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    bool first = true;
    for (std::int64_t base = static_cast<std::int64_t>(warp) * w; base < count;
         base += u) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t t = base + lane;
        const bool active = t < count;
        gaddr[static_cast<std::size_t>(lane)] = active ? src(t) : gpusim::kInactiveLane;
        saddr[static_cast<std::size_t>(lane)] = active ? dst(t) : gpusim::kInactiveLane;
      }
      ctx.charge_compute(warp, cost::kCopyChunkInstrs);
      global.gather(warp, std::span<const std::int64_t>(gaddr.data(), vspan.size()),
                    vspan, /*dependent=*/first);
      shmem.scatter(warp, std::span<const std::int64_t>(saddr.data(), vspan.size()),
                    vspan, /*dependent=*/false);
      first = false;
    }
  }
}

/// Mirror image of load_tile: shared -> global.
template <typename T, typename GV, typename Src, typename Dst>
void store_tile(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem, GV& global,
                std::int64_t count, Src&& src, Dst&& dst) {
  const int w = ctx.lanes();
  const int u = ctx.threads();
  assert(w <= gpusim::kMaxLanes);
  std::array<std::int64_t, gpusim::kMaxLanes> gaddr;
  std::array<std::int64_t, gpusim::kMaxLanes> saddr;
  std::array<T, gpusim::kMaxLanes> vals{};
  const std::span<T> vspan(vals.data(), static_cast<std::size_t>(w));
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    bool first = true;
    for (std::int64_t base = static_cast<std::int64_t>(warp) * w; base < count;
         base += u) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t t = base + lane;
        const bool active = t < count;
        saddr[static_cast<std::size_t>(lane)] = active ? src(t) : gpusim::kInactiveLane;
        gaddr[static_cast<std::size_t>(lane)] = active ? dst(t) : gpusim::kInactiveLane;
      }
      ctx.charge_compute(warp, cost::kCopyChunkInstrs);
      shmem.gather(warp, std::span<const std::int64_t>(saddr.data(), vspan.size()),
                   vspan, /*dependent=*/first);
      global.scatter(warp, std::span<const std::int64_t>(gaddr.data(), vspan.size()),
                     vspan, /*dependent=*/false);
      first = false;
    }
  }
}

/// Exact division by a loop-invariant divisor via one 64-bit multiply and
/// shift (round-up reciprocal: M = ceil(2^64 / d), q = hi64(n * M)).  Exact
/// for every non-negative dividend and divisor below 2^32 — which covers
/// all in-tile indices — because the representation error n*(M*d - 2^64) is
/// below d * 2^-32 * 2^32 = d, too small to push n*M/2^64 past the next
/// integer.  The kernel bodies divide by the pair width once per element in
/// their splits/permute loops; hoisting one of these replaces the hardware
/// 64-bit divide (tens of cycles) with a multiply.
struct FastDiv {
  std::uint64_t mul = 0;
  std::uint64_t d = 1;
  FastDiv() = default;
  explicit FastDiv(std::int64_t divisor)
      : mul(~std::uint64_t{0} / static_cast<std::uint64_t>(divisor) + 1),
        d(static_cast<std::uint64_t>(divisor)) {
    assert(divisor > 0 && divisor < (std::int64_t{1} << 32));
  }
  [[nodiscard]] std::int64_t operator()(std::int64_t n) const {
    assert(n >= 0 && n < (std::int64_t{1} << 32));
    // d == 1 has mul == 0 (the reciprocal wraps); the select keeps the
    // operator total without a branch.
    const auto q = static_cast<std::int64_t>(
        (static_cast<unsigned __int128>(static_cast<std::uint64_t>(n)) * mul) >> 64);
    return d == 1 ? n : q;
  }
};

/// A unit-step affine address map t -> base + step*t (step in {+1, -1}):
/// the address families of every tile staging copy whose layout shift is
/// the identity.  Probed off a position lambda by affine_map_of.
struct AffineMap {
  std::int64_t base = 0;
  int step = 1;
};

/// Derives the AffineMap of `pos` over [0, count).  The caller guarantees
/// `pos` is affine with unit step on that domain (checked in debug builds);
/// gate on the layout's shift being the identity before calling.
template <typename Pos>
[[nodiscard]] AffineMap affine_map_of(Pos&& pos, std::int64_t count) {
  AffineMap m;
  if (count > 0) m.base = pos(0);
  if (count > 1) m.step = static_cast<int>(pos(1) - m.base);
  assert(count <= 1 || m.step == 1 || m.step == -1);
  assert(count <= 0 || pos(count - 1) == m.base + m.step * (count - 1));
  return m;
}

/// load_tile for a unit-step affine destination map and a contiguous
/// ascending global source starting at view element `gsrc0`.  With a
/// cf_stage certificate and no per-lane observers (bulk_global), the copy
/// charges each warp chunk in closed form — unit-stride warp windows hit
/// distinct banks at any base, which the certificate proves — and moves the
/// tile with one std::copy / reverse_copy.  Counters and chains are
/// bit-identical to load_tile (pinned by tests/test_bulk_charge.cpp).
template <typename T, typename GV>
void load_tile_affine(gpusim::BlockContext& ctx, GV& global,
                      gpusim::SharedTile<T>& shmem, std::int64_t count,
                      std::int64_t gsrc0, AffineMap dst,
                      const verify::CfCertificate* cert) {
  if (count <= 0) return;
  assert(dst.step == 1 || dst.step == -1);
  if (cert == nullptr || !ctx.bulk_global()) {
    load_tile(ctx, global, shmem, count,
              [gsrc0](std::int64_t t) { return gsrc0 + t; },
              [dst](std::int64_t t) { return dst.base + dst.step * t; });
    return;
  }
  const int w = ctx.lanes();
  const int u = ctx.threads();
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    const std::int64_t first_el = static_cast<std::int64_t>(warp) * w;
    if (first_el >= count) continue;
    int chunks = 0;
    bool first = true;
    for (std::int64_t base = first_el; base < count; base += u) {
      const std::int64_t active = std::min<std::int64_t>(w, count - base);
      global.charge_run(warp, gsrc0 + base, active, /*dependent=*/first,
                        /*is_write=*/false);
      first = false;
      ++chunks;
    }
    ctx.charge_compute(warp,
                       static_cast<std::uint64_t>(chunks) * cost::kCopyChunkInstrs);
    ctx.charge_shared_crs(warp, gpusim::CrsAccessDesc{.rounds = chunks,
                                                      .active_lanes = w,
                                                      .base = dst.base,
                                                      .stride = dst.step,
                                                      .is_write = true});
  }
  const auto g = global.raw();
  const std::span<T> tile = shmem.raw();
  assert(gsrc0 >= 0 && gsrc0 + count <= static_cast<std::int64_t>(g.size()));
  const auto src_begin = g.begin() + static_cast<std::ptrdiff_t>(gsrc0);
  const auto src_end = src_begin + static_cast<std::ptrdiff_t>(count);
  if (dst.step == 1) {
    assert(dst.base >= 0 &&
           dst.base + count <= static_cast<std::int64_t>(tile.size()));
    std::copy(src_begin, src_end, tile.begin() + static_cast<std::ptrdiff_t>(dst.base));
  } else {
    const std::int64_t lo = dst.base - count + 1;
    assert(lo >= 0 && dst.base < static_cast<std::int64_t>(tile.size()));
    std::reverse_copy(src_begin, src_end,
                      tile.begin() + static_cast<std::ptrdiff_t>(lo));
  }
}

/// Mirror image of load_tile_affine: shared (unit-step affine source map)
/// -> contiguous ascending global starting at view element `gdst0`.
template <typename T, typename GV>
void store_tile_affine(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem,
                       GV& global, std::int64_t count, AffineMap src,
                       std::int64_t gdst0, const verify::CfCertificate* cert) {
  if (count <= 0) return;
  assert(src.step == 1 || src.step == -1);
  if (cert == nullptr || !ctx.bulk_global()) {
    store_tile(ctx, shmem, global, count,
               [src](std::int64_t t) { return src.base + src.step * t; },
               [gdst0](std::int64_t t) { return gdst0 + t; });
    return;
  }
  const int w = ctx.lanes();
  const int u = ctx.threads();
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    const std::int64_t first_el = static_cast<std::int64_t>(warp) * w;
    if (first_el >= count) continue;
    int chunks = 0;
    for (std::int64_t base = first_el; base < count; base += u) {
      const std::int64_t active = std::min<std::int64_t>(w, count - base);
      global.charge_run(warp, gdst0 + base, active, /*dependent=*/false,
                        /*is_write=*/true);
      ++chunks;
    }
    ctx.charge_compute(warp,
                       static_cast<std::uint64_t>(chunks) * cost::kCopyChunkInstrs);
    // The first chunk's shared gather is on the chain (dependent), the rest
    // pipeline — exactly store_tile's `first` flag.
    ctx.charge_shared_crs(warp, gpusim::CrsAccessDesc{.rounds = chunks,
                                                      .dependent_rounds = 1,
                                                      .active_lanes = w,
                                                      .base = src.base,
                                                      .stride = src.step,
                                                      .is_write = false});
  }
  const std::span<const T> tile = std::as_const(shmem).raw();
  const auto g = global.raw();
  assert(gdst0 >= 0 && gdst0 + count <= static_cast<std::int64_t>(g.size()));
  const auto dst_begin = g.begin() + static_cast<std::ptrdiff_t>(gdst0);
  if (src.step == 1) {
    assert(src.base >= 0 &&
           src.base + count <= static_cast<std::int64_t>(tile.size()));
    const auto src_begin = tile.begin() + static_cast<std::ptrdiff_t>(src.base);
    std::copy(src_begin, src_begin + static_cast<std::ptrdiff_t>(count), dst_begin);
  } else {
    const std::int64_t lo = src.base - count + 1;
    assert(lo >= 0 && src.base < static_cast<std::int64_t>(tile.size()));
    const auto src_begin = tile.begin() + static_cast<std::ptrdiff_t>(lo);
    std::reverse_copy(src_begin, src_begin + static_cast<std::ptrdiff_t>(count),
                      dst_begin);
  }
}

/// One thread's merge assignment within a block-local pair of lists.
struct ThreadSplit {
  std::int64_t a_off = 0;   ///< a_i: offset of A_i within the pair's A list
  std::int64_t a_size = 0;  ///< |A_i|
  std::int64_t b_off = 0;   ///< b_i
  std::int64_t b_size = 0;  ///< |B_i|
};

/// Per-lane list geometry for the lockstep search: each lane may work on its
/// own pair of lists (block sort rounds have several pairs per warp).
/// A plain aggregate — the shared-position translators are passed to
/// warp_shared_corank as inlineable callables, not stored per lane.
struct LanePair {
  std::int64_t na = 0;    ///< size of the lane's A list
  std::int64_t nb = 0;    ///< size of the lane's B list
  std::int64_t diag = 0;  ///< output diagonal to resolve (< 0 = masked lane)
};

/// Lockstep merge-path search for one warp: resolves lane l's co-rank for
/// pairs[l].diag into out_co[l].  `pos_a(lane, x)` / `pos_b(lane, y)`
/// translate list offsets to physical shared positions.  Issues two charged
/// shared accesses per iteration (probe of A and of B); idle lanes are
/// masked.  Allocation-free: all per-lane state lives on the stack.
template <typename T, typename PosA, typename PosB, typename Cmp>
void warp_shared_corank(gpusim::BlockContext& ctx, int warp,
                        gpusim::SharedTile<T>& shmem, std::span<const LanePair> pairs,
                        PosA&& pos_a, PosB&& pos_b, Cmp cmp,
                        std::span<std::int64_t> out_co) {
  const std::size_t w = pairs.size();
  assert(w <= static_cast<std::size_t>(gpusim::kMaxLanes));
  assert(out_co.size() >= w);
  std::array<mergepath::LaneSearch, gpusim::kMaxLanes> lanes{};
  for (std::size_t l = 0; l < w; ++l) {
    if (pairs[l].diag < 0) continue;  // masked lane
    lanes[l].init(pairs[l].diag, pairs[l].na, pairs[l].nb);
  }
  std::array<std::int64_t, gpusim::kMaxLanes> pa;
  std::array<std::int64_t, gpusim::kMaxLanes> pb;
  auto probe = [&](std::span<const std::int64_t> a_addr, std::span<T> a_val,
                   std::span<const std::int64_t> b_addr, std::span<T> b_val) {
    for (std::size_t l = 0; l < w; ++l) {
      pa[l] = a_addr[l] == gpusim::kInactiveLane
                  ? gpusim::kInactiveLane
                  : pos_a(static_cast<int>(l), a_addr[l]);
      pb[l] = b_addr[l] == gpusim::kInactiveLane
                  ? gpusim::kInactiveLane
                  : pos_b(static_cast<int>(l), b_addr[l]);
    }
    ctx.charge_compute(warp, cost::kSearchIterInstrs);
    // Probe addresses are data dependent — tell the bank-conflict model to
    // skip its conflict-free screening pass.
    shmem.gather(warp, std::span<const std::int64_t>(pa.data(), w), a_val,
                 /*dependent=*/true, /*scattered=*/true);
    shmem.gather(warp, std::span<const std::int64_t>(pb.data(), w), b_val,
                 /*dependent=*/true, /*scattered=*/true);
  };
  mergepath::warp_corank_search<T>(std::span<mergepath::LaneSearch>(lanes.data(), w),
                                   probe, cmp);
  for (std::size_t l = 0; l < w; ++l) out_co[l] = lanes[l].lo;
}

}  // namespace cfmerge::sort
