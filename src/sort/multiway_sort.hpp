// Full k-way multiway mergesort pipeline on the simulated GPU.
//
//   block sort  ->  ceil(log_k(n / tile)) k-way passes (partition + merge)
//
// Identical scaffolding to the pairwise pipeline (merge_sort.hpp) — padded
// input, stream-enqueued kernel chain, ping-pong buffers — but each global
// pass consumes k runs at once, so the global memory traffic shrinks by a
// factor of log2(k) while the in-shared work per tile grows by the same
// factor (the CFCascade runs log2(k) pairwise stages per tile).  The
// boundaries scratch is a flat (num_tiles+1) x k co-rank table per pass.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/launcher.hpp"
#include "sort/block_sort.hpp"
#include "sort/multiway_pass.hpp"

namespace cfmerge::sort::detail {

/// Enqueues the k-way sort pipeline for one padded buffer onto `stream`
/// (the multiway counterpart of enqueue_sort_pipeline).  `warp_size` fixes
/// the CFCascade's static shared-memory capacity, which depends on w.
/// Returns the buffer holding the sorted result after execution.
template <typename T>
std::vector<T>* enqueue_multiway_pipeline(gpusim::Stream& stream, std::vector<T>& buf,
                                          std::vector<T>& tmp,
                                          std::vector<std::int64_t>& boundaries,
                                          std::int64_t n_padded, const MultiwayConfig& cfg,
                                          int warp_size, int& passes) {
  const std::int64_t tile = cfg.tile();
  const int num_tiles = static_cast<int>(n_padded / tile);
  const int regs = cost::multiway_regs_per_thread(cfg.e, cfg.k);
  tmp.resize(static_cast<std::size_t>(n_padded));
  boundaries.assign((static_cast<std::size_t>(num_tiles) + 1) * static_cast<std::size_t>(cfg.k),
                    0);

  // --- stage 1: block sort (identical to the pairwise pipeline) -----------
  {
    gpusim::LaunchShape shape{num_tiles, cfg.u,
                              static_cast<std::size_t>(tile) * sizeof(T), regs};
    if (cfg.cf_blocksort) shape.shared_bytes_per_block *= 2;  // staging buffer
    stream.enqueue("block_sort", shape,
                   [&buf, e = cfg.e, cf_rounds = cfg.cf_blocksort,
                    certs = cfg.certs](gpusim::BlockContext& ctx) {
                     block_sort_body<T>(ctx, std::span<T>(buf), e, cf_rounds,
                                        std::less<T>{}, certs);
                   });
  }

  // --- stage 2: k-way merge passes -----------------------------------------
  const std::size_t mshared =
      cfg.variant == MultiwayVariant::CFCascade
          ? static_cast<std::size_t>(
                2 * gather::CascadePlan::capacity(tile, warp_size, cfg.e, cfg.k)) *
                sizeof(T)
          : static_cast<std::size_t>(tile) * sizeof(T);

  std::vector<T>* src = &buf;
  std::vector<T>* dst = &tmp;
  passes = 0;
  for (std::int64_t run = tile; run < n_padded; run *= cfg.k) {
    ++passes;
    const PassGeometryK geom{n_padded, run, cfg.k};

    const auto nb = static_cast<std::int64_t>(num_tiles) + 1;
    const int pblocks = static_cast<int>((nb + cfg.u - 1) / cfg.u);
    gpusim::LaunchShape pshape{pblocks, cfg.u, 0, 24};
    stream.enqueue("multiway_partition", pshape,
                   [src, &boundaries, geom, tile](gpusim::BlockContext& ctx) {
                     multiway_partition_body<T>(ctx, std::span<const T>(*src), geom, tile,
                                                std::span<std::int64_t>(boundaries));
                   });

    gpusim::LaunchShape mshape{num_tiles, cfg.u, mshared, regs};
    stream.enqueue("multiway_merge", mshape,
                   [src, dst, &boundaries, geom, cfg](gpusim::BlockContext& ctx) {
                     multiway_tile_body<T>(ctx, std::span<const T>(*src), std::span<T>(*dst),
                                           geom, cfg,
                                           std::span<const std::int64_t>(boundaries));
                   });
    std::swap(src, dst);
  }
  return src;
}

}  // namespace cfmerge::sort::detail
