// Segmented sort: many independent variable-length sorts submitted as ONE
// kernel graph — the serving-shape workload (a request batch where every
// request brings its own array to sort).
//
// Every non-empty segment gets its own gpusim::Stream carrying the exact
// pipeline of sort::merge_sort (block sort, then partition + merge per
// pass) over its own buffers.  Streams share no edges, so the graph
// executor overlaps them: kernels of different segments sit in the same
// wavefront and the report carries both the serial kernel sum (launching
// every segment back to back, the pre-graph cadence) and the graph
// makespan (the longest single segment's chain under concurrent kernel
// execution).  Because the per-segment kernels are bit-identical to a
// standalone merge_sort of that segment — same bodies, shapes, names, and
// block-ordered reduction — each segment's output and per-kernel report
// match the standalone sort exactly (asserted by test_segmented_sort).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "gpusim/launcher.hpp"
#include "sort/merge_sort.hpp"

namespace cfmerge::sort {

/// Cost picture of a segmented sort: per-graph timing plus the usual
/// counter aggregates, and an index of each segment's kernels.
struct SegmentedSortReport {
  /// Where one segment's kernels live inside `kernels` (enqueue order).
  struct Segment {
    std::int64_t n = 0;      ///< segment length
    int passes = 0;          ///< merge passes of this segment
    int first_kernel = 0;    ///< index of the segment's block_sort
    int kernel_count = 0;    ///< 1 + 2 * passes (0 for an empty segment)
  };

  int segments = 0;            ///< segments submitted (including empty ones)
  std::int64_t elements = 0;   ///< total elements across segments
  /// Sum of all kernel times — sorting every segment back to back.
  double serial_microseconds = 0.0;
  /// Graph makespan — independent segments overlap, so this is the longest
  /// single segment chain.  Strictly smaller than the serial sum whenever
  /// two or more segments are non-empty.
  double makespan_microseconds = 0.0;
  int graph_levels = 0;        ///< longest segment's chain length
  gpusim::Counters totals;
  gpusim::PhaseCounters phases;
  std::vector<gpusim::KernelReport> kernels;  ///< enqueue order
  std::vector<Segment> per_segment;           ///< one entry per input segment

  [[nodiscard]] double overlap_speedup() const {
    return makespan_microseconds > 0 ? serial_microseconds / makespan_microseconds : 1.0;
  }
  /// Elements sorted per simulated microsecond under graph overlap.
  [[nodiscard]] double throughput() const {
    return makespan_microseconds > 0 ? static_cast<double>(elements) / makespan_microseconds
                                     : 0.0;
  }
  /// Bank conflicts in the merge phase across all segments (0 for CF-Merge).
  [[nodiscard]] std::uint64_t merge_conflicts() const;
};

/// Sorts every segment in place, all submitted as one kernel graph.
/// Zero-length segments are legal and contribute no kernels.
/// `launcher.history()` is cleared and then holds every kernel in enqueue
/// order (segment by segment).  `mode` selects the host execution policy
/// only — reports are bit-identical for both modes and any worker count.
template <typename T>
SegmentedSortReport segmented_sort(gpusim::Launcher& launcher,
                                   std::vector<std::vector<T>>& segments,
                                   const MergeConfig& cfg,
                                   gpusim::GraphExec mode = gpusim::GraphExec::Overlap) {
  validate_merge_config(launcher.device(), cfg);

  SegmentedSortReport report;
  report.segments = static_cast<int>(segments.size());
  report.per_segment.reserve(segments.size());

  // Per-segment pipeline buffers; unique_ptr keeps addresses stable while
  // the graph holds references into them.
  struct State {
    std::vector<T> buf, tmp;
    std::vector<std::int64_t> boundaries;
    std::vector<T>* result = nullptr;
  };
  std::vector<std::unique_ptr<State>> states;

  const std::int64_t tile = cfg.tile();
  gpusim::KernelGraph graph;
  for (std::vector<T>& seg : segments) {
    SegmentedSortReport::Segment info;
    info.n = static_cast<std::int64_t>(seg.size());
    info.first_kernel = graph.size();
    report.elements += info.n;
    if (info.n > 0) {
      states.push_back(std::make_unique<State>());
      State& st = *states.back();
      const std::int64_t n_padded = (info.n + tile - 1) / tile * tile;
      st.buf = seg;
      st.buf.resize(static_cast<std::size_t>(n_padded), padding_sentinel<T>::value());
      gpusim::Stream stream = graph.stream();
      st.result = detail::enqueue_sort_pipeline(stream, st.buf, st.tmp, st.boundaries,
                                                n_padded, cfg, info.passes);
      info.kernel_count = graph.size() - info.first_kernel;
    }
    report.per_segment.push_back(info);
  }

  launcher.clear_history();
  const gpusim::GraphReport g = launcher.run(graph, mode);

  std::size_t si = 0;
  for (std::vector<T>& seg : segments) {
    if (seg.empty()) continue;
    const State& st = *states[si++];
    std::copy(st.result->begin(),
              st.result->begin() + static_cast<std::ptrdiff_t>(seg.size()), seg.begin());
  }

  report.serial_microseconds = g.serial_microseconds;
  report.makespan_microseconds = g.makespan_microseconds;
  report.graph_levels = g.levels;
  report.kernels = g.kernels;
  report.totals = launcher.total_counters();
  report.phases = launcher.phase_counters();
  return report;
}

}  // namespace cfmerge::sort
