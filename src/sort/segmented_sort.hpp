// Segmented sort: many independent variable-length sorts submitted as ONE
// kernel graph — the serving-shape workload (a request batch where every
// request brings its own array to sort).
//
// Every non-empty segment gets its own pipeline graph — exactly the chain
// of sort::merge_sort (block sort, then partition + merge per pass) over
// its own buffers — instantiated into one batch graph.  Per-segment
// subgraphs share no edges, so the graph executor overlaps them: kernels
// of different segments sit in the same wavefront and the report carries
// both the serial kernel sum (launching every segment back to back, the
// pre-graph cadence) and the graph makespan (the longest single segment's
// chain under concurrent kernel execution).  Because the per-segment
// kernels are bit-identical to a standalone merge_sort of that segment —
// same bodies, shapes, names, and block-ordered reduction — each segment's
// output and per-kernel report match the standalone sort exactly (asserted
// by test_segmented_sort).
//
// This header holds the report type; the entry point is a thin wrapper
// over sort::SortEngine (engine.hpp, included at the bottom), which also
// serves the repeated-batch case: per-segment plans persist in the
// engine's cache, so the next batch with the same segment lengths skips
// validation, allocation, and graph building entirely.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/launcher.hpp"

namespace cfmerge::sort {

/// Cost picture of a segmented sort: per-graph timing plus the usual
/// counter aggregates, and an index of each segment's kernels.
struct SegmentedSortReport {
  /// Where one segment's kernels live inside `kernels` (enqueue order).
  struct Segment {
    std::int64_t n = 0;      ///< segment length
    int passes = 0;          ///< merge passes of this segment
    int first_kernel = 0;    ///< index of the segment's block_sort
    int kernel_count = 0;    ///< 1 + 2 * passes (0 for an empty segment)
  };

  int segments = 0;            ///< segments submitted (including empty ones)
  std::int64_t elements = 0;   ///< total elements across segments
  /// Sum of all kernel times — sorting every segment back to back.
  double serial_microseconds = 0.0;
  /// Graph makespan — independent segments overlap, so this is the longest
  /// single segment chain.  Strictly smaller than the serial sum whenever
  /// two or more segments are non-empty.
  double makespan_microseconds = 0.0;
  int graph_levels = 0;        ///< longest segment's chain length
  gpusim::Counters totals;
  gpusim::PhaseCounters phases;
  std::vector<gpusim::KernelReport> kernels;  ///< enqueue order
  std::vector<Segment> per_segment;           ///< one entry per input segment

  [[nodiscard]] double overlap_speedup() const {
    return makespan_microseconds > 0 ? serial_microseconds / makespan_microseconds : 1.0;
  }
  /// Elements sorted per simulated microsecond under graph overlap.
  [[nodiscard]] double throughput() const {
    return makespan_microseconds > 0 ? static_cast<double>(elements) / makespan_microseconds
                                     : 0.0;
  }
  /// Bank conflicts in the merge phase across all segments (0 for CF-Merge).
  [[nodiscard]] std::uint64_t merge_conflicts() const;
};

}  // namespace cfmerge::sort

// The entry point (segmented_sort) is a thin wrapper over sort::SortEngine
// and lives there; pulled in here so that including this header keeps
// providing it.
#include "sort/engine.hpp"
