// Content-addressed, process-independent plan identity.
//
// A plan's identity must answer one question the same way in every process:
// "would the engine build the same kernel graph for this request?"  The
// former PlanKey answered it with std::type_index(typeid(T)), which is a
// *process-local* token (an RTTI pointer) — meaningless on disk.  This
// header replaces it with content-addressed pieces:
//
//  * TypeDigest — a stable hash of the element type's *layout semantics*
//    (width, signedness, float flag, IEC-559 total-order flag; KeyValue
//    pairs compose their key and value digests).  The mangled name never
//    participates, so the digest is identical across compilers and runs.
//  * config_digest(cfg) — ONE uniform helper family folding every semantic
//    knob of a configuration (e, u, variant, ablation bits, k, direction)
//    into the key.  Previously the variant/direction bits were folded
//    ad hoc at each call site into the shape digest — a latent collision
//    risk whenever a new knob forgot the ritual; now adding a knob to a
//    config means extending exactly one function, and
//    tests/test_plan_key.cpp asserts key uniqueness across every plan kind.
//  * PlanKey::serialize — the canonical little-endian byte encoding
//    (kPlanKeySchemaVersion-prefixed) used verbatim as the persistent
//    store key (cache/store.hpp).  Bumping the schema version orphans all
//    previously persisted entries, which is the invalidation rule.
//
// shape_digest stays reserved for *shape* (the batched per-pair run
// lengths); all configuration now lives in config_digest.
#pragma once

#include <cstdint>
#include <limits>
#include <type_traits>

#include "cache/serial.hpp"
#include "cfprims/permute.hpp"
#include "numtheory/hash.hpp"
#include "sort/key_value.hpp"
#include "sort/merge_pass.hpp"
#include "sort/multiway_pass.hpp"

namespace cfmerge::sort {

/// Bump when the meaning of any serialized key field changes; persisted
/// entries written under another version are ignored (never misread).
inline constexpr std::uint32_t kPlanKeySchemaVersion = 1;

/// Stable cross-process identity of a plan's element type.
struct TypeDigest {
  std::uint64_t bits = 0;

  [[nodiscard]] bool operator==(const TypeDigest&) const = default;
};

namespace detail {

// Leading tags keep the digest domains of scalars, pairs, and opaque
// aggregates disjoint even when their folded field values coincide.
inline constexpr std::uint64_t kTypeTagVoid = 0;
inline constexpr std::uint64_t kTypeTagArithmetic = 1;
inline constexpr std::uint64_t kTypeTagKeyValue = 2;
inline constexpr std::uint64_t kTypeTagAggregate = 3;

template <typename T>
struct is_key_value : std::false_type {};
template <typename K, typename V>
struct is_key_value<KeyValue<K, V>> : std::true_type {};

}  // namespace detail

/// Computes the TypeDigest of T from layout semantics only (never the
/// name): arithmetic types hash (width, signedness, float flag, IEC-559
/// total-order flag); KeyValue<K, V> composes the digests of K and V;
/// any other trivially copyable type falls back to (size, alignment) under
/// a distinct tag.  Distinctness across the types the engine actually
/// plans for is pinned by tests/test_plan_key.cpp.
template <typename T>
[[nodiscard]] constexpr TypeDigest type_digest() {
  using numtheory::fnv1a;
  std::uint64_t h = numtheory::kFnvOffset;
  if constexpr (std::is_void_v<T>) {
    h = fnv1a(h, detail::kTypeTagVoid);
  } else if constexpr (std::is_arithmetic_v<T>) {
    h = fnv1a(h, detail::kTypeTagArithmetic);
    h = fnv1a(h, static_cast<std::uint64_t>(sizeof(T)));
    h = fnv1a(h, static_cast<std::uint64_t>(std::is_signed_v<T> ? 1 : 0));
    h = fnv1a(h, static_cast<std::uint64_t>(std::is_floating_point_v<T> ? 1 : 0));
    // Total-order flag: IEC-559 floats sort by the library's comparator
    // contract; a non-IEC float would plan identically but must not share
    // an identity with one that does.
    h = fnv1a(h, static_cast<std::uint64_t>(std::numeric_limits<T>::is_iec559 ? 1 : 0));
  } else if constexpr (detail::is_key_value<T>::value) {
    h = fnv1a(h, detail::kTypeTagKeyValue);
    h = fnv1a(h, type_digest<typename T::key_type>().bits);
    h = fnv1a(h, type_digest<typename T::value_type>().bits);
  } else {
    static_assert(std::is_trivially_copyable_v<T>,
                  "plan element types must be trivially copyable");
    h = fnv1a(h, detail::kTypeTagAggregate);
    h = fnv1a(h, static_cast<std::uint64_t>(sizeof(T)));
    h = fnv1a(h, static_cast<std::uint64_t>(alignof(T)));
  }
  return TypeDigest{h};
}

// ---------------------------------------------------------------------------
// Uniform config digests.  Every semantic knob of a configuration — and
// nothing else (certs are a pure function of (warp_size, e) and never part
// of identity) — is folded here, in one place per config type.

[[nodiscard]] constexpr std::uint64_t config_digest(const MergeConfig& cfg) {
  using numtheory::fnv1a;
  std::uint64_t h = fnv1a(numtheory::kFnvOffset, std::uint64_t{1});  // config tag
  h = fnv1a(h, static_cast<std::int64_t>(cfg.e));
  h = fnv1a(h, static_cast<std::int64_t>(cfg.u));
  h = fnv1a(h, static_cast<std::uint64_t>(cfg.variant));
  h = fnv1a(h, static_cast<std::uint64_t>(cfg.disable_rho ? 1 : 0));
  h = fnv1a(h, static_cast<std::uint64_t>(cfg.cf_output_scatter ? 1 : 0));
  h = fnv1a(h, static_cast<std::uint64_t>(cfg.cf_blocksort ? 1 : 0));
  return h;
}

[[nodiscard]] constexpr std::uint64_t config_digest(const MultiwayConfig& cfg) {
  using numtheory::fnv1a;
  std::uint64_t h = fnv1a(numtheory::kFnvOffset, std::uint64_t{2});  // config tag
  h = fnv1a(h, static_cast<std::int64_t>(cfg.e));
  h = fnv1a(h, static_cast<std::int64_t>(cfg.u));
  h = fnv1a(h, static_cast<std::int64_t>(cfg.k));
  h = fnv1a(h, static_cast<std::uint64_t>(cfg.variant));
  h = fnv1a(h, static_cast<std::uint64_t>(cfg.cf_blocksort ? 1 : 0));
  return h;
}

[[nodiscard]] constexpr std::uint64_t config_digest(const cfprims::PermuteConfig& cfg) {
  using numtheory::fnv1a;
  std::uint64_t h = fnv1a(numtheory::kFnvOffset, std::uint64_t{3});  // config tag
  h = fnv1a(h, static_cast<std::int64_t>(cfg.e));
  h = fnv1a(h, static_cast<std::int64_t>(cfg.u));
  h = fnv1a(h, static_cast<std::uint64_t>(cfg.op));
  h = fnv1a(h, static_cast<std::uint64_t>(cfg.inverse ? 1 : 0));
  return h;
}

/// Cache key: everything the kernel-graph structure depends on, in a form
/// that is equal across processes.  Two calls with equal keys produce
/// graphs with identical node names, shapes, dependency edges, and
/// pass/tile decisions — only buffer *contents* differ, which is exactly
/// what plan reuse rebinds.
struct PlanKey {
  enum class Kind : std::uint8_t {
    Sort = 0,
    Batched = 1,
    Multiway = 2,
    Permute = 3,
    Transpose = 4,
  };

  Kind kind = Kind::Sort;
  TypeDigest type{};
  /// Sort/Multiway/Permute: padded element count.  Batched: number of
  /// pairs (the per-pair run lengths live in `shape_digest`).
  std::int64_t n_padded = 0;
  std::uint64_t shape_digest = 0;   ///< Batched: FNV-1a over every (|A|,|B|)
  std::uint64_t config_digest = 0;  ///< config_digest(cfg) of the plan's config

  [[nodiscard]] bool operator==(const PlanKey&) const = default;

  /// Canonical byte encoding (schema-versioned): the persistent store key.
  void serialize(cache::ByteWriter& w) const {
    w.u32(kPlanKeySchemaVersion);
    w.u8(static_cast<std::uint8_t>(kind));
    w.u64(type.bits);
    w.i64(n_padded);
    w.u64(shape_digest);
    w.u64(config_digest);
  }

  [[nodiscard]] std::vector<std::byte> serialized() const {
    cache::ByteWriter w;
    serialize(w);
    return w.take();
  }

  /// Inverse of serialize.  Returns false (leaving *this unspecified) on a
  /// short buffer or a schema-version mismatch.
  [[nodiscard]] bool deserialize(cache::ByteReader& r) {
    if (r.u32() != kPlanKeySchemaVersion) return false;
    kind = static_cast<Kind>(r.u8());
    type.bits = r.u64();
    n_padded = r.i64();
    shape_digest = r.u64();
    config_digest = r.u64();
    return r.ok();
  }
};

}  // namespace cfmerge::sort
