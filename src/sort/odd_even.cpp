#include "sort/odd_even.hpp"

namespace cfmerge::sort {

std::int64_t odd_even_network_size(std::int64_t n) {
  if (n <= 1) return 0;
  const std::int64_t even_pairs = n / 2;        // phases 0, 2, ...
  const std::int64_t odd_pairs = (n - 1) / 2;   // phases 1, 3, ...
  const std::int64_t even_phases = (n + 1) / 2;
  const std::int64_t odd_phases = n / 2;
  return even_phases * even_pairs + odd_phases * odd_pairs;
}

std::int64_t odd_even_sequential_ces(std::int64_t n) { return odd_even_network_size(n); }

}  // namespace cfmerge::sort
