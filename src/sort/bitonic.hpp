// Bitonic sort on the simulated GPU — a second comparison-sort baseline.
//
// The paper's introduction positions merge-path mergesort as the fastest
// comparison sort on GPUs; bitonic sort is the classic alternative, with
// O(n log^2 n) work.  Its power-of-two compare-exchange strides interact
// with the power-of-two bank count: substages with stride j < w leave half
// the banks idle (every access is 2-way conflicted), a *structural* — not
// data-dependent — conflict pattern, contrasting with the mergesort's
// input-dependent conflicts.  The `padded` option applies the classic
// one-slot-per-w padding so the effect of layout changes can be measured.
// This gives the benchmark suite a third sorter and a second, independent
// instance of the bank-conflict phenomenon the paper studies.
//
// Structure (standard GPU bitonic):
//   for k = 2, 4, ..., n:        (bitonic stage)
//     for j = k/2, k/4, ..., 1:  (substage)
//       if j < tile: run all remaining substages of this k inside shared
//                    memory (one kernel, barriers between substages);
//       else:        one global compare-exchange kernel.
#pragma once

#include <algorithm>
#include <bit>
#include <functional>
#include <stdexcept>
#include <vector>

#include "gpusim/launcher.hpp"
#include "gpusim/memory_views.hpp"
#include "sort/cost_model.hpp"
#include "sort/key_value.hpp"

namespace cfmerge::sort {

struct BitonicConfig {
  int u = 512;          ///< threads per block
  int elems_per_thread = 2;  ///< elements of the tile each thread owns
  bool padded = false;  ///< pad shared tiles to kill the stride conflicts

  [[nodiscard]] std::int64_t tile() const {
    return static_cast<std::int64_t>(u) * elems_per_thread;
  }
};

struct BitonicReport {
  std::int64_t n = 0;
  std::int64_t n_padded = 0;
  double microseconds = 0.0;
  gpusim::Counters totals;
  gpusim::PhaseCounters phases;

  [[nodiscard]] double throughput() const {
    return microseconds > 0 ? static_cast<double>(n) / microseconds : 0.0;
  }
};

namespace detail {

/// Padded shared index: insert one dummy slot per w elements.
inline std::int64_t bitonic_pad(std::int64_t i, int w, bool padded) {
  return padded ? i + i / w : i;
}

/// Shared-memory kernel body: runs stages k = k_lo .. k_hi, each with its
/// substages j = min(k/2, tile/2) .. 1, within one tile (real GPU bitonic
/// fuses all tile-local stages into one launch this way).
template <typename T, typename Cmp>
void bitonic_tile_body(gpusim::BlockContext& ctx, std::span<T> data,
                       const BitonicConfig& cfg, std::int64_t k_lo, std::int64_t k_hi,
                       Cmp cmp) {
  const int w = ctx.lanes();
  const int u = ctx.threads();
  const std::int64_t tile = cfg.tile();
  const std::int64_t base = static_cast<std::int64_t>(ctx.block_id()) * tile;
  const std::int64_t padded_size =
      bitonic_pad(tile - 1, w, cfg.padded) + 1;

  gpusim::GlobalView<T> global(ctx, data.subspan(static_cast<std::size_t>(base),
                                                 static_cast<std::size_t>(tile)),
                               base);
  gpusim::SharedTile<T> shmem(ctx, static_cast<std::size_t>(padded_size));

  ctx.phase("bitonic.load");
  std::vector<std::int64_t> gaddr(static_cast<std::size_t>(w));
  std::vector<std::int64_t> saddr(static_cast<std::size_t>(w));
  std::vector<T> va(static_cast<std::size_t>(w)), vb(static_cast<std::size_t>(w));
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    bool first = true;
    for (std::int64_t b0 = static_cast<std::int64_t>(warp) * w; b0 < tile; b0 += u) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t t = b0 + lane;
        gaddr[static_cast<std::size_t>(lane)] = t < tile ? t : gpusim::kInactiveLane;
        saddr[static_cast<std::size_t>(lane)] =
            t < tile ? bitonic_pad(t, w, cfg.padded) : gpusim::kInactiveLane;
      }
      ctx.charge_compute(warp, cost::kCopyChunkInstrs);
      global.gather(warp, gaddr, va, first);
      shmem.scatter(warp, saddr, va, false);
      first = false;
    }
  }
  ctx.barrier();

  ctx.phase("bitonic.exchange");
  const std::int64_t pairs = tile / 2;
  std::vector<std::int64_t> addr_i(static_cast<std::size_t>(w));
  std::vector<std::int64_t> addr_j(static_cast<std::size_t>(w));
  for (std::int64_t k = k_lo; k <= k_hi; k *= 2)
  for (std::int64_t j = std::min(k / 2, tile / 2); j >= 1; j /= 2) {
    for (int warp = 0; warp < ctx.warps(); ++warp) {
      for (std::int64_t p0 = static_cast<std::int64_t>(warp) * w; p0 < pairs; p0 += u) {
        for (int lane = 0; lane < w; ++lane) {
          const std::int64_t p = p0 + lane;
          if (p >= pairs) {
            addr_i[static_cast<std::size_t>(lane)] = gpusim::kInactiveLane;
            addr_j[static_cast<std::size_t>(lane)] = gpusim::kInactiveLane;
            continue;
          }
          // p-th pair of substage j: i = insert 0 bit at position log2(j).
          const std::int64_t i = (p / j) * 2 * j + p % j;
          addr_i[static_cast<std::size_t>(lane)] = bitonic_pad(i, w, cfg.padded);
          addr_j[static_cast<std::size_t>(lane)] = bitonic_pad(i + j, w, cfg.padded);
        }
        ctx.charge_compute(warp, cost::kMergeStepInstrs);
        shmem.gather(warp, addr_i, va);
        shmem.gather(warp, addr_j, vb);
        // Compare-exchange with direction from stage k.
        for (int lane = 0; lane < w; ++lane) {
          const std::int64_t p = p0 + lane;
          if (p >= pairs) continue;
          const std::int64_t i = (p / j) * 2 * j + p % j;
          const bool ascending = (((base + i) & k) == 0);
          auto& x = va[static_cast<std::size_t>(lane)];
          auto& y = vb[static_cast<std::size_t>(lane)];
          if (ascending ? cmp(y, x) : cmp(x, y)) std::swap(x, y);
        }
        ctx.charge_compute(warp, cost::kCompareExchangeInstrs);
        shmem.scatter(warp, addr_i, va);
        shmem.scatter(warp, addr_j, vb);
      }
    }
    ctx.barrier();
  }

  ctx.phase("bitonic.store");
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    bool first = true;
    for (std::int64_t b0 = static_cast<std::int64_t>(warp) * w; b0 < tile; b0 += u) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t t = b0 + lane;
        saddr[static_cast<std::size_t>(lane)] =
            t < tile ? bitonic_pad(t, w, cfg.padded) : gpusim::kInactiveLane;
        gaddr[static_cast<std::size_t>(lane)] = t < tile ? t : gpusim::kInactiveLane;
      }
      ctx.charge_compute(warp, cost::kCopyChunkInstrs);
      shmem.gather(warp, saddr, va, first);
      global.scatter(warp, gaddr, va, false);
      first = false;
    }
  }
}

/// Global compare-exchange kernel for substage j >= tile.
template <typename T, typename Cmp>
void bitonic_global_body(gpusim::BlockContext& ctx, std::span<T> data,
                         const BitonicConfig& cfg, std::int64_t n, std::int64_t k,
                         std::int64_t j, Cmp cmp) {
  const int w = ctx.lanes();
  const int u = ctx.threads();
  const std::int64_t pairs_per_block = cfg.tile() / 2;
  const std::int64_t first_pair =
      static_cast<std::int64_t>(ctx.block_id()) * pairs_per_block;
  gpusim::GlobalView<T> view(ctx, data, 0);

  ctx.phase("bitonic.global");
  std::vector<std::int64_t> addr_i(static_cast<std::size_t>(w));
  std::vector<std::int64_t> addr_j(static_cast<std::size_t>(w));
  std::vector<T> va(static_cast<std::size_t>(w)), vb(static_cast<std::size_t>(w));
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    bool first = true;
    for (std::int64_t p0 = first_pair + static_cast<std::int64_t>(warp) * w;
         p0 < first_pair + pairs_per_block; p0 += u) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t p = p0 + lane;
        if (p >= n / 2) {
          addr_i[static_cast<std::size_t>(lane)] = gpusim::kInactiveLane;
          addr_j[static_cast<std::size_t>(lane)] = gpusim::kInactiveLane;
          continue;
        }
        const std::int64_t i = (p / j) * 2 * j + p % j;
        addr_i[static_cast<std::size_t>(lane)] = i;
        addr_j[static_cast<std::size_t>(lane)] = i + j;
      }
      ctx.charge_compute(warp, cost::kMergeStepInstrs);
      view.gather(warp, addr_i, va, first);
      view.gather(warp, addr_j, vb, false);
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t p = p0 + lane;
        if (p >= n / 2) continue;
        const std::int64_t i = (p / j) * 2 * j + p % j;
        const bool ascending = ((i & k) == 0);
        auto& x = va[static_cast<std::size_t>(lane)];
        auto& y = vb[static_cast<std::size_t>(lane)];
        if (ascending ? cmp(y, x) : cmp(x, y)) std::swap(x, y);
      }
      ctx.charge_compute(warp, cost::kCompareExchangeInstrs);
      view.scatter(warp, addr_i, va, false);
      view.scatter(warp, addr_j, vb, false);
      first = false;
    }
  }
}

}  // namespace detail

/// Sorts `data` with the bitonic network.  Pads to the next power of two
/// with +infinity sentinels.
template <typename T, typename Cmp = std::less<T>>
BitonicReport bitonic_sort(gpusim::Launcher& launcher, std::vector<T>& data,
                           const BitonicConfig& cfg, Cmp cmp = Cmp{}) {
  const gpusim::DeviceSpec& dev = launcher.device();
  if (cfg.u <= 0 || cfg.u % dev.warp_size != 0)
    throw std::invalid_argument("bitonic_sort: u must be a positive multiple of warp_size");
  if (cfg.elems_per_thread < 2 ||
      !std::has_single_bit(static_cast<unsigned>(cfg.elems_per_thread)))
    throw std::invalid_argument(
        "bitonic_sort: elems_per_thread must be a power of two >= 2");
  if (!std::has_single_bit(static_cast<unsigned>(cfg.u)))
    throw std::invalid_argument("bitonic_sort: u must be a power of two");

  BitonicReport report;
  report.n = static_cast<std::int64_t>(data.size());
  if (report.n == 0) return report;

  const std::int64_t tile = cfg.tile();
  const std::int64_t n = std::max<std::int64_t>(
      tile, static_cast<std::int64_t>(std::bit_ceil(static_cast<std::uint64_t>(report.n))));
  report.n_padded = n;
  std::vector<T> buf = data;
  buf.resize(static_cast<std::size_t>(n), padding_sentinel<T>::value());

  launcher.clear_history();
  const int blocks = static_cast<int>(n / tile);
  const gpusim::LaunchShape shape{blocks, cfg.u, 0, 24};

  // All tile-local stages fused into one launch.
  launcher.launch("bitonic_tile_sort", shape, [&](gpusim::BlockContext& ctx) {
    detail::bitonic_tile_body<T>(ctx, std::span<T>(buf), cfg, 2, tile, cmp);
  });
  // Larger stages: global substages down to tile scope, then a tile kernel.
  for (std::int64_t k = 2 * tile; k <= n; k *= 2) {
    for (std::int64_t j = k / 2; j >= tile; j /= 2) {
      launcher.launch("bitonic_global", shape, [&](gpusim::BlockContext& ctx) {
        detail::bitonic_global_body<T>(ctx, std::span<T>(buf), cfg, n, k, j, cmp);
      });
    }
    launcher.launch("bitonic_tile", shape, [&](gpusim::BlockContext& ctx) {
      detail::bitonic_tile_body<T>(ctx, std::span<T>(buf), cfg, k, k, cmp);
    });
  }

  std::copy(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(report.n), data.begin());
  report.microseconds = launcher.total_microseconds();
  report.totals = launcher.total_counters();
  report.phases = launcher.phase_counters();
  return report;
}

}  // namespace cfmerge::sort
