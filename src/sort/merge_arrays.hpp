// Standalone pairwise merge — the primitive the paper studies.
//
// Merges two independently sorted arrays through the same two-stage
// partition + merge-kernel machinery the sort's passes use, without
// requiring them to be adjacent runs of one buffer.  Useful on its own
// (merge two sorted streams) and for merge-level experiments (Theorem 8
// at block scale).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "gpusim/launcher.hpp"
#include "sort/key_value.hpp"
#include "sort/merge_pass.hpp"

namespace cfmerge::sort {

/// Result of a standalone merge: cost picture mirroring SortReport.
struct MergeReport {
  std::int64_t na = 0;
  std::int64_t nb = 0;
  double microseconds = 0.0;
  gpusim::Counters totals;
  gpusim::PhaseCounters phases;
  std::vector<gpusim::KernelReport> kernels;

  [[nodiscard]] double throughput() const {
    return microseconds > 0 ? static_cast<double>(na + nb) / microseconds : 0.0;
  }
  [[nodiscard]] std::uint64_t merge_conflicts() const;
};

/// Merges sorted `a` and sorted `b` into `out` (resized to |a| + |b|).
/// Arbitrary lengths are supported: the concatenated input is padded to a
/// tile multiple with +infinity sentinels, which join the merged tail and
/// are dropped.  `launcher.history()` holds the launched kernels.
template <typename T>
MergeReport merge_arrays(gpusim::Launcher& launcher, const std::vector<T>& a,
                         const std::vector<T>& b, std::vector<T>& out,
                         const MergeConfig& cfg) {
  validate_merge_config(launcher.device(), cfg);

  MergeReport report;
  report.na = static_cast<std::int64_t>(a.size());
  report.nb = static_cast<std::int64_t>(b.size());
  const std::int64_t n = report.na + report.nb;
  out.resize(static_cast<std::size_t>(n));
  if (n == 0) return report;

  launcher.clear_history();

  // Stage the pair as [A | pad(A) | B | pad(B)] so each padded list is a
  // full "run": run = max padded list length, geometry n = 2 * run.
  const std::int64_t tile = cfg.tile();
  auto padded = [&](std::int64_t len) { return (len + tile - 1) / tile * tile; };
  const std::int64_t run = std::max<std::int64_t>(
      {padded(report.na), padded(report.nb), tile});
  std::vector<T> src(static_cast<std::size_t>(2 * run), padding_sentinel<T>::value());
  std::copy(a.begin(), a.end(), src.begin());
  std::copy(b.begin(), b.end(), src.begin() + static_cast<std::ptrdiff_t>(run));
  std::vector<T> dst(static_cast<std::size_t>(2 * run));

  const PassGeometry geom{2 * run, run};
  const int num_tiles = static_cast<int>(2 * run / tile);
  std::vector<std::int64_t> boundaries(static_cast<std::size_t>(num_tiles) + 1, 0);

  const int regs = cfg.variant == Variant::CFMerge ? cost::cfmerge_regs_per_thread(cfg.e)
                                                   : cost::baseline_regs_per_thread(cfg.e);
  const int pblocks =
      static_cast<int>((static_cast<std::int64_t>(boundaries.size()) + cfg.u - 1) / cfg.u);
  launcher.launch("merge_partition", gpusim::LaunchShape{pblocks, cfg.u, 0, 24},
                  [&](gpusim::BlockContext& ctx) {
                    merge_partition_body<T>(ctx, std::span<const T>(src), geom, tile,
                                            std::span<std::int64_t>(boundaries));
                  });
  launcher.launch("merge_pass",
                  gpusim::LaunchShape{num_tiles, cfg.u,
                                      static_cast<std::size_t>(tile) * sizeof(T), regs},
                  [&](gpusim::BlockContext& ctx) {
                    merge_tile_body<T>(ctx, std::span<const T>(src), std::span<T>(dst),
                                       geom, cfg, std::span<const std::int64_t>(boundaries));
                  });

  std::copy(dst.begin(), dst.begin() + static_cast<std::ptrdiff_t>(n), out.begin());
  report.kernels = launcher.history();
  report.microseconds = launcher.total_microseconds();
  report.totals = launcher.total_counters();
  report.phases = launcher.phase_counters();
  return report;
}

}  // namespace cfmerge::sort
