// Plan/execute split for every sort entry point — the cuFFT/CUB two-phase
// shape, applied to the simulated mergesort library.
//
// A SortEngine is a long-lived object owning
//
//  * a **plan cache**: plans are keyed by (shape class, padded length /
//    batch shape digest, MergeConfig) — the kernel-graph structure is a
//    pure function of that key (merge-path partitioning fixes the pass and
//    tile decisions from n_padded and cfg alone), so a plan built once can
//    execute any input of the same shape.  A plan owns BOTH its
//    KernelGraph template and every buffer the graph's bodies capture
//    (buf/tmp/boundaries, or the batched staging/packed/descriptor
//    arrays), which closes the latent lifetime footgun of the free
//    functions: the storage a body references can no longer die or move
//    while the graph is still runnable.  Executing a cached plan is
//    "rebind by refilling": copy the new input into the plan's buffers
//    (sentinel tails refreshed) and Launcher::run the graph again — the
//    KernelGraph replay contract (kernel_graph.hpp) guarantees reports
//    bit-identical to a freshly enqueued pipeline.
//
//  * a **scratch arena**: a pool of typed, reusable vectors for per-call
//    scratch that is not part of any plan (today: merge_sort_by_key's
//    KeyValue pair buffer).  acquire<T>(n) hands out an RAII Lease; the
//    backing allocation returns to the pool when the lease drops.
//
//  * optionally a **persistent store** (set_store): plan identity is
//    content-addressed (sort/plan_key.hpp), so a cache::PlanCacheStore can
//    carry plan metadata and autotune results across processes.  In-memory
//    misses consult it (disk_* counters in EngineStats) and builds write
//    back; see cache/store.hpp and docs/architecture.md.
//
// Cache semantics: the cache holds *idle* plan instances.  acquire removes
// an instance from the free list (a hit), so two same-shaped segments of
// one segmented_sort batch get two distinct instances — both are returned
// afterwards and the next batch hits twice.  Instances beyond the
// configured capacity are evicted least-recently-released; disabling the
// cache (set_plan_cache_enabled(false)) drops all idle plans and makes
// every acquire a miss, which is what `cfsort --no-plan-cache` uses to
// show the un-amortized cost.
//
// The four free entry points (merge_sort, merge_sort_by_key, batched_merge,
// segmented_sort) are thin wrappers: one-shot engine use, reports
// bit-identical to the pre-engine implementations (asserted by
// test_sort_engine across thread counts and GraphExec modes).
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <typeindex>
#include <utility>
#include <vector>

#include "cache/store.hpp"
#include "cfprims/permute.hpp"
#include "gpusim/launcher.hpp"
#include "numtheory/hash.hpp"
#include "sort/batched_merge.hpp"
#include "sort/key_value.hpp"
#include "sort/merge_pass.hpp"
#include "sort/merge_sort.hpp"
#include "sort/multiway_sort.hpp"
#include "sort/plan_key.hpp"
#include "sort/segmented_sort.hpp"

namespace cfmerge::sort {

/// Engine counters: cumulative plan-cache traffic plus a snapshot of what
/// the cache and arena currently hold.  Emitted into the cfsort /
/// sim_hotpath JSON reports.
struct EngineStats {
  std::uint64_t plan_hits = 0;       ///< acquires served from the cache
  std::uint64_t plan_misses = 0;     ///< acquires that built a new plan
  std::uint64_t plan_evictions = 0;  ///< idle plans dropped over capacity
  std::uint64_t plans_cached = 0;    ///< idle plan instances held right now
  std::uint64_t plan_bytes = 0;      ///< storage owned by those idle plans
  std::uint64_t arena_bytes = 0;     ///< pooled scratch-arena storage
  std::uint64_t arena_allocs = 0;    ///< arena acquires that allocated
  std::uint64_t arena_reuses = 0;    ///< arena acquires served from the pool
  std::uint64_t bulk_charges = 0;    ///< warp accesses charged in closed form
  std::uint64_t lane_charges = 0;    ///< warp accesses charged per lane
  std::uint64_t audit_skipped_accesses = 0;  ///< audit replays elided by safety certs
  std::uint64_t cert_hits = 0;       ///< certify() calls served from the memo
  std::uint64_t cert_misses = 0;     ///< certify() calls that ran the prover
  std::uint64_t certs_cached = 0;    ///< distinct certificates held right now
  // Persistent (disk) plan & autotune cache, when one is attached — the
  // whole-process traffic of the cache::PlanCacheStore, which also counts
  // autotune lookups routed through the same store.
  std::uint64_t disk_hits = 0;       ///< store lookups that found an entry
  std::uint64_t disk_misses = 0;     ///< store lookups that found nothing
  std::uint64_t disk_writes = 0;     ///< entries written (plan metadata, tune results)
  std::uint64_t disk_evictions = 0;  ///< entries dropped by the LRU size cap
  std::uint64_t disk_corrupt = 0;    ///< unreadable store files ignored + rebuilt
  std::uint64_t disk_entries = 0;    ///< persisted entries held right now
  std::uint64_t disk_bytes = 0;      ///< serialized store size right now
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = plan_hits + plan_misses;
    return total > 0 ? static_cast<double>(plan_hits) / static_cast<double>(total) : 0.0;
  }
  /// Fraction of warp accesses charged by the bulk path.
  [[nodiscard]] double bulk_rate() const {
    const std::uint64_t total = bulk_charges + lane_charges;
    return total > 0 ? static_cast<double>(bulk_charges) / static_cast<double>(total) : 0.0;
  }
};

/// Typed pool of reusable scratch vectors.  acquire<T>(n) returns an RAII
/// lease on a std::vector<T> resized to n; dropping the lease returns the
/// allocation (capacity intact) to the pool for the next same-typed
/// acquire.  Not thread-safe — an engine, like a Launcher, serves one
/// caller at a time.
class ScratchArena {
 public:
  template <typename T>
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept : arena_(o.arena_), slot_(o.slot_), vec_(o.vec_) {
      o.arena_ = nullptr;
      o.vec_ = nullptr;
    }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        reset();
        arena_ = std::exchange(o.arena_, nullptr);
        slot_ = o.slot_;
        vec_ = std::exchange(o.vec_, nullptr);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { reset(); }

    [[nodiscard]] std::vector<T>& operator*() const { return *vec_; }
    [[nodiscard]] std::vector<T>* operator->() const { return vec_; }

   private:
    friend class ScratchArena;
    Lease(ScratchArena* arena, std::size_t slot, std::vector<T>* vec)
        : arena_(arena), slot_(slot), vec_(vec) {}
    void reset() {
      if (arena_ != nullptr) arena_->release(slot_);
      arena_ = nullptr;
      vec_ = nullptr;
    }

    ScratchArena* arena_ = nullptr;
    std::size_t slot_ = 0;
    std::vector<T>* vec_ = nullptr;
  };

  template <typename T>
  [[nodiscard]] Lease<T> acquire(std::size_t n) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      if (!s.in_use && s.type == std::type_index(typeid(T))) {
        s.in_use = true;
        ++reuses_;
        auto* vec = static_cast<std::vector<T>*>(s.storage.get());
        vec->resize(n);
        return Lease<T>(this, i, vec);
      }
    }
    ++allocs_;
    auto storage = std::make_shared<std::vector<T>>(n);
    auto* vec = storage.get();
    slots_.push_back(Slot{std::type_index(typeid(T)), true, 0, std::move(storage),
                          [](const void* p) -> std::uint64_t {
                            const auto* v = static_cast<const std::vector<T>*>(p);
                            return v->capacity() * sizeof(T);
                          }});
    return Lease<T>(this, slots_.size() - 1, vec);
  }

  /// Bytes currently held by the pool (leased or idle).
  [[nodiscard]] std::uint64_t pooled_bytes() const;
  [[nodiscard]] std::uint64_t allocs() const { return allocs_; }
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }

  /// Drops every idle slot.  Leased slots survive until their lease ends.
  void clear();

 private:
  struct Slot {
    std::type_index type;
    bool in_use = false;
    std::uint64_t bytes = 0;  ///< measured at release (capacity * sizeof)
    std::shared_ptr<void> storage;
    std::uint64_t (*measure)(const void*) = nullptr;
  };

  void release(std::size_t slot);

  std::vector<Slot> slots_;
  std::uint64_t allocs_ = 0;
  std::uint64_t reuses_ = 0;
};

namespace detail {

// PlanKey (the content-addressed cache key) and its digests live in
// sort/plan_key.hpp; the engine adds only the store-key framing here.

/// The persistent-store key for a plan's metadata: a record tag, the
/// device's content digest, then the schema-versioned PlanKey bytes.
inline std::vector<std::byte> plan_store_key(std::uint64_t device_digest,
                                             const PlanKey& key) {
  cache::ByteWriter w;
  w.str("plan");
  w.u64(device_digest);
  key.serialize(w);
  return w.take();
}

/// A cached single-array sort plan: the enqueued pipeline of
/// enqueue_sort_pipeline plus the storage its bodies capture.  Plans are
/// heap-allocated and pinned (no copy/move): the graph's kernel bodies
/// hold references into buf/tmp/boundaries.
template <typename T>
struct SortPlanT {
  MergeConfig cfg;
  std::int64_t n_padded = 0;
  int passes = 0;
  std::vector<T> buf, tmp;
  std::vector<std::int64_t> boundaries;
  std::vector<T>* result = nullptr;  ///< buf or tmp, fixed by the pass count
  gpusim::KernelGraph graph;

  SortPlanT(const MergeConfig& c, std::int64_t np) : cfg(c), n_padded(np) {
    buf.assign(static_cast<std::size_t>(np), padding_sentinel<T>::value());
    gpusim::Stream stream = graph.stream();
    result = enqueue_sort_pipeline(stream, buf, tmp, boundaries, np, cfg, passes);
  }
  SortPlanT(const SortPlanT&) = delete;
  SortPlanT& operator=(const SortPlanT&) = delete;

  /// Rebind: load the next input.  The sentinel tail is rewritten because a
  /// previous execution leaves buf holding that run's intermediate data.
  void load(const std::vector<T>& data) {
    std::copy(data.begin(), data.end(), buf.begin());
    std::fill(buf.begin() + static_cast<std::ptrdiff_t>(data.size()), buf.end(),
              padding_sentinel<T>::value());
  }

  [[nodiscard]] std::uint64_t footprint_bytes() const {
    return (buf.capacity() + tmp.capacity()) * sizeof(T) +
           boundaries.capacity() * sizeof(std::int64_t);
  }
};

/// A cached k-way sort plan: enqueue_multiway_pipeline's graph plus the
/// storage its bodies capture.  Keyed under Kind::Multiway; every knob —
/// (k, variant) included — lives in config_digest(MultiwayConfig).
template <typename T>
struct MultiwayPlanT {
  MultiwayConfig cfg;
  std::int64_t n_padded = 0;
  int passes = 0;
  std::vector<T> buf, tmp;
  std::vector<std::int64_t> boundaries;
  std::vector<T>* result = nullptr;  ///< buf or tmp, fixed by the pass count
  gpusim::KernelGraph graph;

  MultiwayPlanT(const MultiwayConfig& c, std::int64_t np, int warp_size)
      : cfg(c), n_padded(np) {
    buf.assign(static_cast<std::size_t>(np), padding_sentinel<T>::value());
    gpusim::Stream stream = graph.stream();
    result = enqueue_multiway_pipeline(stream, buf, tmp, boundaries, np, cfg, warp_size,
                                       passes);
  }
  MultiwayPlanT(const MultiwayPlanT&) = delete;
  MultiwayPlanT& operator=(const MultiwayPlanT&) = delete;

  void load(const std::vector<T>& data) {
    std::copy(data.begin(), data.end(), buf.begin());
    std::fill(buf.begin() + static_cast<std::ptrdiff_t>(data.size()), buf.end(),
              padding_sentinel<T>::value());
  }

  [[nodiscard]] std::uint64_t footprint_bytes() const {
    return (buf.capacity() + tmp.capacity()) * sizeof(T) +
           boundaries.capacity() * sizeof(std::int64_t);
  }
};

/// A cached permute/transpose plan: the one-kernel cfprims pipeline plus
/// its input and output buffers.  Keyed under Kind::Permute / Transpose;
/// the (op, inverse) direction bits live in config_digest(PermuteConfig).
template <typename T>
struct PermutePlanT {
  cfprims::PermuteConfig cfg;
  std::int64_t n_padded = 0;
  std::vector<T> buf, out;
  gpusim::KernelGraph graph;

  PermutePlanT(const cfprims::PermuteConfig& c, std::int64_t np) : cfg(c), n_padded(np) {
    buf.assign(static_cast<std::size_t>(np), padding_sentinel<T>::value());
    out.assign(static_cast<std::size_t>(np), padding_sentinel<T>::value());
    gpusim::Stream stream = graph.stream();
    cfprims::enqueue_permute_pipeline(stream, buf, out, np, cfg);
  }
  PermutePlanT(const PermutePlanT&) = delete;
  PermutePlanT& operator=(const PermutePlanT&) = delete;

  void load(const std::vector<T>& data) {
    std::copy(data.begin(), data.end(), buf.begin());
    std::fill(buf.begin() + static_cast<std::ptrdiff_t>(data.size()), buf.end(),
              padding_sentinel<T>::value());
  }

  [[nodiscard]] std::uint64_t footprint_bytes() const {
    return (buf.capacity() + out.capacity()) * sizeof(T);
  }
};

/// A cached batched-merge plan: the staging layout, per-tile descriptors,
/// both kernel nodes per pair, and the packed output buffer.  The staging
/// sentinel pads are written once at build time — kernels only read
/// staging, so rebinding just overwrites the real |A| / |B| prefixes.
template <typename T>
struct BatchedPlanT {
  MergeConfig cfg;
  std::int64_t elements = 0;  ///< total real output elements of the shape
  std::vector<T> staging;
  std::vector<T> packed;
  std::vector<BatchTile> tiles;
  std::vector<int> pair_tile0;
  std::vector<std::int64_t> out_sizes;
  std::vector<std::int64_t> boundaries;
  gpusim::KernelGraph graph;

  BatchedPlanT(const std::vector<std::vector<T>>& as, const std::vector<std::vector<T>>& bs,
               const MergeConfig& c)
      : cfg(c) {
    const std::int64_t tile = cfg.tile();
    const T sentinel = padding_sentinel<T>::value();

    // Stage every pair as [A pad | B pad] with both runs padded to the same
    // multiple of the tile, and precompute per-tile descriptors.
    pair_tile0.resize(as.size());
    out_sizes.resize(as.size());
    std::int64_t packed_out = 0;
    for (std::size_t p = 0; p < as.size(); ++p) {
      pair_tile0[p] = static_cast<int>(tiles.size());
      const auto na = static_cast<std::int64_t>(as[p].size());
      const auto nb = static_cast<std::int64_t>(bs[p].size());
      out_sizes[p] = na + nb;
      elements += na + nb;
      const std::int64_t run = std::max<std::int64_t>(
          {(na + tile - 1) / tile * tile, (nb + tile - 1) / tile * tile, tile});
      const std::int64_t a_base = static_cast<std::int64_t>(staging.size());
      staging.insert(staging.end(), as[p].begin(), as[p].end());
      staging.resize(static_cast<std::size_t>(a_base + run), sentinel);
      const std::int64_t b_base = static_cast<std::int64_t>(staging.size());
      staging.insert(staging.end(), bs[p].begin(), bs[p].end());
      staging.resize(static_cast<std::size_t>(b_base + run), sentinel);
      for (std::int64_t d = 0; d < 2 * run; d += tile) {
        tiles.push_back({static_cast<std::int32_t>(p), a_base, b_base, run, run, d,
                         packed_out + d});
      }
      packed_out += 2 * run;
    }
    packed.resize(static_cast<std::size_t>(packed_out));
    boundaries.assign(tiles.size(), 0);

    // Two graph nodes per pair — partition -> merge, no cross-pair edges —
    // exactly the free batched_merge's enqueue, with the bodies capturing
    // plan members instead of stack locals.
    const int regs = cfg.variant == Variant::CFMerge
                         ? cost::cfmerge_regs_per_thread(cfg.e)
                         : cost::baseline_regs_per_thread(cfg.e);
    for (std::size_t p = 0; p < as.size(); ++p) {
      const int t0 = pair_tile0[p];
      const int tcount =
          (p + 1 < as.size() ? pair_tile0[p + 1] : static_cast<int>(tiles.size())) - t0;

      // Stage 1: per-tile co-rank of this pair's tiles (each simulated
      // thread resolves one tile's start diagonal; the descriptor read is
      // charged).
      const int pblocks = (tcount + cfg.u - 1) / cfg.u;
      const gpusim::NodeId partition = graph.add(
          "batched_partition", gpusim::LaunchShape{pblocks, cfg.u, 0, 24},
          [this, t0, tcount](gpusim::BlockContext& ctx) {
            ctx.phase("partition.search");
            const int w = ctx.lanes();
            assert(w <= gpusim::kMaxLanes);
            for (int warp = 0; warp < ctx.warps(); ++warp) {
              std::array<mergepath::LaneSearch, gpusim::kMaxLanes> lanes{};
              std::array<const BatchTile*, gpusim::kMaxLanes> desc{};
              bool any = false;
              std::array<std::int64_t, gpusim::kMaxLanes> daddr;
              daddr.fill(gpusim::kInactiveLane);
              for (int lane = 0; lane < w; ++lane) {
                const std::int64_t local =
                    static_cast<std::int64_t>(ctx.block_id()) * cfg.u + warp * w + lane;
                if (local >= tcount) continue;
                const std::int64_t t = t0 + local;
                const auto& bt = tiles[static_cast<std::size_t>(t)];
                desc[static_cast<std::size_t>(lane)] = &bt;
                daddr[static_cast<std::size_t>(lane)] =
                    t * static_cast<std::int64_t>(sizeof(BatchTile));
                lanes[static_cast<std::size_t>(lane)].init(bt.diag0, bt.ra, bt.rb);
                any = true;
              }
              if (!any) continue;
              ctx.charge_gmem(
                  warp,
                  std::span<const std::int64_t>(daddr.data(), static_cast<std::size_t>(w)),
                  8, /*dependent=*/true);  // descriptor fetch
              std::array<std::int64_t, gpusim::kMaxLanes> pa;
              std::array<std::int64_t, gpusim::kMaxLanes> pb;
              gpusim::GlobalView<const T> g(ctx, std::span<const T>(staging), 0);
              auto probe = [&](std::span<const std::int64_t> a_addr, std::span<T> a_val,
                               std::span<const std::int64_t> b_addr, std::span<T> b_val) {
                for (int lane = 0; lane < w; ++lane) {
                  const auto l = static_cast<std::size_t>(lane);
                  pa[l] = a_addr[l] == gpusim::kInactiveLane || desc[l] == nullptr
                              ? gpusim::kInactiveLane
                              : desc[l]->a_base + a_addr[l];
                  pb[l] = b_addr[l] == gpusim::kInactiveLane || desc[l] == nullptr
                              ? gpusim::kInactiveLane
                              : desc[l]->b_base + b_addr[l];
                }
                ctx.charge_compute(warp, cost::kSearchIterInstrs);
                std::array<T, gpusim::kMaxLanes> av{};
                std::array<T, gpusim::kMaxLanes> bv{};
                g.gather(warp, std::span<const std::int64_t>(pa.data(), a_val.size()),
                         std::span<T>(av.data(), a_val.size()), /*dependent=*/true);
                g.gather(warp, std::span<const std::int64_t>(pb.data(), b_val.size()),
                         std::span<T>(bv.data(), b_val.size()), /*dependent=*/false);
                std::copy(av.begin(), av.begin() + static_cast<std::ptrdiff_t>(w),
                          a_val.begin());
                std::copy(bv.begin(), bv.begin() + static_cast<std::ptrdiff_t>(w),
                          b_val.begin());
              };
              mergepath::warp_corank_search<T>(
                  std::span<mergepath::LaneSearch>(lanes.data(),
                                                   static_cast<std::size_t>(w)),
                  probe, std::less<T>{});
              for (int lane = 0; lane < w; ++lane) {
                const std::int64_t local =
                    static_cast<std::int64_t>(ctx.block_id()) * cfg.u + warp * w + lane;
                if (local >= tcount) continue;
                boundaries[static_cast<std::size_t>(t0 + local)] =
                    lanes[static_cast<std::size_t>(lane)].lo;
              }
            }
          });

      // Stage 2: one merge block per output tile of this pair.
      graph.add(
          "batched_merge",
          gpusim::LaunchShape{tcount, cfg.u, static_cast<std::size_t>(tile) * sizeof(T),
                              regs},
          [this, t0, tcount, tile](gpusim::BlockContext& ctx) {
            const std::int64_t local = ctx.block_id();
            const auto t = static_cast<std::size_t>(t0 + local);
            const BatchTile& bt = tiles[t];
            ctx.phase("merge.load");
            {
              // Descriptor + both boundary co-ranks: one small global read.
              const auto w = static_cast<std::size_t>(ctx.lanes());
              assert(w <= static_cast<std::size_t>(gpusim::kMaxLanes));
              std::array<std::int64_t, gpusim::kMaxLanes> addr;
              addr.fill(gpusim::kInactiveLane);
              addr[0] = static_cast<std::int64_t>(t);
              gpusim::GlobalView<const std::int64_t> bv(
                  ctx, std::span<const std::int64_t>(boundaries), 0);
              std::array<std::int64_t, gpusim::kMaxLanes> tmp;
              bv.gather(0, std::span<const std::int64_t>(addr.data(), w),
                        std::span<std::int64_t>(tmp.data(), w));
            }
            const std::int64_t a0 = boundaries[t];
            const bool last_tile_of_pair = local + 1 == tcount;
            const std::int64_t diag1 = bt.diag0 + tile;
            const std::int64_t a1 = last_tile_of_pair && diag1 >= bt.ra + bt.rb
                                        ? bt.ra
                                        : boundaries[t + 1];
            const std::int64_t b0 = bt.diag0 - a0;
            const std::int64_t la = a1 - a0;
            const std::int64_t lb = tile - la;

            gpusim::GlobalView<const T> gin(ctx, std::span<const T>(staging), 0);
            gpusim::GlobalView<T> gout(
                ctx,
                std::span<T>(packed).subspan(static_cast<std::size_t>(bt.out_base),
                                             static_cast<std::size_t>(tile)),
                bt.out_base);
            merge_window_core<T>(ctx, gin, gout, bt.a_base + a0, bt.b_base + b0, la, lb,
                                 cfg, std::less<T>{});
          },
          {partition});
    }
  }
  BatchedPlanT(const BatchedPlanT&) = delete;
  BatchedPlanT& operator=(const BatchedPlanT&) = delete;

  /// Rebind: overwrite each run's real prefix.  The sentinel pads between
  /// runs persist from build time (kernels never write staging).
  void load(const std::vector<std::vector<T>>& as, const std::vector<std::vector<T>>& bs) {
    for (std::size_t p = 0; p < as.size(); ++p) {
      const BatchTile& first = tiles[static_cast<std::size_t>(pair_tile0[p])];
      std::copy(as[p].begin(), as[p].end(),
                staging.begin() + static_cast<std::ptrdiff_t>(first.a_base));
      std::copy(bs[p].begin(), bs[p].end(),
                staging.begin() + static_cast<std::ptrdiff_t>(first.b_base));
    }
  }

  /// Unpack the packed output (dropping sentinel tails) into `outs`.
  void unpack(std::vector<std::vector<T>>& outs) const {
    for (std::size_t p = 0; p < out_sizes.size(); ++p) {
      const std::int64_t off = tiles[static_cast<std::size_t>(pair_tile0[p])].out_base;
      outs[p].assign(packed.begin() + static_cast<std::ptrdiff_t>(off),
                     packed.begin() + static_cast<std::ptrdiff_t>(off + out_sizes[p]));
    }
  }

  [[nodiscard]] std::uint64_t footprint_bytes() const {
    return (staging.capacity() + packed.capacity()) * sizeof(T) +
           tiles.capacity() * sizeof(BatchTile) + pair_tile0.capacity() * sizeof(int) +
           (out_sizes.capacity() + boundaries.capacity()) * sizeof(std::int64_t);
  }
};

}  // namespace detail

/// The engine.  Owns the plan cache and the scratch arena; executes
/// against one Launcher (whose history/trace it manages exactly like the
/// free entry points: cleared per call, then holding that call's kernels).
class SortEngine {
 public:
  static constexpr std::size_t kDefaultPlanCapacity = 64;

  explicit SortEngine(gpusim::Launcher& launcher,
                      std::size_t plan_capacity = kDefaultPlanCapacity)
      : launcher_(&launcher), capacity_(plan_capacity) {}
  SortEngine(const SortEngine&) = delete;
  SortEngine& operator=(const SortEngine&) = delete;

  /// merge_sort through the engine: bit-identical report, cached plan.
  template <typename T>
  SortReport sort(std::vector<T>& data, const MergeConfig& cfg,
                  gpusim::GraphExec mode = gpusim::GraphExec::Overlap) {
    validate_merge_config(launcher_->device(), cfg);
    const MergeConfig certified = with_certs(cfg);

    SortReport report;
    report.n = static_cast<std::int64_t>(data.size());
    if (report.n == 0) return report;

    const std::int64_t tile = certified.tile();
    const std::int64_t n_padded = (report.n + tile - 1) / tile * tile;
    report.n_padded = n_padded;

    const PlanKey key{PlanKey::Kind::Sort, type_digest<T>(), n_padded, 0,
                      config_digest(certified)};
    auto plan = acquire_plan<detail::SortPlanT<T>>(key, [&] {
      return std::make_shared<detail::SortPlanT<T>>(certified, n_padded);
    });
    plan->load(data);
    report.passes = plan->passes;

    launcher_->clear_history();
    const gpusim::GraphReport g = launcher_->run(plan->graph, mode);

    std::copy(plan->result->begin(), plan->result->begin() + report.n, data.begin());
    report.kernels = g.kernels;
    report.microseconds = g.serial_microseconds;
    report.makespan_microseconds = g.makespan_microseconds;
    report.graph_levels = g.levels;
    report.totals = launcher_->total_counters();
    report.phases = launcher_->phase_counters();
    cache_plan(key, std::move(plan));
    return report;
  }

  /// merge_sort_multiway through the engine: the k-way pipeline under the
  /// same plan cache.  The (k, variant) pair is digested into the key.
  template <typename T>
  SortReport sort_multiway(std::vector<T>& data, const MultiwayConfig& cfg,
                           gpusim::GraphExec mode = gpusim::GraphExec::Overlap) {
    validate_multiway_config(launcher_->device(), cfg);
    MultiwayConfig certified = cfg;
    certified.certs = resolve_tile_certs(launcher_->device().warp_size, cfg.e);

    SortReport report;
    report.n = static_cast<std::int64_t>(data.size());
    if (report.n == 0) return report;

    const std::int64_t tile = cfg.tile();
    const std::int64_t n_padded = (report.n + tile - 1) / tile * tile;
    report.n_padded = n_padded;

    // Every multiway knob — (k, variant) included — is folded by the one
    // uniform config_digest helper; no ad-hoc per-call-site digesting.
    const PlanKey key{PlanKey::Kind::Multiway, type_digest<T>(), n_padded, 0,
                      config_digest(cfg)};
    const int warp_size = launcher_->device().warp_size;
    auto plan = acquire_plan<detail::MultiwayPlanT<T>>(key, [&] {
      return std::make_shared<detail::MultiwayPlanT<T>>(certified, n_padded, warp_size);
    });
    plan->load(data);
    report.passes = plan->passes;

    launcher_->clear_history();
    const gpusim::GraphReport g = launcher_->run(plan->graph, mode);

    std::copy(plan->result->begin(), plan->result->begin() + report.n, data.begin());
    report.kernels = g.kernels;
    report.microseconds = g.serial_microseconds;
    report.makespan_microseconds = g.makespan_microseconds;
    report.graph_levels = g.levels;
    report.totals = launcher_->total_counters();
    report.phases = launcher_->phase_counters();
    cache_plan(key, std::move(plan));
    return report;
  }

  /// Standalone cf_permute / cf_transpose through the engine: one cached
  /// one-kernel plan per (op, direction, type, padded length, e, u).  The
  /// whole *padded* tile domain is permuted — a real element of a ragged
  /// final tile may land in the sentinel tail and come back only under the
  /// inverse op — so `data` is resized to the padded length and holds the
  /// full permuted array on return (truncate to report.n when done).
  template <typename T>
  cfprims::PermuteReport permute(std::vector<T>& data, const cfprims::PermuteConfig& cfg,
                                 gpusim::GraphExec mode = gpusim::GraphExec::Overlap) {
    cfprims::validate_permute_config(launcher_->device(), cfg);

    cfprims::PermuteReport report;
    report.op = cfg.op;
    report.inverse = cfg.inverse;
    report.e = cfg.e;
    report.u = cfg.u;
    report.n = static_cast<std::int64_t>(data.size());
    if (report.n == 0) return report;

    const std::int64_t tile = cfg.tile();
    const std::int64_t n_padded = (report.n + tile - 1) / tile * tile;
    report.n_padded = n_padded;

    // The (op, inverse) direction bits are folded by config_digest — the
    // same uniform helper every plan kind goes through.
    const auto kind = cfg.op == cfprims::PermuteOp::kTranspose
                          ? PlanKey::Kind::Transpose
                          : PlanKey::Kind::Permute;
    const PlanKey key{kind, type_digest<T>(), n_padded, 0, config_digest(cfg)};
    auto plan = acquire_plan<detail::PermutePlanT<T>>(
        key, [&] { return std::make_shared<detail::PermutePlanT<T>>(cfg, n_padded); });
    plan->load(data);

    launcher_->clear_history();
    const gpusim::GraphReport g = launcher_->run(plan->graph, mode);

    data.assign(plan->out.begin(), plan->out.end());
    report.kernels = g.kernels;
    report.microseconds = g.serial_microseconds;
    report.makespan_microseconds = g.makespan_microseconds;
    report.graph_levels = g.levels;
    report.totals = launcher_->total_counters();
    report.phases = launcher_->phase_counters();
    cache_plan(key, std::move(plan));
    return report;
  }

  /// sort_multiway for key-value pairs, arena-staged like sort_by_key.
  template <typename K, typename V>
  SortReport sort_multiway_by_key(std::vector<K>& keys, std::vector<V>& values,
                                  const MultiwayConfig& cfg,
                                  gpusim::GraphExec mode = gpusim::GraphExec::Overlap) {
    if (keys.size() != values.size())
      throw std::invalid_argument("merge_sort_multiway_by_key: keys/values size mismatch");
    auto lease = arena_.acquire<KeyValue<K, V>>(keys.size());
    std::vector<KeyValue<K, V>>& pairs = *lease;
    for (std::size_t i = 0; i < keys.size(); ++i) pairs[i] = {keys[i], values[i]};
    const SortReport report = sort_multiway(pairs, cfg, mode);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = pairs[i].key;
      values[i] = pairs[i].value;
    }
    return report;
  }

  /// merge_sort_by_key through the engine: the KeyValue pair buffer comes
  /// from the scratch arena instead of a per-call allocation.
  template <typename K, typename V>
  SortReport sort_by_key(std::vector<K>& keys, std::vector<V>& values,
                         const MergeConfig& cfg,
                         gpusim::GraphExec mode = gpusim::GraphExec::Overlap) {
    if (keys.size() != values.size())
      throw std::invalid_argument("merge_sort_by_key: keys/values size mismatch");
    auto lease = arena_.acquire<KeyValue<K, V>>(keys.size());
    std::vector<KeyValue<K, V>>& pairs = *lease;
    for (std::size_t i = 0; i < keys.size(); ++i) pairs[i] = {keys[i], values[i]};
    const SortReport report = sort(pairs, cfg, mode);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = pairs[i].key;
      values[i] = pairs[i].value;
    }
    return report;
  }

  /// segmented_sort through the engine: every non-empty segment acquires a
  /// plan (same-length segments across batches hit the cache) and its
  /// graph template is instantiated into one batch graph via
  /// KernelGraph::append — no kernels are re-enqueued on a hit.
  template <typename T>
  SegmentedSortReport segmented_sort(std::vector<std::vector<T>>& segments,
                                     const MergeConfig& cfg,
                                     gpusim::GraphExec mode = gpusim::GraphExec::Overlap) {
    validate_merge_config(launcher_->device(), cfg);
    const MergeConfig certified = with_certs(cfg);

    SegmentedSortReport report;
    report.segments = static_cast<int>(segments.size());
    report.per_segment.reserve(segments.size());

    struct Held {
      PlanKey key;
      std::shared_ptr<detail::SortPlanT<T>> plan;
    };
    std::vector<Held> held;

    const std::int64_t tile = cfg.tile();
    gpusim::KernelGraph graph;
    for (std::vector<T>& seg : segments) {
      SegmentedSortReport::Segment info;
      info.n = static_cast<std::int64_t>(seg.size());
      info.first_kernel = graph.size();
      report.elements += info.n;
      if (info.n > 0) {
        const std::int64_t n_padded = (info.n + tile - 1) / tile * tile;
        const PlanKey key{PlanKey::Kind::Sort, type_digest<T>(), n_padded, 0,
                          config_digest(certified)};
        auto plan = acquire_plan<detail::SortPlanT<T>>(key, [&] {
          return std::make_shared<detail::SortPlanT<T>>(certified, n_padded);
        });
        plan->load(seg);
        info.passes = plan->passes;
        graph.append(plan->graph);
        info.kernel_count = graph.size() - info.first_kernel;
        held.push_back({key, std::move(plan)});
      }
      report.per_segment.push_back(info);
    }

    launcher_->clear_history();
    const gpusim::GraphReport g = launcher_->run(graph, mode);

    std::size_t si = 0;
    for (std::vector<T>& seg : segments) {
      if (seg.empty()) continue;
      const detail::SortPlanT<T>& plan = *held[si++].plan;
      std::copy(plan.result->begin(),
                plan.result->begin() + static_cast<std::ptrdiff_t>(seg.size()),
                seg.begin());
    }

    report.serial_microseconds = g.serial_microseconds;
    report.makespan_microseconds = g.makespan_microseconds;
    report.graph_levels = g.levels;
    report.kernels = g.kernels;
    report.totals = launcher_->total_counters();
    report.phases = launcher_->phase_counters();
    for (Held& h : held) cache_plan(h.key, std::move(h.plan));
    return report;
  }

  /// batched_merge through the engine: the plan key digests every pair's
  /// (|A|, |B|), so a repeated batch shape reuses its staging layout,
  /// descriptors, and both kernel nodes per pair.
  template <typename T>
  BatchedMergeReport batched_merge(const std::vector<std::vector<T>>& as,
                                   const std::vector<std::vector<T>>& bs,
                                   std::vector<std::vector<T>>& outs,
                                   const MergeConfig& cfg,
                                   gpusim::GraphExec mode = gpusim::GraphExec::Overlap) {
    if (as.size() != bs.size())
      throw std::invalid_argument("batched_merge: pair count mismatch");
    validate_merge_config(launcher_->device(), cfg);
    const MergeConfig certified = with_certs(cfg);

    BatchedMergeReport report;
    report.pairs = static_cast<int>(as.size());
    outs.assign(as.size(), {});
    if (as.empty()) return report;

    std::uint64_t digest = numtheory::kFnvOffset;
    for (std::size_t p = 0; p < as.size(); ++p) {
      digest = numtheory::fnv1a(digest, static_cast<std::uint64_t>(as[p].size()));
      digest = numtheory::fnv1a(digest, static_cast<std::uint64_t>(bs[p].size()));
    }
    const PlanKey key{PlanKey::Kind::Batched, type_digest<T>(),
                      static_cast<std::int64_t>(as.size()), digest,
                      config_digest(certified)};
    auto plan = acquire_plan<detail::BatchedPlanT<T>>(key, [&] {
      return std::make_shared<detail::BatchedPlanT<T>>(as, bs, certified);
    });
    plan->load(as, bs);
    report.elements = plan->elements;

    launcher_->clear_history();
    const gpusim::GraphReport g = launcher_->run(plan->graph, mode);

    plan->unpack(outs);
    report.microseconds = g.serial_microseconds;
    report.makespan_microseconds = g.makespan_microseconds;
    report.graph_levels = g.levels;
    report.kernels = g.kernels;
    report.totals = launcher_->total_counters();
    report.phases = launcher_->phase_counters();
    cache_plan(key, std::move(plan));
    return report;
  }

  [[nodiscard]] gpusim::Launcher& launcher() const { return *launcher_; }
  [[nodiscard]] ScratchArena& arena() { return arena_; }

  /// Cumulative counters plus a snapshot of current cache/arena contents.
  [[nodiscard]] EngineStats stats() const;

  /// Drops every idle plan (stats counters are kept).
  void clear_plans();

  /// Disabling also drops the idle plans; every subsequent acquire is a
  /// build (counted as a miss).  `cfsort --no-plan-cache`.
  void set_plan_cache_enabled(bool enabled);
  [[nodiscard]] bool plan_cache_enabled() const { return cache_enabled_; }

  /// Maximum idle plan instances kept; least-recently-released instances
  /// beyond it are evicted.
  void set_plan_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t plan_capacity() const { return capacity_; }

  /// Attaches a persistent cross-process store (nullptr detaches).  On an
  /// in-memory plan miss the engine consults the store for the key's
  /// persisted metadata (a disk hit proves a previous process planned the
  /// same request) and writes the metadata back after building; the
  /// store's traffic counters surface as the EngineStats disk_* fields.
  /// The engine does NOT own the store — the caller keeps it alive (and
  /// calls save()) for the engine's lifetime; one store may serve several
  /// engines and the autotuner at once.
  void set_store(cache::PlanCacheStore* store) { store_ = store; }
  [[nodiscard]] cache::PlanCacheStore* store() const { return store_; }

 private:
  struct CachedPlan {
    PlanKey key;
    std::shared_ptr<void> plan;
    std::uint64_t bytes = 0;
    std::uint64_t released_at = 0;
  };

  /// Copies `cfg` with the conflict-freedom certificate bundle for the
  /// launcher's warp width resolved in (memoized process-wide; a few
  /// symbolic proofs on the first call per (w, E)).  PlanKey equality
  /// ignores the bundle — it is a pure function of (warp_size, e).
  [[nodiscard]] MergeConfig with_certs(const MergeConfig& cfg) const {
    MergeConfig out = cfg;
    out.certs = resolve_tile_certs(launcher_->device().warp_size, cfg.e);
    return out;
  }

  template <typename Plan, typename Build>
  std::shared_ptr<Plan> acquire_plan(const PlanKey& key, Build&& build) {
    if (cache_enabled_) {
      for (std::size_t i = 0; i < free_plans_.size(); ++i) {
        if (free_plans_[i].key == key) {
          auto plan = std::static_pointer_cast<Plan>(std::move(free_plans_[i].plan));
          free_plans_.erase(free_plans_.begin() + static_cast<std::ptrdiff_t>(i));
          ++stats_.plan_hits;
          return plan;
        }
      }
    }
    ++stats_.plan_misses;

    // Warm-start: an attached store answers "has any process planned this
    // exact request on this exact device before?".  The kernel graph itself
    // cannot live on disk (its bodies capture live buffers), so a disk hit
    // warms the metadata and the counters, not the build; the expensive
    // persisted payload is the autotuner's (analysis/autotune.cpp), which
    // shares this store.
    bool persisted = false;
    std::vector<std::byte> skey;
    if (store_ != nullptr) {
      skey = detail::plan_store_key(launcher_->device().digest(), key);
      persisted = store_->lookup(skey).has_value();
    }
    auto plan = build();
    if (store_ != nullptr && !persisted) {
      cache::ByteWriter meta;
      meta.u8(1);  // metadata record version
      if constexpr (requires { plan->passes; }) {
        meta.i64(plan->passes);
      } else {
        meta.i64(0);
      }
      meta.i64(key.n_padded);
      store_->insert(skey, meta.data());
    }
    return plan;
  }

  template <typename Plan>
  void cache_plan(const PlanKey& key, std::shared_ptr<Plan> plan) {
    const std::uint64_t bytes = plan->footprint_bytes();
    release_plan(key, std::move(plan), bytes);
  }

  void release_plan(const PlanKey& key, std::shared_ptr<void> plan,
                    std::uint64_t bytes);
  void evict_to_capacity(std::size_t capacity);

  gpusim::Launcher* launcher_;
  ScratchArena arena_;
  cache::PlanCacheStore* store_ = nullptr;  ///< optional, caller-owned
  std::vector<CachedPlan> free_plans_;  ///< idle instances, linear-scanned
  bool cache_enabled_ = true;
  std::size_t capacity_;
  std::uint64_t clock_ = 0;
  EngineStats stats_;  ///< cumulative fields only; snapshots added in stats()
};

// ---------------------------------------------------------------------------
// The classic free entry points: one-shot engine use.  A fresh engine per
// call means plan build + execute, which is exactly the pre-engine cost and
// produces bit-identical reports; callers with repeated shapes should hold
// a SortEngine instead.

/// Sorts `data` in place with the configured variant.  `launcher.history()`
/// is cleared and then holds one report per launched kernel.
template <typename T>
SortReport merge_sort(gpusim::Launcher& launcher, std::vector<T>& data,
                      const MergeConfig& cfg) {
  SortEngine engine(launcher);
  return engine.sort(data, cfg);
}

/// Sorts `keys` and applies the same permutation to `values` (Thrust's
/// sort_by_key).  Sizes must match.  See key_value.hpp for the stability
/// guarantees per variant.
template <typename K, typename V>
SortReport merge_sort_by_key(gpusim::Launcher& launcher, std::vector<K>& keys,
                             std::vector<V>& values, const MergeConfig& cfg) {
  SortEngine engine(launcher);
  return engine.sort_by_key(keys, values, cfg);
}

/// Sorts `data` in place with the k-way multiway pipeline: ceil(log_k)
/// global passes instead of ceil(log2).  See multiway_pass.hpp for the two
/// merge variants.  Results are bit-identical to merge_sort for plain keys.
template <typename T>
SortReport merge_sort_multiway(gpusim::Launcher& launcher, std::vector<T>& data,
                               const MultiwayConfig& cfg) {
  SortEngine engine(launcher);
  return engine.sort_multiway(data, cfg);
}

/// merge_sort_multiway for key-value pairs (sorted by key).
template <typename K, typename V>
SortReport merge_sort_multiway_by_key(gpusim::Launcher& launcher, std::vector<K>& keys,
                                      std::vector<V>& values, const MultiwayConfig& cfg) {
  SortEngine engine(launcher);
  return engine.sort_multiway_by_key(keys, values, cfg);
}

/// Sorts every segment in place, all submitted as one kernel graph.
/// Zero-length segments are legal and contribute no kernels.
/// `launcher.history()` is cleared and then holds every kernel in enqueue
/// order (segment by segment).  `mode` selects the host execution policy
/// only — reports are bit-identical for both modes and any worker count.
template <typename T>
SegmentedSortReport segmented_sort(gpusim::Launcher& launcher,
                                   std::vector<std::vector<T>>& segments,
                                   const MergeConfig& cfg,
                                   gpusim::GraphExec mode = gpusim::GraphExec::Overlap) {
  SortEngine engine(launcher);
  return engine.segmented_sort(segments, cfg, mode);
}

/// Merges as[i] with bs[i] into outs[i] for every i, in one partition
/// launch + one merge launch.  Lists may have arbitrary (including zero and
/// mutually different) lengths.
template <typename T>
BatchedMergeReport batched_merge(gpusim::Launcher& launcher,
                                 const std::vector<std::vector<T>>& as,
                                 const std::vector<std::vector<T>>& bs,
                                 std::vector<std::vector<T>>& outs,
                                 const MergeConfig& cfg) {
  SortEngine engine(launcher);
  return engine.batched_merge(as, bs, outs, cfg);
}

}  // namespace cfmerge::sort
