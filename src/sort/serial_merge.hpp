// Baseline per-thread sequential merge from shared memory — the routine
// whose bank conflicts the paper eliminates.
//
// Every thread of a warp merges its merge-path subsequences A_i and B_i
// directly from shared memory in lockstep: after preloading the two head
// elements, each of the E output steps consumes the smaller head and
// fetches its successor from shared memory.  The fetch addresses are data
// dependent, so the warp's w concurrent fetches can collide in the same
// bank — up to w-fold serialization per step (the paper's Section 4 inputs
// force exactly this).
#pragma once

#include <array>
#include <cassert>
#include <functional>
#include <limits>
#include <span>

#include "gpusim/memory_views.hpp"
#include "sort/cost_model.hpp"

namespace cfmerge::sort {

/// Per-thread split description for a warp-synchronous merge step.
/// Addresses are *physical* shared memory positions; `a_pos(x)` maps offset
/// x within the thread's A_i to its position, and likewise `b_pos`.
struct MergeLaneDesc {
  std::int64_t a_begin = 0;  ///< first A offset (block-local)
  std::int64_t a_size = 0;
  std::int64_t b_begin = 0;
  std::int64_t b_size = 0;
};

/// Merges, for every thread of the block, A_i and B_i out of `shmem` into
/// the block register file `regs` (thread i's outputs at regs[i*E .. i*E+E)).
///
/// `a_pos(off)` / `b_pos(off)` translate *block-local list offsets* into
/// physical shared positions (identity + la-offset for the baseline linear
/// layout).  `lanes` holds one descriptor per thread.
template <typename T, typename APos, typename BPos, typename Cmp = std::less<T>>
void warp_serial_merge(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem,
                       std::span<const MergeLaneDesc> lanes, int e, APos&& a_pos,
                       BPos&& b_pos, std::span<T> regs, Cmp cmp = Cmp{}) {
  const int w = ctx.lanes();
  const int warps = ctx.warps();
  assert(static_cast<int>(lanes.size()) == ctx.threads());
  assert(w <= gpusim::kMaxLanes);

  // All per-lane state on the stack: this body runs once per simulated
  // block, so heap vectors here dominated the allocator profile.
  std::array<std::int64_t, gpusim::kMaxLanes> addr_buf;
  std::array<T, gpusim::kMaxLanes> fetched_buf{};
  const std::span<std::int64_t> addr(addr_buf.data(), static_cast<std::size_t>(w));
  const std::span<T> fetched(fetched_buf.data(), static_cast<std::size_t>(w));

  struct LaneState {
    std::int64_t next_a;  ///< next unread offset of A_i
    std::int64_t next_b;
    T head_a;
    T head_b;
    bool has_a;
    bool has_b;
  };
  std::array<LaneState, gpusim::kMaxLanes> st{};

  for (int warp = 0; warp < warps; ++warp) {
    ctx.charge_compute(warp, cost::kThreadSetupInstrs);
    // Preload the A heads (one warp access), then the B heads.
    for (int lane = 0; lane < w; ++lane) {
      const auto& d = lanes[static_cast<std::size_t>(warp * w + lane)];
      st[static_cast<std::size_t>(lane)] = LaneState{d.a_begin + 1, d.b_begin + 1, T{}, T{},
                                                     d.a_size > 0, d.b_size > 0};
      addr[static_cast<std::size_t>(lane)] =
          d.a_size > 0 ? a_pos(d.a_begin) : gpusim::kInactiveLane;
    }
    shmem.gather(warp, addr, fetched, /*dependent=*/true, /*scattered=*/true);
    for (int lane = 0; lane < w; ++lane)
      if (st[static_cast<std::size_t>(lane)].has_a)
        st[static_cast<std::size_t>(lane)].head_a = fetched[static_cast<std::size_t>(lane)];

    for (int lane = 0; lane < w; ++lane) {
      const auto& d = lanes[static_cast<std::size_t>(warp * w + lane)];
      addr[static_cast<std::size_t>(lane)] =
          d.b_size > 0 ? b_pos(d.b_begin) : gpusim::kInactiveLane;
    }
    shmem.gather(warp, addr, fetched, /*dependent=*/true, /*scattered=*/true);
    for (int lane = 0; lane < w; ++lane)
      if (st[static_cast<std::size_t>(lane)].has_b)
        st[static_cast<std::size_t>(lane)].head_b = fetched[static_cast<std::size_t>(lane)];

    // E lockstep output steps.
    std::array<char, gpusim::kMaxLanes> consumed_a{};
    for (int step = 0; step < e; ++step) {
      // Decide the winner per lane and emit it; queue the successor fetch.
      for (int lane = 0; lane < w; ++lane) {
        const int i = warp * w + lane;
        const auto& d = lanes[static_cast<std::size_t>(i)];
        auto& s = st[static_cast<std::size_t>(lane)];
        assert(s.has_a || s.has_b);
        const bool take_a = s.has_a && (!s.has_b || !cmp(s.head_b, s.head_a));
        consumed_a[static_cast<std::size_t>(lane)] = take_a;
        regs[static_cast<std::size_t>(i) * static_cast<std::size_t>(e) +
             static_cast<std::size_t>(step)] = take_a ? s.head_a : s.head_b;
        if (take_a) {
          if (s.next_a < d.a_begin + d.a_size) {
            addr[static_cast<std::size_t>(lane)] = a_pos(s.next_a++);
          } else {
            s.has_a = false;
            addr[static_cast<std::size_t>(lane)] = gpusim::kInactiveLane;
          }
        } else {
          if (s.next_b < d.b_begin + d.b_size) {
            addr[static_cast<std::size_t>(lane)] = b_pos(s.next_b++);
          } else {
            s.has_b = false;
            addr[static_cast<std::size_t>(lane)] = gpusim::kInactiveLane;
          }
        }
      }
      ctx.charge_compute(warp, cost::kMergeStepInstrs);
      shmem.gather(warp, addr, fetched, /*dependent=*/true, /*scattered=*/true);
      for (int lane = 0; lane < w; ++lane) {
        auto& s = st[static_cast<std::size_t>(lane)];
        const bool act = addr[static_cast<std::size_t>(lane)] != gpusim::kInactiveLane;
        const bool ca = consumed_a[static_cast<std::size_t>(lane)] != 0;
        // The fetched value replaces the head that was just consumed.
        s.head_a = act && ca ? fetched[static_cast<std::size_t>(lane)] : s.head_a;
        s.head_b = act && !ca ? fetched[static_cast<std::size_t>(lane)] : s.head_b;
      }
    }
  }
}

}  // namespace cfmerge::sort
