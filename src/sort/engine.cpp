#include "sort/engine.hpp"

#include "verify/certificate.hpp"

namespace cfmerge::sort {

std::uint64_t ScratchArena::pooled_bytes() const {
  std::uint64_t total = 0;
  for (const Slot& s : slots_) total += s.measure(s.storage.get());
  return total;
}

void ScratchArena::clear() {
  std::erase_if(slots_, [](const Slot& s) { return !s.in_use; });
}

void ScratchArena::release(std::size_t slot) {
  Slot& s = slots_[slot];
  s.in_use = false;
  s.bytes = s.measure(s.storage.get());
}

EngineStats SortEngine::stats() const {
  EngineStats s = stats_;
  s.plans_cached = free_plans_.size();
  for (const CachedPlan& c : free_plans_) s.plan_bytes += c.bytes;
  s.arena_bytes = arena_.pooled_bytes();
  s.arena_allocs = arena_.allocs();
  s.arena_reuses = arena_.reuses();
  s.bulk_charges = launcher_->bulk_charges();
  s.lane_charges = launcher_->lane_charges();
  s.audit_skipped_accesses = launcher_->audit_skipped_accesses();
  const verify::CertificateStats cs = verify::certificate_stats();
  s.cert_hits = cs.hits;
  s.cert_misses = cs.misses;
  s.certs_cached = cs.cached;
  if (store_ != nullptr) {
    const cache::StoreStats ds = store_->stats();
    s.disk_hits = ds.hits;
    s.disk_misses = ds.misses;
    s.disk_writes = ds.writes;
    s.disk_evictions = ds.evictions;
    s.disk_corrupt = ds.corrupt;
    s.disk_entries = ds.entries;
    s.disk_bytes = ds.bytes;
  }
  return s;
}

void SortEngine::clear_plans() { free_plans_.clear(); }

void SortEngine::set_plan_cache_enabled(bool enabled) {
  cache_enabled_ = enabled;
  if (!enabled) free_plans_.clear();
}

void SortEngine::set_plan_capacity(std::size_t capacity) {
  capacity_ = capacity;
  evict_to_capacity(capacity_);
}

void SortEngine::release_plan(const PlanKey& key, std::shared_ptr<void> plan,
                              std::uint64_t bytes) {
  if (!cache_enabled_ || capacity_ == 0) return;  // plan is dropped here
  free_plans_.push_back({key, std::move(plan), bytes, ++clock_});
  evict_to_capacity(capacity_);
}

void SortEngine::evict_to_capacity(std::size_t capacity) {
  while (free_plans_.size() > capacity) {
    std::size_t lru = 0;
    for (std::size_t i = 1; i < free_plans_.size(); ++i)
      if (free_plans_[i].released_at < free_plans_[lru].released_at) lru = i;
    free_plans_.erase(free_plans_.begin() + static_cast<std::ptrdiff_t>(lru));
    ++stats_.plan_evictions;
  }
}

}  // namespace cfmerge::sort
