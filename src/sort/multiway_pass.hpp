// One global k-way merge pass of the multiway mergesort.
//
// Runs of length `run` are merged k at a time, cutting the global pass count
// from ceil(log2(n/tile)) to ceil(log_k(n/tile)) (Casanova et al.).  Stage 1
// (partition kernel) computes, for every output tile boundary, the k-vector
// of co-ranks inside its group of k runs — multisequence selection, the
// k-dimensional generalization of merge path (mergepath/multiway_path.hpp).
// Stage 2 (merge kernel) produces one output tile of u*E elements per block
// from its k segment windows, in one of two variants:
//
//  * CFCascade — the conflict-free schedule.  The tile's k windows are
//    merged by a cascade of log2(k) in-shared pairwise stages, each an
//    instance of the proven 2-way dual-subsequence-gather schedule; stage
//    outputs are scattered straight into the parent pair's rho(A ∪ pi(B))
//    layout through a data-independent rank map (gather/multiway_schedule.hpp),
//    so every gather *and* scatter round is conflict free — machine-checked
//    by cfverify (verify/multiway.cpp) and screened at runtime by the
//    bank-conflict model.  Requires k to be a power of two.
//  * LoserTree — the natural single-phase design: segments linear in shared,
//    per-thread k-way replacement selection from a register loser tree.
//    Every replacement read is data dependent across lanes, so the merge
//    phase bank-conflicts freely (cfverify refutes the variant with a
//    concrete lane-pair witness).  Kept as the measured baseline; any k >= 2.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "cfprims/exec.hpp"
#include "gather/multiway_schedule.hpp"
#include "gather/schedule.hpp"
#include "gpusim/launcher.hpp"
#include "gpusim/memory_views.hpp"
#include "sort/kernels.hpp"
#include "sort/key_value.hpp"
#include "sort/merge_pass.hpp"
#include "sort/odd_even.hpp"

namespace cfmerge::sort {

enum class MultiwayVariant {
  CFCascade,  ///< cascade of 2-way CF stages in shared memory (k = 2^m)
  LoserTree,  ///< per-thread k-way replacement selection (conflicts; any k)
};

/// Tuning knobs of a k-way sort configuration.
struct MultiwayConfig {
  int e = 15;   ///< elements per thread (paper's E)
  int u = 512;  ///< threads per block
  int k = 4;    ///< merge arity per global pass
  MultiwayVariant variant = MultiwayVariant::CFCascade;
  bool cf_blocksort = false;  ///< forwarded to the (2-way) block-sort stage
  /// Conflict-freedom certificates (see MergeConfig::certs); resolved by
  /// the engine, all-null default keeps the lane-accurate path.
  TileCerts certs{};

  [[nodiscard]] std::int64_t tile() const { return static_cast<std::int64_t>(u) * e; }
};

/// Largest supported merge arity (bounds the per-lane head/pointer arrays).
inline constexpr int kMaxMultiwayK = 16;

/// Validates the MultiwayConfig invariants shared by every multiway entry
/// point.  Throws std::invalid_argument naming the first violated constraint.
inline void validate_multiway_config(const gpusim::DeviceSpec& dev,
                                     const MultiwayConfig& cfg) {
  if (cfg.e <= 0) throw std::invalid_argument("MultiwayConfig: E must be positive");
  if (cfg.u <= 0) throw std::invalid_argument("MultiwayConfig: u must be positive");
  if (cfg.u % dev.warp_size != 0)
    throw std::invalid_argument("MultiwayConfig: u must be a multiple of the warp size");
  if (cfg.k < 2 || cfg.k > kMaxMultiwayK)
    throw std::invalid_argument("MultiwayConfig: k must be in [2, 16]");
  if (cfg.variant == MultiwayVariant::CFCascade && (cfg.k & (cfg.k - 1)) != 0)
    throw std::invalid_argument("MultiwayConfig: CFCascade requires a power-of-two k");
}

/// Geometry of one k-way pass: which group of k runs an output position
/// belongs to, and the (possibly short or empty) segment lengths inside it.
struct PassGeometryK {
  std::int64_t n = 0;    ///< total elements (multiple of tile)
  std::int64_t run = 0;  ///< input run length (multiple of tile)
  int k = 2;

  [[nodiscard]] std::int64_t group_base(std::int64_t pos) const {
    return pos / (k * run) * (k * run);
  }
  /// Length of segment s of the group at `base` (short/empty at the end).
  [[nodiscard]] std::int64_t seg_len(std::int64_t base, int s) const {
    return std::clamp<std::int64_t>(n - base - s * run, 0, run);
  }
  [[nodiscard]] std::int64_t group_len(std::int64_t base) const {
    return std::min<std::int64_t>(static_cast<std::int64_t>(k) * run, n - base);
  }
};

namespace detail {

/// Warp-lockstep multisequence selection: resolves, for every lane l, the
/// co-rank vector of diagonal diag[l] across its k sequences.  seg_len and
/// out_co are lane-major (lane*k + s); diag[l] < 0 masks the lane.  `probe`
/// issues one charged warp-wide read: probe(s, idx, vals) loads element
/// idx[lane] of lane's sequence s (kInactiveLane masks idle lanes).
///
/// Per outer iteration of sequence s the lockstep loop reads the probed
/// element and runs k-1 nested lockstep bound searches — the classical
/// O(k^2 log^2) multisequence-selection pattern, every access charged.
template <typename T, typename Probe, typename Cmp>
void warp_multiway_corank(gpusim::BlockContext& ctx, int warp, int k,
                          std::span<const std::int64_t> seg_len,
                          std::span<const std::int64_t> diag, Probe&& probe, Cmp cmp,
                          std::span<std::int64_t> out_co) {
  const int w = ctx.lanes();
  assert(w <= gpusim::kMaxLanes);
  std::vector<std::int64_t> total(static_cast<std::size_t>(w), 0);
  for (int l = 0; l < w; ++l)
    for (int s = 0; s < k; ++s) total[static_cast<std::size_t>(l)] += seg_len[static_cast<std::size_t>(l * k + s)];

  std::array<std::int64_t, gpusim::kMaxLanes> lo, hi, mid, idx, rank, lo2, hi2;
  std::array<T, gpusim::kMaxLanes> v{}, pv{};
  std::array<bool, gpusim::kMaxLanes> act{}, act2{};
  const std::span<std::int64_t> idxspan(idx.data(), static_cast<std::size_t>(w));
  const std::span<T> vspan(v.data(), static_cast<std::size_t>(w));
  const std::span<T> pvspan(pv.data(), static_cast<std::size_t>(w));

  for (int s = 0; s < k; ++s) {
    for (int l = 0; l < w; ++l) {
      const auto ll = static_cast<std::size_t>(l);
      if (diag[ll] < 0) {
        lo[ll] = hi[ll] = 0;
        continue;
      }
      const std::int64_t ns = seg_len[static_cast<std::size_t>(l * k + s)];
      lo[ll] = std::max<std::int64_t>(0, diag[ll] - (total[ll] - ns));
      hi[ll] = std::min(diag[ll], ns);
    }
    while (true) {
      bool any = false;
      for (int l = 0; l < w; ++l) {
        const auto ll = static_cast<std::size_t>(l);
        act[ll] = diag[ll] >= 0 && lo[ll] < hi[ll];
        any = any || act[ll];
        mid[ll] = act[ll] ? lo[ll] + (hi[ll] - lo[ll]) / 2 : 0;
        idx[ll] = act[ll] ? mid[ll] : gpusim::kInactiveLane;
      }
      if (!any) break;
      ctx.charge_compute(warp, cost::kSearchIterInstrs);
      probe(s, std::span<const std::int64_t>(idxspan), vspan);

      // rank(s, mid) = mid + Σ_{t<s} ub_t(v) + Σ_{t>s} lb_t(v).
      for (int l = 0; l < w; ++l) rank[static_cast<std::size_t>(l)] = mid[static_cast<std::size_t>(l)];
      for (int t = 0; t < k; ++t) {
        if (t == s) continue;
        for (int l = 0; l < w; ++l) {
          const auto ll = static_cast<std::size_t>(l);
          lo2[ll] = 0;
          hi2[ll] = act[ll] ? seg_len[static_cast<std::size_t>(l * k + t)] : 0;
        }
        while (true) {
          bool any2 = false;
          for (int l = 0; l < w; ++l) {
            const auto ll = static_cast<std::size_t>(l);
            act2[ll] = act[ll] && lo2[ll] < hi2[ll];
            any2 = any2 || act2[ll];
            idx[ll] = act2[ll] ? lo2[ll] + (hi2[ll] - lo2[ll]) / 2 : gpusim::kInactiveLane;
          }
          if (!any2) break;
          ctx.charge_compute(warp, cost::kSearchIterInstrs);
          probe(t, std::span<const std::int64_t>(idxspan), pvspan);
          for (int l = 0; l < w; ++l) {
            const auto ll = static_cast<std::size_t>(l);
            if (!act2[ll]) continue;
            const std::int64_t m2 = lo2[ll] + (hi2[ll] - lo2[ll]) / 2;
            const bool take = t < s ? !cmp(v[ll], pv[ll]) : cmp(pv[ll], v[ll]);
            if (take)
              lo2[ll] = m2 + 1;
            else
              hi2[ll] = m2;
          }
        }
        for (int l = 0; l < w; ++l) {
          const auto ll = static_cast<std::size_t>(l);
          if (act[ll]) rank[ll] += lo2[ll];
        }
      }
      for (int l = 0; l < w; ++l) {
        const auto ll = static_cast<std::size_t>(l);
        if (!act[ll]) continue;
        if (rank[ll] < diag[ll])
          lo[ll] = mid[ll] + 1;
        else
          hi[ll] = mid[ll];
      }
    }
    for (int l = 0; l < w; ++l)
      out_co[static_cast<std::size_t>(l * k + s)] =
          diag[static_cast<std::size_t>(l)] < 0 ? 0 : lo[static_cast<std::size_t>(l)];
  }
}

/// Fills shared positions dst(t), t in [0, count), with `value` — charged
/// like the store half of load_tile (all warps, strided chunks).
template <typename T, typename Dst>
void fill_shared(gpusim::BlockContext& ctx, gpusim::SharedTile<T>& shmem,
                 std::int64_t count, Dst&& dst, const T& value) {
  const int w = ctx.lanes();
  const int u = ctx.threads();
  std::array<std::int64_t, gpusim::kMaxLanes> addr;
  std::array<T, gpusim::kMaxLanes> vals;
  vals.fill(value);
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    for (std::int64_t base = static_cast<std::int64_t>(warp) * w; base < count;
         base += u) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t t = base + lane;
        addr[static_cast<std::size_t>(lane)] = t < count ? dst(t) : gpusim::kInactiveLane;
      }
      ctx.charge_compute(warp, cost::kCopyChunkInstrs);
      shmem.scatter(warp,
                    std::span<const std::int64_t>(addr.data(), static_cast<std::size_t>(w)),
                    std::span<const T>(vals.data(), static_cast<std::size_t>(w)),
                    /*dependent=*/false);
    }
  }
}

}  // namespace detail

/// Stage 1: k-way partition kernel.  boundaries is a flat (num_tiles+1) x k
/// table; row t receives the co-rank vector of output diagonal t*tile within
/// its group of k runs.  One simulated thread per boundary row.
template <typename T, typename Cmp = std::less<T>>
void multiway_partition_body(gpusim::BlockContext& ctx, std::span<const T> input,
                             const PassGeometryK& geom, std::int64_t tile,
                             std::span<std::int64_t> boundaries, Cmp cmp = Cmp{}) {
  const int u = ctx.threads();
  const int w = ctx.lanes();
  const int k = geom.k;
  const auto nb = static_cast<std::int64_t>(boundaries.size()) / k;
  gpusim::GlobalView<const T> global(ctx, input, 0);

  ctx.phase("partition.search");
  assert(w <= gpusim::kMaxLanes);
  std::vector<std::int64_t> seg_len(static_cast<std::size_t>(w * k), 0);
  std::vector<std::int64_t> out_co(static_cast<std::size_t>(w * k), 0);
  std::array<std::int64_t, gpusim::kMaxLanes> gbase;
  std::array<std::int64_t, gpusim::kMaxLanes> diag;
  std::array<std::int64_t, gpusim::kMaxLanes> pa;
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    bool any = false;
    for (int lane = 0; lane < w; ++lane) {
      const auto l = static_cast<std::size_t>(lane);
      diag[l] = -1;
      gbase[l] = 0;
      const std::int64_t t =
          static_cast<std::int64_t>(ctx.block_id()) * u + warp * w + lane;
      if (t >= nb) continue;
      const std::int64_t pos = t * tile;
      const std::int64_t base = pos >= geom.n ? geom.n : geom.group_base(pos);
      gbase[l] = base;
      diag[l] = std::min(pos - base, geom.group_len(base));
      for (int s = 0; s < k; ++s)
        seg_len[static_cast<std::size_t>(lane * k + s)] = geom.seg_len(base, s);
      any = true;
    }
    if (!any) continue;
    auto probe = [&](int s, std::span<const std::int64_t> idx, std::span<T> vals) {
      for (int lane = 0; lane < w; ++lane) {
        const auto l = static_cast<std::size_t>(lane);
        pa[l] = idx[l] == gpusim::kInactiveLane
                    ? gpusim::kInactiveLane
                    : gbase[l] + static_cast<std::int64_t>(s) * geom.run + idx[l];
      }
      global.gather(warp,
                    std::span<const std::int64_t>(pa.data(), static_cast<std::size_t>(w)),
                    vals, /*dependent=*/true);
    };
    detail::warp_multiway_corank<T>(
        ctx, warp, k, seg_len,
        std::span<const std::int64_t>(diag.data(), static_cast<std::size_t>(w)), probe,
        cmp, std::span<std::int64_t>(out_co));
    for (int lane = 0; lane < w; ++lane) {
      const std::int64_t t =
          static_cast<std::int64_t>(ctx.block_id()) * u + warp * w + lane;
      if (t >= nb) continue;
      for (int s = 0; s < k; ++s)
        boundaries[static_cast<std::size_t>(t * k + s)] =
            out_co[static_cast<std::size_t>(lane * k + s)];
    }
  }
}

/// CFCascade merge core: merges the block's k segment windows (global
/// element offsets seg_src, lengths seg_len, Σ = tile) into `gout` through
/// the cascade of 2-way CF stages.  Every gather/scatter round goes through
/// the bank-conflict screener with the conflict-free claim intact.
template <typename T, typename GIn, typename Cmp>
void multiway_cascade_core(gpusim::BlockContext& ctx, GIn& gin, gpusim::GlobalView<T>& gout,
                           std::span<const std::int64_t> seg_src,
                           std::span<const std::int64_t> seg_len,
                           const MultiwayConfig& cfg, Cmp cmp) {
  const int w = ctx.lanes();
  const int e = cfg.e;
  const std::int64_t tile = cfg.tile();
  const gather::CascadePlan plan(w, e, seg_len);
  const std::int64_t cap = gather::CascadePlan::capacity(tile, w, e, cfg.k);
  gpusim::SharedTile<T> shmem(ctx, static_cast<std::size_t>(2 * cap));

  // Level-0 load: pair p stages segments 2p (as A) and 2p+1 (as B) into its
  // rho(A ∪ pi(B)) region of buffer 0, sentinel tail included.
  {
    const std::int64_t rb = gather::CascadePlan::read_buffer(0) * cap;
    const auto& prs = plan.pairs(0);
    const auto& leaves = plan.runs(0);
    for (std::size_t p = 0; p < prs.size(); ++p) {
      const gather::CascadePair& pr = prs[p];
      if (pr.size() == 0) continue;
      const std::int64_t na = leaves[2 * p].len;
      const std::int64_t nbr = leaves[2 * p + 1].len;
      load_tile(ctx, gin, shmem, na,
                [&](std::int64_t t) { return seg_src[2 * p] + t; },
                [&](std::int64_t t) { return rb + pr.pos_a(t); });
      load_tile(ctx, gin, shmem, nbr,
                [&](std::int64_t t) { return seg_src[2 * p + 1] + t; },
                [&](std::int64_t t) { return rb + pr.pos_b(t); });
      detail::fill_shared(ctx, shmem, pr.lb - nbr,
                          [&](std::int64_t t) { return rb + pr.pos_b(nbr + t); },
                          padding_sentinel<T>::value());
    }
  }
  ctx.barrier();

  // The cascade: each level runs the 2-way CF merge for every pair, with
  // virtual warps (u_pair = pad/E simulated threads per pair) mapped
  // round-robin onto the block's physical warps for charging.
  for (int level = 0; level < plan.levels(); ++level) {
    const std::int64_t rb = gather::CascadePlan::read_buffer(level) * cap;
    const std::int64_t wb = gather::CascadePlan::write_buffer(level) * cap;
    const auto& prs = plan.pairs(level);
    std::int64_t vglobal = 0;
    for (std::size_t p = 0; p < prs.size(); ++p) {
      const gather::CascadePair& pr = prs[p];
      const std::int64_t pad = pr.size();
      if (pad == 0) continue;
      const auto u_pair = static_cast<int>(pad / e);
      const int vwarps = u_pair / w;

      // Per-virtual-thread merge-path splits within the pair.
      ctx.phase("merge.search");
      std::vector<std::int64_t> a_off(static_cast<std::size_t>(u_pair));
      std::vector<std::int64_t> a_size(static_cast<std::size_t>(u_pair));
      {
        const auto pos_a = [&](int, std::int64_t x) { return rb + pr.pos_a(x); };
        const auto pos_b = [&](int, std::int64_t y) { return rb + pr.pos_b(y); };
        std::array<LanePair, gpusim::kMaxLanes> pairs;
        std::array<LanePair, gpusim::kMaxLanes> end_pairs;
        std::array<std::int64_t, gpusim::kMaxLanes> start;
        std::array<std::int64_t, gpusim::kMaxLanes> end;
        for (int vw = 0; vw < vwarps; ++vw) {
          const int pw = static_cast<int>((vglobal + vw) % ctx.warps());
          for (int lane = 0; lane < w; ++lane) {
            const std::int64_t d = static_cast<std::int64_t>(vw * w + lane) * e;
            pairs[static_cast<std::size_t>(lane)] = {pr.la, pr.lb, d};
            end_pairs[static_cast<std::size_t>(lane)] = {pr.la, pr.lb, d + e};
          }
          warp_shared_corank(ctx, pw, shmem,
                             std::span<const LanePair>(pairs.data(),
                                                       static_cast<std::size_t>(w)),
                             pos_a, pos_b, cmp,
                             std::span<std::int64_t>(start.data(),
                                                     static_cast<std::size_t>(w)));
          warp_shared_corank(ctx, pw, shmem,
                             std::span<const LanePair>(end_pairs.data(),
                                                       static_cast<std::size_t>(w)),
                             pos_a, pos_b, cmp,
                             std::span<std::int64_t>(end.data(),
                                                     static_cast<std::size_t>(w)));
          for (int lane = 0; lane < w; ++lane) {
            const int i = vw * w + lane;
            a_off[static_cast<std::size_t>(i)] = start[static_cast<std::size_t>(lane)];
            a_size[static_cast<std::size_t>(i)] =
                end[static_cast<std::size_t>(lane)] - start[static_cast<std::size_t>(lane)];
          }
        }
      }

      // Dual subsequence gather + register network (the proven 2-way core).
      ctx.phase("merge.merge");
      const gather::GatherShape shape{w, e, u_pair, pr.la, pr.lb};
      const gather::RoundSchedule sched(shape, std::move(a_off), std::move(a_size));
      std::vector<T> regs(static_cast<std::size_t>(pad));
      const auto pair_warp = [&](int vw) {
        return static_cast<int>((vglobal + vw) % ctx.warps());
      };
      // Each pair is an instance of the proven 2-way schedule at a constant
      // buffer offset (a uniform shift preserves bank distinctness), so the
      // cf_gather certificate applies per pair.
      cfprims::exec_crs_gather(
          ctx, shmem, w, e, vwarps, cfprims::kGatherCharge, cfg.certs.gather, pair_warp,
          [&](int vw, int lane, int j) {
            return rb + pr.base + sched.read(vw * w + lane, j).phys;
          },
          [&](int vw, int lane, int j, const T& v) {
            regs[static_cast<std::size_t>(vw * w + lane) * static_cast<std::size_t>(e) +
                 static_cast<std::size_t>(j)] = v;
          });
      for (int vw = 0; vw < vwarps; ++vw) {
        for (int lane = 0; lane < w; ++lane) {
          std::span<T> r(regs.data() + static_cast<std::size_t>(vw * w + lane) *
                                           static_cast<std::size_t>(e),
                         static_cast<std::size_t>(e));
          network_sort_result(r, cmp);
        }
        ctx.charge_compute(pair_warp(vw),
                           static_cast<std::uint64_t>(odd_even_network_size(e)) *
                               cost::kCompareExchangeInstrs);
      }

      // Inter-stage rank scatter: rank r = iE + j of this pair lands at the
      // parent's pos_a/pos_b(r) (root: rho_out(r)) — data independent, so
      // each round is a stride-E progression through rho' and conflict free.
      ctx.phase("merge.store");
      // The cf_rank_scatter primitive at gather cadence: the per-thread
      // setup computes the parent's pos_a/pos_b bounds.  The piecewise
      // parent map is machine-checked CF by verify/multiway.cpp; the
      // cf_rank_scatter certificate stands in for the family.
      cfprims::exec_crs_scatter(
          ctx, shmem, w, e, vwarps, cfprims::kGatherCharge, cfg.certs.rank_scatter,
          pair_warp,
          [&](int vw, int lane, int j) {
            const std::int64_t r = static_cast<std::int64_t>(vw * w + lane) * e + j;
            return wb + plan.scatter_pos(level, static_cast<int>(p), r);
          },
          [&](int vw, int lane, int j) {
            return regs[static_cast<std::size_t>(
                static_cast<std::int64_t>(vw * w + lane) * e + j)];
          });
      vglobal += vwarps;
    }
    ctx.barrier();
  }

  // Coalesced store of the real ranks (sentinels sit at ranks >= tile).
  ctx.phase("merge.store");
  const std::int64_t ob = (plan.levels() % 2) * cap;
  store_tile(ctx, shmem, gout, tile,
             [&](std::int64_t t) { return ob + plan.out_pos(t); },
             [](std::int64_t t) { return t; });
}

/// LoserTree merge core: linear shared layout, per-thread k-way replacement
/// selection.  The head gathers and every replacement read are data
/// dependent across lanes — the merge phase is *not* conflict free (that is
/// the point of the variant; cfverify refutes it with a witness).
template <typename T, typename GIn, typename Cmp>
void multiway_losertree_core(gpusim::BlockContext& ctx, GIn& gin,
                             gpusim::GlobalView<T>& gout,
                             std::span<const std::int64_t> seg_src,
                             std::span<const std::int64_t> seg_len,
                             const MultiwayConfig& cfg, Cmp cmp) {
  const int w = ctx.lanes();
  const int u = ctx.threads();
  const int e = cfg.e;
  const int k = cfg.k;
  const std::int64_t tile = cfg.tile();
  gpusim::SharedTile<T> shmem(ctx, static_cast<std::size_t>(tile));

  // Linear layout: segment s occupies [seg_off[s], seg_off[s] + len_s).
  std::vector<std::int64_t> seg_off(static_cast<std::size_t>(k), 0);
  for (int s = 1; s < k; ++s)
    seg_off[static_cast<std::size_t>(s)] =
        seg_off[static_cast<std::size_t>(s - 1)] + seg_len[static_cast<std::size_t>(s - 1)];
  for (int s = 0; s < k; ++s)
    load_tile(ctx, gin, shmem, seg_len[static_cast<std::size_t>(s)],
              [&](std::int64_t t) { return seg_src[static_cast<std::size_t>(s)] + t; },
              [&](std::int64_t t) { return seg_off[static_cast<std::size_t>(s)] + t; });
  ctx.barrier();

  // Per-thread k-vector co-ranks at every thread's start diagonal.
  ctx.phase("merge.search");
  std::vector<std::int64_t> co(static_cast<std::size_t>(u * k), 0);
  {
    std::vector<std::int64_t> lane_lens(static_cast<std::size_t>(w * k));
    std::vector<std::int64_t> out_co(static_cast<std::size_t>(w * k));
    std::array<std::int64_t, gpusim::kMaxLanes> diag;
    std::array<std::int64_t, gpusim::kMaxLanes> pa;
    for (int lane = 0; lane < w; ++lane)
      for (int s = 0; s < k; ++s)
        lane_lens[static_cast<std::size_t>(lane * k + s)] =
            seg_len[static_cast<std::size_t>(s)];
    for (int warp = 0; warp < ctx.warps(); ++warp) {
      for (int lane = 0; lane < w; ++lane)
        diag[static_cast<std::size_t>(lane)] =
            static_cast<std::int64_t>(warp * w + lane) * e;
      auto probe = [&](int s, std::span<const std::int64_t> idx, std::span<T> pvals) {
        for (int lane = 0; lane < w; ++lane) {
          const auto l = static_cast<std::size_t>(lane);
          pa[l] = idx[l] == gpusim::kInactiveLane
                      ? gpusim::kInactiveLane
                      : seg_off[static_cast<std::size_t>(s)] + idx[l];
        }
        shmem.gather(warp,
                     std::span<const std::int64_t>(pa.data(), static_cast<std::size_t>(w)),
                     pvals, /*dependent=*/true, /*scattered=*/true);
      };
      detail::warp_multiway_corank<T>(
          ctx, warp, k, lane_lens,
          std::span<const std::int64_t>(diag.data(), static_cast<std::size_t>(w)), probe,
          cmp, std::span<std::int64_t>(out_co));
      for (int lane = 0; lane < w; ++lane)
        for (int s = 0; s < k; ++s)
          co[static_cast<std::size_t>((warp * w + lane) * k + s)] =
              out_co[static_cast<std::size_t>(lane * k + s)];
    }
  }

  // Replacement selection: k head gathers, then one data-dependent
  // replacement gather per emitted element.
  ctx.phase("merge.merge");
  std::vector<T> regs(static_cast<std::size_t>(tile));
  {
    const int sel =
        std::max(1, static_cast<int>(std::bit_width(static_cast<unsigned>(k))) - 1);
    std::vector<std::int64_t> ptr(static_cast<std::size_t>(w * k));
    std::vector<std::int64_t> end(static_cast<std::size_t>(w * k));
    std::vector<T> head(static_cast<std::size_t>(w * k), padding_sentinel<T>::value());
    std::array<std::int64_t, gpusim::kMaxLanes> addr;
    std::array<T, gpusim::kMaxLanes> vals{};
    for (int warp = 0; warp < ctx.warps(); ++warp) {
      ctx.charge_compute(warp, cost::kThreadSetupInstrs);
      for (int lane = 0; lane < w; ++lane) {
        const int i = warp * w + lane;
        for (int s = 0; s < k; ++s) {
          const auto ls = static_cast<std::size_t>(lane * k + s);
          ptr[ls] = co[static_cast<std::size_t>(i * k + s)];
          end[ls] = i + 1 < u ? co[static_cast<std::size_t>((i + 1) * k + s)]
                              : seg_len[static_cast<std::size_t>(s)];
          head[ls] = padding_sentinel<T>::value();
        }
      }
      // Initial fill: one warp-wide gather per sequence.
      for (int s = 0; s < k; ++s) {
        for (int lane = 0; lane < w; ++lane) {
          const auto ls = static_cast<std::size_t>(lane * k + s);
          addr[static_cast<std::size_t>(lane)] =
              ptr[ls] < end[ls] ? seg_off[static_cast<std::size_t>(s)] + ptr[ls]
                                : gpusim::kInactiveLane;
        }
        ctx.charge_compute(warp, cost::kGatherRoundInstrs);
        shmem.gather(warp,
                     std::span<const std::int64_t>(addr.data(),
                                                   static_cast<std::size_t>(w)),
                     std::span<T>(vals.data(), static_cast<std::size_t>(w)),
                     /*dependent=*/true, /*scattered=*/true);
        for (int lane = 0; lane < w; ++lane) {
          const auto ls = static_cast<std::size_t>(lane * k + s);
          if (ptr[ls] < end[ls]) head[ls] = vals[static_cast<std::size_t>(lane)];
        }
      }
      // E replacement rounds.
      for (int j = 0; j < e; ++j) {
        std::array<int, gpusim::kMaxLanes> smin;
        for (int lane = 0; lane < w; ++lane) {
          const auto l = static_cast<std::size_t>(lane);
          int best = -1;
          for (int s = 0; s < k; ++s) {
            const auto ls = static_cast<std::size_t>(lane * k + s);
            if (ptr[ls] >= end[ls]) continue;
            if (best < 0 ||
                cmp(head[ls], head[static_cast<std::size_t>(lane * k + best)]))
              best = s;
          }
          smin[l] = best;
          const int i = warp * w + lane;
          regs[static_cast<std::size_t>(i) * static_cast<std::size_t>(e) +
               static_cast<std::size_t>(j)] =
              best >= 0 ? head[static_cast<std::size_t>(lane * k + best)]
                        : padding_sentinel<T>::value();
          if (best >= 0) ++ptr[static_cast<std::size_t>(lane * k + best)];
        }
        ctx.charge_compute(warp, static_cast<std::uint64_t>(sel) * cost::kMergeStepInstrs);
        // Replacement read: each lane refills from *its own* winning
        // sequence — the data-dependent access this variant pays for.
        for (int lane = 0; lane < w; ++lane) {
          const auto l = static_cast<std::size_t>(lane);
          const int s = smin[l];
          addr[l] = gpusim::kInactiveLane;
          if (s >= 0) {
            const auto ls = static_cast<std::size_t>(lane * k + s);
            if (ptr[ls] < end[ls])
              addr[l] = seg_off[static_cast<std::size_t>(s)] + ptr[ls];
          }
        }
        ctx.charge_compute(warp, cost::kGatherRoundInstrs);
        shmem.gather(warp,
                     std::span<const std::int64_t>(addr.data(),
                                                   static_cast<std::size_t>(w)),
                     std::span<T>(vals.data(), static_cast<std::size_t>(w)),
                     /*dependent=*/true, /*scattered=*/true);
        for (int lane = 0; lane < w; ++lane) {
          const auto l = static_cast<std::size_t>(lane);
          if (addr[l] != gpusim::kInactiveLane)
            head[static_cast<std::size_t>(lane * k + smin[l])] = vals[l];
        }
      }
    }
  }
  ctx.barrier();

  // Stride-E write-back (linear, like the 2-way baseline), coalesced store.
  ctx.phase("merge.store");
  {
    std::array<std::int64_t, gpusim::kMaxLanes> addr;
    std::array<T, gpusim::kMaxLanes> vals{};
    for (int warp = 0; warp < ctx.warps(); ++warp) {
      for (int j = 0; j < e; ++j) {
        for (int lane = 0; lane < w; ++lane) {
          const int i = warp * w + lane;
          addr[static_cast<std::size_t>(lane)] = static_cast<std::int64_t>(i) * e + j;
          vals[static_cast<std::size_t>(lane)] =
              regs[static_cast<std::size_t>(i) * static_cast<std::size_t>(e) +
                   static_cast<std::size_t>(j)];
        }
        ctx.charge_compute(warp, cost::kCopyChunkInstrs);
        shmem.scatter(warp,
                      std::span<const std::int64_t>(addr.data(),
                                                    static_cast<std::size_t>(w)),
                      std::span<const T>(vals.data(), static_cast<std::size_t>(w)));
      }
    }
  }
  ctx.barrier();
  store_tile(ctx, shmem, gout, tile, [](std::int64_t t) { return t; },
             [](std::int64_t t) { return t; });
}

/// Stage 2: k-way merge kernel body for one output tile.
template <typename T, typename Cmp = std::less<T>>
void multiway_tile_body(gpusim::BlockContext& ctx, std::span<const T> input,
                        std::span<T> output, const PassGeometryK& geom,
                        const MultiwayConfig& cfg,
                        std::span<const std::int64_t> boundaries, Cmp cmp = Cmp{}) {
  const int w = ctx.lanes();
  const int k = cfg.k;
  const std::int64_t tile = cfg.tile();
  const std::int64_t out0 = static_cast<std::int64_t>(ctx.block_id()) * tile;
  const std::int64_t base = geom.group_base(out0);

  // Both boundary rows of this tile (2k co-ranks; a cheap global read).
  ctx.phase("merge.load");
  {
    gpusim::GlobalView<const std::int64_t> bview(ctx, boundaries, 0);
    std::array<std::int64_t, gpusim::kMaxLanes> addr;
    std::array<std::int64_t, gpusim::kMaxLanes> vals;
    for (std::int64_t c = 0; c < 2 * k; c += w) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t i = c + lane;
        addr[static_cast<std::size_t>(lane)] =
            i < 2 * k ? static_cast<std::int64_t>(ctx.block_id()) * k + i
                      : gpusim::kInactiveLane;
      }
      bview.gather(0,
                   std::span<const std::int64_t>(addr.data(), static_cast<std::size_t>(w)),
                   std::span<std::int64_t>(vals.data(), static_cast<std::size_t>(w)));
    }
  }
  const std::int64_t diag1 = out0 + tile - base;
  const std::int64_t group_total = geom.group_len(base);
  std::vector<std::int64_t> seg_src(static_cast<std::size_t>(k));
  std::vector<std::int64_t> seg_win(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    const std::int64_t len = geom.seg_len(base, s);
    const std::int64_t r0 =
        boundaries[static_cast<std::size_t>(static_cast<std::int64_t>(ctx.block_id()) * k + s)];
    // A boundary coinciding with the *end* of this group was computed
    // relative to the next group (as diagonal 0); its co-ranks here are the
    // full segment lengths.
    const std::int64_t r1 =
        diag1 >= group_total
            ? len
            : boundaries[static_cast<std::size_t>(
                  (static_cast<std::int64_t>(ctx.block_id()) + 1) * k + s)];
    seg_src[static_cast<std::size_t>(s)] = base + static_cast<std::int64_t>(s) * geom.run + r0;
    seg_win[static_cast<std::size_t>(s)] = r1 - r0;
  }

  gpusim::GlobalView<const T> gin(ctx, input, 0);
  gpusim::GlobalView<T> gout(ctx, output.subspan(static_cast<std::size_t>(out0),
                                                 static_cast<std::size_t>(tile)),
                             out0);
  if (cfg.variant == MultiwayVariant::CFCascade)
    multiway_cascade_core<T>(ctx, gin, gout, seg_src, seg_win, cfg, cmp);
  else
    multiway_losertree_core<T>(ctx, gin, gout, seg_src, seg_win, cfg, cmp);
}

}  // namespace cfmerge::sort
