// The certificate bundle a sort pipeline carries: one proof token per
// access family its kernels execute, resolved once per (w, E) at plan
// build time (verify/certificate.hpp memoizes process-wide) and cached on
// the plan through MergeConfig / MultiwayConfig.
//
// A null member simply forces that family onto the lane-accurate path —
// uncertifiable families (non-coprime cf_stride, broken ablations) stay
// null by construction.
#pragma once

namespace cfmerge::verify {
struct CfCertificate;
}

namespace cfmerge::sort {

struct TileCerts {
  /// cf_gather: the dual-subsequence CRS gather through rho(pi(.)).
  const verify::CfCertificate* gather = nullptr;
  /// cf_rank_scatter: the stride-E rank scatter through rho.
  const verify::CfCertificate* rank_scatter = nullptr;
  /// cf_stride: the raw stride-E CRS (only certified for gcd(w,E) = 1).
  const verify::CfCertificate* stride = nullptr;
  /// cf_stage: unit-stride staging runs at any base offset.
  const verify::CfCertificate* stage = nullptr;

  [[nodiscard]] bool any() const {
    return gather != nullptr || rank_scatter != nullptr || stride != nullptr ||
           stage != nullptr;
  }
};

/// Resolves the bundle for warp width `w` and elements-per-thread `e`.
[[nodiscard]] TileCerts resolve_tile_certs(int w, int e);

}  // namespace cfmerge::sort
