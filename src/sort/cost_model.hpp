// Instruction cost constants shared by all simulated kernels.
//
// Charged per warp (one warp instruction = all lanes performing one
// operation).  The same constants are used by the baseline and CF-Merge
// kernels so that relative comparisons are fair; their absolute values are
// rough Turing estimates and only affect the compute roofline term.
#pragma once

namespace cfmerge::sort::cost {

/// One step of the per-thread sequential merge: compare, select/emit,
/// advance pointer.
inline constexpr int kMergeStepInstrs = 3;
/// Index arithmetic of one gather round (the mod-E bookkeeping of
/// Algorithm 1; k is precomputed once per thread).
inline constexpr int kGatherRoundInstrs = 4;
/// One compare-exchange of the odd-even transposition network
/// (min, max, two register moves fused).
inline constexpr int kCompareExchangeInstrs = 3;
/// One iteration of the lockstep merge-path binary search
/// (mid computation, compare, bound update) — excludes the two probes.
inline constexpr int kSearchIterInstrs = 4;
/// Address computation per staged load/store chunk.
inline constexpr int kCopyChunkInstrs = 2;
/// Per-thread setup of a merge step (computing k, offsets, bounds).
inline constexpr int kThreadSetupInstrs = 8;

/// Register usage estimates per thread, feeding the occupancy model.
/// Both variants hold the E items plus bookkeeping; CF-Merge needs a few
/// extra registers for the permutation indices.
inline constexpr int baseline_regs_per_thread(int e) { return e + 10; }
inline constexpr int cfmerge_regs_per_thread(int e) { return e + 14; }
/// The k-way merge kernel additionally tracks per-sequence pointers and
/// cached heads (LoserTree) or the cascade's pair bookkeeping (CFCascade).
inline constexpr int multiway_regs_per_thread(int e, int k) { return e + 14 + 2 * k; }

}  // namespace cfmerge::sort::cost
