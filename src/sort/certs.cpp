#include "sort/certs.hpp"

#include "verify/certificate.hpp"

namespace cfmerge::sort {

TileCerts resolve_tile_certs(int w, int e) {
  TileCerts c;
  c.gather = verify::certify("cf_gather", w, e);
  c.rank_scatter = verify::certify("cf_rank_scatter", w, e);
  c.stride = verify::certify("cf_stride", w, e);
  c.stage = verify::certify("cf_stage", w, e);
  return c;
}

}  // namespace cfmerge::sort
