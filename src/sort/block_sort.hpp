// Block sort: sorts one tile of u*E elements per thread block.
//
// Mirrors Thrust's blocksort stage: load the tile coalesced into shared
// memory, sort E elements per thread in registers (odd-even transposition),
// then log2(u) rounds of intra-block pair merging via merge path + the
// per-thread sequential shared-memory merge.  The stage is *identical* for
// the baseline and CF-Merge (the paper's modification is confined to the
// pairwise-merge kernels, and for its software parameters E is coprime with
// w, so the stride-E register loads/stores here are conflict-free by the
// classic heuristic).
//
// Extension (not in the paper): `cf_rounds = true` applies the dual
// subsequence gather inside the later block-sort rounds too — those whose
// run pairs span at least a full warp.  Each such round stages the tile
// into a second shared buffer in the CF layout (conflict-free copy), then
// gathers.  The staging buffer doubles the block's shared memory, halving
// occupancy — bench/ablation_parameters quantifies the trade; this is the
// overhead-versus-conflicts tension the paper's Section 2 discusses.
#pragma once

#include <array>
#include <bit>
#include <functional>
#include <stdexcept>
#include <vector>

#include "cfprims/exec.hpp"
#include "gpusim/launcher.hpp"
#include "gpusim/memory_views.hpp"
#include "sort/certs.hpp"
#include "sort/kernels.hpp"
#include "sort/odd_even.hpp"
#include <memory>

#include "gather/dual_gather.hpp"
#include "gather/schedule.hpp"
#include "sort/serial_merge.hpp"

namespace cfmerge::sort {

/// Device body of the block sort for one block.  `data` is the full global
/// array (a multiple of u*E elements); block b sorts elements
/// [b*u*E, (b+1)*u*E).
template <typename T, typename Cmp = std::less<T>>
void block_sort_body(gpusim::BlockContext& ctx, std::span<T> data, int e,
                     bool cf_rounds = false, Cmp cmp = Cmp{},
                     const TileCerts& certs = {}) {
  const int u = ctx.threads();
  const int w = ctx.lanes();
  if (!std::has_single_bit(static_cast<unsigned>(u)))
    throw std::invalid_argument("block_sort: u must be a power of two");
  const std::int64_t tile = static_cast<std::int64_t>(u) * e;
  const std::int64_t base = static_cast<std::int64_t>(ctx.block_id()) * tile;

  gpusim::GlobalView<T> global(ctx, data.subspan(static_cast<std::size_t>(base),
                                                 static_cast<std::size_t>(tile)),
                               base);
  gpusim::SharedTile<T> shmem(ctx, static_cast<std::size_t>(tile));
  // Staging buffer for the CF rounds (allocated only when used; costs
  // occupancy through the shared-memory budget).
  std::unique_ptr<gpusim::SharedTile<T>> staging;
  if (cf_rounds) staging = std::make_unique<gpusim::SharedTile<T>>(
      ctx, static_cast<std::size_t>(tile));
  std::vector<T> regs(static_cast<std::size_t>(tile));

  // --- load tile (coalesced reads, linear shared writes) ----------------
  ctx.phase("bsort.load");
  load_tile_affine(ctx, global, shmem, tile, 0, AffineMap{0, 1}, certs.stage);
  ctx.barrier();

  // --- per-thread register sort -----------------------------------------
  // Thread i reads shared[i*E + j] in round j: a stride-E access, the
  // pattern the coprime-E heuristic keeps conflict-free.
  ctx.phase("bsort.thread_sort");
  assert(w <= gpusim::kMaxLanes);
  cfprims::exec_stride_gather(ctx, shmem, w, e, ctx.warps(), cfprims::kCopyCharge,
                              certs.stride, std::span<T>(regs));
  // Sort the E registers of each lane with the odd-even network.
  for (int warp = 0; warp < ctx.warps(); ++warp) {
    for (int lane = 0; lane < w; ++lane) {
      std::span<T> r(regs.data() + static_cast<std::size_t>(warp * w + lane) *
                                       static_cast<std::size_t>(e),
                     static_cast<std::size_t>(e));
      network_sort_result(r, cmp);
    }
    ctx.charge_compute(warp, static_cast<std::uint64_t>(odd_even_network_size(e)) *
                                 cost::kCompareExchangeInstrs);
  }
  // Write the sorted runs back (same stride-E pattern).
  cfprims::exec_stride_scatter(ctx, shmem, w, e, ctx.warps(), cfprims::kCopyCharge,
                               certs.stride, std::span<const T>(regs));
  ctx.barrier();

  // --- log2(u) intra-block merge rounds ----------------------------------
  for (std::int64_t run = e; run < tile; run *= 2) {
    ctx.phase("bsort.search");
    const FastDiv div_pair(2 * run);
    std::vector<ThreadSplit> splits(static_cast<std::size_t>(u));
    std::array<LanePair, gpusim::kMaxLanes> pairs;
    std::array<LanePair, gpusim::kMaxLanes> end_pairs;
    std::array<std::int64_t, gpusim::kMaxLanes> pbase;
    std::array<std::int64_t, gpusim::kMaxLanes> start;
    std::array<std::int64_t, gpusim::kMaxLanes> end;
    const auto pos_a = [&pbase](int lane, std::int64_t x) {
      return pbase[static_cast<std::size_t>(lane)] + x;
    };
    const auto pos_b = [&pbase, run](int lane, std::int64_t y) {
      return pbase[static_cast<std::size_t>(lane)] + run + y;
    };
    for (int warp = 0; warp < ctx.warps(); ++warp) {
      for (int lane = 0; lane < w; ++lane) {
        const int i = warp * w + lane;
        const std::int64_t out0 = static_cast<std::int64_t>(i) * e;
        const std::int64_t pair_base = div_pair(out0) * (2 * run);
        pbase[static_cast<std::size_t>(lane)] = pair_base;
        pairs[static_cast<std::size_t>(lane)] = {run, run, out0 - pair_base};
        end_pairs[static_cast<std::size_t>(lane)] = {run, run, out0 - pair_base + e};
      }
      // Two lockstep searches per warp: the start and end diagonals of every
      // lane (the end co-rank equals the next thread's start, but a lane
      // cannot read a different warp's result without extra traffic).
      warp_shared_corank(ctx, warp, shmem,
                         std::span<const LanePair>(pairs.data(), static_cast<std::size_t>(w)),
                         pos_a, pos_b, cmp,
                         std::span<std::int64_t>(start.data(), static_cast<std::size_t>(w)));
      warp_shared_corank(
          ctx, warp, shmem,
          std::span<const LanePair>(end_pairs.data(), static_cast<std::size_t>(w)), pos_a,
          pos_b, cmp, std::span<std::int64_t>(end.data(), static_cast<std::size_t>(w)));
      for (int lane = 0; lane < w; ++lane) {
        const int i = warp * w + lane;
        const std::int64_t out0 = static_cast<std::int64_t>(i) * e;
        const std::int64_t local = out0 - div_pair(out0) * (2 * run);
        auto& s = splits[static_cast<std::size_t>(i)];
        s.a_off = start[static_cast<std::size_t>(lane)];
        s.a_size = end[static_cast<std::size_t>(lane)] - s.a_off;
        s.b_off = local - s.a_off;
        s.b_size = e - s.a_size;
      }
    }

    ctx.phase("bsort.merge");
    const std::int64_t threads_per_pair = 2 * run / e;
    if (cf_rounds && threads_per_pair >= w && threads_per_pair % w == 0) {
      // CF round: stage every pair into the CF layout, then gather.
      gather::BReversal pair_pi(run, run);
      gather::CircularShift pair_rho(w, e, 2 * run);
      ctx.phase("bsort.cf_permute");
      // Copy linear -> CF layout; reads are contiguous (conflict free),
      // writes are contiguous runs through pi/rho (also conflict free).
      cfprims::exec_shared_copy(
          ctx, shmem, *staging, tile, [](std::int64_t pos) { return pos; },
          [&](std::int64_t pos) {
            const std::int64_t pair_base = div_pair(pos) * (2 * run);
            const std::int64_t local = pos - pair_base;
            const std::int64_t raw = local < run ? pair_pi.raw_of_a(local)
                                                 : pair_pi.raw_of_b(local - run);
            return pair_base + pair_rho(raw);
          });
      ctx.barrier();
      ctx.phase("bsort.merge");
      // One RoundSchedule per pair; gather every warp of the pair.
      const std::int64_t pairs_count = tile / (2 * run);
      for (std::int64_t pr = 0; pr < pairs_count; ++pr) {
        const std::int64_t pair_base = pr * 2 * run;
        const int u_pair = static_cast<int>(threads_per_pair);
        std::vector<std::int64_t> a_off(static_cast<std::size_t>(u_pair));
        std::vector<std::int64_t> a_size(static_cast<std::size_t>(u_pair));
        const int first_thread = static_cast<int>(pair_base / e);
        for (int t = 0; t < u_pair; ++t) {
          const auto& sp = splits[static_cast<std::size_t>(first_thread + t)];
          a_off[static_cast<std::size_t>(t)] = sp.a_off;
          a_size[static_cast<std::size_t>(t)] = sp.a_size;
        }
        gather::GatherShape shape{w, e, u_pair, run, run};
        gather::RoundSchedule sched(shape, std::move(a_off), std::move(a_size));
        // The pair base is a multiple of w (2*run = u_pair*E, w | u_pair),
        // so per-pair bank residues match the whole-tile cf_gather proof.
        gather::dual_subsequence_gather(ctx, *staging, sched, std::span<T>(regs),
                                        certs.gather, first_thread, pair_base);
      }
      // Data-oblivious register merge per thread.
      for (int warp = 0; warp < ctx.warps(); ++warp) {
        for (int lane = 0; lane < w; ++lane) {
          std::span<T> r(regs.data() + static_cast<std::size_t>(warp * w + lane) *
                                           static_cast<std::size_t>(e),
                         static_cast<std::size_t>(e));
          network_sort_result(r, cmp);
        }
        ctx.charge_compute(warp, static_cast<std::uint64_t>(odd_even_network_size(e)) *
                                     cost::kCompareExchangeInstrs);
      }
    } else {
      std::vector<MergeLaneDesc> descs(static_cast<std::size_t>(u));
      for (int i = 0; i < u; ++i) {
        const std::int64_t out0 = static_cast<std::int64_t>(i) * e;
        const std::int64_t pair_base = div_pair(out0) * (2 * run);
        const auto& s = splits[static_cast<std::size_t>(i)];
        // Bake the pair bases into the offsets so the position translators
        // are the identity (linear layout).
        descs[static_cast<std::size_t>(i)] = {pair_base + s.a_off, s.a_size,
                                              pair_base + run + s.b_off, s.b_size};
      }
      warp_serial_merge(ctx, shmem, std::span<const MergeLaneDesc>(descs), e,
                        [](std::int64_t x) { return x; }, [](std::int64_t y) { return y; },
                        std::span<T>(regs), cmp);
    }
    ctx.barrier();

    // Write merged outputs back, stride-E.
    cfprims::exec_stride_scatter(ctx, shmem, w, e, ctx.warps(), cfprims::kCopyCharge,
                                 certs.stride, std::span<const T>(regs));
    ctx.barrier();
  }

  // --- store tile --------------------------------------------------------
  ctx.phase("bsort.store");
  store_tile_affine(ctx, shmem, global, tile, AffineMap{0, 1}, 0, certs.stage);
}

}  // namespace cfmerge::sort
