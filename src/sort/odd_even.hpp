// Odd-even transposition sort (Habermann 1972) — the data-oblivious
// in-register sort used by CF-Merge.
//
// On a real GPU, dynamically indexed per-thread arrays are compiled into
// local memory; a sorting *network* with static indices keeps the items in
// registers.  Odd-even transposition sorts any n-element sequence in n
// phases; CF-Merge runs it on the E gathered items (a rotated arrangement
// of sorted A_i ascending and sorted B_i descending), which the network
// sorts regardless of the rotation.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <utility>

namespace cfmerge::sort {

/// Sorts `items` in place with n phases of compare-exchanges.
/// Returns the number of compare-exchange operations performed (for
/// instruction charging): n * floor(n/2) ... exactly the network size.
template <typename T, typename Cmp = std::less<T>>
std::int64_t odd_even_transposition_sort(std::span<T> items, Cmp cmp = Cmp{}) {
  const auto n = static_cast<std::int64_t>(items.size());
  std::int64_t ces = 0;
  for (std::int64_t phase = 0; phase < n; ++phase) {
    for (std::int64_t i = phase % 2; i + 1 < n; i += 2) {
      auto& x = items[static_cast<std::size_t>(i)];
      auto& y = items[static_cast<std::size_t>(i + 1)];
      // Branch-free exchange: the comparison outcome is data dependent and
      // ~50/50 on random inputs, so a select beats a mispredicted swap (it
      // also mirrors the predicated min/max a real network compiles to).
      const T a = x;
      const T b = y;
      const bool out_of_order = cmp(b, a);
      x = out_of_order ? b : a;
      y = out_of_order ? a : b;
      ++ces;
    }
  }
  return ces;
}

/// Produces exactly the output of odd_even_transposition_sort without
/// executing the O(n^2) network.  The network swaps only strictly
/// out-of-order adjacent pairs, so it is a *stable* sort — and insertion
/// sort is stable too, so the two results are element-for-element identical
/// for any comparator and any input (pinned by tests/test_odd_even.cpp).
/// Simulated kernels call this for the host-side data movement and charge
/// the network in closed form via odd_even_network_size.
template <typename T, typename Cmp = std::less<T>>
void network_sort_result(std::span<T> items, Cmp cmp = Cmp{}) {
  const std::size_t n = items.size();
  for (std::size_t i = 1; i < n; ++i) {
    T v = std::move(items[i]);
    std::size_t j = i;
    for (; j > 0 && cmp(v, items[j - 1]); --j) items[j] = std::move(items[j - 1]);
    items[j] = std::move(v);
  }
}

/// Number of compare-exchanges the network performs for n items, without
/// running it (phases alternate floor(n/2) and floor((n-1+1)/2) pairs).
[[nodiscard]] std::int64_t odd_even_network_size(std::int64_t n);

/// Number of compare-exchanges on the *critical path* (the dependency chain
/// seen by one thread executing the network sequentially is the full network
/// size; the chain per phase is what a superscalar core could overlap —
/// we charge the sequential count, matching single-thread GPU execution).
[[nodiscard]] std::int64_t odd_even_sequential_ces(std::int64_t n);

}  // namespace cfmerge::sort
