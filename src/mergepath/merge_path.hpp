// Merge path (co-rank) partitioning — Green et al.'s GPU Merge Path, the
// partitioning scheme used by Thrust's pairwise mergesort.
//
// For sorted sequences A (size na) and B (size nb) and an output diagonal
// `diag` in [0, na+nb], `merge_path(diag, ...)` returns the unique `a` such
// that the first `diag` elements of the (stable, A-before-B on ties) merge
// consist of exactly the first `a` of A and the first `diag - a` of B:
//
//    a = min { x in [lo, hi] :  A[x] > B[diag - 1 - x] fails ... }
//
// concretely the smallest a with  B[diag-1-a] >= A[a] boundary conditions —
// equivalently the binary search from CLRS Exercise 9.3-10 referenced by the
// paper.
//
// Two variants are provided:
//  * a host-side search over accessors (used to build partitions and by the
//    reference implementations), and
//  * a warp-synchronous lockstep search that issues simulated shared or
//    global accesses (used inside kernels); all lanes of a warp advance
//    together and idle lanes are masked, mirroring SIMT execution.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace cfmerge::mergepath {

/// Host-side co-rank search over arbitrary accessors.
/// `geta(i)`/`getb(i)` return the i-th element; `cmp` is strict less-than.
/// Ties are broken stably: equal elements of A precede elements of B.
template <typename GetA, typename GetB, typename Cmp>
[[nodiscard]] std::int64_t merge_path(std::int64_t diag, std::int64_t na, std::int64_t nb,
                                      GetA&& geta, GetB&& getb, Cmp&& cmp) {
  assert(diag >= 0 && diag <= na + nb);
  std::int64_t lo = std::max<std::int64_t>(0, diag - nb);
  std::int64_t hi = std::min(diag, na);
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    // Take A[mid] into the prefix unless B[diag-1-mid] < A[mid].
    if (cmp(getb(diag - 1 - mid), geta(mid)))
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

/// Convenience overload over spans with operator<.
template <typename T>
[[nodiscard]] std::int64_t merge_path(std::int64_t diag, std::span<const T> a,
                                      std::span<const T> b) {
  return merge_path(
      diag, static_cast<std::int64_t>(a.size()), static_cast<std::int64_t>(b.size()),
      [&](std::int64_t i) { return a[static_cast<std::size_t>(i)]; },
      [&](std::int64_t i) { return b[static_cast<std::size_t>(i)]; }, std::less<T>{});
}

/// Splits the merge of A and B into `parts` contiguous output chunks of size
/// `chunk` (the last may be short).  Returns parts+1 co-ranks a_0..a_parts
/// with a_0 = 0 and a_parts = na; chunk p consumes A[a_p, a_{p+1}) and
/// B[diag_p - a_p, diag_{p+1} - a_{p+1}).
template <typename T>
[[nodiscard]] std::vector<std::int64_t> partition(std::span<const T> a, std::span<const T> b,
                                                  std::int64_t chunk) {
  assert(chunk > 0);
  const auto na = static_cast<std::int64_t>(a.size());
  const auto nb = static_cast<std::int64_t>(b.size());
  const std::int64_t total = na + nb;
  const std::int64_t parts = (total + chunk - 1) / chunk;
  std::vector<std::int64_t> co(static_cast<std::size_t>(parts) + 1);
  for (std::int64_t p = 0; p <= parts; ++p)
    co[static_cast<std::size_t>(p)] = merge_path(std::min(p * chunk, total), a, b);
  return co;
}

/// One lane's state in the lockstep warp search.
struct LaneSearch {
  std::int64_t diag = 0;  ///< output diagonal this lane resolves
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  bool active = false;

  void init(std::int64_t d, std::int64_t na, std::int64_t nb) {
    diag = d;
    lo = std::max<std::int64_t>(0, d - nb);
    hi = std::min(d, na);
    active = true;
  }
  [[nodiscard]] bool done() const { return !active || lo >= hi; }
};

/// Warp-synchronous lockstep co-rank search: all lanes run their binary
/// search in lockstep; each iteration issues two simulated accesses (one
/// probing A, one probing B) through `probe`, which receives lane-indexed
/// address arrays (kInactiveLane = idle) and must return the probed values
/// in the provided output spans.
///
/// `probe(a_addrs, a_vals, b_addrs, b_vals)` — addresses are *logical*
/// indices into A and B; the caller translates to physical layout and
/// charges the accesses.
template <typename T, typename Probe, typename Cmp>
void warp_corank_search(std::span<LaneSearch> lanes, Probe&& probe, Cmp&& cmp) {
  // Warps never exceed 64 lanes on any device this simulates; fixed stack
  // buffers keep the per-warp search allocation-free.
  constexpr std::size_t kMaxSearchLanes = 64;
  const std::size_t w = lanes.size();
  assert(w <= kMaxSearchLanes);
  std::array<std::int64_t, kMaxSearchLanes> a_addr_buf;
  std::array<std::int64_t, kMaxSearchLanes> b_addr_buf;
  std::array<std::int64_t, kMaxSearchLanes> mid_buf;
  std::array<T, kMaxSearchLanes> a_val_buf;
  std::array<T, kMaxSearchLanes> b_val_buf;
  const std::span<std::int64_t> a_addr(a_addr_buf.data(), w);
  const std::span<std::int64_t> b_addr(b_addr_buf.data(), w);
  const std::span<T> a_val(a_val_buf.data(), w);
  const std::span<T> b_val(b_val_buf.data(), w);
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t l = 0; l < w; ++l) {
      if (lanes[l].done()) {
        a_addr[l] = -1;
        b_addr[l] = -1;
        continue;
      }
      any = true;
      const std::int64_t mid = lanes[l].lo + (lanes[l].hi - lanes[l].lo) / 2;
      mid_buf[l] = mid;
      a_addr[l] = mid;
      b_addr[l] = lanes[l].diag - 1 - mid;
    }
    if (!any) break;
    probe(std::span<const std::int64_t>(a_addr), std::span<T>(a_val),
          std::span<const std::int64_t>(b_addr), std::span<T>(b_val));
    for (std::size_t l = 0; l < w; ++l) {
      if (a_addr[l] < 0) continue;  // was done before the probe
      const std::int64_t mid = mid_buf[l];
      if (cmp(b_val[l], a_val[l]))
        lanes[l].hi = mid;
      else
        lanes[l].lo = mid + 1;
    }
  }
}

/// Result of a serial (host) merge-path check; used in tests.
struct CoRankBounds {
  std::int64_t lo;
  std::int64_t hi;
};

/// Valid co-rank interval for a diagonal (before searching).
[[nodiscard]] CoRankBounds corank_bounds(std::int64_t diag, std::int64_t na, std::int64_t nb);

}  // namespace cfmerge::mergepath
