#include "mergepath/merge_path.hpp"

namespace cfmerge::mergepath {

CoRankBounds corank_bounds(std::int64_t diag, std::int64_t na, std::int64_t nb) {
  return {std::max<std::int64_t>(0, diag - nb), std::min(diag, na)};
}

}  // namespace cfmerge::mergepath
