// k-dimensional merge path — multisequence selection generalizing the
// pairwise co-rank search of merge_path.hpp to k sorted sequences.
//
// For sorted sequences S_0..S_{k-1} and an output diagonal `diag` in
// [0, Σ|S_s|], multiway_path returns the unique co-rank vector (r_0..r_{k-1})
// with Σ r_s = diag such that the first diag elements of the stable k-way
// merge are exactly the first r_s elements of every S_s.  Stability follows
// the (value, sequence, index) total order: equal values resolve by sequence
// id (lower id first), then by position — for k = 2 this is precisely the
// A-before-B tie-breaking of merge_path, so the co-ranks coincide.
//
// Algorithm: for each sequence s, the merged position of element (s, m) is
//
//   pos(s, m) = m + Σ_{s' < s} ub_{s'}(v)  +  Σ_{s' > s} lb_{s'}(v),
//
// with v = S_s[m], ub = upper_bound count (equal elements of lower-id
// sequences precede), lb = lower_bound count (only strictly smaller elements
// of higher-id sequences precede).  pos(s, ·) is strictly increasing, so
// r_s = first m with pos(s, m) >= diag is a binary search with k-1 inner
// bound searches per probe — O(k^2 log^2 n) total, the classical
// multisequence-selection cost.
//
// The simulated warp-lockstep version (charged global/shared probes) lives
// in sort/multiway_pass.hpp; this header is the host-side reference used by
// plan construction, tests, and the verifier.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace cfmerge::mergepath {

namespace detail {

/// First index x in [0, n) with !(get(x) < v) (lower bound) or with
/// v < get(x) (upper bound), as a count of preceding elements.
template <typename T, typename Get, typename Cmp>
[[nodiscard]] std::int64_t bound_count(std::int64_t n, const T& v, bool upper, Get&& get,
                                       Cmp&& cmp) {
  std::int64_t lo = 0, hi = n;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    const bool take = upper ? !cmp(v, get(mid)) : cmp(get(mid), v);
    if (take)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace detail

/// Merged position of element (s, m) under the stable (value, seq, index)
/// order.  `get(s', i)` returns element i of sequence s'.
template <typename T, typename Get, typename Cmp>
[[nodiscard]] std::int64_t multiway_rank(std::span<const std::int64_t> sizes, int s,
                                         std::int64_t m, Get&& get, Cmp&& cmp) {
  const int k = static_cast<int>(sizes.size());
  const T v = get(s, m);
  std::int64_t pos = m;
  for (int t = 0; t < k; ++t) {
    if (t == s) continue;
    pos += detail::bound_count<T>(
        sizes[static_cast<std::size_t>(t)], v, /*upper=*/t < s,
        [&](std::int64_t i) { return get(t, i); }, cmp);
  }
  return pos;
}

/// Co-rank vector of `diag` across k sequences (see file comment).
template <typename T, typename Get, typename Cmp>
[[nodiscard]] std::vector<std::int64_t> multiway_path(std::int64_t diag,
                                                      std::span<const std::int64_t> sizes,
                                                      Get&& get, Cmp&& cmp) {
  const int k = static_cast<int>(sizes.size());
  std::int64_t total = 0;
  for (const std::int64_t n : sizes) total += n;
  assert(diag >= 0 && diag <= total);
  std::vector<std::int64_t> co(static_cast<std::size_t>(k), 0);
  for (int s = 0; s < k; ++s) {
    const std::int64_t ns = sizes[static_cast<std::size_t>(s)];
    // r_s = first m with pos(s, m) >= diag; pos(s, ·) strictly increases.
    std::int64_t lo = std::max<std::int64_t>(0, diag - (total - ns));
    std::int64_t hi = std::min(diag, ns);
    while (lo < hi) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      if (multiway_rank<T>(sizes, s, mid, get, cmp) < diag)
        lo = mid + 1;
      else
        hi = mid;
    }
    co[static_cast<std::size_t>(s)] = lo;
  }
  return co;
}

/// Convenience overload over a list of spans with operator<.
template <typename T>
[[nodiscard]] std::vector<std::int64_t> multiway_path(
    std::int64_t diag, std::span<const std::span<const T>> seqs) {
  std::vector<std::int64_t> sizes(seqs.size());
  for (std::size_t s = 0; s < seqs.size(); ++s)
    sizes[s] = static_cast<std::int64_t>(seqs[s].size());
  return multiway_path<T>(
      diag, std::span<const std::int64_t>(sizes),
      [&](int s, std::int64_t i) { return seqs[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)]; },
      std::less<T>{});
}

/// Splits the k-way merge into `parts` chunks of `chunk` output elements
/// (the last may be short).  Returns a flat (parts+1) x k co-rank table,
/// co[p*k + s]; row 0 is all zeros and row `parts` is the size vector.
template <typename T>
[[nodiscard]] std::vector<std::int64_t> multiway_partition(
    std::span<const std::span<const T>> seqs, std::int64_t chunk) {
  assert(chunk > 0);
  const auto k = static_cast<std::int64_t>(seqs.size());
  std::int64_t total = 0;
  for (const auto& s : seqs) total += static_cast<std::int64_t>(s.size());
  const std::int64_t parts = (total + chunk - 1) / chunk;
  std::vector<std::int64_t> co(static_cast<std::size_t>((parts + 1) * k));
  for (std::int64_t p = 0; p <= parts; ++p) {
    const std::vector<std::int64_t> r = multiway_path<T>(std::min(p * chunk, total), seqs);
    std::copy(r.begin(), r.end(), co.begin() + static_cast<std::ptrdiff_t>(p * k));
  }
  return co;
}

}  // namespace cfmerge::mergepath
