// Content hashing shared by every digest in the library.
//
// One algorithm — 64-bit FNV-1a — feeds every stable identity we compute:
// PlanKey shape/config digests (sort/plan_key.hpp), DeviceSpec::digest()
// (gpusim/device_spec.hpp), and the persistent plan-cache store keys
// (cache/store.hpp).  The helpers here are the single definition; the
// engine's former private copies re-point onto them.
//
// Everything is constexpr and byte-order independent: multi-byte values are
// always folded least-significant-byte first, so a digest computed on one
// process/host equals the digest computed on any other.  That property is
// what lets digests serve as *cross-process* cache keys.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace cfmerge::numtheory {

/// FNV-1a 64-bit offset basis.
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
/// FNV-1a 64-bit prime.
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Folds one byte into the running hash.
[[nodiscard]] constexpr std::uint64_t fnv1a_byte(std::uint64_t h,
                                                 std::uint8_t b) noexcept {
  h ^= b;
  h *= kFnvPrime;
  return h;
}

/// Folds a 64-bit value, least-significant byte first (endian-independent).
[[nodiscard]] constexpr std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) h = fnv1a_byte(h, static_cast<std::uint8_t>(v >> (8 * i)));
  return h;
}

/// Folds a signed 64-bit value via its two's-complement bit pattern.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::uint64_t h, std::int64_t v) noexcept {
  return fnv1a(h, static_cast<std::uint64_t>(v));
}

/// Folds a double via its IEEE-754 bit pattern (bit-identical inputs only —
/// note -0.0 and 0.0 hash differently, as do distinct NaN payloads).
[[nodiscard]] constexpr std::uint64_t fnv1a(std::uint64_t h, double v) noexcept {
  return fnv1a(h, std::bit_cast<std::uint64_t>(v));
}

/// Folds a raw byte range.
[[nodiscard]] inline std::uint64_t fnv1a_bytes(std::uint64_t h,
                                               std::span<const std::byte> bytes) noexcept {
  for (const std::byte b : bytes) h = fnv1a_byte(h, static_cast<std::uint8_t>(b));
  return h;
}

/// Folds a string's characters (no terminator, no length prefix — callers
/// composing several strings should fold a separator or the length).
[[nodiscard]] constexpr std::uint64_t fnv1a_str(std::uint64_t h,
                                                std::string_view s) noexcept {
  for (const char c : s) h = fnv1a_byte(h, static_cast<std::uint8_t>(c));
  return h;
}

}  // namespace cfmerge::numtheory
