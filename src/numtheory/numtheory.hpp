// Number theory utilities (Appendix A of the paper).
//
// The bank-conflict-free gather (src/gather) and the worst-case input
// generator (src/worstcase) are built on congruences, greatest common
// divisors and complete residue systems.  This module collects those
// primitives together with checked variants used by the tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cfmerge::numtheory {

/// Non-negative remainder of a modulo m (m > 0), correct for negative a.
/// The C++ `%` operator yields negative remainders for negative operands;
/// all index arithmetic in the gather schedule needs the mathematical mod.
[[nodiscard]] constexpr std::int64_t mod(std::int64_t a, std::int64_t m) noexcept {
  const std::int64_t r = a % m;
  return r < 0 ? r + m : r;
}

/// Greatest common divisor; gcd(0, 0) == 0 by convention.
[[nodiscard]] constexpr std::int64_t gcd(std::int64_t a, std::int64_t b) noexcept {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Least common multiple (0 if either argument is 0).
[[nodiscard]] constexpr std::int64_t lcm(std::int64_t a, std::int64_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  return (a / gcd(a, b)) * b;
}

/// Definition 12: a and b are coprime iff gcd(a, b) == 1.
[[nodiscard]] constexpr bool coprime(std::int64_t a, std::int64_t b) noexcept {
  return gcd(a, b) == 1;
}

/// Result of the extended Euclidean algorithm: g = gcd(a,b) = a*x + b*y.
struct ExtendedGcd {
  std::int64_t g;
  std::int64_t x;
  std::int64_t y;
};

/// Extended Euclidean algorithm (Bezout coefficients).
[[nodiscard]] ExtendedGcd extended_gcd(std::int64_t a, std::int64_t b) noexcept;

/// Corollary 16: modular inverse of a modulo m; requires gcd(a, m) == 1.
/// Returns the unique inverse in [0, m).  Throws std::invalid_argument when
/// the inverse does not exist.
[[nodiscard]] std::int64_t mod_inverse(std::int64_t a, std::int64_t m);

/// Euclid's Division Lemma (Lemma 9): a = q*b + r with 0 <= r < b (b > 0).
struct Division {
  std::int64_t q;
  std::int64_t r;
};

/// Floor division with non-negative remainder; requires b > 0.
[[nodiscard]] constexpr Division euclid_div(std::int64_t a, std::int64_t b) noexcept {
  const std::int64_t r = mod(a, b);
  return {(a - r) / b, r};
}

/// Definition 13: true iff `values` is a complete residue system modulo m,
/// i.e. it has exactly m elements with pairwise distinct residues.
[[nodiscard]] bool is_complete_residue_system(std::span<const std::int64_t> values,
                                              std::int64_t m);

/// The set R_j = { j + k*E : 0 <= k < w } from Lemma 1.  A complete residue
/// system modulo w exactly when gcd(w, E) == 1.
[[nodiscard]] std::vector<std::int64_t> arithmetic_residues(std::int64_t j,
                                                            std::int64_t stride_e,
                                                            std::int64_t count_w);

/// Multiplicity profile of residues modulo m: result[r] = how many values are
/// congruent to r.  A complete residue system has profile all-ones.
[[nodiscard]] std::vector<std::int64_t> residue_profile(std::span<const std::int64_t> values,
                                                        std::int64_t m);

}  // namespace cfmerge::numtheory
