#include "numtheory/numtheory.hpp"

#include <stdexcept>

namespace cfmerge::numtheory {

ExtendedGcd extended_gcd(std::int64_t a, std::int64_t b) noexcept {
  // Iterative extended Euclid keeping (g, x, y) with g = a*x + b*y.
  std::int64_t old_r = a, r = b;
  std::int64_t old_x = 1, x = 0;
  std::int64_t old_y = 0, y = 1;
  while (r != 0) {
    const std::int64_t q = old_r / r;
    std::int64_t t = old_r - q * r;
    old_r = r;
    r = t;
    t = old_x - q * x;
    old_x = x;
    x = t;
    t = old_y - q * y;
    old_y = y;
    y = t;
  }
  if (old_r < 0) {
    old_r = -old_r;
    old_x = -old_x;
    old_y = -old_y;
  }
  return {old_r, old_x, old_y};
}

std::int64_t mod_inverse(std::int64_t a, std::int64_t m) {
  if (m <= 0) throw std::invalid_argument("mod_inverse: modulus must be positive");
  const ExtendedGcd e = extended_gcd(mod(a, m), m);
  if (e.g != 1) throw std::invalid_argument("mod_inverse: arguments not coprime");
  return mod(e.x, m);
}

bool is_complete_residue_system(std::span<const std::int64_t> values, std::int64_t m) {
  if (m <= 0 || static_cast<std::int64_t>(values.size()) != m) return false;
  std::vector<bool> seen(static_cast<std::size_t>(m), false);
  for (const std::int64_t v : values) {
    const auto r = static_cast<std::size_t>(mod(v, m));
    if (seen[r]) return false;
    seen[r] = true;
  }
  return true;
}

std::vector<std::int64_t> arithmetic_residues(std::int64_t j, std::int64_t stride_e,
                                              std::int64_t count_w) {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(count_w));
  for (std::int64_t k = 0; k < count_w; ++k) out.push_back(j + k * stride_e);
  return out;
}

std::vector<std::int64_t> residue_profile(std::span<const std::int64_t> values,
                                          std::int64_t m) {
  std::vector<std::int64_t> profile(static_cast<std::size_t>(m), 0);
  for (const std::int64_t v : values) ++profile[static_cast<std::size_t>(mod(v, m))];
  return profile;
}

}  // namespace cfmerge::numtheory
