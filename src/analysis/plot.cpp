#include "analysis/plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>

namespace cfmerge::analysis {

void AsciiPlot::print(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = 0.0, ymax = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double x = log_x_ ? std::log2(s.x[i]) : s.x[i];
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymax = std::max(ymax, s.y[i]);
      any = true;
    }
  }
  if (!any) {
    os << "(no data)\n";
    return;
  }
  if (xmax == xmin) xmax = xmin + 1;
  if (ymax <= ymin) ymax = ymin + 1;

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_), ' '));
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double x = log_x_ ? std::log2(s.x[i]) : s.x[i];
      const int cx = static_cast<int>(std::lround((x - xmin) / (xmax - xmin) * (width_ - 1)));
      const int cy =
          static_cast<int>(std::lround((s.y[i] - ymin) / (ymax - ymin) * (height_ - 1)));
      const int row = height_ - 1 - cy;
      if (row >= 0 && row < height_ && cx >= 0 && cx < width_)
        grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(cx)] = s.glyph;
    }
  }
  os << std::fixed << std::setprecision(1);
  for (int r = 0; r < height_; ++r) {
    const double yv = ymax - (ymax - ymin) * r / (height_ - 1);
    os << std::setw(10) << yv << " |" << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(11, ' ') << '+' << std::string(static_cast<std::size_t>(width_), '-')
     << '\n';
  os << std::string(12, ' ') << xlabel_ << (log_x_ ? "  [log2 axis: " : "  [") << "min="
     << (log_x_ ? std::exp2(xmin) : xmin) << " max=" << (log_x_ ? std::exp2(xmax) : xmax)
     << "]   y: " << ylabel_ << '\n';
  for (const auto& s : series_) os << "    '" << s.glyph << "' = " << s.name << '\n';
}

}  // namespace cfmerge::analysis
