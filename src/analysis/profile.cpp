#include "analysis/profile.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "analysis/table.hpp"

namespace cfmerge::analysis {

void print_phase_profile(std::ostream& os, const gpusim::PhaseCounters& phases,
                         std::int64_t n_elements) {
  Table t("phase profile (per-phase shared memory behaviour)");
  t.set_header({"phase", "shared_accesses", "bank_conflicts", "conflicts/access",
                "conflicts/element", "gmem_transactions", "warp_instrs"});
  for (const auto& [name, c] : phases.phases()) {
    t.add_row({name, Table::integer(static_cast<long long>(c.shared_accesses)),
               Table::integer(static_cast<long long>(c.bank_conflicts)),
               Table::num(c.conflicts_per_access(), 3),
               Table::num(n_elements > 0 ? static_cast<double>(c.bank_conflicts) / n_elements
                                         : 0.0,
                          3),
               Table::integer(static_cast<long long>(c.gmem_transactions)),
               Table::integer(static_cast<long long>(c.warp_instructions))});
  }
  t.print(os);
}

double merge_conflicts_per_element_pass(const sort::SortReport& report) {
  const std::uint64_t conflicts = report.merge_conflicts();
  const double denom = static_cast<double>(report.n_padded) *
                       std::max(1, report.passes);
  return denom > 0 ? static_cast<double>(conflicts) / denom : 0.0;
}

double merge_conflicts_per_access(const sort::SortReport& report) {
  const std::uint64_t acc = report.merge_shared_accesses();
  return acc > 0 ? static_cast<double>(report.merge_conflicts()) / static_cast<double>(acc)
                 : 0.0;
}

std::string summarize(const sort::SortReport& report, const std::string& label) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << label << ": n=" << report.n << " time=" << report.microseconds << "us"
     << " throughput=" << report.throughput() << " elem/us"
     << " merge_conflicts=" << report.merge_conflicts() << " ("
     << std::setprecision(3) << merge_conflicts_per_access(report) << "/access)";
  return os.str();
}

std::string summarize(const sort::SegmentedSortReport& report, const std::string& label) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << label << ": segments=" << report.segments << " elements=" << report.elements
     << " serial=" << report.serial_microseconds << "us"
     << " makespan=" << report.makespan_microseconds << "us"
     << " overlap=" << report.overlap_speedup() << "x"
     << " throughput=" << report.throughput() << " elem/us"
     << " merge_conflicts=" << report.merge_conflicts();
  return os.str();
}

}  // namespace cfmerge::analysis
