// PRAM-style analytic cost model for CF-Merge.
//
// The paper's selling point: without bank conflicts, shared-memory analysis
// reduces to PRAM analysis — the runtime of the gather and the data
// movement is a *closed form* in (w, E, u, la, lb), independent of the
// data.  This module provides those closed forms; tests assert that the
// simulator's counters match them exactly (the merge-path searches are the
// only data-dependent phase and are covered by upper bounds).
#pragma once

#include <cstdint>

namespace cfmerge::analysis {

struct PramMergeKernel {
  /// Warp-wide shared accesses to stage the two lists into shared memory.
  std::int64_t load_shared_accesses = 0;
  /// Warp-wide global requests for the same staging.
  std::int64_t load_gmem_requests = 0;
  /// Gather: exactly E accesses per warp (Algorithm 1's E rounds).
  std::int64_t gather_accesses = 0;
  /// Register -> shared output writes: E accesses per warp.
  std::int64_t output_scatter_accesses = 0;
  /// Shared -> global streaming store accesses.
  std::int64_t store_shared_accesses = 0;
  std::int64_t store_gmem_requests = 0;
  /// Upper bound on lockstep search iterations per warp (both diagonals).
  std::int64_t search_iterations_bound = 0;

  [[nodiscard]] std::int64_t deterministic_shared_accesses() const {
    return load_shared_accesses + gather_accesses + output_scatter_accesses +
           store_shared_accesses;
  }
};

/// Closed-form access counts for one CF-Merge merge-kernel block with lists
/// of sizes la and lb (la + lb == u*e), on a device with w lanes per warp.
[[nodiscard]] PramMergeKernel pram_merge_kernel(int w, int e, int u, std::int64_t la,
                                                std::int64_t lb);

/// PRAM time (conflict-free shared steps) of the gather for one warp: E.
[[nodiscard]] std::int64_t pram_gather_steps(int e);

/// Total deterministic shared accesses of a full CF-Merge pass over
/// `blocks` tiles (every block moves exactly one tile).
[[nodiscard]] std::int64_t pram_pass_shared_accesses(int w, int e, int u, int blocks);

}  // namespace cfmerge::analysis
