#include "analysis/json.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace cfmerge::analysis {

namespace {

void write_counters(std::ostream& os, const gpusim::Counters& c) {
  os << "{\"warp_instructions\":" << c.warp_instructions
     << ",\"shared_accesses\":" << c.shared_accesses
     << ",\"shared_cycles\":" << c.shared_cycles
     << ",\"bank_conflicts\":" << c.bank_conflicts
     << ",\"gmem_requests\":" << c.gmem_requests
     << ",\"gmem_transactions\":" << c.gmem_transactions
     << ",\"gmem_bytes\":" << c.gmem_bytes << ",\"barriers\":" << c.barriers << "}";
}

void write_phases(std::ostream& os, const gpusim::PhaseCounters& phases) {
  os << "{";
  bool first = true;
  for (const auto& [name, c] : phases.phases()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":";
    write_counters(os, c);
  }
  os << "}";
}

void write_kernels(std::ostream& os, const std::vector<gpusim::KernelReport>& kernels) {
  os << "[";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const auto& k = kernels[i];
    if (i) os << ",";
    os << "{\"name\":\"" << json_escape(k.name) << "\",\"blocks\":" << k.shape.blocks
       << ",\"microseconds\":" << k.timing.microseconds << ",\"limiter\":\""
       << k.timing.limiter << "\",\"occupancy\":" << k.timing.occupancy.occupancy
       << ",\"waves\":" << k.timing.waves << "}";
  }
  os << "]";
}

const char* variant_name(sort::Variant v) {
  return v == sort::Variant::Baseline ? "baseline" : "cf-merge";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream esc;
          esc << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c);
          out += esc.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_json(std::ostream& os, const sort::SortReport& report,
                const sort::MergeConfig& cfg, const std::string& device,
                const std::string& workload, const sort::EngineStats* engine) {
  os << "{\"kind\":\"sort\",\"device\":\"" << json_escape(device) << "\",\"workload\":\""
     << json_escape(workload) << "\",\"variant\":\"" << variant_name(cfg.variant)
     << "\",\"e\":" << cfg.e << ",\"u\":" << cfg.u << ",\"n\":" << report.n
     << ",\"n_padded\":" << report.n_padded << ",\"passes\":" << report.passes
     << ",\"microseconds\":" << report.microseconds
     << ",\"makespan_microseconds\":" << report.makespan_microseconds
     << ",\"graph_levels\":" << report.graph_levels
     << ",\"throughput_elem_per_us\":" << report.throughput()
     << ",\"merge_conflicts\":" << report.merge_conflicts()
     << ",\"blocksort_conflicts\":" << report.blocksort_conflicts() << ",\"totals\":";
  write_counters(os, report.totals);
  os << ",\"phases\":";
  write_phases(os, report.phases);
  os << ",\"kernels\":";
  write_kernels(os, report.kernels);
  if (engine != nullptr) {
    os << ",\"engine\":";
    write_json(os, *engine);
  }
  os << "}\n";
}

void write_json(std::ostream& os, const sort::MergeReport& report,
                const sort::MergeConfig& cfg, const std::string& device) {
  os << "{\"kind\":\"merge\",\"device\":\"" << json_escape(device) << "\",\"variant\":\""
     << variant_name(cfg.variant) << "\",\"e\":" << cfg.e << ",\"u\":" << cfg.u
     << ",\"na\":" << report.na << ",\"nb\":" << report.nb
     << ",\"microseconds\":" << report.microseconds
     << ",\"throughput_elem_per_us\":" << report.throughput()
     << ",\"merge_conflicts\":" << report.merge_conflicts() << ",\"totals\":";
  write_counters(os, report.totals);
  os << ",\"phases\":";
  write_phases(os, report.phases);
  os << "}\n";
}

void write_json(std::ostream& os, const sort::SegmentedSortReport& report,
                const sort::MergeConfig& cfg, const std::string& device,
                const std::string& workload, const sort::EngineStats* engine) {
  os << "{\"kind\":\"segmented_sort\",\"device\":\"" << json_escape(device)
     << "\",\"workload\":\"" << json_escape(workload) << "\",\"variant\":\""
     << variant_name(cfg.variant) << "\",\"e\":" << cfg.e << ",\"u\":" << cfg.u
     << ",\"segments\":" << report.segments << ",\"elements\":" << report.elements
     << ",\"serial_microseconds\":" << report.serial_microseconds
     << ",\"makespan_microseconds\":" << report.makespan_microseconds
     << ",\"overlap_speedup\":" << report.overlap_speedup()
     << ",\"graph_levels\":" << report.graph_levels
     << ",\"throughput_elem_per_us\":" << report.throughput()
     << ",\"merge_conflicts\":" << report.merge_conflicts() << ",\"per_segment\":[";
  for (std::size_t s = 0; s < report.per_segment.size(); ++s) {
    const auto& seg = report.per_segment[s];
    if (s) os << ",";
    os << "{\"n\":" << seg.n << ",\"passes\":" << seg.passes
       << ",\"first_kernel\":" << seg.first_kernel
       << ",\"kernel_count\":" << seg.kernel_count << "}";
  }
  os << "],\"totals\":";
  write_counters(os, report.totals);
  os << ",\"phases\":";
  write_phases(os, report.phases);
  os << ",\"kernels\":";
  write_kernels(os, report.kernels);
  if (engine != nullptr) {
    os << ",\"engine\":";
    write_json(os, *engine);
  }
  os << "}\n";
}

void write_json(std::ostream& os, const sort::EngineStats& stats) {
  os << "{\"plan_hits\":" << stats.plan_hits << ",\"plan_misses\":" << stats.plan_misses
     << ",\"plan_evictions\":" << stats.plan_evictions
     << ",\"plan_hit_rate\":" << stats.hit_rate()
     << ",\"plans_cached\":" << stats.plans_cached
     << ",\"plan_bytes\":" << stats.plan_bytes
     << ",\"arena_bytes\":" << stats.arena_bytes
     << ",\"arena_allocs\":" << stats.arena_allocs
     << ",\"arena_reuses\":" << stats.arena_reuses << "}";
}

void write_json(std::ostream& os, const sort::BitonicReport& report,
                const sort::BitonicConfig& cfg, const std::string& device,
                const std::string& workload) {
  os << "{\"kind\":\"bitonic\",\"device\":\"" << json_escape(device)
     << "\",\"workload\":\"" << json_escape(workload) << "\",\"u\":" << cfg.u
     << ",\"elems_per_thread\":" << cfg.elems_per_thread
     << ",\"padded\":" << (cfg.padded ? "true" : "false") << ",\"n\":" << report.n
     << ",\"n_padded\":" << report.n_padded
     << ",\"microseconds\":" << report.microseconds
     << ",\"throughput_elem_per_us\":" << report.throughput() << ",\"totals\":";
  write_counters(os, report.totals);
  os << ",\"phases\":";
  write_phases(os, report.phases);
  os << "}\n";
}

}  // namespace cfmerge::analysis
