#include "analysis/json.hpp"

#include <array>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

namespace cfmerge::analysis {

namespace {

void write_counters(std::ostream& os, const gpusim::Counters& c) {
  os << "{\"warp_instructions\":" << c.warp_instructions
     << ",\"shared_accesses\":" << c.shared_accesses
     << ",\"shared_cycles\":" << c.shared_cycles
     << ",\"bank_conflicts\":" << c.bank_conflicts
     << ",\"gmem_requests\":" << c.gmem_requests
     << ",\"gmem_transactions\":" << c.gmem_transactions
     << ",\"gmem_bytes\":" << c.gmem_bytes << ",\"barriers\":" << c.barriers << "}";
}

void write_phases(std::ostream& os, const gpusim::PhaseCounters& phases) {
  os << "{";
  bool first = true;
  for (const auto& [name, c] : phases.phases()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":";
    write_counters(os, c);
  }
  os << "}";
}

void write_kernels(std::ostream& os, const std::vector<gpusim::KernelReport>& kernels) {
  os << "[";
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const auto& k = kernels[i];
    if (i) os << ",";
    os << "{\"name\":\"" << json_escape(k.name) << "\",\"blocks\":" << k.shape.blocks
       << ",\"microseconds\":" << k.timing.microseconds << ",\"limiter\":\""
       << k.timing.limiter << "\",\"occupancy\":" << k.timing.occupancy.occupancy
       << ",\"waves\":" << k.timing.waves << "}";
  }
  os << "]";
}

const char* variant_name(sort::Variant v) {
  return v == sort::Variant::Baseline ? "baseline" : "cf-merge";
}

const char* multiway_variant_name(sort::MultiwayVariant v) {
  return v == sort::MultiwayVariant::CFCascade ? "cf-cascade" : "loser-tree";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream esc;
          esc << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c);
          out += esc.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_json(std::ostream& os, const sort::SortReport& report,
                const sort::MergeConfig& cfg, const std::string& device,
                const std::string& workload, const sort::EngineStats* engine) {
  os << "{\"kind\":\"sort\",\"device\":\"" << json_escape(device) << "\",\"workload\":\""
     << json_escape(workload) << "\",\"variant\":\"" << variant_name(cfg.variant)
     << "\",\"e\":" << cfg.e << ",\"u\":" << cfg.u << ",\"n\":" << report.n
     << ",\"n_padded\":" << report.n_padded << ",\"passes\":" << report.passes
     << ",\"microseconds\":" << report.microseconds
     << ",\"makespan_microseconds\":" << report.makespan_microseconds
     << ",\"graph_levels\":" << report.graph_levels
     << ",\"throughput_elem_per_us\":" << report.throughput()
     << ",\"merge_conflicts\":" << report.merge_conflicts()
     << ",\"blocksort_conflicts\":" << report.blocksort_conflicts() << ",\"totals\":";
  write_counters(os, report.totals);
  os << ",\"phases\":";
  write_phases(os, report.phases);
  os << ",\"kernels\":";
  write_kernels(os, report.kernels);
  if (engine != nullptr) {
    os << ",\"engine\":";
    write_json(os, *engine);
  }
  os << "}\n";
}

void write_json(std::ostream& os, const sort::SortReport& report,
                const sort::MultiwayConfig& cfg, const std::string& device,
                const std::string& workload, const sort::EngineStats* engine) {
  os << "{\"kind\":\"multiway_sort\",\"device\":\"" << json_escape(device)
     << "\",\"workload\":\"" << json_escape(workload) << "\",\"variant\":\""
     << multiway_variant_name(cfg.variant) << "\",\"e\":" << cfg.e
     << ",\"u\":" << cfg.u << ",\"k\":" << cfg.k << ",\"n\":" << report.n
     << ",\"n_padded\":" << report.n_padded << ",\"passes\":" << report.passes
     << ",\"microseconds\":" << report.microseconds
     << ",\"makespan_microseconds\":" << report.makespan_microseconds
     << ",\"graph_levels\":" << report.graph_levels
     << ",\"throughput_elem_per_us\":" << report.throughput()
     << ",\"merge_conflicts\":" << report.merge_conflicts()
     << ",\"blocksort_conflicts\":" << report.blocksort_conflicts() << ",\"totals\":";
  write_counters(os, report.totals);
  os << ",\"phases\":";
  write_phases(os, report.phases);
  os << ",\"kernels\":";
  write_kernels(os, report.kernels);
  if (engine != nullptr) {
    os << ",\"engine\":";
    write_json(os, *engine);
  }
  os << "}\n";
}

void write_json(std::ostream& os, const sort::MergeReport& report,
                const sort::MergeConfig& cfg, const std::string& device) {
  os << "{\"kind\":\"merge\",\"device\":\"" << json_escape(device) << "\",\"variant\":\""
     << variant_name(cfg.variant) << "\",\"e\":" << cfg.e << ",\"u\":" << cfg.u
     << ",\"na\":" << report.na << ",\"nb\":" << report.nb
     << ",\"microseconds\":" << report.microseconds
     << ",\"throughput_elem_per_us\":" << report.throughput()
     << ",\"merge_conflicts\":" << report.merge_conflicts() << ",\"totals\":";
  write_counters(os, report.totals);
  os << ",\"phases\":";
  write_phases(os, report.phases);
  os << "}\n";
}

void write_json(std::ostream& os, const sort::SegmentedSortReport& report,
                const sort::MergeConfig& cfg, const std::string& device,
                const std::string& workload, const sort::EngineStats* engine) {
  os << "{\"kind\":\"segmented_sort\",\"device\":\"" << json_escape(device)
     << "\",\"workload\":\"" << json_escape(workload) << "\",\"variant\":\""
     << variant_name(cfg.variant) << "\",\"e\":" << cfg.e << ",\"u\":" << cfg.u
     << ",\"segments\":" << report.segments << ",\"elements\":" << report.elements
     << ",\"serial_microseconds\":" << report.serial_microseconds
     << ",\"makespan_microseconds\":" << report.makespan_microseconds
     << ",\"overlap_speedup\":" << report.overlap_speedup()
     << ",\"graph_levels\":" << report.graph_levels
     << ",\"throughput_elem_per_us\":" << report.throughput()
     << ",\"merge_conflicts\":" << report.merge_conflicts() << ",\"per_segment\":[";
  for (std::size_t s = 0; s < report.per_segment.size(); ++s) {
    const auto& seg = report.per_segment[s];
    if (s) os << ",";
    os << "{\"n\":" << seg.n << ",\"passes\":" << seg.passes
       << ",\"first_kernel\":" << seg.first_kernel
       << ",\"kernel_count\":" << seg.kernel_count << "}";
  }
  os << "],\"totals\":";
  write_counters(os, report.totals);
  os << ",\"phases\":";
  write_phases(os, report.phases);
  os << ",\"kernels\":";
  write_kernels(os, report.kernels);
  if (engine != nullptr) {
    os << ",\"engine\":";
    write_json(os, *engine);
  }
  os << "}\n";
}

void write_json(std::ostream& os, const sort::EngineStats& stats) {
  os << "{\"plan_hits\":" << stats.plan_hits << ",\"plan_misses\":" << stats.plan_misses
     << ",\"plan_evictions\":" << stats.plan_evictions
     << ",\"plan_hit_rate\":" << stats.hit_rate()
     << ",\"plans_cached\":" << stats.plans_cached
     << ",\"plan_bytes\":" << stats.plan_bytes
     << ",\"arena_bytes\":" << stats.arena_bytes
     << ",\"arena_allocs\":" << stats.arena_allocs
     << ",\"arena_reuses\":" << stats.arena_reuses
     << ",\"bulk_charges\":" << stats.bulk_charges
     << ",\"lane_charges\":" << stats.lane_charges
     << ",\"bulk_rate\":" << stats.bulk_rate()
     << ",\"audit_skipped_accesses\":" << stats.audit_skipped_accesses
     << ",\"cert_hits\":" << stats.cert_hits
     << ",\"cert_misses\":" << stats.cert_misses
     << ",\"certs_cached\":" << stats.certs_cached
     << ",\"disk_hits\":" << stats.disk_hits
     << ",\"disk_misses\":" << stats.disk_misses
     << ",\"disk_writes\":" << stats.disk_writes
     << ",\"disk_evictions\":" << stats.disk_evictions
     << ",\"disk_corrupt\":" << stats.disk_corrupt
     << ",\"disk_entries\":" << stats.disk_entries
     << ",\"disk_bytes\":" << stats.disk_bytes << "}";
}

namespace {

const char* verdict_name(verify::Verdict v) {
  switch (v) {
    case verify::Verdict::kProved: return "proved";
    case verify::Verdict::kCounterexample: return "counterexample";
    case verify::Verdict::kRefutedNoWitness: return "refuted-no-witness";
  }
  return "?";
}

const char* step_status_name(verify::StepStatus s) {
  switch (s) {
    case verify::StepStatus::kPassed: return "passed";
    case verify::StepStatus::kFailed: return "failed";
    case verify::StepStatus::kSkipped: return "skipped";
  }
  return "?";
}

void write_counterexample(std::ostream& os, const verify::Counterexample& cx) {
  os << "{\"w\":" << cx.w << ",\"e\":" << cx.e << ",\"u\":" << cx.u
     << ",\"la\":" << cx.la << ",\"a_sizes\":[";
  for (std::size_t i = 0; i < cx.a_sizes.size(); ++i) {
    if (i) os << ",";
    os << cx.a_sizes[i];
  }
  os << "],\"round\":" << cx.round << ",\"lane1\":" << cx.lane1
     << ",\"lane2\":" << cx.lane2 << ",\"addr1\":" << cx.addr1
     << ",\"addr2\":" << cx.addr2 << ",\"bank\":" << cx.bank
     << ",\"epoch\":" << cx.epoch << ",\"kind\":\"" << json_escape(cx.kind)
     << "\",\"text\":\"" << json_escape(cx.str()) << "\"}";
}

void write_proof(std::ostream& os, const verify::ProofObject& p) {
  os << "{\"schedule\":\"" << json_escape(p.schedule) << "\",\"w\":" << p.w
     << ",\"e\":" << p.e;
  if (p.k > 0) os << ",\"k\":" << p.k;
  os << ",\"d\":" << p.d << ",\"verdict\":\"" << verdict_name(p.verdict)
     << "\",\"scope\":\"" << json_escape(p.scope) << "\"";
  if (!p.family.empty()) os << ",\"family\":\"" << json_escape(p.family) << "\"";
  os << ",\"steps\":[";
  for (std::size_t i = 0; i < p.steps.size(); ++i) {
    const verify::ProofStep& s = p.steps[i];
    if (i) os << ",";
    os << "{\"name\":\"" << json_escape(s.name) << "\",\"status\":\""
       << step_status_name(s.status) << "\",\"detail\":\"" << json_escape(s.detail)
       << "\"}";
  }
  os << "]";
  if (p.verdict == verify::Verdict::kCounterexample) {
    os << ",\"counterexample\":";
    write_counterexample(os, p.counterexample);
  }
  os << "}";
}

void write_proof_list(std::ostream& os, const std::vector<verify::ProofObject>& v) {
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ",";
    write_proof(os, v[i]);
  }
  os << "]";
}

/// Per-arity rollup of the k-way proof objects: how many cascade schedules
/// were proved and how many direct-CF claims were refuted (with a concrete
/// lane-pair witness) at each k.
void write_multiway_summary(std::ostream& os, const verify::VerifyReport& report) {
  std::map<int, std::array<std::int64_t, 3>> per_k;  // proved, refuted, witnesses
  for (const auto& p : report.proofs)
    if (p.k > 0 && p.verdict == verify::Verdict::kProved) ++per_k[p.k][0];
  for (const auto& p : report.refutations)
    if (p.k > 0) {
      ++per_k[p.k][1];
      if (p.verdict == verify::Verdict::kCounterexample) ++per_k[p.k][2];
    }
  os << "[";
  bool first = true;
  for (const auto& [k, counts] : per_k) {
    if (!first) os << ",";
    first = false;
    os << "{\"k\":" << k << ",\"proved\":" << counts[0]
       << ",\"refuted\":" << counts[1] << ",\"witnesses\":" << counts[2] << "}";
  }
  os << "]";
}

/// Per-family rollup of the registered CFPrimitive sweep: for every family
/// that went through the generic lowering path, how many shapes were proved
/// and how many refuted (each refutation carrying a lane-pair witness).
void write_primitives_summary(std::ostream& os, const verify::VerifyReport& report) {
  std::map<std::string, std::array<std::int64_t, 3>> per_family;  // proved, refuted, witnesses
  for (const auto& p : report.proofs)
    if (!p.family.empty() && p.verdict == verify::Verdict::kProved)
      ++per_family[p.family][0];
  for (const auto& p : report.refutations)
    if (!p.family.empty()) {
      ++per_family[p.family][1];
      if (p.verdict == verify::Verdict::kCounterexample) ++per_family[p.family][2];
    }
  os << "[";
  bool first = true;
  for (const auto& [name, counts] : per_family) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(name) << "\",\"proved\":" << counts[0]
       << ",\"refuted\":" << counts[1] << ",\"witnesses\":" << counts[2] << "}";
  }
  os << "]";
}

/// Per-family rollup of the Pass 3 static-safety sweep: how many shapes of
/// each schedule family were safety-proved, how many ablation shapes were
/// refuted, and how many refutations carry a concrete lane/epoch witness.
void write_safety_summary(std::ostream& os, const verify::VerifyReport& report) {
  std::map<std::string, std::array<std::int64_t, 3>> per_family;  // proved, refuted, witnesses
  for (const auto& p : report.safety_proofs)
    if (p.verdict == verify::Verdict::kProved) ++per_family[p.family][0];
  for (const auto& p : report.safety_refutations) {
    ++per_family[p.family][1];
    if (p.verdict == verify::Verdict::kCounterexample) ++per_family[p.family][2];
  }
  os << "[";
  bool first = true;
  for (const auto& [name, counts] : per_family) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(name) << "\",\"proved\":" << counts[0]
       << ",\"refuted\":" << counts[1] << ",\"witnesses\":" << counts[2] << "}";
  }
  os << "]";
}

}  // namespace

void write_json(std::ostream& os, const verify::VerifyReport& report) {
  os << "{\"kind\":\"verify\",\"ok\":" << (report.ok() ? "true" : "false")
     << ",\"all_proved\":" << (report.all_proved() ? "true" : "false")
     << ",\"all_refuted\":" << (report.all_refuted() ? "true" : "false")
     << ",\"proofs\":";
  write_proof_list(os, report.proofs);
  os << ",\"refutations\":";
  write_proof_list(os, report.refutations);
  os << ",\"safety_proofs\":";
  write_proof_list(os, report.safety_proofs);
  os << ",\"safety_refutations\":";
  write_proof_list(os, report.safety_refutations);
  os << ",\"multiway\":";
  write_multiway_summary(os, report);
  os << ",\"primitives\":";
  write_primitives_summary(os, report);
  os << ",\"safety\":";
  write_safety_summary(os, report);
  os << ",\"worstcase\":[";
  for (std::size_t i = 0; i < report.worstcase.size(); ++i) {
    const verify::WorstCaseAnalysis& wc = report.worstcase[i];
    if (i) os << ",";
    os << "{\"w\":" << wc.w << ",\"e\":" << wc.e
       << ",\"exact_conflicts\":" << wc.exact_conflicts
       << ",\"closed_form\":" << wc.closed_form << ",\"min_bound\":" << wc.min_bound
       << ",\"max_bound\":" << wc.max_bound << ",\"accesses\":" << wc.accesses << "}";
  }
  os << "],\"shadow\":{\"enabled\":" << (report.shadow.enabled ? "true" : "false")
     << ",\"clean\":" << (report.shadow.clean() ? "true" : "false")
     << ",\"shared_accesses\":" << report.shadow.shared_accesses
     << ",\"checked_words\":" << report.shadow.checked_words
     << ",\"skipped_accesses\":" << report.shadow.skipped_accesses
     << ",\"dropped_violations\":" << report.shadow.dropped_violations
     << ",\"violations\":[";
  for (std::size_t i = 0; i < report.shadow.violations.size(); ++i) {
    const verify::ShadowViolation& v = report.shadow.violations[i];
    if (i) os << ",";
    os << "{\"kind\":\"" << json_escape(v.kind) << "\",\"block\":" << v.block
       << ",\"warp\":" << v.warp << ",\"phase\":\"" << json_escape(v.phase)
       << "\",\"addr\":" << v.addr << ",\"detail\":\"" << json_escape(v.detail)
       << "\"}";
  }
  os << "]}}\n";
}

void write_json(std::ostream& os, const sort::BitonicReport& report,
                const sort::BitonicConfig& cfg, const std::string& device,
                const std::string& workload) {
  os << "{\"kind\":\"bitonic\",\"device\":\"" << json_escape(device)
     << "\",\"workload\":\"" << json_escape(workload) << "\",\"u\":" << cfg.u
     << ",\"elems_per_thread\":" << cfg.elems_per_thread
     << ",\"padded\":" << (cfg.padded ? "true" : "false") << ",\"n\":" << report.n
     << ",\"n_padded\":" << report.n_padded
     << ",\"microseconds\":" << report.microseconds
     << ",\"throughput_elem_per_us\":" << report.throughput() << ",\"totals\":";
  write_counters(os, report.totals);
  os << ",\"phases\":";
  write_phases(os, report.phases);
  os << "}\n";
}

void write_json(std::ostream& os, const cfprims::PermuteReport& report,
                const std::string& device, const std::string& workload,
                const sort::EngineStats* engine) {
  os << "{\"kind\":\"" << report.op_name() << "\",\"device\":\""
     << json_escape(device) << "\",\"workload\":\"" << json_escape(workload)
     << "\",\"inverse\":" << (report.inverse ? "true" : "false")
     << ",\"e\":" << report.e << ",\"u\":" << report.u << ",\"n\":" << report.n
     << ",\"n_padded\":" << report.n_padded
     << ",\"microseconds\":" << report.microseconds
     << ",\"makespan_microseconds\":" << report.makespan_microseconds
     << ",\"graph_levels\":" << report.graph_levels
     << ",\"throughput_elem_per_us\":" << report.throughput() << ",\"totals\":";
  write_counters(os, report.totals);
  os << ",\"phases\":";
  write_phases(os, report.phases);
  os << ",\"kernels\":";
  write_kernels(os, report.kernels);
  if (engine != nullptr) {
    os << ",\"engine\":";
    write_json(os, *engine);
  }
  os << "}\n";
}

}  // namespace cfmerge::analysis
