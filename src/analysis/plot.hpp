// Minimal ASCII line plots for the figure-reproduction harnesses.
//
// Each series is a set of (x, y) points; x is rendered on a log2 axis when
// requested (the paper's figures use a logarithmic x-axis).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cfmerge::analysis {

struct Series {
  std::string name;
  char glyph = '*';
  std::vector<double> x;
  std::vector<double> y;
};

class AsciiPlot {
 public:
  AsciiPlot(std::string title, std::string xlabel, std::string ylabel, int width = 72,
            int height = 20)
      : title_(std::move(title)),
        xlabel_(std::move(xlabel)),
        ylabel_(std::move(ylabel)),
        width_(width),
        height_(height) {}

  void set_log_x(bool v) { log_x_ = v; }
  void add_series(Series s) { series_.push_back(std::move(s)); }
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::string xlabel_;
  std::string ylabel_;
  int width_;
  int height_;
  bool log_x_ = false;
  std::vector<Series> series_;
};

}  // namespace cfmerge::analysis
