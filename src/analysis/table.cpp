#include "analysis/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace cfmerge::analysis {

void Table::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void Table::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string Table::num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string Table::integer(long long v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    os << '\n';
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += std::string(widths[c] + 2, '-');
  os << rule << '\n';
  for (const auto& r : rows_) emit(r);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace cfmerge::analysis
