// Experiment sweep configuration shared by the figure harnesses.
//
// The paper sweeps n = 2^i * E for i = 16..26 on real hardware; the
// cycle-exact simulator runs on one CPU core, so harnesses default to a
// smaller range and can be extended with --imin/--imax/--reps or
// CFMERGE_BENCH_FULL=1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/launcher.hpp"
#include "sort/merge_sort.hpp"
#include "workloads/generators.hpp"

namespace cfmerge::analysis {

struct SweepConfig {
  int imin = 8;
  int imax = 14;
  int reps = 3;
  std::uint64_t seed = 42;
  /// Host worker threads for block simulation (Launcher::set_threads
  /// semantics: 0 = CFMERGE_SIM_THREADS env or sequential).  Results are
  /// bit-identical for every value; only wall-clock changes.
  int threads = 0;

  /// Parses --imin=N --imax=N --reps=N --seed=N --threads=N;
  /// CFMERGE_BENCH_FULL=1 raises the defaults (imax 17, reps 5).  Unknown
  /// arguments are ignored so the harnesses coexist with test runners.
  static SweepConfig from_args(int argc, char** argv);

  /// The n values of the sweep for a given E (n = 2^i * E).
  [[nodiscard]] std::vector<std::int64_t> sizes(int e) const;
};

/// One measured point of a sort experiment.
struct SortPoint {
  std::int64_t n = 0;
  double microseconds = 0.0;
  /// Graph-overlap simulated time (equals `microseconds` for the linear
  /// sort chain; diverges for graph workloads like segmented_sort).
  double makespan_microseconds = 0.0;
  double throughput = 0.0;  ///< elements per simulated microsecond
  std::uint64_t merge_conflicts = 0;
  double merge_conflicts_per_access = 0.0;
  int passes = 0;
};

/// Runs one sort (averaging `reps` repetitions with distinct seeds for
/// random inputs; worst-case inputs are deterministic so reps collapse to
/// one) and checks the output is sorted.  Throws on a sorting bug.
[[nodiscard]] SortPoint run_sort_point(gpusim::Launcher& launcher,
                                       const workloads::WorkloadSpec& workload,
                                       const sort::MergeConfig& cfg, int reps);

}  // namespace cfmerge::analysis
