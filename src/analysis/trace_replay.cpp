#include "analysis/trace_replay.hpp"

#include <algorithm>

namespace cfmerge::analysis {

ReplayResult replay_shared(const gpusim::TraceSink& trace, const dmm::ModuleMap& map,
                           std::string_view phase) {
  ReplayResult r;
  r.mapping = map.name();
  for (const gpusim::TraceEvent& e : trace.events()) {
    if (e.kind != gpusim::AccessKind::SharedRead &&
        e.kind != gpusim::AccessKind::SharedWrite)
      continue;
    if (!phase.empty() &&
        trace.phase_names()[static_cast<std::size_t>(e.phase_id)] != phase)
      continue;
    const dmm::StepCost cost = dmm::step_cost(map, trace.addresses(e));
    if (cost.active == 0) continue;
    ++r.shared_accesses;
    r.total_conflicts += cost.congestion - 1;
    r.max_congestion = std::max(r.max_congestion, cost.congestion);
    r.mapping_overhead_ops += static_cast<std::int64_t>(cost.active) * map.overhead_ops();
  }
  return r;
}

std::vector<ReplayResult> replay_standard_mappings(const gpusim::TraceSink& trace, int w,
                                                   std::string_view phase,
                                                   std::uint64_t hash_seed) {
  std::vector<ReplayResult> out;
  out.push_back(replay_shared(trace, dmm::DirectMap(w), phase));
  out.push_back(replay_shared(trace, dmm::OffsetMap(w, 1), phase));
  out.push_back(replay_shared(trace, dmm::UniversalHashMap(w, hash_seed), phase));
  return out;
}

}  // namespace cfmerge::analysis
