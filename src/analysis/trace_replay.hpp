// Trace replay: re-evaluates a recorded access trace under alternative
// bank/module mappings — the "what if this GPU hashed / skewed its banks?"
// analysis connecting the gpusim traces to the DMM model of Section 2.
#pragma once

#include <string>
#include <vector>

#include "dmm/dmm.hpp"
#include "gpusim/trace.hpp"

namespace cfmerge::analysis {

struct ReplayResult {
  std::string mapping;
  std::int64_t shared_accesses = 0;
  std::int64_t total_conflicts = 0;    ///< Σ (congestion - 1) over accesses
  int max_congestion = 0;
  std::int64_t mapping_overhead_ops = 0;

  [[nodiscard]] double conflicts_per_access() const {
    return shared_accesses > 0
               ? static_cast<double>(total_conflicts) / static_cast<double>(shared_accesses)
               : 0.0;
  }
};

/// Replays the trace's *shared* accesses under `map`.  Optionally restricted
/// to one phase ("" = all).
[[nodiscard]] ReplayResult replay_shared(const gpusim::TraceSink& trace,
                                         const dmm::ModuleMap& map,
                                         std::string_view phase = {});

/// Convenience: replays under direct, skew-1 and universal-hash mappings.
[[nodiscard]] std::vector<ReplayResult> replay_standard_mappings(
    const gpusim::TraceSink& trace, int w, std::string_view phase = {},
    std::uint64_t hash_seed = 42);

}  // namespace cfmerge::analysis
