// Software-parameter autotuner.
//
// The paper's Section 5 revolves around the choice of (E, u): Thrust ships
// E=17, u=256; Berney & Sitchinava found E=15, u=512 faster because it
// reaches 100% occupancy; and E must be coprime with w for the baseline's
// heuristic (CF-Merge lifts that constraint for the merge, though the
// block-sort's stride-E accesses still prefer coprime E).  This module
// automates the search: enumerate candidate (E, u) pairs, rank them by the
// static occupancy model, and optionally measure the top candidates with a
// calibration sort.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/launcher.hpp"
#include "sort/merge_pass.hpp"

namespace cfmerge::cache {
class PlanCacheStore;
}  // namespace cfmerge::cache

namespace cfmerge::analysis {

struct TuneCandidate {
  int e = 0;
  int u = 0;
  bool coprime = false;        ///< gcd(w, E) == 1
  double occupancy = 0.0;      ///< merge-kernel occupancy (static model)
  std::string limiter;         ///< occupancy limiter
  std::int64_t tile = 0;
  /// Static score: occupancy, with a mild penalty for non-coprime E (which
  /// degrades the shared block-sort stage even under CF-Merge).
  double static_score = 0.0;
  /// Filled by measure_candidates: simulated elements/us (0 if unmeasured).
  double measured_throughput = 0.0;
};

struct TuneOptions {
  int e_min = 5;
  int e_max = 31;
  std::vector<int> u_values = {128, 256, 512, 1024};
  sort::Variant variant = sort::Variant::CFMerge;
  /// Skip candidates whose occupancy is below this fraction of the best.
  double occupancy_slack = 0.75;
};

/// Enumerates and statically ranks candidates (best first).
[[nodiscard]] std::vector<TuneCandidate> enumerate_candidates(const gpusim::DeviceSpec& dev,
                                                              const TuneOptions& opts);

/// Measures the first `top_k` candidates with a calibration sort of
/// `tiles_per_candidate` tiles of uniform random keys; re-sorts the list by
/// measured throughput (best first).
///
/// With a persistent `store` (cache/store.hpp) the whole measurement sweep
/// becomes memoized across processes: the result is keyed by
/// (device digest, tune-request digest, key-type digest), so a disk hit
/// replays the stored ranking WITHOUT running a single calibration sort —
/// this is the cold-process warm-start the store exists for.  On a miss
/// the measured ranking is written back.  Any change to the device, the
/// candidate list, the measurement shape (top_k, tiles, seed), or the
/// variant changes the key and invalidates cleanly.
void measure_candidates(gpusim::Launcher& launcher, std::vector<TuneCandidate>& candidates,
                        const TuneOptions& opts, int top_k, int tiles_per_candidate,
                        std::uint64_t seed = 42, cache::PlanCacheStore* store = nullptr);

}  // namespace cfmerge::analysis
