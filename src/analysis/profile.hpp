// Conflict profiling helpers — the simulator-side replacement for the
// paper's use of nvprof.
#pragma once

#include <iosfwd>
#include <string>

#include "gpusim/stats.hpp"
#include "sort/merge_sort.hpp"
#include "sort/segmented_sort.hpp"

namespace cfmerge::analysis {

/// Per-phase conflict breakdown of a sort run, nvprof-style.
void print_phase_profile(std::ostream& os, const gpusim::PhaseCounters& phases,
                         std::int64_t n_elements);

/// Conflicts per element in the merge phases (the paper's "2 to 3 bank
/// conflicts per element on random inputs" metric is per element processed
/// per pass; this returns conflicts / (n * passes)).
[[nodiscard]] double merge_conflicts_per_element_pass(const sort::SortReport& report);

/// Average conflicts per warp-wide shared access in the merge phases
/// (Karsin et al.'s "conflicts per step").
[[nodiscard]] double merge_conflicts_per_access(const sort::SortReport& report);

/// One-line summary of a sort run.
[[nodiscard]] std::string summarize(const sort::SortReport& report, const std::string& label);

/// One-line summary of a segmented sort: serial sum vs. graph makespan and
/// the resulting overlap speedup.
[[nodiscard]] std::string summarize(const sort::SegmentedSortReport& report,
                                    const std::string& label);

}  // namespace cfmerge::analysis
