#include "analysis/experiment.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "analysis/profile.hpp"

namespace cfmerge::analysis {

SweepConfig SweepConfig::from_args(int argc, char** argv) {
  SweepConfig c;
  if (const char* full = std::getenv("CFMERGE_BENCH_FULL"); full && std::strcmp(full, "0") != 0) {
    c.imax = 17;
    c.reps = 5;
  }
  auto parse = [&](const char* arg, const char* key, auto& out) {
    const std::size_t klen = std::strlen(key);
    if (std::strncmp(arg, key, klen) == 0 && arg[klen] == '=')
      out = static_cast<std::remove_reference_t<decltype(out)>>(std::atoll(arg + klen + 1));
  };
  for (int i = 1; i < argc; ++i) {
    parse(argv[i], "--imin", c.imin);
    parse(argv[i], "--imax", c.imax);
    parse(argv[i], "--reps", c.reps);
    parse(argv[i], "--seed", c.seed);
    parse(argv[i], "--threads", c.threads);
  }
  if (c.imin < 1 || c.imax < c.imin || c.reps < 1)
    throw std::invalid_argument("SweepConfig: invalid sweep bounds");
  if (c.threads < 0) throw std::invalid_argument("SweepConfig: invalid thread count");
  return c;
}

std::vector<std::int64_t> SweepConfig::sizes(int e) const {
  std::vector<std::int64_t> out;
  for (int i = imin; i <= imax; ++i) out.push_back((std::int64_t{1} << i) * e);
  return out;
}

SortPoint run_sort_point(gpusim::Launcher& launcher, const workloads::WorkloadSpec& workload,
                         const sort::MergeConfig& cfg, int reps) {
  // Worst-case inputs are deterministic; averaging repetitions is only
  // meaningful for randomized distributions.
  if (workload.dist == workloads::Distribution::WorstCase) reps = 1;

  SortPoint point;
  point.n = workload.n;
  double conflicts_per_access_sum = 0.0;
  std::uint64_t conflict_sum = 0;
  for (int rep = 0; rep < reps; ++rep) {
    workloads::WorkloadSpec spec = workload;
    spec.seed = workload.seed + static_cast<std::uint64_t>(rep) * 7919;
    std::vector<std::int32_t> data = workloads::generate(spec);
    const sort::SortReport report = sort::merge_sort(launcher, data, cfg);
    if (!std::is_sorted(data.begin(), data.end()))
      throw std::runtime_error("run_sort_point: output not sorted");
    point.microseconds += report.microseconds;
    point.makespan_microseconds += report.makespan_microseconds;
    point.passes = report.passes;
    conflict_sum += report.merge_conflicts();
    conflicts_per_access_sum += merge_conflicts_per_access(report);
  }
  point.microseconds /= reps;
  point.makespan_microseconds /= reps;
  point.merge_conflicts = conflict_sum / static_cast<std::uint64_t>(reps);
  point.merge_conflicts_per_access = conflicts_per_access_sum / reps;
  point.throughput =
      point.microseconds > 0 ? static_cast<double>(point.n) / point.microseconds : 0.0;
  return point;
}

}  // namespace cfmerge::analysis
