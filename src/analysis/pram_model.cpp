#include "analysis/pram_model.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace cfmerge::analysis {

namespace {
std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

std::int64_t log2_ceil(std::int64_t x) {
  std::int64_t l = 0;
  while ((std::int64_t{1} << l) < x) ++l;
  return l;
}
}  // namespace

PramMergeKernel pram_merge_kernel(int w, int e, int u, std::int64_t la, std::int64_t lb) {
  if (w <= 0 || e <= 0 || u <= 0 || u % w != 0)
    throw std::invalid_argument("pram_merge_kernel: bad shape");
  if (la < 0 || lb < 0 || la + lb != static_cast<std::int64_t>(u) * e)
    throw std::invalid_argument("pram_merge_kernel: la + lb must equal u*E");

  const std::int64_t warps = u / w;
  const std::int64_t tile = static_cast<std::int64_t>(u) * e;

  PramMergeKernel k;
  // Staged copies touch each element exactly once; every warp-wide chunk of
  // w elements is one access (the last chunk of each list may be ragged).
  k.load_shared_accesses = ceil_div(la, w) + ceil_div(lb, w);
  // One extra request reads the block's partition boundaries.
  k.load_gmem_requests = k.load_shared_accesses + 1;
  k.gather_accesses = static_cast<std::int64_t>(e) * warps;
  k.output_scatter_accesses = static_cast<std::int64_t>(e) * warps;
  k.store_shared_accesses = ceil_div(tile, w);
  k.store_gmem_requests = ceil_div(tile, w);
  // Each lockstep search runs until the widest lane finishes: at most
  // ceil(log2(range + 1)) iterations with range <= min(la, lb, tile);
  // two searches (start and end diagonal) per warp.
  k.search_iterations_bound = 2 * warps * (log2_ceil(std::min({la, lb, tile}) + 1) + 1);
  return k;
}

std::int64_t pram_gather_steps(int e) { return e; }

std::int64_t pram_pass_shared_accesses(int w, int e, int u, int blocks) {
  // Independent of the split: load covers la + lb = tile elements.
  const std::int64_t warps = u / w;
  const std::int64_t tile = static_cast<std::int64_t>(u) * e;
  // Loads can split one extra chunk when la is ragged against w; use the
  // la = lb = tile/2 canonical form for the aggregate (exact when w | la).
  const std::int64_t per_block = ceil_div(tile, w)             // load (both lists)
                                 + 2 * e * warps               // gather + output
                                 + ceil_div(tile, w);          // store
  return per_block * blocks;
}

}  // namespace cfmerge::analysis
