// Minimal JSON serialization of simulation reports — for scripting around
// the CLI tool and the benchmark harnesses (no external dependency).
#pragma once

#include <iosfwd>
#include <string>

#include "sort/bitonic.hpp"
#include "sort/merge_arrays.hpp"
#include "sort/merge_sort.hpp"
#include "sort/segmented_sort.hpp"

namespace cfmerge::analysis {

/// Writes a JSON object describing a full sort run: configuration echo,
/// timing, totals, per-phase counters and per-kernel timings.
void write_json(std::ostream& os, const sort::SortReport& report,
                const sort::MergeConfig& cfg, const std::string& device,
                const std::string& workload);

/// Same for a standalone merge.
void write_json(std::ostream& os, const sort::MergeReport& report,
                const sort::MergeConfig& cfg, const std::string& device);

/// Same for a bitonic run.
void write_json(std::ostream& os, const sort::BitonicReport& report,
                const sort::BitonicConfig& cfg, const std::string& device,
                const std::string& workload);

/// Same for a segmented sort: graph timing (serial sum vs. makespan),
/// totals, phases, and the per-segment kernel index.
void write_json(std::ostream& os, const sort::SegmentedSortReport& report,
                const sort::MergeConfig& cfg, const std::string& device,
                const std::string& workload);

/// Escapes a string for embedding in JSON.
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace cfmerge::analysis
