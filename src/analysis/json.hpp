// Minimal JSON serialization of simulation reports — for scripting around
// the CLI tool and the benchmark harnesses (no external dependency).
#pragma once

#include <iosfwd>
#include <string>

#include "cfprims/permute.hpp"
#include "sort/bitonic.hpp"
#include "sort/engine.hpp"
#include "sort/merge_arrays.hpp"
#include "sort/merge_sort.hpp"
#include "sort/multiway_pass.hpp"
#include "sort/segmented_sort.hpp"
#include "verify/proof.hpp"

namespace cfmerge::analysis {

/// Writes a JSON object describing a full sort run: configuration echo,
/// timing, totals, per-phase counters and per-kernel timings.  When
/// `engine` is given, an "engine" field carries the plan-cache / arena
/// counters of the SortEngine that served the run.
void write_json(std::ostream& os, const sort::SortReport& report,
                const sort::MergeConfig& cfg, const std::string& device,
                const std::string& workload, const sort::EngineStats* engine = nullptr);

/// Same for a k-way multiway sort run — emits `kind:"multiway_sort"` with
/// the merge arity `k`, the multiway variant name, and the global pass
/// count alongside the usual totals / phases / kernels sections.
void write_json(std::ostream& os, const sort::SortReport& report,
                const sort::MultiwayConfig& cfg, const std::string& device,
                const std::string& workload, const sort::EngineStats* engine = nullptr);

/// Same for a standalone merge.
void write_json(std::ostream& os, const sort::MergeReport& report,
                const sort::MergeConfig& cfg, const std::string& device);

/// Same for a bitonic run.
void write_json(std::ostream& os, const sort::BitonicReport& report,
                const sort::BitonicConfig& cfg, const std::string& device,
                const std::string& workload);

/// Same for a segmented sort: graph timing (serial sum vs. makespan),
/// totals, phases, and the per-segment kernel index.  `engine` as above.
void write_json(std::ostream& os, const sort::SegmentedSortReport& report,
                const sort::MergeConfig& cfg, const std::string& device,
                const std::string& workload, const sort::EngineStats* engine = nullptr);

/// Same for a standalone cf_permute / cf_transpose run — emits
/// `kind:"cf_permute"` or `kind:"cf_transpose"` with the direction flag,
/// shape echo, timing, and the usual totals / phases / kernels sections.
void write_json(std::ostream& os, const cfprims::PermuteReport& report,
                const std::string& device, const std::string& workload,
                const sort::EngineStats* engine = nullptr);

/// Writes the engine's plan-cache / scratch-arena counters as one JSON
/// object (no trailing newline) — an embeddable fragment, e.g. the
/// "engine" field of the cfsort and sim_hotpath reports.
void write_json(std::ostream& os, const sort::EngineStats& stats);

/// Writes a cfverify run: every proof object with its steps (and
/// counterexample, if refuted), a per-arity "multiway" rollup of the k-way
/// cascade proofs and direct-claim refutations, the Theorem 8 worst-case
/// analyses, and the shadow-checker summary.  Top-level "ok" mirrors
/// VerifyReport::ok().
void write_json(std::ostream& os, const verify::VerifyReport& report);

/// Escapes a string for embedding in JSON.
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace cfmerge::analysis
