#include "analysis/autotune.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "cache/serial.hpp"
#include "cache/store.hpp"
#include "numtheory/hash.hpp"
#include "numtheory/numtheory.hpp"
#include "sort/cost_model.hpp"
#include "sort/merge_sort.hpp"
#include "sort/plan_key.hpp"

namespace cfmerge::analysis {

std::vector<TuneCandidate> enumerate_candidates(const gpusim::DeviceSpec& dev,
                                                const TuneOptions& opts) {
  if (opts.e_min < 1 || opts.e_max < opts.e_min)
    throw std::invalid_argument("enumerate_candidates: bad E range");
  std::vector<TuneCandidate> out;
  for (const int u : opts.u_values) {
    if (u <= 0 || u % dev.warp_size != 0 || u > dev.max_threads_per_sm) continue;
    // The block sort needs a power-of-two u.
    if ((u & (u - 1)) != 0) continue;
    for (int e = opts.e_min; e <= opts.e_max; ++e) {
      TuneCandidate c;
      c.e = e;
      c.u = u;
      c.tile = static_cast<std::int64_t>(u) * e;
      c.coprime = numtheory::coprime(dev.warp_size, e);
      const int regs = opts.variant == sort::Variant::CFMerge
                           ? sort::cost::cfmerge_regs_per_thread(e)
                           : sort::cost::baseline_regs_per_thread(e);
      const auto occ = gpusim::compute_occupancy(
          dev, u, static_cast<std::size_t>(c.tile) * sizeof(std::int32_t), regs);
      if (occ.blocks_per_sm == 0) continue;  // does not fit
      c.occupancy = occ.occupancy;
      c.limiter = occ.limiter;
      c.static_score = c.occupancy * (c.coprime ? 1.0 : 0.85);
      out.push_back(c);
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const TuneCandidate& a, const TuneCandidate& b) {
    if (a.static_score != b.static_score) return a.static_score > b.static_score;
    return a.tile > b.tile;  // larger tiles amortize partition/launch costs
  });
  // Drop candidates far below the best occupancy.
  if (!out.empty()) {
    double best_occ = 0.0;
    for (const TuneCandidate& c : out) best_occ = std::max(best_occ, c.occupancy);
    std::erase_if(out, [&](const TuneCandidate& c) {
      return c.occupancy < best_occ * opts.occupancy_slack;
    });
  }
  return out;
}

namespace {

/// Record format version of the persisted tune result.
constexpr std::uint8_t kTuneRecordVersion = 1;

/// Store key of one measurement request: record tag, device digest, then a
/// digest over everything that determines the measured outcome — the
/// variant, the measurement shape, the calibration key type, and the
/// ordered candidate list itself (so a different enumeration never aliases).
std::vector<std::byte> tune_store_key(const gpusim::DeviceSpec& dev,
                                      const std::vector<TuneCandidate>& candidates,
                                      const TuneOptions& opts, int limit,
                                      int tiles_per_candidate, std::uint64_t seed) {
  using numtheory::fnv1a;
  std::uint64_t shape = fnv1a(numtheory::kFnvOffset,
                              static_cast<std::uint64_t>(opts.variant));
  shape = fnv1a(shape, static_cast<std::int64_t>(limit));
  shape = fnv1a(shape, static_cast<std::int64_t>(tiles_per_candidate));
  shape = fnv1a(shape, seed);
  for (const TuneCandidate& c : candidates) {
    shape = fnv1a(shape, static_cast<std::int64_t>(c.e));
    shape = fnv1a(shape, static_cast<std::int64_t>(c.u));
  }
  cache::ByteWriter w;
  w.str("tune");
  w.u64(dev.digest());
  w.u64(shape);
  w.u64(sort::type_digest<std::int32_t>().bits);  // the calibration key type
  return w.take();
}

/// Replays a persisted ranking onto `candidates`: restores each measured
/// candidate's throughput and the final order of the measured prefix.
/// Returns false (leaving `candidates` untouched) on any malformation.
bool apply_tune_record(std::span<const std::byte> record,
                       std::vector<TuneCandidate>& candidates, int limit) {
  cache::ByteReader r(record);
  if (r.u8() != kTuneRecordVersion) return false;
  const std::uint32_t count = r.u32();
  if (!r.ok() || count != static_cast<std::uint32_t>(limit)) return false;
  std::vector<TuneCandidate> ranked;
  ranked.reserve(count);
  std::vector<bool> used(static_cast<std::size_t>(limit), false);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto e = static_cast<int>(r.i64());
    const auto u = static_cast<int>(r.i64());
    const double throughput = r.f64();
    if (!r.ok()) return false;
    bool found = false;
    for (int j = 0; j < limit; ++j) {
      auto& c = candidates[static_cast<std::size_t>(j)];
      if (!used[static_cast<std::size_t>(j)] && c.e == e && c.u == u) {
        c.measured_throughput = throughput;
        ranked.push_back(c);
        used[static_cast<std::size_t>(j)] = true;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  if (!r.at_end()) return false;
  std::copy(ranked.begin(), ranked.end(), candidates.begin());
  return true;
}

std::vector<std::byte> encode_tune_record(const std::vector<TuneCandidate>& candidates,
                                          int limit) {
  cache::ByteWriter w;
  w.u8(kTuneRecordVersion);
  w.u32(static_cast<std::uint32_t>(limit));
  for (int i = 0; i < limit; ++i) {
    const TuneCandidate& c = candidates[static_cast<std::size_t>(i)];
    w.i64(c.e);
    w.i64(c.u);
    w.f64(c.measured_throughput);
  }
  return w.take();
}

}  // namespace

void measure_candidates(gpusim::Launcher& launcher, std::vector<TuneCandidate>& candidates,
                        const TuneOptions& opts, int top_k, int tiles_per_candidate,
                        std::uint64_t seed, cache::PlanCacheStore* store) {
  const int limit = std::min<int>(top_k, static_cast<int>(candidates.size()));
  if (limit <= 0) return;

  // Cross-process short-circuit: a persisted ranking for this exact request
  // replaces the whole calibration sweep.
  std::vector<std::byte> key;
  if (store != nullptr) {
    key = tune_store_key(launcher.device(), candidates, opts, limit,
                         tiles_per_candidate, seed);
    if (const auto record = store->lookup(key);
        record.has_value() && apply_tune_record(*record, candidates, limit))
      return;
  }

  std::mt19937_64 rng(seed);
  for (int i = 0; i < limit; ++i) {
    TuneCandidate& c = candidates[static_cast<std::size_t>(i)];
    sort::MergeConfig cfg;
    cfg.e = c.e;
    cfg.u = c.u;
    cfg.variant = opts.variant;
    std::vector<std::int32_t> data(
        static_cast<std::size_t>(c.tile) * static_cast<std::size_t>(tiles_per_candidate));
    for (auto& x : data) x = static_cast<std::int32_t>(rng());
    const auto report = sort::merge_sort(launcher, data, cfg);
    if (!std::is_sorted(data.begin(), data.end()))
      throw std::runtime_error("measure_candidates: sort bug");
    c.measured_throughput = report.throughput();
  }
  std::stable_sort(candidates.begin(), candidates.begin() + limit,
                   [](const TuneCandidate& a, const TuneCandidate& b) {
                     return a.measured_throughput > b.measured_throughput;
                   });
  if (store != nullptr) store->insert(key, encode_tune_record(candidates, limit));
}

}  // namespace cfmerge::analysis
