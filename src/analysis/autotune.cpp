#include "analysis/autotune.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "numtheory/numtheory.hpp"
#include "sort/cost_model.hpp"
#include "sort/merge_sort.hpp"

namespace cfmerge::analysis {

std::vector<TuneCandidate> enumerate_candidates(const gpusim::DeviceSpec& dev,
                                                const TuneOptions& opts) {
  if (opts.e_min < 1 || opts.e_max < opts.e_min)
    throw std::invalid_argument("enumerate_candidates: bad E range");
  std::vector<TuneCandidate> out;
  for (const int u : opts.u_values) {
    if (u <= 0 || u % dev.warp_size != 0 || u > dev.max_threads_per_sm) continue;
    // The block sort needs a power-of-two u.
    if ((u & (u - 1)) != 0) continue;
    for (int e = opts.e_min; e <= opts.e_max; ++e) {
      TuneCandidate c;
      c.e = e;
      c.u = u;
      c.tile = static_cast<std::int64_t>(u) * e;
      c.coprime = numtheory::coprime(dev.warp_size, e);
      const int regs = opts.variant == sort::Variant::CFMerge
                           ? sort::cost::cfmerge_regs_per_thread(e)
                           : sort::cost::baseline_regs_per_thread(e);
      const auto occ = gpusim::compute_occupancy(
          dev, u, static_cast<std::size_t>(c.tile) * sizeof(std::int32_t), regs);
      if (occ.blocks_per_sm == 0) continue;  // does not fit
      c.occupancy = occ.occupancy;
      c.limiter = occ.limiter;
      c.static_score = c.occupancy * (c.coprime ? 1.0 : 0.85);
      out.push_back(c);
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const TuneCandidate& a, const TuneCandidate& b) {
    if (a.static_score != b.static_score) return a.static_score > b.static_score;
    return a.tile > b.tile;  // larger tiles amortize partition/launch costs
  });
  // Drop candidates far below the best occupancy.
  if (!out.empty()) {
    double best_occ = 0.0;
    for (const TuneCandidate& c : out) best_occ = std::max(best_occ, c.occupancy);
    std::erase_if(out, [&](const TuneCandidate& c) {
      return c.occupancy < best_occ * opts.occupancy_slack;
    });
  }
  return out;
}

void measure_candidates(gpusim::Launcher& launcher, std::vector<TuneCandidate>& candidates,
                        const TuneOptions& opts, int top_k, int tiles_per_candidate,
                        std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const int limit = std::min<int>(top_k, static_cast<int>(candidates.size()));
  for (int i = 0; i < limit; ++i) {
    TuneCandidate& c = candidates[static_cast<std::size_t>(i)];
    sort::MergeConfig cfg;
    cfg.e = c.e;
    cfg.u = c.u;
    cfg.variant = opts.variant;
    std::vector<std::int32_t> data(
        static_cast<std::size_t>(c.tile) * static_cast<std::size_t>(tiles_per_candidate));
    for (auto& x : data) x = static_cast<std::int32_t>(rng());
    const auto report = sort::merge_sort(launcher, data, cfg);
    if (!std::is_sorted(data.begin(), data.end()))
      throw std::runtime_error("measure_candidates: sort bug");
    c.measured_throughput = report.throughput();
  }
  std::stable_sort(candidates.begin(), candidates.begin() + limit,
                   [](const TuneCandidate& a, const TuneCandidate& b) {
                     return a.measured_throughput > b.measured_throughput;
                   });
}

}  // namespace cfmerge::analysis
