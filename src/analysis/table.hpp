// ASCII table and CSV writers used by the benchmark harnesses.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cfmerge::analysis {

/// A simple column-aligned text table with an optional title, printable to
/// any ostream, plus CSV export.
class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Formats a double with `prec` significant decimals.
  static std::string num(double v, int prec = 2);
  static std::string integer(long long v);

  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cfmerge::analysis
