// Persistent, cross-process plan & autotune cache.
//
// The disk-backed half of the plan-identity refactor (sort/plan_key.hpp):
// a content-addressed key/value store that survives process death, so the
// second `cfsort` run on a machine warm-starts from what the first one
// learned.  What goes in it:
//
//  * plan metadata, keyed by (device digest, serialized PlanKey) — written
//    by SortEngine on every plan build, consulted on every in-memory miss;
//  * autotune measurements, keyed by (device digest, tune-request digest) —
//    written by analysis::measure_candidates, whose disk hit short-circuits
//    the whole calibration-sort sweep (the expensive part).
//
// The design follows libgpuarray's disk kernel cache: hash-keyed entries,
// a versioned header, an LRU size cap — adapted to a single-file format
// with a write-temp-then-rename commit protocol instead of SQL.
//
// Robustness contract (pinned by tests/test_plan_cache.cpp):
//  * A truncated, corrupted, or version-mismatched file is IGNORED — the
//    store loads empty, counts `corrupt`, and the next save rebuilds it.
//    Loading never throws on bad bytes.
//  * save() is atomic: the new image is written to a sibling temp file and
//    renamed over the store file, so a reader in another process sees
//    either the old or the new image, never a torn one.
//  * save() merges first: entries another process persisted since our load
//    are re-read and kept (ours win on key conflicts), so two processes
//    interleaving save() lose nothing but LRU precision.
//  * Entries beyond `max_bytes` are evicted oldest-`last_used` first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <vector>

namespace cfmerge::cache {

/// Counters of one store instance's traffic plus a snapshot of contents.
struct StoreStats {
  std::uint64_t hits = 0;       ///< lookups that found a persisted entry
  std::uint64_t misses = 0;     ///< lookups that found nothing
  std::uint64_t writes = 0;     ///< inserts (new or overwriting)
  std::uint64_t evictions = 0;  ///< entries dropped by the LRU size cap
  std::uint64_t corrupt = 0;    ///< unreadable files ignored at load/merge
  std::uint64_t entries = 0;    ///< entries held right now (snapshot)
  std::uint64_t bytes = 0;      ///< serialized size right now (snapshot)
};

class PlanCacheStore {
 public:
  /// Bump when the file layout changes; older files are ignored as corrupt.
  static constexpr std::uint32_t kFormatVersion = 1;
  static constexpr std::uint64_t kDefaultMaxBytes = 4ull << 20;  // 4 MiB
  /// The store file inside the cache directory.
  static constexpr const char* kFileName = "cfmerge-plan-cache.bin";

  /// Opens (creating the directory if needed) and loads the store under
  /// `dir`.  A missing file is an empty store; an unreadable one is
  /// ignored and counted in stats().corrupt.
  explicit PlanCacheStore(std::filesystem::path dir,
                          std::uint64_t max_bytes = kDefaultMaxBytes);
  PlanCacheStore(const PlanCacheStore&) = delete;
  PlanCacheStore& operator=(const PlanCacheStore&) = delete;
  /// Best-effort save of unsaved writes (errors are swallowed — a cache).
  ~PlanCacheStore();

  /// Returns the value persisted under `key`, bumping its LRU stamp.
  [[nodiscard]] std::optional<std::vector<std::byte>> lookup(
      std::span<const std::byte> key);

  /// Inserts or overwrites `key`, then evicts oldest entries over the cap.
  void insert(std::span<const std::byte> key, std::span<const std::byte> value);

  /// Merges concurrent on-disk writes, evicts to the cap, and atomically
  /// commits the image (write temp + rename).  Returns false on I/O error
  /// (the in-memory store stays usable either way).
  bool save();

  /// Deletes the store file under `dir`.  Returns true when the file is
  /// gone afterwards (including when it never existed).
  static bool clear(const std::filesystem::path& dir);

  /// Drops every in-memory entry AND the on-disk image (counters survive);
  /// save() then commits an empty store — merge-on-save cannot resurrect
  /// cleared entries because the file is gone.
  void clear_entries();

  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] const std::filesystem::path& file_path() const { return file_; }
  [[nodiscard]] std::uint64_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    std::vector<std::byte> key;
    std::vector<std::byte> value;
    std::uint64_t last_used = 0;
  };

  [[nodiscard]] Entry* find(std::span<const std::byte> key);
  /// Parses `bytes` as a store image into `out`; returns false (leaving
  /// `out` untouched) on any malformation.
  static bool parse(std::span<const std::byte> bytes, std::vector<Entry>& out,
                    std::uint64_t& clock);
  void load();
  void merge_from_disk();
  void evict_to_cap();
  [[nodiscard]] std::uint64_t serialized_bytes() const;
  [[nodiscard]] std::vector<std::byte> serialize() const;

  std::filesystem::path dir_;
  std::filesystem::path file_;
  std::uint64_t max_bytes_;
  std::uint64_t clock_ = 0;  ///< logical LRU clock, persisted in the header
  bool dirty_ = false;
  std::vector<Entry> entries_;
  StoreStats stats_;  ///< cumulative fields; entries/bytes filled in stats()
};

}  // namespace cfmerge::cache
