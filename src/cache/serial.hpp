// Canonical byte serialization for cache records.
//
// Every value that crosses a process boundary (plan keys, device digests,
// autotune records, the store file itself) is encoded through these two
// helpers so the byte layout is explicit and platform-independent:
// fixed-width little-endian integers, IEEE-754 doubles by bit pattern,
// length-prefixed byte strings.  No in-memory struct is ever written raw —
// padding and host endianness never leak into a file.
//
// ByteReader is bounds-checked and *non-throwing*: a read past the end
// flips `ok()` to false and returns zeroes.  Callers validate once at the
// end, which is what makes truncated or corrupted store files safe to load
// (cache/store.cpp ignores them and rebuilds).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cfmerge::cache {

/// Appends canonical little-endian encodings to a growing byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  /// Length-prefixed (u32) byte string.
  void bytes(std::span<const std::byte> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    buf_.insert(buf_.end(), v.begin(), v.end());
  }
  void str(std::string_view v) {
    bytes(std::span<const std::byte>(reinterpret_cast<const std::byte*>(v.data()),
                                     v.size()));
  }

  [[nodiscard]] const std::vector<std::byte>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked reader over a byte span.  Reads past the end return zero
/// values and latch `ok() == false`; callers check once after parsing.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    if (pos_ + 1 > data_.size()) return fail();
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v = 0;
    if (pos_ + 4 > data_.size()) return fail();
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_++])) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    if (pos_ + 8 > data_.size()) {
      fail();
      return 0;
    }
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_++])) << (8 * i);
    return v;
  }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  /// Length-prefixed byte string; an over-long prefix fails the reader.
  [[nodiscard]] std::vector<std::byte> bytes() {
    const std::uint32_t n = u32();
    if (!ok_ || pos_ + n > data_.size()) {
      fail();
      return {};
    }
    std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  [[nodiscard]] std::string str() {
    const std::vector<std::byte> b = bytes();
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool at_end() const { return ok_ && pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const {
    return ok_ ? data_.size() - pos_ : 0;
  }

 private:
  std::uint8_t fail() {
    ok_ = false;
    pos_ = data_.size();
    return 0;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace cfmerge::cache
