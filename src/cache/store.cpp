#include "cache/store.hpp"

#include <algorithm>
#include <fstream>
#include <system_error>

#include "cache/serial.hpp"
#include "numtheory/hash.hpp"

namespace cfmerge::cache {

namespace {

// "CFPC" little-endian.
constexpr std::uint32_t kMagic = 0x43504643u;
// Fixed per-entry bookkeeping in the serialized image: two u32 length
// prefixes plus the u64 LRU stamp.
constexpr std::uint64_t kEntryOverhead = 4 + 4 + 8;

std::optional<std::vector<std::byte>> read_file(const std::filesystem::path& p) {
  std::ifstream f(p, std::ios::binary);
  if (!f) return std::nullopt;
  std::vector<char> raw((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
  if (!f.good() && !f.eof()) return std::nullopt;
  std::vector<std::byte> out(raw.size());
  std::transform(raw.begin(), raw.end(), out.begin(),
                 [](char c) { return static_cast<std::byte>(c); });
  return out;
}

}  // namespace

PlanCacheStore::PlanCacheStore(std::filesystem::path dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), file_(dir_ / kFileName), max_bytes_(max_bytes) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort; save() reports
  load();
}

PlanCacheStore::~PlanCacheStore() {
  if (dirty_) save();  // best effort — this is a cache
}

bool PlanCacheStore::parse(std::span<const std::byte> bytes, std::vector<Entry>& out,
                           std::uint64_t& clock) {
  ByteReader r(bytes);
  if (r.u32() != kMagic) return false;
  if (r.u32() != kFormatVersion) return false;
  const std::uint64_t file_clock = r.u64();
  const std::uint32_t count = r.u32();
  const std::uint64_t checksum = r.u64();
  if (!r.ok()) return false;
  // The checksum covers exactly the entries region that follows the header.
  const std::size_t body_off = bytes.size() - r.remaining();
  if (numtheory::fnv1a_bytes(numtheory::kFnvOffset, bytes.subspan(body_off)) != checksum)
    return false;
  std::vector<Entry> parsed;
  parsed.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry e;
    e.key = r.bytes();
    e.value = r.bytes();
    e.last_used = r.u64();
    if (!r.ok()) return false;
    parsed.push_back(std::move(e));
  }
  if (!r.at_end()) return false;  // trailing garbage
  out = std::move(parsed);
  clock = file_clock;
  return true;
}

void PlanCacheStore::load() {
  const auto bytes = read_file(file_);
  if (!bytes.has_value()) return;  // no file yet: empty store
  std::vector<Entry> parsed;
  std::uint64_t clock = 0;
  if (!parse(*bytes, parsed, clock)) {
    ++stats_.corrupt;  // ignored and rebuilt on the next save
    return;
  }
  entries_ = std::move(parsed);
  clock_ = std::max(clock_, clock);
}

PlanCacheStore::Entry* PlanCacheStore::find(std::span<const std::byte> key) {
  for (Entry& e : entries_) {
    if (e.key.size() == key.size() && std::equal(key.begin(), key.end(), e.key.begin()))
      return &e;
  }
  return nullptr;
}

std::optional<std::vector<std::byte>> PlanCacheStore::lookup(
    std::span<const std::byte> key) {
  if (Entry* e = find(key)) {
    e->last_used = ++clock_;
    dirty_ = true;  // the LRU bump is worth persisting
    ++stats_.hits;
    return e->value;
  }
  ++stats_.misses;
  return std::nullopt;
}

void PlanCacheStore::insert(std::span<const std::byte> key,
                            std::span<const std::byte> value) {
  ++stats_.writes;
  dirty_ = true;
  if (Entry* e = find(key)) {
    e->value.assign(value.begin(), value.end());
    e->last_used = ++clock_;
  } else {
    entries_.push_back(Entry{{key.begin(), key.end()}, {value.begin(), value.end()},
                             ++clock_});
  }
  evict_to_cap();
}

void PlanCacheStore::merge_from_disk() {
  const auto bytes = read_file(file_);
  if (!bytes.has_value()) return;
  std::vector<Entry> disk;
  std::uint64_t disk_clock = 0;
  if (!parse(*bytes, disk, disk_clock)) {
    ++stats_.corrupt;
    return;
  }
  clock_ = std::max(clock_, disk_clock);
  for (Entry& e : disk) {
    // Ours win on conflict: this process's writes are the freshest.
    if (find(e.key) == nullptr) entries_.push_back(std::move(e));
  }
}

void PlanCacheStore::evict_to_cap() {
  std::uint64_t total = serialized_bytes();
  while (total > max_bytes_ && !entries_.empty()) {
    std::size_t oldest = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i)
      if (entries_[i].last_used < entries_[oldest].last_used) oldest = i;
    total -= kEntryOverhead + entries_[oldest].key.size() + entries_[oldest].value.size();
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(oldest));
    ++stats_.evictions;
    dirty_ = true;
  }
}

std::uint64_t PlanCacheStore::serialized_bytes() const {
  std::uint64_t total = 4 + 4 + 8 + 4 + 8;  // header
  for (const Entry& e : entries_) total += kEntryOverhead + e.key.size() + e.value.size();
  return total;
}

std::vector<std::byte> PlanCacheStore::serialize() const {
  ByteWriter body;
  for (const Entry& e : entries_) {
    body.bytes(e.key);
    body.bytes(e.value);
    body.u64(e.last_used);
  }
  ByteWriter w;
  w.u32(kMagic);
  w.u32(kFormatVersion);
  w.u64(clock_);
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  w.u64(numtheory::fnv1a_bytes(numtheory::kFnvOffset, body.data()));
  std::vector<std::byte> out = w.take();
  out.insert(out.end(), body.data().begin(), body.data().end());
  return out;
}

bool PlanCacheStore::save() {
  merge_from_disk();
  evict_to_cap();
  const std::vector<std::byte> image = serialize();

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // A per-process temp name keeps two concurrent savers off each other's
  // half-written files; the rename commit is atomic within the directory.
  const std::filesystem::path tmp =
      file_.string() + ".tmp." + std::to_string(static_cast<unsigned long long>(
                                     reinterpret_cast<std::uintptr_t>(this)));
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
    if (!f.good()) {
      f.close();
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, file_, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  dirty_ = false;
  return true;
}

bool PlanCacheStore::clear(const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::remove(dir / kFileName, ec);
  return !std::filesystem::exists(dir / kFileName, ec);
}

void PlanCacheStore::clear_entries() {
  entries_.clear();
  dirty_ = true;
  // Drop the on-disk image too: merge-on-save would otherwise resurrect
  // the cleared entries at the next save().
  std::error_code ec;
  std::filesystem::remove(file_, ec);
}

StoreStats PlanCacheStore::stats() const {
  StoreStats s = stats_;
  s.entries = entries_.size();
  s.bytes = serialized_bytes();
  return s;
}

}  // namespace cfmerge::cache
