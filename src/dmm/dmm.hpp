// The Distributed Memory Machine (DMM) — the paper's Section 2 model.
//
// A DMM (Mehlhorn & Vishkin 1984) has w synchronous processors and w memory
// modules; in one step each processor issues at most one access, and a
// module serves one request per unit time, so a step with congestion c
// (max requests per module) takes c time.  GPU shared memory maps onto the
// DMM directly: banks = modules, the lanes of a warp = processors — which
// is why "bank conflict free" algorithms admit PRAM-style analysis.
//
// The module also implements the address-to-module maps discussed in the
// granularity-of-parallel-memories literature the paper surveys:
//  * DirectMap   — module = address mod w (real GPU hardware),
//  * OffsetMap   — module = (address + floor(address/w) * s) mod w
//                  (static skewing, the classic array-padding trick),
//  * UniversalHashMap — module = ((a*x + b) mod p) mod w, a Carter-Wegman
//                  family (the randomized simulations of Czumaj et al. and
//                  Karp et al.; the paper notes their overheads make them
//                  impractical, which bench/dmm_mappings quantifies).
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <span>
#include <string>
#include <vector>

namespace cfmerge::dmm {

/// Address-to-module mapping strategy.
class ModuleMap {
 public:
  virtual ~ModuleMap() = default;
  [[nodiscard]] virtual int module(std::int64_t address) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Extra work per access this mapping costs on a real machine (index
  /// arithmetic; hashing needs a multiply+mod chain).
  [[nodiscard]] virtual int overhead_ops() const = 0;
};

/// module = address mod w — what NVIDIA shared memory does.
class DirectMap final : public ModuleMap {
 public:
  explicit DirectMap(int w);
  [[nodiscard]] int module(std::int64_t address) const override;
  [[nodiscard]] std::string name() const override { return "direct"; }
  [[nodiscard]] int overhead_ops() const override { return 0; }

 private:
  int w_;
};

/// module = (address + skew * row) mod w with row = address / w — static
/// skewing equivalent to padding each row of a w-column matrix.
class OffsetMap final : public ModuleMap {
 public:
  OffsetMap(int w, int skew);
  [[nodiscard]] int module(std::int64_t address) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int overhead_ops() const override { return 2; }

 private:
  int w_;
  int skew_;
};

/// Carter-Wegman universal hashing onto modules.
class UniversalHashMap final : public ModuleMap {
 public:
  /// Draws (a, b) from a seeded RNG; p is a Mersenne prime 2^31 - 1.
  UniversalHashMap(int w, std::uint64_t seed);
  [[nodiscard]] int module(std::int64_t address) const override;
  [[nodiscard]] std::string name() const override { return "universal-hash"; }
  [[nodiscard]] int overhead_ops() const override { return 4; }

 private:
  int w_;
  std::uint64_t a_;
  std::uint64_t b_;
  static constexpr std::uint64_t kPrime = (1ull << 31) - 1;
};

/// Cost of one DMM step under a mapping.
struct StepCost {
  int congestion = 0;  ///< max distinct requests on one module (0 if idle)
  int active = 0;      ///< participating processors
};

/// Evaluates one synchronous step: `addresses[p]` is processor p's request
/// (-1 = idle).  Requests to the same address on the same module count once
/// (combining / broadcast, as on GPUs).
[[nodiscard]] StepCost step_cost(const ModuleMap& map,
                                 std::span<const std::int64_t> addresses);

/// Aggregate delay of an access schedule: sum over steps of congestion.
/// `schedule[t]` holds step t's per-processor addresses.
struct ScheduleCost {
  std::int64_t total_delay = 0;       ///< Σ congestion (unit-time modules)
  std::int64_t ideal_steps = 0;       ///< number of non-empty steps (PRAM time)
  int max_congestion = 0;
  std::int64_t overhead_ops = 0;      ///< mapping arithmetic, Σ active * per-access

  /// Slowdown versus an ideal PRAM executing one step per time unit.
  [[nodiscard]] double slowdown() const {
    return ideal_steps > 0 ? static_cast<double>(total_delay) / static_cast<double>(ideal_steps)
                           : 0.0;
  }
};

[[nodiscard]] ScheduleCost schedule_cost(
    const ModuleMap& map, std::span<const std::vector<std::int64_t>> schedule);

/// Builds the DMM access schedule of a gather RoundSchedule warp (one step
/// per round) — the bridge between the GPU simulator and the DMM model.
class GatherScheduleAdapter {
 public:
  /// `phys[t][p]`: physical address read by processor p in step t.
  static std::vector<std::vector<std::int64_t>> from_physical(
      std::span<const std::vector<std::int64_t>> phys);
};

}  // namespace cfmerge::dmm
