#include "dmm/dmm.hpp"

#include <algorithm>
#include <stdexcept>

#include "numtheory/numtheory.hpp"

namespace cfmerge::dmm {

DirectMap::DirectMap(int w) : w_(w) {
  if (w <= 0) throw std::invalid_argument("DirectMap: w must be positive");
}

int DirectMap::module(std::int64_t address) const {
  return static_cast<int>(numtheory::mod(address, w_));
}

OffsetMap::OffsetMap(int w, int skew) : w_(w), skew_(skew) {
  if (w <= 0) throw std::invalid_argument("OffsetMap: w must be positive");
  if (skew < 0) throw std::invalid_argument("OffsetMap: skew must be non-negative");
}

int OffsetMap::module(std::int64_t address) const {
  const std::int64_t row = address / w_;
  return static_cast<int>(numtheory::mod(address + skew_ * row, w_));
}

std::string OffsetMap::name() const { return "offset-skew" + std::to_string(skew_); }

UniversalHashMap::UniversalHashMap(int w, std::uint64_t seed) : w_(w) {
  if (w <= 0) throw std::invalid_argument("UniversalHashMap: w must be positive");
  std::mt19937_64 rng(seed);
  a_ = rng() % (kPrime - 1) + 1;  // a in [1, p-1]
  b_ = rng() % kPrime;            // b in [0, p-1]
}

int UniversalHashMap::module(std::int64_t address) const {
  const std::uint64_t x = static_cast<std::uint64_t>(address) % kPrime;
  const std::uint64_t h = (a_ * x + b_) % kPrime;
  return static_cast<int>(h % static_cast<std::uint64_t>(w_));
}

StepCost step_cost(const ModuleMap& map, std::span<const std::int64_t> addresses) {
  StepCost cost;
  // Deduplicate same-address requests (combining), then count per module.
  std::vector<std::int64_t> active;
  active.reserve(addresses.size());
  for (const std::int64_t a : addresses) {
    if (a < 0) continue;
    ++cost.active;
    active.push_back(a);
  }
  if (active.empty()) return cost;
  std::sort(active.begin(), active.end());
  active.erase(std::unique(active.begin(), active.end()), active.end());
  std::vector<int> load;
  for (const std::int64_t a : active) {
    const int m = map.module(a);
    if (m >= static_cast<int>(load.size())) load.resize(static_cast<std::size_t>(m) + 1, 0);
    cost.congestion = std::max(cost.congestion, ++load[static_cast<std::size_t>(m)]);
  }
  return cost;
}

ScheduleCost schedule_cost(const ModuleMap& map,
                           std::span<const std::vector<std::int64_t>> schedule) {
  ScheduleCost cost;
  for (const auto& step : schedule) {
    const StepCost sc = step_cost(map, step);
    if (sc.active == 0) continue;
    ++cost.ideal_steps;
    cost.total_delay += sc.congestion;
    cost.max_congestion = std::max(cost.max_congestion, sc.congestion);
    cost.overhead_ops += static_cast<std::int64_t>(sc.active) * map.overhead_ops();
  }
  return cost;
}

std::vector<std::vector<std::int64_t>> GatherScheduleAdapter::from_physical(
    std::span<const std::vector<std::int64_t>> phys) {
  return {phys.begin(), phys.end()};
}

}  // namespace cfmerge::dmm
