// Proof objects and reports of the static bank-conflict verifier.
//
// A ProofObject is a machine-checked derivation: a list of named steps, each
// of which either passed (with the evidence recorded in `detail`) or failed.
// A schedule is *proved* conflict-free only when every step passed; a failed
// derivation carries a concrete Counterexample — a lane pair, round and
// address pair that collide in a bank — which the tests replay dynamically
// against shared_access_cost.
//
// VerifyReport aggregates Pass 1 proofs and the Pass 2 shadow-checker
// results for one cfverify run; analysis::write_json knows how to emit it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cfmerge::verify {

enum class StepStatus { kPassed, kFailed, kSkipped };

struct ProofStep {
  std::string name;    ///< e.g. "residue-invariant"
  StepStatus status = StepStatus::kPassed;
  std::string detail;  ///< evidence (derivation, table summary) or failure reason
};

/// A concrete bank collision: two lanes of one warp whose round-j reads land
/// in the same bank, together with the schedule instance that produces it.
/// The static safety pass (Pass 3) reuses the same carrier for its
/// lane/epoch witnesses, with `kind` naming the violated property:
///  * "out-of-bounds"       — lane1 touches addr1; the valid range is
///                            [0, addr2) (addr2 carries tile_words);
///  * "uninitialized-read"  — lane1 reads addr1 in `epoch` with no covering
///                            write in any earlier epoch;
///  * "write-write-race"    — lane1 and lane2 both write addr1 == addr2
///                            within one epoch.
/// An empty `kind` is the legacy Pass 1 bank-collision witness.
struct Counterexample {
  int w = 0;
  int e = 0;
  int u = 0;                           ///< threads per block of the witness
  std::int64_t la = 0;                 ///< witness |A|
  std::vector<std::int64_t> a_sizes;   ///< witness per-thread |A_i|
  int round = 0;                       ///< round j of the collision
  int lane1 = 0;
  int lane2 = 0;
  std::int64_t addr1 = 0;              ///< physical shared positions
  std::int64_t addr2 = 0;
  int bank = 0;
  int epoch = 0;                       ///< barrier epoch (safety witnesses)
  std::string kind;                    ///< safety property violated; "" = bank

  [[nodiscard]] std::string str() const;
};

enum class Verdict {
  kProved,          ///< conflict-free for the whole (w, E) family
  kCounterexample,  ///< refuted, concrete witness attached
  kRefutedNoWitness ///< a proof step failed but bounded search found no witness
};

struct ProofObject {
  std::string schedule;  ///< "cf_gather", "cf_gather_no_pi", "bitonic_padded", ...
  /// Registered CFPrimitive this proof certifies/refutes (empty for the
  /// legacy non-primitive objects: multiway cascades, bitonic, worst-case).
  /// The JSON "primitives" rollup groups by this.
  std::string family;
  int w = 0;
  int e = 0;
  int k = 0;             ///< merge arity (0 for the pairwise schedules)
  std::int64_t d = 0;    ///< gcd(w, E)
  Verdict verdict = Verdict::kProved;
  std::vector<ProofStep> steps;
  Counterexample counterexample;  ///< meaningful iff verdict == kCounterexample
  /// What the proof quantifies over, e.g. "all u = k*w, all merge-path splits".
  std::string scope;

  [[nodiscard]] bool proved() const { return verdict == Verdict::kProved; }
  ProofStep& add_step(std::string name);
};

/// Static analysis of the baseline serial merge on a Theorem 8 worst-case
/// warp: the exact conflict count derived from the access-pattern walk, the
/// paper's closed form, and data-independent degree bounds.
struct WorstCaseAnalysis {
  int w = 0;
  int e = 0;
  std::int64_t exact_conflicts = 0;   ///< static walk over the forced decisions
  std::int64_t closed_form = 0;       ///< predicted_warp_conflicts (Theorem 8)
  std::int64_t min_bound = 0;         ///< guaranteed lower bound, any data
  std::int64_t max_bound = 0;         ///< guaranteed upper bound, any data
  std::int64_t accesses = 0;          ///< warp-wide shared accesses walked
};

/// One shadow-checker violation (Pass 2).
struct ShadowViolation {
  std::string kind;   ///< "uninitialized-read", "write-write-race",
                      ///< "out-of-bounds", "conflict-mismatch"
  int block = 0;
  int warp = 0;
  std::string phase;
  std::int64_t addr = 0;
  std::string detail;
};

struct ShadowSummary {
  bool enabled = false;
  std::uint64_t shared_accesses = 0;
  std::uint64_t checked_words = 0;
  /// Warp-wide accesses elided under audit=certified-skip (the Pass 3 safety
  /// certificate stood in for per-lane replay).
  std::uint64_t skipped_accesses = 0;
  std::vector<ShadowViolation> violations;  ///< capped; see dropped_violations
  std::uint64_t dropped_violations = 0;

  [[nodiscard]] bool clean() const {
    return violations.empty() && dropped_violations == 0;
  }
};

/// Aggregate result of one cfverify run.
struct VerifyReport {
  /// Schedules that must be conflict-free: every entry must be kProved.
  std::vector<ProofObject> proofs;
  /// Deliberately broken / known-conflicted schedules: every entry must be
  /// refuted (non-proved); the analyzer aims for a concrete witness.
  std::vector<ProofObject> refutations;
  /// Pass 3 — static safety (bounds, init-before-read, race-freedom).
  /// Every registered primitive and composite schedule must be kProved here.
  std::vector<ProofObject> safety_proofs;
  /// Safety ablations (cfprims::safety_ablations()): every entry must be
  /// refuted with a concrete lane/epoch witness.
  std::vector<ProofObject> safety_refutations;
  std::vector<WorstCaseAnalysis> worstcase;
  ShadowSummary shadow;

  [[nodiscard]] bool all_proved() const {
    for (const auto& p : proofs)
      if (!p.proved()) return false;
    for (const auto& p : safety_proofs)
      if (!p.proved()) return false;
    return true;
  }
  [[nodiscard]] bool all_refuted() const {
    for (const auto& p : refutations)
      if (p.proved()) return false;
    for (const auto& p : safety_refutations)
      if (p.proved()) return false;
    return true;
  }
  [[nodiscard]] bool ok() const {
    return all_proved() && all_refuted() && shadow.clean();
  }
};

}  // namespace cfmerge::verify
