// Pass 3 of cfverify: the static memory-safety analyzer.
//
// Pass 1 (analyzer/primitive) proves the paper's *bank* properties; this
// pass proves the other half of what makes a schedule correct — that it is
// memory-safe — from the same affine lowering, extended with each stream's
// write side and barrier-epoch structure (cfprims::AccessStream::{is_write,
// epoch, tile}).  Three properties are certified per (w, E) family:
//
//  * bounds           — every address lands in [0, tile_words).  Proved
//                       symbolically for all block sizes u = w·M via
//                       interval_hull (exact LinearForm endpoint algebra,
//                       the machinery of the warp-window-coverage lemma),
//                       with an exhaustive cross-check at u ∈ {2w, 3w}.
//  * init-before-read — an epoch-ordered dataflow fixpoint: every word a
//                       stream reads in epoch T is covered by the union of
//                       write-sets of epochs < T (extern-filled tiles seed
//                       the frontier), exhaustively at u ∈ {2w, 3w}.
//  * race-freedom     — within one epoch, no two unordered lanes write the
//                       same word.  The CRS scatters are injective
//                       symbolically (iE + j is a division-algorithm pairing
//                       and σ is a bijection); the duplicate scan confirms
//                       it exhaustively and materializes witnesses.
//
// Deliberately safety-broken ablations (cfprims::safety_ablations()) must be
// *refuted* with a concrete lane/epoch witness — a Counterexample with
// `kind` set — that tests replay dynamically against the ShadowChecker.
//
// Proofs thread into verify::certify_safety (certificate.hpp) so the
// executors can elide per-access shadow audits for statically-certified
// phases (Launcher audit=certified-skip mode).
#pragma once

#include "cfprims/primitive.hpp"
#include "verify/proof.hpp"

namespace cfmerge::verify {

/// Proves (or refutes, with a lane/epoch witness) bounds, init-before-read
/// and race-freedom for one primitive family at (w, e).  Gather-family
/// primitives (delegate_cf_gather) are modelled compositely: the π∘ρ fill
/// bijection plus the RoundSchedule read sweep over sampled merge-path
/// splits.
[[nodiscard]] ProofObject verify_primitive_safety(const cfprims::CFPrimitive& prim,
                                                  int w, int e);

/// verify_primitive_safety by registry/ablation name; throws
/// std::invalid_argument for an unknown primitive.
[[nodiscard]] ProofObject verify_primitive_safety(std::string_view name, int w,
                                                  int e);

/// Safety proof for the pairwise CF merge pass (load_tile fill, merge-path
/// probes, CF gather, stride/rank output scatter) as composed in
/// sort/merge_pass.hpp.
[[nodiscard]] ProofObject verify_merge_safety(int w, int e);

/// Safety proof for the k-way multiway cascade (fill, per-level CF gather +
/// rank scatter ping-pong) as composed in sort/multiway_pass.hpp.
[[nodiscard]] ProofObject verify_multiway_safety(int w, int e, int k);

/// Safety proof for the block sort (staged load, stride-E thread phases,
/// CF merge rounds with the staging copy) as composed in sort/block_sort.hpp.
[[nodiscard]] ProofObject verify_blocksort_safety(int w, int e);

}  // namespace cfmerge::verify
