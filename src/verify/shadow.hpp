// Pass 2 — the shared-memory shadow-state checker.
//
// ShadowChecker implements gpusim::MemoryAuditor: attach one to a Launcher
// (launcher.set_audit(&checker)) and every simulated shared access is
// validated against a per-word shadow of the tile:
//
//   uninitialized-read   a lane reads a word no charged write (and no raw()
//                        escape) ever produced
//   write-write-race     two active lanes of one scatter target the same
//                        word, or two different warps write the same word
//                        within one barrier epoch
//   out-of-bounds        a lane addresses beyond the tile (or a GlobalView
//                        index beyond the view)
//   conflict-mismatch    the hot-path cost accounting disagrees with an
//                        independent naive recount of the same access — the
//                        dynamic cross-check of Pass 1's cost model
//
// The checker is shared by all blocks of a launch (blocks may run on a host
// thread pool), so every hook takes one internal mutex; attach it only when
// verifying, not when benchmarking.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "gpusim/audit.hpp"
#include "verify/proof.hpp"

namespace cfmerge::verify {

class ShadowChecker final : public gpusim::MemoryAuditor {
 public:
  /// At most `max_violations` are stored verbatim; the rest only counted.
  explicit ShadowChecker(std::size_t max_violations = 64)
      : max_violations_(max_violations) {}

  void on_shared_alloc(int block, std::uint64_t tile_id, std::size_t words) override;
  void on_shared_raw(int block, std::uint64_t tile_id) override;
  void on_shared_access(int block, std::uint64_t tile_id, int warp,
                        std::string_view phase, std::span<const std::int64_t> addrs,
                        bool is_write, int banks, int charged_conflicts) override;
  void on_global_access(int block, int warp, std::string_view phase,
                        std::span<const std::int64_t> idxs, std::int64_t view_size,
                        bool is_write) override;
  void on_barrier(int block) override;
  void on_certified_skip(int block, std::uint64_t tile_id, std::int64_t lo,
                         std::int64_t hi, std::uint64_t accesses, int lanes,
                         bool is_write) override;

  /// Snapshot of everything observed so far.
  [[nodiscard]] ShadowSummary summary() const;
  /// Drops all shadow state and violations (e.g. between launches).
  void reset();

 private:
  struct Word {
    bool written = false;
    int writer_warp = -1;   ///< -2 = raw() escape, -3 = certified-skip bulk
    std::int64_t epoch = -1;
  };
  struct Tile {
    std::vector<Word> words;
  };

  void report(std::string kind, int block, int warp, std::string_view phase,
              std::int64_t addr, std::string detail);

  const std::size_t max_violations_;
  mutable std::mutex mu_;
  std::map<std::pair<int, std::uint64_t>, Tile> tiles_;
  std::map<int, std::int64_t> epoch_;  ///< per-block barrier epoch
  ShadowSummary summary_;
};

}  // namespace cfmerge::verify
