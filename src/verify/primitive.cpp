#include "verify/primitive.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

#include "cfprims/check.hpp"
#include "numtheory/numtheory.hpp"
#include "verify/analyzer.hpp"

namespace cfmerge::verify {

namespace {

void fail(ProofStep& st, std::string detail) {
  st.status = StepStatus::kFailed;
  st.detail = std::move(detail);
}

/// lower:<stream> — the affine IR evaluates to the primitive's concrete
/// address on every (thread, round) of the verification shape.
void check_stream_faithfulness(ProofObject& po, const cfprims::AccessStream& st) {
  ProofStep& step = po.add_step("lower:" + st.name);
  std::int64_t checked = 0;
  for (std::int64_t i = 0; i < st.domain; ++i) {
    for (int j = 0; j < st.rounds; ++j) {
      Env env;
      env.set(kSymThread, i);
      env.set(kSymRound, j);
      const std::int64_t want = st.concrete(i, j);
      const std::int64_t got = st.phys.eval(env);
      if (got != want) {
        std::ostringstream os;
        os << "IR " << st.phys.str() << " = " << got << " but the kernel computes "
           << want << " at i=" << i << " j=" << j;
        fail(step, os.str());
        return;
      }
      ++checked;
    }
  }
  step.detail = std::to_string(checked) + " (thread, round) pairs match the IR";
}

/// residue:<stream> — raw ≡ j (mod m) derived symbolically for all
/// parameter values at once (the paper's residue invariant).
void check_stream_residue(ProofObject& po, const cfprims::AccessStream& st,
                          const SymbolFacts& facts) {
  ProofStep& step = po.add_step("residue:" + st.name);
  const auto residue = residue_mod(st.raw, st.residue_modulus, facts);
  const LinearResidue want{0, {{kSymRound, 1}}};
  if (!residue.has_value()) {
    fail(step, "raw index " + st.raw.str() + " escapes congruence rewriting");
    return;
  }
  if (!(*residue == want)) {
    fail(step, "raw ≡ " + residue->str(st.residue_modulus) + " (mod " +
                   std::to_string(st.residue_modulus) + "), expected ≡ j");
    return;
  }
  step.detail = "raw ≡ j (mod " + std::to_string(st.residue_modulus) +
                ") derived symbolically";
}

/// periodicity:<stream> — bank(phys(i + period, j)) == bank(phys(i, j)),
/// so the exhaustive window check extends to every u ≡ 0 (mod w).
void check_stream_periodicity(ProofObject& po, const cfprims::AccessStream& st,
                              int w) {
  ProofStep& step = po.add_step("periodicity:" + st.name);
  const std::int64_t period = st.bank_period > 0 ? st.bank_period : w;
  if (st.domain <= period) {
    step.status = StepStatus::kSkipped;
    step.detail = "domain " + std::to_string(st.domain) +
                  " covers a single period of " + std::to_string(period);
    return;
  }
  for (std::int64_t i = 0; i + period < st.domain; ++i) {
    for (int j = 0; j < st.rounds; ++j) {
      const std::int64_t b1 = numtheory::mod(st.concrete(i, j), w);
      const std::int64_t b2 = numtheory::mod(st.concrete(i + period, j), w);
      if (b1 != b2) {
        std::ostringstream os;
        os << "bank(phys(" << i << " + " << period << ", " << j << ")) = " << b2
           << " != " << b1;
        fail(step, os.str());
        return;
      }
    }
  }
  step.detail = "bank(phys) has period " + std::to_string(period) +
                " in the thread index";
}

/// banks:<stream> — every w-aligned warp window of every round is
/// conflict-free under the simulator's own cost model; a conflicting
/// stream yields a concrete lane-pair witness.
void check_stream_banks(ProofObject& po, const cfprims::AccessStream& st, int w,
                        int e, int u) {
  ProofStep& step = po.add_step("banks:" + st.name);
  const cfprims::ConflictScan scan =
      cfprims::scan_conflicts(w, st.rounds, st.domain, st.concrete);
  if (scan.total_conflicts == 0) {
    std::ostringstream os;
    os << scan.windows << " warp windows conflict-free ("
       << (st.is_write ? "write" : "read") << " stream)";
    step.detail = os.str();
    return;
  }
  std::ostringstream os;
  os << scan.total_conflicts << " replays over " << scan.windows
     << " windows; first in round " << scan.round << " at window base "
     << scan.window_base;
  fail(step, os.str());
  if (po.verdict == Verdict::kProved || po.verdict == Verdict::kRefutedNoWitness) {
    po.verdict = Verdict::kCounterexample;
    Counterexample& cx = po.counterexample;
    cx.w = w;
    cx.e = e;
    cx.u = u;
    cx.la = 0;
    cx.round = scan.round;
    cx.lane1 = static_cast<int>(scan.window_base) + scan.lane1;
    cx.lane2 = static_cast<int>(scan.window_base) + scan.lane2;
    cx.addr1 = scan.addr1;
    cx.addr2 = scan.addr2;
    cx.bank = scan.bank;
  }
}

}  // namespace

ProofObject verify_primitive(const cfprims::CFPrimitive& prim, int w, int e) {
  if (!prim.supports(w, e))
    throw std::invalid_argument("verify_primitive: " + std::string(prim.name()) +
                                " does not support (w=" + std::to_string(w) +
                                ", E=" + std::to_string(e) + ")");

  // Verification shape: two warps of threads (u = 2w), i.e. a tile of two
  // full rho periods — small enough for the exhaustive walks, and the
  // periodicity step extends the verdict to every block size.
  const cfprims::PrimShape shape{w, e, 2 * w, 0};
  const cfprims::PrimitiveLowering lo = prim.lower(shape);

  if (lo.delegate_cf_gather) {
    ProofObject po = verify_cf_gather(w, e, lo.gather_variant);
    po.family = std::string(prim.name());
    return po;
  }

  ProofObject po;
  po.schedule = std::string(prim.name());
  po.family = po.schedule;
  po.w = w;
  po.e = e;
  po.d = numtheory::gcd(w, e);
  po.scope = "one block of u = 2w threads, every stream slot and round checked "
             "exhaustively; bank-periodicity extends to all u ≡ 0 (mod w)";

  for (const cfprims::AccessStream& st : lo.streams) {
    check_stream_faithfulness(po, st);
    if (st.residue_modulus > 0) check_stream_residue(po, st, lo.facts);
    check_stream_periodicity(po, st, w);
    check_stream_banks(po, st, w, e, shape.u);
  }

  if (po.verdict == Verdict::kProved) {
    for (const ProofStep& st : po.steps)
      if (st.status == StepStatus::kFailed) po.verdict = Verdict::kRefutedNoWitness;
  }
  return po;
}

}  // namespace cfmerge::verify
