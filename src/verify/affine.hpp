// Access-pattern IR of the static bank-conflict verifier (Pass 1).
//
// Every shared-memory index expression in the kernels is built from a small
// arithmetic grammar over per-lane parameters (thread id, round, merge-path
// offsets):
//
//   e ::= const c | sym s | e + e | e * c | e mod c | e div c
//       | (e < e ? e : e)                                   (piecewise guard)
//
// AffineExpr mirrors exactly that grammar.  The verifier lowers each kernel's
// access pattern into this IR (src/verify/lower.*) and then reasons about it
// two ways:
//
//  * concretely — eval() under an Env, used to cross-check the lowering
//    against the real RoundSchedule/kernel indexing and to materialize
//    counterexample addresses;
//  * symbolically — residue_mod() rewrites an expression into a linear
//    congruence  e ≡ c0 + Σ coeff_s · s (mod m)  using the standard rules
//    ((x mod km) mod m = x mod m, coefficients reduce mod m, a symbol known
//    to be a multiple of k drops when m | coeff·k).  This is how the
//    analyzer proves the paper's residue invariants (raw ≡ j mod E) for all
//    parameter values at once instead of per test case.
//
// LinearForm is the exact (modulus-free) companion used for interval
// endpoint algebra in the warp-coverage lemma.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

namespace cfmerge::verify {

/// Symbol identifier.  The lowerings use a fixed, documented set (see
/// lower.hpp); ids only need to be unique within one expression family.
using SymId = int;

/// Concrete values for the symbols of an expression.
class Env {
 public:
  void set(SymId s, std::int64_t v) { values_[s] = v; }
  [[nodiscard]] std::int64_t get(SymId s) const;

 private:
  std::map<SymId, std::int64_t> values_;
};

/// e ≡ c0 + Σ coeffs[s] · s (mod m): the result of congruence rewriting.
/// An empty coeffs map means the residue is the constant c0 regardless of
/// any symbol value.
struct LinearResidue {
  std::int64_t c0 = 0;
  std::map<SymId, std::int64_t> coeffs;  // values in [1, m)

  [[nodiscard]] bool constant() const { return coeffs.empty(); }
  bool operator==(const LinearResidue&) const = default;
  [[nodiscard]] std::string str(std::int64_t m) const;
};

/// Facts handed to residue_mod: multiple_of[s] = k declares that symbol s is
/// known to be a (non-negative) multiple of k.  Used to cancel terms like
/// u·E (mod wE) once u ≡ 0 (mod w) is declared.
using SymbolFacts = std::map<SymId, std::int64_t>;

struct SymInterval;  // defined below (needs LinearForm)
using SymRanges = std::map<SymId, SymInterval>;

/// Immutable expression tree.  Cheap to copy (shared nodes).
class AffineExpr {
 public:
  AffineExpr() = default;

  static AffineExpr constant(std::int64_t c);
  static AffineExpr sym(SymId id, std::string name);

  [[nodiscard]] AffineExpr operator+(const AffineExpr& o) const;
  [[nodiscard]] AffineExpr operator-(const AffineExpr& o) const;
  [[nodiscard]] AffineExpr times(std::int64_t c) const;
  /// Mathematical (non-negative) remainder; m > 0.
  [[nodiscard]] AffineExpr mod(std::int64_t m) const;
  /// Floor division; m > 0.
  [[nodiscard]] AffineExpr div(std::int64_t m) const;
  /// lhs < rhs ? then_e : else_e  — the piecewise guard of the grammar.
  static AffineExpr select(const AffineExpr& lhs, const AffineExpr& rhs,
                           const AffineExpr& then_e, const AffineExpr& else_e);

  /// Concrete evaluation; throws std::invalid_argument on an unbound symbol.
  [[nodiscard]] std::int64_t eval(const Env& env) const;

  /// Which branch select() would take under env: true = then-branch.  For
  /// non-select expressions returns true.  Used by the lowering cross-checks.
  [[nodiscard]] bool select_takes_then(const Env& env) const;

  /// Human-readable rendering, used in proof objects and counterexamples.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] bool valid() const { return node_ != nullptr; }

  struct Node;  // exposed for the implementation only

 private:
  explicit AffineExpr(std::shared_ptr<const Node> n) : node_(std::move(n)) {}
  std::shared_ptr<const Node> node_;

  friend std::optional<LinearResidue> residue_mod(const AffineExpr&, std::int64_t,
                                                  const SymbolFacts&);
  friend std::optional<SymInterval> interval_hull(const AffineExpr&, const SymRanges&);
};

/// Congruence rewriting: derives e ≡ c0 + Σ coeff·sym (mod m), or nullopt
/// when the expression escapes the rewrite rules (an irreducible div, or a
/// select whose branches disagree mod m — branches that agree are merged,
/// which is exactly how "raw ≡ j (mod E) on *both* gather branches" becomes
/// a single derivable fact).
[[nodiscard]] std::optional<LinearResidue> residue_mod(const AffineExpr& e,
                                                       std::int64_t m,
                                                       const SymbolFacts& facts = {});

/// Exact symbolic linear form c0 + Σ coeffs[s]·s over the integers — no
/// modulus, no mod/div nodes.  Used for interval-endpoint derivations where
/// the equality must be exact, not congruent.
struct LinearForm {
  std::int64_t c0 = 0;
  std::map<SymId, std::int64_t> coeffs;

  static LinearForm constant(std::int64_t c) { return {c, {}}; }
  static LinearForm sym(SymId s) { return {0, {{s, 1}}}; }
  [[nodiscard]] LinearForm operator+(const LinearForm& o) const;
  [[nodiscard]] LinearForm operator-(const LinearForm& o) const;
  [[nodiscard]] LinearForm times(std::int64_t c) const;
  bool operator==(const LinearForm&) const = default;

  /// The form reduced mod m under the given multiple-of facts; nullopt when
  /// a symbol's contribution cannot be reduced to a constant.
  [[nodiscard]] std::optional<std::int64_t> residue(std::int64_t m,
                                                    const SymbolFacts& facts) const;
  [[nodiscard]] std::string str() const;
};

/// Inclusive symbolic interval [lo, hi] with LinearForm endpoints — the
/// value type of the Pass 3 bounds derivations (verify/safety).
struct SymInterval {
  LinearForm lo;
  LinearForm hi;
};

// SymRanges (declared above): per-symbol inclusive ranges handed to
// interval_hull.  Every symbol is assumed non-negative; endpoint forms may
// reference *other* symbols (e.g. the thread id i ranges over [0, w·M − 1]
// with M the free block-size multiplier), which is what makes whole-family
// bounds proofs possible.

/// True when f ≤ g under every non-negative assignment of the symbols:
/// (g − f) has a non-negative constant and non-negative coefficients.
[[nodiscard]] bool definitely_le(const LinearForm& f, const LinearForm& g);

/// Sound symbolic interval hull of `e` under the given symbol ranges, or
/// nullopt when the expression escapes the exact rules.  The propagation is
/// exact for const/sym/+/×c; `mod m` collapses to [0, m−1] unless the inner
/// interval provably sits inside the first window; `div m` requires every
/// endpoint coefficient to be divisible by m (floor distributes exactly);
/// selects are guard-refined when a branch is the guard's left-hand side
/// plus a constant (the ρ / ρ⁻¹ shape), then hulled with provable min/max.
[[nodiscard]] std::optional<SymInterval> interval_hull(const AffineExpr& e,
                                                       const SymRanges& ranges);

}  // namespace cfmerge::verify
