// Pass 3: static memory-safety certification (see safety.hpp for the
// property definitions and proof strategy).
#include "verify/safety.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "gather/permutation.hpp"
#include "numtheory/numtheory.hpp"
#include "verify/affine.hpp"
#include "verify/lower.hpp"

namespace cfmerge::verify {

namespace {

using cfprims::AccessStream;
using cfprims::CFPrimitive;
using cfprims::PrimitiveLowering;
using cfprims::PrimShape;

/// Free block-size multiplier of the symbolic family step: u = w·M, M ≥ 1.
/// Chosen outside the lowering symbol space (lower.hpp uses 0..6, the
/// coverage lemma uses 100..102).
constexpr SymId kSymM = 103;

/// Deterministic split sampler seed (mirrors the Pass 1 analyzer's habit of
/// fixed-seed reproducible sampling).
struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
  /// Uniform in [0, n].
  std::int64_t below_eq(std::int64_t n) {
    return static_cast<std::int64_t>(next() % static_cast<std::uint64_t>(n + 1));
  }
};

std::int64_t tile_words(const PrimitiveLowering& lo, int tile_idx) {
  if (lo.tiles.empty()) return lo.shape.tile();
  return lo.tiles[static_cast<std::size_t>(tile_idx)].words;
}

/// Marks the proof refuted on the first witness; later failures only mark
/// their own step.
void fail_step(ProofObject& po, ProofStep& step, std::string detail,
               Counterexample cex) {
  step.status = StepStatus::kFailed;
  step.detail = std::move(detail);
  if (po.verdict == Verdict::kProved) {
    po.verdict = Verdict::kCounterexample;
    po.counterexample = std::move(cex);
  }
}

Counterexample make_cex(const PrimShape& s, std::string kind, int epoch, int round,
                        int lane1, int lane2, std::int64_t addr1,
                        std::int64_t addr2) {
  Counterexample cex;
  cex.w = s.w;
  cex.e = s.e;
  cex.u = s.u;
  cex.kind = std::move(kind);
  cex.epoch = epoch;
  cex.round = round;
  cex.lane1 = lane1;
  cex.lane2 = lane2;
  cex.addr1 = addr1;
  cex.addr2 = addr2;
  return cex;
}

// ---- bounds ------------------------------------------------------------

/// Symbolic family bounds: 0 ≤ phys ≤ words − 1 for every u = w·M.  Only
/// valid when the stream's expression is u-independent, which the caller
/// establishes by comparing the u = 2w and u = 3w lowerings structurally.
/// Returns the derivation rendered for the step detail, or nullopt when the
/// interval algebra cannot close the claim.
std::optional<std::string> symbolic_bounds(const PrimitiveLowering& lo,
                                           const AccessStream& st) {
  const PrimShape& s = lo.shape;
  const std::int64_t we = static_cast<std::int64_t>(s.w) * s.e;
  SymRanges ranges;
  LinearForm i_hi;
  if (st.domain == s.u) {
    i_hi = LinearForm{-1, {{kSymM, s.w}}};  // i ≤ u − 1 = w·M − 1
  } else if (st.domain == s.tile()) {
    i_hi = LinearForm{-1, {{kSymM, we}}};   // i ≤ uE − 1 = wE·M − 1
  } else {
    return std::nullopt;
  }
  ranges[kSymThread] = SymInterval{LinearForm::constant(0), i_hi};
  ranges[kSymRound] =
      SymInterval{LinearForm::constant(0), LinearForm::constant(st.rounds - 1)};

  const std::int64_t extra = tile_words(lo, st.tile) - s.tile();
  if (extra < 0) return std::nullopt;
  // words − 1 = wE·M + extra − 1 for the scaled tile.
  const LinearForm words_hi{extra - 1, {{kSymM, we}}};

  const auto iv = interval_hull(st.phys, ranges);
  if (!iv) return std::nullopt;
  if (!definitely_le(LinearForm::constant(0), iv->lo)) return std::nullopt;
  if (!definitely_le(iv->hi, words_hi)) return std::nullopt;
  std::ostringstream os;
  os << "for all u = w*M: phys in [" << iv->lo.str() << ", " << iv->hi.str()
     << "] within [0, " << words_hi.str() << "] (M = u/w)";
  std::string out = os.str();
  // Render the free multiplier symbol by its name.
  for (std::size_t at = out.find("sym103"); at != std::string::npos;
       at = out.find("sym103", at))
    out.replace(at, 6, "M");
  return out;
}

/// Exhaustive bounds scan of one stream at one concrete lowering.
std::optional<Counterexample> bounds_concrete(const PrimitiveLowering& lo,
                                              const AccessStream& st) {
  const std::int64_t words = tile_words(lo, st.tile);
  for (int j = 0; j < st.rounds; ++j)
    for (std::int64_t i = 0; i < st.domain; ++i) {
      const std::int64_t addr = st.concrete(i, j);
      if (addr < 0 || addr >= words) {
        const int lane = static_cast<int>(i % lo.shape.u);
        return make_cex(lo.shape, "out-of-bounds", st.epoch, j, lane, lane, addr,
                        words);
      }
    }
  return std::nullopt;
}

// ---- init-before-read --------------------------------------------------

/// Epoch-ordered dataflow at one concrete lowering: reads of epoch T must be
/// covered by the union of write-sets of epochs < T (plus extern-filled
/// tiles).  Out-of-range addresses are the bounds step's to report.
std::optional<Counterexample> init_concrete(const PrimitiveLowering& lo) {
  const std::size_t ntiles = std::max<std::size_t>(lo.tiles.size(), 1);
  std::vector<std::vector<char>> written(ntiles);
  for (std::size_t t = 0; t < ntiles; ++t) {
    const bool ext = !lo.tiles.empty() && lo.tiles[t].extern_init;
    written[t].assign(
        static_cast<std::size_t>(tile_words(lo, static_cast<int>(t))),
        ext ? 1 : 0);
  }

  std::vector<int> epochs;
  for (const AccessStream& st : lo.streams) epochs.push_back(st.epoch);
  std::sort(epochs.begin(), epochs.end());
  epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());

  for (const int t : epochs) {
    // Reads first, against the state *before* this epoch's writes land: a
    // same-epoch write does not order before a same-epoch read.
    for (const AccessStream& st : lo.streams) {
      if (st.epoch != t || st.is_write) continue;
      auto& cover = written[static_cast<std::size_t>(st.tile)];
      for (int j = 0; j < st.rounds; ++j)
        for (std::int64_t i = 0; i < st.domain; ++i) {
          const std::int64_t addr = st.concrete(i, j);
          if (addr < 0 || addr >= static_cast<std::int64_t>(cover.size())) continue;
          if (cover[static_cast<std::size_t>(addr)] == 0) {
            const int lane = static_cast<int>(i % lo.shape.u);
            return make_cex(lo.shape, "uninitialized-read", t, j, lane, lane, addr,
                            addr);
          }
        }
    }
    for (const AccessStream& st : lo.streams) {
      if (st.epoch != t || !st.is_write) continue;
      auto& cover = written[static_cast<std::size_t>(st.tile)];
      for (int j = 0; j < st.rounds; ++j)
        for (std::int64_t i = 0; i < st.domain; ++i) {
          const std::int64_t addr = st.concrete(i, j);
          if (addr >= 0 && addr < static_cast<std::int64_t>(cover.size()))
            cover[static_cast<std::size_t>(addr)] = 1;
        }
    }
  }
  return std::nullopt;
}

// ---- race-freedom ------------------------------------------------------

/// One write event during the duplicate scan.
struct WriteEvent {
  int stream = 0;
  int round = 0;
  std::int64_t i = 0;
};

/// Whether two same-address writes of one epoch are unordered (a race).
/// The execution model matches the executors' chunking: slot i is handled
/// by thread i mod u in chunk i div u; a warp runs its chunks and streams
/// in lockstep program order, distinct warps are unsynchronized within an
/// epoch.
bool is_race(const PrimitiveLowering& lo, const WriteEvent& a, const WriteEvent& b) {
  const std::int64_t u = lo.shape.u;
  const int w = lo.shape.w;
  const std::int64_t t1 = a.i % u;
  const std::int64_t t2 = b.i % u;
  if (t1 == t2) return false;  // same thread: program order
  const bool same_stream = a.stream == b.stream;
  if (same_stream &&
      lo.streams[static_cast<std::size_t>(a.stream)].rounds_are_instances &&
      a.round != b.round)
    return false;  // alternative instances never coexist
  if (t1 / w != t2 / w) return true;  // cross-warp: no sync inside an epoch
  // Same warp: lockstep, so only simultaneous lanes (same stream, round and
  // chunk) conflict.
  return same_stream && a.round == b.round && a.i / u == b.i / u;
}

std::optional<Counterexample> race_concrete(const PrimitiveLowering& lo) {
  std::vector<int> epochs;
  for (const AccessStream& st : lo.streams)
    if (st.is_write) epochs.push_back(st.epoch);
  std::sort(epochs.begin(), epochs.end());
  epochs.erase(std::unique(epochs.begin(), epochs.end()), epochs.end());

  for (const int t : epochs) {
    // addr -> first writer, per tile.
    std::vector<std::vector<WriteEvent>> first(std::max<std::size_t>(lo.tiles.size(), 1));
    std::vector<std::vector<char>> seen(first.size());
    for (std::size_t tl = 0; tl < first.size(); ++tl) {
      const auto words =
          static_cast<std::size_t>(tile_words(lo, static_cast<int>(tl)));
      first[tl].resize(words);
      seen[tl].assign(words, 0);
    }
    for (std::size_t si = 0; si < lo.streams.size(); ++si) {
      const AccessStream& st = lo.streams[si];
      if (st.epoch != t || !st.is_write) continue;
      auto& fw = first[static_cast<std::size_t>(st.tile)];
      auto& sw = seen[static_cast<std::size_t>(st.tile)];
      for (int j = 0; j < st.rounds; ++j)
        for (std::int64_t i = 0; i < st.domain; ++i) {
          const std::int64_t addr = st.concrete(i, j);
          if (addr < 0 || addr >= static_cast<std::int64_t>(fw.size())) continue;
          const WriteEvent ev{static_cast<int>(si), j, i};
          const auto ai = static_cast<std::size_t>(addr);
          if (sw[ai] != 0) {
            if (is_race(lo, fw[ai], ev)) {
              const auto& prev = fw[ai];
              return make_cex(lo.shape, "write-write-race", t, j,
                              static_cast<int>(prev.i % lo.shape.u),
                              static_cast<int>(i % lo.shape.u), addr, addr);
            }
          } else {
            sw[ai] = 1;
            fw[ai] = ev;
          }
        }
    }
  }
  return std::nullopt;
}

/// Symbolic injectivity evidence for the race step detail: the CRS raw form
/// iE + j is a division-algorithm pairing and σ is a bijection, so the
/// scatter image has no duplicates for *any* block size.
std::string injectivity_note(const PrimitiveLowering& lo) {
  std::ostringstream os;
  bool any = false;
  for (const AccessStream& st : lo.streams) {
    if (!st.is_write || st.residue_modulus == 0) continue;
    if (any) os << "; ";
    os << st.name << ": raw = i*E + j injective on [0,u)x[0,E) "
       << "(division algorithm), sigma bijective => phys injective for all u";
    any = true;
  }
  if (!any) os << "no CRS write streams; exhaustive duplicate scan only";
  return os.str();
}

// ---- per-primitive driver (non-delegated) ------------------------------

/// Whether the u = 2w and u = 3w lowerings produce structurally identical
/// stream expressions — the u-uniformity premise of the symbolic family
/// bounds claim.
bool stream_u_uniform(const AccessStream& a, const AccessStream& b) {
  return a.phys.str() == b.phys.str();
}

ProofObject stream_safety(const CFPrimitive& prim, int w, int e) {
  const PrimShape s2{w, e, 2 * w, 0};
  const PrimShape s3{w, e, 3 * w, 0};
  const PrimitiveLowering lo2 = prim.lower(s2);
  const PrimitiveLowering lo3 = prim.lower(s3);

  ProofObject po;
  po.schedule = std::string(prim.name());
  po.family = po.schedule;
  po.w = w;
  po.e = e;
  po.d = numtheory::gcd(w, e);
  po.scope =
      "bounds, init-before-read and race-freedom exhaustively at u = 2w and "
      "u = 3w; u-uniform streams additionally bounded symbolically for every "
      "u = w*M";

  for (std::size_t si = 0; si < lo2.streams.size(); ++si) {
    const AccessStream& st = lo2.streams[si];
    ProofStep& step = po.add_step("bounds:" + st.name);
    std::optional<std::string> sym;
    if (si < lo3.streams.size() && stream_u_uniform(st, lo3.streams[si]))
      sym = symbolic_bounds(lo2, st);
    auto cex = bounds_concrete(lo2, st);
    if (!cex && si < lo3.streams.size()) cex = bounds_concrete(lo3, lo3.streams[si]);
    if (cex) {
      fail_step(po, step, "address escapes [0, tile_words): " + cex->str(), *cex);
      continue;
    }
    step.detail = sym ? *sym
                      : "exhaustive at u = 2w and u = 3w (interval algebra "
                        "inexact for this u-dependent form)";
  }

  {
    ProofStep& step = po.add_step("init-before-read");
    auto cex = init_concrete(lo2);
    if (!cex) cex = init_concrete(lo3);
    if (cex) {
      fail_step(po, step, "read precedes any covering write: " + cex->str(), *cex);
    } else {
      step.detail =
          "every epoch-T read covered by extern fill + writes of epochs < T "
          "(exhaustive dataflow at u = 2w and u = 3w)";
    }
  }

  {
    ProofStep& step = po.add_step("race-freedom");
    auto cex = race_concrete(lo2);
    if (!cex) cex = race_concrete(lo3);
    if (cex) {
      fail_step(po, step, "unordered same-epoch writes collide: " + cex->str(),
                *cex);
    } else {
      step.detail = injectivity_note(lo2) +
                    "; duplicate scan clean at u = 2w and u = 3w";
    }
  }

  if (po.verdict != Verdict::kProved && po.counterexample.kind.empty())
    po.verdict = Verdict::kRefutedNoWitness;
  return po;
}

// ---- gather-family composite model -------------------------------------

/// One sampled merge-path split: per-thread |A_i| with the derived offsets.
struct Split {
  std::vector<std::int64_t> a_size;
  std::vector<std::int64_t> a_off;
  std::int64_t la = 0;
};

Split make_split(std::vector<std::int64_t> sizes) {
  Split sp;
  sp.a_size = std::move(sizes);
  sp.a_off.resize(sp.a_size.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < sp.a_size.size(); ++i) {
    sp.a_off[i] = acc;
    acc += sp.a_size[i];
  }
  sp.la = acc;
  return sp;
}

/// Structured extremes plus seeded random splits — every prefix-sum split is
/// the merge path of some input, so this samples real schedules.
std::vector<Split> sample_splits(int u, int e) {
  std::vector<Split> out;
  const auto uu = static_cast<std::size_t>(u);
  out.push_back(make_split(std::vector<std::int64_t>(uu, e)));  // all-A
  out.push_back(make_split(std::vector<std::int64_t>(uu, 0)));  // all-B
  {
    std::vector<std::int64_t> alt(uu);
    for (std::size_t i = 0; i < uu; ++i) alt[i] = (i % 2 == 0) ? e : 0;
    out.push_back(make_split(std::move(alt)));
  }
  out.push_back(make_split(std::vector<std::int64_t>(uu, e / 2)));
  Lcg rng(0x5AFE7Eu + static_cast<std::uint64_t>(u) * 131 +
          static_cast<std::uint64_t>(e));
  for (int r = 0; r < 6; ++r) {
    std::vector<std::int64_t> sizes(uu);
    for (std::size_t i = 0; i < uu; ++i) sizes[i] = rng.below_eq(e);
    out.push_back(make_split(std::move(sizes)));
  }
  return out;
}

/// The variant-aware physical read address of Algorithm 1 — mirrors
/// RoundSchedule::read plus lower_cf_gather's broken-variant branches.
std::int64_t gather_read_phys(ScheduleVariant variant, int e, std::int64_t la,
                              std::int64_t lb, const gather::CircularShift& rho,
                              std::int64_t a_off, std::int64_t a_size,
                              std::int64_t i, int j) {
  const std::int64_t k = a_off % e;
  std::int64_t m = j - k;
  if (m < 0) m += e;
  std::int64_t raw = 0;
  if (m < a_size) {
    raw = a_off + m;
  } else {
    std::int64_t eidx = k - j - 1;
    if (eidx < 0) eidx += e;
    const std::int64_t y = i * e - a_off + eidx;
    raw = variant == ScheduleVariant::kNoBReversal ? la + y : la + lb - 1 - y;
  }
  return variant == ScheduleVariant::kNoRhoShift ? raw : rho(raw);
}

/// The fill map of load_tile's TileLayout for the variant: where A element x
/// and B element y land in shared memory.
std::int64_t fill_pos_a(ScheduleVariant variant, const gather::CircularShift& rho,
                        std::int64_t x) {
  return variant == ScheduleVariant::kNoRhoShift ? x : rho(x);
}
std::int64_t fill_pos_b(ScheduleVariant variant, const gather::CircularShift& rho,
                        std::int64_t la, std::int64_t lb, std::int64_t y) {
  const std::int64_t raw =
      variant == ScheduleVariant::kNoBReversal ? la + y : la + lb - 1 - y;
  return variant == ScheduleVariant::kNoRhoShift ? raw : rho(raw);
}

/// Checks the fill bijection and the gather read sweep for one (u, split).
/// Reports through `po`; returns false once the proof is refuted so the
/// caller can stop early.
ProofObject gather_family_safety(const CFPrimitive& prim, ScheduleVariant variant,
                                 int w, int e) {
  ProofObject po;
  po.schedule = std::string(prim.name());
  po.family = po.schedule;
  po.w = w;
  po.e = e;
  po.d = numtheory::gcd(w, e);
  po.scope =
      "fill bijection exhaustive over sampled |A| and the gather read sweep "
      "over structured + seeded-random merge-path splits, u in {w, 2w}; "
      "reads are covered because the epoch-0 fill is a bijection of the tile";

  // add_step may reallocate po.steps, so take the references only after the
  // last insertion (fail_step below never adds steps).
  po.add_step("fill-covers-tile");
  po.add_step("bounds:gather");
  po.add_step("init-before-read");
  po.add_step("race-freedom");
  ProofStep& fill = po.steps[po.steps.size() - 4];
  ProofStep& bounds = po.steps[po.steps.size() - 3];
  ProofStep& init = po.steps[po.steps.size() - 2];
  ProofStep& race = po.steps[po.steps.size() - 1];

  std::int64_t checked_fills = 0;
  std::int64_t checked_reads = 0;
  for (const int u : {w, 2 * w}) {
    const std::int64_t tile = static_cast<std::int64_t>(u) * e;
    const gather::CircularShift rho(w, e, tile);
    const PrimShape shape{w, e, u, 0};
    for (const Split& sp : sample_splits(u, e)) {
      const std::int64_t la = sp.la;
      const std::int64_t lb = tile - la;
      // Fill: pos_a over [0, la) and pos_b over [0, lb) must tile [0, tile)
      // exactly once — bounds, race-freedom and full coverage of the fill
      // epoch in one exhaustive pass.
      std::vector<char> cover(static_cast<std::size_t>(tile), 0);
      bool fill_ok = true;
      for (std::int64_t x = 0; x < tile && fill_ok; ++x) {
        const std::int64_t pos = x < la
                                     ? fill_pos_a(variant, rho, x)
                                     : fill_pos_b(variant, rho, la, lb, x - la);
        const int lane = static_cast<int>(x % u);
        if (pos < 0 || pos >= tile) {
          fail_step(po, fill, "fill writes outside the tile",
                    make_cex(shape, "out-of-bounds", 0, 0, lane, lane, pos, tile));
          fill_ok = false;
        } else if (cover[static_cast<std::size_t>(pos)] != 0) {
          fail_step(po, fill, "fill writes one shared word twice",
                    make_cex(shape, "write-write-race", 0, 0, lane, lane, pos, pos));
          fill_ok = false;
        } else {
          cover[static_cast<std::size_t>(pos)] = 1;
        }
      }
      if (fill_ok) ++checked_fills;

      // Gather rounds: every read lands in [0, tile) — and the fill epoch
      // covered the whole tile, so in-bounds ⇒ initialized.
      for (int j = 0; j < e; ++j)
        for (std::int64_t i = 0; i < u; ++i) {
          const std::int64_t pos = gather_read_phys(
              variant, e, la, lb, rho, sp.a_off[static_cast<std::size_t>(i)],
              sp.a_size[static_cast<std::size_t>(i)], i, j);
          ++checked_reads;
          if (pos < 0 || pos >= tile)
            fail_step(po, bounds, "gather read escapes the tile",
                      make_cex(shape, "out-of-bounds", 1, j, static_cast<int>(i),
                               static_cast<int>(i), pos, tile));
        }
    }
  }

  std::ostringstream fs;
  fs << checked_fills << " (u, |A|) fill instances: bijection onto [0, tile)";
  if (fill.status == StepStatus::kPassed) fill.detail = fs.str();
  std::ostringstream bs;
  bs << checked_reads << " (u, split, round, lane) reads within [0, tile)";
  if (bounds.status == StepStatus::kPassed) bounds.detail = bs.str();
  if (fill.status == StepStatus::kPassed && bounds.status == StepStatus::kPassed) {
    init.detail =
        "the epoch-0 fill is a bijection of the tile (fill-covers-tile), a "
        "barrier separates it from the gather, and every gather read is "
        "in-bounds — so every read word is initialized";
    race.detail =
        "the fill's bijectivity is the no-duplicate property (one write per "
        "word); the gather epoch only reads";
  } else {
    if (fill.status != StepStatus::kPassed) {
      init.status = StepStatus::kSkipped;
      init.detail = "fill bijection refuted; init-before-read not derivable";
      race.status = StepStatus::kSkipped;
      race.detail = "fill bijection refuted";
    } else {
      init.status = StepStatus::kSkipped;
      init.detail = "gather bounds refuted; coverage argument not applicable";
      race.detail = "fill bijection holds; the gather epoch only reads";
    }
  }

  if (po.verdict != Verdict::kProved && po.counterexample.kind.empty())
    po.verdict = Verdict::kRefutedNoWitness;
  return po;
}

// ---- composite schedules -----------------------------------------------

/// Cites a component primitive's safety proof inside a composite proof:
/// the step passes iff the component family is proved at (w, e).
void cite_component(ProofObject& po, const char* step_name, const char* prim_name,
                    int w, int e) {
  ProofStep& step = po.add_step(step_name);
  const CFPrimitive* prim = cfprims::find_primitive(prim_name);
  if (prim == nullptr || !prim->supports(w, e)) {
    step.status = StepStatus::kFailed;
    step.detail = std::string("component ") + prim_name + " unavailable at (w, E)";
    if (po.verdict == Verdict::kProved) po.verdict = Verdict::kRefutedNoWitness;
    return;
  }
  ProofObject comp = verify_primitive_safety(*prim, w, e);
  if (comp.proved()) {
    std::ostringstream os;
    os << "component " << prim_name << " safety proved (" << comp.steps.size()
       << " steps)";
    step.detail = os.str();
  } else {
    fail_step(po, step, std::string("component ") + prim_name + " refuted",
              comp.counterexample);
  }
}

void add_probe_note(ProofObject& po) {
  ProofStep& step = po.add_step("data-dependent-probes");
  step.status = StepStatus::kSkipped;
  step.detail =
      "merge-path probe reads are value-dependent and outside the affine "
      "IR; they stay on the audited lane path (never certified-skip) and "
      "are covered by the fill-initialization argument plus the dynamic "
      "ShadowChecker";
}

ProofObject composite_base(std::string name, int w, int e, int k) {
  ProofObject po;
  po.schedule = std::move(name);
  po.family = po.schedule;
  po.w = w;
  po.e = e;
  po.k = k;
  po.d = numtheory::gcd(w, e);
  return po;
}

}  // namespace

ProofObject verify_primitive_safety(const CFPrimitive& prim, int w, int e) {
  if (!prim.supports(w, e))
    throw std::invalid_argument("verify_primitive_safety: unsupported (w, E) for " +
                                std::string(prim.name()));
  const PrimitiveLowering probe = prim.lower(PrimShape{w, e, 2 * w, 0});
  if (probe.delegate_cf_gather)
    return gather_family_safety(prim, probe.gather_variant, w, e);
  return stream_safety(prim, w, e);
}

ProofObject verify_primitive_safety(std::string_view name, int w, int e) {
  const CFPrimitive* prim = cfprims::find_primitive(name);
  if (prim == nullptr)
    throw std::invalid_argument("verify_primitive_safety: unknown primitive " +
                                std::string(name));
  return verify_primitive_safety(*prim, w, e);
}

ProofObject verify_merge_safety(int w, int e) {
  ProofObject po = composite_base("merge", w, e, 0);
  po.scope =
      "sort/merge_pass.hpp composition: staged fill, merge-path search, CF "
      "gather, output scatter — each barrier-separated; components certified "
      "per family, composition steps exhaustive";

  cite_component(po, "fill-component:cf_stage", "cf_stage", w, e);
  cite_component(po, "gather-component:cf_gather", "cf_gather", w, e);
  add_probe_note(po);

  {
    // The output epoch writes merged rank r = iE + j of each thread (the CF
    // path routes ranks through the out_pos map, a bijection by
    // sortedness); iE + j itself tiles [0, uE) exactly once.
    ProofStep& step = po.add_step("store-scatter-bijective");
    const int u = 2 * w;
    const std::int64_t tile = static_cast<std::int64_t>(u) * e;
    std::vector<char> cover(static_cast<std::size_t>(tile), 0);
    bool ok = true;
    for (std::int64_t i = 0; i < u && ok; ++i)
      for (int j = 0; j < e && ok; ++j) {
        const std::int64_t r = i * e + j;
        if (r < 0 || r >= tile || cover[static_cast<std::size_t>(r)] != 0) {
          fail_step(po, step, "rank scatter not a bijection",
                    make_cex(PrimShape{w, e, u, 0}, "write-write-race", 2, j,
                             static_cast<int>(i), static_cast<int>(i), r, r));
          ok = false;
        } else {
          cover[static_cast<std::size_t>(r)] = 1;
        }
      }
    if (ok)
      step.detail =
          "ranks i*E + j tile [0, uE) exactly once (division algorithm); the "
          "CF out_pos routing is a bijection of the same rank set";
  }

  {
    ProofStep& step = po.add_step("epoch-order");
    step.detail =
        "barriers separate fill -> search/merge -> store (merge_pass.hpp); "
        "each epoch reads only tiles fully written by earlier epochs";
  }

  if (po.verdict != Verdict::kProved && po.counterexample.kind.empty())
    po.verdict = Verdict::kRefutedNoWitness;
  return po;
}

ProofObject verify_multiway_safety(int w, int e, int k) {
  ProofObject po = composite_base("multiway", w, e, k);
  po.scope =
      "sort/multiway_pass.hpp cascade: fill, then per level a CF gather of "
      "the live half and a rho rank scatter into the other half, barrier per "
      "level; components certified per family";

  cite_component(po, "fill-component:cf_stage", "cf_stage", w, e);
  cite_component(po, "gather-component:cf_gather", "cf_gather", w, e);
  cite_component(po, "scatter-component:cf_rank_scatter", "cf_rank_scatter", w, e);
  add_probe_note(po);

  {
    ProofStep& step = po.add_step("level-ping-pong");
    int levels = 0;
    for (int x = 1; x < k; x *= 2) ++levels;
    std::ostringstream os;
    os << levels
       << " cascade level(s): level L reads the half written by level L-1 "
          "(or the fill) and rank-scatters rho(i*E + j) — a bijection of the "
          "other half, so the next level's read set is fully covered; a "
          "barrier closes each level";
    step.detail = os.str();
  }

  if (po.verdict != Verdict::kProved && po.counterexample.kind.empty())
    po.verdict = Verdict::kRefutedNoWitness;
  return po;
}

ProofObject verify_blocksort_safety(int w, int e) {
  ProofObject po = composite_base("blocksort", w, e, 0);
  po.scope =
      "sort/block_sort.hpp composition: staged load, stride-E thread phases, "
      "CF merge rounds with the staging copy, staged store — each "
      "barrier-separated; components certified per family";

  cite_component(po, "load-component:cf_stage", "cf_stage", w, e);

  {
    // The thread-sort phases read and rewrite slots i*E + j across a
    // barrier; the map tiles [0, uE) exactly once for any gcd(w, E), which
    // is the bounds + race + coverage argument in one scan.
    ProofStep& step = po.add_step("thread-sort-stride-bijective");
    bool ok = true;
    for (const int u : {2 * w, 3 * w}) {
      const std::int64_t tile = static_cast<std::int64_t>(u) * e;
      std::vector<char> cover(static_cast<std::size_t>(tile), 0);
      for (std::int64_t i = 0; i < u && ok; ++i)
        for (int j = 0; j < e && ok; ++j) {
          const std::int64_t r = i * e + j;
          if (r < 0 || r >= tile || cover[static_cast<std::size_t>(r)] != 0) {
            fail_step(po, step, "stride phase not a bijection",
                      make_cex(PrimShape{w, e, u, 0}, "write-write-race", 1, j,
                               static_cast<int>(i), static_cast<int>(i), r, r));
            ok = false;
          } else {
            cover[static_cast<std::size_t>(r)] = 1;
          }
        }
    }
    if (ok)
      step.detail =
          "slots i*E + j tile [0, uE) exactly once at u = 2w and u = 3w "
          "(division algorithm, gcd-independent)";
  }

  cite_component(po, "merge-gather-component:cf_gather", "cf_gather", w, e);
  cite_component(po, "staging-copy-component:cf_stage", "cf_stage", w, e);
  add_probe_note(po);

  {
    ProofStep& step = po.add_step("epoch-order");
    step.detail =
        "barriers separate load -> thread sort -> each merge round -> store "
        "(block_sort.hpp); every read tile is fully written beforehand";
  }

  if (po.verdict != Verdict::kProved && po.counterexample.kind.empty())
    po.verdict = Verdict::kRefutedNoWitness;
  return po;
}

}  // namespace cfmerge::verify
