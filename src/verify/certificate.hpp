// Proof tokens for the simulator's bulk-charging fast path.
//
// A CfCertificate is the process-wide memo of one successful
// verify_primitive run: "primitive `name` at family (w, E) is proven
// conflict-free".  Call sites that execute a certified access pattern may
// hand the token to the cfprims executors / tile stagers, which then charge
// shared-memory rounds in closed form (BlockContext::charge_shared_crs)
// instead of materializing per-lane addresses — see
// docs/architecture.md, "Accounting fast paths".
//
// certify() is memoized (positive AND negative) behind a mutex: the first
// request for a (name, w, E) triple runs the full symbolic proof; every
// later request is a map lookup.  Unknown primitives, unsupported shapes,
// deliberately-broken ablation variants and refuted proofs all cache a
// nullptr, so uncertified call sites permanently fall back to the
// lane-accurate path.  Certificates live for the whole process, so the
// returned pointer may be cached on sort plans.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cfmerge::verify {

/// One minted Pass 3 proof token: "primitive `primitive` at family (w, E)
/// is statically memory-safe" (bounds + init-before-read + race-freedom,
/// verify/safety.hpp).  Consumers only test the pointer for null.
struct SafetyCertificate {
  std::string primitive;
  int w = 0;
  int e = 0;
};

/// One minted proof token.  The fields identify the proof that backs it;
/// consumers only test the pointer for null.  `safety` is the matching
/// Pass 3 token when the static safety proof also closed (nullptr
/// otherwise): executors may elide per-access shadow audits for the
/// pattern only when it is set (Launcher audit=certified-skip mode).
struct CfCertificate {
  std::string primitive;
  int w = 0;
  int e = 0;
  const SafetyCertificate* safety = nullptr;
};

/// Counters over every certify() call in the process (for EngineStats).
struct CertificateStats {
  std::uint64_t hits = 0;    ///< memoized lookups (positive or negative)
  std::uint64_t misses = 0;  ///< first-time proofs actually run
  std::uint64_t cached = 0;  ///< distinct (name, w, E) entries held
};

/// Returns the certificate for `primitive` at family (w, E), running the
/// symbolic verifier on first use; nullptr when the primitive is unknown,
/// does not support the shape, or the proof is refuted.  Thread-safe.
[[nodiscard]] const CfCertificate* certify(std::string_view primitive, int w, int e);

/// Returns the Pass 3 safety certificate for `primitive` at family (w, E),
/// running verify_primitive_safety on first use; nullptr when the primitive
/// is unknown, does not support the shape, is a declared safety ablation,
/// or the proof is refuted.  Memoized like certify(); thread-safe.
[[nodiscard]] const SafetyCertificate* certify_safety(std::string_view primitive,
                                                      int w, int e);

/// Snapshot of the process-wide memo statistics.  Thread-safe.
[[nodiscard]] CertificateStats certificate_stats();

}  // namespace cfmerge::verify
