#include "verify/certificate.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "cfprims/primitive.hpp"
#include "verify/primitive.hpp"
#include "verify/proof.hpp"

namespace cfmerge::verify {
namespace {

struct CertStore {
  std::mutex mu;
  // nullptr values are negative entries: unknown / unsupported / refuted.
  std::map<std::tuple<std::string, int, int>, std::unique_ptr<CfCertificate>> memo;
  CertificateStats stats;
};

CertStore& store() {
  static CertStore s;
  return s;
}

std::unique_ptr<CfCertificate> mint(std::string_view primitive, int w, int e) {
  const cfprims::CFPrimitive* prim = cfprims::find_primitive(primitive);
  if (prim == nullptr || !prim->supports(w, e)) return nullptr;
  if (!prim->expected_conflict_free(w, e)) return nullptr;
  const ProofObject po = verify_primitive(*prim, w, e);
  if (!po.proved()) return nullptr;
  return std::make_unique<CfCertificate>(CfCertificate{std::string(primitive), w, e});
}

}  // namespace

const CfCertificate* certify(std::string_view primitive, int w, int e) {
  CertStore& s = store();
  std::scoped_lock lock(s.mu);
  auto key = std::make_tuple(std::string(primitive), w, e);
  if (auto it = s.memo.find(key); it != s.memo.end()) {
    ++s.stats.hits;
    return it->second.get();
  }
  ++s.stats.misses;
  auto [it, inserted] = s.memo.emplace(std::move(key), mint(primitive, w, e));
  s.stats.cached = s.memo.size();
  return it->second.get();
}

CertificateStats certificate_stats() {
  CertStore& s = store();
  std::scoped_lock lock(s.mu);
  return s.stats;
}

}  // namespace cfmerge::verify
