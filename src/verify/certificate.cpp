#include "verify/certificate.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "cfprims/primitive.hpp"
#include "verify/primitive.hpp"
#include "verify/proof.hpp"
#include "verify/safety.hpp"

namespace cfmerge::verify {
namespace {

using CertKey = std::tuple<std::string, int, int>;

struct SafetyStore {
  std::mutex mu;
  // nullptr values are negative entries: unknown / unsupported / ablation /
  // refuted.
  std::map<CertKey, std::unique_ptr<SafetyCertificate>> memo;
};

SafetyStore& safety_store() {
  static SafetyStore s;
  return s;
}

std::unique_ptr<SafetyCertificate> mint_safety(std::string_view primitive, int w,
                                               int e) {
  const cfprims::CFPrimitive* prim = cfprims::find_primitive(primitive);
  if (prim == nullptr || !prim->supports(w, e)) return nullptr;
  if (!prim->expected_safe(w, e)) return nullptr;
  const ProofObject po = verify_primitive_safety(*prim, w, e);
  if (!po.proved()) return nullptr;
  return std::make_unique<SafetyCertificate>(
      SafetyCertificate{std::string(primitive), w, e});
}

struct CertStore {
  std::mutex mu;
  // nullptr values are negative entries: unknown / unsupported / refuted.
  std::map<CertKey, std::unique_ptr<CfCertificate>> memo;
  CertificateStats stats;
};

CertStore& store() {
  static CertStore s;
  return s;
}

std::unique_ptr<CfCertificate> mint(std::string_view primitive, int w, int e) {
  const cfprims::CFPrimitive* prim = cfprims::find_primitive(primitive);
  if (prim == nullptr || !prim->supports(w, e)) return nullptr;
  if (!prim->expected_conflict_free(w, e)) return nullptr;
  const ProofObject po = verify_primitive(*prim, w, e);
  if (!po.proved()) return nullptr;
  // Attach the Pass 3 token so executors can tell "conflict-free" from
  // "conflict-free AND statically memory-safe" (certified-skip gate).
  const SafetyCertificate* safety = certify_safety(primitive, w, e);
  return std::make_unique<CfCertificate>(
      CfCertificate{std::string(primitive), w, e, safety});
}

}  // namespace

const CfCertificate* certify(std::string_view primitive, int w, int e) {
  CertStore& s = store();
  std::scoped_lock lock(s.mu);
  auto key = std::make_tuple(std::string(primitive), w, e);
  if (auto it = s.memo.find(key); it != s.memo.end()) {
    ++s.stats.hits;
    return it->second.get();
  }
  ++s.stats.misses;
  auto [it, inserted] = s.memo.emplace(std::move(key), mint(primitive, w, e));
  s.stats.cached = s.memo.size();
  return it->second.get();
}

const SafetyCertificate* certify_safety(std::string_view primitive, int w, int e) {
  SafetyStore& s = safety_store();
  std::scoped_lock lock(s.mu);
  auto key = std::make_tuple(std::string(primitive), w, e);
  if (auto it = s.memo.find(key); it != s.memo.end()) return it->second.get();
  auto [it, inserted] = s.memo.emplace(std::move(key), mint_safety(primitive, w, e));
  return it->second.get();
}

CertificateStats certificate_stats() {
  CertStore& s = store();
  std::scoped_lock lock(s.mu);
  return s.stats;
}

}  // namespace cfmerge::verify
