// Pass 1 — the symbolic conflict analyzer.
//
// verify_cf_gather machine-checks the paper's conflict-freedom argument
// (Lemmas 1–4, Corollary 3) for a whole (w, E) family at once.  The proof
// object records, in order:
//
//   lowering-faithfulness   IR == RoundSchedule::read on sampled schedules
//   branch-totality         per-thread window lemmas, exhaustive over the
//                           finite quotient (a mod E, |A_i|, j)
//   residue-invariant       raw ≡ j (mod E) on both branches, symbolically
//   warp-window-coverage    a warp's round reads tile one full period mod wE
//                           (exact LinearForm interval algebra)
//   bank-periodicity        bank(rho(m)) has period wE in m
//   bank-crs                {bank(rho(j + kE))} is a complete residue system
//                           for every round j (Corollary 3)
//
// Together: the w reads of any warp in any round occupy w distinct banks,
// for every u that is a multiple of w and every merge-path split — without
// simulating anything.  Broken variants (no pi / no rho) fail a step and the
// analyzer produces a concrete counterexample lane pair, which the tests
// replay against the dynamic cost model.
//
// analyze_worstcase_warp statically walks the baseline serial merge over the
// Theorem 8 construction (decisions forced by the interleaving pattern) and
// reports the exact conflict count, which must match the simulator counters
// bit-for-bit, plus guaranteed min/max bounds that hold for *any* data.
#pragma once

#include <vector>

#include "sort/serial_merge.hpp"
#include "verify/lower.hpp"
#include "verify/proof.hpp"
#include "worstcase/sequence.hpp"

namespace cfmerge::verify {

/// Machine-checked conflict-freedom proof (or refutation) for the CF gather
/// schedule family at warp width w, E elements per thread.
[[nodiscard]] ProofObject verify_cf_gather(int w, int e,
                                           ScheduleVariant variant =
                                               ScheduleVariant::kFull);

/// Machine-checked conflict-freedom proof for the k-way cascade merge
/// (multiway_cascade_core): every cascade stage is an instance of the proven
/// 2-way schedule, the inter-stage rank scatter is a lane-invariant stride-E
/// stream under rho (a complete residue system per round), and the
/// CascadePlan's pair bases and padded lengths are wE-aligned so none of it
/// shifts banks.  `k` must be a power of two >= 2.  When the caller already
/// holds the (w, E) 2-way proof it can pass it via `stage_proof` to avoid
/// recomputing it (verify_all does).
[[nodiscard]] ProofObject verify_multiway_cascade(int w, int e, int k,
                                                  const ProofObject* stage_proof = nullptr);

/// Refutes the (false) claim that a *single-phase* k-ary gather over a linear
/// k-segment shared layout — the access pattern of the multiway_losertree
/// baseline's head fill — is conflict free for every merge-path split.  The
/// witness is constructive: a realizable split puts two lanes' sequence-0
/// heads at shared offsets 0 and w, the same bank.  Works for any k >= 2.
[[nodiscard]] ProofObject refute_multiway_direct(int w, int e, int k);

/// Static analysis of the bitonic compare-exchange kernel on one tile:
/// machine-checks the kernel's structural conflict profile — measured degree
/// equals the closed form (1 for j >= w; 1 for padded j = 1; otherwise 2)
/// for every substage stride.  `tile` and `w` must be powers of two with
/// tile >= 2w.  Proved means the profile is exactly as predicted.
[[nodiscard]] ProofObject verify_bitonic_exchange(std::int64_t tile, int w, bool padded);

/// Refutes the (false) claim that the *unpadded* exchange is conflict free:
/// the proof object carries a concrete lane pair of the first structurally
/// conflicted substage.
[[nodiscard]] ProofObject refute_bitonic_unpadded(std::int64_t tile, int w);

/// Exact static conflict count of the baseline warp_serial_merge on the
/// Theorem 8 worst-case warp, plus data-independent degree bounds.
[[nodiscard]] WorstCaseAnalysis analyze_worstcase_warp(const worstcase::Params& p);

/// Guaranteed conflict bounds of warp_serial_merge for arbitrary data under
/// the given lane splits: min counts only forced (data-independent)
/// collisions, max assumes every reachable collision happens.
struct SerialMergeBounds {
  std::int64_t min_conflicts = 0;
  std::int64_t max_conflicts = 0;
};
[[nodiscard]] SerialMergeBounds serial_merge_conflict_bounds(
    const std::vector<sort::MergeLaneDesc>& lanes, int w, int e, std::int64_t la);

/// Full sweep used by cfverify and the CI job: CF gather proofs for every
/// w in `widths` × 1 < E <= w, broken-variant refutations, Theorem 8
/// analyses and bitonic profiles.
struct VerifyOptions {
  std::vector<int> widths = {4, 8, 16, 32, 64};
  bool broken = true;     ///< include no-pi / no-rho refutations
  bool worstcase = true;  ///< include Theorem 8 analyses
  bool bitonic = true;    ///< include bitonic exchange profiles
  bool multiway = true;   ///< include k-way cascade proofs + direct refutations
  /// Sweep every registered CFPrimitive through the generic lowering path
  /// (verify_primitive); when false, only the legacy cf_gather proof runs.
  bool primitives = true;
  /// Pass 3 — static memory safety (verify/safety): bounds,
  /// init-before-read and race-freedom for every registered primitive plus
  /// the merge/multiway/blocksort composites, and witness-backed refutation
  /// of the cfprims::safety_ablations().
  bool safety = true;
  std::vector<int> ks = {2, 4, 8};  ///< merge arities for the multiway sweep
};
[[nodiscard]] VerifyReport verify_all(const VerifyOptions& opts = {});

}  // namespace cfmerge::verify
