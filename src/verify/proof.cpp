#include "verify/proof.hpp"

#include <sstream>

namespace cfmerge::verify {

std::string Counterexample::str() const {
  std::ostringstream os;
  os << "w=" << w << " E=" << e << " u=" << u << " la=" << la << " round=" << round
     << ": lanes " << lane1 << " and " << lane2 << " read shared positions " << addr1
     << " and " << addr2 << " — both in bank " << bank;
  return os.str();
}

ProofStep& ProofObject::add_step(std::string name) {
  steps.push_back(ProofStep{std::move(name), StepStatus::kPassed, {}});
  return steps.back();
}

}  // namespace cfmerge::verify
