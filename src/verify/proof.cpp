#include "verify/proof.hpp"

#include <sstream>

namespace cfmerge::verify {

std::string Counterexample::str() const {
  std::ostringstream os;
  if (kind == "out-of-bounds") {
    os << "w=" << w << " E=" << e << " u=" << u << " epoch=" << epoch
       << " round=" << round << ": lane " << lane1 << " touches shared position "
       << addr1 << " outside [0, " << addr2 << ")";
    return os.str();
  }
  if (kind == "uninitialized-read") {
    os << "w=" << w << " E=" << e << " u=" << u << " epoch=" << epoch
       << " round=" << round << ": lane " << lane1 << " reads shared position "
       << addr1 << " with no covering write in any earlier epoch";
    return os.str();
  }
  if (kind == "write-write-race") {
    os << "w=" << w << " E=" << e << " u=" << u << " epoch=" << epoch
       << " round=" << round << ": lanes " << lane1 << " and " << lane2
       << " both write shared position " << addr1 << " within one epoch";
    return os.str();
  }
  os << "w=" << w << " E=" << e << " u=" << u << " la=" << la << " round=" << round
     << ": lanes " << lane1 << " and " << lane2 << " read shared positions " << addr1
     << " and " << addr2 << " — both in bank " << bank;
  return os.str();
}

ProofStep& ProofObject::add_step(std::string name) {
  steps.push_back(ProofStep{std::move(name), StepStatus::kPassed, {}});
  return steps.back();
}

}  // namespace cfmerge::verify
