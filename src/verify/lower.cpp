#include "verify/lower.hpp"

#include <stdexcept>

#include "numtheory/numtheory.hpp"

namespace cfmerge::verify {

const char* variant_name(ScheduleVariant v) {
  switch (v) {
    case ScheduleVariant::kFull: return "cf_gather";
    case ScheduleVariant::kNoBReversal: return "cf_gather_no_pi";
    case ScheduleVariant::kNoRhoShift: return "cf_gather_no_rho";
  }
  return "?";
}

AffineExpr lower_rho(const AffineExpr& raw, int w, int e) {
  const std::int64_t d = numtheory::gcd(w, e);
  if (d == 1) return raw;
  const std::int64_t p = static_cast<std::int64_t>(w) * e / d;
  // l = raw div P; x = raw mod P + l mod d; phys = l*P + (x < P ? x : x - P).
  const AffineExpr l = raw.div(p);
  const AffineExpr x = raw.mod(p) + l.mod(d);
  const AffineExpr cp = AffineExpr::constant(p);
  return l.times(p) + AffineExpr::select(x, cp, x, x - cp);
}

AffineExpr lower_rho_inverse(const AffineExpr& raw, int w, int e) {
  const std::int64_t d = numtheory::gcd(w, e);
  if (d == 1) return raw;
  const std::int64_t p = static_cast<std::int64_t>(w) * e / d;
  // l = raw div P; x = raw mod P - l mod d; raw' = l*P + (x >= 0 ? x : x + P).
  const AffineExpr l = raw.div(p);
  const AffineExpr x = raw.mod(p) - l.mod(d);
  const AffineExpr zero = AffineExpr::constant(0);
  const AffineExpr cp = AffineExpr::constant(p);
  return l.times(p) + AffineExpr::select(x, zero, x + cp, x);
}

CfGatherLowering lower_cf_gather(int w, int e, ScheduleVariant variant) {
  if (w <= 0 || e <= 1 || e > w)
    throw std::invalid_argument("lower_cf_gather: need w > 0 and 1 < E <= w");

  CfGatherLowering lo;
  lo.w = w;
  lo.e = e;
  lo.variant = variant;
  lo.facts = {{kSymU, w}};  // u is a multiple of w (GatherShape::validate)

  const AffineExpr i = AffineExpr::sym(kSymThread, "i");
  const AffineExpr j = AffineExpr::sym(kSymRound, "j");
  const AffineExpr a = AffineExpr::sym(kSymAOff, "a");
  const AffineExpr asz = AffineExpr::sym(kSymASize, "asz");
  const AffineExpr u = AffineExpr::sym(kSymU, "u");

  // RoundSchedule::read: k = a mod E; m = (j - k) mod E == (j - a) mod E.
  lo.m = (j - a).mod(e);
  // B element index e = (k - j - 1) mod E == (a - j - 1) mod E.
  lo.e_idx = (a - j - AffineExpr::constant(1)).mod(e);

  // A branch: raw = pi.raw_of_a(a + m) = a + m.
  lo.raw_a = a + lo.m;

  // B branch: list offset y = b_offset(i) + e_idx = iE - a + e_idx.
  const AffineExpr b_off = i.times(e) - a + lo.e_idx;
  if (variant == ScheduleVariant::kNoBReversal) {
    // Broken layout [ A | B ] without the reversal: raw = la + y.
    lo.raw_b = AffineExpr::sym(kSymLa, "la") + b_off;
  } else {
    // pi.raw_of_b(y) = la + (lb - 1 - y) = uE - 1 - y  (la + lb = uE).
    lo.raw_b = u.times(e) - AffineExpr::constant(1) - b_off;
  }

  lo.raw = AffineExpr::select(lo.m, asz, lo.raw_a, lo.raw_b);
  lo.phys = variant == ScheduleVariant::kNoRhoShift ? lo.raw : lower_rho(lo.raw, w, e);
  return lo;
}

AffineExpr lower_bitonic_pad(const AffineExpr& x, int w, bool padded) {
  return padded ? x + x.div(w) : x;
}

BitonicPairLowering lower_bitonic_pair(std::int64_t j, int w, bool padded) {
  if (j <= 0 || w <= 0)
    throw std::invalid_argument("lower_bitonic_pair: need j >= 1 and w > 0");
  BitonicPairLowering out;
  out.j = j;
  out.padded = padded;
  const AffineExpr p = AffineExpr::sym(kSymThread, "p");
  // i = (p div j) * 2j + p mod j  — insert a 0 bit at position log2(j).
  const AffineExpr i = p.div(j).times(2 * j) + p.mod(j);
  out.lo = lower_bitonic_pad(i, w, padded);
  out.hi = lower_bitonic_pad(i + AffineExpr::constant(j), w, padded);
  return out;
}

}  // namespace cfmerge::verify
