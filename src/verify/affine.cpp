#include "verify/affine.hpp"

#include <sstream>
#include <stdexcept>

#include "numtheory/numtheory.hpp"

namespace cfmerge::verify {

using numtheory::mod;

std::int64_t Env::get(SymId s) const {
  const auto it = values_.find(s);
  if (it == values_.end())
    throw std::invalid_argument("verify::Env: unbound symbol id " + std::to_string(s));
  return it->second;
}

struct AffineExpr::Node {
  enum class Op { kConst, kSym, kAdd, kMulC, kModC, kDivC, kSelect };
  Op op;
  std::int64_t c = 0;     // kConst value; kMulC/kModC/kDivC constant
  SymId sym = -1;         // kSym
  std::string name;       // kSym display name
  std::shared_ptr<const Node> a, b, t, f;  // operands (select: a<b ? t : f)
};

namespace {

using Node = AffineExpr::Node;
using Op = Node::Op;

std::shared_ptr<const Node> make(Node n) {
  return std::make_shared<const Node>(std::move(n));
}

std::int64_t eval_node(const Node& n, const Env& env) {
  switch (n.op) {
    case Op::kConst: return n.c;
    case Op::kSym: return env.get(n.sym);
    case Op::kAdd: return eval_node(*n.a, env) + eval_node(*n.b, env);
    case Op::kMulC: return eval_node(*n.a, env) * n.c;
    case Op::kModC: return mod(eval_node(*n.a, env), n.c);
    case Op::kDivC: {
      const auto d = numtheory::euclid_div(eval_node(*n.a, env), n.c);
      return d.q;
    }
    case Op::kSelect:
      return eval_node(*n.a, env) < eval_node(*n.b, env) ? eval_node(*n.t, env)
                                                         : eval_node(*n.f, env);
  }
  throw std::logic_error("AffineExpr: bad node");
}

void str_node(const Node& n, std::ostream& os) {
  switch (n.op) {
    case Op::kConst: os << n.c; return;
    case Op::kSym: os << n.name; return;
    case Op::kAdd:
      os << '(';
      str_node(*n.a, os);
      os << " + ";
      str_node(*n.b, os);
      os << ')';
      return;
    case Op::kMulC:
      str_node(*n.a, os);
      os << '*' << n.c;
      return;
    case Op::kModC:
      os << '(';
      str_node(*n.a, os);
      os << " mod " << n.c << ')';
      return;
    case Op::kDivC:
      os << '(';
      str_node(*n.a, os);
      os << " div " << n.c << ')';
      return;
    case Op::kSelect:
      os << '[';
      str_node(*n.a, os);
      os << " < ";
      str_node(*n.b, os);
      os << " ? ";
      str_node(*n.t, os);
      os << " : ";
      str_node(*n.f, os);
      os << ']';
      return;
  }
}

std::optional<LinearResidue> residue_node(const Node& n, std::int64_t m,
                                          const SymbolFacts& facts);

/// Reduce a residue's coefficients mod m, dropping symbols whose multiple-of
/// fact makes their whole contribution vanish (s = k·t ⟹ coeff·s ≡ 0 (mod m)
/// whenever m | coeff·k).
LinearResidue normalize(LinearResidue r, std::int64_t m, const SymbolFacts& facts) {
  r.c0 = mod(r.c0, m);
  for (auto it = r.coeffs.begin(); it != r.coeffs.end();) {
    std::int64_t c = mod(it->second, m);
    const auto fact = facts.find(it->first);
    if (c != 0 && fact != facts.end() && mod(c * fact->second, m) == 0) c = 0;
    if (c == 0) {
      it = r.coeffs.erase(it);
    } else {
      it->second = c;
      ++it;
    }
  }
  return r;
}

std::optional<LinearResidue> residue_node(const Node& n, std::int64_t m,
                                          const SymbolFacts& facts) {
  switch (n.op) {
    case Op::kConst: return normalize({n.c, {}}, m, facts);
    case Op::kSym: return normalize({0, {{n.sym, 1}}}, m, facts);
    case Op::kAdd: {
      auto ra = residue_node(*n.a, m, facts);
      auto rb = residue_node(*n.b, m, facts);
      if (!ra || !rb) return std::nullopt;
      LinearResidue out = *ra;
      out.c0 += rb->c0;
      for (const auto& [s, c] : rb->coeffs) out.coeffs[s] += c;
      return normalize(std::move(out), m, facts);
    }
    case Op::kMulC: {
      auto ra = residue_node(*n.a, m, facts);
      if (!ra) return std::nullopt;
      LinearResidue out;
      out.c0 = ra->c0 * n.c;
      for (const auto& [s, c] : ra->coeffs) out.coeffs[s] = c * n.c;
      return normalize(std::move(out), m, facts);
    }
    case Op::kModC: {
      // (x mod c): if the inner residue mod c is a known constant r, the
      // node's value *is* r (mathematical mod), so its residue mod m is
      // r mod m.  Otherwise, when m | c, (x mod c) ≡ x (mod m).
      if (auto rc = residue_node(*n.a, n.c, facts); rc && rc->constant())
        return normalize({rc->c0, {}}, m, facts);
      if (mod(n.c, m) == 0) return residue_node(*n.a, m, facts);
      return std::nullopt;
    }
    case Op::kDivC: return std::nullopt;
    case Op::kSelect: {
      // Branches that agree mod m make the guard irrelevant.
      auto rt = residue_node(*n.t, m, facts);
      auto rf = residue_node(*n.f, m, facts);
      if (rt && rf && *rt == *rf) return rt;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

// ---- Symbolic interval propagation (Pass 3 bounds machinery) ------------

/// The node's value when it is a pure constant expression (kConst, or
/// kAdd/kMulC over constants); nullopt otherwise.
std::optional<std::int64_t> const_value(const Node& n) {
  switch (n.op) {
    case Op::kConst: return n.c;
    case Op::kAdd: {
      const auto a = const_value(*n.a);
      const auto b = const_value(*n.b);
      if (a && b) return *a + *b;
      return std::nullopt;
    }
    case Op::kMulC: {
      const auto a = const_value(*n.a);
      if (a) return *a * n.c;
      return std::nullopt;
    }
    default: return std::nullopt;
  }
}

/// When `n` computes base + c for a constant c (structurally: the base node
/// itself, or kAdd of the base node and a constant expression), returns c.
/// Pointer identity suffices: the lowerings build selects by reusing the
/// guard's shared subtree (select(x, P, x, x − P)).
std::optional<std::int64_t> offset_of(const Node& n, const Node* base) {
  if (&n == base) return 0;
  if (n.op != Op::kAdd) return std::nullopt;
  if (n.a.get() == base)
    if (const auto c = const_value(*n.b)) return *c;
  if (n.b.get() == base)
    if (const auto c = const_value(*n.a)) return *c;
  return std::nullopt;
}

/// Provable pointwise minimum of two endpoint forms; nullopt if incomparable.
std::optional<LinearForm> provable_min(const LinearForm& a, const LinearForm& b) {
  if (definitely_le(a, b)) return a;
  if (definitely_le(b, a)) return b;
  return std::nullopt;
}

std::optional<LinearForm> provable_max(const LinearForm& a, const LinearForm& b) {
  if (definitely_le(a, b)) return b;
  if (definitely_le(b, a)) return a;
  return std::nullopt;
}

/// Floor-divides a form by m when exact: every coefficient divisible by m
/// (then floor distributes over the sum, with the constant floor-divided).
std::optional<LinearForm> floor_div_form(const LinearForm& f, std::int64_t m) {
  LinearForm out;
  for (const auto& [s, c] : f.coeffs) {
    if (c % m != 0) return std::nullopt;
    out.coeffs[s] = c / m;
  }
  out.c0 = numtheory::euclid_div(f.c0, m).q;
  return out;
}

std::optional<SymInterval> interval_node(const Node& n, const SymRanges& ranges) {
  switch (n.op) {
    case Op::kConst:
      return SymInterval{LinearForm::constant(n.c), LinearForm::constant(n.c)};
    case Op::kSym: {
      const auto it = ranges.find(n.sym);
      if (it == ranges.end()) return std::nullopt;
      return it->second;
    }
    case Op::kAdd: {
      const auto a = interval_node(*n.a, ranges);
      const auto b = interval_node(*n.b, ranges);
      if (!a || !b) return std::nullopt;
      return SymInterval{a->lo + b->lo, a->hi + b->hi};
    }
    case Op::kMulC: {
      const auto a = interval_node(*n.a, ranges);
      if (!a) return std::nullopt;
      if (n.c >= 0) return SymInterval{a->lo.times(n.c), a->hi.times(n.c)};
      return SymInterval{a->hi.times(n.c), a->lo.times(n.c)};
    }
    case Op::kModC: {
      const auto a = interval_node(*n.a, ranges);
      // Exact when the inner value provably sits in the first window;
      // otherwise the mathematical mod is still confined to [0, m−1].
      if (a && definitely_le(LinearForm::constant(0), a->lo) &&
          definitely_le(a->hi, LinearForm::constant(n.c - 1)))
        return a;
      return SymInterval{LinearForm::constant(0), LinearForm::constant(n.c - 1)};
    }
    case Op::kDivC: {
      const auto a = interval_node(*n.a, ranges);
      if (!a) return std::nullopt;
      // floor is monotone, so floor-divided endpoints bound the image; both
      // must be exactly divisible for the endpoints to stay linear forms.
      const auto lo = floor_div_form(a->lo, n.c);
      const auto hi = floor_div_form(a->hi, n.c);
      if (!lo || !hi) return std::nullopt;
      return SymInterval{*lo, *hi};
    }
    case Op::kSelect: {
      // Guard a < b with b a constant B: branches equal to a + c (pointer-
      // structurally) are refined by the guard — then-branch a ∈ [lo, B−1],
      // else-branch a ∈ [B, hi] — before hulling with provable min/max.
      const auto ia = interval_node(*n.a, ranges);
      const auto cb = const_value(*n.b);
      auto branch = [&](const Node& br, bool is_then) -> std::optional<SymInterval> {
        if (ia && cb) {
          if (const auto off = offset_of(br, n.a.get())) {
            const LinearForm shift = LinearForm::constant(*off);
            if (is_then) {
              const auto hi =
                  provable_min(ia->hi, LinearForm::constant(*cb - 1));
              if (hi) return SymInterval{ia->lo + shift, *hi + shift};
            } else {
              const auto lo = provable_max(ia->lo, LinearForm::constant(*cb));
              if (lo) return SymInterval{*lo + shift, ia->hi + shift};
            }
          }
        }
        return interval_node(br, ranges);
      };
      const auto t = branch(*n.t, /*is_then=*/true);
      const auto f = branch(*n.f, /*is_then=*/false);
      if (!t || !f) return std::nullopt;
      const auto lo = provable_min(t->lo, f->lo);
      const auto hi = provable_max(t->hi, f->hi);
      if (!lo || !hi) return std::nullopt;
      return SymInterval{*lo, *hi};
    }
  }
  return std::nullopt;
}

}  // namespace

AffineExpr AffineExpr::constant(std::int64_t c) {
  Node n;
  n.op = Op::kConst;
  n.c = c;
  return AffineExpr(make(std::move(n)));
}

AffineExpr AffineExpr::sym(SymId id, std::string name) {
  Node n;
  n.op = Op::kSym;
  n.sym = id;
  n.name = std::move(name);
  return AffineExpr(make(std::move(n)));
}

AffineExpr AffineExpr::operator+(const AffineExpr& o) const {
  Node n;
  n.op = Op::kAdd;
  n.a = node_;
  n.b = o.node_;
  return AffineExpr(make(std::move(n)));
}

AffineExpr AffineExpr::operator-(const AffineExpr& o) const {
  return *this + o.times(-1);
}

AffineExpr AffineExpr::times(std::int64_t c) const {
  Node n;
  n.op = Op::kMulC;
  n.a = node_;
  n.c = c;
  return AffineExpr(make(std::move(n)));
}

AffineExpr AffineExpr::mod(std::int64_t m) const {
  if (m <= 0) throw std::invalid_argument("AffineExpr::mod: modulus must be positive");
  Node n;
  n.op = Op::kModC;
  n.a = node_;
  n.c = m;
  return AffineExpr(make(std::move(n)));
}

AffineExpr AffineExpr::div(std::int64_t m) const {
  if (m <= 0) throw std::invalid_argument("AffineExpr::div: divisor must be positive");
  Node n;
  n.op = Op::kDivC;
  n.a = node_;
  n.c = m;
  return AffineExpr(make(std::move(n)));
}

AffineExpr AffineExpr::select(const AffineExpr& lhs, const AffineExpr& rhs,
                              const AffineExpr& then_e, const AffineExpr& else_e) {
  Node n;
  n.op = Op::kSelect;
  n.a = lhs.node_;
  n.b = rhs.node_;
  n.t = then_e.node_;
  n.f = else_e.node_;
  return AffineExpr(make(std::move(n)));
}

std::int64_t AffineExpr::eval(const Env& env) const {
  if (!node_) throw std::logic_error("AffineExpr: empty expression");
  return eval_node(*node_, env);
}

bool AffineExpr::select_takes_then(const Env& env) const {
  if (!node_ || node_->op != Op::kSelect) return true;
  return eval_node(*node_->a, env) < eval_node(*node_->b, env);
}

std::string AffineExpr::str() const {
  if (!node_) return "<empty>";
  std::ostringstream os;
  str_node(*node_, os);
  return os.str();
}

std::optional<LinearResidue> residue_mod(const AffineExpr& e, std::int64_t m,
                                         const SymbolFacts& facts) {
  if (m <= 0) throw std::invalid_argument("residue_mod: modulus must be positive");
  if (!e.node_) return std::nullopt;
  return residue_node(*e.node_, m, facts);
}

std::string LinearResidue::str(std::int64_t m) const {
  std::ostringstream os;
  os << c0;
  for (const auto& [s, c] : coeffs) os << " + " << c << "*sym" << s;
  os << " (mod " << m << ")";
  return os.str();
}

LinearForm LinearForm::operator+(const LinearForm& o) const {
  LinearForm out = *this;
  out.c0 += o.c0;
  for (const auto& [s, c] : o.coeffs) {
    out.coeffs[s] += c;
    if (out.coeffs[s] == 0) out.coeffs.erase(s);
  }
  return out;
}

LinearForm LinearForm::operator-(const LinearForm& o) const {
  return *this + o.times(-1);
}

LinearForm LinearForm::times(std::int64_t c) const {
  if (c == 0) return constant(0);
  LinearForm out;
  out.c0 = c0 * c;
  for (const auto& [s, k] : coeffs) out.coeffs[s] = k * c;
  return out;
}

std::optional<std::int64_t> LinearForm::residue(std::int64_t m,
                                                const SymbolFacts& facts) const {
  const std::int64_t r = mod(c0, m);
  for (const auto& [s, c] : coeffs) {
    if (mod(c, m) == 0) continue;  // coefficient itself vanishes mod m
    const auto fact = facts.find(s);
    if (fact == facts.end() || mod(c * fact->second, m) != 0) return std::nullopt;
  }
  return r;
}

bool definitely_le(const LinearForm& f, const LinearForm& g) {
  const LinearForm diff = g - f;
  if (diff.c0 < 0) return false;
  for (const auto& [s, c] : diff.coeffs)
    if (c < 0) return false;
  return true;
}

std::optional<SymInterval> interval_hull(const AffineExpr& e, const SymRanges& ranges) {
  if (!e.node_) return std::nullopt;
  return interval_node(*e.node_, ranges);
}

std::string LinearForm::str() const {
  std::ostringstream os;
  os << c0;
  for (const auto& [s, c] : coeffs) os << (c >= 0 ? " + " : " - ") << (c >= 0 ? c : -c)
                                       << "*sym" << s;
  return os.str();
}

}  // namespace cfmerge::verify
