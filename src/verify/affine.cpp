#include "verify/affine.hpp"

#include <sstream>
#include <stdexcept>

#include "numtheory/numtheory.hpp"

namespace cfmerge::verify {

using numtheory::mod;

std::int64_t Env::get(SymId s) const {
  const auto it = values_.find(s);
  if (it == values_.end())
    throw std::invalid_argument("verify::Env: unbound symbol id " + std::to_string(s));
  return it->second;
}

struct AffineExpr::Node {
  enum class Op { kConst, kSym, kAdd, kMulC, kModC, kDivC, kSelect };
  Op op;
  std::int64_t c = 0;     // kConst value; kMulC/kModC/kDivC constant
  SymId sym = -1;         // kSym
  std::string name;       // kSym display name
  std::shared_ptr<const Node> a, b, t, f;  // operands (select: a<b ? t : f)
};

namespace {

using Node = AffineExpr::Node;
using Op = Node::Op;

std::shared_ptr<const Node> make(Node n) {
  return std::make_shared<const Node>(std::move(n));
}

std::int64_t eval_node(const Node& n, const Env& env) {
  switch (n.op) {
    case Op::kConst: return n.c;
    case Op::kSym: return env.get(n.sym);
    case Op::kAdd: return eval_node(*n.a, env) + eval_node(*n.b, env);
    case Op::kMulC: return eval_node(*n.a, env) * n.c;
    case Op::kModC: return mod(eval_node(*n.a, env), n.c);
    case Op::kDivC: {
      const auto d = numtheory::euclid_div(eval_node(*n.a, env), n.c);
      return d.q;
    }
    case Op::kSelect:
      return eval_node(*n.a, env) < eval_node(*n.b, env) ? eval_node(*n.t, env)
                                                         : eval_node(*n.f, env);
  }
  throw std::logic_error("AffineExpr: bad node");
}

void str_node(const Node& n, std::ostream& os) {
  switch (n.op) {
    case Op::kConst: os << n.c; return;
    case Op::kSym: os << n.name; return;
    case Op::kAdd:
      os << '(';
      str_node(*n.a, os);
      os << " + ";
      str_node(*n.b, os);
      os << ')';
      return;
    case Op::kMulC:
      str_node(*n.a, os);
      os << '*' << n.c;
      return;
    case Op::kModC:
      os << '(';
      str_node(*n.a, os);
      os << " mod " << n.c << ')';
      return;
    case Op::kDivC:
      os << '(';
      str_node(*n.a, os);
      os << " div " << n.c << ')';
      return;
    case Op::kSelect:
      os << '[';
      str_node(*n.a, os);
      os << " < ";
      str_node(*n.b, os);
      os << " ? ";
      str_node(*n.t, os);
      os << " : ";
      str_node(*n.f, os);
      os << ']';
      return;
  }
}

std::optional<LinearResidue> residue_node(const Node& n, std::int64_t m,
                                          const SymbolFacts& facts);

/// Reduce a residue's coefficients mod m, dropping symbols whose multiple-of
/// fact makes their whole contribution vanish (s = k·t ⟹ coeff·s ≡ 0 (mod m)
/// whenever m | coeff·k).
LinearResidue normalize(LinearResidue r, std::int64_t m, const SymbolFacts& facts) {
  r.c0 = mod(r.c0, m);
  for (auto it = r.coeffs.begin(); it != r.coeffs.end();) {
    std::int64_t c = mod(it->second, m);
    const auto fact = facts.find(it->first);
    if (c != 0 && fact != facts.end() && mod(c * fact->second, m) == 0) c = 0;
    if (c == 0) {
      it = r.coeffs.erase(it);
    } else {
      it->second = c;
      ++it;
    }
  }
  return r;
}

std::optional<LinearResidue> residue_node(const Node& n, std::int64_t m,
                                          const SymbolFacts& facts) {
  switch (n.op) {
    case Op::kConst: return normalize({n.c, {}}, m, facts);
    case Op::kSym: return normalize({0, {{n.sym, 1}}}, m, facts);
    case Op::kAdd: {
      auto ra = residue_node(*n.a, m, facts);
      auto rb = residue_node(*n.b, m, facts);
      if (!ra || !rb) return std::nullopt;
      LinearResidue out = *ra;
      out.c0 += rb->c0;
      for (const auto& [s, c] : rb->coeffs) out.coeffs[s] += c;
      return normalize(std::move(out), m, facts);
    }
    case Op::kMulC: {
      auto ra = residue_node(*n.a, m, facts);
      if (!ra) return std::nullopt;
      LinearResidue out;
      out.c0 = ra->c0 * n.c;
      for (const auto& [s, c] : ra->coeffs) out.coeffs[s] = c * n.c;
      return normalize(std::move(out), m, facts);
    }
    case Op::kModC: {
      // (x mod c): if the inner residue mod c is a known constant r, the
      // node's value *is* r (mathematical mod), so its residue mod m is
      // r mod m.  Otherwise, when m | c, (x mod c) ≡ x (mod m).
      if (auto rc = residue_node(*n.a, n.c, facts); rc && rc->constant())
        return normalize({rc->c0, {}}, m, facts);
      if (mod(n.c, m) == 0) return residue_node(*n.a, m, facts);
      return std::nullopt;
    }
    case Op::kDivC: return std::nullopt;
    case Op::kSelect: {
      // Branches that agree mod m make the guard irrelevant.
      auto rt = residue_node(*n.t, m, facts);
      auto rf = residue_node(*n.f, m, facts);
      if (rt && rf && *rt == *rf) return rt;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace

AffineExpr AffineExpr::constant(std::int64_t c) {
  Node n;
  n.op = Op::kConst;
  n.c = c;
  return AffineExpr(make(std::move(n)));
}

AffineExpr AffineExpr::sym(SymId id, std::string name) {
  Node n;
  n.op = Op::kSym;
  n.sym = id;
  n.name = std::move(name);
  return AffineExpr(make(std::move(n)));
}

AffineExpr AffineExpr::operator+(const AffineExpr& o) const {
  Node n;
  n.op = Op::kAdd;
  n.a = node_;
  n.b = o.node_;
  return AffineExpr(make(std::move(n)));
}

AffineExpr AffineExpr::operator-(const AffineExpr& o) const {
  return *this + o.times(-1);
}

AffineExpr AffineExpr::times(std::int64_t c) const {
  Node n;
  n.op = Op::kMulC;
  n.a = node_;
  n.c = c;
  return AffineExpr(make(std::move(n)));
}

AffineExpr AffineExpr::mod(std::int64_t m) const {
  if (m <= 0) throw std::invalid_argument("AffineExpr::mod: modulus must be positive");
  Node n;
  n.op = Op::kModC;
  n.a = node_;
  n.c = m;
  return AffineExpr(make(std::move(n)));
}

AffineExpr AffineExpr::div(std::int64_t m) const {
  if (m <= 0) throw std::invalid_argument("AffineExpr::div: divisor must be positive");
  Node n;
  n.op = Op::kDivC;
  n.a = node_;
  n.c = m;
  return AffineExpr(make(std::move(n)));
}

AffineExpr AffineExpr::select(const AffineExpr& lhs, const AffineExpr& rhs,
                              const AffineExpr& then_e, const AffineExpr& else_e) {
  Node n;
  n.op = Op::kSelect;
  n.a = lhs.node_;
  n.b = rhs.node_;
  n.t = then_e.node_;
  n.f = else_e.node_;
  return AffineExpr(make(std::move(n)));
}

std::int64_t AffineExpr::eval(const Env& env) const {
  if (!node_) throw std::logic_error("AffineExpr: empty expression");
  return eval_node(*node_, env);
}

bool AffineExpr::select_takes_then(const Env& env) const {
  if (!node_ || node_->op != Op::kSelect) return true;
  return eval_node(*node_->a, env) < eval_node(*node_->b, env);
}

std::string AffineExpr::str() const {
  if (!node_) return "<empty>";
  std::ostringstream os;
  str_node(*node_, os);
  return os.str();
}

std::optional<LinearResidue> residue_mod(const AffineExpr& e, std::int64_t m,
                                         const SymbolFacts& facts) {
  if (m <= 0) throw std::invalid_argument("residue_mod: modulus must be positive");
  if (!e.node_) return std::nullopt;
  return residue_node(*e.node_, m, facts);
}

std::string LinearResidue::str(std::int64_t m) const {
  std::ostringstream os;
  os << c0;
  for (const auto& [s, c] : coeffs) os << " + " << c << "*sym" << s;
  os << " (mod " << m << ")";
  return os.str();
}

LinearForm LinearForm::operator+(const LinearForm& o) const {
  LinearForm out = *this;
  out.c0 += o.c0;
  for (const auto& [s, c] : o.coeffs) {
    out.coeffs[s] += c;
    if (out.coeffs[s] == 0) out.coeffs.erase(s);
  }
  return out;
}

LinearForm LinearForm::operator-(const LinearForm& o) const {
  return *this + o.times(-1);
}

LinearForm LinearForm::times(std::int64_t c) const {
  if (c == 0) return constant(0);
  LinearForm out;
  out.c0 = c0 * c;
  for (const auto& [s, k] : coeffs) out.coeffs[s] = k * c;
  return out;
}

std::optional<std::int64_t> LinearForm::residue(std::int64_t m,
                                                const SymbolFacts& facts) const {
  const std::int64_t r = mod(c0, m);
  for (const auto& [s, c] : coeffs) {
    if (mod(c, m) == 0) continue;  // coefficient itself vanishes mod m
    const auto fact = facts.find(s);
    if (fact == facts.end() || mod(c * fact->second, m) != 0) return std::nullopt;
  }
  return r;
}

std::string LinearForm::str() const {
  std::ostringstream os;
  os << c0;
  for (const auto& [s, c] : coeffs) os << (c >= 0 ? " + " : " - ") << (c >= 0 ? c : -c)
                                       << "*sym" << s;
  return os.str();
}

}  // namespace cfmerge::verify
