#include "verify/analyzer.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cfprims/primitive.hpp"
#include "gather/permutation.hpp"
#include "gather/schedule.hpp"
#include "gpusim/shared_memory.hpp"
#include "numtheory/numtheory.hpp"
#include "verify/primitive.hpp"
#include "verify/safety.hpp"
#include "worstcase/builder.hpp"
#include "worstcase/predict.hpp"

namespace cfmerge::verify {

namespace {

using numtheory::mod;

/// Deterministic split-pattern generator (splitmix-style LCG); the analyzer
/// must be reproducible, so no std::random devices.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : x_(seed) {}
  std::uint64_t next() {
    x_ = x_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return x_ >> 33;
  }

 private:
  std::uint64_t x_;
};

/// Structured + seeded-random per-thread |A_i| vectors, all in [0, E].
std::vector<std::vector<std::int64_t>> sample_asizes(int u, int e, int random_trials,
                                                     std::uint64_t seed) {
  const auto un = static_cast<std::size_t>(u);
  std::vector<std::vector<std::int64_t>> out;
  out.emplace_back(un, static_cast<std::int64_t>(e));  // all-A
  out.emplace_back(un, std::int64_t{0});               // all-B
  std::vector<std::int64_t> alt(un);
  for (int i = 0; i < u; ++i) alt[static_cast<std::size_t>(i)] = i % 2 == 0 ? e : 0;
  out.push_back(std::move(alt));
  std::vector<std::int64_t> ramp(un);
  for (int i = 0; i < u; ++i) ramp[static_cast<std::size_t>(i)] = i % (e + 1);
  out.push_back(std::move(ramp));
  std::vector<std::int64_t> partial(un, static_cast<std::int64_t>(e));
  partial[0] = e / 2;  // one partial thread among all-A
  out.push_back(std::move(partial));
  Lcg rng(seed);
  for (int t = 0; t < random_trials; ++t) {
    std::vector<std::int64_t> v(un);
    for (int i = 0; i < u; ++i)
      v[static_cast<std::size_t>(i)] =
          static_cast<std::int64_t>(rng.next() % static_cast<std::uint64_t>(e + 1));
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<std::int64_t> prefix_offsets(const std::vector<std::int64_t>& sizes) {
  std::vector<std::int64_t> off(sizes.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    off[i] = acc;
    acc += sizes[i];
  }
  return off;
}

Env make_env(int i, int j, std::int64_t a, std::int64_t asz, int u, std::int64_t la) {
  Env env;
  env.set(kSymThread, i);
  env.set(kSymRound, j);
  env.set(kSymAOff, a);
  env.set(kSymASize, asz);
  env.set(kSymU, u);
  env.set(kSymLa, la);
  return env;
}

void fail(ProofStep& st, std::string detail) {
  st.status = StepStatus::kFailed;
  st.detail = std::move(detail);
}

// ---------------------------------------------------------------------------
// verify_cf_gather steps
// ---------------------------------------------------------------------------

/// The lowering must reproduce RoundSchedule::read exactly on concrete
/// schedules before any symbolic conclusion about it means anything.
void check_lowering_faithfulness(ProofStep& st, const CfGatherLowering& lo) {
  if (lo.variant == ScheduleVariant::kNoBReversal) {
    st.status = StepStatus::kSkipped;
    st.detail = "deliberately broken layout; no runtime schedule to compare against";
    return;
  }
  const int w = lo.w;
  const int e = lo.e;
  std::int64_t checked = 0;
  for (const int u : {w, 2 * w}) {
    for (const auto& asz : sample_asizes(u, e, 4, 0x5eedULL)) {
      const auto aoff = prefix_offsets(asz);
      std::int64_t la = 0;
      for (const auto s : asz) la += s;
      const gather::GatherShape shape{w, e, u, la, static_cast<std::int64_t>(u) * e - la};
      const gather::RoundSchedule sched(shape, aoff, asz);
      for (int i = 0; i < u; ++i) {
        for (int j = 0; j < e; ++j) {
          const Env env = make_env(i, j, aoff[static_cast<std::size_t>(i)],
                                   asz[static_cast<std::size_t>(i)], u, la);
          const gather::GatherRead r = sched.read(i, j);
          const std::int64_t raw = lo.raw.eval(env);
          const std::int64_t phys = lo.phys.eval(env);
          const std::int64_t want_phys =
              lo.variant == ScheduleVariant::kNoRhoShift ? r.raw : r.phys;
          if (raw != r.raw || phys != want_phys ||
              lo.raw.select_takes_then(env) != r.from_a) {
            std::ostringstream os;
            os << "IR disagrees with RoundSchedule::read at u=" << u << " i=" << i
               << " j=" << j << ": IR raw=" << raw << " phys=" << phys
               << ", runtime raw=" << r.raw << " phys=" << want_phys;
            fail(st, os.str());
            return;
          }
          ++checked;
        }
      }
    }
  }
  std::ostringstream os;
  os << "IR == RoundSchedule::read on " << checked
     << " (schedule, thread, round) samples; raw = " << lo.raw.str();
  st.detail = os.str();
}

/// Per-thread window lemmas, exhaustive over the finite quotient the
/// expressions factor through: m and e_idx depend on a only via a mod E, so
/// checking a in [0, 2E) x asz in [0, E] x j in [0, E) covers every thread
/// of every schedule.
void check_branch_totality(ProofStep& st, const CfGatherLowering& lo) {
  const int e = lo.e;
  std::int64_t checked = 0;
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> first_period(
      static_cast<std::size_t>(e));
  for (std::int64_t a = 0; a < 2 * e; ++a) {
    std::vector<std::pair<std::int64_t, std::int64_t>> row;
    for (int j = 0; j < e; ++j) {
      const Env env = make_env(0, j, a, 0, lo.w, 0);
      const std::int64_t m = lo.m.eval(env);
      const std::int64_t eidx = lo.e_idx.eval(env);
      if (m < 0 || m >= e || eidx < 0 || eidx >= e || m + eidx != e - 1) {
        std::ostringstream os;
        os << "m + e_idx != E-1 at a=" << a << " j=" << j << " (m=" << m
           << ", e_idx=" << eidx << ")";
        fail(st, os.str());
        return;
      }
      row.emplace_back(m, eidx);
      ++checked;
    }
    if (a < e) {
      first_period[static_cast<std::size_t>(a)] = row;
    } else if (row != first_period[static_cast<std::size_t>(a - e)]) {
      fail(st, "m/e_idx not periodic in a with period E at a=" + std::to_string(a));
      return;
    }
    // For every split size: branch A fires iff m < asz, the branch indices
    // stay inside the windows, and over the E rounds each element of A_i and
    // B_i is read exactly once (the round<->element bijection of Lemma 2).
    for (std::int64_t asz = 0; asz <= e; ++asz) {
      std::vector<int> seen_a(static_cast<std::size_t>(asz), 0);
      std::vector<int> seen_b(static_cast<std::size_t>(e - asz), 0);
      for (int j = 0; j < e; ++j) {
        const auto [m, eidx] = row[static_cast<std::size_t>(j)];
        if (m < asz) {
          ++seen_a[static_cast<std::size_t>(m)];
        } else {
          if (eidx >= e - asz) {
            fail(st, "B index out of window at a=" + std::to_string(a) +
                         " asz=" + std::to_string(asz) + " j=" + std::to_string(j));
            return;
          }
          ++seen_b[static_cast<std::size_t>(eidx)];
        }
        ++checked;
      }
      for (const int c : seen_a)
        if (c != 1) {
          fail(st, "A element not read exactly once (a=" + std::to_string(a) +
                       " asz=" + std::to_string(asz) + ")");
          return;
        }
      for (const int c : seen_b)
        if (c != 1) {
          fail(st, "B element not read exactly once (a=" + std::to_string(a) +
                       " asz=" + std::to_string(asz) + ")");
          return;
        }
    }
  }
  std::ostringstream os;
  os << "m + e_idx = E-1, window containment and per-thread round<->element "
        "bijection hold on all "
     << checked << " points of the (a mod E, |A_i|, j) quotient";
  st.detail = os.str();
}

/// raw ≡ j (mod E) on both branches, derived symbolically — Lemma 2's
/// residue invariant for every thread, split and u at once.
void check_residue_invariant(ProofStep& st, const CfGatherLowering& lo) {
  const LinearResidue want{0, {{kSymRound, 1}}};
  const auto got = residue_mod(lo.raw, lo.e, lo.facts);
  if (got && *got == want) {
    std::ostringstream os;
    os << "raw ≡ " << want.str(lo.e) << " derived for both gather branches";
    st.detail = os.str();
    return;
  }
  const auto ra = residue_mod(lo.raw_a, lo.e, lo.facts);
  const auto rb = residue_mod(lo.raw_b, lo.e, lo.facts);
  std::ostringstream os;
  os << "residue invariant raw ≡ j (mod E) underivable: A branch "
     << (ra ? ra->str(lo.e) : "<irreducible>") << ", B branch "
     << (rb ? rb->str(lo.e) : "<irreducible>");
  fail(st, os.str());
}

/// Warp t's round reads tile exactly one period [α, α+wE) mod wE: the A
/// window [α, β) plus the pi-reflected B window, whose endpoints are linear
/// forms in (α, β, t, u).  Exact interval algebra — no sampling.
void check_warp_window_coverage(ProofStep& st, const CfGatherLowering& lo) {
  constexpr SymId kAlpha = 100;
  constexpr SymId kBeta = 101;
  constexpr SymId kT = 102;
  const std::int64_t we = static_cast<std::int64_t>(lo.w) * lo.e;
  const LinearForm alpha = LinearForm::sym(kAlpha);
  const LinearForm beta = LinearForm::sym(kBeta);
  const LinearForm t = LinearForm::sym(kT);
  const LinearForm u = LinearForm::sym(kSymU);

  // A window I1 = [alpha, beta).  B offsets of the warp are
  // [t·wE - alpha, (t+1)·wE - beta); pi (y -> uE - 1 - y) reflects them to
  // raw interval I2 = [uE - (t+1)wE + beta, uE - t·wE + alpha).
  const LinearForm i1_len = beta - alpha;
  const LinearForm i2_start =
      u.times(lo.e) - t.times(we) - LinearForm::constant(we) + beta;
  const LinearForm i2_end = u.times(lo.e) - t.times(we) + alpha;

  const LinearForm len_sum = i1_len + (i2_end - i2_start);
  if (!(len_sum == LinearForm::constant(we))) {
    fail(st, "|I1| + |I2| != wE: got " + len_sum.str());
    return;
  }
  const auto gap = (i2_start - beta).residue(we, lo.facts);
  if (!gap || *gap != 0) {
    fail(st, "I2 does not start at beta (mod wE): gap " + (i2_start - beta).str());
    return;
  }
  // Counting: any window of length wE contains exactly w positions ≡ j
  // (mod E) — checked over one full period of window alignments.
  for (std::int64_t a0 = 0; a0 < 2 * lo.e; ++a0) {
    for (int j = 0; j < lo.e; ++j) {
      int count = 0;
      for (std::int64_t x = a0; x < a0 + we; ++x)
        if (mod(x, lo.e) == j) ++count;
      if (count != lo.w) {
        fail(st, "residue-slot count != w in window at alpha=" + std::to_string(a0));
        return;
      }
    }
  }
  std::ostringstream os;
  os << "I1 ⊔ I2 ≡ [α, α+wE) (mod wE): |I1|+|I2| = " << we << " exactly and "
     << "I2.start - β = " << (i2_start - beta).str() << " ≡ 0 (mod " << we
     << ") given u ≡ 0 (mod " << lo.w << "); each round owns exactly w slots "
     << "of the period, one per thread (disjoint windows + residue invariant)";
  st.detail = os.str();
}

/// bank(rho(m)) is periodic in m with period wE — so the per-period CRS
/// table below covers every raw index of every schedule.
void check_bank_periodicity(ProofStep& st, const CfGatherLowering& lo,
                            const gather::CircularShift& rho) {
  const std::int64_t we = static_cast<std::int64_t>(lo.w) * lo.e;
  const bool identity = lo.variant == ScheduleVariant::kNoRhoShift;
  for (std::int64_t m = 0; m < we; ++m) {
    const std::int64_t b1 = mod(identity ? m : rho(m), lo.w);
    const std::int64_t b2 = mod(identity ? m + we : rho(m + we), lo.w);
    if (b1 != b2) {
      fail(st, "bank(rho(m)) not wE-periodic at m=" + std::to_string(m));
      return;
    }
  }
  st.detail = "bank(rho(m + wE)) == bank(rho(m)) for all m in [0, wE)";
}

/// Corollary 3: for every round j, the banks of {rho(j + kE) : k in [0, w)}
/// form a complete residue system mod w.  Returns the first collision.
struct CrsFailure {
  int j;
  int k1;
  int k2;
};
std::optional<CrsFailure> check_bank_crs(ProofStep& st, const CfGatherLowering& lo,
                                         const gather::CircularShift& rho) {
  const bool identity = lo.variant == ScheduleVariant::kNoRhoShift;
  for (int j = 0; j < lo.e; ++j) {
    std::array<int, gpusim::kMaxLanes> owner{};
    owner.fill(-1);
    for (int k = 0; k < lo.w; ++k) {
      const std::int64_t raw = static_cast<std::int64_t>(k) * lo.e + j;
      const auto bank = static_cast<std::size_t>(mod(identity ? raw : rho(raw), lo.w));
      if (owner[bank] >= 0) {
        std::ostringstream os;
        os << "round " << j << ": slots k=" << owner[bank] << " and k=" << k
           << " map to bank " << bank << " — {bank(rho(j + kE))} is not a "
           << "complete residue system";
        fail(st, os.str());
        return CrsFailure{j, owner[bank], k};
      }
      owner[bank] = k;
    }
  }
  std::ostringstream os;
  os << "per-round bank tables are permutations of [0, " << lo.w << ") for all "
     << lo.e << " rounds (d = " << numtheory::gcd(lo.w, lo.e) << ")";
  st.detail = os.str();
  return std::nullopt;
}

/// Constructive witness for the no-rho refutation: the all-A split makes
/// thread k read raw index kE + j in round j, so a CRS failure (j, k1, k2)
/// is immediately a concrete lane pair.
Counterexample no_rho_witness(int w, int e, const CrsFailure& f) {
  Counterexample ce;
  ce.w = w;
  ce.e = e;
  ce.u = w;
  ce.la = static_cast<std::int64_t>(w) * e;
  ce.a_sizes.assign(static_cast<std::size_t>(w), e);
  ce.round = f.j;
  ce.lane1 = f.k1;
  ce.lane2 = f.k2;
  ce.addr1 = static_cast<std::int64_t>(f.k1) * e + f.j;
  ce.addr2 = static_cast<std::int64_t>(f.k2) * e + f.j;
  ce.bank = static_cast<int>(mod(ce.addr1, w));
  return ce;
}

/// Bounded concrete search for a no-pi witness: evaluate the broken lowering
/// over structured and seeded-random splits and scan each warp round for a
/// same-bank pair of distinct physical addresses.
std::optional<Counterexample> search_no_pi_witness(const CfGatherLowering& lo) {
  const int w = lo.w;
  const int e = lo.e;
  for (const int u : {w, 2 * w}) {
    for (const auto& asz : sample_asizes(u, e, 64, 0xbadb1Ull)) {
      const auto aoff = prefix_offsets(asz);
      std::int64_t la = 0;
      for (const auto s : asz) la += s;
      std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));
      for (int j = 0; j < e; ++j) {
        for (int warp = 0; warp < u / w; ++warp) {
          for (int lane = 0; lane < w; ++lane) {
            const int i = warp * w + lane;
            const Env env = make_env(i, j, aoff[static_cast<std::size_t>(i)],
                                     asz[static_cast<std::size_t>(i)], u, la);
            addrs[static_cast<std::size_t>(lane)] = lo.phys.eval(env);
          }
          for (int l1 = 0; l1 < w; ++l1) {
            for (int l2 = l1 + 1; l2 < w; ++l2) {
              const std::int64_t a1 = addrs[static_cast<std::size_t>(l1)];
              const std::int64_t a2 = addrs[static_cast<std::size_t>(l2)];
              if (a1 != a2 && mod(a1, w) == mod(a2, w)) {
                Counterexample ce;
                ce.w = w;
                ce.e = e;
                ce.u = u;
                ce.la = la;
                ce.a_sizes = asz;
                ce.round = j;
                ce.lane1 = warp * w + l1;
                ce.lane2 = warp * w + l2;
                ce.addr1 = a1;
                ce.addr2 = a2;
                ce.bank = static_cast<int>(mod(a1, w));
                return ce;
              }
            }
          }
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace

ProofObject verify_cf_gather(int w, int e, ScheduleVariant variant) {
  const CfGatherLowering lo = lower_cf_gather(w, e, variant);
  ProofObject po;
  po.schedule = variant_name(variant);
  po.family = po.schedule;  // the gather variants are registered primitives
  po.w = w;
  po.e = e;
  po.d = numtheory::gcd(w, e);
  po.scope = "all u = k*w (k >= 1), all merge-path splits, all rounds j in [0, E)";

  check_lowering_faithfulness(po.add_step("lowering-faithfulness"), lo);
  check_branch_totality(po.add_step("branch-totality"), lo);
  check_residue_invariant(po.add_step("residue-invariant"), lo);
  check_warp_window_coverage(po.add_step("warp-window-coverage"), lo);

  const gather::CircularShift rho(w, e, 2 * static_cast<std::int64_t>(w) * e);
  check_bank_periodicity(po.add_step("bank-periodicity"), lo, rho);
  const auto crs_failure = check_bank_crs(po.add_step("bank-crs"), lo, rho);

  bool any_failed = false;
  for (const auto& st : po.steps) any_failed |= st.status == StepStatus::kFailed;
  if (!any_failed) {
    po.verdict = Verdict::kProved;
    return po;
  }

  po.verdict = Verdict::kRefutedNoWitness;
  if (variant == ScheduleVariant::kNoRhoShift && crs_failure) {
    po.counterexample = no_rho_witness(w, e, *crs_failure);
    po.verdict = Verdict::kCounterexample;
  } else if (variant == ScheduleVariant::kNoBReversal) {
    if (auto ce = search_no_pi_witness(lo)) {
      po.counterexample = *std::move(ce);
      po.verdict = Verdict::kCounterexample;
    }
  }
  return po;
}

// ---------------------------------------------------------------------------
// Bitonic exchange
// ---------------------------------------------------------------------------

namespace {

/// Measured conflict profile of the bitonic exchange on one tile, derived by
/// evaluating the lowered address expressions through the cost model.
struct BitonicProfile {
  int linear_degree = 1;  ///< worst load/store row degree (must be 1)
  struct StrideDegree {
    std::int64_t j = 0;
    int degree = 1;
  };
  std::vector<StrideDegree> strides;            ///< j = tile/2 .. 1
  std::optional<Counterexample> first_witness;  ///< first colliding lane pair
};

void bitonic_profile_validate(std::int64_t tile, int w) {
  if (w <= 0 || w > gpusim::kMaxLanes ||
      !std::has_single_bit(static_cast<std::uint64_t>(w)))
    throw std::invalid_argument("verify_bitonic: warp width must be a power of two");
  if (tile < 2 * w || !std::has_single_bit(static_cast<std::uint64_t>(tile)))
    throw std::invalid_argument("verify_bitonic: tile must be a power of two >= 2w");
}

BitonicProfile profile_bitonic(std::int64_t tile, int w, bool padded) {
  BitonicProfile prof;

  // Load/store phases address pad(t) for t in a w-aligned row.
  {
    std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));
    const AffineExpr t = AffineExpr::sym(kSymThread, "t");
    const AffineExpr pad_t = lower_bitonic_pad(t, w, padded);
    for (std::int64_t b0 = 0; b0 < tile; b0 += w) {
      for (int lane = 0; lane < w; ++lane) {
        Env env;
        env.set(kSymThread, b0 + lane);
        addrs[static_cast<std::size_t>(lane)] = pad_t.eval(env);
      }
      prof.linear_degree =
          std::max(prof.linear_degree, gpusim::shared_access_cost(addrs, w).cycles);
    }
  }

  const std::int64_t pairs = tile / 2;
  for (std::int64_t j = pairs; j >= 1; j /= 2) {
    const BitonicPairLowering pl = lower_bitonic_pair(j, w, padded);
    std::vector<std::int64_t> lo_addr(static_cast<std::size_t>(w));
    std::vector<std::int64_t> hi_addr(static_cast<std::size_t>(w));
    int max_degree = 1;
    for (std::int64_t p0 = 0; p0 < pairs; p0 += w) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t p = p0 + lane;
        if (p >= pairs) {
          lo_addr[static_cast<std::size_t>(lane)] = gpusim::kInactiveLane;
          hi_addr[static_cast<std::size_t>(lane)] = gpusim::kInactiveLane;
          continue;
        }
        Env env;
        env.set(kSymThread, p);
        lo_addr[static_cast<std::size_t>(lane)] = pl.lo.eval(env);
        hi_addr[static_cast<std::size_t>(lane)] = pl.hi.eval(env);
      }
      for (const auto* addrs : {&lo_addr, &hi_addr}) {
        const auto cost = gpusim::shared_access_cost(*addrs, w);
        max_degree = std::max(max_degree, cost.cycles);
        if (cost.cycles > 1 && !prof.first_witness) {
          // Record the first colliding lane pair as the concrete witness.
          for (int l1 = 0; l1 < w && !prof.first_witness; ++l1) {
            for (int l2 = l1 + 1; l2 < w && !prof.first_witness; ++l2) {
              const std::int64_t a1 = (*addrs)[static_cast<std::size_t>(l1)];
              const std::int64_t a2 = (*addrs)[static_cast<std::size_t>(l2)];
              if (a1 == gpusim::kInactiveLane || a2 == gpusim::kInactiveLane ||
                  a1 == a2 || mod(a1, w) != mod(a2, w))
                continue;
              prof.first_witness =
                  Counterexample{w,
                                 static_cast<int>(tile),
                                 0,
                                 0,
                                 {},
                                 static_cast<int>(j),
                                 static_cast<int>(p0) + l1,
                                 static_cast<int>(p0) + l2,
                                 a1,
                                 a2,
                                 static_cast<int>(mod(a1, w)),
                                 0,
                                 {}};
            }
          }
        }
      }
    }
    prof.strides.push_back({j, max_degree});
  }
  return prof;
}

/// Structural closed form for the exchange degree at stride j.  j >= w keeps
/// a warp inside one run of consecutive addresses: conflict free either way.
/// For j < w a warp spans w/j runs that alias pairwise mod w (degree 2); the
/// one-slot-per-w padding shifts only the tile's upper half by one, which
/// separates the halves exactly when the runs are single elements (j = 1) and
/// still overlaps them on j - 1 of every 2j banks otherwise.
int predicted_bitonic_degree(std::int64_t j, int w, bool padded) {
  if (j >= w) return 1;
  if (padded && j == 1) return 1;
  return 2;
}

}  // namespace

ProofObject verify_bitonic_exchange(std::int64_t tile, int w, bool padded) {
  bitonic_profile_validate(tile, w);
  ProofObject po;
  po.schedule = padded ? "bitonic_profile_padded" : "bitonic_profile_unpadded";
  po.w = w;
  po.e = static_cast<int>(tile);
  po.d = 1;
  po.scope =
      "exchange degree == structural closed form for every substage stride "
      "j = tile/2 .. 1, every warp of one tile";

  const BitonicProfile prof = profile_bitonic(tile, w, padded);

  {
    auto& st = po.add_step("linear-load-store");
    if (prof.linear_degree == 1)
      st.detail = "pad(t) over every w-aligned row hits w distinct banks";
    else
      fail(st, "load/store row has degree " + std::to_string(prof.linear_degree));
  }
  for (const auto& sd : prof.strides) {
    auto& st = po.add_step("stride-" + std::to_string(sd.j));
    const int want = predicted_bitonic_degree(sd.j, w, padded);
    if (sd.degree == want) {
      st.detail = want == 1 ? "conflict free: every warp access hits distinct banks"
                            : "structural degree " + std::to_string(want) +
                                  " confirmed (j < w aliases runs pairwise mod w)";
    } else {
      fail(st, "measured degree " + std::to_string(sd.degree) +
                   " != structural prediction " + std::to_string(want));
    }
  }

  bool any_failed = false;
  for (const auto& st : po.steps) any_failed |= st.status == StepStatus::kFailed;
  po.verdict = !any_failed ? Verdict::kProved
               : prof.first_witness ? Verdict::kCounterexample
                                    : Verdict::kRefutedNoWitness;
  if (any_failed && prof.first_witness) po.counterexample = *prof.first_witness;
  return po;
}

ProofObject refute_bitonic_unpadded(std::int64_t tile, int w) {
  bitonic_profile_validate(tile, w);
  ProofObject po;
  po.schedule = "bitonic_exchange_unpadded_cf_claim";
  po.w = w;
  po.e = static_cast<int>(tile);
  po.d = 1;
  po.scope = "claim: every substage of the unpadded exchange is conflict free";

  const BitonicProfile prof = profile_bitonic(tile, w, /*padded=*/false);
  bool refuted = false;
  for (const auto& sd : prof.strides) {
    auto& st = po.add_step("stride-" + std::to_string(sd.j));
    if (sd.degree == 1) {
      st.detail = "every warp access hits distinct banks";
    } else {
      fail(st, "stride " + std::to_string(sd.j) + " serializes with degree " +
                   std::to_string(sd.degree) +
                   " (structural: j < w leaves banks idle)");
      refuted = true;
    }
  }
  po.verdict = !refuted              ? Verdict::kProved
               : prof.first_witness ? Verdict::kCounterexample
                                    : Verdict::kRefutedNoWitness;
  if (refuted && prof.first_witness) po.counterexample = *prof.first_witness;
  return po;
}

// ---------------------------------------------------------------------------
// Theorem 8 static walk
// ---------------------------------------------------------------------------

SerialMergeBounds serial_merge_conflict_bounds(
    const std::vector<sort::MergeLaneDesc>& lanes, int w, int e, std::int64_t la) {
  if (static_cast<int>(lanes.size()) != w)
    throw std::invalid_argument("serial_merge_conflict_bounds: one warp expected");
  SerialMergeBounds out;
  std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));

  // The two preload accesses are data independent (list heads), so their
  // conflicts are forced: they count toward the minimum as well.
  for (int lane = 0; lane < w; ++lane) {
    const auto& d = lanes[static_cast<std::size_t>(lane)];
    addrs[static_cast<std::size_t>(lane)] =
        d.a_size > 0 ? d.a_begin : gpusim::kInactiveLane;
  }
  std::int64_t forced = gpusim::shared_access_cost(addrs, w, true).conflicts;
  for (int lane = 0; lane < w; ++lane) {
    const auto& d = lanes[static_cast<std::size_t>(lane)];
    addrs[static_cast<std::size_t>(lane)] =
        d.b_size > 0 ? la + d.b_begin : gpusim::kInactiveLane;
  }
  forced += gpusim::shared_access_cost(addrs, w, true).conflicts;
  out.min_conflicts = forced;
  out.max_conflicts = forced;

  // Step s fetch: the lane has consumed s+1 elements, ca of them from A.
  // If the winner was A, the fetch address is a_begin + ca with
  // ca in [max(1, s+1-bsz), min(s+1, asz-1)]; symmetrically for B.  A sound
  // per-access upper bound caps each bank's degree by both the lanes that
  // can reach it and the distinct candidate addresses in it.
  for (int s = 0; s < e; ++s) {
    std::vector<int> bank_lanes(static_cast<std::size_t>(w), 0);
    std::vector<std::set<std::int64_t>> bank_addrs(static_cast<std::size_t>(w));
    for (int lane = 0; lane < w; ++lane) {
      const auto& d = lanes[static_cast<std::size_t>(lane)];
      std::set<std::int64_t> cand;
      const std::int64_t taken = s + 1;
      const std::int64_t ca_lo = std::max<std::int64_t>(1, taken - d.b_size);
      const std::int64_t ca_hi = std::min<std::int64_t>(taken, d.a_size - 1);
      for (std::int64_t ca = ca_lo; ca <= ca_hi; ++ca) cand.insert(d.a_begin + ca);
      const std::int64_t cb_lo = std::max<std::int64_t>(1, taken - d.a_size);
      const std::int64_t cb_hi = std::min<std::int64_t>(taken, d.b_size - 1);
      for (std::int64_t cb = cb_lo; cb <= cb_hi; ++cb)
        cand.insert(la + d.b_begin + cb);
      std::uint64_t banks_hit = 0;
      for (const std::int64_t a : cand) {
        const auto b = static_cast<std::size_t>(mod(a, w));
        bank_addrs[b].insert(a);
        banks_hit |= std::uint64_t{1} << b;
      }
      for (int b = 0; b < w; ++b)
        if ((banks_hit >> static_cast<unsigned>(b)) & 1U)
          ++bank_lanes[static_cast<std::size_t>(b)];
    }
    int worst = 1;
    for (int b = 0; b < w; ++b) {
      const int degree =
          std::min(bank_lanes[static_cast<std::size_t>(b)],
                   static_cast<int>(bank_addrs[static_cast<std::size_t>(b)].size()));
      worst = std::max(worst, degree);
    }
    out.max_conflicts += worst - 1;
  }
  return out;
}

WorstCaseAnalysis analyze_worstcase_warp(const worstcase::Params& p) {
  p.validate();
  WorstCaseAnalysis an;
  an.w = p.w;
  an.e = p.e;
  const std::int64_t we = static_cast<std::int64_t>(p.w) * p.e;
  const worstcase::MergeInput in = worstcase::worst_case_merge_input(p, 2 * we);
  const auto tuples = worstcase::warp_tuples(p, false);
  const std::int64_t la = worstcase::a_total(tuples);

  std::vector<sort::MergeLaneDesc> lanes(static_cast<std::size_t>(p.w));
  std::int64_t ao = 0;
  std::int64_t bo = 0;
  for (int i = 0; i < p.w; ++i) {
    const worstcase::Tuple& t = tuples[static_cast<std::size_t>(i)];
    lanes[static_cast<std::size_t>(i)] = {ao, t.a, bo, t.b};
    ao += t.a;
    bo += t.b;
  }

  // Static replay of warp_serial_merge's access cadence.  The construction
  // uses strictly increasing distinct values, so every comparison outcome is
  // forced by the interleaving pattern — no simulation, just the trace.
  struct LaneState {
    std::int64_t next_a = 0;
    std::int64_t next_b = 0;
    std::int32_t head_a = 0;
    std::int32_t head_b = 0;
    bool has_a = false;
    bool has_b = false;
  };
  std::vector<LaneState> st(static_cast<std::size_t>(p.w));
  std::vector<std::int64_t> addrs(static_cast<std::size_t>(p.w));
  std::int64_t conflicts = 0;
  const auto charge = [&] {
    conflicts += gpusim::shared_access_cost(addrs, p.w, true).conflicts;
    ++an.accesses;
  };

  for (int lane = 0; lane < p.w; ++lane) {
    const auto& d = lanes[static_cast<std::size_t>(lane)];
    auto& s = st[static_cast<std::size_t>(lane)];
    s = LaneState{d.a_begin + 1, d.b_begin + 1, 0, 0, d.a_size > 0, d.b_size > 0};
    addrs[static_cast<std::size_t>(lane)] =
        s.has_a ? d.a_begin : gpusim::kInactiveLane;
    if (s.has_a) s.head_a = in.a[static_cast<std::size_t>(d.a_begin)];
  }
  charge();
  for (int lane = 0; lane < p.w; ++lane) {
    const auto& d = lanes[static_cast<std::size_t>(lane)];
    auto& s = st[static_cast<std::size_t>(lane)];
    addrs[static_cast<std::size_t>(lane)] =
        s.has_b ? la + d.b_begin : gpusim::kInactiveLane;
    if (s.has_b) s.head_b = in.b[static_cast<std::size_t>(d.b_begin)];
  }
  charge();

  for (int step = 0; step < p.e; ++step) {
    for (int lane = 0; lane < p.w; ++lane) {
      const auto& d = lanes[static_cast<std::size_t>(lane)];
      auto& s = st[static_cast<std::size_t>(lane)];
      assert(s.has_a || s.has_b);
      const bool take_a = s.has_a && (!s.has_b || !(s.head_b < s.head_a));
      if (take_a) {
        if (s.next_a < d.a_begin + d.a_size) {
          addrs[static_cast<std::size_t>(lane)] = s.next_a;
          s.head_a = in.a[static_cast<std::size_t>(s.next_a)];
          ++s.next_a;
        } else {
          s.has_a = false;
          addrs[static_cast<std::size_t>(lane)] = gpusim::kInactiveLane;
        }
      } else {
        if (s.next_b < d.b_begin + d.b_size) {
          addrs[static_cast<std::size_t>(lane)] = la + s.next_b;
          s.head_b = in.b[static_cast<std::size_t>(s.next_b)];
          ++s.next_b;
        } else {
          s.has_b = false;
          addrs[static_cast<std::size_t>(lane)] = gpusim::kInactiveLane;
        }
      }
    }
    charge();
  }

  an.exact_conflicts = conflicts;
  an.closed_form = worstcase::predicted_warp_conflicts(p);
  const SerialMergeBounds bounds = serial_merge_conflict_bounds(lanes, p.w, p.e, la);
  an.min_bound = bounds.min_conflicts;
  an.max_bound = bounds.max_conflicts;
  return an;
}

// ---------------------------------------------------------------------------
// Sweep
// ---------------------------------------------------------------------------

VerifyReport verify_all(const VerifyOptions& opts) {
  VerifyReport rep;
  for (const int w : opts.widths) {
    for (int e = 2; e <= w; ++e) {
      // The (w, E) primitive sweep: every registered CFPrimitive through
      // the one generic lowering path.  cf_gather's proof (produced via
      // delegation) doubles as the two-way lemma the cascades reuse.
      ProofObject two_way;
      if (opts.primitives) {
        for (const cfprims::CFPrimitive* prim : cfprims::registry()) {
          if (!prim->supports(w, e)) continue;
          const bool broken = !prim->expected_conflict_free(w, e);
          if (broken && !opts.broken) continue;
          ProofObject po = verify_primitive(*prim, w, e);
          if (!broken && prim->name() == "cf_gather") two_way = po;
          (broken ? rep.refutations : rep.proofs).push_back(std::move(po));
        }
      } else {
        two_way = verify_cf_gather(w, e, ScheduleVariant::kFull);
        rep.proofs.push_back(two_way);
        if (opts.broken) {
          rep.refutations.push_back(
              verify_cf_gather(w, e, ScheduleVariant::kNoBReversal));
          if (numtheory::gcd(w, e) > 1)
            rep.refutations.push_back(
                verify_cf_gather(w, e, ScheduleVariant::kNoRhoShift));
        }
      }
      if (opts.multiway)
        for (const int k : opts.ks)
          rep.proofs.push_back(verify_multiway_cascade(w, e, k, &two_way));
      if (opts.safety) {
        // Pass 3: memory safety of every registered primitive at (w, E),
        // the composite schedules built from them, and witness-backed
        // refutation of the deliberately unsafe ablations.
        for (const cfprims::CFPrimitive* prim : cfprims::registry()) {
          if (!prim->supports(w, e)) continue;
          rep.safety_proofs.push_back(verify_primitive_safety(*prim, w, e));
        }
        rep.safety_proofs.push_back(verify_merge_safety(w, e));
        rep.safety_proofs.push_back(verify_blocksort_safety(w, e));
        if (opts.multiway)
          for (const int k : opts.ks)
            rep.safety_proofs.push_back(verify_multiway_safety(w, e, k));
        for (const cfprims::CFPrimitive* prim : cfprims::safety_ablations()) {
          if (!prim->supports(w, e)) continue;
          rep.safety_refutations.push_back(verify_primitive_safety(*prim, w, e));
        }
      }
      if (opts.worstcase) rep.worstcase.push_back(analyze_worstcase_warp({w, e}));
    }
    if (opts.multiway && opts.broken)
      for (const int k : opts.ks)
        rep.refutations.push_back(refute_multiway_direct(w, std::max(2, w / 2), k));
    if (opts.bitonic) {
      const std::int64_t tile = 4 * static_cast<std::int64_t>(w);
      rep.proofs.push_back(verify_bitonic_exchange(tile, w, /*padded=*/true));
      rep.proofs.push_back(verify_bitonic_exchange(tile, w, /*padded=*/false));
      rep.refutations.push_back(refute_bitonic_unpadded(tile, w));
    }
  }
  return rep;
}

}  // namespace cfmerge::verify
