// Generic CFPrimitive verification: one prover for every registered
// primitive (cfprims/primitive.hpp) instead of per-family special cases.
//
// A primitive that lowers to concrete access streams is checked per stream:
//
//   lower:<stream>        the affine IR reproduces the primitive's actual
//                         address computation on every (thread, round)
//   residue:<stream>      raw ≡ j (mod E) derived symbolically (streams
//                         that claim the paper's residue invariant)
//   periodicity:<stream>  bank(phys) is periodic in the thread index, so
//                         the exhaustive window check below covers every
//                         u ≡ 0 (mod w), not just the verified shape
//   banks:<stream>        every w-aligned warp window of every round hits
//                         w distinct banks (simulator cost model), else a
//                         concrete lane-pair witness is extracted
//
// Gather-family primitives whose pattern depends on merge-path splits
// delegate to verify_cf_gather (the full RoundSchedule machinery) and only
// contribute their family tag.
#pragma once

#include "cfprims/primitive.hpp"
#include "verify/proof.hpp"

namespace cfmerge::verify {

/// Proves or refutes one registered primitive for the (w, E) family.
/// Throws std::invalid_argument when the primitive does not support (w, E).
[[nodiscard]] ProofObject verify_primitive(const cfprims::CFPrimitive& prim, int w,
                                           int e);

}  // namespace cfmerge::verify
