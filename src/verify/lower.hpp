// Lowering of the kernels' shared-memory access patterns into the AffineExpr
// IR — the bridge between the real indexing code (src/gather, src/sort) and
// the symbolic analyzer.
//
// Each lowering mirrors, term by term, the index arithmetic of one kernel:
//
//  * lower_cf_gather — RoundSchedule::read (Algorithm 1): branch guard
//    m = (j - a) mod E, A raw index a + m, B raw index through pi, physical
//    position through rho.  Variants drop pi or rho to model the paper's
//    ablations (and deliberately broken schedules).
//  * lower_bitonic_pair — the compare-exchange pair addresses of a bitonic
//    substage of stride j, with or without the one-slot-per-w padding.
//
// The analyzer cross-checks every lowering against the runtime indexing
// (same addresses on sampled concrete schedules) before trusting any
// symbolic conclusion drawn from it; see verify_cf_gather step
// "lowering-faithfulness".
#pragma once

#include <cstdint>

#include "verify/affine.hpp"

namespace cfmerge::verify {

// Fixed symbol ids shared by all lowerings.
inline constexpr SymId kSymThread = 0;  ///< i — block-local thread id (gather)
                                        ///< or pair id p (bitonic)
inline constexpr SymId kSymRound = 1;   ///< j — gather round
inline constexpr SymId kSymAOff = 2;    ///< a — thread's merge-path A offset a_i
inline constexpr SymId kSymASize = 3;   ///< asz — |A_i|
inline constexpr SymId kSymU = 4;       ///< u — threads per block
inline constexpr SymId kSymLa = 5;      ///< la — block's |A|
inline constexpr SymId kSymPairLen = 6; ///< padded cascade-pair length la'+lb'
                                        ///< (a multiple of wE by construction)

/// Which schedule the lowering models.
enum class ScheduleVariant {
  kFull,         ///< pi and rho applied — the paper's schedule
  kNoBReversal,  ///< pi dropped: B stored in ascending order (broken)
  kNoRhoShift,   ///< rho dropped: raw layout is physical (broken for d > 1)
};

[[nodiscard]] const char* variant_name(ScheduleVariant v);

/// The CF gather read of thread i in round j, as IR over the symbols above.
struct CfGatherLowering {
  int w = 0;
  int e = 0;
  ScheduleVariant variant = ScheduleVariant::kFull;
  AffineExpr m;      ///< (j - a) mod E — A element index and branch guard
  AffineExpr e_idx;  ///< (a - j - 1) mod E — B element index
  AffineExpr raw_a;  ///< a + m
  AffineExpr raw_b;  ///< through pi (or not, for kNoBReversal)
  AffineExpr raw;    ///< select(m < asz, raw_a, raw_b)
  AffineExpr phys;   ///< rho(raw) (== raw for kNoRhoShift or d == 1)
  SymbolFacts facts; ///< u declared a multiple of w
};

[[nodiscard]] CfGatherLowering lower_cf_gather(int w, int e,
                                               ScheduleVariant variant =
                                                   ScheduleVariant::kFull);

/// rho (CircularShift) applied to `raw`: partitions of P = wE/d elements,
/// partition l circularly shifted forward by l mod d.  Identity when d == 1.
[[nodiscard]] AffineExpr lower_rho(const AffineExpr& raw, int w, int e);

/// rho^-1 applied to `raw`: partition l shifted *backward* by l mod d, i.e.
/// rho^-1(m) = l·P + (m mod P - l mod d mod P).  Identity when d == 1.
/// Used by the inverse cf_permute primitive (gather::CircularShift::inverse).
[[nodiscard]] AffineExpr lower_rho_inverse(const AffineExpr& raw, int w, int e);

/// The one-slot-per-w bitonic padding: x + x div w (identity when !padded).
[[nodiscard]] AffineExpr lower_bitonic_pad(const AffineExpr& x, int w, bool padded);

/// Compare-exchange addresses of the p-th pair of a bitonic substage with
/// stride j (kSymThread plays the role of p): lo = pad((p div j)·2j + p mod j),
/// hi = pad(lo_unpadded + j).
struct BitonicPairLowering {
  std::int64_t j = 0;
  bool padded = false;
  AffineExpr lo;
  AffineExpr hi;
};

[[nodiscard]] BitonicPairLowering lower_bitonic_pair(std::int64_t j, int w, bool padded);

}  // namespace cfmerge::verify
