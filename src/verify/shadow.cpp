#include "verify/shadow.hpp"

#include <algorithm>
#include <sstream>

#include "gpusim/shared_memory.hpp"
#include "numtheory/numtheory.hpp"

namespace cfmerge::verify {

namespace {

/// Independent naive recount of one access's replay cost: distinct addresses
/// per bank, max over banks.  Deliberately the simplest possible
/// formulation — it cross-checks the optimized chain-scan hot path.
int naive_conflicts(std::span<const std::int64_t> addrs, int banks) {
  std::vector<std::int64_t> distinct;
  for (const std::int64_t a : addrs) {
    if (a == gpusim::kInactiveLane) continue;
    if (std::find(distinct.begin(), distinct.end(), a) == distinct.end())
      distinct.push_back(a);
  }
  if (distinct.empty()) return 0;
  int worst = 1;
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    int degree = 0;
    for (const std::int64_t a : distinct)
      if (numtheory::mod(a, banks) == numtheory::mod(distinct[i], banks)) ++degree;
    worst = std::max(worst, degree);
  }
  return worst - 1;
}

}  // namespace

void ShadowChecker::report(std::string kind, int block, int warp,
                           std::string_view phase, std::int64_t addr,
                           std::string detail) {
  if (summary_.violations.size() >= max_violations_) {
    ++summary_.dropped_violations;
    return;
  }
  summary_.violations.push_back(ShadowViolation{
      std::move(kind), block, warp, std::string(phase), addr, std::move(detail)});
}

void ShadowChecker::on_shared_alloc(int block, std::uint64_t tile_id,
                                    std::size_t words) {
  const std::lock_guard<std::mutex> lock(mu_);
  summary_.enabled = true;
  summary_.checked_words += words;
  tiles_[{block, tile_id}].words.assign(words, Word{});
}

void ShadowChecker::on_shared_raw(int block, std::uint64_t tile_id) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = tiles_.find({block, tile_id});
  if (it == tiles_.end()) return;
  for (Word& w : it->second.words) {
    w.written = true;
    w.writer_warp = -2;
    w.epoch = -1;
  }
}

void ShadowChecker::on_shared_access(int block, std::uint64_t tile_id, int warp,
                                     std::string_view phase,
                                     std::span<const std::int64_t> addrs,
                                     bool is_write, int banks, int charged_conflicts) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++summary_.shared_accesses;

  const int recount = naive_conflicts(addrs, banks);
  if (recount != charged_conflicts) {
    std::ostringstream os;
    os << "cost model charged " << charged_conflicts << " conflicts, naive recount says "
       << recount;
    report("conflict-mismatch", block, warp, phase, -1, os.str());
  }

  const auto it = tiles_.find({block, tile_id});
  if (it == tiles_.end()) return;
  auto& words = it->second.words;
  const std::int64_t epoch = epoch_[block];

  for (std::size_t lane = 0; lane < addrs.size(); ++lane) {
    const std::int64_t a = addrs[lane];
    if (a == gpusim::kInactiveLane) continue;
    if (a < 0 || a >= static_cast<std::int64_t>(words.size())) {
      std::ostringstream os;
      os << "lane " << lane << " addresses slot " << a << " of a "
         << words.size() << "-word tile";
      report("out-of-bounds", block, warp, phase, a, os.str());
      continue;
    }
    Word& w = words[static_cast<std::size_t>(a)];
    if (!is_write) {
      if (!w.written) {
        std::ostringstream os;
        os << "lane " << lane << " reads word " << a << " before any write reached it";
        report("uninitialized-read", block, warp, phase, a, os.str());
      }
      continue;
    }
    // Intra-access duplicate: two active lanes of one scatter on one word.
    for (std::size_t prev = 0; prev < lane; ++prev) {
      if (addrs[prev] == a) {
        std::ostringstream os;
        os << "lanes " << prev << " and " << lane << " both write word " << a
           << " in one scatter";
        report("write-write-race", block, warp, phase, a, os.str());
        break;
      }
    }
    // Cross-warp same-epoch write: unsynchronized warps racing on one word.
    if (w.written && w.writer_warp >= 0 && w.writer_warp != warp && w.epoch == epoch) {
      std::ostringstream os;
      os << "warps " << w.writer_warp << " and " << warp << " write word " << a
         << " in the same barrier epoch";
      report("write-write-race", block, warp, phase, a, os.str());
    }
    w.written = true;
    w.writer_warp = warp;
    w.epoch = epoch;
  }
}

void ShadowChecker::on_global_access(int block, int warp, std::string_view phase,
                                     std::span<const std::int64_t> idxs,
                                     std::int64_t view_size, bool is_write) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t lane = 0; lane < idxs.size(); ++lane) {
    const std::int64_t i = idxs[lane];
    if (i == gpusim::kInactiveLane) continue;
    if (i < 0 || i >= view_size) {
      std::ostringstream os;
      os << "lane " << lane << (is_write ? " writes" : " reads") << " global index "
         << i << " of a " << view_size << "-element view";
      report("out-of-bounds", block, warp, phase, i, os.str());
    }
  }
}

void ShadowChecker::on_barrier(int block) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++epoch_[block];
}

void ShadowChecker::on_certified_skip(int block, std::uint64_t tile_id,
                                      std::int64_t lo, std::int64_t hi,
                                      std::uint64_t accesses, int lanes,
                                      bool is_write) {
  (void)lanes;
  const std::lock_guard<std::mutex> lock(mu_);
  summary_.skipped_accesses += accesses;
  if (!is_write) return;
  // Trust the Pass 3 certificate: its bounds / disjointness / coverage proof
  // stands in for per-word bookkeeping, so mark the whole reported range
  // written.  writer_warp -3 is excluded from the cross-warp race check, as
  // the certificate already proved intra-epoch write disjointness.
  const auto it = tiles_.find({block, tile_id});
  if (it == tiles_.end()) return;
  auto& words = it->second.words;
  const std::int64_t epoch = epoch_[block];
  const std::int64_t end = std::min(hi, static_cast<std::int64_t>(words.size()));
  for (std::int64_t a = std::max<std::int64_t>(lo, 0); a < end; ++a) {
    Word& w = words[static_cast<std::size_t>(a)];
    w.written = true;
    w.writer_warp = -3;
    w.epoch = epoch;
  }
}

ShadowSummary ShadowChecker::summary() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return summary_;
}

void ShadowChecker::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  tiles_.clear();
  epoch_.clear();
  const bool enabled = summary_.enabled;
  summary_ = ShadowSummary{};
  summary_.enabled = enabled;
}

}  // namespace cfmerge::verify
