// Pass 1 extension — conflict-freedom of the k-way cascade merge.
//
// verify_multiway_cascade machine-checks that multiway_cascade_core is
// conflict free for a whole (w, E, k) family at once.  The argument reduces
// to the proven 2-way schedule plus three new obligations:
//
//   stage-gather-reduction  every cascade stage gathers through the 2-way
//                           cf_gather layout of its pair; the (w, E) proof
//                           applies verbatim because pair bases are wE
//                           multiples (banks unchanged by the shift)
//   pad-alignment           CascadePlan only pads at level 0 and keeps every
//                           pair base and padded length a multiple of wE,
//                           within the static capacity bound
//   scatter-residue         the inter-stage rank scatter raw streams are
//                           r = iE + j (left child, root) and
//                           la'+lb'-1-r (right child): lane-invariant
//                           residues mod E, derived symbolically
//   scatter-bank-crs        every stride-E lane progression through rho hits
//                           w distinct banks, exhaustively over one wE period
//                           (covers both scatter directions by periodicity)
//   plan-faithfulness       the closed forms above equal CascadePlan's
//                           scatter_pos on sampled plans, and the concrete
//                           gather/scatter/store rows of sampled tiles are
//                           conflict free under the dynamic cost model
//
// refute_multiway_direct is the impossibility half: a single-phase k-ary
// gather over a linear k-segment layout (the LoserTree baseline's head fill)
// admits no residue invariant, and a realizable merge-path split puts two
// lanes' sequence-0 heads in the same bank — a constructive witness the
// tests replay against shared_access_cost.
#include "verify/analyzer.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "gather/multiway_schedule.hpp"
#include "gather/schedule.hpp"
#include "gpusim/shared_memory.hpp"
#include "numtheory/numtheory.hpp"

namespace cfmerge::verify {

namespace {

using numtheory::mod;

/// Deterministic generator, mirroring the analyzer's reproducibility rule.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : x_(seed) {}
  std::uint64_t next() {
    x_ = x_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return x_ >> 33;
  }

 private:
  std::uint64_t x_;
};

void fail(ProofStep& st, std::string detail) {
  st.status = StepStatus::kFailed;
  st.detail = std::move(detail);
}

/// Structured + seeded-random k-way segment windows summing to at most
/// `tile` (the merge-path splits a tile can present to CascadePlan).
std::vector<std::vector<std::int64_t>> sample_seglens(std::int64_t tile, int k,
                                                      int random_trials,
                                                      std::uint64_t seed) {
  const auto kn = static_cast<std::size_t>(k);
  std::vector<std::vector<std::int64_t>> out;
  std::vector<std::int64_t> balanced(kn, tile / k);
  balanced[kn - 1] += tile % k;
  out.push_back(std::move(balanced));
  std::vector<std::int64_t> front(kn, 0);
  front[0] = tile;
  out.push_back(std::move(front));
  std::vector<std::int64_t> back(kn, 0);
  back[kn - 1] = tile;
  out.push_back(std::move(back));
  std::vector<std::int64_t> skew(kn, 0);  // one element per odd segment
  skew[0] = tile - k / 2;
  for (std::size_t s = 1; s < kn; s += 2) skew[s] = 1;
  out.push_back(std::move(skew));
  std::vector<std::int64_t> ragged(kn, 0);  // short final tile: sum == tile/2
  for (std::size_t s = 0; s < kn; ++s) {
    const auto i = static_cast<std::int64_t>(s);
    ragged[s] = (tile / 2) * (i + 1) / k - (tile / 2) * i / k;
  }
  out.push_back(std::move(ragged));
  Lcg rng(seed);
  for (int t = 0; t < random_trials; ++t) {
    std::vector<std::int64_t> cuts(kn - 1);
    for (auto& c : cuts)
      c = static_cast<std::int64_t>(rng.next() % static_cast<std::uint64_t>(tile + 1));
    std::sort(cuts.begin(), cuts.end());
    std::vector<std::int64_t> v(kn);
    std::int64_t prev = 0;
    for (std::size_t s = 0; s + 1 < kn; ++s) {
      v[s] = cuts[s] - prev;
      prev = cuts[s];
    }
    v[kn - 1] = tile - prev;
    out.push_back(std::move(v));
  }
  return out;
}

void validate_multiway_family(int w, int e, int k) {
  if (w <= 0 || e <= 1 || e > w)
    throw std::invalid_argument("verify_multiway: need w > 0 and 1 < E <= w");
  if (k < 2 || !std::has_single_bit(static_cast<std::uint64_t>(k)))
    throw std::invalid_argument("verify_multiway: k must be a power of two >= 2");
}

/// True iff the warp row of addresses serializes (degree > 1).
bool row_conflicted(const std::vector<std::int64_t>& addrs, int w) {
  return gpusim::shared_access_cost(addrs, w).cycles > 1;
}

// ---------------------------------------------------------------------------
// verify_multiway_cascade steps
// ---------------------------------------------------------------------------

void check_pad_alignment(ProofStep& st, int w, int e, int k,
                         const std::vector<std::vector<std::int64_t>>& samples,
                         std::int64_t tile_cap) {
  const std::int64_t we = static_cast<std::int64_t>(w) * e;
  const std::int64_t cap = gather::CascadePlan::capacity(tile_cap, w, e, k);
  std::int64_t checked = 0;
  for (const auto& segs : samples) {
    const gather::CascadePlan plan(w, e, segs);
    std::int64_t sum = 0;
    for (const auto s : segs) sum += s;
    if (plan.total_len() != sum) {
      fail(st, "total_len != sum of segment windows");
      return;
    }
    if (plan.padded_len() % we != 0 || plan.padded_len() > cap) {
      fail(st, "root padded length " + std::to_string(plan.padded_len()) +
                   " not a wE multiple within capacity " + std::to_string(cap));
      return;
    }
    for (int l = 0; l < plan.levels(); ++l) {
      std::int64_t base = 0;
      for (std::size_t p = 0; p < plan.pairs(l).size(); ++p) {
        const gather::CascadePair& pr = plan.pairs(l)[p];
        const bool aligned = pr.base == base && pr.base % we == 0 &&
                             pr.size() % we == 0 &&
                             (l == 0 || (pr.la % we == 0 && pr.lb % we == 0));
        if (!aligned) {
          std::ostringstream os;
          os << "level " << l << " pair " << p << " misaligned: base=" << pr.base
             << " la=" << pr.la << " lb=" << pr.lb << " (wE=" << we << ")";
          fail(st, os.str());
          return;
        }
        // Run bookkeeping: the pair output is the next level's padded run.
        const gather::CascadeRun& out = plan.runs(l + 1)[p];
        const gather::CascadeRun& lc = plan.runs(l)[2 * p];
        const gather::CascadeRun& rc = plan.runs(l)[2 * p + 1];
        if (out.pad_len != pr.size() || out.len != lc.len + rc.len) {
          fail(st, "run bookkeeping broken at level " + std::to_string(l));
          return;
        }
        base += pr.size();
        ++checked;
      }
      if (base > cap) {
        fail(st, "level " + std::to_string(l) + " storage " + std::to_string(base) +
                     " exceeds static capacity " + std::to_string(cap));
        return;
      }
    }
  }
  std::ostringstream os;
  os << checked << " pairs over " << samples.size()
     << " sampled splits: bases contiguous and ≡ 0 (mod " << we
     << "), padded lengths ≡ 0 (mod " << we
     << "), level >= 1 adds no sentinels, all within capacity " << cap;
  st.detail = os.str();
}

void check_scatter_residue(ProofStep& st, int e, int w) {
  const AffineExpr i = AffineExpr::sym(kSymThread, "i");
  const AffineExpr j = AffineExpr::sym(kSymRound, "j");
  const AffineExpr plen = AffineExpr::sym(kSymPairLen, "plen");
  const AffineExpr r = i.times(e) + j;
  const AffineExpr raw_left = r;  // parent pos_a and the root layout
  const AffineExpr raw_right = plen - AffineExpr::constant(1) - r;  // pi'
  const SymbolFacts facts = {{kSymPairLen, static_cast<std::int64_t>(w) * e}};

  const LinearResidue want_left{0, {{kSymRound, 1}}};
  const LinearResidue want_right{static_cast<std::int64_t>(e) - 1,
                                 {{kSymRound, static_cast<std::int64_t>(e) - 1}}};
  const auto got_left = residue_mod(raw_left, e, facts);
  const auto got_right = residue_mod(raw_right, e, facts);
  if (!got_left || !(*got_left == want_left) || !got_right ||
      !(*got_right == want_right)) {
    std::ostringstream os;
    os << "scatter residues underivable: left "
       << (got_left ? got_left->str(e) : "<irreducible>") << ", right "
       << (got_right ? got_right->str(e) : "<irreducible>");
    fail(st, os.str());
    return;
  }
  std::ostringstream os;
  os << "rank r = iE + j: left-child/root scatter raw ≡ " << want_left.str(e)
     << ", right-child raw ≡ " << want_right.str(e)
     << " (mod E) — lane-invariant because E | iE and wE | la'+lb'; every "
        "scatter round is a stride-E lane progression";
  st.detail = os.str();
}

void check_scatter_bank_crs(ProofStep& st, int w, int e) {
  const std::int64_t we = static_cast<std::int64_t>(w) * e;
  const gather::CircularShift rho(w, e, 2 * we);
  for (std::int64_t m = 0; m < we; ++m) {
    if (mod(rho(m), w) != mod(rho(m + we), w)) {
      fail(st, "bank(rho(m)) not wE-periodic at m=" + std::to_string(m));
      return;
    }
  }
  for (std::int64_t x0 = 0; x0 < we; ++x0) {
    std::vector<int> owner(static_cast<std::size_t>(w), -1);
    for (int lane = 0; lane < w; ++lane) {
      const std::int64_t raw = x0 + static_cast<std::int64_t>(lane) * e;
      const auto bank = static_cast<std::size_t>(mod(rho(raw), w));
      if (owner[bank] >= 0) {
        std::ostringstream os;
        os << "alignment x0=" << x0 << ": lanes " << owner[bank] << " and " << lane
           << " both map to bank " << bank;
        fail(st, os.str());
        return;
      }
      owner[bank] = lane;
    }
  }
  std::ostringstream os;
  os << "bank∘rho is wE-periodic and all " << we
     << " alignments of the stride-E lane progression occupy " << w
     << " distinct banks — covers ascending (left child, root) and "
        "pi-reflected descending (right child) scatter streams";
  st.detail = os.str();
}

/// Concrete cross-check of the symbolic model against CascadePlan plus a
/// dynamic-cost screening of sampled gather/scatter/store rows.  `thorough`
/// sweeps every virtual warp and round of the sampled tiles; otherwise a
/// boundary subset keeps the full (w, E, k) sweep affordable.
void check_plan_faithfulness(ProofStep& st, int w, int e, int k,
                             const std::vector<std::vector<std::int64_t>>& samples,
                             bool thorough) {
  const std::int64_t we = static_cast<std::int64_t>(w) * e;
  std::int64_t closed_checked = 0;
  std::int64_t rows_checked = 0;
  std::vector<std::int64_t> addrs(static_cast<std::size_t>(w));

  for (const auto& segs : samples) {
    const gather::CascadePlan plan(w, e, segs);
    for (int l = 0; l < plan.levels(); ++l) {
      for (std::size_t p = 0; p < plan.pairs(l).size(); ++p) {
        const gather::CascadePair& pr = plan.pairs(l)[p];
        if (pr.size() == 0) continue;
        const std::int64_t u_pair = pr.size() / e;  // a multiple of w
        const std::int64_t vwarps = u_pair / w;

        // Closed form used by the symbolic steps == CascadePlan::scatter_pos.
        const bool last = l + 1 == plan.levels();
        const gather::CascadePair* parent =
            last ? nullptr : &plan.pairs(l + 1)[p / 2];
        for (std::int64_t r = 0; r < pr.size(); r += thorough ? 1 : 7) {
          std::int64_t want;
          if (last) {
            want = plan.out_pos(r);
          } else if (p % 2 == 0) {
            want = parent->base + parent->rho(r);
          } else {
            want = parent->base + parent->rho(parent->size() - 1 - r);
          }
          if (plan.scatter_pos(l, static_cast<int>(p), r) != want) {
            fail(st, "scatter_pos != closed form at level " + std::to_string(l) +
                         " pair " + std::to_string(p) + " rank " + std::to_string(r));
            return;
          }
          ++closed_checked;
        }

        // Scatter rows: rank r = (vw*w + lane)*E + j per virtual warp.
        for (std::int64_t vw = 0; vw < vwarps; thorough ? ++vw : vw += std::max<std::int64_t>(1, vwarps - 1)) {
          for (int j = 0; j < e; ++j) {
            for (int lane = 0; lane < w; ++lane) {
              const std::int64_t r = (vw * w + lane) * e + j;
              addrs[static_cast<std::size_t>(lane)] =
                  plan.scatter_pos(l, static_cast<int>(p), r);
            }
            if (row_conflicted(addrs, w)) {
              fail(st, "conflicted scatter row at level " + std::to_string(l) +
                           " pair " + std::to_string(p) + " vw " + std::to_string(vw) +
                           " round " + std::to_string(j));
              return;
            }
            ++rows_checked;
          }
          if (!thorough && vwarps <= 1) break;
        }

        // Stage-gather rows through the pair's 2-way schedule, all-A and a
        // seeded-random merge-path split.
        const auto un = static_cast<std::size_t>(u_pair);
        std::vector<std::vector<std::int64_t>> asz_samples;
        asz_samples.emplace_back(un, static_cast<std::int64_t>(e));
        {
          Lcg rng(0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(l * 131 + p));
          std::vector<std::int64_t> v(un);
          for (auto& x : v)
            x = static_cast<std::int64_t>(rng.next() % static_cast<std::uint64_t>(e + 1));
          asz_samples.push_back(std::move(v));
        }
        for (const auto& asz : asz_samples) {
          std::vector<std::int64_t> aoff(un);
          std::int64_t acc = 0;
          for (std::size_t t = 0; t < un; ++t) {
            aoff[t] = acc;
            acc += asz[t];
          }
          // Clamp the sampled |A| to the pair's real la by rescaling: the
          // schedule only needs a_off/a_size consistent with *some* split of
          // [0, la+lb); use the sampled sizes verbatim with la = acc.
          const gather::GatherShape shape{w, e, static_cast<int>(u_pair), acc,
                                          pr.size() - acc};
          const gather::RoundSchedule sched(shape, aoff, asz);
          for (std::int64_t vw = 0; vw < vwarps; thorough ? ++vw : vw += std::max<std::int64_t>(1, vwarps - 1)) {
            for (int j = 0; j < e; ++j) {
              for (int lane = 0; lane < w; ++lane) {
                const auto i = static_cast<int>(vw * w + lane);
                addrs[static_cast<std::size_t>(lane)] =
                    pr.base + sched.read(i, j).phys;
              }
              if (row_conflicted(addrs, w)) {
                fail(st, "conflicted stage-gather row at level " + std::to_string(l) +
                             " pair " + std::to_string(p) + " vw " +
                             std::to_string(vw) + " round " + std::to_string(j));
                return;
              }
              ++rows_checked;
            }
            if (!thorough && vwarps <= 1) break;
          }
        }
      }
    }

    // Root store rows: out_pos over w-aligned rank rows of the real tile.
    for (std::int64_t t0 = 0; t0 < plan.total_len(); t0 += thorough ? w : std::max<std::int64_t>(w, we)) {
      for (int lane = 0; lane < w; ++lane) {
        const std::int64_t t = t0 + lane;
        addrs[static_cast<std::size_t>(lane)] =
            t < plan.total_len() ? plan.out_pos(t) : gpusim::kInactiveLane;
      }
      if (row_conflicted(addrs, w)) {
        fail(st, "conflicted root store row at t0=" + std::to_string(t0));
        return;
      }
      ++rows_checked;
    }
  }
  std::ostringstream os;
  os << "scatter_pos == base' + rho'(±r + C) on " << closed_checked
     << " ranks and " << rows_checked
     << " concrete gather/scatter/store rows are conflict free under the "
        "dynamic cost model ("
     << (thorough ? "full" : "boundary") << " sweep of " << samples.size()
     << " sampled splits)";
  st.detail = os.str();
}

}  // namespace

ProofObject verify_multiway_cascade(int w, int e, int k,
                                    const ProofObject* stage_proof) {
  validate_multiway_family(w, e, k);
  ProofObject po;
  po.schedule = "multiway_cascade";
  po.w = w;
  po.e = e;
  po.k = k;
  po.d = numtheory::gcd(w, e);
  po.scope =
      "all tiles u = m*w, all k-way merge-path splits, all log2(k) cascade "
      "stages and inter-stage scatters";

  // Step 1: every stage gather is the proven 2-way schedule.
  {
    auto& st = po.add_step("stage-gather-reduction");
    ProofObject local;
    const ProofObject* two = stage_proof;
    if (two == nullptr || two->w != w || two->e != e || two->schedule != "cf_gather") {
      local = verify_cf_gather(w, e, ScheduleVariant::kFull);
      two = &local;
    }
    if (two->proved()) {
      std::ostringstream os;
      os << "each of the " << std::bit_width(static_cast<unsigned>(k)) - 1
         << " cascade stages gathers through the 2-way cf_gather layout of its "
            "pair; the (w=" << w << ", E=" << e << ") proof ("
         << two->steps.size()
         << " steps) applies verbatim since pair bases are wE multiples";
      st.detail = os.str();
    } else {
      fail(st, "underlying 2-way cf_gather proof is not proved at (w=" +
                   std::to_string(w) + ", E=" + std::to_string(e) + ")");
    }
  }

  const std::int64_t tile_cap = static_cast<std::int64_t>(w) * e;  // u = w
  const auto samples = sample_seglens(tile_cap, k, 4, 0xcafef00dULL);
  check_pad_alignment(po.add_step("pad-alignment"), w, e, k, samples, tile_cap);
  check_scatter_residue(po.add_step("scatter-residue"), e, w);
  check_scatter_bank_crs(po.add_step("scatter-bank-crs"), w, e);
  const bool thorough = e == std::max(2, w / 2);
  check_plan_faithfulness(po.add_step("plan-faithfulness"), w, e, k, samples,
                          thorough);

  bool any_failed = false;
  for (const auto& st : po.steps) any_failed |= st.status == StepStatus::kFailed;
  po.verdict = any_failed ? Verdict::kRefutedNoWitness : Verdict::kProved;
  return po;
}

ProofObject refute_multiway_direct(int w, int e, int k) {
  if (w <= 0 || e <= 1 || e > w)
    throw std::invalid_argument("refute_multiway_direct: need w > 0 and 1 < E <= w");
  if (k < 2) throw std::invalid_argument("refute_multiway_direct: k >= 2");
  ProofObject po;
  po.schedule = "multiway_direct_cf_claim";
  po.w = w;
  po.e = e;
  po.k = k;
  po.d = numtheory::gcd(w, e);
  po.scope =
      "claim: a single-phase k-ary gather over a linear k-segment shared "
      "layout (the LoserTree head fill) is conflict free for every "
      "merge-path split";

  // A realizable split: sequence 0 holds the w globally smallest values,
  // sequence 1 the next ceil(w/E)*E - w, then sequence 0 the next E.  Lane 0
  // (diagonal 0) and lane j0 = ceil(w/E) (diagonal j0*E) then read their
  // sequence-0 heads at shared offsets 0 and w — distinct addresses, same
  // bank.  Needs only E >= 2 and k >= 2.
  const int j0 = (w + e - 1) / e;
  std::vector<std::int64_t> addrs(static_cast<std::size_t>(w), gpusim::kInactiveLane);
  addrs[0] = 0;
  addrs[static_cast<std::size_t>(j0)] = w;

  bool refuted = false;
  {
    auto& st = po.add_step("head-fill-banks");
    if (gpusim::shared_access_cost(addrs, w).cycles > 1) {
      std::ostringstream os;
      os << "lanes 0 and " << j0 << " read sequence-0 heads at offsets 0 and "
         << w << " — same bank 0, realized by the split {|S_0 ∩ prefix| = w "
         << "at diagonal " << j0 * e << "}";
      fail(st, os.str());
      refuted = true;
    } else {
      st.detail = "witness row unexpectedly conflict free";
    }
  }
  {
    auto& st = po.add_step("no-residue-invariant");
    fail(st,
         "the k per-lane heads are independent co-ranks: raw - j is "
         "lane-dependent, so no fixed permutation of the linear layout can "
         "restore a per-round complete residue system (contrast Lemma 2's "
         "raw ≡ j (mod E) for the pairwise schedule)");
  }

  if (refuted) {
    Counterexample ce;
    ce.w = w;
    ce.e = e;
    ce.u = w;
    ce.la = static_cast<std::int64_t>(w) + e;  // sequence-0 window length
    ce.round = 0;
    ce.lane1 = 0;
    ce.lane2 = j0;
    ce.addr1 = 0;
    ce.addr2 = w;
    ce.bank = 0;
    po.counterexample = ce;
    po.verdict = Verdict::kCounterexample;
  } else {
    po.verdict = Verdict::kRefutedNoWitness;
  }
  return po;
}

}  // namespace cfmerge::verify
