// Per-thread-block simulation context.
//
// Kernels are written warp-synchronously: device code is a C++ callable over
// a BlockContext that issues *warp-wide* operations (one address per lane).
// The context does the cost accounting:
//
//  * throughput counters (Counters, per named phase) — how many cycles each
//    SM resource (issue slots, shared unit, DRAM) is kept busy;
//  * per-warp dependency chains — the critical path of each warp, used by
//    the latency-bound term of the timing model.  A barrier synchronizes
//    all warp chains of the block to their maximum.
//
// Data itself lives in ordinary host containers; see SharedTile / GlobalView
// in memory_views.hpp for typed wrappers that move data and charge costs in
// one call.
#pragma once

#include <cstdint>
#include <string>
#include <span>
#include <string_view>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "gpusim/trace.hpp"
#include "gpusim/global_memory.hpp"
#include "gpusim/l2_cache.hpp"
#include "gpusim/shared_memory.hpp"
#include "gpusim/stats.hpp"

namespace cfmerge::gpusim {

class BlockContext {
 public:
  /// `threads` must be a positive multiple of the device warp size.
  BlockContext(const DeviceSpec& dev, int block_id, int num_blocks, int threads);

  [[nodiscard]] const DeviceSpec& device() const { return *dev_; }
  [[nodiscard]] int block_id() const { return block_id_; }
  [[nodiscard]] int num_blocks() const { return num_blocks_; }
  [[nodiscard]] int threads() const { return threads_; }
  [[nodiscard]] int lanes() const { return dev_->warp_size; }
  [[nodiscard]] int warps() const { return threads_ / dev_->warp_size; }

  /// Switches the phase that subsequent charges are attributed to.
  void phase(std::string_view name);
  [[nodiscard]] const PhaseCounters& counters() const { return counters_; }

  // --- charging primitives --------------------------------------------
  /// One warp-wide shared memory access (element addresses, kInactiveLane
  /// for idle lanes).  Returns the access cost.  `dependent` extends the
  /// warp's dependency chain by latency + replays.
  SharedAccessCost charge_shared(int warp, std::span<const std::int64_t> addrs,
                                 bool dependent = true, bool is_write = false);
  /// One warp-wide global access (byte addresses).  `dependent` charges the
  /// full DRAM latency on the warp chain; pass false for accesses that
  /// pipeline behind a previous one (e.g. the tail of a streaming tile
  /// load, where only the first request pays the latency).
  GlobalAccessCost charge_gmem(int warp, std::span<const std::int64_t> byte_addrs,
                               int elem_bytes, bool dependent = true,
                               bool is_write = false);
  /// `instrs` warp-wide ALU/control instructions; `chain` of them are on the
  /// dependency chain (defaults to all).
  void charge_compute(int warp, std::uint64_t instrs, std::int64_t chain = -1);
  /// Block-wide barrier: all warp chains advance to the block maximum.
  void barrier();

  /// Registers shared memory consumption (for the occupancy calculation).
  void add_shared_bytes(std::size_t bytes) { shared_bytes_ += bytes; }
  [[nodiscard]] std::size_t shared_bytes() const { return shared_bytes_; }

  /// Attaches a trace sink; every subsequent access is recorded.
  void set_trace(TraceSink* sink) { trace_ = sink; }
  /// Attaches the device-level L2 cache (owned by the Launcher).
  void set_l2(L2Cache* l2) { l2_ = l2; }
  [[nodiscard]] TraceSink* trace() const { return trace_; }

  /// Critical path of the block in cycles: max over warp chains.
  [[nodiscard]] double block_chain() const;
  [[nodiscard]] const std::vector<double>& warp_chains() const { return chains_; }

 private:
  const DeviceSpec* dev_;
  int block_id_;
  int num_blocks_;
  int threads_;
  std::size_t shared_bytes_ = 0;
  PhaseCounters counters_;
  Counters* current_;
  std::string current_phase_ = "main";
  TraceSink* trace_ = nullptr;
  L2Cache* l2_ = nullptr;
  std::vector<std::int64_t> l2_scratch_;
  std::vector<double> chains_;
};

}  // namespace cfmerge::gpusim
