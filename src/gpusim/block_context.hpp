// Per-thread-block simulation context.
//
// Kernels are written warp-synchronously: device code is a C++ callable over
// a BlockContext that issues *warp-wide* operations (one address per lane).
// The context does the cost accounting:
//
//  * throughput counters (Counters, per named phase) — how many cycles each
//    SM resource (issue slots, shared unit, DRAM) is kept busy;
//  * per-warp dependency chains — the critical path of each warp, used by
//    the latency-bound term of the timing model.  A barrier synchronizes
//    all warp chains of the block to their maximum.
//
// Data itself lives in ordinary host containers; see SharedTile / GlobalView
// in memory_views.hpp for typed wrappers that move data and charge costs in
// one call.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <span>
#include <string_view>
#include <vector>

#include "gpusim/audit.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/trace.hpp"
#include "gpusim/global_memory.hpp"
#include "gpusim/l2_cache.hpp"
#include "gpusim/shared_memory.hpp"
#include "gpusim/stats.hpp"

namespace cfmerge::gpusim {

/// Closed-form description of a proven-conflict-free access progression:
/// `rounds` warp-wide shared accesses, each with `active_lanes` active lanes
/// hitting distinct banks (a certificate from verify/certificate.hpp backs
/// the claim).  The leading `dependent_rounds` extend the warp chain by the
/// full shared latency; the rest pipeline at one cycle.  `base`/`stride`
/// document the address family (lane l of round j touches
/// base + j*progression + l*stride); charging only needs the counts.
struct CrsAccessDesc {
  int rounds = 1;
  int dependent_rounds = 0;
  int active_lanes = 0;
  std::int64_t base = 0;
  std::int64_t stride = 1;
  bool is_write = false;
};

class BlockContext {
 public:
  /// `threads` must be a positive multiple of the device warp size.
  BlockContext(const DeviceSpec& dev, int block_id, int num_blocks, int threads);

  [[nodiscard]] const DeviceSpec& device() const { return *dev_; }
  [[nodiscard]] int block_id() const { return block_id_; }
  [[nodiscard]] int num_blocks() const { return num_blocks_; }
  [[nodiscard]] int threads() const { return threads_; }
  [[nodiscard]] int lanes() const { return dev_->warp_size; }
  [[nodiscard]] int warps() const { return threads_ / dev_->warp_size; }

  /// Switches the phase that subsequent charges are attributed to.
  /// Switching to the already-current phase is a free no-op.
  void phase(std::string_view name);

  /// Cached phase switch for kernel hot loops.  Declare one PhaseRef per
  /// phase name in the block body; the counters slot is resolved on the
  /// first switch and every later switch through the same ref is O(1) —
  /// no string compares.  A PhaseRef binds to the BlockContext that first
  /// resolved it and must not be reused across blocks/contexts.
  struct PhaseRef {
    std::string_view name;
    int idx = -1;  ///< resolved counters slot, -1 until first use
  };
  void phase(PhaseRef& ref);

  [[nodiscard]] const PhaseCounters& counters() const { return counters_; }

  // --- charging primitives --------------------------------------------
  // Both primitives are defined inline (below the class): they are called
  // once per simulated warp access and inlining them — together with the
  // inline cost models they call — collapses the whole accounting path
  // into the kernel loops.

  /// One warp-wide shared memory access (element addresses, kInactiveLane
  /// for idle lanes).  Returns the access cost.  `dependent` extends the
  /// warp's dependency chain by latency + replays.  `scattered_hint` is a
  /// pure performance hint for data-dependent address patterns (see
  /// shared_access_cost); it never changes the result.
  SharedAccessCost charge_shared(int warp, std::span<const std::int64_t> addrs,
                                 bool dependent = true, bool is_write = false,
                                 bool scattered_hint = false);
  /// One warp-wide global access (byte addresses).  `dependent` charges the
  /// full DRAM latency on the warp chain; pass false for accesses that
  /// pipeline behind a previous one (e.g. the tail of a streaming tile
  /// load, where only the first request pays the latency).
  GlobalAccessCost charge_gmem(int warp, std::span<const std::int64_t> byte_addrs,
                               int elem_bytes, bool dependent = true,
                               bool is_write = false);
  // --- proof-guided bulk charging --------------------------------------
  // Certified call sites (cfprims executors, tile stagers) describe whole
  // conflict-free progressions and charge them in closed form.  The charges
  // are *exact*: every counter and chain increment is the integer a
  // lane-by-lane replay would produce (pinned by tests/test_bulk_charge.cpp).

  /// True when closed-form shared charging may replace the lane path:
  /// enabled on the device and no observer needs per-lane addresses.
  [[nodiscard]] bool bulk_shared() const {
    return dev_->bulk_charge && trace_ == nullptr && audit_ == nullptr;
  }
  /// Same for global accesses; the L2 model additionally needs real
  /// per-transaction addresses.
  [[nodiscard]] bool bulk_global() const { return bulk_shared() && l2_ == nullptr; }

  /// Certified-skip extension of bulk_shared(): closed-form shared charging
  /// is also allowed with an auditor attached when audit-skip mode is on
  /// AND the pattern carries a static safety certificate — the Pass 3 proof
  /// (bounds + init-before-read + race-freedom) stands in for the per-lane
  /// shadow replay.  Pass `cert->safety != nullptr`.
  [[nodiscard]] bool bulk_shared_skip(bool safety_certified) const {
    if (bulk_shared()) return true;
    return safety_certified && audit_skip_ && audit_ != nullptr &&
           dev_->bulk_charge && trace_ == nullptr;
  }
  /// True when certified accesses are currently being elided from the
  /// per-lane audit (auditor attached + audit-skip mode on).
  [[nodiscard]] bool audit_skipping() const {
    return audit_ != nullptr && audit_skip_;
  }

  /// Charges `desc.rounds` conflict-free warp-wide shared accesses at once.
  /// Caller must hold a certificate for the pattern and have checked
  /// bulk_shared(); every round must have at least one active lane.
  void charge_shared_crs(int warp, const CrsAccessDesc& desc) {
    assert(desc.rounds > 0 && desc.active_lanes > 0);
    assert(desc.dependent_rounds >= 0 && desc.dependent_rounds <= desc.rounds);
    assert(bulk_shared() || audit_skipping());
    const auto rounds = static_cast<std::uint64_t>(desc.rounds);
    current_->shared_accesses += rounds;
    current_->shared_cycles += rounds;  // conflict-free: one cycle, no replays
    const std::int64_t on_chain =
        static_cast<std::int64_t>(desc.dependent_rounds) * dev_->shared_latency +
        (desc.rounds - desc.dependent_rounds);
    chains_[static_cast<std::size_t>(warp)] += static_cast<double>(on_chain);
    bulk_charges_ += rounds;
    if (audit_ != nullptr) audit_skipped_ += rounds;
  }

  /// Charges one warp-wide global access to `n` contiguous elements
  /// starting at byte address `byte0` (ascending or descending lane order —
  /// the transaction footprint is the same).  Caller must have checked
  /// bulk_global(); n must be positive.
  void charge_gmem_run(int warp, std::int64_t byte0, std::int64_t n, int elem_bytes,
                       bool dependent, bool is_write) {
    (void)is_write;
    assert(n > 0 && byte0 >= 0);
    assert(bulk_global());
    const std::int64_t tx = dev_->transaction_bytes;
    const std::int64_t last = byte0 + n * elem_bytes - 1;
    const std::int64_t transactions = last / tx - byte0 / tx + 1;
    current_->gmem_requests += 1;
    current_->gmem_transactions += static_cast<std::uint64_t>(transactions);
    current_->gmem_bytes += static_cast<std::uint64_t>(n) *
                            static_cast<std::uint64_t>(elem_bytes);
    auto& chain = chains_[static_cast<std::size_t>(warp)];
    if (dependent)
      chain += dev_->global_latency;
    else
      chain += static_cast<double>(transactions);
    bulk_charges_ += 1;
  }

  /// Fast-path coverage: warp-wide accesses charged in closed form vs
  /// through the lane-accurate path.  Their sum is invariant across modes.
  [[nodiscard]] std::uint64_t bulk_charges() const { return bulk_charges_; }
  [[nodiscard]] std::uint64_t lane_charges() const { return lane_charges_; }

  /// `instrs` warp-wide ALU/control instructions; `chain` of them are on the
  /// dependency chain (defaults to all).  Inline for the same reason as the
  /// memory primitives: several calls per simulated warp step.
  void charge_compute(int warp, std::uint64_t instrs, std::int64_t chain = -1) {
    current_->warp_instructions += instrs;
    const double on_chain =
        chain < 0 ? static_cast<double>(instrs) : static_cast<double>(chain);
    chains_[static_cast<std::size_t>(warp)] += on_chain;
  }
  /// Block-wide barrier: all warp chains advance to the block maximum.
  void barrier();

  /// Registers shared memory consumption (for the occupancy calculation).
  void add_shared_bytes(std::size_t bytes) { shared_bytes_ += bytes; }
  [[nodiscard]] std::size_t shared_bytes() const { return shared_bytes_; }

  /// Attaches a trace sink; every subsequent access is recorded.
  void set_trace(TraceSink* sink) {
    trace_ = sink;
    trace_phase_ = -1;
  }
  /// Attaches the device-level L2 cache (owned by the Launcher).
  void set_l2(L2Cache* l2) { l2_ = l2; }
  [[nodiscard]] TraceSink* trace() const { return trace_; }

  /// Attaches a memory auditor (opt-in shadow checking; see gpusim/audit.hpp).
  /// The auditor is shared across blocks and must be internally synchronized.
  void set_audit(MemoryAuditor* audit) { audit_ = audit; }
  [[nodiscard]] MemoryAuditor* audit() const { return audit_; }
  /// Enables certified-skip audit mode: accesses backed by a Pass 3 safety
  /// certificate may bypass the per-lane audit (see bulk_shared_skip).
  void set_audit_skip(bool on) { audit_skip_ = on; }
  [[nodiscard]] bool audit_skip() const { return audit_skip_; }
  /// Warp-wide accesses elided from the per-lane audit while an auditor was
  /// attached (certified-skip mode).
  [[nodiscard]] std::uint64_t audit_skipped() const { return audit_skipped_; }
  /// Name of the phase charges are currently attributed to (for auditors).
  [[nodiscard]] std::string_view current_phase() const { return current_phase_; }
  /// Allocation-ordered id for a new SharedTile of this block.
  [[nodiscard]] std::uint64_t next_tile_id() { return tile_counter_++; }

  /// Critical path of the block in cycles: max over warp chains.
  [[nodiscard]] double block_chain() const;
  [[nodiscard]] const std::vector<double>& warp_chains() const { return chains_; }

 private:
  /// The attached sink's id of the current phase, interned lazily on the
  /// first recorded access after a phase switch (so phase_names() keeps the
  /// historical first-record order) and reused for every access until the
  /// next switch.
  [[nodiscard]] std::int16_t trace_phase() {
    if (trace_phase_ < 0) trace_phase_ = trace_->intern_phase(current_phase_);
    return trace_phase_;
  }

  const DeviceSpec* dev_;
  int block_id_;
  int num_blocks_;
  int threads_;
  std::size_t shared_bytes_ = 0;
  PhaseCounters counters_;
  Counters* current_;
  int current_idx_ = 0;
  std::string current_phase_ = "main";
  TraceSink* trace_ = nullptr;
  std::int16_t trace_phase_ = -1;
  MemoryAuditor* audit_ = nullptr;
  bool audit_skip_ = false;
  std::uint64_t audit_skipped_ = 0;
  std::uint64_t tile_counter_ = 0;
  L2Cache* l2_ = nullptr;
  std::vector<std::int64_t> l2_scratch_;
  std::vector<double> chains_;
  std::uint64_t bulk_charges_ = 0;
  std::uint64_t lane_charges_ = 0;
};

inline SharedAccessCost BlockContext::charge_shared(int warp,
                                                    std::span<const std::int64_t> addrs,
                                                    bool dependent, bool is_write,
                                                    bool scattered_hint) {
  const SharedAccessCost c = shared_access_cost(addrs, dev_->warp_size, scattered_hint);
  if (c.active_lanes == 0) return c;
  ++lane_charges_;
  if (trace_ != nullptr)
    trace_->record(block_id_, static_cast<std::int16_t>(warp),
                   is_write ? AccessKind::SharedWrite : AccessKind::SharedRead,
                   trace_phase(), addrs, c.conflicts);
  const int replay = dev_->shared_replay_cycles * c.conflicts;
  current_->shared_accesses += 1;
  current_->shared_cycles += static_cast<std::uint64_t>(1 + replay);
  current_->bank_conflicts += static_cast<std::uint64_t>(c.conflicts);
  auto& chain = chains_[static_cast<std::size_t>(warp)];
  if (dependent)
    chain += dev_->shared_latency + replay;
  else
    chain += 1 + replay;  // throughput-pipelined: replays still occupy the unit
  return c;
}

inline GlobalAccessCost BlockContext::charge_gmem(int warp,
                                                  std::span<const std::int64_t> byte_addrs,
                                                  int elem_bytes, bool dependent,
                                                  bool is_write) {
  const GlobalAccessCost c =
      global_access_cost(byte_addrs, elem_bytes, dev_->transaction_bytes);
  if (c.active_lanes == 0) return c;
  ++lane_charges_;
  if (trace_ != nullptr)
    trace_->record(block_id_, static_cast<std::int16_t>(warp),
                   is_write ? AccessKind::GlobalWrite : AccessKind::GlobalRead,
                   trace_phase(), byte_addrs, c.transactions);
  current_->gmem_requests += 1;
  current_->gmem_transactions += static_cast<std::uint64_t>(c.transactions);
  if (l2_ == nullptr) {
    current_->gmem_bytes += static_cast<std::uint64_t>(c.bytes);
  } else {
    // Route each transaction segment through the device L2: only misses
    // generate DRAM traffic.
    global_access_segments(byte_addrs, elem_bytes, dev_->transaction_bytes, l2_scratch_);
    for (const std::int64_t seg : l2_scratch_) {
      if (l2_->access(seg * dev_->transaction_bytes)) {
        current_->l2_hits += 1;
      } else {
        current_->l2_misses += 1;
        current_->gmem_bytes += static_cast<std::uint64_t>(dev_->transaction_bytes);
      }
    }
  }
  auto& chain = chains_[static_cast<std::size_t>(warp)];
  if (dependent)
    chain += dev_->global_latency;
  else
    chain += c.transactions;  // issue cost only; latency overlapped
  return c;
}

}  // namespace cfmerge::gpusim
