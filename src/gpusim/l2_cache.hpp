// Device-level L2 cache model (opt-in).
//
// When DeviceSpec::l2_bytes > 0, every global-memory transaction is looked
// up in a set-associative LRU cache shared by the whole device; hits are
// served on-chip and only misses count as DRAM traffic (Counters::gmem_bytes
// then reports transaction_bytes per miss instead of the requested element
// bytes).  This matters for the merge-path partition searches, whose probes
// repeatedly touch the same hot lines.
//
// Off by default: the calibrated experiment results of EXPERIMENTS.md use
// the bare DRAM model.  The cache is one order-sensitive LRU shared by all
// blocks, so enabling it forces the Launcher's sequential fallback (blocks
// are simulated in order even when a worker pool is configured; see
// launcher.hpp).  A sequential block order sees more temporal locality than
// concurrent hardware would — treat enabled-L2 numbers as an upper bound on
// cache benefit.
#pragma once

#include <cstdint>
#include <vector>

namespace cfmerge::gpusim {

class L2Cache {
 public:
  /// `bytes` total capacity; `line_bytes` granularity (usually the DRAM
  /// transaction size); `ways` associativity.
  L2Cache(std::size_t bytes, int line_bytes, int ways);

  /// Looks up the line containing `byte_addr`; returns true on hit and
  /// updates recency/fills on miss.
  bool access(std::int64_t byte_addr);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] int line_bytes() const { return line_bytes_; }
  [[nodiscard]] std::size_t sets() const { return sets_; }
  void reset_stats() { hits_ = misses_ = 0; }
  void clear();

 private:
  struct Way {
    std::int64_t tag = -1;
    std::uint64_t last_use = 0;
  };

  int line_bytes_;
  int ways_;
  std::size_t sets_;
  std::vector<Way> slots_;  // sets_ * ways_
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace cfmerge::gpusim
