#include "gpusim/l2_cache.hpp"

#include <bit>
#include <stdexcept>

namespace cfmerge::gpusim {

L2Cache::L2Cache(std::size_t bytes, int line_bytes, int ways)
    : line_bytes_(line_bytes), ways_(ways) {
  if (line_bytes <= 0 || ways <= 0 || bytes == 0)
    throw std::invalid_argument("L2Cache: sizes must be positive");
  const std::size_t lines = bytes / static_cast<std::size_t>(line_bytes);
  if (lines < static_cast<std::size_t>(ways))
    throw std::invalid_argument("L2Cache: capacity smaller than one set");
  sets_ = std::bit_floor(lines / static_cast<std::size_t>(ways));
  if (sets_ == 0) sets_ = 1;
  slots_.assign(sets_ * static_cast<std::size_t>(ways_), Way{});
}

bool L2Cache::access(std::int64_t byte_addr) {
  const std::int64_t line = byte_addr / line_bytes_;
  const std::size_t set = static_cast<std::size_t>(line) % sets_;
  Way* base = slots_.data() + set * static_cast<std::size_t>(ways_);
  ++tick_;
  Way* victim = base;
  for (int i = 0; i < ways_; ++i) {
    if (base[i].tag == line) {
      base[i].last_use = tick_;
      ++hits_;
      return true;
    }
    if (base[i].last_use < victim->last_use) victim = &base[i];
  }
  victim->tag = line;
  victim->last_use = tick_;
  ++misses_;
  return false;
}

void L2Cache::clear() {
  for (Way& w : slots_) w = Way{};
  tick_ = 0;
  reset_stats();
}

}  // namespace cfmerge::gpusim
