// Access tracing: records every warp-wide memory operation a kernel issues,
// for post-hoc analysis the live counters cannot do —
//  * replaying shared accesses under alternative bank mappings
//    (dmm::ModuleMap) to answer "what if this GPU hashed its banks?",
//  * per-warp / per-phase conflict attribution,
//  * exporting raw traces (CSV) for external tooling.
//
// Tracing is off by default (the simulator stays fast); attach a TraceSink
// to a Launcher and every BlockContext it creates records into it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cfmerge::gpusim {

enum class AccessKind : std::uint8_t { SharedRead = 0, SharedWrite, GlobalRead, GlobalWrite };

/// One warp-wide access.  Addresses are element indices for shared
/// accesses and byte addresses for global ones; kInactiveLane (-1) marks
/// idle lanes.
struct TraceEvent {
  std::int32_t block = 0;
  std::int16_t warp = 0;
  AccessKind kind = AccessKind::SharedRead;
  std::int16_t phase_id = 0;     ///< index into TraceSink::phase_names()
  std::int32_t cost = 0;         ///< conflicts (shared) or transactions (global)
  std::uint32_t first_addr = 0;  ///< offset of the lane addresses in the pool
  std::uint16_t lanes = 0;       ///< number of lanes recorded
};

class TraceSink {
 public:
  void record(std::int32_t block, std::int16_t warp, AccessKind kind,
              std::string_view phase, std::span<const std::int64_t> addrs, int cost);

  /// Hot-path variant: `phase` is an id previously returned by
  /// `intern_phase` on *this* sink.  Skips the per-record name lookup —
  /// BlockContext interns once per phase switch and records by id.
  void record(std::int32_t block, std::int16_t warp, AccessKind kind,
              std::int16_t phase, std::span<const std::int64_t> addrs, int cost);

  /// Id of `phase` in phase_names(), appending it on first use.
  std::int16_t intern_phase(std::string_view phase) { return phase_id(phase); }

  /// Pre-sizes the flat event/address buffers (events and pooled lane
  /// addresses respectively) so recording never reallocates mid-kernel.
  void reserve(std::size_t events, std::size_t pool_elems);

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] const std::vector<std::string>& phase_names() const { return phases_; }
  [[nodiscard]] std::span<const std::int64_t> addresses(const TraceEvent& e) const {
    return std::span<const std::int64_t>(pool_).subspan(e.first_addr, e.lanes);
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear();

  /// Appends every event of `other`, remapping phase ids and address-pool
  /// offsets.  Used by the parallel launcher to reduce per-block sinks in
  /// block order; the result is identical to recording the same accesses
  /// directly in that order.
  void merge_from(const TraceSink& other);

  /// Total recorded conflicts in shared accesses of a phase ("" = all).
  [[nodiscard]] std::int64_t shared_conflicts(std::string_view phase = {}) const;

  /// CSV export: block,warp,kind,phase,cost,addr0,addr1,...
  void write_csv(std::ostream& os) const;

 private:
  std::int16_t phase_id(std::string_view phase);

  std::vector<TraceEvent> events_;
  std::vector<std::int64_t> pool_;
  std::vector<std::string> phases_;
};

}  // namespace cfmerge::gpusim
