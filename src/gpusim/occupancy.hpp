// Occupancy calculation (CUDA occupancy calculator, simplified).
//
// The paper attributes the performance difference between the software
// parameter sets (E=15, u=512) and (E=17, u=256) to occupancy; this module
// reproduces that mechanism for the timing model.
#pragma once

#include <cstddef>
#include <string>

#include "gpusim/device_spec.hpp"

namespace cfmerge::gpusim {

struct OccupancyResult {
  /// Blocks resident per SM (0 if the block does not fit at all).
  int blocks_per_sm = 0;
  int warps_per_sm = 0;
  /// Fraction of the SM's maximum resident warps, in [0, 1].
  double occupancy = 0.0;
  /// Which resource bound the result ("threads", "blocks", "shared",
  /// "registers", or "none" when blocks_per_sm == 0).
  std::string limiter = "none";
};

/// Occupancy for a kernel with `threads_per_block` threads, using
/// `shared_bytes` of shared memory per block and `regs_per_thread` registers.
[[nodiscard]] OccupancyResult compute_occupancy(const DeviceSpec& dev, int threads_per_block,
                                                std::size_t shared_bytes, int regs_per_thread);

}  // namespace cfmerge::gpusim
