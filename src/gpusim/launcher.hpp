// Kernel launcher: runs a kernel body for every block of a grid, collects
// counters + dependency chains, and evaluates the timing model.
//
// A "kernel" is any callable void(BlockContext&).  The model is
// deterministic and blocks are independent, so the launcher may simulate
// them on a pool of host threads (see set_threads / DeviceSpec::sim_threads).
// Each block accumulates into private per-block state which is then reduced
// in block order, so the resulting KernelReport — counters, chains, timing —
// is bit-identical to the sequential execution no matter how many worker
// threads run it.
//
// Kernels can be launched one at a time (launch) or enqueued into a
// KernelGraph with explicit dependency edges and executed as a batch (run),
// which lets dependency-free kernels share the worker pool and adds a
// timing-overlap model on top of the per-kernel model; see
// gpusim/kernel_graph.hpp for the graph semantics and determinism contract.
//
// Determinism contract per stateful component:
//  * PhaseCounters / dependency chains: always per-block, reduced in block
//    order (phase name order is first-use order across ascending block ids).
//  * TraceSink: blocks record into private per-block sinks that are merged
//    into the attached sink in block order after all blocks finish — the
//    event stream is identical to sequential recording, and a throwing
//    kernel leaves the attached sink untouched.
//  * L2Cache: a single order-sensitive LRU shared by the whole device; its
//    hit pattern depends on the block interleaving, so when the L2 model is
//    enabled the launcher forces the sequential fallback (workers = 1).
//
// Kernel bodies run concurrently and must therefore only write
// block-disjoint data (each simulated block owns its tiles/partition slots,
// as real GPU grids do).  Every kernel in this repository satisfies this.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/block_context.hpp"
#include "gpusim/kernel_graph.hpp"
#include "gpusim/trace.hpp"
#include "gpusim/timing.hpp"

namespace cfmerge::gpusim {

struct KernelReport {
  std::string name;
  LaunchShape shape;
  PhaseCounters counters;
  double mean_block_chain = 0.0;
  double max_block_chain = 0.0;
  KernelTiming timing;

  [[nodiscard]] Counters total() const { return counters.total(); }
};

/// Host execution policy for Launcher::run.  Both modes produce bit-identical
/// reports (the reduction is enqueue- and block-ordered either way); they
/// differ only in host wall-clock behaviour.
enum class GraphExec {
  Serial,   ///< one kernel at a time in enqueue order (pre-graph cadence)
  Overlap,  ///< blocks of all dependency-satisfied kernels share the pool
};

/// Result of executing a KernelGraph.
struct GraphReport {
  /// One report per node, in enqueue order (also appended to the history).
  std::vector<KernelReport> kernels;
  /// Simulated finish time of every node under the overlap model:
  /// finish[i] = max(finish of deps) + kernel time of i.
  std::vector<double> finish_microseconds;
  /// Sum of kernel times — what the serial launch cadence would take.
  double serial_microseconds = 0.0;
  /// Critical-path time of the graph — what concurrent kernel execution
  /// takes under the (optimistic, contention-free) overlap model.
  double makespan_microseconds = 0.0;
  /// Number of wavefront levels (length of the longest dependency chain).
  int levels = 0;

  /// Serial time over makespan (1.0 for a chain; > 1 when kernels overlap).
  [[nodiscard]] double overlap_speedup() const {
    return makespan_microseconds > 0 ? serial_microseconds / makespan_microseconds : 1.0;
  }
};

class Launcher {
 public:
  explicit Launcher(DeviceSpec dev);

  /// The device L2 model, or nullptr when disabled.
  [[nodiscard]] L2Cache* l2() const { return l2_.get(); }

  [[nodiscard]] const DeviceSpec& device() const { return dev_; }

  /// Attaches a trace sink recording every access of subsequent launches
  /// (nullptr detaches).  See gpusim/trace.hpp.
  void set_trace(TraceSink* sink) { trace_ = sink; }

  /// Attaches a memory auditor observing every access of subsequent launches
  /// (nullptr detaches).  Shared by all blocks — implementations must be
  /// internally synchronized.  See gpusim/audit.hpp.
  void set_audit(MemoryAuditor* audit) { audit_ = audit; }
  [[nodiscard]] MemoryAuditor* audit() const { return audit_; }

  /// Enables audit=certified-skip for subsequent launches: executions whose
  /// certificate carries a Pass 3 safety token take the bulk path even with
  /// an auditor attached, eliding per-lane shadow replay for those accesses
  /// (reported through MemoryAuditor::on_certified_skip instead).  Counters
  /// stay bit-identical to the fully-audited run.  No effect without an
  /// attached auditor.
  void set_audit_skip(bool on) { audit_skip_ = on; }
  [[nodiscard]] bool audit_skip() const { return audit_skip_; }

  /// Sets the number of host worker threads used to simulate blocks.
  ///   n >= 1  use exactly n workers (1 = sequential, the default);
  ///   n == 0  resolve from the CFMERGE_SIM_THREADS environment variable
  ///           (where 0 itself means std::thread::hardware_concurrency),
  ///           falling back to 1 when unset.
  /// Reports are bit-identical for every value; see the header comment.
  void set_threads(int n);
  /// The resolved worker-thread count used by subsequent launches.
  [[nodiscard]] int threads() const { return threads_; }

  /// Runs `body` for each of `shape.blocks` blocks and returns the report.
  /// The report is also appended to the launch history.  When the body
  /// throws for any block, the exception of the lowest-id failing block is
  /// rethrown after all workers have been joined, and neither the history,
  /// nor the attached trace sink, nor any launcher statistic is modified.
  KernelReport launch(const std::string& name, const LaunchShape& shape,
                      const std::function<void(BlockContext&)>& body);

  /// Executes every kernel of `graph`, honouring its dependency edges, and
  /// returns the per-node reports plus the serial-sum and graph-makespan
  /// timings.  Node reports are appended to the launch history in enqueue
  /// order.  Under GraphExec::Overlap, blocks of all kernels in the same
  /// dependency wavefront share the worker pool; with the L2 model enabled
  /// the launcher forces the sequential fallback exactly as launch does.
  /// When any kernel body throws, the exception of the earliest failing
  /// (enqueue id, block id) in the earliest failing wavefront is rethrown
  /// after all workers joined, and neither the history, nor the attached
  /// trace sink, nor any launcher statistic is modified.
  GraphReport run(const KernelGraph& graph, GraphExec mode = GraphExec::Overlap);

  [[nodiscard]] const std::vector<KernelReport>& history() const { return history_; }
  void clear_history() {
    history_.clear();
    bulk_charges_ = 0;
    lane_charges_ = 0;
    audit_skipped_accesses_ = 0;
  }

  /// Accounting-path statistics summed over the history: how many warp
  /// accesses were charged in closed form by the proof-guided bulk path
  /// versus the per-lane reference path.  See BlockContext::charge_shared_crs.
  [[nodiscard]] std::uint64_t bulk_charges() const { return bulk_charges_; }
  [[nodiscard]] std::uint64_t lane_charges() const { return lane_charges_; }
  /// Warp accesses elided from per-lane audit by certified-skip mode, summed
  /// over the history (0 unless set_audit_skip(true) and an auditor attached).
  [[nodiscard]] std::uint64_t audit_skipped_accesses() const {
    return audit_skipped_accesses_;
  }

  /// Sum of simulated kernel times in the history, microseconds.
  [[nodiscard]] double total_microseconds() const;
  /// Counters summed over the history.
  [[nodiscard]] Counters total_counters() const;
  /// Per-phase counters merged over the history.
  [[nodiscard]] PhaseCounters phase_counters() const;

 private:
  DeviceSpec dev_;
  std::unique_ptr<L2Cache> l2_;
  TraceSink* trace_ = nullptr;
  MemoryAuditor* audit_ = nullptr;
  int threads_ = 1;
  std::vector<KernelReport> history_;
  bool audit_skip_ = false;
  std::uint64_t bulk_charges_ = 0;
  std::uint64_t lane_charges_ = 0;
  std::uint64_t audit_skipped_accesses_ = 0;
};

}  // namespace cfmerge::gpusim
