// Kernel launcher: runs a kernel body for every block of a grid, collects
// counters + dependency chains, and evaluates the timing model.
//
// A "kernel" is any callable void(BlockContext&).  Blocks are simulated
// sequentially (the model is deterministic, so order does not matter); the
// launcher aggregates per-phase counters and mean block critical path, then
// applies gpusim::simulate_timing.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/block_context.hpp"
#include "gpusim/trace.hpp"
#include "gpusim/timing.hpp"

namespace cfmerge::gpusim {

struct KernelReport {
  std::string name;
  LaunchShape shape;
  PhaseCounters counters;
  double mean_block_chain = 0.0;
  double max_block_chain = 0.0;
  KernelTiming timing;

  [[nodiscard]] Counters total() const { return counters.total(); }
};

class Launcher {
 public:
  explicit Launcher(DeviceSpec dev) : dev_(std::move(dev)) {
    dev_.validate();
    if (dev_.l2_bytes > 0)
      l2_ = std::make_unique<L2Cache>(dev_.l2_bytes, dev_.transaction_bytes, dev_.l2_ways);
  }

  /// The device L2 model, or nullptr when disabled.
  [[nodiscard]] L2Cache* l2() const { return l2_.get(); }

  [[nodiscard]] const DeviceSpec& device() const { return dev_; }

  /// Attaches a trace sink recording every access of subsequent launches
  /// (nullptr detaches).  See gpusim/trace.hpp.
  void set_trace(TraceSink* sink) { trace_ = sink; }

  /// Runs `body` for each of `shape.blocks` blocks and returns the report.
  /// The report is also appended to the launch history.
  KernelReport launch(const std::string& name, const LaunchShape& shape,
                      const std::function<void(BlockContext&)>& body);

  [[nodiscard]] const std::vector<KernelReport>& history() const { return history_; }
  void clear_history() { history_.clear(); }

  /// Sum of simulated kernel times in the history, microseconds.
  [[nodiscard]] double total_microseconds() const;
  /// Counters summed over the history.
  [[nodiscard]] Counters total_counters() const;
  /// Per-phase counters merged over the history.
  [[nodiscard]] PhaseCounters phase_counters() const;

 private:
  DeviceSpec dev_;
  std::unique_ptr<L2Cache> l2_;
  TraceSink* trace_ = nullptr;
  std::vector<KernelReport> history_;
};

}  // namespace cfmerge::gpusim
