#include "gpusim/device_spec.hpp"

#include <stdexcept>

#include "numtheory/hash.hpp"

namespace cfmerge::gpusim {

DeviceSpec DeviceSpec::rtx2080ti() {
  DeviceSpec d;
  d.name = "rtx2080ti";
  d.warp_size = 32;
  d.num_sms = 68;
  d.max_threads_per_sm = 1024;
  d.max_blocks_per_sm = 16;
  d.shared_bytes_per_sm = 64 * 1024;
  d.registers_per_sm = 65536;
  d.issue_width = 4;
  d.shared_latency = 24;
  d.shared_replay_cycles = 4;
  d.global_latency = 440;
  d.transaction_bytes = 128;
  // 616 GB/s peak; ~65% sustained for the mixed streaming/strided traffic of
  // a merge pass.
  d.dram_bytes_per_cycle = 616.0 * 0.65 / 1.545;
  d.clock_ghz = 1.545;
  return d;
}

DeviceSpec DeviceSpec::tiny(int w, int sms) {
  DeviceSpec d;
  d.name = "tiny-w" + std::to_string(w);
  d.warp_size = w;
  d.num_sms = sms;
  d.max_threads_per_sm = 8 * w;
  d.max_blocks_per_sm = 4;
  d.shared_bytes_per_sm = 16 * 1024;
  d.registers_per_sm = 8192;
  return d;
}

DeviceSpec DeviceSpec::scaled_turing(int sms) {
  DeviceSpec d = rtx2080ti();
  d.name = "turing-sm" + std::to_string(sms);
  d.dram_bytes_per_cycle = d.dram_bytes_per_cycle * sms / d.num_sms;
  d.num_sms = sms;
  return d;
}

std::uint64_t DeviceSpec::digest() const {
  using numtheory::fnv1a;
  // A leading format tag so a future field addition can bump the digest
  // domain explicitly instead of silently aliasing old values.
  std::uint64_t h = fnv1a(numtheory::kFnvOffset, std::uint64_t{1});
  h = fnv1a(h, static_cast<std::int64_t>(warp_size));
  h = fnv1a(h, static_cast<std::int64_t>(num_sms));
  h = fnv1a(h, static_cast<std::int64_t>(max_threads_per_sm));
  h = fnv1a(h, static_cast<std::int64_t>(max_blocks_per_sm));
  h = fnv1a(h, static_cast<std::uint64_t>(shared_bytes_per_sm));
  h = fnv1a(h, registers_per_sm);
  h = fnv1a(h, static_cast<std::int64_t>(issue_width));
  h = fnv1a(h, static_cast<std::int64_t>(shared_latency));
  h = fnv1a(h, static_cast<std::int64_t>(shared_replay_cycles));
  h = fnv1a(h, static_cast<std::int64_t>(global_latency));
  h = fnv1a(h, static_cast<std::int64_t>(transaction_bytes));
  h = fnv1a(h, dram_bytes_per_cycle);
  h = fnv1a(h, static_cast<std::uint64_t>(l2_bytes));
  h = fnv1a(h, static_cast<std::int64_t>(l2_ways));
  h = fnv1a(h, clock_ghz);
  h = fnv1a(h, launch_overhead_cycles);
  return h;
}

void DeviceSpec::validate() const {
  if (warp_size <= 0) throw std::invalid_argument("DeviceSpec: warp_size must be positive");
  if (num_sms <= 0) throw std::invalid_argument("DeviceSpec: num_sms must be positive");
  if (max_threads_per_sm < warp_size || max_threads_per_sm % warp_size != 0)
    throw std::invalid_argument("DeviceSpec: max_threads_per_sm must be a positive multiple of warp_size");
  if (max_blocks_per_sm <= 0) throw std::invalid_argument("DeviceSpec: max_blocks_per_sm must be positive");
  if (issue_width <= 0) throw std::invalid_argument("DeviceSpec: issue_width must be positive");
  if (shared_latency < 0 || global_latency < 0)
    throw std::invalid_argument("DeviceSpec: latencies must be non-negative");
  if (shared_replay_cycles < 1)
    throw std::invalid_argument("DeviceSpec: shared_replay_cycles must be at least 1");
  if (transaction_bytes <= 0) throw std::invalid_argument("DeviceSpec: transaction_bytes must be positive");
  if (dram_bytes_per_cycle <= 0) throw std::invalid_argument("DeviceSpec: dram_bytes_per_cycle must be positive");
  if (clock_ghz <= 0) throw std::invalid_argument("DeviceSpec: clock_ghz must be positive");
  if (sim_threads < 0)
    throw std::invalid_argument("DeviceSpec: sim_threads must be non-negative");
}

}  // namespace cfmerge::gpusim
