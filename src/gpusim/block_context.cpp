#include "gpusim/block_context.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "gpusim/global_memory.hpp"
#include "gpusim/shared_memory.hpp"

namespace cfmerge::gpusim {

BlockContext::BlockContext(const DeviceSpec& dev, int block_id, int num_blocks, int threads)
    : dev_(&dev), block_id_(block_id), num_blocks_(num_blocks), threads_(threads) {
  if (threads <= 0 || threads % dev.warp_size != 0)
    throw std::invalid_argument("BlockContext: threads must be a positive multiple of warp_size");
  if (block_id < 0 || block_id >= num_blocks)
    throw std::invalid_argument("BlockContext: block_id out of range");
  current_idx_ = counters_.intern("main");
  current_ = &counters_.by_index(current_idx_);
  chains_.assign(static_cast<std::size_t>(warps()), 0.0);
  l2_scratch_.reserve(2 * static_cast<std::size_t>(kMaxLanes));
}

void BlockContext::phase(std::string_view name) {
  if (name == current_phase_) return;
  current_idx_ = counters_.intern(name);
  current_ = &counters_.by_index(current_idx_);
  current_phase_.assign(name);
  trace_phase_ = -1;
}

void BlockContext::phase(PhaseRef& ref) {
  if (ref.idx < 0) {
    phase(ref.name);
    ref.idx = current_idx_;
    return;
  }
  assert(counters_.name_of(ref.idx) == ref.name && "PhaseRef reused across contexts");
  if (ref.idx == current_idx_) return;
  current_idx_ = ref.idx;
  current_ = &counters_.by_index(ref.idx);
  current_phase_.assign(ref.name);
  trace_phase_ = -1;
}

void BlockContext::barrier() {
  current_->barriers += 1;
  const double mx = block_chain();
  std::fill(chains_.begin(), chains_.end(), mx);
  if (audit_ != nullptr) audit_->on_barrier(block_id_);
}

double BlockContext::block_chain() const {
  return chains_.empty() ? 0.0 : *std::max_element(chains_.begin(), chains_.end());
}

}  // namespace cfmerge::gpusim
