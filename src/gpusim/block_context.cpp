#include "gpusim/block_context.hpp"

#include <algorithm>
#include <stdexcept>

#include "gpusim/global_memory.hpp"
#include "gpusim/shared_memory.hpp"

namespace cfmerge::gpusim {

BlockContext::BlockContext(const DeviceSpec& dev, int block_id, int num_blocks, int threads)
    : dev_(&dev), block_id_(block_id), num_blocks_(num_blocks), threads_(threads) {
  if (threads <= 0 || threads % dev.warp_size != 0)
    throw std::invalid_argument("BlockContext: threads must be a positive multiple of warp_size");
  if (block_id < 0 || block_id >= num_blocks)
    throw std::invalid_argument("BlockContext: block_id out of range");
  current_ = &counters_.phase("main");
  chains_.assign(static_cast<std::size_t>(warps()), 0.0);
}

void BlockContext::phase(std::string_view name) {
  current_ = &counters_.phase(name);
  current_phase_ = std::string(name);
}

SharedAccessCost BlockContext::charge_shared(int warp, std::span<const std::int64_t> addrs,
                                             bool dependent, bool is_write) {
  const SharedAccessCost c = shared_access_cost(addrs, dev_->warp_size);
  if (c.active_lanes == 0) return c;
  if (trace_ != nullptr)
    trace_->record(block_id_, static_cast<std::int16_t>(warp),
                   is_write ? AccessKind::SharedWrite : AccessKind::SharedRead,
                   current_phase_, addrs, c.conflicts);
  const int replay = dev_->shared_replay_cycles * c.conflicts;
  current_->shared_accesses += 1;
  current_->shared_cycles += static_cast<std::uint64_t>(1 + replay);
  current_->bank_conflicts += static_cast<std::uint64_t>(c.conflicts);
  auto& chain = chains_.at(static_cast<std::size_t>(warp));
  if (dependent)
    chain += dev_->shared_latency + replay;
  else
    chain += 1 + replay;  // throughput-pipelined: replays still occupy the unit
  return c;
}

GlobalAccessCost BlockContext::charge_gmem(int warp, std::span<const std::int64_t> byte_addrs,
                                           int elem_bytes, bool dependent, bool is_write) {
  const GlobalAccessCost c =
      global_access_cost(byte_addrs, elem_bytes, dev_->transaction_bytes);
  if (c.active_lanes == 0) return c;
  if (trace_ != nullptr)
    trace_->record(block_id_, static_cast<std::int16_t>(warp),
                   is_write ? AccessKind::GlobalWrite : AccessKind::GlobalRead,
                   current_phase_, byte_addrs, c.transactions);
  current_->gmem_requests += 1;
  current_->gmem_transactions += static_cast<std::uint64_t>(c.transactions);
  if (l2_ == nullptr) {
    current_->gmem_bytes += static_cast<std::uint64_t>(c.bytes);
  } else {
    // Route each transaction segment through the device L2: only misses
    // generate DRAM traffic.
    global_access_segments(byte_addrs, elem_bytes, dev_->transaction_bytes, l2_scratch_);
    for (const std::int64_t seg : l2_scratch_) {
      if (l2_->access(seg * dev_->transaction_bytes)) {
        current_->l2_hits += 1;
      } else {
        current_->l2_misses += 1;
        current_->gmem_bytes += static_cast<std::uint64_t>(dev_->transaction_bytes);
      }
    }
  }
  auto& chain = chains_.at(static_cast<std::size_t>(warp));
  if (dependent)
    chain += dev_->global_latency;
  else
    chain += c.transactions;  // issue cost only; latency overlapped
  return c;
}

void BlockContext::charge_compute(int warp, std::uint64_t instrs, std::int64_t chain) {
  current_->warp_instructions += instrs;
  const double on_chain =
      chain < 0 ? static_cast<double>(instrs) : static_cast<double>(chain);
  chains_.at(static_cast<std::size_t>(warp)) += on_chain;
}

void BlockContext::barrier() {
  current_->barriers += 1;
  const double mx = block_chain();
  std::fill(chains_.begin(), chains_.end(), mx);
}

double BlockContext::block_chain() const {
  return chains_.empty() ? 0.0 : *std::max_element(chains_.begin(), chains_.end());
}

}  // namespace cfmerge::gpusim
