// Simulated GPU device description.
//
// The simulator replaces the paper's NVIDIA RTX 2080 Ti.  Only the
// architectural features that the paper's analysis depends on are modeled:
// SIMT warps of `warp_size` lanes, shared memory organized into `warp_size`
// banks (element i lives in bank i mod warp_size), coalesced global memory
// transactions, and an SM-level throughput/latency/occupancy timing model
// (see timing.hpp for the model definition).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace cfmerge::gpusim {

struct DeviceSpec {
  std::string name = "generic";

  // --- SIMT shape -----------------------------------------------------
  /// Lanes per warp == number of shared memory banks (the paper's `w`).
  int warp_size = 32;
  /// Streaming multiprocessors.
  int num_sms = 68;

  // --- Occupancy limits (per SM) ---------------------------------------
  int max_threads_per_sm = 1024;
  int max_blocks_per_sm = 16;
  std::size_t shared_bytes_per_sm = 64 * 1024;
  std::int64_t registers_per_sm = 65536;

  // --- Timing parameters (cycles) --------------------------------------
  /// Warp instructions the SM can issue per cycle (warp schedulers).
  int issue_width = 4;
  /// Pipeline latency of a conflict-free shared memory access.
  int shared_latency = 24;
  /// Cycles each bank-conflict replay occupies the LSU pipeline (the
  /// reissue interval; replays are not single-cycle on real SMs).
  int shared_replay_cycles = 4;
  /// Shared memory unit throughput: one warp access per cycle (plus one
  /// extra cycle per bank conflict replay).
  /// Latency of a global (DRAM) access round.
  int global_latency = 440;
  /// Size of one global memory transaction in bytes (coalescing granule).
  int transaction_bytes = 128;
  /// Sustained DRAM bandwidth for the whole device, bytes per core cycle.
  double dram_bytes_per_cycle = 400.0;
  /// Device-level L2 cache capacity; 0 disables the cache model (the
  /// default — the calibrated experiments use the bare DRAM model).
  std::size_t l2_bytes = 0;
  int l2_ways = 16;
  /// Core clock, GHz (used only to convert cycles to microseconds).
  double clock_ghz = 1.545;
  /// Fixed cost per kernel launch in cycles (driver submission, grid setup,
  /// tail effects).  Dominates tiny grids and amortizes away at scale —
  /// this is what makes measured GPU sort throughput *rise* with n on the
  /// left side of the paper's Figure 5/6 curves.
  double launch_overhead_cycles = 3000.0;

  // --- Simulator execution (host-side; no effect on results) ------------
  /// Host worker threads the Launcher uses to simulate blocks.  Reports are
  /// bit-identical for every value (see launcher.hpp).  0 = resolve from
  /// the CFMERGE_SIM_THREADS environment variable, defaulting to 1
  /// (sequential); n >= 1 = exactly n workers.
  int sim_threads = 0;

  /// Proof-guided bulk charging: call sites holding a cfverify certificate
  /// (verify/certificate.hpp) may charge whole conflict-free rounds in
  /// closed form instead of per lane.  Counters and timing are bit-identical
  /// either way (pinned by tests/test_bulk_charge.cpp); disable to force
  /// the lane-accurate path (`cfsort --no-bulk-charge`).  Tracing or a
  /// runtime auditor disables bulk charging automatically — those observers
  /// need the per-lane addresses.
  bool bulk_charge = true;

  /// The device the paper evaluated on (RTX 2080 Ti, Turing TU102).
  static DeviceSpec rtx2080ti();
  /// A small device for exhaustive tests: `w` lanes/banks, `sms` SMs.
  static DeviceSpec tiny(int w, int sms = 2);
  /// The RTX 2080 Ti architecture with a reduced SM count.  Keeps the warp
  /// size, bank count, latencies and occupancy limits identical while
  /// letting small simulated inputs reach the throughput-bound regime that
  /// large inputs reach on the full device (the sequential simulator cannot
  /// afford paper-scale n).  DRAM bandwidth scales with the SM count.
  static DeviceSpec scaled_turing(int sms);

  /// Throws std::invalid_argument when a field is out of range.
  void validate() const;

  /// Stable content digest: FNV-1a over every field that affects planning,
  /// costing, or occupancy — the cross-process identity the persistent plan
  /// & autotune cache keys on (cache/store.hpp).  Deliberately excluded:
  /// `name` (two identically-configured devices are the same device),
  /// `sim_threads` (host-side; reports are bit-identical for every value),
  /// and `bulk_charge` (counters/timing are bit-identical either way).  Any
  /// field that *does* change planning and is hashed here invalidates every
  /// persisted entry, which is exactly the invalidation rule we want.
  [[nodiscard]] std::uint64_t digest() const;

  [[nodiscard]] int max_warps_per_sm() const { return max_threads_per_sm / warp_size; }
  [[nodiscard]] double cycles_to_us(double cycles) const {
    return cycles / (clock_ghz * 1e3);
  }
};

}  // namespace cfmerge::gpusim
