#include "gpusim/shared_memory.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

namespace cfmerge::gpusim {

namespace {
/// Warps wider than this are not supported (all real GPUs use w <= 64).
constexpr int kMaxLanes = 64;
}  // namespace

SharedAccessCost shared_access_cost(std::span<const std::int64_t> addrs, int banks) {
  if (banks <= 0 || banks > kMaxLanes)
    throw std::invalid_argument("shared_access_cost: bank count out of range");
  if (addrs.size() > static_cast<std::size_t>(kMaxLanes))
    throw std::invalid_argument("shared_access_cost: too many lanes");

  // Gather active addresses, sort, and count distinct addresses per bank.
  std::array<std::int64_t, kMaxLanes> active{};
  int n = 0;
  for (const std::int64_t a : addrs) {
    if (a == kInactiveLane) continue;
    assert(a >= 0 && "shared address must be non-negative");
    active[static_cast<std::size_t>(n++)] = a;
  }
  SharedAccessCost cost;
  cost.active_lanes = n;
  if (n == 0) return cost;

  std::sort(active.begin(), active.begin() + n);
  std::array<int, kMaxLanes> degree{};
  std::int64_t prev = -1;
  int max_degree = 0;
  for (int i = 0; i < n; ++i) {
    const std::int64_t a = active[static_cast<std::size_t>(i)];
    if (a == prev) continue;  // broadcast: same address served once
    prev = a;
    const auto b = static_cast<std::size_t>(a % banks);
    max_degree = std::max(max_degree, ++degree[b]);
  }
  cost.cycles = max_degree;
  cost.conflicts = max_degree - 1;
  return cost;
}

std::span<const int> shared_access_degrees(std::span<const std::int64_t> addrs, int banks,
                                           std::span<int> scratch) {
  if (banks <= 0 || static_cast<int>(scratch.size()) < banks)
    throw std::invalid_argument("shared_access_degrees: scratch too small");
  std::fill(scratch.begin(), scratch.begin() + banks, 0);

  std::array<std::int64_t, kMaxLanes> active{};
  int n = 0;
  for (const std::int64_t a : addrs) {
    if (a == kInactiveLane) continue;
    if (n >= kMaxLanes) throw std::invalid_argument("shared_access_degrees: too many lanes");
    active[static_cast<std::size_t>(n++)] = a;
  }
  std::sort(active.begin(), active.begin() + n);
  std::int64_t prev = -1;
  for (int i = 0; i < n; ++i) {
    const std::int64_t a = active[static_cast<std::size_t>(i)];
    if (a == prev) continue;
    prev = a;
    ++scratch[static_cast<std::size_t>(a % banks)];
  }
  return scratch.subspan(0, static_cast<std::size_t>(banks));
}

}  // namespace cfmerge::gpusim
