#include "gpusim/shared_memory.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace cfmerge::gpusim {

std::span<const int> shared_access_degrees(std::span<const std::int64_t> addrs, int banks,
                                           std::span<int> scratch) {
  if (banks <= 0 || banks > kMaxLanes)
    throw std::invalid_argument("shared_access_degrees: bank count out of range");
  if (static_cast<int>(scratch.size()) < banks)
    throw std::invalid_argument("shared_access_degrees: scratch too small");
  std::fill(scratch.begin(), scratch.begin() + banks, 0);

  // Same per-bank chain machinery as shared_access_cost's general path: one
  // O(w) pass threading each bank's distinct addresses through the lane
  // indices, so a lane only walks its own bank's chain (length = the degree
  // being computed) instead of the old quadratic distinct-collect.
  std::array<int, kMaxLanes> head;  // lane index of each bank's chain head
  std::array<int, kMaxLanes> next;  // next lane in the same bank's chain
  std::uint64_t used = 0;
  const int n = static_cast<int>(addrs.size());
  int active = 0;
  for (int i = 0; i < n; ++i) {
    const std::int64_t a = addrs[static_cast<std::size_t>(i)];
    if (a == kInactiveLane) continue;
    if (++active > kMaxLanes)
      throw std::invalid_argument("shared_access_degrees: too many lanes");
    const auto b = static_cast<std::size_t>(static_cast<std::uint64_t>(a) %
                                            static_cast<std::uint64_t>(banks));
    const std::uint64_t bbit = std::uint64_t{1} << b;
    if ((used & bbit) == 0) {
      used |= bbit;
      head[b] = i;
      next[static_cast<std::size_t>(i)] = -1;
      scratch[b] = 1;
      continue;
    }
    int j = head[b];
    while (j != -1 && addrs[static_cast<std::size_t>(j)] != a)
      j = next[static_cast<std::size_t>(j)];
    if (j == -1) {
      next[static_cast<std::size_t>(i)] = head[b];
      head[b] = i;
      ++scratch[b];
    }
  }
  return scratch.subspan(0, static_cast<std::size_t>(banks));
}

}  // namespace cfmerge::gpusim
