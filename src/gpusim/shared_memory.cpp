#include "gpusim/shared_memory.hpp"

#include <array>
#include <stdexcept>

namespace cfmerge::gpusim {

std::span<const int> shared_access_degrees(std::span<const std::int64_t> addrs, int banks,
                                           std::span<int> scratch) {
  if (banks <= 0 || static_cast<int>(scratch.size()) < banks)
    throw std::invalid_argument("shared_access_degrees: scratch too small");
  std::fill(scratch.begin(), scratch.begin() + banks, 0);

  // Collect the distinct active addresses (broadcast dedup) with a small
  // quadratic scan — at most kMaxLanes entries, and the callers
  // (visualization harnesses, tests) are not on the hot path.
  std::array<std::int64_t, kMaxLanes> distinct;
  int n = 0;
  int active = 0;
  for (const std::int64_t a : addrs) {
    if (a == kInactiveLane) continue;
    if (++active > kMaxLanes)
      throw std::invalid_argument("shared_access_degrees: too many lanes");
    bool dup = false;
    for (int i = 0; i < n; ++i) {
      if (distinct[static_cast<std::size_t>(i)] == a) {
        dup = true;
        break;
      }
    }
    if (!dup) distinct[static_cast<std::size_t>(n++)] = a;
  }
  for (int i = 0; i < n; ++i)
    ++scratch[static_cast<std::size_t>(distinct[static_cast<std::size_t>(i)] % banks)];
  return scratch.subspan(0, static_cast<std::size_t>(banks));
}

}  // namespace cfmerge::gpusim
