// Memory-audit hook interface (opt-in instrumentation).
//
// A MemoryAuditor observes every simulated memory event — shared tile
// allocations, warp-wide shared/global accesses, barriers — without taking
// part in cost accounting.  The simulator core only ever talks to this
// abstract interface; the concrete shadow-state checker lives in
// src/verify/shadow.* so gpusim carries no dependency on the verifier.
//
// Auditors attached to a Launcher are shared by all blocks of a launch, and
// blocks may be simulated on a pool of host threads: implementations must be
// internally synchronized.  All hooks are called after the access's cost has
// been computed (and before data movement), with the same address span the
// cost model saw.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace cfmerge::gpusim {

class MemoryAuditor {
 public:
  virtual ~MemoryAuditor() = default;

  /// A SharedTile of `words` elements came to life in `block`.  `tile_id` is
  /// unique within the block (allocation order).
  virtual void on_shared_alloc(int block, std::uint64_t tile_id, std::size_t words) = 0;

  /// The whole tile was handed out as a raw span (test setup / verification
  /// escape hatch): its contents must be treated as externally initialized.
  virtual void on_shared_raw(int block, std::uint64_t tile_id) = 0;

  /// One warp-wide shared access on a tile: element addresses per lane
  /// (kInactiveLane idle), whether it writes, the bank count, and the
  /// conflict count the cost model charged for it.
  virtual void on_shared_access(int block, std::uint64_t tile_id, int warp,
                                std::string_view phase,
                                std::span<const std::int64_t> addrs, bool is_write,
                                int banks, int charged_conflicts) = 0;

  /// One warp-wide access through a GlobalView: element indices per lane
  /// (kInactiveLane idle) and the view's element count.
  virtual void on_global_access(int block, int warp, std::string_view phase,
                                std::span<const std::int64_t> idxs,
                                std::int64_t view_size, bool is_write) = 0;

  /// Block-wide barrier (ends a write epoch for race checking).
  virtual void on_barrier(int block) = 0;

  /// A statically safety-certified access progression ran without per-lane
  /// audit (Launcher audit=certified-skip mode): `accesses` warp-wide
  /// accesses of `lanes` active lanes each, every address inside [lo, hi)
  /// of the tile.  The backing Pass 3 certificate (verify/safety) proves
  /// bounds, pairwise-disjoint writes and read coverage for the pattern, so
  /// implementations may account the whole range at once instead of
  /// replaying lanes.  Default: ignore.
  virtual void on_certified_skip(int block, std::uint64_t tile_id, std::int64_t lo,
                                 std::int64_t hi, std::uint64_t accesses, int lanes,
                                 bool is_write) {
    (void)block;
    (void)tile_id;
    (void)lo;
    (void)hi;
    (void)accesses;
    (void)lanes;
    (void)is_write;
  }
};

}  // namespace cfmerge::gpusim
